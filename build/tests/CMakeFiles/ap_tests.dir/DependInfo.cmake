
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_base.cc" "tests/CMakeFiles/ap_tests.dir/test_base.cc.o" "gcc" "tests/CMakeFiles/ap_tests.dir/test_base.cc.o.d"
  "/root/repo/tests/test_config.cc" "tests/CMakeFiles/ap_tests.dir/test_config.cc.o" "gcc" "tests/CMakeFiles/ap_tests.dir/test_config.cc.o.d"
  "/root/repo/tests/test_guestos.cc" "tests/CMakeFiles/ap_tests.dir/test_guestos.cc.o" "gcc" "tests/CMakeFiles/ap_tests.dir/test_guestos.cc.o.d"
  "/root/repo/tests/test_integration.cc" "tests/CMakeFiles/ap_tests.dir/test_integration.cc.o" "gcc" "tests/CMakeFiles/ap_tests.dir/test_integration.cc.o.d"
  "/root/repo/tests/test_machine.cc" "tests/CMakeFiles/ap_tests.dir/test_machine.cc.o" "gcc" "tests/CMakeFiles/ap_tests.dir/test_machine.cc.o.d"
  "/root/repo/tests/test_page_table.cc" "tests/CMakeFiles/ap_tests.dir/test_page_table.cc.o" "gcc" "tests/CMakeFiles/ap_tests.dir/test_page_table.cc.o.d"
  "/root/repo/tests/test_policy.cc" "tests/CMakeFiles/ap_tests.dir/test_policy.cc.o" "gcc" "tests/CMakeFiles/ap_tests.dir/test_policy.cc.o.d"
  "/root/repo/tests/test_scheduler.cc" "tests/CMakeFiles/ap_tests.dir/test_scheduler.cc.o" "gcc" "tests/CMakeFiles/ap_tests.dir/test_scheduler.cc.o.d"
  "/root/repo/tests/test_shadow.cc" "tests/CMakeFiles/ap_tests.dir/test_shadow.cc.o" "gcc" "tests/CMakeFiles/ap_tests.dir/test_shadow.cc.o.d"
  "/root/repo/tests/test_tlb.cc" "tests/CMakeFiles/ap_tests.dir/test_tlb.cc.o" "gcc" "tests/CMakeFiles/ap_tests.dir/test_tlb.cc.o.d"
  "/root/repo/tests/test_trace.cc" "tests/CMakeFiles/ap_tests.dir/test_trace.cc.o" "gcc" "tests/CMakeFiles/ap_tests.dir/test_trace.cc.o.d"
  "/root/repo/tests/test_vma.cc" "tests/CMakeFiles/ap_tests.dir/test_vma.cc.o" "gcc" "tests/CMakeFiles/ap_tests.dir/test_vma.cc.o.d"
  "/root/repo/tests/test_vmm.cc" "tests/CMakeFiles/ap_tests.dir/test_vmm.cc.o" "gcc" "tests/CMakeFiles/ap_tests.dir/test_vmm.cc.o.d"
  "/root/repo/tests/test_walker.cc" "tests/CMakeFiles/ap_tests.dir/test_walker.cc.o" "gcc" "tests/CMakeFiles/ap_tests.dir/test_walker.cc.o.d"
  "/root/repo/tests/test_workloads.cc" "tests/CMakeFiles/ap_tests.dir/test_workloads.cc.o" "gcc" "tests/CMakeFiles/ap_tests.dir/test_workloads.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ap_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ap_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ap_guestos.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ap_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ap_vmm.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ap_walker.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ap_tlb.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ap_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ap_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ap_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
