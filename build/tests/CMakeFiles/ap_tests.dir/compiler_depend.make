# Empty compiler generated dependencies file for ap_tests.
# This may be replaced when dependencies are built.
