file(REMOVE_RECURSE
  "libap_base.a"
)
