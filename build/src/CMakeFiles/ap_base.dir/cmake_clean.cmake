file(REMOVE_RECURSE
  "CMakeFiles/ap_base.dir/base/debug.cc.o"
  "CMakeFiles/ap_base.dir/base/debug.cc.o.d"
  "CMakeFiles/ap_base.dir/base/logging.cc.o"
  "CMakeFiles/ap_base.dir/base/logging.cc.o.d"
  "CMakeFiles/ap_base.dir/base/rng.cc.o"
  "CMakeFiles/ap_base.dir/base/rng.cc.o.d"
  "CMakeFiles/ap_base.dir/base/stats.cc.o"
  "CMakeFiles/ap_base.dir/base/stats.cc.o.d"
  "libap_base.a"
  "libap_base.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ap_base.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
