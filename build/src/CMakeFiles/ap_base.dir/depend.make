# Empty dependencies file for ap_base.
# This may be replaced when dependencies are built.
