
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/access_pattern.cc" "src/CMakeFiles/ap_workloads.dir/workloads/access_pattern.cc.o" "gcc" "src/CMakeFiles/ap_workloads.dir/workloads/access_pattern.cc.o.d"
  "/root/repo/src/workloads/bigmem_workloads.cc" "src/CMakeFiles/ap_workloads.dir/workloads/bigmem_workloads.cc.o" "gcc" "src/CMakeFiles/ap_workloads.dir/workloads/bigmem_workloads.cc.o.d"
  "/root/repo/src/workloads/parsec_workloads.cc" "src/CMakeFiles/ap_workloads.dir/workloads/parsec_workloads.cc.o" "gcc" "src/CMakeFiles/ap_workloads.dir/workloads/parsec_workloads.cc.o.d"
  "/root/repo/src/workloads/spec_workloads.cc" "src/CMakeFiles/ap_workloads.dir/workloads/spec_workloads.cc.o" "gcc" "src/CMakeFiles/ap_workloads.dir/workloads/spec_workloads.cc.o.d"
  "/root/repo/src/workloads/workload_factory.cc" "src/CMakeFiles/ap_workloads.dir/workloads/workload_factory.cc.o" "gcc" "src/CMakeFiles/ap_workloads.dir/workloads/workload_factory.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ap_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
