# Empty dependencies file for ap_workloads.
# This may be replaced when dependencies are built.
