file(REMOVE_RECURSE
  "libap_workloads.a"
)
