file(REMOVE_RECURSE
  "CMakeFiles/ap_workloads.dir/workloads/access_pattern.cc.o"
  "CMakeFiles/ap_workloads.dir/workloads/access_pattern.cc.o.d"
  "CMakeFiles/ap_workloads.dir/workloads/bigmem_workloads.cc.o"
  "CMakeFiles/ap_workloads.dir/workloads/bigmem_workloads.cc.o.d"
  "CMakeFiles/ap_workloads.dir/workloads/parsec_workloads.cc.o"
  "CMakeFiles/ap_workloads.dir/workloads/parsec_workloads.cc.o.d"
  "CMakeFiles/ap_workloads.dir/workloads/spec_workloads.cc.o"
  "CMakeFiles/ap_workloads.dir/workloads/spec_workloads.cc.o.d"
  "CMakeFiles/ap_workloads.dir/workloads/workload_factory.cc.o"
  "CMakeFiles/ap_workloads.dir/workloads/workload_factory.cc.o.d"
  "libap_workloads.a"
  "libap_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ap_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
