
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tlb/nested_tlb.cc" "src/CMakeFiles/ap_tlb.dir/tlb/nested_tlb.cc.o" "gcc" "src/CMakeFiles/ap_tlb.dir/tlb/nested_tlb.cc.o.d"
  "/root/repo/src/tlb/pwc.cc" "src/CMakeFiles/ap_tlb.dir/tlb/pwc.cc.o" "gcc" "src/CMakeFiles/ap_tlb.dir/tlb/pwc.cc.o.d"
  "/root/repo/src/tlb/tlb.cc" "src/CMakeFiles/ap_tlb.dir/tlb/tlb.cc.o" "gcc" "src/CMakeFiles/ap_tlb.dir/tlb/tlb.cc.o.d"
  "/root/repo/src/tlb/tlb_hierarchy.cc" "src/CMakeFiles/ap_tlb.dir/tlb/tlb_hierarchy.cc.o" "gcc" "src/CMakeFiles/ap_tlb.dir/tlb/tlb_hierarchy.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ap_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ap_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
