# Empty dependencies file for ap_tlb.
# This may be replaced when dependencies are built.
