file(REMOVE_RECURSE
  "libap_tlb.a"
)
