file(REMOVE_RECURSE
  "CMakeFiles/ap_tlb.dir/tlb/nested_tlb.cc.o"
  "CMakeFiles/ap_tlb.dir/tlb/nested_tlb.cc.o.d"
  "CMakeFiles/ap_tlb.dir/tlb/pwc.cc.o"
  "CMakeFiles/ap_tlb.dir/tlb/pwc.cc.o.d"
  "CMakeFiles/ap_tlb.dir/tlb/tlb.cc.o"
  "CMakeFiles/ap_tlb.dir/tlb/tlb.cc.o.d"
  "CMakeFiles/ap_tlb.dir/tlb/tlb_hierarchy.cc.o"
  "CMakeFiles/ap_tlb.dir/tlb/tlb_hierarchy.cc.o.d"
  "libap_tlb.a"
  "libap_tlb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ap_tlb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
