file(REMOVE_RECURSE
  "libap_vmm.a"
)
