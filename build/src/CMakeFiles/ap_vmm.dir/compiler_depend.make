# Empty compiler generated dependencies file for ap_vmm.
# This may be replaced when dependencies are built.
