file(REMOVE_RECURSE
  "CMakeFiles/ap_vmm.dir/vmm/shadow_mgr.cc.o"
  "CMakeFiles/ap_vmm.dir/vmm/shadow_mgr.cc.o.d"
  "CMakeFiles/ap_vmm.dir/vmm/shsp.cc.o"
  "CMakeFiles/ap_vmm.dir/vmm/shsp.cc.o.d"
  "CMakeFiles/ap_vmm.dir/vmm/sptr_cache.cc.o"
  "CMakeFiles/ap_vmm.dir/vmm/sptr_cache.cc.o.d"
  "CMakeFiles/ap_vmm.dir/vmm/trap_costs.cc.o"
  "CMakeFiles/ap_vmm.dir/vmm/trap_costs.cc.o.d"
  "CMakeFiles/ap_vmm.dir/vmm/vmm.cc.o"
  "CMakeFiles/ap_vmm.dir/vmm/vmm.cc.o.d"
  "libap_vmm.a"
  "libap_vmm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ap_vmm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
