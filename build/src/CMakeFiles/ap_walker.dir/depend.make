# Empty dependencies file for ap_walker.
# This may be replaced when dependencies are built.
