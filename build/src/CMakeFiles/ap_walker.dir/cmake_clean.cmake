file(REMOVE_RECURSE
  "CMakeFiles/ap_walker.dir/walker/walker.cc.o"
  "CMakeFiles/ap_walker.dir/walker/walker.cc.o.d"
  "libap_walker.a"
  "libap_walker.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ap_walker.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
