file(REMOVE_RECURSE
  "libap_walker.a"
)
