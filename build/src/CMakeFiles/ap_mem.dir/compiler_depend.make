# Empty compiler generated dependencies file for ap_mem.
# This may be replaced when dependencies are built.
