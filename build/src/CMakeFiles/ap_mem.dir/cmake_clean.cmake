file(REMOVE_RECURSE
  "CMakeFiles/ap_mem.dir/mem/page_table.cc.o"
  "CMakeFiles/ap_mem.dir/mem/page_table.cc.o.d"
  "CMakeFiles/ap_mem.dir/mem/phys_mem.cc.o"
  "CMakeFiles/ap_mem.dir/mem/phys_mem.cc.o.d"
  "CMakeFiles/ap_mem.dir/mem/pte.cc.o"
  "CMakeFiles/ap_mem.dir/mem/pte.cc.o.d"
  "libap_mem.a"
  "libap_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ap_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
