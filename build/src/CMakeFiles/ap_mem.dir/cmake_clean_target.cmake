file(REMOVE_RECURSE
  "libap_mem.a"
)
