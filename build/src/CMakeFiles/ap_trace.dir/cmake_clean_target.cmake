file(REMOVE_RECURSE
  "libap_trace.a"
)
