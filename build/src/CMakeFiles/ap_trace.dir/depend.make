# Empty dependencies file for ap_trace.
# This may be replaced when dependencies are built.
