file(REMOVE_RECURSE
  "CMakeFiles/ap_trace.dir/trace/record.cc.o"
  "CMakeFiles/ap_trace.dir/trace/record.cc.o.d"
  "CMakeFiles/ap_trace.dir/trace/trace.cc.o"
  "CMakeFiles/ap_trace.dir/trace/trace.cc.o.d"
  "libap_trace.a"
  "libap_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ap_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
