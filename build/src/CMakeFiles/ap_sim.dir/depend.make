# Empty dependencies file for ap_sim.
# This may be replaced when dependencies are built.
