file(REMOVE_RECURSE
  "CMakeFiles/ap_sim.dir/sim/config.cc.o"
  "CMakeFiles/ap_sim.dir/sim/config.cc.o.d"
  "CMakeFiles/ap_sim.dir/sim/experiment.cc.o"
  "CMakeFiles/ap_sim.dir/sim/experiment.cc.o.d"
  "CMakeFiles/ap_sim.dir/sim/machine.cc.o"
  "CMakeFiles/ap_sim.dir/sim/machine.cc.o.d"
  "CMakeFiles/ap_sim.dir/sim/perf_model.cc.o"
  "CMakeFiles/ap_sim.dir/sim/perf_model.cc.o.d"
  "CMakeFiles/ap_sim.dir/sim/report.cc.o"
  "CMakeFiles/ap_sim.dir/sim/report.cc.o.d"
  "CMakeFiles/ap_sim.dir/sim/scheduler.cc.o"
  "CMakeFiles/ap_sim.dir/sim/scheduler.cc.o.d"
  "libap_sim.a"
  "libap_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ap_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
