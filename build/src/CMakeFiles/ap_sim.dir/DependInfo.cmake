
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/config.cc" "src/CMakeFiles/ap_sim.dir/sim/config.cc.o" "gcc" "src/CMakeFiles/ap_sim.dir/sim/config.cc.o.d"
  "/root/repo/src/sim/experiment.cc" "src/CMakeFiles/ap_sim.dir/sim/experiment.cc.o" "gcc" "src/CMakeFiles/ap_sim.dir/sim/experiment.cc.o.d"
  "/root/repo/src/sim/machine.cc" "src/CMakeFiles/ap_sim.dir/sim/machine.cc.o" "gcc" "src/CMakeFiles/ap_sim.dir/sim/machine.cc.o.d"
  "/root/repo/src/sim/perf_model.cc" "src/CMakeFiles/ap_sim.dir/sim/perf_model.cc.o" "gcc" "src/CMakeFiles/ap_sim.dir/sim/perf_model.cc.o.d"
  "/root/repo/src/sim/report.cc" "src/CMakeFiles/ap_sim.dir/sim/report.cc.o" "gcc" "src/CMakeFiles/ap_sim.dir/sim/report.cc.o.d"
  "/root/repo/src/sim/scheduler.cc" "src/CMakeFiles/ap_sim.dir/sim/scheduler.cc.o" "gcc" "src/CMakeFiles/ap_sim.dir/sim/scheduler.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ap_guestos.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ap_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ap_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ap_vmm.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ap_walker.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ap_tlb.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ap_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ap_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
