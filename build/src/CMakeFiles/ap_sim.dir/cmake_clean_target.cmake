file(REMOVE_RECURSE
  "libap_sim.a"
)
