file(REMOVE_RECURSE
  "CMakeFiles/ap_core.dir/core/agile_policy.cc.o"
  "CMakeFiles/ap_core.dir/core/agile_policy.cc.o.d"
  "libap_core.a"
  "libap_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ap_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
