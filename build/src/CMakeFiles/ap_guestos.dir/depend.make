# Empty dependencies file for ap_guestos.
# This may be replaced when dependencies are built.
