file(REMOVE_RECURSE
  "CMakeFiles/ap_guestos.dir/guestos/guest_os.cc.o"
  "CMakeFiles/ap_guestos.dir/guestos/guest_os.cc.o.d"
  "CMakeFiles/ap_guestos.dir/guestos/vma.cc.o"
  "CMakeFiles/ap_guestos.dir/guestos/vma.cc.o.d"
  "libap_guestos.a"
  "libap_guestos.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ap_guestos.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
