
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/guestos/guest_os.cc" "src/CMakeFiles/ap_guestos.dir/guestos/guest_os.cc.o" "gcc" "src/CMakeFiles/ap_guestos.dir/guestos/guest_os.cc.o.d"
  "/root/repo/src/guestos/vma.cc" "src/CMakeFiles/ap_guestos.dir/guestos/vma.cc.o" "gcc" "src/CMakeFiles/ap_guestos.dir/guestos/vma.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ap_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ap_vmm.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ap_walker.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ap_tlb.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ap_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ap_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
