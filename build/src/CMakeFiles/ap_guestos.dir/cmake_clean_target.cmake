file(REMOVE_RECURSE
  "libap_guestos.a"
)
