# Empty compiler generated dependencies file for bigmem_graph.
# This may be replaced when dependencies are built.
