file(REMOVE_RECURSE
  "CMakeFiles/bigmem_graph.dir/bigmem_graph.cpp.o"
  "CMakeFiles/bigmem_graph.dir/bigmem_graph.cpp.o.d"
  "bigmem_graph"
  "bigmem_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bigmem_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
