file(REMOVE_RECURSE
  "CMakeFiles/apsim.dir/apsim.cpp.o"
  "CMakeFiles/apsim.dir/apsim.cpp.o.d"
  "apsim"
  "apsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/apsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
