# Empty compiler generated dependencies file for apsim.
# This may be replaced when dependencies are built.
