# Empty dependencies file for cow_fork_demo.
# This may be replaced when dependencies are built.
