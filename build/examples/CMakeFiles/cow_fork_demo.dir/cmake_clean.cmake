file(REMOVE_RECURSE
  "CMakeFiles/cow_fork_demo.dir/cow_fork_demo.cpp.o"
  "CMakeFiles/cow_fork_demo.dir/cow_fork_demo.cpp.o.d"
  "cow_fork_demo"
  "cow_fork_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cow_fork_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
