file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_hwopts.dir/bench_ablation_hwopts.cc.o"
  "CMakeFiles/bench_ablation_hwopts.dir/bench_ablation_hwopts.cc.o.d"
  "bench_ablation_hwopts"
  "bench_ablation_hwopts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_hwopts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
