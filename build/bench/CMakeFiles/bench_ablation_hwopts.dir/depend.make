# Empty dependencies file for bench_ablation_hwopts.
# This may be replaced when dependencies are built.
