file(REMOVE_RECURSE
  "CMakeFiles/bench_figure5_overheads.dir/bench_figure5_overheads.cc.o"
  "CMakeFiles/bench_figure5_overheads.dir/bench_figure5_overheads.cc.o.d"
  "bench_figure5_overheads"
  "bench_figure5_overheads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_figure5_overheads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
