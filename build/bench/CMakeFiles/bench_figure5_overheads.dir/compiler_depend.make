# Empty compiler generated dependencies file for bench_figure5_overheads.
# This may be replaced when dependencies are built.
