file(REMOVE_RECURSE
  "CMakeFiles/bench_memory_pressure.dir/bench_memory_pressure.cc.o"
  "CMakeFiles/bench_memory_pressure.dir/bench_memory_pressure.cc.o.d"
  "bench_memory_pressure"
  "bench_memory_pressure.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_memory_pressure.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
