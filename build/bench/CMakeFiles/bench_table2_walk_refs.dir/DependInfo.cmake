
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_table2_walk_refs.cc" "bench/CMakeFiles/bench_table2_walk_refs.dir/bench_table2_walk_refs.cc.o" "gcc" "bench/CMakeFiles/bench_table2_walk_refs.dir/bench_table2_walk_refs.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ap_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ap_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ap_guestos.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ap_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ap_vmm.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ap_walker.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ap_tlb.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ap_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ap_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ap_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
