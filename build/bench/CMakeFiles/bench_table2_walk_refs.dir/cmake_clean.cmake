file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_walk_refs.dir/bench_table2_walk_refs.cc.o"
  "CMakeFiles/bench_table2_walk_refs.dir/bench_table2_walk_refs.cc.o.d"
  "bench_table2_walk_refs"
  "bench_table2_walk_refs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_walk_refs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
