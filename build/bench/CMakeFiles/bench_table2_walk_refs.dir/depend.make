# Empty dependencies file for bench_table2_walk_refs.
# This may be replaced when dependencies are built.
