file(REMOVE_RECURSE
  "CMakeFiles/bench_table6_mode_coverage.dir/bench_table6_mode_coverage.cc.o"
  "CMakeFiles/bench_table6_mode_coverage.dir/bench_table6_mode_coverage.cc.o.d"
  "bench_table6_mode_coverage"
  "bench_table6_mode_coverage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table6_mode_coverage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
