# Empty compiler generated dependencies file for bench_table6_mode_coverage.
# This may be replaced when dependencies are built.
