file(REMOVE_RECURSE
  "CMakeFiles/bench_vmtrap_costs.dir/bench_vmtrap_costs.cc.o"
  "CMakeFiles/bench_vmtrap_costs.dir/bench_vmtrap_costs.cc.o.d"
  "bench_vmtrap_costs"
  "bench_vmtrap_costs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_vmtrap_costs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
