# Empty dependencies file for bench_vmtrap_costs.
# This may be replaced when dependencies are built.
