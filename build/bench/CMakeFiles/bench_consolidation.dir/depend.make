# Empty dependencies file for bench_consolidation.
# This may be replaced when dependencies are built.
