# Empty dependencies file for bench_ablation_pwc.
# This may be replaced when dependencies are built.
