file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_pwc.dir/bench_ablation_pwc.cc.o"
  "CMakeFiles/bench_ablation_pwc.dir/bench_ablation_pwc.cc.o.d"
  "bench_ablation_pwc"
  "bench_ablation_pwc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_pwc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
