file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_tradeoffs.dir/bench_table1_tradeoffs.cc.o"
  "CMakeFiles/bench_table1_tradeoffs.dir/bench_table1_tradeoffs.cc.o.d"
  "bench_table1_tradeoffs"
  "bench_table1_tradeoffs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_tradeoffs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
