# Empty dependencies file for bench_shsp_comparison.
# This may be replaced when dependencies are built.
