file(REMOVE_RECURSE
  "CMakeFiles/bench_shsp_comparison.dir/bench_shsp_comparison.cc.o"
  "CMakeFiles/bench_shsp_comparison.dir/bench_shsp_comparison.cc.o.d"
  "bench_shsp_comparison"
  "bench_shsp_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_shsp_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
