#!/usr/bin/env python3
"""Validate the JSON stats exports (CI gate).

Usage:
  check_stats_json.py stats      <machine-stats.json>   # apsim --stats-json
  check_stats_json.py runs       <run-results.json>     # bench --stats-json
  check_stats_json.py frames     <frames.ndjson>        # apsim_client output
                                                        # ('-' for stdin)
  check_stats_json.py throughput <BENCH_throughput.json>

Checks that the file parses, carries the expected versioned schema tag,
has the required keys, and that the per-cause VM-exit counts sum exactly
to the aggregate trap counter. The frames mode validates an apsimd
result stream: every line is one ap-run-frame-v1 / ap-error-v1 /
ap-batch-end-v1 object, run frames carry the batch/cell/worker envelope
and a complete run object, no batch answers the same cell twice, and
each batch-end's cell and error totals match the frames that preceded
it. Exit 0 on success, 1 on any violation.
"""

import json
import sys


def fail(msg):
    print(f"check_stats_json: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def require(cond, msg):
    if not cond:
        fail(msg)


def check_group(group, path):
    for key in ("name", "stats", "groups"):
        require(key in group, f"{path}: missing key '{key}'")
    for name, stat in group["stats"].items():
        require("type" in stat, f"{path}.{name}: stat missing 'type'")
        require(
            stat["type"] in ("scalar", "distribution", "formula"),
            f"{path}.{name}: unknown stat type '{stat['type']}'",
        )
        if stat["type"] in ("scalar", "formula"):
            require("value" in stat, f"{path}.{name}: missing 'value'")
        else:
            for key in ("count", "sum", "mean", "buckets"):
                require(key in stat, f"{path}.{name}: missing '{key}'")
    for name, child in group["groups"].items():
        check_group(child, f"{path}.{name}")


def find_group(group, name):
    if group.get("name") == name:
        return group
    for child in group.get("groups", {}).values():
        found = find_group(child, name)
        if found is not None:
            return found
    return None


def check_coherence_group(doc):
    """sum(shootdown_<cause>) must equal the aggregate shootdown count."""
    coh = find_group(doc, "coherence")
    if coh is None:
        return None
    stats = coh["stats"]
    require("shootdowns" in stats,
            "coherence group missing aggregate 'shootdowns'")
    total = stats["shootdowns"]["value"]
    per_cause = sum(
        stat["value"]
        for name, stat in stats.items()
        if name.startswith("shootdown_") and stat["type"] == "scalar"
    )
    require(
        per_cause == total,
        f"per-cause shootdowns sum to {per_cause}, aggregate is {total}",
    )
    return int(total)


def check_segments_group(doc):
    """Range-backend segment counters: present and internally sane."""
    seg = find_group(doc, "segments")
    if seg is None:
        return None
    stats = seg["stats"]
    for name in ("segment_hits", "segment_fills", "segment_spills",
                 "segment_invalidations"):
        require(name in stats, f"segments group missing '{name}'")
        require(stats[name]["type"] == "scalar",
                f"segments.{name}: must be a scalar")
    # Every spill is an install that evicted a live register.
    require(
        stats["segment_spills"]["value"]
        <= stats["segment_fills"]["value"],
        "segment_spills exceeds segment_fills",
    )
    return int(stats["segment_hits"]["value"])


def check_stats(doc):
    require(doc.get("schema") == "ap-stats-v1",
            f"bad schema tag: {doc.get('schema')!r}")
    check_group(doc, doc.get("name", "<root>"))

    seg_hits = check_segments_group(doc)
    if seg_hits is not None:
        print(f"check_stats_json: segments group OK "
              f"({seg_hits} segment hits)")

    shootdowns = check_coherence_group(doc)
    coh_note = ("" if shootdowns is None
                else f", {shootdowns} shootdowns attributed")

    vmm = find_group(doc, "vmm")
    if vmm is None:
        print("check_stats_json: no vmm group (native run); "
              f"structure OK{coh_note}")
        return
    stats = vmm["stats"]
    require("traps" in stats, "vmm group missing aggregate 'traps'")
    total = stats["traps"]["value"]
    per_cause = sum(
        stat["value"]
        for name, stat in stats.items()
        if name.startswith("trap_") and not name.endswith("_cycles")
        and stat["type"] == "scalar"
    )
    require(
        per_cause == total,
        f"per-cause trap counts sum to {per_cause}, aggregate is {total}",
    )
    print(f"check_stats_json: OK ({int(total)} traps attributed{coh_note})")


def check_host(host, path="host"):
    require(isinstance(host, dict), f"'{path}' must be an object")
    for key in ("hardware_concurrency", "jobs", "build_type"):
        require(key in host, f"{path}: missing key '{key}'")
    for key in ("hardware_concurrency", "jobs"):
        require(
            isinstance(host[key], int) and host[key] >= 0,
            f"{path}.{key}: must be a non-negative integer",
        )
    require(isinstance(host["build_type"], str) and host["build_type"],
            f"{path}.build_type: must be a non-empty string")


def check_run(run, label):
    """Validate one run object (an ap-runs-v1 runs[] element or the
    "run" of an ap-run-frame-v1). Returns (is_coherence, is_range)."""
    required = (
        "workload", "mode", "page_size", "instructions", "ideal_cycles",
        "walk_cycles", "trap_cycles", "tlb_misses", "walks", "traps",
        "avg_walk_refs", "coverage", "traps_by_cause",
    )
    segment_keys = ("segment_hits", "segment_spills",
                    "segment_invalidations")
    for key in required:
        require(key in run, f"{label}: missing key '{key}'")
    require(len(run["coverage"]) == 6,
            f"{label}: coverage must have 6 classes")
    per_cause = sum(run["traps_by_cause"].values())
    require(
        per_cause == run["traps"],
        f"{label} ({run['workload']}): per-cause traps sum to "
        f"{per_cause}, aggregate is {run['traps']}",
    )
    # Coherence block: emitted only for multi-vCPU runs, and then
    # always complete and internally consistent.
    is_coherence = "num_vcpus" in run
    if is_coherence:
        require(run["num_vcpus"] > 1,
                f"{label}: num_vcpus present but not > 1")
        for key in ("coherence_cycles", "shootdowns",
                    "remote_invalidations", "shootdowns_by_cause",
                    "coherence_overhead"):
            require(key in run, f"{label}: has num_vcpus but "
                                f"missing '{key}'")
        by_cause = sum(run["shootdowns_by_cause"].values())
        require(
            by_cause == run["shootdowns"],
            f"{label} ({run['workload']}): per-cause shootdowns "
            f"sum to {by_cause}, aggregate is {run['shootdowns']}",
        )
        remotes = run["num_vcpus"] - 1
        require(
            run["remote_invalidations"] == run["shootdowns"] * remotes,
            f"{label} ({run['workload']}): remote_invalidations "
            f"{run['remote_invalidations']} != shootdowns x {remotes}",
        )
    else:
        for key in ("coherence_cycles", "shootdowns",
                    "shootdowns_by_cause"):
            require(key not in run,
                    f"{label}: single-vCPU run carries '{key}'")
    # Segment block: emitted only for range-mode runs, and then
    # always complete.
    is_range = run["mode"] == "Range"
    if is_range:
        for key in segment_keys:
            require(key in run, f"{label}: range run missing '{key}'")
            require(
                isinstance(run[key], int) and run[key] >= 0,
                f"{label}.{key}: must be a non-negative integer",
            )
    else:
        for key in segment_keys:
            require(key not in run,
                    f"{label}: non-range run carries '{key}'")
    return is_coherence, is_range


def check_runs(doc):
    require(doc.get("schema") == "ap-runs-v1",
            f"bad schema tag: {doc.get('schema')!r}")
    check_host(doc.get("host"))
    runs = doc.get("runs")
    require(isinstance(runs, list) and runs, "missing/empty 'runs' array")
    coherence_runs = 0
    range_runs = 0
    for i, run in enumerate(runs):
        is_coherence, is_range = check_run(run, f"runs[{i}]")
        coherence_runs += is_coherence
        range_runs += is_range
    coh_note = (f"; {coherence_runs} multi-vCPU" if coherence_runs
                else "")
    if range_runs:
        coh_note += f"; {range_runs} range"
    host = doc["host"]
    print(f"check_stats_json: OK ({len(runs)} runs{coh_note}; "
          f"jobs={host['jobs']}, build={host['build_type']})")


def check_point(point, path, allow_zero_rate=False):
    """One {jobs, seconds, accesses_per_sec} measurement block."""
    require(isinstance(point, dict), f"'{path}' must be an object")
    for key in ("jobs", "seconds", "accesses_per_sec"):
        require(key in point, f"{path}: missing key '{key}'")
    require(point["seconds"] > 0, f"{path}.seconds: must be positive")
    if not allow_zero_rate:
        require(point["accesses_per_sec"] > 0,
                f"{path}.accesses_per_sec: must be positive")


def check_throughput(doc):
    """Validate BENCH_throughput.json (bench_throughput output)."""
    for key in ("cells", "ops_per_cell", "total_accesses", "host",
                "serial", "parallel", "trace_cache", "snapshot_cache",
                "machine_pool", "filter", "engine_speedup_vs_cold",
                "speedup", "deterministic"):
        require(key in doc, f"throughput doc missing key '{key}'")
    require(doc["deterministic"] is True,
            "throughput run was not deterministic")
    check_host(doc["host"])
    check_point(doc["serial"], "serial")
    check_point(doc["parallel"], "parallel")
    require("skipped" in doc["parallel"],
            "parallel: missing key 'skipped'")
    skipped = doc["parallel"]["skipped"]
    require(isinstance(skipped, bool),
            "parallel.skipped: must be a boolean")
    # On a single-core host the parallel section is a placeholder, so
    # the parallel speedup is exempt from the >=1 sanity bound.
    if not skipped:
        require(doc["speedup"] > 0, "speedup: must be positive")
    for section, points in (("trace_cache", ("replay", "batched",
                                             "regen")),
                            ("snapshot_cache", ("fork",)),
                            ("machine_pool", ("pooled",))):
        for name in points:
            require(name in doc[section],
                    f"{section}: missing point '{name}'")
            check_point(doc[section][name], f"{section}.{name}")
    filt = doc["filter"]
    for key in ("simd", "blocks_scanned", "lanes_scanned",
                "lanes_filtered", "hit_mask_density", "bulk_retires",
                "run_fastpaths", "run_fastpath_lanes"):
        require(key in filt, f"filter: missing key '{key}'")
    require(isinstance(filt["simd"], bool),
            "filter.simd: must be a boolean")
    require(
        filt["lanes_filtered"] <= filt["lanes_scanned"],
        f"filter: lanes_filtered {filt['lanes_filtered']} exceeds "
        f"lanes_scanned {filt['lanes_scanned']}",
    )
    require(0.0 <= filt["hit_mask_density"] <= 1.0,
            f"filter.hit_mask_density {filt['hit_mask_density']} "
            "outside [0, 1]")
    if filt["simd"]:
        require(filt["lanes_scanned"] > 0,
                "filter.simd is true but no lanes were scanned")
        require(filt["blocks_scanned"] > 0,
                "filter.simd is true but no blocks were scanned")
    require(doc["engine_speedup_vs_cold"] > 0,
            "engine_speedup_vs_cold: must be positive")
    density = filt["hit_mask_density"]
    par_note = " (parallel skipped)" if skipped else ""
    print(f"check_stats_json: OK (engine "
          f"{doc['engine_speedup_vs_cold']:.2f}x vs cold, filter "
          f"density {100 * density:.1f}%, "
          f"{filt['run_fastpaths']} run fast-paths{par_note})")


def check_frames(lines):
    """Validate an apsimd result stream (NDJSON, one frame per line)."""
    # batch id -> set of answered cell indices / error count / end doc
    answered = {}
    cell_errors = {}
    ends = {}
    run_frames = 0
    for lineno, line in enumerate(lines, start=1):
        line = line.strip()
        if not line:
            continue
        label = f"line {lineno}"
        try:
            frame = json.loads(line)
        except json.JSONDecodeError as e:
            fail(f"{label}: not valid JSON: {e}")
        require(isinstance(frame, dict), f"{label}: frame must be an "
                                         "object")
        schema = frame.get("schema")
        if schema == "ap-run-frame-v1":
            for key in ("batch", "cell", "worker", "run"):
                require(key in frame, f"{label}: run frame missing "
                                      f"'{key}'")
            for key in ("batch", "cell", "worker"):
                require(
                    isinstance(frame[key], int) and frame[key] >= 0,
                    f"{label}.{key}: must be a non-negative integer",
                )
            batch, cell = frame["batch"], frame["cell"]
            require(batch not in ends,
                    f"{label}: run frame for batch {batch} after its "
                    "batch-end")
            cells = answered.setdefault(batch, set())
            require(cell not in cells,
                    f"{label}: duplicate cell {cell} in batch {batch}")
            cells.add(cell)
            check_run(frame["run"], f"{label}.run")
            run_frames += 1
        elif schema == "ap-error-v1":
            require("error" in frame and isinstance(frame["error"], str),
                    f"{label}: error frame missing 'error' string")
            # Cell-scoped errors answer a cell; batch-scoped (or
            # connection-scoped) ones don't.
            if "cell" in frame:
                require("batch" in frame,
                        f"{label}: cell-scoped error missing 'batch'")
                batch, cell = frame["batch"], frame["cell"]
                cells = answered.setdefault(batch, set())
                require(cell not in cells,
                        f"{label}: duplicate cell {cell} in batch "
                        f"{batch}")
                cells.add(cell)
                cell_errors[batch] = cell_errors.get(batch, 0) + 1
        elif schema == "ap-batch-end-v1":
            for key in ("batch", "cells", "errors"):
                require(key in frame, f"{label}: batch end missing "
                                      f"'{key}'")
            batch = frame["batch"]
            require(batch not in ends,
                    f"{label}: second batch-end for batch {batch}")
            ends[batch] = frame
            seen = len(answered.get(batch, ()))
            require(
                frame["cells"] == seen,
                f"{label}: batch {batch} ended with cells="
                f"{frame['cells']} but {seen} cells were answered",
            )
            errs = cell_errors.get(batch, 0)
            require(
                frame["errors"] == errs,
                f"{label}: batch {batch} ended with errors="
                f"{frame['errors']} but {errs} cell errors streamed",
            )
        else:
            fail(f"{label}: unknown frame schema {schema!r}")
    require(run_frames or ends or cell_errors, "no frames in input")
    for batch in answered:
        require(batch in ends,
                f"batch {batch} streamed cells but never ended")
    print(f"check_stats_json: OK ({run_frames} run frames, "
          f"{len(ends)} batch(es), "
          f"{sum(cell_errors.values())} cell error(s))")


def main():
    if len(sys.argv) != 3 or sys.argv[1] not in ("stats", "runs",
                                                 "frames", "throughput"):
        print(__doc__, file=sys.stderr)
        return 2
    mode, path = sys.argv[1], sys.argv[2]
    if mode == "frames":
        if path == "-":
            check_frames(sys.stdin)
        else:
            try:
                with open(path) as f:
                    check_frames(f)
            except OSError as e:
                fail(f"cannot load {path}: {e}")
        return 0
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"cannot load {path}: {e}")
    if mode == "stats":
        check_stats(doc)
    elif mode == "throughput":
        check_throughput(doc)
    else:
        check_runs(doc)
    return 0


if __name__ == "__main__":
    sys.exit(main())
