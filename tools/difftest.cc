/**
 * @file
 * Differential-testing driver: fans randomized seeds across the
 * thread pool, replaying each trace through lock-stepped shadow,
 * nested, agile, and range machines with invariant checks after every
 * event.
 * Failing seeds are shrunk to a minimal trace and written to disk for
 * standalone replay.
 *
 * Usage:
 *   difftest [--seeds N] [--seed-base S] [--ops N] [--jobs N]
 *            [--page 4k|2m|both] [--reclaim] [--no-hw-opts]
 *            [--sweep N] [--out DIR]
 *   difftest --inject K [...]     self-test: a shadow-coherence bug is
 *                                 injected after the Kth access; every
 *                                 seed must be caught and shrink to a
 *                                 still-failing trace (exit 0 only
 *                                 then)
 *   difftest --replay FILE [...]  replay one saved trace and report
 *   difftest --snapshot [...]     snapshot-vs-cold mode: per seed,
 *                                 run each workload cold and via
 *                                 warmup -> capture -> restore into a
 *                                 fresh machine -> measured region,
 *                                 and require the two RunResults to
 *                                 match field for field
 *
 * Exit status: 0 when every seed passed (or, with --inject, every
 * seed was caught), 1 otherwise.
 */

#include <cstdint>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "base/logging.hh"
#include "sim/config.hh"
#include "sim/experiment.hh"
#include "sim/oracle.hh"
#include "sim/parallel_runner.hh"
#include "sim/snapshot.hh"

namespace
{

const char kUsage[] =
    "usage: difftest [--seeds N] [--seed-base S] [--ops N] [--jobs N]\n"
    "                [--page 4k|2m|both] [--vcpus N[,N...]]\n"
    "                [--coherence sw|hw] [--reclaim] [--no-hw-opts]\n"
    "                [--sweep N] [--inject K] [--inject-stale K]\n"
    "                [--inject-segment K] [--replay FILE] [--out DIR]\n"
    "                [--snapshot]\n";

struct Cli
{
    std::uint64_t seeds = 64;
    std::uint64_t seedBase = 1;
    std::uint64_t ops = 3000;
    unsigned jobs = 0;
    std::vector<ap::PageSize> pages = {ap::PageSize::Size4K,
                                       ap::PageSize::Size2M};
    bool reclaim = false;
    bool hwOpts = true;
    std::uint64_t sweep = 256;
    std::uint64_t inject = 0;
    std::uint64_t injectStale = 0;
    std::uint64_t injectSegment = 0;
    std::vector<unsigned> vcpus = {1};
    ap::TlbCoherence coherence = ap::TlbCoherence::Software;
    bool snapshot = false;
    std::string replayPath;
    std::string outDir = ".";
};

struct SeedOutcome
{
    std::uint64_t seed = 0;
    ap::OracleReport report;
};

void
printViolation(const ap::InvariantViolation &v)
{
    std::cout << "  invariant : " << v.invariant << "\n"
              << "  event     : #" << v.eventIndex << "\n"
              << "  va        : 0x" << std::hex << v.va << std::dec
              << "\n"
              << "  detail    : " << v.detail << "\n";
}

ap::OracleOptions
optionsFor(const Cli &cli, ap::PageSize page, std::uint64_t seed,
           unsigned vcpus)
{
    ap::OracleOptions opts;
    opts.pageSize = page;
    opts.hwOpts = cli.hwOpts;
    opts.seed = seed;
    opts.operations = cli.ops;
    opts.includeReclaim = cli.reclaim;
    opts.sweepInterval = cli.sweep;
    opts.injectAtAccess = cli.inject;
    opts.injectStaleTlbAtAccess = cli.injectStale;
    opts.injectStaleSegmentAtAccess = cli.injectSegment;
    opts.numVcpus = vcpus;
    opts.tlbCoherence = cli.coherence;
    return opts;
}

/** "4K" for the classic single-vCPU matrix, "4K/4vcpu" beyond it. */
std::string
cellLabel(ap::PageSize page, unsigned vcpus)
{
    std::string label = ap::pageSizeName(page);
    if (vcpus > 1)
        label += "/" + std::to_string(vcpus) + "vcpu";
    return label;
}

/**
 * Shrink a failing seed and persist the minimal trace.
 * @return true when the shrunk trace still fails standalone.
 */
bool
shrinkAndSave(const Cli &cli, const ap::OracleOptions &opts,
              const ap::Trace &trace, ap::PageSize page,
              std::uint64_t seed)
{
    ap::Trace minimal = ap::shrinkTrace(trace, opts);
    std::string path = cli.outDir + "/difftest_fail_" +
                       ap::pageSizeName(page) + "_seed" +
                       std::to_string(seed) + ".aptrace";
    if (!ap::writeTraceFile(minimal, path)) {
        std::cout << "  (could not write " << path << ")\n";
        return false;
    }
    ap::OracleReport again = ap::runDifferential(minimal, opts);
    std::cout << "  shrunk    : " << trace.events.size() << " -> "
              << minimal.events.size() << " events, saved to " << path
              << "\n"
              << "  replay    : difftest --replay " << path << " --page "
              << ap::pageSizeName(page)
              << (cli.inject
                      ? " --inject " + std::to_string(cli.inject)
                      : std::string())
              << (cli.injectStale
                      ? " --inject-stale " + std::to_string(cli.injectStale)
                      : std::string())
              << (cli.injectSegment
                      ? " --inject-segment " +
                            std::to_string(cli.injectSegment)
                      : std::string())
              << (opts.numVcpus > 1
                      ? " --vcpus " + std::to_string(opts.numVcpus)
                      : std::string())
              << (cli.hwOpts ? "" : " --no-hw-opts") << "\n";
    return !again.passed;
}

int
runMatrix(const Cli &cli)
{
    bool all_ok = true;
    for (ap::PageSize page : cli.pages) {
    for (unsigned vcpus : cli.vcpus) {
        std::string label = cellLabel(page, vcpus);
        std::vector<SeedOutcome> outcomes = ap::parallelMap(
            cli.seeds, cli.jobs, [&](std::uint64_t i) {
                SeedOutcome out;
                out.seed = cli.seedBase + i;
                ap::OracleOptions opts =
                    optionsFor(cli, page, out.seed, vcpus);
                out.report =
                    ap::runDifferential(ap::makeRandomTrace(opts), opts);
                return out;
            });

        std::uint64_t caught = 0, events = 0, accesses = 0;
        for (const SeedOutcome &out : outcomes) {
            events += out.report.eventsReplayed;
            accesses += out.report.accessesChecked;
            if (!out.report.passed)
                ++caught;
        }

        if (cli.inject || cli.injectStale || cli.injectSegment) {
            // Self-test: every seed must be caught, and the failure
            // must survive shrinking.
            std::cout << label << ": injected bug "
                      << "caught in " << caught << "/" << cli.seeds
                      << " seeds\n";
            if (caught != cli.seeds) {
                all_ok = false;
                continue;
            }
            for (const SeedOutcome &out : outcomes) {
                ap::OracleOptions opts =
                    optionsFor(cli, page, out.seed, vcpus);
                printViolation(out.report.violations.front());
                if (!shrinkAndSave(cli, opts,
                                   ap::makeRandomTrace(opts), page,
                                   out.seed)) {
                    std::cout << "  shrunk trace no longer fails\n";
                    all_ok = false;
                }
            }
            continue;
        }

        std::cout << label << ": " << cli.seeds
                  << " seeds, " << events << " events, " << accesses
                  << " accesses checked";
        if (caught == 0) {
            std::cout << " -- PASS\n";
            continue;
        }
        std::cout << " -- " << caught << " FAILING SEED"
                  << (caught > 1 ? "S" : "") << "\n";
        all_ok = false;
        for (const SeedOutcome &out : outcomes) {
            if (out.report.passed)
                continue;
            std::cout << "seed " << out.seed << " (" << label << "):\n";
            printViolation(out.report.violations.front());
            ap::OracleOptions opts =
                optionsFor(cli, page, out.seed, vcpus);
            shrinkAndSave(cli, opts, ap::makeRandomTrace(opts), page,
                          out.seed);
        }
    }
    }
    return all_ok ? 0 : 1;
}

/** Field-for-field RunResult comparison; appends mismatches. */
bool
sameRunResult(const ap::RunResult &a, const ap::RunResult &b,
              std::string &why)
{
    auto check = [&why](bool ok, const char *field) {
        if (!ok)
            why += std::string(why.empty() ? "" : ", ") + field;
        return ok;
    };
    bool same = true;
    same &= check(a.instructions == b.instructions, "instructions");
    same &= check(a.idealCycles == b.idealCycles, "idealCycles");
    same &= check(a.walkCycles == b.walkCycles, "walkCycles");
    same &= check(a.trapCycles == b.trapCycles, "trapCycles");
    same &= check(a.tlbMisses == b.tlbMisses, "tlbMisses");
    same &= check(a.walks == b.walks, "walks");
    same &= check(a.traps == b.traps, "traps");
    same &= check(a.guestPageFaults == b.guestPageFaults,
                  "guestPageFaults");
    same &= check(a.avgWalkRefs == b.avgWalkRefs, "avgWalkRefs");
    for (int i = 0; i < 6; ++i)
        same &= check(a.coverage[i] == b.coverage[i], "coverage");
    for (unsigned k = 0; k < ap::kNumTrapKinds; ++k)
        same &= check(a.trapByKind[k] == b.trapByKind[k], "trapByKind");
    same &= check(a.segmentHits == b.segmentHits, "segmentHits");
    same &= check(a.segmentSpills == b.segmentSpills, "segmentSpills");
    same &= check(a.segmentInvalidations == b.segmentInvalidations,
                  "segmentInvalidations");
    return same;
}

/**
 * Snapshot-vs-cold differential: every workload x mode x page cell
 * runs twice — cold (Machine::run) and split (runWarmup on one
 * machine, capture, restore into a *fresh* machine, runMeasured) —
 * and the two results must be bit-identical.
 */
int
runSnapshotDiff(const Cli &cli)
{
    const ap::VirtMode modes[] = {ap::VirtMode::Nested,
                                  ap::VirtMode::Shadow,
                                  ap::VirtMode::Agile,
                                  ap::VirtMode::Range};
    bool all_ok = true;
    for (ap::PageSize page : cli.pages) {
        std::uint64_t cells = 0, failed = 0;
        for (std::uint64_t i = 0; i < cli.seeds; ++i) {
            std::uint64_t seed = cli.seedBase + i;
            const auto &names = ap::workloadNames();
            const std::string &wl = names[i % names.size()];
            ap::WorkloadParams params = ap::defaultParamsFor(wl);
            params.operations = cli.ops;
            params.seed = seed;
            unsigned vcpus = cli.vcpus[i % cli.vcpus.size()];
            for (ap::VirtMode mode : modes) {
                ap::SimConfig cfg =
                    configFor(mode, page, params, cli.hwOpts);
                cfg.numVcpus = vcpus;
                cfg.tlbCoherence = cli.coherence;
                auto w1 = ap::makeWorkload(wl, params);
                ap::Machine cold_machine(cfg);
                ap::RunResult cold = cold_machine.run(*w1);

                auto w2 = ap::makeWorkload(wl, params);
                ap::Machine warm(cfg);
                warm.runWarmup(*w2);
                ap::SnapshotPtr snap = ap::captureSnapshot(warm);
                ap::Machine restored(cfg);
                if (!ap::restoreSnapshot(*snap, restored)) {
                    std::cout << "seed " << seed << " " << wl << "/"
                              << ap::virtModeName(mode)
                              << ": restore failed\n";
                    all_ok = false;
                    ++failed;
                    ++cells;
                    continue;
                }
                ap::RunResult split = restored.runMeasured(*w2);
                std::string why;
                if (!sameRunResult(cold, split, why)) {
                    std::cout << "seed " << seed << " " << wl << "/"
                              << ap::virtModeName(mode) << " ("
                              << ap::pageSizeName(page)
                              << "): snapshot run diverges from cold "
                              << "run in " << why << "\n";
                    all_ok = false;
                    ++failed;
                }
                ++cells;
            }
        }
        std::cout << ap::pageSizeName(page) << ": " << cli.seeds
                  << " seeds, " << cells
                  << " snapshot-vs-cold cells -- "
                  << (failed ? "FAIL" : "PASS") << "\n";
    }
    return all_ok ? 0 : 1;
}

int
runReplay(const Cli &cli)
{
    ap::Trace trace;
    if (!ap::readTraceFile(cli.replayPath, trace)) {
        std::cerr << "cannot read trace: " << cli.replayPath << "\n";
        return 1;
    }
    int status = 0;
    for (ap::PageSize page : cli.pages) {
        ap::OracleOptions opts =
            optionsFor(cli, page, trace.seed, cli.vcpus.front());
        ap::OracleReport rep = ap::runDifferential(trace, opts);
        std::cout << cli.replayPath << " (" << ap::pageSizeName(page)
                  << "): " << rep.eventsReplayed << " events, "
                  << rep.accessesChecked << " accesses -- "
                  << (rep.passed ? "PASS" : "VIOLATION") << "\n";
        if (!rep.passed) {
            printViolation(rep.violations.front());
            status = 1;
        }
    }
    return status;
}

} // namespace

int
main(int argc, char **argv)
{
    ap::setQuietLogging(true);
    Cli cli;
    for (int i = 1; i < argc; ++i) {
        std::string a = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc) {
                std::cerr << "missing value for " << a << "\n" << kUsage;
                std::exit(2);
            }
            return argv[++i];
        };
        // Reject junk ("4k", "1e6", "-1") instead of silently
        // truncating or wrapping the way bare stoull would.
        auto nextU64 = [&]() -> std::uint64_t {
            std::string v = next();
            std::uint64_t out = 0;
            if (!ap::parseU64(v, out)) {
                std::cerr << "bad value for " << a << ": '" << v
                          << "' (expected a non-negative integer)\n"
                          << kUsage;
                std::exit(2);
            }
            return out;
        };
        if (a == "--seeds") {
            cli.seeds = nextU64();
        } else if (a == "--seed-base") {
            cli.seedBase = nextU64();
        } else if (a == "--ops") {
            cli.ops = nextU64();
        } else if (a == "--jobs") {
            cli.jobs = static_cast<unsigned>(nextU64());
        } else if (a == "--page") {
            std::string p = next();
            if (p == "both") {
                cli.pages = {ap::PageSize::Size4K, ap::PageSize::Size2M};
            } else {
                ap::PageSize ps;
                if (!ap::parsePageSize(p, ps))
                    ap_fatal("bad page size: ", p);
                cli.pages = {ps};
            }
        } else if (a == "--reclaim") {
            cli.reclaim = true;
        } else if (a == "--no-hw-opts") {
            cli.hwOpts = false;
        } else if (a == "--sweep") {
            cli.sweep = nextU64();
        } else if (a == "--inject") {
            cli.inject = nextU64();
        } else if (a == "--inject-stale") {
            cli.injectStale = nextU64();
        } else if (a == "--inject-segment") {
            cli.injectSegment = nextU64();
        } else if (a == "--vcpus") {
            cli.vcpus.clear();
            std::string v = next();
            std::size_t pos = 0;
            while (pos <= v.size()) {
                std::size_t comma = v.find(',', pos);
                std::string item = v.substr(
                    pos, comma == std::string::npos ? comma
                                                    : comma - pos);
                std::uint64_t n = 0;
                if (!ap::parseU64(item, n) || n < 1 || n > 64) {
                    std::cerr << "bad value for --vcpus: '" << item
                              << "' (expected 1..64)\n"
                              << kUsage;
                    return 2;
                }
                cli.vcpus.push_back(static_cast<unsigned>(n));
                if (comma == std::string::npos)
                    break;
                pos = comma + 1;
            }
        } else if (a == "--coherence") {
            std::string c = next();
            if (c == "sw" || c == "software") {
                cli.coherence = ap::TlbCoherence::Software;
            } else if (c == "hw" || c == "hardware") {
                cli.coherence = ap::TlbCoherence::Hardware;
            } else {
                std::cerr << "bad value for --coherence: '" << c
                          << "' (expected sw or hw)\n"
                          << kUsage;
                return 2;
            }
        } else if (a == "--replay") {
            cli.replayPath = next();
        } else if (a == "--snapshot") {
            cli.snapshot = true;
        } else if (a == "--out") {
            cli.outDir = next();
        } else {
            std::cerr << "unknown option: " << a << "\n" << kUsage;
            return 2;
        }
    }
    if (cli.snapshot)
        return runSnapshotDiff(cli);
    return cli.replayPath.empty() ? runMatrix(cli) : runReplay(cli);
}
