/**
 * @file
 * apsimd: the sharded simulation service daemon.
 *
 * Pre-forks a fleet of worker processes — each with a persistent
 * trace cache, a byte-budgeted snapshot pool and a machine pool —
 * binds a Unix or loopback-TCP socket, and serves experiment batches:
 * cells are sharded across the fleet with digest affinity and work
 * stealing, and one ap-run-frame-v1 JSON frame streams back per
 * finished cell. SIGTERM/SIGINT drain the in-flight batch before
 * exiting.
 *
 * Usage:
 *   apsimd --socket /tmp/apsim.sock --workers 4 --snapshot-pool-mb 256
 *   apsimd --port 0 --workers 8   # ephemeral TCP port, printed
 */

#include <csignal>
#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <string>

#include "base/logging.hh"
#include "service/server.hh"

namespace
{

ap::service::ServiceServer *g_server = nullptr;

void
onTerm(int)
{
    if (g_server)
        g_server->requestStop();
}

bool
parseU64Arg(const char *s, std::uint64_t &out)
{
    char *end = nullptr;
    out = std::strtoull(s, &end, 10);
    return end && *end == '\0';
}

int
usage()
{
    std::cerr
        << "usage: apsimd [--socket PATH | --port N] [--workers N]\n"
        << "              [--snapshot-pool-mb N] [--max-idle-machines N]\n"
        << "              [--unbatched] [--quiet]\n";
    return 2;
}

} // namespace

int
main(int argc, char **argv)
{
    ap::service::ServiceOptions opt;
    opt.socketPath = "";
    opt.tcpPort = -1;
    bool quiet = false;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto value = [&]() -> const char * {
            return i + 1 < argc ? argv[++i] : nullptr;
        };
        std::uint64_t n = 0;
        if (arg == "--socket") {
            const char *v = value();
            if (!v)
                return usage();
            opt.socketPath = v;
        } else if (arg == "--port") {
            const char *v = value();
            if (!v || !parseU64Arg(v, n) || n > 65535)
                return usage();
            opt.tcpPort = static_cast<int>(n);
        } else if (arg == "--workers") {
            const char *v = value();
            if (!v || !parseU64Arg(v, n) || n == 0 || n > 256)
                return usage();
            opt.workers = static_cast<unsigned>(n);
        } else if (arg == "--snapshot-pool-mb") {
            const char *v = value();
            if (!v || !parseU64Arg(v, n))
                return usage();
            opt.snapshotPoolBytes = n << 20;
        } else if (arg == "--max-idle-machines") {
            const char *v = value();
            if (!v || !parseU64Arg(v, n))
                return usage();
            opt.maxIdleMachines = static_cast<std::size_t>(n);
        } else if (arg == "--unbatched") {
            opt.batched = false;
        } else if (arg == "--quiet") {
            quiet = true;
        } else {
            return usage();
        }
    }
    if (opt.socketPath.empty() && opt.tcpPort < 0) {
        std::cerr << "apsimd: need --socket PATH or --port N\n";
        return usage();
    }
    if (opt.tcpPort < 0)
        opt.tcpPort = 0;
    ap::setQuietLogging(quiet);

    ap::service::ServiceServer server(opt);
    std::string err;
    if (!server.start(&err)) {
        std::cerr << "apsimd: " << err << "\n";
        return 1;
    }
    g_server = &server;
    std::signal(SIGTERM, onTerm);
    std::signal(SIGINT, onTerm);

    if (!quiet) {
        if (!opt.socketPath.empty())
            std::cerr << "apsimd: listening on " << opt.socketPath;
        else
            std::cerr << "apsimd: listening on 127.0.0.1:"
                      << server.port();
        std::cerr << " with " << opt.workers << " worker(s)\n";
    }
    // Machine-readable endpoint line for wrappers that asked for an
    // ephemeral port.
    if (opt.socketPath.empty())
        std::cout << server.port() << std::endl;

    server.serve();
    g_server = nullptr;

    const ap::service::ServiceStats &st = server.stats();
    if (!quiet) {
        std::cerr << "apsimd: served " << st.batches << " batch(es), "
                  << st.cells << " cell(s), " << st.cellErrors
                  << " error(s); affinity hits " << st.affinityHits
                  << ", steals " << st.steals << ", crashes "
                  << st.workerCrashes << ", retries " << st.cellRetries
                  << "\n";
    }
    return 0;
}
