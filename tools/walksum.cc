/**
 * @file
 * walksum: offline summarizer for walk-trace files.
 *
 * Usage:
 *   walksum [--top N] <trace-file> [trace-file ...]
 *
 * Reads traces produced by `apsim --trace-walks=<path>` (or any driver
 * that calls writeWalkTraceFile) and reconstructs, from the trace
 * alone: the Table VI mode-coverage fractions, the average memory
 * references per TLB miss, per-cause VM-exit attribution, and the
 * top-N hottest walk shapes. When the ring did not wrap (dropped == 0)
 * the coverage fractions are bit-identical to the simulator's own
 * counters for the measured region.
 *
 * Exit status: 0 on success, 1 if any file could not be read, 2 on
 * bad arguments.
 */

#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "sim/config.hh"
#include "trace/walk_trace.hh"

namespace
{

const char kUsage[] =
    "usage: walksum [--top N] <trace-file> [trace-file ...]\n";

} // namespace

int
main(int argc, char **argv)
{
    std::uint64_t top = 10;
    std::vector<std::string> paths;

    for (int i = 1; i < argc; ++i) {
        std::string a = argv[i];
        if (a == "--top") {
            if (i + 1 >= argc) {
                std::cerr << "missing value for --top\n" << kUsage;
                return 2;
            }
            if (!ap::parseU64(argv[++i], top)) {
                std::cerr << "bad value for --top: '" << argv[i]
                          << "' (expected a non-negative integer)\n"
                          << kUsage;
                return 2;
            }
        } else if (a == "--help" || a == "-h") {
            std::cout << kUsage;
            return 0;
        } else if (!a.empty() && a[0] == '-') {
            std::cerr << "unknown option: " << a << "\n" << kUsage;
            return 2;
        } else {
            paths.push_back(a);
        }
    }
    if (paths.empty()) {
        std::cerr << kUsage;
        return 2;
    }

    int status = 0;
    for (const std::string &path : paths) {
        std::vector<ap::WalkTraceRecord> records;
        std::uint64_t dropped = 0;
        if (!ap::readWalkTraceFile(path, records, dropped)) {
            std::cerr << path
                      << ": not a readable walk-trace file (wrong "
                         "magic/version or truncated)\n";
            status = 1;
            continue;
        }
        if (paths.size() > 1)
            std::cout << "== " << path << " ==\n";
        ap::WalkTraceSummary summary = ap::summarizeWalkTrace(
            records, dropped, static_cast<std::size_t>(top));
        ap::printWalkTraceSummary(std::cout, summary);
    }
    return status;
}
