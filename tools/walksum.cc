/**
 * @file
 * walksum: offline summarizer for walk-trace files.
 *
 * Usage:
 *   walksum [--top N] [--stats STATS.json] <trace-file> [...]
 *
 * Reads traces produced by `apsim --trace-walks=<path>` (or any driver
 * that calls writeWalkTraceFile) and reconstructs, from the trace
 * alone: the Table VI mode-coverage fractions, the average memory
 * references per TLB miss, per-cause VM-exit attribution, and the
 * top-N hottest walk shapes. When the ring did not wrap (dropped == 0)
 * the coverage fractions are bit-identical to the simulator's own
 * counters for the measured region.
 *
 * Walk traces carry translation events only; with `--stats` pointing
 * at the run's `apsim --stats-json` export, walksum also prints the
 * engine's allocator-pool counters (arena pool hits/recycles/
 * high-water/slab allocations and the guest frame pools) so the
 * observability surfaces travel together.
 *
 * Exit status: 0 on success, 1 if any file could not be read, 2 on
 * bad arguments.
 */

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "sim/config.hh"
#include "trace/walk_trace.hh"

namespace
{

const char kUsage[] =
    "usage: walksum [--top N] [--stats STATS.json] <trace-file> "
    "[trace-file ...]\n";

/**
 * Pull one named stat's "value" out of an ap-stats-v1 JSON document.
 * Deliberately a string scan, not a JSON parser: stat names are
 * unique keys in the export and values are plain numbers, which is
 * all the pool counters need. @return false if the name is absent.
 */
bool
extractStatValue(const std::string &doc, const std::string &name,
                 double &value)
{
    std::string::size_type at = doc.find("\"" + name + "\"");
    if (at == std::string::npos)
        return false;
    at = doc.find("\"value\"", at);
    if (at == std::string::npos)
        return false;
    at = doc.find(':', at);
    if (at == std::string::npos)
        return false;
    return std::sscanf(doc.c_str() + at + 1, " %lf", &value) == 1;
}

/** Print the engine pool counters recorded in @p stats_path. */
void
printPoolCounters(std::ostream &os, const std::string &stats_path)
{
    std::ifstream in(stats_path);
    if (!in) {
        std::cerr << stats_path << ": cannot read stats JSON\n";
        return;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    const std::string doc = buf.str();

    static const struct
    {
        const char *name;
        const char *label;
    } kCounters[] = {
        {"arena_pool_hits", "PT-page acquires w/o heap alloc"},
        {"arena_recycles", "PT-page acquires from recycle list"},
        {"arena_high_water", "peak live PT pages"},
        {"arena_slab_allocs", "slab allocations (heap fallback)"},
        {"guest_pt_frame_recycles", "guest PT frame recycles"},
        {"guest_pt_frame_high_water", "peak guest PT frames"},
        {"guest_data_frame_recycles", "guest data frame recycles"},
        {"guest_data_frame_high_water", "peak guest data frames"},
    };
    os << "engine pools (" << stats_path << "):\n";
    for (const auto &c : kCounters) {
        double v = 0;
        if (extractStatValue(doc, c.name, v))
            os << "  " << c.label << ": "
               << static_cast<std::uint64_t>(v) << "\n";
    }
}

} // namespace

int
main(int argc, char **argv)
{
    std::uint64_t top = 10;
    std::string stats_path;
    std::vector<std::string> paths;

    for (int i = 1; i < argc; ++i) {
        std::string a = argv[i];
        if (a == "--stats") {
            if (i + 1 >= argc) {
                std::cerr << "missing value for --stats\n" << kUsage;
                return 2;
            }
            stats_path = argv[++i];
        } else if (a == "--top") {
            if (i + 1 >= argc) {
                std::cerr << "missing value for --top\n" << kUsage;
                return 2;
            }
            if (!ap::parseU64(argv[++i], top)) {
                std::cerr << "bad value for --top: '" << argv[i]
                          << "' (expected a non-negative integer)\n"
                          << kUsage;
                return 2;
            }
        } else if (a == "--help" || a == "-h") {
            std::cout << kUsage;
            return 0;
        } else if (!a.empty() && a[0] == '-') {
            std::cerr << "unknown option: " << a << "\n" << kUsage;
            return 2;
        } else {
            paths.push_back(a);
        }
    }
    if (paths.empty()) {
        std::cerr << kUsage;
        return 2;
    }

    int status = 0;
    for (const std::string &path : paths) {
        std::vector<ap::WalkTraceRecord> records;
        std::uint64_t dropped = 0;
        if (!ap::readWalkTraceFile(path, records, dropped)) {
            std::cerr << path
                      << ": not a readable walk-trace file (wrong "
                         "magic/version or truncated)\n";
            status = 1;
            continue;
        }
        if (paths.size() > 1)
            std::cout << "== " << path << " ==\n";
        ap::WalkTraceSummary summary = ap::summarizeWalkTrace(
            records, dropped, static_cast<std::size_t>(top));
        ap::printWalkTraceSummary(std::cout, summary);
    }
    if (!stats_path.empty())
        printPoolCounters(std::cout, stats_path);
    return status;
}
