/**
 * @file
 * apsim_client: submit experiment batches to a running apsimd and
 * stream the results.
 *
 * Frames print to stdout as NDJSON (one ap-run-frame-v1 /
 * ap-error-v1 / ap-batch-end-v1 object per line) — pipe through
 * `check_stats_json.py frames` to validate. With --json PATH the
 * client additionally reassembles the streamed run objects, in cell
 * order, into an ap-runs-v1 document byte-compatible with the
 * in-process runner's "runs" array.
 *
 * Usage:
 *   apsim_client --socket /tmp/apsim.sock --figure5
 *   apsim_client --port 40123 --workloads gcc,mcf --modes agile,nested \
 *                --page-sizes 4k --operations 200000 --json out.json
 *   apsim_client --socket /tmp/apsim.sock --shutdown
 */

#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "service/client.hh"
#include "sim/experiment.hh"

namespace
{

std::vector<std::string>
splitCsv(const std::string &s)
{
    std::vector<std::string> out;
    std::stringstream ss(s);
    std::string item;
    while (std::getline(ss, item, ','))
        if (!item.empty())
            out.push_back(item);
    return out;
}

int
usage()
{
    std::cerr
        << "usage: apsim_client (--socket PATH | --port N)\n"
        << "         [--figure5 | --workloads A,B --modes M,N\n"
        << "          --page-sizes P,Q] [--operations N] [--vcpus N]\n"
        << "         [--json PATH] [--quiet] [--shutdown]\n";
    return 2;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string socket_path;
    int port = -1;
    bool figure5 = false;
    bool shutdown = false;
    bool quiet = false;
    std::string json_path;
    std::vector<std::string> workloads;
    std::vector<std::string> modes = {"agile"};
    std::vector<std::string> page_sizes = {"4k"};
    std::uint64_t operations = 0;
    unsigned vcpus = 1;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto value = [&]() -> const char * {
            return i + 1 < argc ? argv[++i] : nullptr;
        };
        if (arg == "--socket") {
            const char *v = value();
            if (!v)
                return usage();
            socket_path = v;
        } else if (arg == "--port") {
            const char *v = value();
            if (!v)
                return usage();
            port = std::atoi(v);
        } else if (arg == "--figure5") {
            figure5 = true;
        } else if (arg == "--workloads") {
            const char *v = value();
            if (!v)
                return usage();
            workloads = splitCsv(v);
        } else if (arg == "--modes") {
            const char *v = value();
            if (!v)
                return usage();
            modes = splitCsv(v);
        } else if (arg == "--page-sizes") {
            const char *v = value();
            if (!v)
                return usage();
            page_sizes = splitCsv(v);
        } else if (arg == "--operations") {
            const char *v = value();
            if (!v)
                return usage();
            operations = std::strtoull(v, nullptr, 10);
        } else if (arg == "--vcpus") {
            const char *v = value();
            if (!v)
                return usage();
            vcpus = static_cast<unsigned>(std::atoi(v));
        } else if (arg == "--json") {
            const char *v = value();
            if (!v)
                return usage();
            json_path = v;
        } else if (arg == "--shutdown") {
            shutdown = true;
        } else if (arg == "--quiet") {
            quiet = true;
        } else {
            return usage();
        }
    }
    if (socket_path.empty() && port < 0)
        return usage();

    ap::service::ServiceClient client;
    std::string err;
    bool ok = socket_path.empty() ? client.connectTcp(port, &err)
                                  : client.connectUnix(socket_path, &err);
    if (!ok) {
        std::cerr << "apsim_client: " << err << "\n";
        return 1;
    }

    if (shutdown) {
        if (!client.sendShutdown()) {
            std::cerr << "apsim_client: shutdown send failed\n";
            return 1;
        }
        return 0;
    }

    std::vector<ap::ExperimentSpec> specs;
    if (figure5) {
        specs = ap::figure5Specs(operations);
    } else {
        if (workloads.empty()) {
            std::cerr << "apsim_client: need --figure5 or --workloads\n";
            return usage();
        }
        for (const std::string &wl : workloads) {
            for (const std::string &m : modes) {
                for (const std::string &ps : page_sizes) {
                    ap::ExperimentSpec spec;
                    spec.workload = wl;
                    spec.operations = operations;
                    spec.numVcpus = vcpus;
                    if (!ap::parseVirtMode(m, spec.mode)) {
                        std::cerr << "apsim_client: bad mode " << m
                                  << "\n";
                        return 2;
                    }
                    if (!ap::parsePageSize(ps, spec.pageSize)) {
                        std::cerr << "apsim_client: bad page size "
                                  << ps << "\n";
                        return 2;
                    }
                    specs.push_back(spec);
                }
            }
        }
    }

    std::vector<std::string> runs(specs.size());
    ap::service::BatchOutcome outcome = client.runBatch(
        specs, [&](ap::service::FrameType, const std::string &json) {
            if (!quiet)
                std::cout << json << "\n";
            std::int64_t cell = ap::service::cellOfFrame(json);
            std::string run = ap::service::runObjectOfFrame(json);
            if (cell >= 0 &&
                cell < static_cast<std::int64_t>(runs.size()) &&
                !run.empty())
                runs[static_cast<std::size_t>(cell)] = std::move(run);
        });
    if (!outcome.ok) {
        std::cerr << "apsim_client: batch failed: " << outcome.error
                  << "\n";
        return 1;
    }
    std::cerr << "apsim_client: " << outcome.cells << "/" << specs.size()
              << " cells, " << outcome.errors << " error(s)\n";

    if (!json_path.empty()) {
        bool complete = true;
        for (const std::string &r : runs)
            complete = complete && !r.empty();
        if (!complete) {
            std::cerr << "apsim_client: incomplete batch, not writing "
                      << json_path << "\n";
            return 1;
        }
        std::ofstream out(json_path);
        out << ap::service::assembleRunsJson(runs, 0);
        if (!out) {
            std::cerr << "apsim_client: write failed: " << json_path
                      << "\n";
            return 1;
        }
    }
    return outcome.errors == 0 ? 0 : 1;
}
