/**
 * @file
 * Unit tests for PTE encoding, PhysMem, and RadixPageTable.
 */

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "base/bitfield.hh"
#include "base/rng.hh"
#include "mem/frame_alloc.hh"
#include "mem/page_table.hh"
#include "mem/phys_mem.hh"
#include "mem/pte.hh"

namespace ap
{
namespace
{

TEST(Pte, RawRoundTrip)
{
    Pte p;
    p.valid = true;
    p.writable = true;
    p.user = false;
    p.accessed = true;
    p.dirty = true;
    p.pageSize = true;
    p.switching = true;
    p.pfn = 0xabcde;
    EXPECT_EQ(Pte::fromRaw(p.toRaw()), p);
}

TEST(Pte, DefaultIsInvalid)
{
    Pte p;
    EXPECT_FALSE(p.valid);
    EXPECT_EQ(Pte::fromRaw(0), p);
}

TEST(Pte, SwitchingBitIsSoftwareBit)
{
    Pte p;
    p.switching = true;
    EXPECT_EQ(p.toRaw(), std::uint64_t{1} << pte_bits::kSwitching);
}

class PhysMemTest : public ::testing::Test
{
  protected:
    PhysMem mem{1024};
};

TEST_F(PhysMemTest, AllocDistinctFrames)
{
    std::set<FrameId> seen;
    for (int i = 0; i < 100; ++i) {
        FrameId f = mem.allocData(i);
        ASSERT_NE(f, PhysMem::kNoFrame);
        EXPECT_TRUE(seen.insert(f).second);
    }
    EXPECT_EQ(mem.allocated(), 100u);
}

TEST_F(PhysMemTest, FrameZeroNeverAllocated)
{
    for (int i = 0; i < 1000; ++i) {
        FrameId f = mem.allocData(0);
        if (f == PhysMem::kNoFrame)
            break;
        EXPECT_NE(f, 0u);
    }
}

TEST_F(PhysMemTest, ExhaustionReturnsNoFrame)
{
    while (mem.allocData(0) != PhysMem::kNoFrame) {
    }
    EXPECT_EQ(mem.freeFrames(), 0u);
    EXPECT_EQ(mem.allocData(0), PhysMem::kNoFrame);
}

TEST_F(PhysMemTest, FreeRecycles)
{
    FrameId f = mem.allocData(7);
    mem.free(f);
    EXPECT_EQ(mem.kind(f), FrameKind::Free);
    FrameId g = mem.allocTable(TableOwner::HostPt);
    EXPECT_EQ(g, f); // LIFO free list
    EXPECT_EQ(mem.kind(g), FrameKind::PageTable);
}

TEST_F(PhysMemTest, DoubleFreePanics)
{
    FrameId f = mem.allocData(0);
    mem.free(f);
    EXPECT_THROW(mem.free(f), std::logic_error);
}

TEST_F(PhysMemTest, TableFramesZeroed)
{
    FrameId f = mem.allocTable(TableOwner::ShadowPt);
    for (const Pte &pte : mem.table(f))
        EXPECT_FALSE(pte.valid);
}

TEST_F(PhysMemTest, TableAccessOnDataFramePanics)
{
    FrameId f = mem.allocData(0);
    EXPECT_THROW(mem.table(f), std::logic_error);
}

TEST_F(PhysMemTest, ContentIdTracked)
{
    FrameId f = mem.allocData(123);
    EXPECT_EQ(mem.contentId(f), 123u);
    mem.setContentId(f, 456);
    EXPECT_EQ(mem.contentId(f), 456u);
}

TEST_F(PhysMemTest, TableOwnerCounts)
{
    FrameId a = mem.allocTable(TableOwner::GuestPt);
    mem.allocTable(TableOwner::GuestPt);
    mem.allocTable(TableOwner::ShadowPt);
    EXPECT_EQ(mem.tableFrames(TableOwner::GuestPt), 2u);
    EXPECT_EQ(mem.tableFrames(TableOwner::ShadowPt), 1u);
    mem.free(a);
    EXPECT_EQ(mem.tableFrames(TableOwner::GuestPt), 1u);
}

class PageTableTest : public ::testing::Test
{
  protected:
    PageTableTest() : space(mem, TableOwner::HostPt), pt(space, "pt") {}

    PhysMem mem{4096};
    HostPtSpace space;
    RadixPageTable pt;
};

TEST_F(PageTableTest, EmptyLookupFails)
{
    EXPECT_FALSE(pt.lookup(0x1000).has_value());
    EXPECT_EQ(pt.mappingCount(), 0u);
    EXPECT_EQ(pt.pageCount(), 1u); // root only
}

TEST_F(PageTableTest, Map4KAndLookup)
{
    ASSERT_NE(pt.map(0x7000, 99, PageSize::Size4K, true), nullptr);
    auto m = pt.lookup(0x7abc);
    ASSERT_TRUE(m.has_value());
    EXPECT_EQ(m->pfn, 99u);
    EXPECT_EQ(m->size, PageSize::Size4K);
    EXPECT_EQ(m->depth, 3u);
    EXPECT_TRUE(m->pte.writable);
    EXPECT_EQ(pt.pageCount(), 4u); // root + 3 intermediate
}

TEST_F(PageTableTest, Map2MAndLookup)
{
    Addr va = 5 * kLargePageBytes;
    ASSERT_NE(pt.map(va, 77, PageSize::Size2M, false), nullptr);
    auto m = pt.lookup(va + 0x12345);
    ASSERT_TRUE(m.has_value());
    EXPECT_EQ(m->pfn, 77u);
    EXPECT_EQ(m->size, PageSize::Size2M);
    EXPECT_EQ(m->depth, 2u);
    EXPECT_TRUE(m->pte.pageSize);
    EXPECT_FALSE(m->pte.writable);
    EXPECT_EQ(pt.pageCount(), 3u); // no leaf level needed
}

TEST_F(PageTableTest, Map1GAndLookup)
{
    Addr va = 3 * kHugePageBytes;
    ASSERT_NE(pt.map(va, 55, PageSize::Size1G, true), nullptr);
    auto m = pt.lookup(va + kLargePageBytes + 0x321);
    ASSERT_TRUE(m.has_value());
    EXPECT_EQ(m->size, PageSize::Size1G);
    EXPECT_EQ(m->depth, 1u);
}

TEST_F(PageTableTest, DistinctVasDistinctMappings)
{
    for (Addr va = 0; va < 64 * kPageBytes; va += kPageBytes)
        ASSERT_NE(pt.map(va, frameOf(va) + 1000, PageSize::Size4K, true),
                  nullptr);
    for (Addr va = 0; va < 64 * kPageBytes; va += kPageBytes) {
        auto m = pt.lookup(va);
        ASSERT_TRUE(m.has_value());
        EXPECT_EQ(m->pfn, frameOf(va) + 1000);
    }
    EXPECT_EQ(pt.mappingCount(), 64u);
}

TEST_F(PageTableTest, RemapReplaces)
{
    pt.map(0x4000, 1, PageSize::Size4K, true);
    pt.map(0x4000, 2, PageSize::Size4K, true);
    EXPECT_EQ(pt.lookup(0x4000)->pfn, 2u);
    EXPECT_EQ(pt.mappingCount(), 1u);
}

TEST_F(PageTableTest, UnmapRemoves)
{
    pt.map(0x4000, 1, PageSize::Size4K, true);
    EXPECT_TRUE(pt.unmap(0x4000));
    EXPECT_FALSE(pt.lookup(0x4000).has_value());
    EXPECT_FALSE(pt.unmap(0x4000));
}

TEST_F(PageTableTest, LargePageReplacesSmallSubtree)
{
    // Fill a 2 MB region with 4 KB pages, then promote it.
    for (unsigned i = 0; i < kPtEntries; ++i)
        pt.map(i * kPageBytes, 2000 + i, PageSize::Size4K, true);
    std::uint64_t pages_before = pt.pageCount();
    ASSERT_NE(pt.map(0, 4242, PageSize::Size2M, true), nullptr);
    EXPECT_EQ(pt.pageCount(), pages_before - 1); // leaf table freed
    auto m = pt.lookup(0x5000);
    ASSERT_TRUE(m.has_value());
    EXPECT_EQ(m->pfn, 4242u);
    EXPECT_EQ(m->size, PageSize::Size2M);
}

TEST_F(PageTableTest, SmallPageBreaksLargeMapping)
{
    pt.map(0, 4242, PageSize::Size2M, true);
    ASSERT_NE(pt.map(0x3000, 9, PageSize::Size4K, true), nullptr);
    EXPECT_EQ(pt.lookup(0x3000)->pfn, 9u);
    // The rest of the old 2 MB mapping is gone (demotion splits it).
    EXPECT_FALSE(pt.lookup(0x4000).has_value());
}

TEST_F(PageTableTest, EntryAtDepth)
{
    pt.map(0x123456789000, 42, PageSize::Size4K, true);
    for (unsigned d = 0; d < kPtLevels; ++d) {
        Pte *e = pt.entry(0x123456789000, d);
        ASSERT_NE(e, nullptr) << "depth " << d;
        EXPECT_TRUE(e->valid);
    }
    EXPECT_EQ(pt.entry(0x123456789000, 3)->pfn, 42u);
    // A va with no path returns nullptr below the root.
    EXPECT_EQ(pt.entry(0x7fff00000000, 3), nullptr);
    ASSERT_NE(pt.entry(0x7fff00000000, 0), nullptr);
    EXPECT_FALSE(pt.entry(0x7fff00000000, 0)->valid);
}

TEST_F(PageTableTest, TableFrameIdentifiesContainingPage)
{
    pt.map(0x5000, 1, PageSize::Size4K, true);
    pt.map(0x6000, 2, PageSize::Size4K, true);
    // Same leaf table page for adjacent pages.
    EXPECT_EQ(pt.tableFrame(0x5000, 3), pt.tableFrame(0x6000, 3));
    EXPECT_EQ(pt.tableFrame(0x5000, 0), pt.root());
    EXPECT_EQ(pt.tableFrame(0x7fff00000000, 3), PhysMem::kNoFrame);
}

TEST_F(PageTableTest, InvalidateEntryFreesSubtree)
{
    for (unsigned i = 0; i < 8; ++i)
        pt.map(i * kPageBytes, 100 + i, PageSize::Size4K, true);
    std::uint64_t before = pt.pageCount();
    // Invalidate the depth-2 entry covering the whole 2 MB region.
    EXPECT_TRUE(pt.invalidateEntry(0, 2));
    EXPECT_EQ(pt.pageCount(), before - 1);
    EXPECT_FALSE(pt.lookup(0).has_value());
    EXPECT_FALSE(pt.invalidateEntry(0, 2));
}

TEST_F(PageTableTest, ClearDropsEverything)
{
    for (unsigned i = 0; i < 32; ++i)
        pt.map(i * kLargePageBytes, i, PageSize::Size2M, true);
    pt.clear();
    EXPECT_EQ(pt.pageCount(), 1u);
    EXPECT_EQ(pt.mappingCount(), 0u);
    // Table is usable after clear.
    pt.map(0x1000, 3, PageSize::Size4K, true);
    EXPECT_EQ(pt.lookup(0x1000)->pfn, 3u);
}

TEST_F(PageTableTest, ForEachTerminalVisitsAll)
{
    pt.map(0x1000, 1, PageSize::Size4K, true);
    pt.map(kLargePageBytes * 9, 2, PageSize::Size2M, true);
    std::set<Addr> vas;
    pt.forEachTerminal([&](Addr va, const Pte &, unsigned) {
        vas.insert(va);
    });
    EXPECT_EQ(vas.size(), 2u);
    EXPECT_TRUE(vas.count(0x1000));
    EXPECT_TRUE(vas.count(kLargePageBytes * 9));
}

TEST_F(PageTableTest, SwitchingEntryIsTerminal)
{
    // Build a path and plant a switching entry at depth 2 (as the
    // shadow manager does at a mode-switch point).
    Pte *e = pt.ensurePath(0x40000000, 2);
    ASSERT_NE(e, nullptr);
    e->valid = true;
    e->switching = true;
    e->pfn = 777; // host frame of next guest-PT level
    auto m = pt.lookup(0x40000000 + 0x1234);
    ASSERT_TRUE(m.has_value());
    EXPECT_TRUE(m->pte.switching);
    EXPECT_EQ(m->depth, 2u);
    EXPECT_EQ(m->pfn, 777u);
}

TEST_F(PageTableTest, DestructorFreesAllTablePages)
{
    std::uint64_t base = mem.allocated();
    {
        RadixPageTable t(space, "tmp");
        for (unsigned i = 0; i < 64; ++i)
            t.map(i * kHugePageBytes, i, PageSize::Size4K, true);
        EXPECT_GT(mem.allocated(), base);
    }
    EXPECT_EQ(mem.allocated(), base);
}

TEST_F(PageTableTest, MapFailsGracefullyWhenSpaceExhausted)
{
    // Exhaust physical memory, then mapping a fresh region must return
    // nullptr rather than crash.
    while (mem.allocData(0) != PhysMem::kNoFrame) {
    }
    EXPECT_EQ(pt.map(0x123400000000, 1, PageSize::Size4K, true), nullptr);
}

// Property-style sweep: map/lookup agreement over many random addresses.
class PageTablePropertyTest : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(PageTablePropertyTest, RandomMapLookupUnmapAgree)
{
    PhysMem mem(1 << 16);
    HostPtSpace space(mem, TableOwner::HostPt);
    RadixPageTable pt(space, "prop");
    Rng rng(GetParam());

    std::map<Addr, FrameId> model;
    for (int i = 0; i < 2000; ++i) {
        Addr va = pageBase(rng.next() & ((Addr{1} << 47) - 1));
        if (rng.chance(0.7)) {
            FrameId pfn = 1 + (rng.next() & 0xffffff);
            // Model semantics only hold for non-overlapping 4K pages.
            ASSERT_NE(pt.map(va, pfn, PageSize::Size4K, true), nullptr);
            model[va] = pfn;
        } else if (!model.empty()) {
            auto it = model.begin();
            std::advance(it, rng.nextBelow(model.size()));
            EXPECT_TRUE(pt.unmap(it->first));
            model.erase(it);
        }
    }
    EXPECT_EQ(pt.mappingCount(), model.size());
    for (const auto &[va, pfn] : model) {
        auto m = pt.lookup(va);
        ASSERT_TRUE(m.has_value()) << std::hex << va;
        EXPECT_EQ(m->pfn, pfn);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PageTablePropertyTest,
                         ::testing::Values(1, 2, 3, 4, 5));

// ---------------------------------------------------------------------
// Contiguous-frame recycling (large-page churn must not exhaust pools)
// ---------------------------------------------------------------------

TEST(FrameAllocator, ContiguousRecyclesFreedGroups)
{
    // Pool holds exactly two 8-frame groups. Churning allocate/free
    // forever must keep succeeding: freed groups are recycled once the
    // fresh region is exhausted.
    FrameAllocator a(24);
    for (int round = 0; round < 10; ++round) {
        FrameId f1 = a.allocContiguous(8);
        FrameId f2 = a.allocContiguous(8);
        ASSERT_NE(f1, 0u) << "round " << round;
        ASSERT_NE(f2, 0u) << "round " << round;
        EXPECT_EQ(f1 % 8, 0u);
        EXPECT_EQ(f2 % 8, 0u);
        for (FrameId f = f1; f < f1 + 8; ++f)
            a.free(f);
        for (FrameId f = f2; f < f2 + 8; ++f)
            a.free(f);
    }
    EXPECT_EQ(a.allocated(), 0u);
}

TEST(FrameAllocator, ContiguousRequiresAlignedRun)
{
    FrameAllocator a(24);
    FrameId f1 = a.allocContiguous(8);
    FrameId f2 = a.allocContiguous(8);
    ASSERT_NE(f1, 0u);
    ASSERT_NE(f2, 0u);
    // Free a misaligned straddle (last half of group 1, first half of
    // group 2): 8 consecutive frames, but no aligned run of 8.
    for (FrameId f = f1 + 4; f < f1 + 8; ++f)
        a.free(f);
    for (FrameId f = f2; f < f2 + 4; ++f)
        a.free(f);
    EXPECT_EQ(a.allocContiguous(8), 0u);
    // Completing either group makes an aligned run available again.
    for (FrameId f = f1; f < f1 + 4; ++f)
        a.free(f);
    EXPECT_EQ(a.allocContiguous(8), f1);
}

TEST(PhysMem, ContiguousDataRecyclesFreedGroups)
{
    PhysMem mem(24);
    for (int round = 0; round < 10; ++round) {
        FrameId f1 = mem.allocDataContiguous(8);
        FrameId f2 = mem.allocDataContiguous(8);
        ASSERT_NE(f1, PhysMem::kNoFrame) << "round " << round;
        ASSERT_NE(f2, PhysMem::kNoFrame) << "round " << round;
        for (FrameId f = f1; f < f1 + 8; ++f)
            mem.free(f);
        for (FrameId f = f2; f < f2 + 8; ++f)
            mem.free(f);
    }
}

} // namespace
} // namespace ap
