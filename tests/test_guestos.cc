/**
 * @file
 * Guest OS tests: demand paging, THP, fork/COW semantics, munmap with
 * PT-page pruning, reclaim, and the native/virtualized duality.
 */

#include <gtest/gtest.h>

#include "base/bitfield.hh"
#include "guestos/guest_os.hh"

namespace ap
{
namespace
{

/** Environment factory: native or virtualized guest OS. */
class GuestOsTest : public ::testing::Test
{
  protected:
    GuestOsTest() : mem(1 << 16) {}

    void
    makeVirt(PageSize ps = PageSize::Size4K, bool agile = true)
    {
        VmmConfig vcfg;
        vcfg.guestPtFrames = 1 << 12;
        vcfg.guestDataFrames = 1 << 14;
        vcfg.hostPageSize = ps;
        vmm = std::make_unique<Vmm>(&root, mem, vcfg, nullptr);
        smgr = std::make_unique<ShadowMgr>(&root, mem, *vmm,
                                           ShadowConfig{}, nullptr);
        GuestOsConfig cfg;
        cfg.pageSize = ps;
        os = std::make_unique<GuestOs>(&root, mem, vmm.get(), smgr.get(),
                                       nullptr, cfg);
        pid = os->createProcess(agile ? VirtMode::Agile
                                      : VirtMode::Nested);
    }

    void
    makeNative()
    {
        os = std::make_unique<GuestOs>(&root, mem, nullptr, nullptr,
                                       nullptr, GuestOsConfig{});
        pid = os->createProcess(VirtMode::Native);
    }

    stats::StatGroup root{"t"};
    PhysMem mem;
    std::unique_ptr<Vmm> vmm;
    std::unique_ptr<ShadowMgr> smgr;
    std::unique_ptr<GuestOs> os;
    ProcId pid = 0;
};

TEST_F(GuestOsTest, DemandPagingInstallsMapping)
{
    makeVirt();
    Addr base = os->mmap(pid, 16 * kPageBytes, true, VmaKind::Anon);
    ASSERT_NE(base, 0u);
    GuestProcess &p = os->process(pid);
    EXPECT_FALSE(p.pt->lookup(base).has_value());
    ASSERT_TRUE(os->handlePageFault(pid, base + 0x123, true));
    auto m = p.pt->lookup(base);
    ASSERT_TRUE(m.has_value());
    EXPECT_TRUE(m->pte.writable);
    EXPECT_TRUE(m->pte.dirty); // write fault installs dirty
    EXPECT_EQ(os->demandPages.value(), 1.0);
}

TEST_F(GuestOsTest, ReadFaultInstallsClean)
{
    makeVirt();
    Addr base = os->mmap(pid, kPageBytes, true, VmaKind::Anon);
    ASSERT_TRUE(os->handlePageFault(pid, base, false));
    EXPECT_FALSE(os->process(pid).pt->lookup(base)->pte.dirty);
}

TEST_F(GuestOsTest, FaultOutsideVmaFails)
{
    makeVirt();
    EXPECT_FALSE(os->handlePageFault(pid, 0xdeadbeef000, false));
}

TEST_F(GuestOsTest, ThpMapsWholeRegion)
{
    makeVirt(PageSize::Size2M);
    Addr base = os->mmap(pid, 4 * kLargePageBytes, true, VmaKind::Anon);
    ASSERT_EQ(base % kLargePageBytes, 0u);
    ASSERT_TRUE(os->handlePageFault(pid, base + 0x5000, true));
    auto m = os->process(pid).pt->lookup(base);
    ASSERT_TRUE(m.has_value());
    EXPECT_EQ(m->size, PageSize::Size2M);
    EXPECT_EQ(os->thpMappings.value(), 1.0);
    // A second fault in the same 2M region is spurious (covered).
    EXPECT_TRUE(os->handlePageFault(pid, base + 0x100000, false));
    EXPECT_EQ(os->thpMappings.value(), 1.0);
}

TEST_F(GuestOsTest, SmallVmaFallsBackTo4K)
{
    makeVirt(PageSize::Size2M);
    Addr base = os->mmap(pid, 8 * kPageBytes, true, VmaKind::Anon);
    ASSERT_TRUE(os->handlePageFault(pid, base, true));
    EXPECT_EQ(os->process(pid).pt->lookup(base)->size, PageSize::Size4K);
}

TEST_F(GuestOsTest, MunmapFreesFramesAndPrunes)
{
    makeVirt();
    Addr base = os->mmap(pid, kLargePageBytes, true, VmaKind::Anon);
    // Align probe VAs on the mapped region; back frames as the first
    // hardware touch would.
    for (unsigned i = 0; i < 512; ++i) {
        os->handlePageFault(pid, base + i * kPageBytes, true);
        vmm->ensureDataBacked(os->leafFrame(pid, base + i * kPageBytes));
    }
    GuestProcess &p = os->process(pid);
    std::uint64_t pt_pages = p.pt->pageCount();
    std::uint64_t backed = vmm->backedDataFrames();
    os->munmap(pid, base, kLargePageBytes);
    EXPECT_LT(vmm->backedDataFrames(), backed);
    EXPECT_FALSE(p.pt->lookup(base).has_value());
    // Fully-empty leaf PT pages are pruned.
    EXPECT_LT(p.pt->pageCount(), pt_pages);
    EXPECT_EQ(os->vmaWritable(pid, base), false);
}

TEST_F(GuestOsTest, ForkSharesCow)
{
    makeVirt();
    Addr base = os->mmap(pid, 8 * kPageBytes, true, VmaKind::Anon);
    for (unsigned i = 0; i < 8; ++i)
        os->handlePageFault(pid, base + i * kPageBytes, true);
    ProcId child = os->fork(pid);
    ASSERT_NE(child, 0u);
    // Both sides read-only on the same frames.
    GuestProcess &pp = os->process(pid);
    GuestProcess &cp = os->process(child);
    auto pm = pp.pt->lookup(base);
    auto cm = cp.pt->lookup(base);
    ASSERT_TRUE(pm && cm);
    EXPECT_EQ(pm->pfn, cm->pfn);
    EXPECT_FALSE(pm->pte.writable);
    EXPECT_FALSE(cm->pte.writable);

    // Child write breaks COW: new frame, writable; parent untouched.
    ASSERT_TRUE(os->handleCowWrite(child, base));
    auto cm2 = cp.pt->lookup(base);
    EXPECT_TRUE(cm2->pte.writable);
    EXPECT_NE(cm2->pfn, pm->pfn);
    EXPECT_FALSE(pp.pt->lookup(base)->pte.writable);
    EXPECT_EQ(os->cowBreaks.value(), 1.0);
}

TEST_F(GuestOsTest, LastOwnerCowJustRestoresWrite)
{
    makeVirt();
    Addr base = os->mmap(pid, kPageBytes, true, VmaKind::Anon);
    os->handlePageFault(pid, base, true);
    ProcId child = os->fork(pid);
    os->exitProcess(child);
    FrameId before = os->leafFrame(pid, base);
    ASSERT_TRUE(os->handleCowWrite(pid, base));
    // Sole owner again: no copy, same frame, writable.
    EXPECT_EQ(os->leafFrame(pid, base), before);
    EXPECT_TRUE(os->guestMappingWritable(pid, base));
}

TEST_F(GuestOsTest, ExitReleasesEverything)
{
    makeVirt();
    Addr base = os->mmap(pid, 64 * kPageBytes, true, VmaKind::Anon);
    for (unsigned i = 0; i < 64; ++i) {
        os->handlePageFault(pid, base + i * kPageBytes, true);
        vmm->ensureDataBacked(os->leafFrame(pid, base + i * kPageBytes));
    }
    std::uint64_t backed = vmm->backedDataFrames();
    EXPECT_GT(backed, 0u);
    os->exitProcess(pid);
    EXPECT_FALSE(os->hasProcess(pid));
    EXPECT_EQ(vmm->backedDataFrames(), 0u);
    EXPECT_FALSE(smgr->hasProcess(pid));
}

TEST_F(GuestOsTest, ForkedFramesSurviveParentExit)
{
    makeVirt();
    Addr base = os->mmap(pid, 4 * kPageBytes, true, VmaKind::Anon);
    for (unsigned i = 0; i < 4; ++i) {
        os->handlePageFault(pid, base + i * kPageBytes, true);
        vmm->ensureDataBacked(os->leafFrame(pid, base + i * kPageBytes));
    }
    ProcId child = os->fork(pid);
    FrameId shared = os->leafFrame(child, base);
    os->exitProcess(pid);
    // The child still maps the shared frames.
    EXPECT_EQ(os->leafFrame(child, base), shared);
    EXPECT_NE(vmm->backing(shared), 0u);
    os->exitProcess(child);
    EXPECT_EQ(vmm->backedDataFrames(), 0u);
}

TEST_F(GuestOsTest, ReapFreesSameFramesAsExit)
{
    // Build the identical process twice and tear one down with
    // exitProcess, the other with the bulk reapProcess; the allocator
    // state they leave behind must match exactly.
    makeVirt();
    auto populate = [&](ProcId p) {
        Addr base = os->mmap(p, 64 * kPageBytes, true, VmaKind::Anon);
        for (unsigned i = 0; i < 64; ++i) {
            os->handlePageFault(p, base + i * kPageBytes, true);
            vmm->ensureDataBacked(
                os->leafFrame(p, base + i * kPageBytes));
        }
    };
    populate(pid);
    os->exitProcess(pid);
    std::uint64_t pt_free = vmm->ptAllocator().freeFrames();
    std::uint64_t data_free = vmm->dataAllocator().freeFrames();
    EXPECT_EQ(vmm->backedDataFrames(), 0u);

    ProcId second = os->createProcess(VirtMode::Agile);
    populate(second);
    os->reapProcess(second);
    EXPECT_FALSE(os->hasProcess(second));
    EXPECT_FALSE(smgr->hasProcess(second));
    EXPECT_EQ(vmm->backedDataFrames(), 0u);
    EXPECT_EQ(vmm->ptAllocator().freeFrames(), pt_free);
    EXPECT_EQ(vmm->dataAllocator().freeFrames(), data_free);
}

TEST_F(GuestOsTest, ReapKeepsForkSharedFrames)
{
    makeVirt();
    Addr base = os->mmap(pid, 4 * kPageBytes, true, VmaKind::Anon);
    for (unsigned i = 0; i < 4; ++i) {
        os->handlePageFault(pid, base + i * kPageBytes, true);
        vmm->ensureDataBacked(os->leafFrame(pid, base + i * kPageBytes));
    }
    ProcId child = os->fork(pid);
    FrameId shared = os->leafFrame(child, base);
    os->reapProcess(pid);
    // The reaped parent only dropped its references; the child still
    // maps the shared frames.
    EXPECT_EQ(os->leafFrame(child, base), shared);
    EXPECT_NE(vmm->backing(shared), 0u);
    os->reapProcess(child);
    EXPECT_EQ(vmm->backedDataFrames(), 0u);
}

TEST_F(GuestOsTest, ReclaimEvictsOnlyCold)
{
    makeVirt();
    Addr base = os->mmap(pid, 32 * kPageBytes, true, VmaKind::Anon);
    for (unsigned i = 0; i < 32; ++i)
        os->handlePageFault(pid, base + i * kPageBytes, true);
    GuestProcess &p = os->process(pid);
    // First scan clears reference bits (demand paging set A on all).
    EXPECT_EQ(os->reclaimScan(pid, 32), 0u);
    // Re-reference half the pages.
    for (unsigned i = 0; i < 16; ++i)
        p.pt->entry(base + i * kPageBytes, 3)->accessed = true;
    // Second scan evicts the un-referenced half.
    EXPECT_EQ(os->reclaimScan(pid, 32), 16u);
    EXPECT_TRUE(p.pt->lookup(base).has_value());
    EXPECT_FALSE(p.pt->lookup(base + 20 * kPageBytes).has_value());
}

TEST_F(GuestOsTest, ClockHandRotates)
{
    makeVirt();
    Addr base = os->mmap(pid, 64 * kPageBytes, true, VmaKind::Anon);
    for (unsigned i = 0; i < 64; ++i)
        os->handlePageFault(pid, base + i * kPageBytes, true);
    // Two partial scans cover different pages.
    os->reclaimScan(pid, 16);
    Addr hand1 = os->process(pid).clockHand;
    os->reclaimScan(pid, 16);
    Addr hand2 = os->process(pid).clockHand;
    EXPECT_NE(hand1, hand2);
}

TEST_F(GuestOsTest, NativeModeUsesHostFrames)
{
    makeNative();
    Addr base = os->mmap(pid, 2 * kPageBytes, true, VmaKind::Anon);
    ASSERT_TRUE(os->handlePageFault(pid, base, true));
    FrameId f = os->leafFrame(pid, base);
    ASSERT_NE(f, 0u);
    // Native frames are host frames directly.
    EXPECT_EQ(mem.kind(f), FrameKind::Data);
    EXPECT_EQ(os->context(pid).mode, VirtMode::Native);
    EXPECT_EQ(os->context(pid).nativeRoot,
              os->process(pid).pt->root());
}

TEST_F(GuestOsTest, FileContentDeterministicAndShared)
{
    makeVirt();
    Addr a = os->mmap(pid, 4 * kPageBytes, true, VmaKind::File, 42);
    Addr b = os->mmap(pid, 4 * kPageBytes, true, VmaKind::File, 42);
    os->handlePageFault(pid, a, false);
    os->handlePageFault(pid, b, false);
    FrameId fa = os->leafFrame(pid, a);
    FrameId fb = os->leafFrame(pid, b);
    vmm->ensureDataBacked(fa);
    vmm->ensureDataBacked(fb);
    // Same file offset => same content id => dedupable.
    EXPECT_EQ(mem.contentId(vmm->backing(fa)),
              mem.contentId(vmm->backing(fb)));
    EXPECT_EQ(vmm->sharePages(), 1u);
}

TEST_F(GuestOsTest, RandomMappedVaLandsInsideVmas)
{
    makeVirt();
    os->mmap(pid, 16 * kPageBytes, true, VmaKind::Anon);
    os->mmap(pid, 4 * kPageBytes, true, VmaKind::Anon);
    Rng rng(3);
    for (int i = 0; i < 200; ++i) {
        Addr va = os->randomMappedVa(pid, rng);
        ASSERT_NE(va, 0u);
        EXPECT_TRUE(os->vmaWritable(pid, va));
    }
}

TEST_F(GuestOsTest, MmapFixedCollisionFails)
{
    makeVirt();
    ASSERT_TRUE(os->mmapFixed(pid, 0x40000000, 0x2000, true,
                              VmaKind::Anon));
    EXPECT_FALSE(os->mmapFixed(pid, 0x40001000, 0x2000, true,
                               VmaKind::Anon));
}

} // namespace
} // namespace ap
