/**
 * @file
 * Walk-trace tests: ring-buffer semantics, file roundtrip, and the
 * acceptance criterion that the offline summarizer reproduces the
 * in-simulator Table VI coverage fractions bit-identically on real
 * workloads at 4K and 2M pages.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "sim/experiment.hh"
#include "sim/machine.hh"
#include "trace/walk_trace.hh"
#include "vmm/vmm.hh"

namespace ap
{
namespace
{

WalkTraceRecord
makeRecord(Addr va, unsigned switch_depth, unsigned refs)
{
    WalkTraceRecord r;
    r.va = va;
    r.mode = static_cast<std::uint8_t>(VirtMode::Agile);
    r.switchDepth = static_cast<std::uint8_t>(switch_depth);
    r.refs = static_cast<std::uint8_t>(refs);
    return r;
}

TEST(WalkTraceBuffer, AppendsUntilCapacity)
{
    WalkTraceBuffer buf(4);
    for (Addr i = 0; i < 3; ++i)
        buf.append(makeRecord(i, kPtLevels, 4));
    EXPECT_EQ(buf.size(), 3u);
    EXPECT_EQ(buf.appended(), 3u);
    EXPECT_EQ(buf.dropped(), 0u);
    auto recs = buf.snapshot();
    ASSERT_EQ(recs.size(), 3u);
    EXPECT_EQ(recs[0].va, 0u);
    EXPECT_EQ(recs[2].va, 2u);
}

TEST(WalkTraceBuffer, WrapsAndCountsDropped)
{
    WalkTraceBuffer buf(4);
    for (Addr i = 0; i < 10; ++i)
        buf.append(makeRecord(i, kPtLevels, 4));
    EXPECT_EQ(buf.size(), 4u);
    EXPECT_EQ(buf.appended(), 10u);
    EXPECT_EQ(buf.dropped(), 6u);
    // Oldest-first snapshot holds the newest four records.
    auto recs = buf.snapshot();
    ASSERT_EQ(recs.size(), 4u);
    EXPECT_EQ(recs[0].va, 6u);
    EXPECT_EQ(recs[3].va, 9u);
}

TEST(WalkTraceBuffer, ClearResetsCounters)
{
    WalkTraceBuffer buf(2);
    buf.append(makeRecord(1, kPtLevels, 4));
    buf.append(makeRecord(2, kPtLevels, 4));
    buf.append(makeRecord(3, kPtLevels, 4));
    buf.clear();
    EXPECT_EQ(buf.size(), 0u);
    EXPECT_EQ(buf.appended(), 0u);
    EXPECT_EQ(buf.dropped(), 0u);
    buf.append(makeRecord(4, kPtLevels, 4));
    auto recs = buf.snapshot();
    ASSERT_EQ(recs.size(), 1u);
    EXPECT_EQ(recs[0].va, 4u);
}

TEST(WalkTrace, CoverageClassMirrorsWalker)
{
    WalkTraceRecord r = makeRecord(0, kPtLevels, 4);
    EXPECT_EQ(coverageClass(r), 0u); // full shadow
    r.switchDepth = 3;
    EXPECT_EQ(coverageClass(r), 1u); // one nested level
    r.switchDepth = 0;
    EXPECT_EQ(coverageClass(r), 4u); // all levels nested
    r.flags |= WalkTraceRecord::kFlagFullNested;
    EXPECT_EQ(coverageClass(r), 5u); // nested incl. gptr translation
}

TEST(WalkTrace, FileRoundTrip)
{
    WalkTraceBuffer buf(3);
    for (Addr i = 0; i < 5; ++i) {
        WalkTraceRecord r = makeRecord(0x1000 * i, i % (kPtLevels + 1),
                                       4 + 4 * unsigned(i));
        r.asid = static_cast<ProcId>(i + 1);
        r.flags = static_cast<std::uint8_t>(i);
        r.coldRefs = 1;
        r.refsByTable[1] = 2;
        r.refsByTable[3] = static_cast<std::uint8_t>(i);
        r.pwcStartDepth = 2;
        r.ntlbHits = 3;
        r.faults = static_cast<std::uint8_t>(i % 2);
        r.trapMask = static_cast<std::uint16_t>(1u << (i % kNumTrapKinds));
        buf.append(r);
    }

    std::string path = testing::TempDir() + "/roundtrip.apwt";
    ASSERT_TRUE(writeWalkTraceFile(buf, path));

    std::vector<WalkTraceRecord> records;
    std::uint64_t dropped = 0;
    ASSERT_TRUE(readWalkTraceFile(path, records, dropped));
    EXPECT_EQ(dropped, 2u);

    auto expect = buf.snapshot();
    ASSERT_EQ(records.size(), expect.size());
    for (std::size_t i = 0; i < records.size(); ++i) {
        EXPECT_EQ(records[i].va, expect[i].va);
        EXPECT_EQ(records[i].asid, expect[i].asid);
        EXPECT_EQ(records[i].mode, expect[i].mode);
        EXPECT_EQ(records[i].flags, expect[i].flags);
        EXPECT_EQ(records[i].switchDepth, expect[i].switchDepth);
        EXPECT_EQ(records[i].refs, expect[i].refs);
        EXPECT_EQ(records[i].coldRefs, expect[i].coldRefs);
        for (std::size_t t = 0; t < kNumWalkTables; ++t)
            EXPECT_EQ(records[i].refsByTable[t], expect[i].refsByTable[t]);
        EXPECT_EQ(records[i].pwcStartDepth, expect[i].pwcStartDepth);
        EXPECT_EQ(records[i].ntlbHits, expect[i].ntlbHits);
        EXPECT_EQ(records[i].faults, expect[i].faults);
        EXPECT_EQ(records[i].trapMask, expect[i].trapMask);
    }
    std::remove(path.c_str());
}

TEST(WalkTrace, ReadRejectsGarbage)
{
    std::string path = testing::TempDir() + "/garbage.apwt";
    {
        std::ofstream os(path, std::ios::binary);
        os << "this is not a walk trace";
    }
    std::vector<WalkTraceRecord> records;
    std::uint64_t dropped = 0;
    EXPECT_FALSE(readWalkTraceFile(path, records, dropped));
    EXPECT_FALSE(readWalkTraceFile(path + ".missing", records, dropped));
    std::remove(path.c_str());
}

/**
 * Acceptance criterion: the summary a trace consumer reconstructs must
 * equal the simulator's own RunResult bit for bit — same coverage
 * fractions (same division over the same integers), same average
 * refs/walk — and the per-cause trap attribution must sum exactly to
 * the aggregate trap counter.
 */
void
checkTraceMatchesCounters(const std::string &workload, PageSize page)
{
    SCOPED_TRACE(workload + "/" + pageSizeName(page));
    WorkloadParams params = defaultParamsFor(workload);
    params.operations = 30000;
    SimConfig cfg = configFor(VirtMode::Agile, page, params);
    Machine machine(cfg);
    machine.enableWalkTrace(std::size_t{1} << 18);
    auto wl = makeWorkload(workload, params);
    ASSERT_NE(wl, nullptr);
    RunResult result = machine.run(*wl);

    const WalkTraceBuffer *trace = machine.walkTrace();
    ASSERT_NE(trace, nullptr);
    ASSERT_EQ(trace->dropped(), 0u)
        << "ring too small for bit-identical comparison";

    WalkTraceSummary sum = summarizeWalkTrace(*trace);

    // One record per successful walk in the measured region.
    std::uint64_t successful = 0;
    for (std::uint64_t c : sum.coverageCounts)
        successful += c;
    EXPECT_EQ(sum.walks, successful);

    for (int i = 0; i < 6; ++i) {
        EXPECT_EQ(sum.coverage[i], result.coverage[i])
            << "coverage class " << i << " diverged";
    }
    EXPECT_EQ(sum.avgWalkRefs, result.avgWalkRefs);

    // Per-cause trap attribution: causes sum exactly to the aggregate.
    Vmm *vmm = machine.vmm();
    ASSERT_NE(vmm, nullptr);
    std::uint64_t by_cause = 0;
    double by_cause_stat = 0;
    for (std::size_t k = 0; k < kNumTrapKinds; ++k) {
        by_cause += vmm->trapCount(static_cast<TrapKind>(k));
        by_cause_stat += vmm->trapCountByCause[k]->value();
    }
    EXPECT_EQ(by_cause, vmm->trapCountTotal());
    EXPECT_DOUBLE_EQ(by_cause_stat, vmm->trapsTotal.value());

    std::uint64_t delta_by_kind = 0;
    for (std::uint64_t c : result.trapByKind)
        delta_by_kind += c;
    EXPECT_EQ(delta_by_kind, result.traps);
}

TEST(WalkTrace, SummaryMatchesCountersGcc4K)
{
    checkTraceMatchesCounters("gcc", PageSize::Size4K);
}

TEST(WalkTrace, SummaryMatchesCountersGcc2M)
{
    checkTraceMatchesCounters("gcc", PageSize::Size2M);
}

TEST(WalkTrace, SummaryMatchesCountersDedup4K)
{
    checkTraceMatchesCounters("dedup", PageSize::Size4K);
}

TEST(WalkTrace, SummaryMatchesCountersDedup2M)
{
    checkTraceMatchesCounters("dedup", PageSize::Size2M);
}

TEST(WalkTrace, TrapCyclesByCauseSumToAggregate)
{
    WorkloadParams params = defaultParamsFor("mcf");
    params.operations = 20000;
    SimConfig cfg = configFor(VirtMode::Shadow, PageSize::Size4K, params);
    Machine machine(cfg);
    auto wl = makeWorkload("mcf", params);
    ASSERT_NE(wl, nullptr);
    machine.run(*wl);

    Vmm *vmm = machine.vmm();
    ASSERT_NE(vmm, nullptr);
    EXPECT_GT(vmm->trapCountTotal(), 0u);
    double count = 0, cycles = 0;
    for (std::size_t k = 0; k < kNumTrapKinds; ++k) {
        count += vmm->trapCountByCause[k]->value();
        cycles += vmm->trapCyclesByCause[k]->value();
    }
    EXPECT_DOUBLE_EQ(count, vmm->trapsTotal.value());
    EXPECT_DOUBLE_EQ(cycles, vmm->trapCyclesStat.value());
    EXPECT_DOUBLE_EQ(cycles, double(vmm->trapCycles()));
}

TEST(WalkTrace, SummarizerTopShapesSorted)
{
    WalkTraceBuffer buf(64);
    for (int i = 0; i < 10; ++i)
        buf.append(makeRecord(0x1000 * i, kPtLevels, 4));
    for (int i = 0; i < 3; ++i) {
        WalkTraceRecord r = makeRecord(0x9000, 2, 12);
        r.refsByTable[1] = 4;
        buf.append(r);
    }
    WalkTraceSummary sum = summarizeWalkTrace(buf, 2);
    ASSERT_EQ(sum.topShapes.size(), 2u);
    EXPECT_EQ(sum.topShapes[0].count, 10u);
    EXPECT_EQ(sum.topShapes[1].count, 3u);
    EXPECT_GE(sum.topShapes[0].count, sum.topShapes[1].count);
    EXPECT_EQ(sum.coverageCounts[0], 10u);
    EXPECT_EQ(sum.coverageCounts[2], 3u);
    EXPECT_EQ(sum.refsTotal, 10u * 4 + 3u * 12);
}

} // namespace
} // namespace ap
