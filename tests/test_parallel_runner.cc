/**
 * @file
 * Tests for the parallel experiment engine: determinism (parallel
 * results bit-identical to serial, cell for cell), worker-count edge
 * cases, index coverage, and error propagation.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <stdexcept>
#include <vector>

#include "sim/experiment.hh"
#include "sim/parallel_runner.hh"

namespace
{

using namespace ap;

/** Small operation count: enough to exercise faults and switches. */
constexpr std::uint64_t kOps = 5'000;

void
expectSameResult(const RunResult &a, const RunResult &b)
{
    EXPECT_EQ(a.workload, b.workload);
    EXPECT_EQ(a.mode, b.mode);
    EXPECT_EQ(a.pageSize, b.pageSize);
    EXPECT_EQ(a.instructions, b.instructions);
    EXPECT_EQ(a.idealCycles, b.idealCycles);
    EXPECT_EQ(a.walkCycles, b.walkCycles);
    EXPECT_EQ(a.trapCycles, b.trapCycles);
    EXPECT_EQ(a.tlbMisses, b.tlbMisses);
    EXPECT_EQ(a.walks, b.walks);
    EXPECT_EQ(a.traps, b.traps);
    EXPECT_EQ(a.guestPageFaults, b.guestPageFaults);
    EXPECT_DOUBLE_EQ(a.avgWalkRefs, b.avgWalkRefs);
    for (int c = 0; c < 6; ++c)
        EXPECT_DOUBLE_EQ(a.coverage[c], b.coverage[c]);
}

TEST(EffectiveJobs, ZeroMeansHardwareConcurrency)
{
    EXPECT_GE(effectiveJobs(0), 1u);
    EXPECT_EQ(effectiveJobs(1), 1u);
    EXPECT_EQ(effectiveJobs(7), 7u);
}

TEST(ParallelFor, CoversEveryIndexExactlyOnce)
{
    constexpr std::size_t n = 1000;
    std::vector<std::atomic<int>> counts(n);
    parallelFor(n, 4, [&](std::size_t i) { ++counts[i]; });
    for (std::size_t i = 0; i < n; ++i)
        EXPECT_EQ(counts[i].load(), 1) << "index " << i;
}

TEST(ParallelFor, EmptyAndSingleton)
{
    int calls = 0;
    parallelFor(0, 4, [&](std::size_t) { ++calls; });
    EXPECT_EQ(calls, 0);
    parallelFor(1, 4, [&](std::size_t) { ++calls; });
    EXPECT_EQ(calls, 1);
}

TEST(ParallelFor, MoreJobsThanItems)
{
    std::vector<std::atomic<int>> counts(3);
    parallelFor(3, 64, [&](std::size_t i) { ++counts[i]; });
    for (std::size_t i = 0; i < 3; ++i)
        EXPECT_EQ(counts[i].load(), 1);
}

TEST(ParallelFor, PropagatesException)
{
    EXPECT_THROW(
        parallelFor(100, 4,
                    [](std::size_t i) {
                        if (i == 37)
                            throw std::runtime_error("cell 37");
                    }),
        std::runtime_error);
}

TEST(ParallelMap, CollectsInIndexOrder)
{
    std::vector<std::size_t> squares =
        parallelMap(50, 4, [](std::size_t i) { return i * i; });
    ASSERT_EQ(squares.size(), 50u);
    for (std::size_t i = 0; i < squares.size(); ++i)
        EXPECT_EQ(squares[i], i * i);
}

TEST(RunExperiments, ParallelMatchesSerialCellForCell)
{
    // A spread of techniques and page sizes; every cell is an
    // independent machine, so jobs must not change any number.
    std::vector<ExperimentSpec> specs;
    for (const char *wl : {"gcc", "dedup", "graph500"}) {
        for (VirtMode mode : {VirtMode::Native, VirtMode::Nested,
                              VirtMode::Shadow, VirtMode::Agile}) {
            ExperimentSpec spec;
            spec.workload = wl;
            spec.mode = mode;
            spec.operations = kOps;
            specs.push_back(spec);
        }
    }

    std::vector<RunResult> serial = runExperiments(specs, 1);
    std::vector<RunResult> parallel = runExperiments(specs, 4);

    ASSERT_EQ(serial.size(), specs.size());
    ASSERT_EQ(parallel.size(), specs.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
        SCOPED_TRACE("cell " + std::to_string(i) + " (" +
                     specs[i].workload + ")");
        expectSameResult(serial[i], parallel[i]);
    }
}

TEST(RunExperiments, MoreJobsThanCells)
{
    std::vector<ExperimentSpec> specs(2);
    specs[0].workload = "astar";
    specs[0].mode = VirtMode::Agile;
    specs[0].operations = kOps;
    specs[1].workload = "astar";
    specs[1].mode = VirtMode::Shadow;
    specs[1].operations = kOps;

    std::vector<RunResult> serial = runExperiments(specs, 1);
    std::vector<RunResult> wide = runExperiments(specs, 16);
    ASSERT_EQ(wide.size(), 2u);
    for (std::size_t i = 0; i < 2; ++i)
        expectSameResult(serial[i], wide[i]);
}

TEST(RunExperiments, Figure5MatrixDeterministic)
{
    // The full driver entry point with a tiny operation budget.
    std::vector<RunResult> serial = runFigure5Matrix(1'000, 1);
    std::vector<RunResult> parallel = runFigure5Matrix(1'000, 3);
    ASSERT_EQ(serial.size(), parallel.size());
    ASSERT_EQ(serial.size(), figure5Specs().size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
        SCOPED_TRACE("cell " + std::to_string(i));
        expectSameResult(serial[i], parallel[i]);
    }
}

} // namespace
