/**
 * @file
 * End-to-end machine tests: every virtualization mode runs workloads
 * with functional translation verification enabled, and mode-specific
 * behaviours (trap profiles, walk costs, policy adaptation) are
 * checked against the paper's qualitative expectations.
 */

#include <gtest/gtest.h>

#include "sim/machine.hh"
#include "workloads/workload.hh"

namespace ap
{
namespace
{

SimConfig
baseConfig(VirtMode mode, PageSize ps = PageSize::Size4K)
{
    SimConfig cfg;
    cfg.mode = mode;
    cfg.pageSize = ps;
    cfg.guestOs.pageSize = ps;
    cfg.hostMemFrames = 1 << 16; // 256 MB host
    cfg.guestPtFrames = 1 << 13;
    cfg.guestDataFrames = 1 << 15; // 128 MB guest data
    cfg.verifyTranslations = true;
    cfg.policyIntervalOps = 5'000;
    return cfg;
}

WorkloadParams
smallParams(std::uint64_t ops = 30'000)
{
    WorkloadParams p;
    p.footprintBytes = 8ull << 20;
    p.operations = ops;
    p.seed = 7;
    return p;
}

class MachineModeTest : public ::testing::TestWithParam<VirtMode>
{
};

TEST_P(MachineModeTest, McfRunsVerified)
{
    Machine m(baseConfig(GetParam()));
    auto w = makeWorkload("mcf", smallParams());
    RunResult r = m.run(*w);
    // Measured region: the post-warmup ~75% of 30k ops at cyclesPerOp
    // each (plus L2-TLB hit latency folded into base execution).
    EXPECT_GE(r.instructions, 30'000u * m.config().cyclesPerOp / 2);
    EXPECT_GT(r.walks, 0u);
    EXPECT_GT(r.tlbMisses, 0u);
}

TEST_P(MachineModeTest, ChurnWorkloadRunsVerified)
{
    Machine m(baseConfig(GetParam()));
    auto w = makeWorkload("dedup", smallParams(40'000));
    RunResult r = m.run(*w);
    EXPECT_GT(r.walks, 0u);
}

TEST_P(MachineModeTest, MemcachedWithYieldsAndReclaim)
{
    Machine m(baseConfig(GetParam()));
    auto w = makeWorkload("memcached", smallParams(40'000));
    RunResult r = m.run(*w);
    EXPECT_GT(r.walks, 0u);
}

TEST_P(MachineModeTest, TwoMegaPagesRunVerified)
{
    SimConfig cfg = baseConfig(GetParam(), PageSize::Size2M);
    Machine m(cfg);
    // Exceed the 32-entry 2M TLB's reach so misses occur.
    WorkloadParams p = smallParams();
    p.footprintBytes = 96ull << 20;
    auto w = makeWorkload("mcf", p);
    RunResult r = m.run(*w);
    EXPECT_GT(r.walks, 0u);
}

INSTANTIATE_TEST_SUITE_P(AllModes, MachineModeTest,
                         ::testing::Values(VirtMode::Native,
                                           VirtMode::Nested,
                                           VirtMode::Shadow,
                                           VirtMode::Agile,
                                           VirtMode::Shsp,
                                           VirtMode::Range),
                         [](const auto &info) {
                             return virtModeName(info.param);
                         });

TEST(MachineBehaviour, NativeHasNoTraps)
{
    Machine m(baseConfig(VirtMode::Native));
    auto w = makeWorkload("mcf", smallParams());
    RunResult r = m.run(*w);
    EXPECT_EQ(r.traps, 0u);
    EXPECT_EQ(r.trapCycles, 0u);
    EXPECT_DOUBLE_EQ(r.vmmOverhead(), 0.0);
}

TEST(MachineBehaviour, NestedWalksCostMoreThanNative)
{
    RunResult native, nested;
    {
        Machine m(baseConfig(VirtMode::Native));
        auto w = makeWorkload("mcf", smallParams());
        native = m.run(*w);
    }
    {
        Machine m(baseConfig(VirtMode::Nested));
        auto w = makeWorkload("mcf", smallParams());
        nested = m.run(*w);
    }
    EXPECT_GT(nested.avgWalkRefs, native.avgWalkRefs);
    EXPECT_GT(nested.walkOverhead(), native.walkOverhead());
}

TEST(MachineBehaviour, NestedHasNoPtWriteTraps)
{
    Machine m(baseConfig(VirtMode::Nested));
    // Long enough that buffer churn (munmap + re-mmap + refault)
    // lands inside the measured region.
    auto w = makeWorkload("dedup", smallParams(300'000));
    RunResult r = m.run(*w);
    EXPECT_EQ(r.trapByKind[size_t(TrapKind::ShadowPtWrite)], 0u);
    EXPECT_EQ(r.trapByKind[size_t(TrapKind::Unsync)], 0u);
    // Only host faults (EPT violations) occur.
    EXPECT_GT(r.trapByKind[size_t(TrapKind::HostFault)], 0u);
}

TEST(MachineBehaviour, ShadowWalksAreNativeSpeed)
{
    Machine m(baseConfig(VirtMode::Shadow));
    auto w = makeWorkload("mcf", smallParams());
    RunResult r = m.run(*w);
    // Pure shadow: every successful walk is a 1D walk (<= 4 refs;
    // PWC makes most shorter).
    EXPECT_LE(r.avgWalkRefs, 4.0);
    EXPECT_GT(r.coverage[0], 0.99);
}

TEST(MachineBehaviour, ShadowPaysTrapsOnChurn)
{
    RunResult shadow, nested;
    {
        SimConfig cfg = baseConfig(VirtMode::Shadow);
        cfg.warmupFraction = 0.0;
        Machine m(cfg);
        auto w = makeWorkload("dedup", smallParams(150'000));
        shadow = m.run(*w);
    }
    {
        SimConfig cfg = baseConfig(VirtMode::Nested);
        cfg.warmupFraction = 0.0;
        Machine m(cfg);
        auto w = makeWorkload("dedup", smallParams(150'000));
        nested = m.run(*w);
    }
    EXPECT_GT(shadow.vmmOverhead(), nested.vmmOverhead());
    EXPECT_GT(shadow.trapByKind[size_t(TrapKind::Unsync)] +
                  shadow.trapByKind[size_t(TrapKind::ShadowPtWrite)],
              0u);
}

TEST(MachineBehaviour, AgileConvertsChurnRegionsToNested)
{
    SimConfig cfg = baseConfig(VirtMode::Agile);
    cfg.warmupFraction = 0.0;
    cfg.policy.startNested = false; // exercise shadow from the start
    Machine m(cfg);
    auto w = makeWorkload("dedup", smallParams(200'000));
    RunResult r = m.run(*w);
    // The policy demoted some PT pages to nested mode...
    EXPECT_GT(r.trapByKind[size_t(TrapKind::ModeConvert)], 0u);
    // ...and some TLB misses were served with partial nesting.
    double nested_frac = r.coverage[1] + r.coverage[2] + r.coverage[3] +
                         r.coverage[4] + r.coverage[5];
    EXPECT_GT(nested_frac, 0.0);
}

TEST(MachineBehaviour, AgileBeatsBothOnMixedWorkload)
{
    auto run = [](VirtMode mode) {
        SimConfig cfg = baseConfig(mode);
        cfg.verifyTranslations = false;
        cfg.policyIntervalOps = SimConfig{}.policyIntervalOps;
        if (mode == VirtMode::Agile)
            cfg.enableHwOpts();
        Machine m(cfg);
        WorkloadParams p = smallParams(2'000'000);
        auto w = makeWorkload("dedup", p);
        return m.run(*w);
    };
    RunResult nested = run(VirtMode::Nested);
    RunResult shadow = run(VirtMode::Shadow);
    RunResult agile = run(VirtMode::Agile);
    double best = std::min(nested.totalOverhead(), shadow.totalOverhead());
    // The headline claim, on a churn-heavy workload: agile matches or
    // beats the best constituent (small slack for run-length noise).
    EXPECT_LT(agile.totalOverhead(), best * 1.05)
        << "agile " << agile.totalOverhead() << " nested "
        << nested.totalOverhead() << " shadow " << shadow.totalOverhead();
}

TEST(MachineBehaviour, MostMissesStayShadowUnderAgile)
{
    SimConfig cfg = baseConfig(VirtMode::Agile);
    // Realistic policy interval (the 5k-cycle test default is
    // deliberately twitchy for the conversion unit tests).
    cfg.policyIntervalOps = SimConfig{}.policyIntervalOps;
    Machine m(cfg);
    // A stable-page-table workload must not be demoted at all; churny
    // workloads' mode mix at experiment scale is checked by
    // bench_table6_mode_coverage.
    auto w = makeWorkload("mcf", smallParams(100'000));
    RunResult r = m.run(*w);
    // Table VI: the bulk of TLB misses are served fully in shadow.
    EXPECT_GT(r.coverage[0], 0.95);
}

TEST(MachineBehaviour, HwOptAdRemovesAdTraps)
{
    // Read a page first (shadow fill withholds write access), then
    // store to it: without hardware A/D the store traps for dirty
    // emulation; with it the fill grants write access immediately.
    auto run = [](bool hw_ad) {
        SimConfig cfg = baseConfig(VirtMode::Agile);
        cfg.hwOptAd = hw_ad;
        Machine m(cfg);
        m.spawnProcess();
        Addr base = m.mmap(64 * kPageBytes, true, false, 0);
        for (unsigned i = 0; i < 64; ++i)
            m.touch(base + i * kPageBytes, false);
        for (unsigned i = 0; i < 64; ++i)
            m.touch(base + i * kPageBytes, true);
        return m.snapshot("ad");
    };
    RunResult without = run(false);
    RunResult with = run(true);
    EXPECT_GT(without.trapByKind[size_t(TrapKind::AdEmulation)], 0u);
    EXPECT_EQ(with.trapByKind[size_t(TrapKind::AdEmulation)], 0u);
}

TEST(MachineBehaviour, SptrCacheCutsCtxSwitchTraps)
{
    auto run = [](std::size_t entries) {
        SimConfig cfg = baseConfig(VirtMode::Agile);
        cfg.sptrCacheEntries = entries;
        Machine m(cfg);
        auto w = makeWorkload("memcached", smallParams(60'000));
        return m.run(*w);
    };
    RunResult without = run(0);
    RunResult with = run(8);
    EXPECT_LT(with.trapByKind[size_t(TrapKind::CtxSwitch)],
              without.trapByKind[size_t(TrapKind::CtxSwitch)]);
}

TEST(MachineBehaviour, ShspSwitchesModes)
{
    SimConfig cfg = baseConfig(VirtMode::Shsp);
    Machine m(cfg);
    // graph500 faults everything in during generation, then runs a
    // TLB-miss-bound phase with stable page tables: SHSP must move the
    // whole process to shadow.
    WorkloadParams p = smallParams(120'000);
    p.footprintBytes = 4ull << 20;
    auto w = makeWorkload("graph500", p);
    RunResult r = m.run(*w);
    // The switch may land inside warmup, so check the full-run trap
    // count rather than the measured delta.
    EXPECT_GT(m.vmm()->trapCount(TrapKind::ShspSwitch), 0u);
    EXPECT_GT(r.coverage[0], 0.0);
}

TEST(MachineBehaviour, LargePagesReduceWalkOverhead)
{
    auto run = [](PageSize ps) {
        Machine m(baseConfig(VirtMode::Nested, ps));
        auto w = makeWorkload("mcf", smallParams(50'000));
        return m.run(*w);
    };
    RunResult r4k = run(PageSize::Size4K);
    RunResult r2m = run(PageSize::Size2M);
    EXPECT_LT(r2m.walkOverhead(), r4k.walkOverhead());
    EXPECT_LT(r2m.tlbMisses, r4k.tlbMisses);
}

TEST(MachineBehaviour, SnapshotCoverageSumsToOne)
{
    Machine m(baseConfig(VirtMode::Agile));
    auto w = makeWorkload("gcc", smallParams(40'000));
    RunResult r = m.run(*w);
    double sum = 0;
    for (double c : r.coverage)
        sum += c;
    EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(MachineBehaviour, DirectApiDrivesAccesses)
{
    Machine m(baseConfig(VirtMode::Agile));
    m.spawnProcess();
    Addr base = m.mmap(1 << 20, true, false, 0);
    ASSERT_NE(base, 0u);
    for (Addr va = base; va < base + (1 << 20); va += kPageBytes)
        m.touch(va, true);
    // Everything mapped, faulted, verified; re-touch is TLB-cheap.
    RunResult r = m.snapshot("direct");
    EXPECT_GT(r.instructions, 256u);
}

} // namespace
} // namespace ap
