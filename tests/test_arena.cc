/**
 * @file
 * Arena and buffer-pool tests: cursor recycling, slab growth on
 * exhaustion, bounded slab footprint under sustained 2M-page mapping
 * churn, and the trace engine's thread-local scratch recycler.
 */

#include <gtest/gtest.h>

#include <set>
#include <sstream>

#include "guestos/guest_os.hh"
#include "mem/arena.hh"
#include "sim/experiment.hh"
#include "sim/machine.hh"
#include "trace/buffer_pool.hh"

namespace ap
{
namespace
{

TEST(PtPageArena, RecycleListServedBeforeCursor)
{
    PtPageArena arena(4);
    bool fresh = false;
    PtPage *a = arena.acquire(fresh);
    EXPECT_TRUE(fresh);
    PtPage *b = arena.acquire(fresh);
    EXPECT_TRUE(fresh);
    EXPECT_NE(a, b);
    EXPECT_EQ(arena.live(), 2u);

    arena.release(b);
    arena.release(a);
    EXPECT_EQ(arena.live(), 0u);

    // LIFO recycle: the most recently released page comes back first,
    // marked not-fresh (its contents are stale).
    PtPage *c = arena.acquire(fresh);
    EXPECT_FALSE(fresh);
    EXPECT_EQ(c, a);
    PtPage *d = arena.acquire(fresh);
    EXPECT_FALSE(fresh);
    EXPECT_EQ(d, b);
    EXPECT_EQ(arena.recycles(), 2u);
    // Only the very first acquire of each slot touched the heap path;
    // the slab itself was allocated once.
    EXPECT_EQ(arena.slabAllocs(), 1u);
}

TEST(PtPageArena, ExhaustionGrowsByWholeSlabs)
{
    // Tiny slabs force the exhaustion path quickly.
    PtPageArena arena(2);
    bool fresh = false;
    std::set<PtPage *> pages;
    for (int i = 0; i < 5; ++i) {
        PtPage *p = arena.acquire(fresh);
        EXPECT_TRUE(fresh);
        // Every page must be distinct, writable storage.
        (*p)[0].pfn = 0x1000u + i;
        pages.insert(p);
    }
    EXPECT_EQ(pages.size(), 5u);
    EXPECT_EQ(arena.slabAllocs(), 3u); // ceil(5 / 2)
    EXPECT_EQ(arena.reservedPages(), 6u);
    EXPECT_EQ(arena.live(), 5u);
    EXPECT_EQ(arena.highWater(), 5u);
    // Earlier writes survived later slab growth (slabs never move).
    for (PtPage *p : pages) {
        EXPECT_GE((*p)[0].pfn, 0x1000u);
        EXPECT_LT((*p)[0].pfn, 0x1005u);
    }
}

TEST(PtPageArena, ResetReusesSlabStorageInOrder)
{
    PtPageArena arena(4);
    bool fresh = false;
    PtPage *first = arena.acquire(fresh);
    arena.acquire(fresh);
    arena.acquire(fresh);
    std::uint64_t slabs_before = arena.slabAllocs();

    arena.reset();
    EXPECT_EQ(arena.live(), 0u);

    // Post-reset acquires walk the same slab slots in the same order,
    // without heap traffic, and report not-fresh (stale contents).
    PtPage *again = arena.acquire(fresh);
    EXPECT_EQ(again, first);
    EXPECT_FALSE(fresh);
    EXPECT_EQ(arena.slabAllocs(), slabs_before);
}

/**
 * Sustained 2M-page process churn — the snapshot-fork teardown/rebuild
 * pattern: each iteration creates a process, THP-maps and faults a
 * multi-huge-page region (allocating guest, shadow and host PT pages),
 * then reaps it, returning every table page to the arena. The steady
 * state must be served from the recycle list with a bounded slab
 * footprint.
 */
TEST(PtPageArena, BoundedUnder2MProcessChurn)
{
    stats::StatGroup root{"t"};
    PhysMem mem(1 << 16);
    VmmConfig vcfg;
    vcfg.guestPtFrames = 1 << 12;
    vcfg.guestDataFrames = 1 << 14;
    vcfg.hostPageSize = PageSize::Size2M;
    Vmm vmm(&root, mem, vcfg, nullptr);
    ShadowMgr smgr(&root, mem, vmm, ShadowConfig{}, nullptr);
    GuestOsConfig cfg;
    cfg.pageSize = PageSize::Size2M;
    GuestOs os(&root, mem, &vmm, &smgr, nullptr, cfg);

    std::uint64_t reserved_after_warm = 0;
    std::uint64_t recycles_after_warm = 0;
    std::uint64_t live_after_warm = 0;
    for (int iter = 0; iter < 64; ++iter) {
        ProcId pid = os.createProcess(VirtMode::Agile);
        Addr base = os.mmap(pid, 4 * kLargePageBytes, true,
                            VmaKind::Anon);
        ASSERT_NE(base, 0u);
        for (unsigned i = 0; i < 4; ++i)
            os.handlePageFault(pid, base + i * kLargePageBytes, true);
        os.reapProcess(pid);
        if (iter == 7) {
            reserved_after_warm = mem.arena().reservedPages();
            recycles_after_warm = mem.arena().recycles();
            live_after_warm = mem.arena().live();
        }
    }
    // Steady state: acquires come from the recycle list, not new slabs,
    // and nothing leaks across iterations (the residual live pages are
    // the VMM-lifetime host tables, constant per iteration).
    EXPECT_GT(mem.arena().recycles(), recycles_after_warm);
    EXPECT_EQ(mem.arena().reservedPages(), reserved_after_warm);
    EXPECT_EQ(mem.arena().live(), live_after_warm);
    EXPECT_GE(mem.arena().highWater(), 1u);
}

/**
 * The arena and frame-pool observability counters are exported as
 * formulas on the machine's stats tree, so every stats dump (text and
 * ap-stats-v1 JSON) carries them.
 */
TEST(PtPageArena, CountersExportedInMachineStats)
{
    SimConfig cfg = configFor(VirtMode::Agile, PageSize::Size4K,
                              WorkloadParams{});
    Machine machine(cfg);
    std::ostringstream js;
    machine.dumpJson(js);
    const std::string out = js.str();
    for (const char *name :
         {"arena_pool_hits", "arena_recycles", "arena_high_water",
          "arena_slab_allocs", "guest_pt_frame_recycles",
          "guest_pt_frame_high_water", "guest_data_frame_recycles",
          "guest_data_frame_high_water"}) {
        EXPECT_NE(out.find(name), std::string::npos)
            << name << " missing from stats JSON";
    }
}

TEST(TraceBufferPool, EventBuffersKeepCapacityAcrossRecycle)
{
    TraceBufferPool &pool = TraceBufferPool::instance();
    std::uint64_t reuses_before = pool.eventReuses();

    std::vector<TraceEvent> v = pool.takeEvents();
    v.reserve(10000);
    TraceEvent *data = v.data();
    std::size_t cap = v.capacity();
    pool.giveEvents(std::move(v));

    std::vector<TraceEvent> w = pool.takeEvents();
    EXPECT_EQ(w.data(), data);       // same backing store came back
    EXPECT_EQ(w.capacity(), cap);    // with its capacity intact
    EXPECT_TRUE(w.empty());          // but cleared
    EXPECT_EQ(pool.eventReuses(), reuses_before + 1);
    pool.giveEvents(std::move(w));
}

TEST(TraceBufferPool, RecycleTraceReturnsEventStorage)
{
    TraceBufferPool &pool = TraceBufferPool::instance();

    Trace t;
    t.events = pool.takeEvents();
    t.events.reserve(4096);
    TraceEvent *data = t.events.data();
    recycleTrace(std::move(t));

    std::vector<TraceEvent> w = pool.takeEvents();
    EXPECT_EQ(w.data(), data);
    pool.giveEvents(std::move(w));
}

TEST(TraceBufferPool, PooledWordsLoanRoundTrips)
{
    const std::uint64_t *data = nullptr;
    std::size_t cap = 0;
    {
        PooledWords loan;
        loan->reserve(512);
        data = loan->data();
        cap = loan->capacity();
    } // destructor hands the buffer back
    {
        PooledWords loan;
        EXPECT_EQ(loan->data(), data);
        EXPECT_EQ(loan->capacity(), cap);
        EXPECT_TRUE(loan->empty());
    }
}

} // namespace
} // namespace ap
