/**
 * @file
 * Agile policy and SHSP controller unit tests, driven through a
 * hand-built VMM/shadow environment.
 */

#include <gtest/gtest.h>

#include "core/agile_policy.hh"
#include "vmm/guest_pt_space.hh"
#include "vmm/shsp.hh"

namespace ap
{
namespace
{

class PolicyTest : public ::testing::Test
{
  protected:
    static constexpr ProcId kProc = 1;

    PolicyTest()
        : mem(1 << 15),
          vmm(&root, mem,
              VmmConfig{1 << 12, 1 << 14, PageSize::Size4K, TrapCosts{},
                        0},
              nullptr),
          mgr(&root, mem, vmm, ShadowConfig{}, nullptr),
          gspace(vmm),
          gpt(gspace, "gPT")
    {
        mgr.registerProcess(kProc, &gpt, gpt.root(), true);
    }

    AgilePolicy
    makePolicy(AgilePolicyConfig cfg = {})
    {
        return AgilePolicy(&root, mgr, cfg);
    }

    /** Map a guest page and build its shadow path. */
    void
    mapAndFill(Addr va)
    {
        FrameId g = vmm.allocGuestDataFrame();
        gpt.map(va, g, PageSize::Size4K, true);
        vmm.ensureDataBacked(g);
        ASSERT_EQ(mgr.handleShadowFault(kProc, va),
                  ShadowFillResult::Filled);
    }

    /** One protected write, routed through interception + policy. */
    GptWriteOutcome
    mediate(AgilePolicy &policy, Addr va, unsigned depth)
    {
        GptWriteOutcome out = mgr.onGptWrite(kProc, va, depth);
        if (out.trapped)
            policy.onMediatedWrite(kProc, va, depth, out);
        return out;
    }

    bool
    leafNested(Addr va)
    {
        return mgr.leafUnderNestedMode(kProc, va);
    }

    stats::StatGroup root{"t"};
    PhysMem mem;
    Vmm vmm;
    ShadowMgr mgr;
    GuestPtSpace gspace;
    RadixPageTable gpt;
};

TEST_F(PolicyTest, SingleWriteDoesNotDemote)
{
    AgilePolicyConfig cfg;
    cfg.writeThreshold = 2;
    AgilePolicy policy = makePolicy(cfg);
    mapAndFill(0x1000);
    // Disable unsync masking by writing an upper (pointer) level.
    mediate(policy, 0x1000, 1);
    EXPECT_FALSE(leafNested(0x1000));
    EXPECT_EQ(policy.demotions.value(), 0.0);
}

TEST_F(PolicyTest, WriteBurstDemotesLevelAndBelow)
{
    AgilePolicyConfig cfg;
    cfg.writeThreshold = 2;
    AgilePolicy policy = makePolicy(cfg);
    mapAndFill(0x1000);
    mediate(policy, 0x1000, 1);
    mediate(policy, 0x1000, 1);
    EXPECT_TRUE(leafNested(0x1000));
    EXPECT_EQ(policy.demotions.value(), 1.0);
    // Writes below the demoted level are now direct.
    auto out = mgr.onGptWrite(kProc, 0x1000, 3);
    EXPECT_FALSE(out.trapped);
}

TEST_F(PolicyTest, DirtyScanPromotesAfterHysteresis)
{
    AgilePolicyConfig cfg;
    cfg.writeThreshold = 2;
    cfg.backPolicy = BackPolicy::DirtyScan;
    cfg.promoteAfterCleanIntervals = 3;
    AgilePolicy policy = makePolicy(cfg);
    mapAndFill(0x1000);
    mediate(policy, 0x1000, 1);
    mediate(policy, 0x1000, 1);
    ASSERT_TRUE(leafNested(0x1000));

    PolicySample quiet{};
    quiet.idealCycles = 1000;
    // Two clean intervals: still nested (hysteresis = 3).
    policy.onInterval(kProc, quiet);
    policy.onInterval(kProc, quiet);
    EXPECT_TRUE(leafNested(0x1000));
    policy.onInterval(kProc, quiet);
    EXPECT_FALSE(leafNested(0x1000));
    EXPECT_GT(policy.promotions.value(), 0.0);
}

TEST_F(PolicyTest, DirtyWritesKeepNested)
{
    AgilePolicyConfig cfg;
    cfg.promoteAfterCleanIntervals = 1;
    AgilePolicy policy = makePolicy(cfg);
    mapAndFill(0x1000);
    mediate(policy, 0x1000, 1);
    mediate(policy, 0x1000, 1);
    ASSERT_TRUE(leafNested(0x1000));
    PolicySample quiet{};
    quiet.idealCycles = 1000;
    for (int i = 0; i < 5; ++i) {
        // A direct write each interval re-dirties the nested page.
        mgr.onGptWrite(kProc, 0x1000, 1);
        policy.onInterval(kProc, quiet);
        EXPECT_TRUE(leafNested(0x1000)) << "interval " << i;
    }
}

TEST_F(PolicyTest, PeriodicResetPromotesImmediately)
{
    AgilePolicyConfig cfg;
    cfg.backPolicy = BackPolicy::PeriodicReset;
    AgilePolicy policy = makePolicy(cfg);
    mapAndFill(0x1000);
    mediate(policy, 0x1000, 1);
    mediate(policy, 0x1000, 1);
    ASSERT_TRUE(leafNested(0x1000));
    PolicySample quiet{};
    quiet.idealCycles = 1000;
    policy.onInterval(kProc, quiet);
    EXPECT_FALSE(leafNested(0x1000));
}

TEST_F(PolicyTest, BackPolicyNoneNeverPromotes)
{
    AgilePolicyConfig cfg;
    cfg.backPolicy = BackPolicy::None;
    AgilePolicy policy = makePolicy(cfg);
    mapAndFill(0x1000);
    mediate(policy, 0x1000, 1);
    mediate(policy, 0x1000, 1);
    PolicySample quiet{};
    quiet.idealCycles = 1000;
    for (int i = 0; i < 10; ++i)
        policy.onInterval(kProc, quiet);
    EXPECT_TRUE(leafNested(0x1000));
}

TEST_F(PolicyTest, StartNestedEngagesOnTlbPressure)
{
    AgilePolicyConfig cfg;
    cfg.startNested = true;
    cfg.tlbOverheadThreshold = 0.02;
    AgilePolicy policy = makePolicy(cfg);
    policy.onProcessStart(kProc);
    EXPECT_TRUE(mgr.context(kProc).fullNested);

    // Low pressure: stays nested.
    PolicySample low{};
    low.walkCycles = 10;
    low.idealCycles = 10'000;
    policy.onInterval(kProc, low);
    EXPECT_TRUE(mgr.context(kProc).fullNested);

    // High walk pressure, no PT writes: engage shadowing.
    PolicySample high{};
    high.walkCycles = 5'000;
    high.idealCycles = 10'000;
    policy.onInterval(kProc, high);
    EXPECT_FALSE(mgr.context(kProc).fullNested);
    EXPECT_EQ(policy.shadowEngagements.value(), 1.0);
}

TEST_F(PolicyTest, StartNestedStaysNestedUnderWriteStorm)
{
    AgilePolicyConfig cfg;
    cfg.startNested = true;
    AgilePolicy policy = makePolicy(cfg);
    policy.onProcessStart(kProc);
    PolicySample storm{};
    storm.walkCycles = 5'000;
    storm.idealCycles = 10'000;
    storm.gptWrites = 1'000; // projected mediation dwarfs the benefit
    policy.onInterval(kProc, storm);
    EXPECT_TRUE(mgr.context(kProc).fullNested);
}

TEST_F(PolicyTest, RootDemotionUsesRootSwitch)
{
    AgilePolicyConfig cfg;
    cfg.writeThreshold = 2;
    AgilePolicy policy = makePolicy(cfg);
    mapAndFill(0x1000);
    mediate(policy, 0x1000, 0);
    mediate(policy, 0x1000, 0);
    EXPECT_TRUE(mgr.context(kProc).rootSwitch);
    EXPECT_TRUE(leafNested(0x1000));
}

class ShspTest : public PolicyTest
{
};

TEST_F(ShspTest, SwitchesToShadowWhenWalksDominate)
{
    ShspConfig cfg;
    cfg.minResidency = 1;
    ShspController shsp(&root, mgr, cfg);
    shsp.onProcessStart(kProc);
    EXPECT_FALSE(shsp.inShadow(kProc));

    ShspSample s{};
    s.walkCycles = 100'000;
    s.gptWrites = 0;
    s.idealCycles = 200'000;
    shsp.onInterval(kProc, s);
    shsp.onInterval(kProc, s);
    EXPECT_TRUE(shsp.inShadow(kProc));
    EXPECT_GT(vmm.trapCount(TrapKind::ShspSwitch), 0u);
}

TEST_F(ShspTest, SwitchesBackWhenTrapsDominate)
{
    ShspConfig cfg;
    cfg.minResidency = 1;
    ShspController shsp(&root, mgr, cfg);
    shsp.onProcessStart(kProc);
    ShspSample to_shadow{};
    to_shadow.walkCycles = 100'000;
    to_shadow.idealCycles = 200'000;
    shsp.onInterval(kProc, to_shadow);
    shsp.onInterval(kProc, to_shadow);
    ASSERT_TRUE(shsp.inShadow(kProc));

    ShspSample trappy{};
    trappy.walkCycles = 1'000; // below the switch-benefit floor
    trappy.trapCycles = 1'000'000;
    trappy.idealCycles = 200'000;
    shsp.onInterval(kProc, trappy);
    shsp.onInterval(kProc, trappy);
    EXPECT_FALSE(shsp.inShadow(kProc));
    EXPECT_GT(shsp.switchesToNested.value(), 0.0);
}

TEST_F(ShspTest, MinResidencyBlocksThrashing)
{
    ShspConfig cfg;
    cfg.minResidency = 100; // effectively never
    ShspController shsp(&root, mgr, cfg);
    shsp.onProcessStart(kProc);
    ShspSample s{};
    s.walkCycles = 1'000'000;
    s.idealCycles = 1'000'000;
    for (int i = 0; i < 10; ++i)
        shsp.onInterval(kProc, s);
    EXPECT_FALSE(shsp.inShadow(kProc));
}

TEST_F(ShspTest, SwitchToShadowPrefillsTable)
{
    mapAndFill(0x5000);
    mgr.zapProcess(kProc); // start from an empty shadow table
    ShspConfig cfg;
    cfg.minResidency = 1;
    ShspController shsp(&root, mgr, cfg);
    shsp.onProcessStart(kProc);
    ShspSample s{};
    s.walkCycles = 100'000;
    s.idealCycles = 200'000;
    shsp.onInterval(kProc, s);
    shsp.onInterval(kProc, s);
    ASSERT_TRUE(shsp.inShadow(kProc));
    // The eager rebuild merged the existing guest mapping.
    auto sm = mgr.state(kProc).spt->lookup(0x5000);
    EXPECT_TRUE(sm.has_value());
}

} // namespace
} // namespace ap
