/**
 * @file
 * Consolidation scheduler tests.
 */

#include <gtest/gtest.h>

#include "sim/scheduler.hh"
#include "workloads/workload.hh"

namespace ap
{
namespace
{

SimConfig
schedConfig(VirtMode mode, std::size_t sptr = 0)
{
    SimConfig cfg;
    cfg.mode = mode;
    cfg.hostMemFrames = 1 << 17;
    cfg.guestPtFrames = 1 << 13;
    cfg.guestDataFrames = 1 << 16;
    cfg.verifyTranslations = true;
    cfg.sptrCacheEntries = sptr;
    return cfg;
}

WorkloadParams
schedParams(std::uint64_t ops)
{
    WorkloadParams p;
    p.footprintBytes = 8ull << 20;
    p.operations = ops;
    p.seed = 3;
    return p;
}

TEST(Scheduler, RunsAllWorkloadsToCompletion)
{
    Machine m(schedConfig(VirtMode::Agile));
    auto a = makeWorkload("mcf", schedParams(20'000));
    auto b = makeWorkload("canneal", schedParams(30'000));
    Scheduler sched(m, 1'000);
    sched.add(*a);
    sched.add(*b);
    ConsolidationResult r = sched.run();
    ASSERT_EQ(r.runs.size(), 2u);
    EXPECT_TRUE(r.runs[0].finished);
    EXPECT_TRUE(r.runs[1].finished);
    EXPECT_EQ(r.runs[0].steps, 20'000u);
    EXPECT_EQ(r.runs[1].steps, 30'000u);
    EXPECT_GT(r.contextSwitches, 10u);
    EXPECT_GT(r.machine.walks, 0u);
}

TEST(Scheduler, DistinctProcessesPerWorkload)
{
    Machine m(schedConfig(VirtMode::Nested));
    auto a = makeWorkload("astar", schedParams(15'000));
    auto b = makeWorkload("astar", schedParams(15'000));
    Scheduler sched(m);
    sched.add(*a);
    sched.add(*b);
    ConsolidationResult r = sched.run();
    EXPECT_NE(r.runs[0].pid, r.runs[1].pid);
}

TEST(Scheduler, CtxSwitchTrapsUnderShadowNotNested)
{
    auto run = [](VirtMode mode, std::size_t sptr) {
        Machine m(schedConfig(mode, sptr));
        auto a = makeWorkload("mcf", schedParams(25'000));
        auto b = makeWorkload("canneal", schedParams(25'000));
        Scheduler sched(m, 500);
        sched.add(*a);
        sched.add(*b);
        ConsolidationResult r = sched.run();
        return r.machine
            .trapByKind[std::size_t(TrapKind::CtxSwitch)];
    };
    EXPECT_EQ(run(VirtMode::Nested, 0), 0u);
    std::uint64_t shadow = run(VirtMode::Shadow, 0);
    EXPECT_GT(shadow, 0u);
    // The sptr cache eliminates (nearly) all of them.
    std::uint64_t cached = run(VirtMode::Shadow, 8);
    EXPECT_LT(cached, shadow / 4);
}

} // namespace
} // namespace ap
