/**
 * @file
 * Consolidation scheduler tests.
 */

#include <gtest/gtest.h>

#include "sim/scheduler.hh"
#include "workloads/workload.hh"

namespace ap
{
namespace
{

SimConfig
schedConfig(VirtMode mode, std::size_t sptr = 0)
{
    SimConfig cfg;
    cfg.mode = mode;
    cfg.hostMemFrames = 1 << 17;
    cfg.guestPtFrames = 1 << 13;
    cfg.guestDataFrames = 1 << 16;
    cfg.verifyTranslations = true;
    cfg.sptrCacheEntries = sptr;
    return cfg;
}

WorkloadParams
schedParams(std::uint64_t ops)
{
    WorkloadParams p;
    p.footprintBytes = 8ull << 20;
    p.operations = ops;
    p.seed = 3;
    return p;
}

TEST(Scheduler, RunsAllWorkloadsToCompletion)
{
    Machine m(schedConfig(VirtMode::Agile));
    auto a = makeWorkload("mcf", schedParams(20'000));
    auto b = makeWorkload("canneal", schedParams(30'000));
    Scheduler sched(m, 1'000);
    sched.add(*a);
    sched.add(*b);
    ConsolidationResult r = sched.run();
    ASSERT_EQ(r.runs.size(), 2u);
    EXPECT_TRUE(r.runs[0].finished);
    EXPECT_TRUE(r.runs[1].finished);
    EXPECT_EQ(r.runs[0].steps, 20'000u);
    EXPECT_EQ(r.runs[1].steps, 30'000u);
    EXPECT_GT(r.contextSwitches, 10u);
    EXPECT_GT(r.machine.walks, 0u);
}

TEST(Scheduler, DistinctProcessesPerWorkload)
{
    Machine m(schedConfig(VirtMode::Nested));
    auto a = makeWorkload("astar", schedParams(15'000));
    auto b = makeWorkload("astar", schedParams(15'000));
    Scheduler sched(m);
    sched.add(*a);
    sched.add(*b);
    ConsolidationResult r = sched.run();
    EXPECT_NE(r.runs[0].pid, r.runs[1].pid);
}

TEST(Scheduler, CtxSwitchTrapsUnderShadowNotNested)
{
    auto run = [](VirtMode mode, std::size_t sptr) {
        Machine m(schedConfig(mode, sptr));
        auto a = makeWorkload("mcf", schedParams(25'000));
        auto b = makeWorkload("canneal", schedParams(25'000));
        Scheduler sched(m, 500);
        sched.add(*a);
        sched.add(*b);
        ConsolidationResult r = sched.run();
        return r.machine
            .trapByKind[std::size_t(TrapKind::CtxSwitch)];
    };
    EXPECT_EQ(run(VirtMode::Nested, 0), 0u);
    std::uint64_t shadow = run(VirtMode::Shadow, 0);
    EXPECT_GT(shadow, 0u);
    // The sptr cache eliminates (nearly) all of them.
    std::uint64_t cached = run(VirtMode::Shadow, 8);
    EXPECT_LT(cached, shadow / 4);
}

void
expectSameConsolidation(const ConsolidationResult &a,
                        const ConsolidationResult &b)
{
    EXPECT_EQ(a.contextSwitches, b.contextSwitches);
    ASSERT_EQ(a.runs.size(), b.runs.size());
    for (std::size_t i = 0; i < a.runs.size(); ++i) {
        EXPECT_EQ(a.runs[i].pid, b.runs[i].pid);
        EXPECT_EQ(a.runs[i].steps, b.runs[i].steps);
        EXPECT_EQ(a.runs[i].finished, b.runs[i].finished);
    }
    const RunResult &x = a.machine;
    const RunResult &y = b.machine;
    EXPECT_EQ(x.instructions, y.instructions);
    EXPECT_EQ(x.idealCycles, y.idealCycles);
    EXPECT_EQ(x.walkCycles, y.walkCycles);
    EXPECT_EQ(x.trapCycles, y.trapCycles);
    EXPECT_EQ(x.tlbMisses, y.tlbMisses);
    EXPECT_EQ(x.walks, y.walks);
    EXPECT_EQ(x.traps, y.traps);
    EXPECT_EQ(x.guestPageFaults, y.guestPageFaults);
    EXPECT_DOUBLE_EQ(x.avgWalkRefs, y.avgWalkRefs);
    for (std::size_t k = 0; k < kNumTrapKinds; ++k)
        EXPECT_EQ(x.trapByKind[k], y.trapByKind[k]);
}

ConsolidationResult
plainRun(VirtMode mode, std::uint64_t ops)
{
    Machine m(schedConfig(mode));
    auto a = makeWorkload("mcf", schedParams(ops));
    auto b = makeWorkload("canneal", schedParams(ops));
    Scheduler sched(m, 1'000);
    sched.add(*a);
    sched.add(*b);
    return sched.run();
}

ConsolidationResult
recordRunPair(VirtMode mode, std::uint64_t ops, Trace &ta, Trace &tb)
{
    Machine m(schedConfig(mode));
    auto a = makeWorkload("mcf", schedParams(ops));
    auto b = makeWorkload("canneal", schedParams(ops));
    Scheduler sched(m, 1'000);
    sched.addRecorded(*a, ta);
    sched.addRecorded(*b, tb);
    return sched.run();
}

TEST(SchedulerReplay, RecordingIsTransparent)
{
    ConsolidationResult plain = plainRun(VirtMode::Agile, 12'000);
    Trace ta, tb;
    ConsolidationResult rec =
        recordRunPair(VirtMode::Agile, 12'000, ta, tb);
    expectSameConsolidation(plain, rec);
    EXPECT_GT(ta.events.size(), 12'000u);
    EXPECT_GT(ta.warmupEvents, 0u);
    EXPECT_EQ(ta.workload, "mcf");
    // Slot traces carry the guest pid for snapshot resume.
    EXPECT_EQ(ta.seed, rec.runs[0].pid);
    EXPECT_EQ(tb.seed, rec.runs[1].pid);
}

TEST(SchedulerReplay, ReplayMatchesPlainRunAcrossModes)
{
    // Record under one mode; the interleaved stream is
    // mode-independent, so the same traces must reproduce every
    // technique's plain run bit for bit.
    Trace ta, tb;
    recordRunPair(VirtMode::Nested, 12'000, ta, tb);
    for (VirtMode mode :
         {VirtMode::Nested, VirtMode::Shadow, VirtMode::Agile}) {
        ConsolidationResult plain = plainRun(mode, 12'000);
        Machine m(schedConfig(mode));
        Scheduler sched(m, 1'000);
        sched.addReplay(ta);
        sched.addReplay(tb);
        ConsolidationResult rep = sched.run();
        expectSameConsolidation(plain, rep);
    }
}

TEST(SchedulerReplay, SnapshotResumeMatchesColdReplay)
{
    Trace ta, tb;
    recordRunPair(VirtMode::Shadow, 12'000, ta, tb);

    Machine cold(schedConfig(VirtMode::Shadow));
    Scheduler cold_sched(cold, 1'000);
    cold_sched.addReplay(ta);
    cold_sched.addReplay(tb);
    cold_sched.warmup();
    SnapshotPtr snap = captureSnapshot(cold);
    ConsolidationResult cold_r = cold_sched.runMeasured();

    Machine resumed(schedConfig(VirtMode::Shadow));
    Scheduler res_sched(resumed, 1'000);
    res_sched.addReplay(ta);
    res_sched.addReplay(tb);
    ASSERT_TRUE(res_sched.resumeFromSnapshot(*snap));
    ConsolidationResult res_r = res_sched.runMeasured();
    expectSameConsolidation(cold_r, res_r);
}

TEST(SchedulerReplay, ResumeRejectsMismatchedConfig)
{
    Trace ta, tb;
    recordRunPair(VirtMode::Shadow, 8'000, ta, tb);
    Machine cold(schedConfig(VirtMode::Shadow));
    Scheduler cold_sched(cold, 1'000);
    cold_sched.addReplay(ta);
    cold_sched.addReplay(tb);
    cold_sched.warmup();
    SnapshotPtr snap = captureSnapshot(cold);

    Machine other(schedConfig(VirtMode::Nested));
    Scheduler other_sched(other, 1'000);
    other_sched.addReplay(ta);
    other_sched.addReplay(tb);
    EXPECT_FALSE(other_sched.resumeFromSnapshot(*snap));
}

} // namespace
} // namespace ap
