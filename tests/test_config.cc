/**
 * @file
 * Config parsing, experiment defaults, perf model, and report
 * formatting tests.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <stdexcept>

#include "sim/config.hh"
#include "sim/experiment.hh"
#include "sim/perf_model.hh"
#include "sim/report.hh"

namespace ap
{
namespace
{

TEST(Config, ParseVirtMode)
{
    VirtMode m;
    EXPECT_TRUE(parseVirtMode("native", m));
    EXPECT_EQ(m, VirtMode::Native);
    EXPECT_TRUE(parseVirtMode("AGILE", m));
    EXPECT_EQ(m, VirtMode::Agile);
    EXPECT_TRUE(parseVirtMode("shsp", m));
    EXPECT_EQ(m, VirtMode::Shsp);
    EXPECT_TRUE(parseVirtMode("n", m));
    EXPECT_EQ(m, VirtMode::Nested);
    EXPECT_FALSE(parseVirtMode("bogus", m));
}

TEST(Config, ParsePageSize)
{
    PageSize ps;
    EXPECT_TRUE(parsePageSize("4k", ps));
    EXPECT_EQ(ps, PageSize::Size4K);
    EXPECT_TRUE(parsePageSize("2M", ps));
    EXPECT_EQ(ps, PageSize::Size2M);
    EXPECT_FALSE(parsePageSize("8k", ps));
}

TEST(Config, ApplyOptions)
{
    SimConfig cfg;
    EXPECT_TRUE(cfg.applyOption("mode=shadow"));
    EXPECT_EQ(cfg.mode, VirtMode::Shadow);
    EXPECT_TRUE(cfg.applyOption("page=2m"));
    EXPECT_EQ(cfg.pageSize, PageSize::Size2M);
    EXPECT_EQ(cfg.guestOs.pageSize, PageSize::Size2M);
    EXPECT_TRUE(cfg.applyOption("walk_ref_cycles=77"));
    EXPECT_EQ(cfg.walkRefCycles, 77u);
    EXPECT_TRUE(cfg.applyOption("pwc=off"));
    EXPECT_FALSE(cfg.pwcEnabled);
    EXPECT_TRUE(cfg.applyOption("hw_opts=on"));
    EXPECT_TRUE(cfg.hwOptAd);
    EXPECT_EQ(cfg.sptrCacheEntries, 8u);
    EXPECT_TRUE(cfg.applyOption("back_policy=periodic"));
    EXPECT_EQ(cfg.policy.backPolicy, BackPolicy::PeriodicReset);
    EXPECT_FALSE(cfg.applyOption("nonsense=1"));
    EXPECT_FALSE(cfg.applyOption("mode"));
    EXPECT_FALSE(cfg.applyOption("mode=xyz"));
}

TEST(Config, ParseU64RejectsJunk)
{
    std::uint64_t v = 99;
    EXPECT_TRUE(parseU64("0", v));
    EXPECT_EQ(v, 0u);
    EXPECT_TRUE(parseU64("184467", v));
    EXPECT_EQ(v, 184467u);
    EXPECT_TRUE(parseU64("18446744073709551615", v)); // UINT64_MAX
    EXPECT_EQ(v, ~std::uint64_t{0});

    // Trailing junk must not silently truncate ("4k" -> 4).
    EXPECT_FALSE(parseU64("4k", v));
    EXPECT_FALSE(parseU64("1e6", v));
    EXPECT_FALSE(parseU64("7 ", v));
    // Negatives must not wrap ("-1" -> 2^64-1), and signs are out.
    EXPECT_FALSE(parseU64("-1", v));
    EXPECT_FALSE(parseU64("+1", v));
    EXPECT_FALSE(parseU64(" 1", v));
    EXPECT_FALSE(parseU64("", v));
    EXPECT_FALSE(parseU64("abc", v));
    // Overflow past 2^64-1 is rejected, not wrapped.
    EXPECT_FALSE(parseU64("18446744073709551616", v));
}

TEST(Config, ApplyOptionRejectsMalformedNumbers)
{
    SimConfig cfg;
    std::uint64_t before = cfg.walkRefCycles;
    // Regression: these used to be accepted via bare stoull, silently
    // truncating "4k" to 4 and wrapping "-1" to 2^64-1.
    EXPECT_FALSE(cfg.applyOption("walk_ref_cycles=4k"));
    EXPECT_FALSE(cfg.applyOption("walk_ref_cycles=-1"));
    EXPECT_FALSE(cfg.applyOption("walk_ref_cycles="));
    EXPECT_EQ(cfg.walkRefCycles, before);
    EXPECT_TRUE(cfg.applyOption("walk_ref_cycles=12"));
    EXPECT_EQ(cfg.walkRefCycles, 12u);
}

TEST(Experiment, DefaultsPreserveTableVOrdering)
{
    // graph500 and memcached are the big-memory pair; astar is the
    // smallest, mcf the biggest of SPEC (Table V).
    auto fp = [](const char *w) {
        return defaultParamsFor(w).footprintBytes;
    };
    EXPECT_GT(fp("graph500"), fp("mcf"));
    EXPECT_GT(fp("memcached"), fp("dedup"));
    EXPECT_GT(fp("mcf"), fp("gcc"));
    EXPECT_GT(fp("gcc"), fp("astar"));
}

TEST(Experiment, ConfigSizesMemoryToFootprint)
{
    WorkloadParams p = defaultParamsFor("mcf");
    SimConfig cfg = configFor(VirtMode::Agile, PageSize::Size4K, p);
    EXPECT_GT(cfg.hostMemFrames * kPageBytes, 2 * p.footprintBytes);
    EXPECT_GT(cfg.guestDataFrames * kPageBytes, p.footprintBytes);
    EXPECT_EQ(cfg.mode, VirtMode::Agile);
    // Agile's evaluated configuration includes the hardware opts.
    EXPECT_TRUE(cfg.hwOptAd);
    EXPECT_GT(cfg.sptrCacheEntries, 0u);
    // ...but shadow stays faithful to deployed systems.
    SimConfig scfg = configFor(VirtMode::Shadow, PageSize::Size4K, p);
    EXPECT_FALSE(scfg.hwOptAd);
}

TEST(Experiment, RunExperimentProducesResult)
{
    ExperimentSpec spec;
    spec.workload = "astar";
    spec.mode = VirtMode::Shadow;
    spec.operations = 30'000;
    RunResult r = runExperiment(spec);
    EXPECT_EQ(r.workload, "astar");
    EXPECT_EQ(r.mode, VirtMode::Shadow);
    EXPECT_GT(r.instructions, 0u);
}

TEST(PerfModel, BreakdownMatchesRunResult)
{
    RunResult r;
    r.idealCycles = 1'000'000;
    r.walkCycles = 200'000;
    r.trapCycles = 100'000;
    r.tlbMisses = 4'000;
    r.avgWalkRefs = 4.5;
    PerfBreakdown b = computeBreakdown(r);
    EXPECT_DOUBLE_EQ(b.pageWalkOverhead, 0.2);
    EXPECT_DOUBLE_EQ(b.vmmOverhead, 0.1);
    EXPECT_DOUBLE_EQ(b.cyclesPerMiss, 50.0);
    EXPECT_DOUBLE_EQ(b.slowdown, 1.3);
}

TEST(PerfModel, EmptyRunIsSafe)
{
    RunResult r;
    PerfBreakdown b = computeBreakdown(r);
    EXPECT_FALSE(b.hasData); // "no data", not a measured 0% overhead
    EXPECT_DOUBLE_EQ(b.pageWalkOverhead, 0.0);
    EXPECT_DOUBLE_EQ(b.slowdown, 1.0);
}

TEST(PerfModel, ZeroMissRunHasNoData)
{
    // Instructions retired but the TLB never missed: overhead is 0/0,
    // not 0%. The breakdown must say "no data" instead.
    RunResult r;
    r.instructions = 1'000'000;
    r.idealCycles = 1'000'000;
    PerfBreakdown b = computeBreakdown(r);
    EXPECT_FALSE(b.hasData);

    r.tlbMisses = 1;
    r.walkCycles = 40;
    EXPECT_TRUE(computeBreakdown(r).hasData);
}

TEST(PerfModel, ZeroMissProjectionIsNan)
{
    RunResult shadow, nested, agile;
    shadow.walkCycles = 400'000;
    nested.walkCycles = 2'400'000;
    agile.coverage[0] = 1.0;
    // No run recorded a single miss: per-miss costs are undefined and
    // the projection must say so rather than report 0 cycles.
    double projected = projectAgileWalkCycles(shadow, nested, agile);
    EXPECT_TRUE(std::isnan(projected));
}

TEST(PerfModel, BadCoverageSumPanics)
{
    RunResult shadow, nested, agile;
    shadow.walkCycles = 40;
    shadow.tlbMisses = 1;
    nested.walkCycles = 240;
    nested.tlbMisses = 1;
    agile.tlbMisses = 1;
    agile.coverage[0] = 0.5; // fractions sum to 0.5 — corrupt
    EXPECT_THROW(projectAgileWalkCycles(shadow, nested, agile),
                 std::logic_error);
}

TEST(PerfModel, AgileProjectionInterpolates)
{
    RunResult shadow, nested, agile;
    shadow.walkCycles = 400'000;
    shadow.tlbMisses = 10'000; // C_S = 40
    nested.walkCycles = 2'400'000;
    nested.tlbMisses = 10'000; // C_N = 240
    agile.tlbMisses = 10'000;
    agile.coverage[0] = 0.8; // shadow-served
    agile.coverage[1] = 0.2; // leaf-switched (half-cost assumption)
    double projected = projectAgileWalkCycles(shadow, nested, agile);
    // 0.8*40 + 0.2*(40 + 0.5*200) = 32 + 28 = 60 per miss.
    EXPECT_NEAR(projected, 60.0 * 10'000, 1e-6);
}

TEST(Report, ConfigLabelsMatchPaperStyle)
{
    RunResult r;
    r.mode = VirtMode::Native;
    r.pageSize = PageSize::Size4K;
    EXPECT_EQ(configLabel(r), "4K:B");
    r.mode = VirtMode::Agile;
    r.pageSize = PageSize::Size2M;
    EXPECT_EQ(configLabel(r), "2M:A");
}

TEST(Report, Figure5ContainsRows)
{
    RunResult r;
    r.workload = "mcf";
    r.mode = VirtMode::Nested;
    r.idealCycles = 100;
    r.walkCycles = 50;
    std::ostringstream os;
    printFigure5(os, {r});
    EXPECT_NE(os.str().find("mcf"), std::string::npos);
    EXPECT_NE(os.str().find("4K:N"), std::string::npos);
    EXPECT_NE(os.str().find("50.0%"), std::string::npos);
}

TEST(Report, Table6PercentagesAndAverage)
{
    RunResult r;
    r.workload = "memcached";
    r.coverage[0] = 0.882;
    r.coverage[1] = 0.045;
    r.coverage[2] = 0.073;
    r.avgWalkRefs = 4.76;
    std::ostringstream os;
    printTable6(os, {r});
    EXPECT_NE(os.str().find("memcached"), std::string::npos);
    EXPECT_NE(os.str().find("88.2%"), std::string::npos);
    EXPECT_NE(os.str().find("4.76"), std::string::npos);
}

TEST(Report, CsvHasHeaderAndRow)
{
    RunResult r;
    r.workload = "gcc";
    r.mode = VirtMode::Shadow;
    std::ostringstream os;
    printCsv(os, {r});
    EXPECT_NE(os.str().find("workload,mode"), std::string::npos);
    EXPECT_NE(os.str().find("gcc,Shadow,4K"), std::string::npos);
}

TEST(Report, OverheadBarScales)
{
    EXPECT_EQ(overheadBar(0.0).size(), 0u);
    EXPECT_EQ(overheadBar(0.10).size(), 5u);
    // At the cap the bar is exactly 60 columns of '#'.
    std::string capped = overheadBar(1.20);
    EXPECT_EQ(capped.size(), 60u);
    EXPECT_EQ(capped.find('+'), std::string::npos);
    // Beyond the cap it is clamped and marked, not silently flattened.
    std::string over = overheadBar(100.0);
    EXPECT_EQ(over.size(), 61u);
    EXPECT_EQ(over.back(), '+');
}

} // namespace
} // namespace ap
