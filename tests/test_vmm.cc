/**
 * @file
 * VMM unit tests: guest physical space, backing, host faults, trap
 * accounting, content-based page sharing, and host COW.
 */

#include <gtest/gtest.h>

#include "base/bitfield.hh"
#include "vmm/vmm.hh"

namespace ap
{
namespace
{

class VmmTest : public ::testing::Test
{
  protected:
    VmmTest()
        : mem(1 << 15),
          vmm(&root, mem,
              VmmConfig{1024, 1 << 14, PageSize::Size4K, TrapCosts{}, 0},
              nullptr)
    {
    }

    stats::StatGroup root{"t"};
    PhysMem mem;
    Vmm vmm;
};

TEST_F(VmmTest, PtFramesAreLowAndBackedEagerly)
{
    FrameId g = vmm.allocGuestPtFrame();
    ASSERT_NE(g, 0u);
    EXPECT_TRUE(vmm.isPtRegion(g));
    FrameId h = vmm.backing(g);
    ASSERT_NE(h, 0u);
    EXPECT_EQ(mem.kind(h), FrameKind::PageTable);
    EXPECT_EQ(mem.owner(h), TableOwner::GuestPt);
    // hPT maps it 4K.
    auto m = vmm.hostPt().lookup(frameAddr(g));
    ASSERT_TRUE(m.has_value());
    EXPECT_EQ(m->pfn, h);
    EXPECT_EQ(m->size, PageSize::Size4K);
}

TEST_F(VmmTest, DataFramesAreLazy)
{
    FrameId g = vmm.allocGuestDataFrame();
    ASSERT_NE(g, 0u);
    EXPECT_FALSE(vmm.isPtRegion(g));
    EXPECT_EQ(vmm.backing(g), 0u);
    EXPECT_FALSE(vmm.hostPt().lookup(frameAddr(g)).has_value());
}

TEST_F(VmmTest, HostFaultBacksAndCharges)
{
    FrameId g = vmm.allocGuestDataFrame();
    std::uint64_t traps_before = vmm.trapCount(TrapKind::HostFault);
    Cycles cycles_before = vmm.trapCycles();
    ASSERT_TRUE(vmm.handleHostFault(frameAddr(g)));
    EXPECT_EQ(vmm.trapCount(TrapKind::HostFault), traps_before + 1);
    EXPECT_GT(vmm.trapCycles(), cycles_before);
    EXPECT_NE(vmm.backing(g), 0u);
    EXPECT_TRUE(vmm.hostPt().lookup(frameAddr(g)).has_value());
}

TEST_F(VmmTest, ContiguousDataFramesAligned)
{
    FrameId g = vmm.allocGuestDataFrames(512);
    ASSERT_NE(g, 0u);
    EXPECT_TRUE(isAligned(frameAddr(g), PageSize::Size2M));
}

TEST_F(VmmTest, FreeRecyclesGuestFrames)
{
    FrameId g = vmm.allocGuestDataFrame();
    vmm.handleHostFault(frameAddr(g));
    std::uint64_t backed = vmm.backedDataFrames();
    vmm.freeGuestDataFrame(g);
    EXPECT_EQ(vmm.backedDataFrames(), backed - 1);
    EXPECT_EQ(vmm.backing(g), 0u);
}

TEST_F(VmmTest, DirtyTrackingRoundTrip)
{
    FrameId g = vmm.allocGuestPtFrame();
    EXPECT_FALSE(vmm.consumeGptDirty(g));
    vmm.markGptWriteDirty(g);
    // Architectural hPT dirty bit mirrors.
    const Pte *pte = vmm.hostPt().entry(frameAddr(g), kPtLevels - 1);
    ASSERT_NE(pte, nullptr);
    EXPECT_TRUE(pte->dirty);
    EXPECT_TRUE(vmm.consumeGptDirty(g));
    EXPECT_FALSE(vmm.consumeGptDirty(g));
    EXPECT_FALSE(pte->dirty);
}

TEST_F(VmmTest, SharePagesCollapsesDuplicates)
{
    FrameId a = vmm.allocGuestDataFrame();
    FrameId b = vmm.allocGuestDataFrame();
    FrameId c = vmm.allocGuestDataFrame();
    vmm.handleHostFault(frameAddr(a));
    vmm.handleHostFault(frameAddr(b));
    vmm.handleHostFault(frameAddr(c));
    vmm.setContent(a, 777);
    vmm.setContent(b, 777);
    vmm.setContent(c, 888);
    std::uint64_t backed = vmm.backedDataFrames();
    EXPECT_EQ(vmm.sharePages(), 1u);
    EXPECT_EQ(vmm.backedDataFrames(), backed - 1);
    EXPECT_EQ(vmm.backing(a), vmm.backing(b));
    EXPECT_NE(vmm.backing(a), vmm.backing(c));
    // Both mappings now read-only.
    EXPECT_FALSE(vmm.hostWritable(a));
    EXPECT_FALSE(vmm.hostWritable(b));
    EXPECT_TRUE(vmm.hostWritable(c));
}

TEST_F(VmmTest, CowBreakRestoresPrivateWritable)
{
    FrameId a = vmm.allocGuestDataFrame();
    FrameId b = vmm.allocGuestDataFrame();
    vmm.handleHostFault(frameAddr(a));
    vmm.handleHostFault(frameAddr(b));
    vmm.setContent(a, 42);
    vmm.setContent(b, 42);
    vmm.sharePages();
    ASSERT_FALSE(vmm.hostWritable(b));
    std::uint64_t cows = vmm.trapCount(TrapKind::HostCow);
    ASSERT_TRUE(vmm.breakHostCow(b));
    EXPECT_EQ(vmm.trapCount(TrapKind::HostCow), cows + 1);
    EXPECT_TRUE(vmm.hostWritable(b));
    EXPECT_NE(vmm.backing(a), vmm.backing(b));
    auto m = vmm.hostPt().lookup(frameAddr(b));
    ASSERT_TRUE(m.has_value());
    EXPECT_TRUE(m->pte.writable);
}

TEST_F(VmmTest, TrapCostsMatchModel)
{
    TrapCosts costs;
    Cycles before = vmm.trapCycles();
    vmm.chargeTrap(TrapKind::CtxSwitch, 10);
    EXPECT_EQ(vmm.trapCycles() - before,
              costs.cost(TrapKind::CtxSwitch, 10));
    EXPECT_EQ(vmm.trapCountTotal(), vmm.trapCount(TrapKind::CtxSwitch));
}

TEST_F(VmmTest, PtRegionExhaustionReturnsZero)
{
    std::uint64_t got = 0;
    while (vmm.allocGuestPtFrame() != 0)
        ++got;
    EXPECT_EQ(got, 1024u);
    EXPECT_EQ(vmm.allocGuestPtFrame(), 0u);
}

class Vmm2MTest : public ::testing::Test
{
  protected:
    Vmm2MTest()
        : mem(1 << 15),
          vmm(&root, mem,
              VmmConfig{512, 1 << 14, PageSize::Size2M, TrapCosts{}, 0},
              nullptr)
    {
    }

    stats::StatGroup root{"t"};
    PhysMem mem;
    Vmm vmm;
};

TEST_F(Vmm2MTest, HostFaultBacksWholeGroup)
{
    FrameId g = vmm.allocGuestDataFrame();
    ASSERT_TRUE(vmm.handleHostFault(frameAddr(g)));
    // The containing 2M group is backed with one 2M host mapping.
    FrameId group = g & ~std::uint64_t{511};
    auto m = vmm.hostPt().lookup(frameAddr(group));
    ASSERT_TRUE(m.has_value());
    EXPECT_EQ(m->size, PageSize::Size2M);
    EXPECT_TRUE(isAligned(frameAddr(m->pfn), PageSize::Size2M));
    // Every frame of the group is backed contiguously.
    for (unsigned i = 0; i < 512; ++i)
        EXPECT_EQ(vmm.backing(group + i), m->pfn + i);
}

TEST_F(Vmm2MTest, PtFramesStillBacked4K)
{
    FrameId g = vmm.allocGuestPtFrame();
    auto m = vmm.hostPt().lookup(frameAddr(g));
    ASSERT_TRUE(m.has_value());
    EXPECT_EQ(m->size, PageSize::Size4K);
}

} // namespace
} // namespace ap
