/**
 * @file
 * Shadow manager tests: on-demand fills, write protection and sync,
 * unsync/resync, A/D emulation, agile mode conversions, and the
 * shadow-vs-guest coherence invariant.
 */

#include <gtest/gtest.h>

#include "base/bitfield.hh"
#include "vmm/guest_pt_space.hh"
#include "vmm/shadow_mgr.hh"
#include "walker/walker.hh"

namespace ap
{
namespace
{

class ShadowTest : public ::testing::Test
{
  protected:
    static constexpr ProcId kProc = 1;

    ShadowTest()
        : mem(1 << 16),
          pwc(&root, 32, 4, false),
          ntlb(&root, 64, 4, false),
          tlb(&root, TlbHierarchyConfig{}),
          coh(&root, TlbCoherence::Software, 1600, 40),
          vmm(&root, mem,
              VmmConfig{4096, 1 << 15, PageSize::Size4K, TrapCosts{},
                        0},
              &ntlb),
          mgr(&root, mem, vmm, ShadowConfig{}, &coh),
          walker(&root, mem, pwc, ntlb),
          gspace(vmm),
          gpt(gspace, "gPT")
    {
        coh.addVcpu(&tlb, &pwc);
        gspace.onFree = [this](FrameId g) { mgr.onGptPageFree(kProc, g); };
        mgr.registerProcess(kProc, &gpt, gpt.root(), /*agile=*/true);
        ctx_ = &mgr.context(kProc);
        ctx_->mode = VirtMode::Agile;
    }

    /** Map and back one guest 4K data page. */
    FrameId
    mapGuest(Addr gva, bool writable = true)
    {
        FrameId g = vmm.allocGuestDataFrame();
        EXPECT_NE(g, 0u);
        EXPECT_NE(gpt.map(gva, g, PageSize::Size4K, writable), nullptr);
        vmm.ensureDataBacked(g);
        return g;
    }

    /** Translate va the way the machine does: walk, service faults. */
    WalkResult
    translate(Addr va, bool write = false)
    {
        for (int attempts = 0; attempts < 10; ++attempts) {
            WalkResult r = walker.walk(*ctx_, va, write);
            if (r.ok())
                return r;
            if (r.fault == WalkFault::ShadowFault) {
                auto fill = mgr.handleShadowFault(kProc, va);
                if (fill == ShadowFillResult::NeedGuestFault)
                    return r; // caller deals with the guest fault
                continue;
            }
            if (r.fault == WalkFault::HostFault) {
                EXPECT_TRUE(vmm.handleHostFault(r.faultGpa));
                continue;
            }
            return r;
        }
        ADD_FAILURE() << "translation did not converge";
        return WalkResult{};
    }

    stats::StatGroup root{"t"};
    PhysMem mem;
    PageWalkCache pwc;
    NestedTlb ntlb;
    TlbHierarchy tlb;
    CoherenceDomain coh;
    Vmm vmm;
    ShadowMgr mgr;
    Walker walker;
    GuestPtSpace gspace;
    RadixPageTable gpt;
    TranslationContext *ctx_;
};

TEST_F(ShadowTest, FillOnDemandThenFourRefWalks)
{
    FrameId g = mapGuest(0x1000);
    WalkResult r = translate(0x1000);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r.hframe, vmm.backing(g));
    EXPECT_GT(mgr.fills.value(), 0.0);
    // Once filled, walks are pure shadow: 4 references.
    WalkResult again = walker.walk(*ctx_, 0x1000, false);
    ASSERT_TRUE(again.ok());
    EXPECT_EQ(again.refs, 4u);
}

TEST_F(ShadowTest, FillReportsMissingGuestMapping)
{
    EXPECT_EQ(mgr.handleShadowFault(kProc, 0xdead000),
              ShadowFillResult::NeedGuestFault);
}

TEST_F(ShadowTest, FirstWriteTrapsForDirtyEmulation)
{
    mapGuest(0x2000, true);
    WalkResult r = translate(0x2000, false);
    ASSERT_TRUE(r.ok());
    // Write-enable withheld although the guest grants it (dirty trick).
    EXPECT_FALSE(r.writable);
    std::uint64_t before = vmm.trapCount(TrapKind::AdEmulation);
    mgr.emulateDirtyWrite(kProc, 0x2000);
    EXPECT_EQ(vmm.trapCount(TrapKind::AdEmulation), before + 1);
    WalkResult after = translate(0x2000, true);
    ASSERT_TRUE(after.ok());
    EXPECT_TRUE(after.writable);
    // Guest leaf carries A/D now.
    const Pte *gpte = gpt.entry(0x2000, 3);
    EXPECT_TRUE(gpte->accessed);
    EXPECT_TRUE(gpte->dirty);
}

TEST_F(ShadowTest, HwOptAdSkipsDirtyTrick)
{
    ShadowConfig cfg;
    cfg.hwOptAd = true;
    ShadowMgr mgr2(&root, mem, vmm, cfg, &coh);
    GuestPtSpace gs2(vmm);
    RadixPageTable gpt2(gs2, "gPT2");
    mgr2.registerProcess(2, &gpt2, gpt2.root(), true);
    mgr2.context(2).mode = VirtMode::Agile;

    FrameId g = vmm.allocGuestDataFrame();
    gpt2.map(0x3000, g, PageSize::Size4K, true);
    vmm.ensureDataBacked(g);
    EXPECT_EQ(mgr2.handleShadowFault(2, 0x3000), ShadowFillResult::Filled);
    WalkResult r = walker.walk(mgr2.context(2), 0x3000, true);
    ASSERT_TRUE(r.ok());
    EXPECT_TRUE(r.writable); // no protection trick with hardware A/D
}

TEST_F(ShadowTest, UnshadowedWriteIsFree)
{
    mapGuest(0x4000);
    // Nothing filled yet below the root: writes to the (never-
    // shadowed) leaf PT page are not mediated.
    auto out = mgr.onGptWrite(kProc, 0x4000, 3);
    EXPECT_FALSE(out.trapped);
    EXPECT_EQ(out.node, nullptr);
}

TEST_F(ShadowTest, ProtectedLeafWriteBecomesUnsynced)
{
    mapGuest(0x5000);
    translate(0x5000);
    std::uint64_t traps = vmm.trapCountTotal();
    // Guest updates an entry in the now-shadowed leaf PT page.
    mapGuest(0x6000); // same leaf table page (adjacent VA)
    auto out = mgr.onGptWrite(kProc, 0x6000, 3);
    EXPECT_TRUE(out.trapped);
    EXPECT_TRUE(out.unsynced);
    EXPECT_EQ(vmm.trapCountTotal(), traps + 1);
    // Second write to the same page: free.
    mapGuest(0x7000);
    auto out2 = mgr.onGptWrite(kProc, 0x7000, 3);
    EXPECT_FALSE(out2.trapped);
}

TEST_F(ShadowTest, ResyncDropsStaleShadowEntries)
{
    FrameId g_old = mapGuest(0x8000);
    translate(0x8000);
    // Guest remaps the page to a different frame (e.g. COW): the
    // shadow leaf goes stale, the page unsyncs.
    FrameId g_new = vmm.allocGuestDataFrame();
    vmm.ensureDataBacked(g_new);
    gpt.map(0x8000, g_new, PageSize::Size4K, true);
    mgr.onGptWrite(kProc, 0x8000, 3);
    // Flush resyncs: the stale entry must go, next walk refills.
    mgr.onGuestTlbFlush(kProc, false);
    WalkResult r = translate(0x8000);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r.hframe, vmm.backing(g_new));
    EXPECT_NE(r.hframe, vmm.backing(g_old));
    EXPECT_GT(mgr.resyncPages.value(), 0.0);
}

TEST_F(ShadowTest, NonLeafWriteSyncsInPlace)
{
    mapGuest(0x9000);
    translate(0x9000);
    std::uint64_t syncs = vmm.trapCount(TrapKind::ShadowPtWrite);
    // An upper-level write (the guest replacing a whole subtree);
    // depth 2 and 3 are unsync-eligible, pointer levels sync in place.
    auto out = mgr.onGptWrite(kProc, 0x9000, 1);
    EXPECT_TRUE(out.trapped);
    EXPECT_FALSE(out.unsynced);
    EXPECT_EQ(vmm.trapCount(TrapKind::ShadowPtWrite), syncs + 1);
    // The covered shadow subtree was invalidated: next walk refaults.
    WalkResult r = walker.walk(*ctx_, 0x9000, false);
    EXPECT_EQ(r.fault, WalkFault::ShadowFault);
}

TEST_F(ShadowTest, ConvertToNestedInstallsSwitchingEntry)
{
    mapGuest(0xa000);
    translate(0xa000);
    mgr.convertToNested(kProc, 0xa000, 3);
    WalkResult r = translate(0xa000);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r.refs, 8u); // leaf level nested: 3 shadow + 5 nested
    EXPECT_EQ(r.switchDepth, 3u);
    // Writes to the leaf PT page are now free.
    mapGuest(0xb000);
    auto out = mgr.onGptWrite(kProc, 0xb000, 3);
    EXPECT_FALSE(out.trapped);
}

TEST_F(ShadowTest, ConvertToNestedDepth0UsesRootSwitch)
{
    mapGuest(0xc000);
    translate(0xc000);
    mgr.convertToNested(kProc, 0xc000, 0);
    EXPECT_TRUE(ctx_->rootSwitch);
    WalkResult r = translate(0xc000);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r.refs, 20u);
    // Root writes are free now.
    auto out = mgr.onGptWrite(kProc, 0xc000, 0);
    EXPECT_FALSE(out.trapped);
}

TEST_F(ShadowTest, ConvertBackToShadowRestoresFastWalks)
{
    mapGuest(0xd000);
    translate(0xd000);
    mgr.convertToNested(kProc, 0xd000, 3);
    translate(0xd000);
    mgr.convertToShadow(kProc, 0xd000, 3);
    WalkResult r = translate(0xd000);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r.refs, 4u);
    EXPECT_EQ(r.switchDepth, kPtLevels);
    // Writes are mediated again.
    mapGuest(0xe000);
    auto out = mgr.onGptWrite(kProc, 0xe000, 3);
    EXPECT_TRUE(out.trapped);
}

TEST_F(ShadowTest, NestedWritesLeaveDirtyTraceForPolicy)
{
    mapGuest(0xf000);
    translate(0xf000);
    mgr.convertToNested(kProc, 0xf000, 3);
    FrameId leaf_frame = gpt.tableFrame(0xf000, 3);
    EXPECT_FALSE(vmm.consumeGptDirty(leaf_frame));
    mapGuest(0xf000 + kPageBytes);
    mgr.onGptWrite(kProc, 0xf000 + kPageBytes, 3);
    EXPECT_TRUE(vmm.consumeGptDirty(leaf_frame));
}

TEST_F(ShadowTest, CtxSwitchTrapsWithoutSptrCache)
{
    std::uint64_t before = vmm.trapCount(TrapKind::CtxSwitch);
    EXPECT_TRUE(mgr.onCtxSwitchIn(kProc));
    EXPECT_EQ(vmm.trapCount(TrapKind::CtxSwitch), before + 1);
}

TEST_F(ShadowTest, ShadowMatchesGuestComposedWithHost)
{
    // Coherence invariant: for every mapped VA, the shadow walk result
    // equals gPT composed with hPT.
    for (Addr va = 0x100000; va < 0x100000 + 64 * kPageBytes;
         va += kPageBytes) {
        mapGuest(va);
    }
    for (Addr va = 0x100000; va < 0x100000 + 64 * kPageBytes;
         va += kPageBytes) {
        WalkResult r = translate(va);
        ASSERT_TRUE(r.ok());
        auto gm = gpt.lookup(va);
        ASSERT_TRUE(gm.has_value());
        EXPECT_EQ(r.hframe, vmm.backing(gm->pfn)) << std::hex << va;
    }
}

TEST_F(ShadowTest, ZapRebuildsFromScratch)
{
    mapGuest(0x10000);
    translate(0x10000);
    double fills_before = mgr.fills.value();
    mgr.zapProcess(kProc);
    WalkResult r = walker.walk(*ctx_, 0x10000, false);
    EXPECT_EQ(r.fault, WalkFault::ShadowFault);
    translate(0x10000);
    EXPECT_GT(mgr.fills.value(), fills_before);
}

TEST_F(ShadowTest, GptPageFreeDropsNode)
{
    mapGuest(0x11000);
    translate(0x11000);
    // Unmapping the only page under a leaf PT page does not free it,
    // but clearing a whole region does (invalidateEntry at depth 2).
    FrameId leaf_frame = gpt.tableFrame(0x11000, 3);
    ASSERT_NE(leaf_frame, PhysMem::kNoFrame);
    gpt.invalidateEntry(0x11000, 2); // frees the leaf table page
    // Node is gone: a write "through" a recycled frame is unmediated.
    auto out = mgr.onGptWrite(kProc, 0x11000, 3);
    EXPECT_FALSE(out.trapped);
    EXPECT_EQ(out.node, nullptr);
}

TEST_F(ShadowTest, SptrCacheSuppressesRepeatCtxSwitchTraps)
{
    PhysMem mem2(1 << 15);
    Vmm vmm2(&root, mem2,
             VmmConfig{512, 1 << 12, PageSize::Size4K, TrapCosts{}, 8},
             nullptr);
    ShadowMgr mgr2(&root, mem2, vmm2, ShadowConfig{}, nullptr);
    GuestPtSpace gs2(vmm2);
    RadixPageTable gpt2(gs2, "gPT");
    mgr2.registerProcess(7, &gpt2, gpt2.root(), false);
    // First switch misses the sptr cache and traps; second hits.
    EXPECT_TRUE(mgr2.onCtxSwitchIn(7));
    EXPECT_FALSE(mgr2.onCtxSwitchIn(7));
    EXPECT_EQ(vmm2.trapCount(TrapKind::CtxSwitch), 1u);
}

} // namespace
} // namespace ap
