/**
 * @file
 * Cross-mode integration and property tests: every technique must
 * produce functionally identical translations for identical operation
 * streams, 1 GB pages work end to end (Section V), and randomized
 * operation fuzzing holds the machine's invariants under verification.
 */

#include <gtest/gtest.h>

#include "base/bitfield.hh"
#include "sim/machine.hh"
#include "workloads/workload.hh"

namespace ap
{
namespace
{

SimConfig
cfgFor(VirtMode mode, PageSize ps = PageSize::Size4K)
{
    SimConfig cfg;
    cfg.mode = mode;
    cfg.pageSize = ps;
    cfg.guestOs.pageSize = ps;
    cfg.hostMemFrames = 1 << 17;
    cfg.guestPtFrames = 1 << 13;
    cfg.guestDataFrames = 1 << 16;
    cfg.verifyTranslations = true; // panics on any functional mismatch
    cfg.policyIntervalOps = 20'000;
    return cfg;
}

TEST(Integration, OneGigPagesEndToEnd)
{
    for (VirtMode mode : {VirtMode::Native, VirtMode::Nested,
                          VirtMode::Shadow, VirtMode::Agile}) {
        SimConfig cfg = cfgFor(mode, PageSize::Size1G);
        // A 1 GB backing group needs 262144 contiguous, naturally
        // aligned host frames (plus alignment slack).
        cfg.hostMemFrames = (1u << 19) + (1u << 17);
        cfg.guestDataFrames = (1u << 19) + (1u << 17);
        Machine m(cfg);
        m.spawnProcess();
        Addr base = m.mmap(kHugePageBytes, true, false, 0);
        ASSERT_NE(base, 0u) << virtModeName(mode);
        ASSERT_EQ(base % kHugePageBytes, 0u);
        // Touch spots across the gig; everything verified.
        for (Addr off = 0; off < kHugePageBytes;
             off += 64 * kLargePageBytes) {
            m.touch(base + off, true);
        }
        // The guest mapping is one 1 GB page.
        auto gm = m.guestOs().process(m.currentProcess()).pt->lookup(
            base + kLargePageBytes);
        ASSERT_TRUE(gm.has_value()) << virtModeName(mode);
        EXPECT_EQ(gm->size, PageSize::Size1G) << virtModeName(mode);
        // And after the first touch, later touches hit the 1 GB TLB.
        RunResult r = m.snapshot("1g");
        EXPECT_LE(r.tlbMisses, 4u) << virtModeName(mode);
    }
}

TEST(Integration, IdenticalStreamsTranslateIdentically)
{
    // Drive the exact same operation sequence through every mode with
    // verification on; the per-mode *functional* behaviour must agree
    // (same faults served, same final mapping count).
    for (VirtMode mode : {VirtMode::Native, VirtMode::Nested,
                          VirtMode::Shadow, VirtMode::Agile,
                          VirtMode::Shsp}) {
        Machine m(cfgFor(mode));
        ProcId pid = m.spawnProcess();
        Rng rng(77);
        Addr regions[4];
        for (auto &r : regions)
            r = m.mmap(64 * kPageBytes, true, false, 0);
        for (int i = 0; i < 5'000; ++i) {
            Addr base = regions[rng.nextBelow(4)];
            m.touch(base + pageBase(rng.nextBelow(64 * kPageBytes)),
                    rng.chance(0.5));
        }
        GuestProcess &p = m.guestOs().process(pid);
        EXPECT_EQ(p.pt->mappingCount(), 256u) << virtModeName(mode);
        EXPECT_EQ(m.guestOs().demandPages.value(), 256.0)
            << virtModeName(mode);
    }
}

TEST(Integration, RandomOpFuzzAllModes)
{
    // Randomized mmap/munmap/touch/fork/reclaim fuzzing with
    // translation verification enabled: any stale TLB entry, stale
    // shadow entry, or bad switching pointer panics.
    for (VirtMode mode : {VirtMode::Nested, VirtMode::Shadow,
                          VirtMode::Agile}) {
        Machine m(cfgFor(mode));
        m.spawnProcess();
        Rng rng(1234);
        std::vector<std::pair<Addr, Addr>> live;
        for (int i = 0; i < 8'000; ++i) {
            double roll = rng.nextDouble();
            if (roll < 0.05 && live.size() < 24) {
                Addr len = kPageBytes * (1 + rng.nextBelow(32));
                Addr base = m.mmap(len, true, false, 0);
                if (base)
                    live.emplace_back(base, len);
            } else if (roll < 0.08 && !live.empty()) {
                std::size_t k = rng.nextBelow(live.size());
                m.munmap(live[k].first, live[k].second);
                live.erase(live.begin() + k);
            } else if (roll < 0.10 && !live.empty()) {
                m.forkTouchExit(4);
            } else if (roll < 0.12) {
                m.reclaimTick(64);
            } else if (roll < 0.13) {
                m.sharePagesScan();
            } else if (!live.empty()) {
                std::size_t k = rng.nextBelow(live.size());
                m.touch(live[k].first +
                            pageBase(rng.nextBelow(live[k].second)),
                        rng.chance(0.4));
            }
        }
        SUCCEED() << virtModeName(mode);
    }
}

TEST(Integration, MixedPageSizeStagesBreakToSmall)
{
    // Guest 2 MB pages over 4 KB host mappings: the TLB entry must be
    // broken to 4 KB (Section V) and still translate correctly.
    SimConfig cfg = cfgFor(VirtMode::Nested, PageSize::Size4K);
    cfg.guestOs.pageSize = PageSize::Size2M; // guest THP, host 4K
    Machine m(cfg);
    m.spawnProcess();
    Addr base = m.mmap(4 * kLargePageBytes, true, false, 0);
    for (Addr off = 0; off < 4 * kLargePageBytes; off += kLargePageBytes)
        m.touch(base + off, true);
    auto gm = m.guestOs().process(m.currentProcess()).pt->lookup(base);
    ASSERT_TRUE(gm.has_value());
    EXPECT_EQ(gm->size, PageSize::Size2M);
    // Accesses at 4K granularity all verify (done inside touch).
    for (Addr off = 0; off < kLargePageBytes; off += 64 * kPageBytes)
        m.touch(base + off, false);
}

TEST(Integration, AgileSurvivesProcessChurn)
{
    // Create/destroy many processes under agile paging: shadow state,
    // sptr cache entries, and policy state must not leak or dangle.
    SimConfig cfg = cfgFor(VirtMode::Agile);
    cfg.sptrCacheEntries = 4;
    Machine m(cfg);
    ProcId main = m.spawnProcess();
    Addr base = m.mmap(32 * kPageBytes, true, false, 0);
    for (int round = 0; round < 20; ++round) {
        ProcId child = m.guestOs().createProcess(VirtMode::Agile);
        m.switchTo(child);
        Addr cbase = m.guestOs().mmap(child, 16 * kPageBytes, true,
                                      VmaKind::Anon);
        for (unsigned i = 0; i < 16; ++i)
            m.touch(cbase + i * kPageBytes, true);
        m.switchTo(main);
        m.guestOs().exitProcess(child);
        m.touch(base + (round % 32) * kPageBytes, true);
    }
    EXPECT_TRUE(m.guestOs().hasProcess(main));
}

TEST(Integration, HostMemoryAccounting)
{
    // After heavy churn, freeing the process releases every host frame
    // except the VMM's own tables.
    SimConfig cfg = cfgFor(VirtMode::Agile);
    Machine m(cfg);
    ProcId pid = m.spawnProcess();
    Rng rng(5);
    Addr base = m.mmap(256 * kPageBytes, true, false, 0);
    for (int i = 0; i < 4'000; ++i)
        m.touch(base + pageBase(rng.nextBelow(256 * kPageBytes)),
                rng.chance(0.5));
    m.guestOs().exitProcess(pid);
    EXPECT_EQ(m.vmm()->backedDataFrames(), 0u);
}

} // namespace
} // namespace ap
