/**
 * @file
 * Walker tests: exact Table II reference counts for every degree of
 * nesting, fault reporting, cache interactions, A/D side effects, and
 * mixed-page-size effective translations.
 */

#include <gtest/gtest.h>

#include "base/bitfield.hh"
#include "mem/page_table.hh"
#include "tlb/nested_tlb.hh"
#include "tlb/pwc.hh"
#include "vmm/guest_pt_space.hh"
#include "vmm/vmm.hh"
#include "walker/walker.hh"

namespace ap
{
namespace
{

/**
 * A hand-assembled virtualized environment: host memory, VMM (host PT
 * + backings), one guest page table, one shadow table.
 */
class WalkerTest : public ::testing::Test
{
  protected:
    WalkerTest()
        : mem(1 << 16),
          pwc(&root, 32, 4, false),
          ntlb(&root, 64, 4, false),
          vmm(&root, mem, VmmConfig{4096, 1 << 15, PageSize::Size4K,
                                    TrapCosts{}, 0},
              &ntlb),
          walker(&root, mem, pwc, ntlb),
          gspace(vmm),
          gpt(gspace, "gPT"),
          sspace(mem, TableOwner::ShadowPt),
          spt(sspace, "sPT")
    {
        ctx.asid = 1;
        ctx.gptRoot = gpt.root();
        ctx.gptRootBacking = vmm.ensurePtBacked(gpt.root());
        ctx.hptRoot = vmm.hostPtRoot();
        ctx.sptRoot = spt.root();
    }

    /** Map a guest data page at @p gva and pre-back it. */
    FrameId
    mapGuest(Addr gva, PageSize ps = PageSize::Size4K, bool writable = true)
    {
        std::uint64_t frames = pageBytes(ps) / kPageBytes;
        FrameId gframe = frames == 1 ? vmm.allocGuestDataFrame()
                                     : vmm.allocGuestDataFrames(frames);
        EXPECT_NE(gframe, 0u);
        EXPECT_NE(gpt.map(gva, gframe, ps, writable), nullptr);
        for (std::uint64_t i = 0; i < frames; ++i)
            EXPECT_NE(vmm.ensureDataBacked(gframe + i), PhysMem::kNoFrame);
        return gframe;
    }

    /** Build the full shadow leaf for a 4K guest page at @p gva. */
    void
    shadowLeaf(Addr gva, FrameId gframe, bool writable = true)
    {
        ASSERT_NE(spt.map(gva, vmm.backing(gframe), PageSize::Size4K,
                          writable),
                  nullptr);
    }

    /** Plant a switching entry at shadow depth @p depth for @p gva. */
    void
    plantSwitch(Addr gva, unsigned depth)
    {
        // The switching entry holds the host frame of the *next* level
        // of the guest page table.
        FrameId next_gframe = gpt.tableFrame(gva, depth + 1);
        ASSERT_NE(next_gframe, PhysMem::kNoFrame);
        Pte *spte = spt.ensurePath(gva, depth);
        ASSERT_NE(spte, nullptr);
        *spte = Pte{};
        spte->valid = true;
        spte->switching = true;
        spte->pfn = vmm.ensurePtBacked(next_gframe);
    }

    stats::StatGroup root{"test"};
    PhysMem mem;
    PageWalkCache pwc;
    NestedTlb ntlb;
    Vmm vmm;
    Walker walker;
    GuestPtSpace gspace;
    RadixPageTable gpt;
    HostPtSpace sspace;
    RadixPageTable spt;
    TranslationContext ctx;
};

// ---------------------------------------------------------------------
// Native walks
// ---------------------------------------------------------------------

TEST_F(WalkerTest, NativeWalkFourRefs)
{
    HostPtSpace nspace(mem, TableOwner::NativePt);
    RadixPageTable npt(nspace, "nPT");
    FrameId data = mem.allocData(0);
    npt.map(0x40001000, data, PageSize::Size4K, true);

    TranslationContext nctx;
    nctx.mode = VirtMode::Native;
    nctx.asid = 1;
    nctx.nativeRoot = npt.root();

    WalkResult r = walker.walk(nctx, 0x40001234, false);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r.refs, 4u); // Table II base native: 4
    EXPECT_EQ(r.hframe, data);
    EXPECT_EQ(r.size, PageSize::Size4K);
}

TEST_F(WalkerTest, NativeWalk2MThreeRefs)
{
    HostPtSpace nspace(mem, TableOwner::NativePt);
    RadixPageTable npt(nspace, "nPT");
    FrameId base = mem.allocDataContiguous(512);
    npt.map(kLargePageBytes * 8, base, PageSize::Size2M, true);

    TranslationContext nctx;
    nctx.mode = VirtMode::Native;
    nctx.nativeRoot = npt.root();

    WalkResult r = walker.walk(nctx, kLargePageBytes * 8 + 0x5000, false);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r.refs, 3u);
    EXPECT_EQ(r.size, PageSize::Size2M);
}

TEST_F(WalkerTest, NativeFaultReported)
{
    HostPtSpace nspace(mem, TableOwner::NativePt);
    RadixPageTable npt(nspace, "nPT");
    TranslationContext nctx;
    nctx.mode = VirtMode::Native;
    nctx.nativeRoot = npt.root();

    WalkResult r = walker.walk(nctx, 0xdead000, true);
    EXPECT_EQ(r.fault, WalkFault::NativeFault);
    EXPECT_EQ(r.faultVa, 0xdead000u);
    EXPECT_EQ(r.faultDepth, 0u);
}

// ---------------------------------------------------------------------
// Nested walks (Fig. 2b)
// ---------------------------------------------------------------------

TEST_F(WalkerTest, NestedWalkExactly24Refs)
{
    ctx.mode = VirtMode::Nested;
    FrameId gframe = mapGuest(0x7f0000001000);
    WalkResult r = walker.walk(ctx, 0x7f0000001abc, false);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r.refs, 24u); // Table II nested paging: 24
    EXPECT_TRUE(r.fullNested);
    EXPECT_EQ(r.hframe, vmm.backing(gframe));
}

TEST_F(WalkerTest, NestedWalkChronologyMatchesFig1b)
{
    ctx.mode = VirtMode::Nested;
    mapGuest(0x1000);
    walker.setTracing(true);
    WalkResult r = walker.walk(ctx, 0x1000, false);
    ASSERT_TRUE(r.ok());
    ASSERT_EQ(r.trace.size(), 24u);
    // First four references translate gptr through the host table.
    for (int i = 0; i < 4; ++i)
        EXPECT_EQ(r.trace[i].table, WalkTable::HostPt);
    // Then each guest level: one gPT read followed by four hPT reads.
    for (int level = 0; level < 4; ++level) {
        EXPECT_EQ(r.trace[4 + level * 5].table, WalkTable::GuestPt);
        EXPECT_EQ(r.trace[4 + level * 5].depth,
                  static_cast<unsigned>(level));
        for (int j = 1; j <= 4; ++j)
            EXPECT_EQ(r.trace[4 + level * 5 + j].table, WalkTable::HostPt);
    }
}

TEST_F(WalkerTest, NestedGuestFault)
{
    ctx.mode = VirtMode::Nested;
    WalkResult r = walker.walk(ctx, 0x123456000, false);
    EXPECT_EQ(r.fault, WalkFault::GuestFault);
    EXPECT_EQ(r.faultVa, 0x123456000u);
    EXPECT_EQ(r.faultDepth, 0u);
}

TEST_F(WalkerTest, NestedHostFaultOnUnbackedData)
{
    ctx.mode = VirtMode::Nested;
    FrameId gframe = vmm.allocGuestDataFrame();
    gpt.map(0x5000, gframe, PageSize::Size4K, true);
    // Data frame deliberately not backed: the final host walk faults.
    WalkResult r = walker.walk(ctx, 0x5000, false);
    EXPECT_EQ(r.fault, WalkFault::HostFault);
    EXPECT_EQ(frameOf(r.faultGpa), gframe);
}

TEST_F(WalkerTest, NestedTlbCutsHostWalks)
{
    ctx.mode = VirtMode::Nested;
    NestedTlb ntlb_on(&root, 64, 4, true);
    Walker w2(&root, mem, pwc, ntlb_on);
    mapGuest(0x9000);
    WalkResult first = w2.walk(ctx, 0x9000, false);
    ASSERT_TRUE(first.ok());
    EXPECT_EQ(first.refs, 24u);
    // All five host walks now hit the nested TLB: only 4 gPT reads.
    WalkResult second = w2.walk(ctx, 0x9000, false);
    ASSERT_TRUE(second.ok());
    EXPECT_EQ(second.refs, 4u);
}

TEST_F(WalkerTest, PwcSkipsGuestLevels)
{
    ctx.mode = VirtMode::Nested;
    PageWalkCache pwc_on(&root, 32, 4, true);
    Walker w2(&root, mem, pwc_on, ntlb);
    mapGuest(0xa000);
    WalkResult first = w2.walk(ctx, 0xa000, false);
    EXPECT_EQ(first.refs, 24u);
    // Resume at depth 3: one gPT read plus its host walk.
    WalkResult second = w2.walk(ctx, 0xa000, false);
    ASSERT_TRUE(second.ok());
    EXPECT_EQ(second.refs, 5u);
}

TEST_F(WalkerTest, Nested2MGuestAnd4KHostBreaksPage)
{
    ctx.mode = VirtMode::Nested;
    Addr va = kLargePageBytes * 16;
    mapGuest(va, PageSize::Size2M);
    WalkResult r = walker.walk(ctx, va + 0x3456, false);
    ASSERT_TRUE(r.ok());
    // Host backs with 4K mappings: the TLB entry is broken to 4K.
    EXPECT_EQ(r.size, PageSize::Size4K);
}

// ---------------------------------------------------------------------
// Shadow walks (Fig. 2c) and agile walks (Fig. 4)
// ---------------------------------------------------------------------

TEST_F(WalkerTest, ShadowWalkFourRefs)
{
    ctx.mode = VirtMode::Shadow;
    FrameId gframe = mapGuest(0xb000);
    shadowLeaf(0xb000, gframe);
    WalkResult r = walker.walk(ctx, 0xb123, false);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r.refs, 4u); // Table II shadow paging: 4
    EXPECT_EQ(r.switchDepth, kPtLevels);
    EXPECT_EQ(r.hframe, vmm.backing(gframe));
}

TEST_F(WalkerTest, ShadowFaultOnEmptyShadow)
{
    ctx.mode = VirtMode::Shadow;
    mapGuest(0xc000);
    WalkResult r = walker.walk(ctx, 0xc000, false);
    EXPECT_EQ(r.fault, WalkFault::ShadowFault);
    EXPECT_EQ(r.faultVa, 0xc000u);
}

TEST_F(WalkerTest, AgileSwitchAtLeafIsEightRefs)
{
    ctx.mode = VirtMode::Agile;
    mapGuest(0xd000);
    plantSwitch(0xd000, 2); // leaf gPT level handled nested (Fig. 3b)
    WalkResult r = walker.walk(ctx, 0xd000, false);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r.refs, 8u);
    EXPECT_EQ(r.switchDepth, 3u);
}

TEST_F(WalkerTest, AgileSwitchDepthsMatchTable2)
{
    // Table II / Table VI reference counts: 8, 12, 16 for switching
    // entries planted at shadow depths 2, 1, 0.
    ctx.mode = VirtMode::Agile;
    struct Case
    {
        Addr va;
        unsigned plant_depth;
        unsigned refs;
    } cases[] = {
        {0x000100000000, 2, 8},
        {0x008000000000, 1, 12},
        {0x010000000000, 0, 16},
    };
    for (const Case &c : cases) {
        mapGuest(c.va);
        plantSwitch(c.va, c.plant_depth);
        WalkResult r = walker.walk(ctx, c.va, false);
        ASSERT_TRUE(r.ok()) << "va " << std::hex << c.va;
        EXPECT_EQ(r.refs, c.refs);
        EXPECT_EQ(r.switchDepth, c.plant_depth + 1);
    }
}

TEST_F(WalkerTest, AgileRootSwitchTwentyRefs)
{
    ctx.mode = VirtMode::Agile;
    ctx.rootSwitch = true;
    mapGuest(0xe000);
    WalkResult r = walker.walk(ctx, 0xe000, false);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r.refs, 20u);
    EXPECT_EQ(r.switchDepth, 0u);
    EXPECT_FALSE(r.fullNested);
}

TEST_F(WalkerTest, AgileFullNestedTwentyFourRefs)
{
    ctx.mode = VirtMode::Agile;
    ctx.fullNested = true;
    mapGuest(0xf000);
    WalkResult r = walker.walk(ctx, 0xf000, false);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r.refs, 24u);
    EXPECT_TRUE(r.fullNested);
}

TEST_F(WalkerTest, AgileGuestFaultInNestedPortion)
{
    ctx.mode = VirtMode::Agile;
    mapGuest(0x11000);
    plantSwitch(0x11000, 2);
    // Remove the guest leaf after planting the switch: the nested
    // portion of the walk must report a guest fault.
    gpt.unmap(0x11000);
    WalkResult r = walker.walk(ctx, 0x11000, false);
    EXPECT_EQ(r.fault, WalkFault::GuestFault);
    EXPECT_EQ(r.faultDepth, 3u);
}

TEST_F(WalkerTest, CoverageCountersTrackModes)
{
    ctx.mode = VirtMode::Agile;
    FrameId g1 = mapGuest(0x20000);
    shadowLeaf(0x20000, g1);
    mapGuest(0x008000000000);
    plantSwitch(0x008000000000, 1);
    walker.walk(ctx, 0x20000, false);
    walker.walk(ctx, 0x008000000000, false);
    EXPECT_EQ(walker.coverage[0].value(), 1.0); // full shadow
    EXPECT_EQ(walker.coverage[2].value(), 1.0); // switched, 12 refs
}

// ---------------------------------------------------------------------
// Permissions and A/D bits
// ---------------------------------------------------------------------

TEST_F(WalkerTest, WritePermissionIntersection)
{
    ctx.mode = VirtMode::Nested;
    // Guest maps read-only.
    FrameId gframe = vmm.allocGuestDataFrame();
    gpt.map(0x30000, gframe, PageSize::Size4K, false);
    vmm.ensureDataBacked(gframe);
    WalkResult r = walker.walk(ctx, 0x30000, false);
    ASSERT_TRUE(r.ok());
    EXPECT_FALSE(r.writable);
}

TEST_F(WalkerTest, WalkSetsAccessedAndDirty)
{
    ctx.mode = VirtMode::Nested;
    mapGuest(0x40000);
    WalkResult r = walker.walk(ctx, 0x40000, true);
    ASSERT_TRUE(r.ok());
    const Pte *leaf = gpt.entry(0x40000, 3);
    ASSERT_NE(leaf, nullptr);
    EXPECT_TRUE(leaf->accessed);
    EXPECT_TRUE(leaf->dirty);
    // A read does not set dirty elsewhere.
    mapGuest(0x41000);
    walker.walk(ctx, 0x41000, false);
    EXPECT_FALSE(gpt.entry(0x41000, 3)->dirty);
}

TEST_F(WalkerTest, ShadowLeafDirtySetOnWrite)
{
    ctx.mode = VirtMode::Shadow;
    FrameId gframe = mapGuest(0x50000);
    shadowLeaf(0x50000, gframe, true);
    walker.walk(ctx, 0x50000, true);
    auto sm = spt.lookup(0x50000);
    ASSERT_TRUE(sm.has_value());
    EXPECT_TRUE(sm->pte.dirty);
}

// ---------------------------------------------------------------------
// Leaf dirty accounting (shared across all four walk modes)
// ---------------------------------------------------------------------

TEST_F(WalkerTest, DirtyTransitionReportedOnceNested)
{
    ctx.mode = VirtMode::Nested;
    mapGuest(0x70000);
    WalkResult r1 = walker.walk(ctx, 0x70000, true);
    ASSERT_TRUE(r1.ok());
    EXPECT_TRUE(r1.dirtyTransition); // clean -> dirty
    EXPECT_TRUE(r1.dirty);
    WalkResult r2 = walker.walk(ctx, 0x70000, true);
    EXPECT_FALSE(r2.dirtyTransition); // already dirty
    EXPECT_TRUE(r2.dirty);            // TLB fills must still see dirty

    mapGuest(0x71000);
    WalkResult r3 = walker.walk(ctx, 0x71000, false);
    EXPECT_FALSE(r3.dirtyTransition); // reads never transition
    EXPECT_FALSE(r3.dirty);
}

TEST_F(WalkerTest, DirtyTransitionReportedOnceNative)
{
    HostPtSpace nspace(mem, TableOwner::NativePt);
    RadixPageTable npt(nspace, "nPT");
    FrameId data = mem.allocData(0);
    npt.map(0x40001000, data, PageSize::Size4K, true);

    TranslationContext nctx;
    nctx.mode = VirtMode::Native;
    nctx.asid = 1;
    nctx.nativeRoot = npt.root();

    WalkResult r1 = walker.walk(nctx, 0x40001000, true);
    ASSERT_TRUE(r1.ok());
    EXPECT_TRUE(r1.dirtyTransition);
    EXPECT_TRUE(r1.dirty);
    WalkResult r2 = walker.walk(nctx, 0x40001000, true);
    EXPECT_FALSE(r2.dirtyTransition);
    EXPECT_TRUE(r2.dirty);
}

TEST_F(WalkerTest, DirtyTransitionReportedOnceShadow)
{
    ctx.mode = VirtMode::Shadow;
    FrameId gframe = mapGuest(0x72000);
    shadowLeaf(0x72000, gframe, true);
    WalkResult r1 = walker.walk(ctx, 0x72000, true);
    ASSERT_TRUE(r1.ok());
    EXPECT_TRUE(r1.dirtyTransition);
    EXPECT_TRUE(r1.dirty);
    WalkResult r2 = walker.walk(ctx, 0x72000, true);
    EXPECT_FALSE(r2.dirtyTransition);
    EXPECT_TRUE(r2.dirty);
    // A read through the already-dirty shadow leaf keeps reporting
    // dirty without a transition.
    WalkResult r3 = walker.walk(ctx, 0x72000, false);
    EXPECT_FALSE(r3.dirtyTransition);
    EXPECT_TRUE(r3.dirty);
}

TEST_F(WalkerTest, DirtyTransitionReportedOnceAgileNestedPortion)
{
    ctx.mode = VirtMode::Agile;
    mapGuest(0x73000);
    plantSwitch(0x73000, 2); // leaf gPT level handled nested
    WalkResult r1 = walker.walk(ctx, 0x73000, true);
    ASSERT_TRUE(r1.ok());
    EXPECT_TRUE(r1.dirtyTransition);
    EXPECT_TRUE(r1.dirty);
    WalkResult r2 = walker.walk(ctx, 0x73000, true);
    EXPECT_FALSE(r2.dirtyTransition);
    EXPECT_TRUE(r2.dirty);
    // The transition landed on the guest leaf PTE.
    EXPECT_TRUE(gpt.entry(0x73000, 3)->dirty);
}

TEST_F(WalkerTest, StatsAccumulate)
{
    ctx.mode = VirtMode::Nested;
    mapGuest(0x60000);
    walker.walk(ctx, 0x60000, false);
    walker.walk(ctx, 0x60000, false);
    EXPECT_EQ(walker.walks.value(), 2.0);
    EXPECT_EQ(walker.refsTotal.value(), 48.0);
    EXPECT_EQ(walker.refsDist.mean(), 24.0);
}

} // namespace
} // namespace ap
