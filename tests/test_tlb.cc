/**
 * @file
 * Unit tests for the TLB substrate: AssocCache, Tlb, TlbHierarchy,
 * PageWalkCache, NestedTlb, SptrCache.
 */

#include <gtest/gtest.h>

#include "tlb/assoc_cache.hh"
#include "tlb/nested_tlb.hh"
#include "tlb/pwc.hh"
#include "tlb/tlb.hh"
#include "tlb/tlb_hierarchy.hh"
#include "vmm/sptr_cache.hh"

namespace ap
{
namespace
{

TEST(AssocCache, InsertLookup)
{
    AssocCache<int> c(16, 4);
    c.insert(1, 10);
    c.insert(2, 20);
    ASSERT_NE(c.lookup(1), nullptr);
    EXPECT_EQ(*c.lookup(1), 10);
    EXPECT_EQ(*c.lookup(2), 20);
    EXPECT_EQ(c.lookup(3), nullptr);
}

TEST(AssocCache, OverwriteSameKey)
{
    AssocCache<int> c(16, 4);
    c.insert(5, 1);
    c.insert(5, 2);
    EXPECT_EQ(*c.lookup(5), 2);
    EXPECT_EQ(c.size(), 1u);
}

TEST(AssocCache, LruEvictionWithinSet)
{
    // 4 sets x 2 ways; keys 0,4,8 map to set 0.
    AssocCache<int> c(8, 2);
    c.insert(0, 0);
    c.insert(4, 4);
    EXPECT_TRUE(c.lookup(0)); // 0 is now MRU
    bool evicted = c.insert(8, 8);
    EXPECT_TRUE(evicted);
    EXPECT_NE(c.lookup(0), nullptr);  // survived (was MRU)
    EXPECT_EQ(c.lookup(4), nullptr);  // LRU victim
    EXPECT_NE(c.lookup(8), nullptr);
}

TEST(AssocCache, FullyAssociative)
{
    AssocCache<int> c(4, 4);
    for (int i = 0; i < 4; ++i)
        c.insert(i * 100, i);
    EXPECT_EQ(c.size(), 4u);
    c.insert(999, 9); // evicts LRU (key 0)
    EXPECT_EQ(c.lookup(0), nullptr);
    EXPECT_NE(c.lookup(999), nullptr);
}

TEST(AssocCache, EraseAndEraseIf)
{
    AssocCache<int> c(16, 4);
    for (int i = 0; i < 10; ++i)
        c.insert(i, i);
    EXPECT_TRUE(c.erase(3));
    EXPECT_FALSE(c.erase(3));
    c.eraseIf([](std::uint64_t k, const int &) { return k % 2 == 0; });
    EXPECT_EQ(c.lookup(4), nullptr);
    EXPECT_NE(c.lookup(5), nullptr);
}

TEST(AssocCache, PeekDoesNotRefreshLru)
{
    AssocCache<int> c(2, 2);
    c.insert(1, 1);
    c.insert(2, 2);
    c.peek(1);        // does not make 1 MRU
    c.insert(3, 3);   // evicts true LRU = 1
    EXPECT_EQ(c.lookup(1), nullptr);
}

TEST(Tlb, HitMissStats)
{
    stats::StatGroup g("g");
    Tlb tlb("t", &g, 64, 4, PageSize::Size4K);
    EXPECT_FALSE(tlb.lookup(0x1000, 1).has_value());
    tlb.insert(0x1000, 1, TlbEntry{.pfn = 42, .writable = true, .asid = 1});
    auto e = tlb.lookup(0x1fff, 1); // same page
    ASSERT_TRUE(e.has_value());
    EXPECT_EQ(e->pfn, 42u);
    EXPECT_TRUE(e->writable);
    EXPECT_EQ(tlb.hits.value(), 1.0);
    EXPECT_EQ(tlb.misses.value(), 1.0);
}

TEST(Tlb, AsidIsolation)
{
    stats::StatGroup g("g");
    Tlb tlb("t", &g, 64, 4, PageSize::Size4K);
    tlb.insert(0x1000, 1, TlbEntry{.pfn = 42, .writable = true, .asid = 1});
    EXPECT_FALSE(tlb.lookup(0x1000, 2).has_value());
    EXPECT_TRUE(tlb.lookup(0x1000, 1).has_value());
}

TEST(Tlb, FlushAsidOnlyRemovesThatAsid)
{
    stats::StatGroup g("g");
    Tlb tlb("t", &g, 64, 4, PageSize::Size4K);
    tlb.insert(0x1000, 1, TlbEntry{.pfn = 1, .writable = true, .asid = 1});
    tlb.insert(0x1000, 2, TlbEntry{.pfn = 2, .writable = true, .asid = 2});
    tlb.flushAsid(1);
    EXPECT_FALSE(tlb.contains(0x1000, 1));
    EXPECT_TRUE(tlb.contains(0x1000, 2));
}

TEST(Tlb, FlushRange)
{
    stats::StatGroup g("g");
    Tlb tlb("t", &g, 64, 4, PageSize::Size4K);
    tlb.insert(0x1000, 1, TlbEntry{.pfn = 1, .writable = true, .asid = 1});
    tlb.insert(0x5000, 1, TlbEntry{.pfn = 5, .writable = true, .asid = 1});
    tlb.flushRange(0x4000, 0x2000, 1);
    EXPECT_TRUE(tlb.contains(0x1000, 1));
    EXPECT_FALSE(tlb.contains(0x5000, 1));
}

TEST(Tlb, LargePageGranularity)
{
    stats::StatGroup g("g");
    Tlb tlb("t", &g, 32, 4, PageSize::Size2M);
    tlb.insert(kLargePageBytes * 3, 1, TlbEntry{.pfn = 512 * 3, .writable = true, .asid = 1});
    // Any address inside the 2M region hits.
    EXPECT_TRUE(
        tlb.lookup(kLargePageBytes * 3 + 0x123456, 1).has_value());
    EXPECT_FALSE(
        tlb.lookup(kLargePageBytes * 4, 1).has_value());
}

class HierarchyTest : public ::testing::Test
{
  protected:
    HierarchyTest() : h(&g, TlbHierarchyConfig{}) {}
    stats::StatGroup g{"g"};
    TlbHierarchy h;
};

TEST_F(HierarchyTest, MissThenFillThenL1Hit)
{
    auto r = h.probe(0x1000, 1, false);
    EXPECT_EQ(r.level, TlbHitLevel::Miss);
    h.fill(0x1000, 1, false, PageSize::Size4K, TlbEntry{.pfn = 7, .writable = true, .asid = 1});
    r = h.probe(0x1000, 1, false);
    EXPECT_EQ(r.level, TlbHitLevel::L1);
    EXPECT_EQ(r.entry.pfn, 7u);
}

TEST_F(HierarchyTest, L2HitRefillsL1)
{
    h.fill(0x1000, 1, false, PageSize::Size4K, TlbEntry{.pfn = 7, .writable = true, .asid = 1});
    // Evict from the 64-entry 4-way L1 by filling 64+ conflicting pages;
    // the 512-entry L2 retains the line.
    for (Addr va = 0x100000; va < 0x100000 + 70 * kPageBytes;
         va += kPageBytes) {
        h.fill(va, 1, false, PageSize::Size4K, TlbEntry{.pfn = 9, .writable = true, .asid = 1});
    }
    // Depending on set mapping 0x1000 may or may not be evicted from
    // L1; force worst case by conflicting in its set: just check that
    // probing still succeeds somewhere in the hierarchy.
    auto r = h.probe(0x1000, 1, false);
    EXPECT_NE(r.level, TlbHitLevel::Miss);
}

TEST_F(HierarchyTest, InstructionAndDataSeparate)
{
    h.fill(0x2000, 1, true, PageSize::Size4K, TlbEntry{.pfn = 3, .writable = false, .asid = 1});
    // Data probe: the L1D misses but the unified L2 holds it.
    auto r = h.probe(0x2000, 1, false);
    EXPECT_EQ(r.level, TlbHitLevel::L2);
}

TEST_F(HierarchyTest, LargePagesSkipL2)
{
    h.fill(0x0, 1, false, PageSize::Size2M, TlbEntry{.pfn = 1, .writable = true, .asid = 1});
    auto r = h.probe(0x1234, 1, false);
    EXPECT_EQ(r.level, TlbHitLevel::L1);
    EXPECT_EQ(r.size, PageSize::Size2M);
    // Flush L1 2M entries; there is no L2 backing for 2M (Table III).
    h.l1d2m.flushAll();
    r = h.probe(0x1234, 1, false);
    EXPECT_EQ(r.level, TlbHitLevel::Miss);
}

TEST_F(HierarchyTest, FlushPageRemovesEverywhere)
{
    h.fill(0x3000, 1, false, PageSize::Size4K, TlbEntry{.pfn = 3, .writable = true, .asid = 1});
    h.flushPage(0x3000, 1);
    EXPECT_EQ(h.probe(0x3000, 1, false).level, TlbHitLevel::Miss);
}

TEST(Pwc, MissWhenDisabled)
{
    stats::StatGroup g("g");
    PageWalkCache pwc(&g, 32, 4, false);
    pwc.fill(0x1000, 1, 3, 99, false);
    EXPECT_EQ(pwc.probe(0x1000, 1).startDepth, 0u);
}

TEST(Pwc, DeepestSkipWins)
{
    stats::StatGroup g("g");
    PageWalkCache pwc(&g, 32, 4, true);
    Addr va = 0x7f1234567000;
    pwc.fill(va, 1, 1, 11, false);
    pwc.fill(va, 1, 2, 22, false);
    pwc.fill(va, 1, 3, 33, true);
    PwcHit hit = pwc.probe(va, 1);
    EXPECT_EQ(hit.startDepth, 3u);
    EXPECT_EQ(hit.entry.frame, 33u);
    EXPECT_TRUE(hit.entry.nested);
}

TEST(Pwc, PrefixSharing)
{
    stats::StatGroup g("g");
    PageWalkCache pwc(&g, 32, 4, true);
    Addr va1 = 0x40000000;             // depth-1 prefix = 0
    Addr va2 = va1 + 5 * kPageBytes;   // same upper levels
    pwc.fill(va1, 1, 3, 77, false);
    // va2 shares all three upper levels with va1 (same 2M region).
    EXPECT_EQ(pwc.probe(va2, 1).startDepth, 3u);
    // An address in a different 2M region only shares depths 1-2.
    Addr va3 = va1 + kLargePageBytes;
    EXPECT_EQ(pwc.probe(va3, 1).startDepth, 0u);
}

TEST(Pwc, FlushRangeDropsCoveredPrefixes)
{
    stats::StatGroup g("g");
    PageWalkCache pwc(&g, 32, 4, true);
    Addr va = 0x40000000;
    pwc.fill(va, 1, 3, 1, false);
    pwc.flushRange(va, kLargePageBytes, 1);
    EXPECT_EQ(pwc.probe(va, 1).startDepth, 0u);
}

TEST(Pwc, AsidFlush)
{
    stats::StatGroup g("g");
    PageWalkCache pwc(&g, 32, 4, true);
    pwc.fill(0x1000, 1, 2, 5, false);
    pwc.fill(0x1000, 2, 2, 6, false);
    pwc.flushAsid(1);
    EXPECT_EQ(pwc.probe(0x1000, 1).startDepth, 0u);
    EXPECT_EQ(pwc.probe(0x1000, 2).startDepth, 2u);
}

TEST(NestedTlbTest, HitAfterInsert)
{
    stats::StatGroup g("g");
    NestedTlb n(&g, 64, 4, true);
    EXPECT_FALSE(n.lookup(100).has_value());
    n.insert(100, NtlbEntry{200, PageSize::Size2M, true});
    auto e = n.lookup(100);
    ASSERT_TRUE(e.has_value());
    EXPECT_EQ(e->hframe, 200u);
    EXPECT_EQ(e->hostSize, PageSize::Size2M);
    EXPECT_EQ(n.hits.value(), 1.0);
}

TEST(NestedTlbTest, DisabledNeverHits)
{
    stats::StatGroup g("g");
    NestedTlb n(&g, 64, 4, false);
    n.insert(100, NtlbEntry{200, PageSize::Size4K, true});
    EXPECT_FALSE(n.lookup(100).has_value());
}

TEST(NestedTlbTest, FlushFrame)
{
    stats::StatGroup g("g");
    NestedTlb n(&g, 64, 4, true);
    n.insert(100, NtlbEntry{200, PageSize::Size4K, true});
    n.flushFrame(100);
    EXPECT_FALSE(n.lookup(100).has_value());
}

TEST(SptrCacheTest, HitAvoidsTrap)
{
    stats::StatGroup g("g");
    SptrCache c(&g, 8);
    EXPECT_FALSE(c.lookup(10).has_value());
    c.insert(10, SptrEntry{111, 222});
    auto e = c.lookup(10);
    ASSERT_TRUE(e.has_value());
    EXPECT_EQ(e->sptRoot, 111u);
    EXPECT_EQ(e->gptRootBacking, 222u);
    EXPECT_EQ(c.hits.value(), 1.0);
    EXPECT_EQ(c.misses.value(), 1.0);
}

TEST(SptrCacheTest, SmallCapacityEvicts)
{
    stats::StatGroup g("g");
    SptrCache c(&g, 4);
    for (FrameId f = 1; f <= 5; ++f)
        c.insert(f, SptrEntry{f * 10, 0});
    // Oldest (1) evicted by 5th insert in a 4-entry cache.
    EXPECT_FALSE(c.lookup(1).has_value());
    EXPECT_TRUE(c.lookup(5).has_value());
}

TEST(SptrCacheTest, Invalidate)
{
    stats::StatGroup g("g");
    SptrCache c(&g, 8);
    c.insert(10, SptrEntry{1, 2});
    c.invalidate(10);
    EXPECT_FALSE(c.lookup(10).has_value());
}

TEST(SptrCacheTest, ZeroEntriesChargesNoStats)
{
    // Capacity 0 models hardware without the extension: every probe
    // misses, but there is no structure to account hits/misses
    // against, so the stats must stay untouched.
    stats::StatGroup g("g");
    SptrCache c(&g, 0);
    EXPECT_EQ(c.capacity(), 0u);
    EXPECT_FALSE(c.lookup(10).has_value());
    c.insert(10, SptrEntry{1, 2}); // dropped
    EXPECT_FALSE(c.lookup(10).has_value());
    c.invalidate(10); // no-op
    c.clear();        // no-op
    EXPECT_EQ(c.hits.value(), 0.0);
    EXPECT_EQ(c.misses.value(), 0.0);
}

TEST(SptrCacheTest, MissAccountingOnlyOnRealProbes)
{
    stats::StatGroup g("g");
    SptrCache c(&g, 4);
    EXPECT_FALSE(c.lookup(1).has_value());
    EXPECT_FALSE(c.lookup(2).has_value());
    EXPECT_EQ(c.misses.value(), 2.0);
    c.insert(1, SptrEntry{10, 20});
    EXPECT_TRUE(c.lookup(1).has_value());
    EXPECT_EQ(c.hits.value(), 1.0);
    EXPECT_EQ(c.misses.value(), 2.0);
}

} // namespace
} // namespace ap
