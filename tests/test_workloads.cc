/**
 * @file
 * Workload generator tests: a mock host records the event stream and
 * checks determinism, address validity, and each benchmark's
 * characteristic behaviour profile.
 */

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "workloads/access_pattern.hh"
#include "workloads/workload.hh"

namespace ap
{
namespace
{

/** Records workload activity without simulating anything. */
class MockHost : public WorkloadHost
{
  public:
    Addr
    mmap(Addr length, bool writable, bool file_backed,
         std::uint64_t file_id) override
    {
        (void)writable;
        (void)file_id;
        Addr base = next_;
        next_ += (length + kLargePageBytes) & ~(kLargePageBytes - 1);
        mapped_[base] = length;
        ++mmaps;
        fileBacked += file_backed;
        return base;
    }

    bool
    mmapAt(Addr base, Addr length, bool, bool, std::uint64_t) override
    {
        mapped_[base] = length;
        ++mmaps;
        return true;
    }

    void
    munmap(Addr base, Addr length) override
    {
        (void)length;
        mapped_.erase(base);
        ++munmaps;
    }

    void
    access(Addr va, bool write) override
    {
        ++accesses;
        writes += write;
        EXPECT_TRUE(covered(va)) << std::hex << va;
        touchedPages.insert(va / kPageBytes);
        trace.push_back(va);
    }

    void
    instrFetch(Addr va) override
    {
        ++fetches;
        EXPECT_TRUE(covered(va)) << std::hex << va;
    }

    void compute(std::uint64_t n) override { computeCycles += n; }
    void forkTouchExit(std::uint64_t) override { ++forks; }
    void yield() override { ++yields; }
    void reclaimTick(std::uint64_t) override { ++reclaims; }
    void sharePagesScan() override { ++shares; }
    Rng &rng() override { return rng_; }

    bool
    covered(Addr va) const
    {
        auto it = mapped_.upper_bound(va);
        if (it == mapped_.begin())
            return false;
        --it;
        return va < it->first + it->second;
    }

    std::uint64_t accesses = 0, writes = 0, fetches = 0, mmaps = 0,
                  munmaps = 0, forks = 0, yields = 0, reclaims = 0,
                  shares = 0, fileBacked = 0, computeCycles = 0;
    std::set<std::uint64_t> touchedPages;
    std::vector<Addr> trace;

  private:
    Addr next_ = 0x100000000;
    std::map<Addr, Addr> mapped_;
    Rng rng_{7};
};

WorkloadParams
smallParams()
{
    WorkloadParams p;
    p.footprintBytes = 8ull << 20;
    p.operations = 50'000;
    p.seed = 7;
    return p;
}

class WorkloadNameTest : public ::testing::TestWithParam<std::string>
{
};

TEST_P(WorkloadNameTest, RunsToCompletionInsideItsMappings)
{
    auto w = makeWorkload(GetParam(), smallParams());
    ASSERT_NE(w, nullptr);
    EXPECT_EQ(w->name(), GetParam());
    MockHost host;
    w->init(host);
    w->warmup(host);
    std::uint64_t steps = 0;
    while (w->step(host)) {
        ASSERT_LT(++steps, 200'000u);
    }
    EXPECT_GE(steps + 1, 50'000u);
    EXPECT_GT(host.accesses + host.fetches, steps / 2);
}

TEST_P(WorkloadNameTest, DeterministicAcrossRuns)
{
    auto run = [&] {
        auto w = makeWorkload(GetParam(), smallParams());
        MockHost host;
        w->init(host);
        w->warmup(host);
        while (w->step(host)) {
        }
        return host.trace;
    };
    EXPECT_EQ(run(), run());
}

INSTANTIATE_TEST_SUITE_P(AllWorkloads, WorkloadNameTest,
                         ::testing::ValuesIn(workloadNames()),
                         [](const auto &info) { return info.param; });

TEST(WorkloadRegistry, NamesAreComplete)
{
    auto names = workloadNames();
    EXPECT_EQ(names.size(), 8u); // Table V
    for (const auto &n : names)
        EXPECT_NE(makeWorkload(n, smallParams()), nullptr);
    EXPECT_EQ(makeWorkload("nosuch", smallParams()), nullptr);
}

TEST(WorkloadProfile, GccChurnsPageTables)
{
    WorkloadParams p = smallParams();
    p.operations = 250'000; // long enough for several recycle events
    auto w = makeWorkload("gcc", p);
    MockHost host;
    w->init(host);
    w->warmup(host);
    while (w->step(host)) {
    }
    EXPECT_GT(host.munmaps, 0u);
    EXPECT_GT(host.fetches, 0u); // big code footprint
}

TEST(WorkloadProfile, McfDoesNotChurn)
{
    auto w = makeWorkload("mcf", smallParams());
    MockHost host;
    w->init(host);
    w->warmup(host);
    while (w->step(host)) {
    }
    EXPECT_EQ(host.munmaps, 0u);
    EXPECT_EQ(host.forks, 0u);
}

TEST(WorkloadProfile, MemcachedYieldsAndReclaims)
{
    WorkloadParams p = smallParams();
    p.operations = 120'000;
    auto w = makeWorkload("memcached", p);
    MockHost host;
    w->init(host);
    w->warmup(host);
    while (w->step(host)) {
    }
    EXPECT_GT(host.yields, 0u);
    EXPECT_GT(host.reclaims, 0u);
    EXPECT_GT(host.mmaps, 1u); // slab growth
}

TEST(WorkloadProfile, DedupUsesFileBackedChunks)
{
    auto w = makeWorkload("dedup", smallParams());
    MockHost host;
    w->init(host);
    EXPECT_GT(host.fileBacked, 0u);
}

TEST(WorkloadProfile, WarmupTouchesFootprint)
{
    auto w = makeWorkload("mcf", smallParams());
    MockHost host;
    w->init(host);
    w->warmup(host);
    // Every page of the 8 MB arena touched once.
    EXPECT_GE(host.touchedPages.size(), (8ull << 20) / kPageBytes);
}

TEST(AccessPattern, ZipfRegionStaysInRange)
{
    Rng rng(3);
    ZipfRegion z(0x10000, 1 << 20, 0.99, 5);
    for (int i = 0; i < 5000; ++i) {
        Addr a = z.pick(rng);
        EXPECT_GE(a, 0x10000u);
        EXPECT_LT(a, 0x10000u + (1 << 20));
    }
}

TEST(AccessPattern, ZipfRegionIsSkewed)
{
    Rng rng(3);
    ZipfRegion z(0, 16 << 20, 0.99, 5);
    std::map<std::uint64_t, int> counts;
    for (int i = 0; i < 20000; ++i)
        counts[z.pick(rng) / kPageBytes]++;
    int max = 0;
    for (auto &[page, n] : counts)
        max = std::max(max, n);
    // The hottest page draws far more than a uniform share.
    EXPECT_GT(max, 20000 / 4096 * 20);
}

TEST(AccessPattern, PointerChaseMixesLocalAndFar)
{
    Rng rng(3);
    PointerChase pc(0, 64 << 20, 0.7, 1 << 20);
    Addr prev = pc.next(rng);
    int local = 0, total = 4000;
    for (int i = 0; i < total; ++i) {
        Addr cur = pc.next(rng);
        Addr d = cur > prev ? cur - prev : prev - cur;
        local += (d <= (1 << 20));
        prev = cur;
    }
    EXPECT_GT(local, total / 3);
    EXPECT_LT(local, total);
}

TEST(AccessPattern, StreamScanWrapsSequentially)
{
    StreamScan s(0x1000, 0x4000, 0x1000);
    EXPECT_EQ(s.next(), 0x1000u);
    EXPECT_EQ(s.next(), 0x2000u);
    EXPECT_EQ(s.next(), 0x3000u);
    EXPECT_EQ(s.next(), 0x4000u);
    EXPECT_EQ(s.next(), 0x1000u); // wrap
}

} // namespace
} // namespace ap
