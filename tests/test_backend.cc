/**
 * @file
 * Translation-backend tests: the traits table, the backend registry,
 * and the range/segment backend — hit accounting, invalidation on
 * unmap churn, spill pressure under a tiny register file, snapshot
 * round-trips, multi-vCPU runs, and the oracle's stale-segment
 * detection.
 */

#include <gtest/gtest.h>

#include "core/backend_registry.hh"
#include "sim/machine.hh"
#include "sim/oracle.hh"
#include "sim/snapshot.hh"
#include "walker/backend.hh"
#include "workloads/workload.hh"

namespace ap
{
namespace
{

SimConfig
rangeConfig(PageSize ps = PageSize::Size4K)
{
    SimConfig cfg;
    cfg.mode = VirtMode::Range;
    cfg.pageSize = ps;
    cfg.guestOs.pageSize = ps;
    cfg.hostMemFrames = 1 << 16;
    cfg.guestPtFrames = 1 << 13;
    cfg.guestDataFrames = 1 << 15;
    cfg.verifyTranslations = true;
    return cfg;
}

WorkloadParams
smallParams(std::uint64_t ops = 30'000)
{
    WorkloadParams p;
    p.footprintBytes = 8ull << 20;
    p.operations = ops;
    p.seed = 7;
    return p;
}

TEST(BackendTraitsTest, TableMatchesModeStructure)
{
    const BackendTraits &native = backendTraits(VirtMode::Native);
    EXPECT_FALSE(native.usesVmm);
    EXPECT_FALSE(native.usesShadowMgr);

    const BackendTraits &nested = backendTraits(VirtMode::Nested);
    EXPECT_TRUE(nested.usesVmm);
    EXPECT_FALSE(nested.usesShadowMgr);
    EXPECT_FALSE(nested.usesSegments);

    for (VirtMode m :
         {VirtMode::Shadow, VirtMode::Agile, VirtMode::Shsp}) {
        const BackendTraits &t = backendTraits(m);
        EXPECT_TRUE(t.usesVmm) << virtModeName(m);
        EXPECT_TRUE(t.usesShadowMgr) << virtModeName(m);
        EXPECT_FALSE(t.usesSegments) << virtModeName(m);
    }
    EXPECT_TRUE(backendTraits(VirtMode::Agile).usesAgilePolicy);
    EXPECT_FALSE(backendTraits(VirtMode::Shsp).usesAgilePolicy);
    EXPECT_TRUE(backendTraits(VirtMode::Shsp).usesShsp);

    const BackendTraits &range = backendTraits(VirtMode::Range);
    EXPECT_TRUE(range.usesVmm);
    EXPECT_FALSE(range.usesShadowMgr);
    EXPECT_TRUE(range.usesSegments);

    // Each traits row names its own mode.
    for (VirtMode m : {VirtMode::Native, VirtMode::Nested,
                       VirtMode::Shadow, VirtMode::Agile, VirtMode::Shsp,
                       VirtMode::Range}) {
        EXPECT_EQ(backendTraits(m).mode, m) << virtModeName(m);
    }
}

TEST(BackendRegistryTest, BuiltinModesUseStatelessSingletons)
{
    BackendArgs args;
    for (VirtMode m : {VirtMode::Native, VirtMode::Nested,
                       VirtMode::Shadow, VirtMode::Agile,
                       VirtMode::Shsp}) {
        EXPECT_FALSE(BackendRegistry::instance().hasFactory(m))
            << virtModeName(m);
        EXPECT_EQ(makeTranslationBackend(m, args), nullptr)
            << virtModeName(m);
        EXPECT_EQ(builtinBackend(m).mode(), m) << virtModeName(m);
        // Singleton per mode: two lookups are the same object.
        EXPECT_EQ(&builtinBackend(m), &builtinBackend(m));
    }
}

TEST(BackendRegistryTest, RangeFactoryBuildsPerVcpuFiles)
{
    BackendArgs args;
    args.numVcpus = 3;
    args.range.segmentRegs = 4;
    ASSERT_TRUE(BackendRegistry::instance().hasFactory(VirtMode::Range));
    auto backend = makeTranslationBackend(VirtMode::Range, args);
    ASSERT_NE(backend, nullptr);
    EXPECT_EQ(backend->mode(), VirtMode::Range);
    auto *rb = dynamic_cast<RangeBackend *>(backend.get());
    ASSERT_NE(rb, nullptr);
    EXPECT_EQ(rb->numVcpus(), 3u);
    EXPECT_EQ(rb->config().segmentRegs, 4u);
    // The range backend listens to the coherence domain.
    EXPECT_NE(backend->coherenceListener(), nullptr);
}

TEST(ConfigTest, VirtModeNamesRoundTripForAllEnumerators)
{
    // Every name virtModeName() can emit must parse back to the same
    // enumerator — including Native ("Native") and Shsp ("SHSP"),
    // which parseVirtMode matches case-insensitively.
    for (VirtMode m : {VirtMode::Native, VirtMode::Nested,
                       VirtMode::Shadow, VirtMode::Agile, VirtMode::Shsp,
                       VirtMode::Range}) {
        VirtMode parsed = VirtMode::Agile == m ? VirtMode::Native
                                               : VirtMode::Agile;
        ASSERT_TRUE(parseVirtMode(virtModeName(m), parsed))
            << virtModeName(m);
        EXPECT_EQ(parsed, m) << virtModeName(m);
    }
}

TEST(ConfigTest, SegmentOptionsParse)
{
    SimConfig cfg;
    EXPECT_TRUE(cfg.applyOption("mode=range"));
    EXPECT_EQ(cfg.mode, VirtMode::Range);
    EXPECT_TRUE(cfg.applyOption("segment_regs=8"));
    EXPECT_EQ(cfg.range.segmentRegs, 8u);
    EXPECT_TRUE(cfg.applyOption("segment_min_pages=4"));
    EXPECT_EQ(cfg.range.segmentMinPages, 4u);
    EXPECT_TRUE(cfg.applyOption("segment_max_pages=256"));
    EXPECT_EQ(cfg.range.segmentMaxPages, 256u);
    EXPECT_TRUE(cfg.applyOption("segment_fill_cycles=100"));
    EXPECT_EQ(cfg.range.segmentFillCycles, 100u);
    EXPECT_FALSE(cfg.applyOption("segment_regs=0"));
    EXPECT_FALSE(cfg.applyOption("segment_regs=2048"));
    EXPECT_FALSE(cfg.applyOption("segment_min_pages=0"));
}

TEST(RangeBackendTest, SegmentHitsAccumulateOnContiguousWorkload)
{
    Machine m(rangeConfig());
    auto w = makeWorkload("astar", smallParams());
    RunResult r = m.run(*w);
    EXPECT_GT(r.walks, 0u);
    EXPECT_GT(r.segmentHits, 0u);
    // Hits bypass the page tables entirely, so the mean walk cost must
    // sit below a pure nested walk's.
    EXPECT_LT(r.avgWalkRefs, 24.0);
}

TEST(RangeBackendTest, UnmapChurnInvalidatesSegments)
{
    Machine m(rangeConfig());
    // dedup's mmap/munmap churn forces segment drops through the
    // coherence broadcast.
    auto w = makeWorkload("dedup", smallParams(40'000));
    RunResult r = m.run(*w);
    EXPECT_GT(r.segmentHits, 0u);
    EXPECT_GT(r.segmentInvalidations, 0u);
}

TEST(RangeBackendTest, TinyRegisterFileSpills)
{
    SimConfig cfg = rangeConfig();
    cfg.range.segmentRegs = 2;
    Machine m(cfg);
    auto w = makeWorkload("mcf", smallParams());
    RunResult r = m.run(*w);
    EXPECT_GT(r.segmentSpills, 0u);
}

TEST(RangeBackendTest, FourVcpusRunVerified)
{
    SimConfig cfg = rangeConfig();
    cfg.numVcpus = 4;
    Machine m(cfg);
    auto w = makeWorkload("memcached", smallParams(40'000));
    RunResult r = m.run(*w);
    EXPECT_GT(r.walks, 0u);
    EXPECT_GT(r.segmentHits, 0u);
}

TEST(RangeBackendTest, SnapshotRoundTripIsBitIdentical)
{
    SimConfig cfg = rangeConfig();
    cfg.verifyTranslations = false;
    auto w = makeWorkload("astar", smallParams());
    Machine warm(cfg);
    warm.runWarmup(*w);
    SnapshotPtr snap = captureSnapshot(warm);

    Machine restored(cfg);
    ASSERT_TRUE(restoreSnapshot(*snap, restored));
    SnapshotPtr again = captureSnapshot(restored);
    EXPECT_EQ(snap->bytes, again->bytes);
}

TEST(RangeBackendTest, DigestPinsSegmentGeometry)
{
    SimConfig a = rangeConfig();
    SimConfig b = rangeConfig();
    EXPECT_EQ(simConfigDigest(a), simConfigDigest(b));
    b.range.segmentRegs = 32;
    EXPECT_NE(simConfigDigest(a), simConfigDigest(b));
    b = rangeConfig();
    b.range.segmentFillCycles = 1;
    EXPECT_NE(simConfigDigest(a), simConfigDigest(b));
}

TEST(RangeOracleTest, CleanTracePassesAllFourMachines)
{
    OracleOptions opts;
    opts.seed = 5;
    opts.operations = 800;
    opts.sweepInterval = 64;
    OracleReport rep = runDifferential(makeRandomTrace(opts), opts);
    EXPECT_TRUE(rep.passed) << (rep.violations.empty()
                                    ? ""
                                    : rep.violations.front().detail);
}

TEST(RangeOracleTest, PlantedStaleSegmentIsCaught)
{
    OracleOptions opts;
    opts.seed = 5;
    opts.operations = 800;
    opts.sweepInterval = 64;
    opts.injectStaleSegmentAtAccess = 10;
    OracleReport rep = runDifferential(makeRandomTrace(opts), opts);
    ASSERT_FALSE(rep.passed);
    EXPECT_EQ(rep.violations.front().invariant, "stale-segment");
}

TEST(RangeOracleTest, PlantedStaleSegmentIsCaughtMultiVcpu)
{
    OracleOptions opts;
    opts.seed = 9;
    opts.operations = 800;
    opts.sweepInterval = 64;
    opts.numVcpus = 4;
    opts.injectStaleSegmentAtAccess = 10;
    OracleReport rep = runDifferential(makeRandomTrace(opts), opts);
    ASSERT_FALSE(rep.passed);
    EXPECT_EQ(rep.violations.front().invariant, "stale-segment");
}

} // namespace
} // namespace ap
