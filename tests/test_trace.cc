/**
 * @file
 * Trace subsystem tests: recording fidelity, serialization round-trip,
 * and the key methodology property — replaying a captured trace on an
 * identically configured machine reproduces the original measurements
 * exactly.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

#include "sim/machine.hh"
#include "trace/record.hh"
#include "trace/trace.hh"
#include "workloads/workload.hh"

namespace ap
{
namespace
{

SimConfig
testConfig(VirtMode mode)
{
    SimConfig cfg;
    cfg.mode = mode;
    cfg.hostMemFrames = 1 << 16;
    cfg.guestPtFrames = 1 << 13;
    cfg.guestDataFrames = 1 << 15;
    return cfg;
}

WorkloadParams
testParams()
{
    WorkloadParams p;
    p.footprintBytes = 8ull << 20;
    p.operations = 40'000;
    p.seed = 11;
    return p;
}

TEST(Trace, SerializationRoundTrip)
{
    Trace t;
    t.workload = "unit";
    t.seed = 99;
    t.warmupEvents = 1;
    t.events.push_back(
        TraceEvent{TraceEvent::Kind::MmapAt, 0x10000, 0x4000, 7, true,
                   true});
    t.events.push_back(
        TraceEvent{TraceEvent::Kind::Access, 0x10123, 0, 0, true, false});
    t.events.push_back(
        TraceEvent{TraceEvent::Kind::Yield, 0, 0, 0, false, false});

    std::stringstream ss;
    ASSERT_TRUE(writeTrace(t, ss));
    Trace back;
    ASSERT_TRUE(readTrace(ss, back));
    EXPECT_EQ(back.workload, "unit");
    EXPECT_EQ(back.seed, 99u);
    EXPECT_EQ(back.warmupEvents, 1u);
    ASSERT_EQ(back.events.size(), 3u);
    for (std::size_t i = 0; i < 3; ++i)
        EXPECT_EQ(back.events[i], t.events[i]);
}

TEST(Trace, RejectsGarbage)
{
    std::stringstream ss;
    ss << "not a trace at all";
    Trace t;
    EXPECT_FALSE(readTrace(ss, t));
}

TEST(Trace, FileRoundTrip)
{
    Trace t;
    t.workload = "filetest";
    t.events.push_back(
        TraceEvent{TraceEvent::Kind::Access, 0x1000, 0, 0, false, false});
    std::string path = ::testing::TempDir() + "ap_trace_test.bin";
    ASSERT_TRUE(writeTraceFile(t, path));
    Trace back;
    ASSERT_TRUE(readTraceFile(path, back));
    EXPECT_EQ(back.events.size(), 1u);
    std::remove(path.c_str());
}

TEST(Trace, RecorderCapturesResolvedBases)
{
    Machine m(testConfig(VirtMode::Nested));
    m.spawnProcess();
    TraceRecorder rec(m);
    Addr base = rec.mmap(4 * kPageBytes, true, false, 0);
    rec.access(base + 0x1000, true);
    rec.munmap(base, 4 * kPageBytes);
    const Trace &t = rec.trace();
    ASSERT_EQ(t.events.size(), 3u);
    EXPECT_EQ(t.events[0].kind, TraceEvent::Kind::MmapAt);
    EXPECT_EQ(t.events[0].addr, base);
    EXPECT_EQ(t.events[1].addr, base + 0x1000);
    EXPECT_EQ(t.events[2].kind, TraceEvent::Kind::Munmap);
}

TEST(Trace, ReplayReproducesRunExactly)
{
    // Record dedup (churny: exercises mmapAt/munmap/yield paths).
    WorkloadParams params = testParams();
    RecordedRun recorded;
    {
        Machine m(testConfig(VirtMode::Agile));
        auto w = makeWorkload("dedup", params);
        recorded = recordRun(m, *w);
    }
    ASSERT_GT(recorded.trace.events.size(), 0u);

    // Replay on a fresh, identically configured machine.
    Machine m2(testConfig(VirtMode::Agile));
    TraceReplayWorkload replay(recorded.trace);
    RunResult replayed = m2.run(replay);

    EXPECT_EQ(replayed.tlbMisses, recorded.result.tlbMisses);
    EXPECT_EQ(replayed.walks, recorded.result.walks);
    EXPECT_EQ(replayed.walkCycles, recorded.result.walkCycles);
    EXPECT_EQ(replayed.trapCycles, recorded.result.trapCycles);
    EXPECT_EQ(replayed.guestPageFaults,
              recorded.result.guestPageFaults);
}

TEST(Trace, OneTraceManyTechniques)
{
    // The paper's trace-driven idea: capture once, evaluate each
    // technique on the identical event stream.
    WorkloadParams params = testParams();
    RecordedRun recorded;
    {
        Machine m(testConfig(VirtMode::Nested));
        auto w = makeWorkload("mcf", params);
        recorded = recordRun(m, *w);
    }

    std::uint64_t misses[3];
    int i = 0;
    for (VirtMode mode :
         {VirtMode::Nested, VirtMode::Shadow, VirtMode::Agile}) {
        Machine m(testConfig(mode));
        TraceReplayWorkload replay(recorded.trace);
        RunResult r = m.run(replay);
        EXPECT_GT(r.walks, 0u);
        misses[i++] = r.tlbMisses;
    }
    // The address stream is identical, so miss counts are close (they
    // differ only via shadow-side flush effects).
    EXPECT_EQ(misses[0], recorded.result.tlbMisses);
}

} // namespace
} // namespace ap
