/**
 * @file
 * Trace subsystem tests: recording fidelity, serialization round-trip,
 * and the key methodology property — replaying a captured trace on an
 * identically configured machine reproduces the original measurements
 * exactly.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

#include "sim/machine.hh"
#include "trace/compiled_trace.hh"
#include "trace/record.hh"
#include "trace/trace.hh"
#include "trace/trace_stream.hh"
#include "workloads/workload.hh"

namespace ap
{
namespace
{

SimConfig
testConfig(VirtMode mode)
{
    SimConfig cfg;
    cfg.mode = mode;
    cfg.hostMemFrames = 1 << 16;
    cfg.guestPtFrames = 1 << 13;
    cfg.guestDataFrames = 1 << 15;
    return cfg;
}

WorkloadParams
testParams()
{
    WorkloadParams p;
    p.footprintBytes = 8ull << 20;
    p.operations = 40'000;
    p.seed = 11;
    return p;
}

TEST(Trace, SerializationRoundTrip)
{
    Trace t;
    t.workload = "unit";
    t.seed = 99;
    t.warmupEvents = 1;
    t.events.push_back(
        TraceEvent{TraceEvent::Kind::MmapAt, 0x10000, 0x4000, 7, true,
                   true});
    t.events.push_back(
        TraceEvent{TraceEvent::Kind::Access, 0x10123, 0, 0, true, false});
    t.events.push_back(
        TraceEvent{TraceEvent::Kind::Yield, 0, 0, 0, false, false});

    std::stringstream ss;
    ASSERT_TRUE(writeTrace(t, ss));
    Trace back;
    ASSERT_TRUE(readTrace(ss, back));
    EXPECT_EQ(back.workload, "unit");
    EXPECT_EQ(back.seed, 99u);
    EXPECT_EQ(back.warmupEvents, 1u);
    ASSERT_EQ(back.events.size(), 3u);
    for (std::size_t i = 0; i < 3; ++i)
        EXPECT_EQ(back.events[i], t.events[i]);
}

TEST(Trace, RejectsGarbage)
{
    std::stringstream ss;
    ss << "not a trace at all";
    Trace t;
    EXPECT_FALSE(readTrace(ss, t));
}

TEST(Trace, FileRoundTrip)
{
    Trace t;
    t.workload = "filetest";
    t.events.push_back(
        TraceEvent{TraceEvent::Kind::Access, 0x1000, 0, 0, false, false});
    std::string path = ::testing::TempDir() + "ap_trace_test.bin";
    ASSERT_TRUE(writeTraceFile(t, path));
    Trace back;
    ASSERT_TRUE(readTraceFile(path, back));
    EXPECT_EQ(back.events.size(), 1u);
    std::remove(path.c_str());
}

TEST(Trace, RecorderCapturesResolvedBases)
{
    Machine m(testConfig(VirtMode::Nested));
    m.spawnProcess();
    TraceRecorder rec(m);
    Addr base = rec.mmap(4 * kPageBytes, true, false, 0);
    rec.access(base + 0x1000, true);
    rec.munmap(base, 4 * kPageBytes);
    const Trace &t = rec.trace();
    ASSERT_EQ(t.events.size(), 3u);
    EXPECT_EQ(t.events[0].kind, TraceEvent::Kind::MmapAt);
    EXPECT_EQ(t.events[0].addr, base);
    EXPECT_EQ(t.events[1].addr, base + 0x1000);
    EXPECT_EQ(t.events[2].kind, TraceEvent::Kind::Munmap);
}

TEST(Trace, ReplayReproducesRunExactly)
{
    // Record dedup (churny: exercises mmapAt/munmap/yield paths).
    WorkloadParams params = testParams();
    RecordedRun recorded;
    {
        Machine m(testConfig(VirtMode::Agile));
        auto w = makeWorkload("dedup", params);
        recorded = recordRun(m, *w);
    }
    ASSERT_GT(recorded.trace.events.size(), 0u);

    // Replay on a fresh, identically configured machine.
    Machine m2(testConfig(VirtMode::Agile));
    TraceReplayWorkload replay(recorded.trace);
    RunResult replayed = m2.run(replay);

    EXPECT_EQ(replayed.tlbMisses, recorded.result.tlbMisses);
    EXPECT_EQ(replayed.walks, recorded.result.walks);
    EXPECT_EQ(replayed.walkCycles, recorded.result.walkCycles);
    EXPECT_EQ(replayed.trapCycles, recorded.result.trapCycles);
    EXPECT_EQ(replayed.guestPageFaults,
              recorded.result.guestPageFaults);
}

TEST(Trace, V1BackwardCompat)
{
    // Files written by the legacy per-event serializer keep reading.
    Trace t;
    t.workload = "legacy";
    t.seed = 7;
    t.warmupEvents = 2;
    t.events.push_back(
        TraceEvent{TraceEvent::Kind::MmapAt, 0x20000, 0x8000, 3, true,
                   true});
    t.events.push_back(
        TraceEvent{TraceEvent::Kind::Access, 0x20040, 0, 0, true, false});
    t.events.push_back(
        TraceEvent{TraceEvent::Kind::InstrFetch, 0x21000, 0, 0, false,
                   false});
    t.events.push_back(
        TraceEvent{TraceEvent::Kind::Compute, 0, 99, 0, false, false});

    std::stringstream ss;
    ASSERT_TRUE(writeTraceV1(t, ss));
    EXPECT_EQ(ss.str().substr(0, 8), "APTRACE1");
    Trace back;
    ASSERT_TRUE(readTrace(ss, back));
    EXPECT_EQ(back.workload, "legacy");
    EXPECT_EQ(back.seed, 7u);
    EXPECT_EQ(back.warmupEvents, 2u);
    ASSERT_EQ(back.events.size(), t.events.size());
    for (std::size_t i = 0; i < t.events.size(); ++i)
        EXPECT_EQ(back.events[i], t.events[i]);
}

TEST(Trace, WritesV2ByDefault)
{
    Trace t;
    t.workload = "v2";
    t.events.push_back(
        TraceEvent{TraceEvent::Kind::Access, 0x1000, 0, 0, false, false});
    std::stringstream ss;
    ASSERT_TRUE(writeTrace(t, ss));
    EXPECT_EQ(ss.str().substr(0, 8), "APTRACE2");
}

/** A synthetic trace mixing runs, control events, and fetches, with
 *  the warmup boundary landing mid-run. */
Trace
mixedTrace()
{
    Trace t;
    t.workload = "mixed";
    t.seed = 5;
    t.events.push_back(
        TraceEvent{TraceEvent::Kind::MmapAt, 0x40000, 0x40000, 0, true,
                   false});
    for (int i = 0; i < 100; ++i) {
        TraceEvent e;
        if (i % 7 == 3) {
            e.kind = TraceEvent::Kind::InstrFetch;
            e.addr = 0x40000 + i * 64;
        } else {
            e.kind = TraceEvent::Kind::Access;
            e.addr = 0x40000 + i * 8;
            e.flag = (i % 3) == 0;
        }
        t.events.push_back(e);
    }
    t.events.push_back(
        TraceEvent{TraceEvent::Kind::Yield, 0, 0, 0, false, false});
    for (int i = 0; i < 50; ++i) {
        t.events.push_back(TraceEvent{TraceEvent::Kind::Access,
                                      Addr(0x48000 + i * 16), 0, 0,
                                      i % 2 == 0, false});
    }
    t.warmupEvents = 60; // mid-run boundary
    return t;
}

TEST(CompiledTrace, CompileDecompileIsExact)
{
    Trace t = mixedTrace();
    CompiledTrace c = compileTrace(t);
    EXPECT_EQ(c.eventCount, t.events.size());
    EXPECT_EQ(c.warmupEvents, t.warmupEvents);
    // The boundary falls between ops: warmup-op prefix covers exactly
    // warmupEvents events.
    std::uint64_t prefix = 0;
    for (std::uint64_t o = 0; o < c.warmupOps; ++o) {
        prefix += c.ops[o].kind == TraceEvent::Kind::Access
                      ? c.ops[o].n
                      : 1;
    }
    EXPECT_EQ(prefix, c.warmupEvents);

    Trace back = decompileTrace(c);
    EXPECT_EQ(back.workload, t.workload);
    EXPECT_EQ(back.seed, t.seed);
    EXPECT_EQ(back.warmupEvents, t.warmupEvents);
    ASSERT_EQ(back.events.size(), t.events.size());
    for (std::size_t i = 0; i < t.events.size(); ++i)
        EXPECT_EQ(back.events[i], t.events[i]) << "event " << i;
}

TEST(CompiledTrace, SplitsRunsAtCap)
{
    Trace t;
    t.workload = "big";
    const std::uint64_t n = kMaxRunEvents + 17;
    for (std::uint64_t i = 0; i < n; ++i) {
        t.events.push_back(TraceEvent{TraceEvent::Kind::Access,
                                      Addr(0x1000 + i * 8), 0, 0, false,
                                      false});
    }
    CompiledTrace c = compileTrace(t);
    ASSERT_EQ(c.ops.size(), 2u);
    EXPECT_EQ(c.ops[0].n, kMaxRunEvents);
    EXPECT_EQ(c.ops[1].n, 17u);
    Trace back = decompileTrace(c);
    ASSERT_EQ(back.events.size(), n);
    EXPECT_EQ(back.events[n - 1], t.events[n - 1]);
}

TEST(CompiledTrace, V2FileRoundTrip)
{
    Trace t = mixedTrace();
    CompiledTrace c = compileTrace(t);
    std::string path = ::testing::TempDir() + "ap_trace_v2.bin";
    ASSERT_TRUE(writeCompiledTraceFile(c, path));
    CompiledTrace back;
    ASSERT_TRUE(readCompiledTraceFile(path, back));
    EXPECT_EQ(back.workload, c.workload);
    EXPECT_EQ(back.warmupOps, c.warmupOps);
    Trace expanded = decompileTrace(back);
    ASSERT_EQ(expanded.events.size(), t.events.size());
    for (std::size_t i = 0; i < t.events.size(); ++i)
        EXPECT_EQ(expanded.events[i], t.events[i]);
    std::remove(path.c_str());
}

TEST(Trace, StreamingReaderMatchesFullReadBothVersions)
{
    Trace t = mixedTrace();
    for (int version : {1, 2}) {
        std::string path = ::testing::TempDir() + "ap_trace_stream_" +
                           std::to_string(version) + ".bin";
        ASSERT_TRUE(version == 1 ? writeTraceFileV1(t, path)
                                 : writeTraceFile(t, path));
        TraceFileReader reader(path);
        ASSERT_TRUE(reader.ok()) << "version " << version;
        EXPECT_EQ(reader.version(), version);
        EXPECT_EQ(reader.workload(), t.workload);
        EXPECT_EQ(reader.seed(), t.seed);
        EXPECT_EQ(reader.warmupEvents(), t.warmupEvents);
        EXPECT_EQ(reader.eventCount(), t.events.size());

        // Tiny chunks force every refill path.
        std::vector<TraceEvent> all, chunk;
        while (reader.next(chunk, 7))
            all.insert(all.end(), chunk.begin(), chunk.end());
        EXPECT_TRUE(reader.ok());
        ASSERT_EQ(all.size(), t.events.size()) << "version " << version;
        for (std::size_t i = 0; i < t.events.size(); ++i)
            EXPECT_EQ(all[i], t.events[i]) << "event " << i;
        std::remove(path.c_str());
    }
}

TEST(Trace, StreamReplayReproducesRunExactly)
{
    WorkloadParams params = testParams();
    RecordedRun recorded;
    {
        Machine m(testConfig(VirtMode::Agile));
        auto w = makeWorkload("mcf", params);
        recorded = recordRun(m, *w);
    }
    std::string path = ::testing::TempDir() + "ap_trace_replay.bin";
    ASSERT_TRUE(writeTraceFile(recorded.trace, path));

    Machine m2(testConfig(VirtMode::Agile));
    StreamReplayWorkload replay(path);
    ASSERT_TRUE(replay.ok());
    RunResult replayed = m2.run(replay);

    EXPECT_EQ(replayed.tlbMisses, recorded.result.tlbMisses);
    EXPECT_EQ(replayed.walks, recorded.result.walks);
    EXPECT_EQ(replayed.walkCycles, recorded.result.walkCycles);
    EXPECT_EQ(replayed.trapCycles, recorded.result.trapCycles);
    std::remove(path.c_str());
}

TEST(CompiledTrace, BatchReplayMatchesEventReplay)
{
    WorkloadParams params = testParams();
    RecordedRun recorded;
    {
        Machine m(testConfig(VirtMode::Shadow));
        auto w = makeWorkload("gcc", params); // instr-fetch heavy
        recorded = recordRun(m, *w);
    }
    auto compiled = std::make_shared<const CompiledTrace>(
        compileTrace(recorded.trace));

    Machine m_event(testConfig(VirtMode::Shadow));
    TraceReplayWorkload event_replay(recorded.trace);
    RunResult by_event = m_event.run(event_replay);

    Machine m_batch(testConfig(VirtMode::Shadow));
    BatchReplayWorkload batch_replay(compiled, true);
    RunResult by_batch = m_batch.run(batch_replay);

    EXPECT_EQ(by_batch.instructions, by_event.instructions);
    EXPECT_EQ(by_batch.idealCycles, by_event.idealCycles);
    EXPECT_EQ(by_batch.walkCycles, by_event.walkCycles);
    EXPECT_EQ(by_batch.trapCycles, by_event.trapCycles);
    EXPECT_EQ(by_batch.tlbMisses, by_event.tlbMisses);
    EXPECT_EQ(by_batch.walks, by_event.walks);
    EXPECT_EQ(by_batch.traps, by_event.traps);
    EXPECT_EQ(by_batch.guestPageFaults, by_event.guestPageFaults);
}

TEST(Trace, OneTraceManyTechniques)
{
    // The paper's trace-driven idea: capture once, evaluate each
    // technique on the identical event stream.
    WorkloadParams params = testParams();
    RecordedRun recorded;
    {
        Machine m(testConfig(VirtMode::Nested));
        auto w = makeWorkload("mcf", params);
        recorded = recordRun(m, *w);
    }

    std::uint64_t misses[3];
    int i = 0;
    for (VirtMode mode :
         {VirtMode::Nested, VirtMode::Shadow, VirtMode::Agile}) {
        Machine m(testConfig(mode));
        TraceReplayWorkload replay(recorded.trace);
        RunResult r = m.run(replay);
        EXPECT_GT(r.walks, 0u);
        misses[i++] = r.tlbMisses;
    }
    // The address stream is identical, so miss counts are close (they
    // differ only via shadow-side flush effects).
    EXPECT_EQ(misses[0], recorded.result.tlbMisses);
}

} // namespace
} // namespace ap
