/**
 * @file
 * apsimd service tests: wire-protocol codecs, router placement
 * (digest affinity, work stealing, worker removal), and end-to-end
 * batches against a live pre-forked server — including the
 * malformed-frame error path, worker-crash retry, SIGTERM-style
 * drain, and cell-for-cell bit-identity between streamed frames and
 * the in-process engine.
 */

#include <gtest/gtest.h>

#include <csignal>
#include <cstdio>
#include <sstream>
#include <string>
#include <sys/types.h>
#include <thread>
#include <unistd.h>
#include <vector>

#include "service/client.hh"
#include "service/router.hh"
#include "service/server.hh"
#include "service/wire.hh"
#include "sim/machine_pool.hh"
#include "sim/parallel_runner.hh"
#include "sim/report.hh"
#include "sim/snapshot.hh"
#include "trace/trace_cache.hh"

namespace
{

using namespace ap;
using namespace ap::service;

ExperimentSpec
smallSpec(const std::string &wl, VirtMode mode,
          PageSize ps = PageSize::Size4K)
{
    ExperimentSpec spec;
    spec.workload = wl;
    spec.mode = mode;
    spec.pageSize = ps;
    spec.operations = 30'000;
    return spec;
}

TEST(ServiceWire, SpecBatchRoundTrip)
{
    std::vector<ExperimentSpec> specs = {
        smallSpec("gcc", VirtMode::Agile),
        smallSpec("mcf", VirtMode::Nested, PageSize::Size2M),
    };
    specs[1].numVcpus = 4;
    specs[1].tlbCoherence = TlbCoherence::Hardware;
    specs[1].hwOpts = false;

    std::vector<ExperimentSpec> back;
    std::string err;
    ASSERT_TRUE(decodeBatch(encodeBatch(specs), back, err)) << err;
    ASSERT_EQ(back.size(), 2u);
    EXPECT_EQ(back[0].workload, "gcc");
    EXPECT_EQ(back[1].workload, "mcf");
    EXPECT_EQ(back[1].mode, VirtMode::Nested);
    EXPECT_EQ(back[1].pageSize, PageSize::Size2M);
    EXPECT_EQ(back[1].numVcpus, 4u);
    EXPECT_EQ(back[1].tlbCoherence, TlbCoherence::Hardware);
    EXPECT_FALSE(back[1].hwOpts);
    EXPECT_EQ(back[1].operations, 30'000u);
}

TEST(ServiceWire, DecodeRejectsGarbageAndBadSpecs)
{
    std::vector<ExperimentSpec> out;
    std::string err;
    EXPECT_FALSE(decodeBatch({0x01, 0x02, 0x03}, out, err));

    // Unknown workloads are rejected at decode time, not dispatched
    // into a worker where they would be fatal.
    std::vector<ExperimentSpec> bad = {
        smallSpec("no_such_workload", VirtMode::Agile)};
    EXPECT_FALSE(decodeBatch(encodeBatch(bad), out, err));
    EXPECT_NE(err.find("unknown workload"), std::string::npos) << err;

    // Out-of-range enum tags are caught before the cast.
    std::vector<std::uint8_t> payload =
        encodeBatch({smallSpec("gcc", VirtMode::Agile)});
    // The mode byte follows the marker, count and workload string.
    std::size_t mode_off = 4 + 4 + 8 + 3;
    ASSERT_LT(mode_off, payload.size());
    payload[mode_off] = 0x7f;
    EXPECT_FALSE(decodeBatch(payload, out, err));

    EXPECT_FALSE(decodeBatch(encodeBatch({}), out, err));
}

TEST(ServiceWire, RunResultRoundTrip)
{
    RunResult r;
    r.workload = "gcc";
    r.mode = VirtMode::Range;
    r.pageSize = PageSize::Size2M;
    r.instructions = 123456;
    r.idealCycles = 777;
    r.walkCycles = 88;
    r.trapCycles = 9;
    r.tlbMisses = 42;
    r.walks = 41;
    r.traps = 7;
    r.guestPageFaults = 6;
    r.avgWalkRefs = 1.5;
    for (int i = 0; i < 6; ++i)
        r.coverage[i] = 0.1 * i;
    for (std::size_t k = 0; k < kNumTrapKinds; ++k)
        r.trapByKind[k] = 100 + k;
    r.numVcpus = 8;
    r.coherenceCycles = 5;
    r.shootdowns = 4;
    r.remoteInvalidations = 3;
    for (std::size_t k = 0; k < kNumCoherenceCauses; ++k)
        r.shootdownsByCause[k] = 10 + k;
    r.segmentHits = 2;
    r.segmentSpills = 1;
    r.segmentInvalidations = 9;
    r.rawRefsTotal = 3.25;

    Serializer s;
    putRunResult(s, r);
    Deserializer d(s.data());
    RunResult back;
    ASSERT_TRUE(getRunResult(d, back));

    // The decoded result must render the exact same JSON the sender
    // would have produced — that is the bit-identity the service
    // depends on.
    std::ostringstream a, b;
    writeRunResultJson(a, r);
    writeRunResultJson(b, back);
    EXPECT_EQ(a.str(), b.str());
    EXPECT_EQ(back.rawRefsTotal, r.rawRefsTotal);
}

TEST(ServiceWire, FrameJsonEnvelopes)
{
    RunResult r;
    r.workload = "gcc";
    std::string frame = renderRunFrame(3, 7, 1, r);
    EXPECT_NE(frame.find("\"schema\": \"ap-run-frame-v1\""),
              std::string::npos);
    EXPECT_EQ(cellOfFrame(frame), 7);
    EXPECT_EQ(workerOfFrame(frame), 1);
    std::ostringstream expect;
    writeRunResultJson(expect, r);
    EXPECT_EQ(runObjectOfFrame(frame), expect.str());

    std::string err = renderErrorFrame("bad \"thing\"\nhappened", 3, 7);
    EXPECT_NE(err.find("\\\"thing\\\""), std::string::npos);
    EXPECT_NE(err.find("\\u000a"), std::string::npos);
    EXPECT_EQ(err.find('\n'), std::string::npos);
}

TEST(ServiceRouter, AffinityPlacement)
{
    CellRouter router(4);
    // Same digest lands on the same worker regardless of load...
    router.enqueue(0, 0, 100);
    router.enqueue(0, 1, 100);
    router.enqueue(0, 2, 100);
    EXPECT_EQ(router.affinityHits(), 2u);
    // ...and distinct digests spread to the least-loaded workers.
    router.enqueue(0, 3, 200);
    router.enqueue(0, 4, 300);
    router.enqueue(0, 5, 400);
    unsigned with_cells = 0;
    for (unsigned w = 0; w < 4; ++w)
        with_cells += router.pending(w) > 0 ? 1 : 0;
    EXPECT_EQ(with_cells, 4u);
    EXPECT_EQ(router.pending(), 6u);
}

TEST(ServiceRouter, StealsFromBackOfLongestQueue)
{
    CellRouter router(2);
    router.enqueue(0, 0, 100);
    router.enqueue(0, 1, 100);
    router.enqueue(0, 2, 100);
    unsigned owner = router.pending(0) ? 0u : 1u;
    unsigned thief = 1 - owner;

    // The thief takes the *back* cell (index 2), not the front.
    auto stolen = router.next(thief);
    ASSERT_TRUE(stolen.has_value());
    EXPECT_EQ(stolen->cell, 2u);
    EXPECT_EQ(router.steals(), 1u);

    // Digest ownership moved with the steal: the next same-digest cell
    // follows the thief's now-warm state.
    router.enqueue(0, 3, 100);
    EXPECT_EQ(router.pending(thief), 1u);

    auto own1 = router.next(owner);
    auto own2 = router.next(owner);
    ASSERT_TRUE(own1 && own2);
    EXPECT_EQ(own1->cell, 0u);
    EXPECT_EQ(own2->cell, 1u);
}

TEST(ServiceRouter, RemoveWorkerReenqueuesElsewhere)
{
    CellRouter router(2);
    router.enqueue(0, 0, 100);
    router.enqueue(0, 1, 100);
    unsigned owner = router.pending(0) ? 0u : 1u;
    unsigned other = 1 - owner;
    router.removeWorker(owner);
    EXPECT_FALSE(router.alive(owner));
    EXPECT_EQ(router.liveWorkers(), 1u);
    EXPECT_EQ(router.pending(other), 2u);
    router.removeWorker(other);
    EXPECT_EQ(router.liveWorkers(), 0u);
}

TEST(ServiceRouter, AffinityDigestIgnoresMode)
{
    ExperimentSpec agile = smallSpec("gcc", VirtMode::Agile);
    ExperimentSpec nested = smallSpec("gcc", VirtMode::Nested);
    EXPECT_EQ(affinityDigest(agile), affinityDigest(nested));
    ExperimentSpec other = smallSpec("mcf", VirtMode::Agile);
    EXPECT_NE(affinityDigest(agile), affinityDigest(other));
    ExperimentSpec big = smallSpec("gcc", VirtMode::Agile,
                                   PageSize::Size2M);
    EXPECT_NE(affinityDigest(agile), affinityDigest(big));
}

/** A live server on an ephemeral loopback port with its serve loop on
 *  a thread. start() forks the workers before the thread exists. */
class ServiceTest : public ::testing::Test
{
  protected:
    void
    startServer(unsigned workers, unsigned max_retries = 1)
    {
        ServiceOptions opt;
        opt.tcpPort = 0;
        opt.workers = workers;
        opt.maxCellRetries = max_retries;
        server_ = std::make_unique<ServiceServer>(opt);
        std::string err;
        ASSERT_TRUE(server_->start(&err)) << err;
        serve_thread_ = std::thread([this] { server_->serve(); });
        std::string cerr;
        ASSERT_TRUE(client_.connectTcp(server_->port(), &cerr)) << cerr;
    }

    /**
     * Stop the server and join its serve thread, then return the
     * stats. Tests must read stats through this: the serve thread
     * writes them, so reading while it still runs is a data race.
     */
    const ServiceStats &
    finishServer()
    {
        client_.close();
        server_->requestStop();
        if (serve_thread_.joinable())
            serve_thread_.join();
        return server_->stats();
    }

    void
    TearDown() override
    {
        client_.close();
        if (server_)
            server_->requestStop();
        if (serve_thread_.joinable())
            serve_thread_.join();
        server_.reset();
    }

    std::unique_ptr<ServiceServer> server_;
    std::thread serve_thread_;
    ServiceClient client_;
};

TEST_F(ServiceTest, BatchRoundTripStreamsEveryCell)
{
    startServer(2);
    std::vector<ExperimentSpec> specs = {
        smallSpec("gcc", VirtMode::Agile),
        smallSpec("gcc", VirtMode::Nested),
        smallSpec("mcf", VirtMode::Shadow),
    };
    std::vector<bool> seen(specs.size(), false);
    BatchOutcome out = client_.runBatch(
        specs, [&](FrameType type, const std::string &json) {
            if (type != FrameType::RunFrame)
                return;
            std::int64_t cell = cellOfFrame(json);
            ASSERT_GE(cell, 0);
            ASSERT_LT(cell, static_cast<std::int64_t>(specs.size()));
            EXPECT_FALSE(seen[cell]) << "duplicate cell " << cell;
            seen[cell] = true;
            std::int64_t worker = workerOfFrame(json);
            EXPECT_GE(worker, 0);
            EXPECT_LT(worker, 2);
            EXPECT_FALSE(runObjectOfFrame(json).empty());
        });
    EXPECT_TRUE(out.ok) << out.error;
    EXPECT_EQ(out.cells, specs.size());
    EXPECT_EQ(out.errors, 0u);
    for (bool s : seen)
        EXPECT_TRUE(s);
}

TEST_F(ServiceTest, MalformedBatchGetsErrorFrameNotDisconnect)
{
    startServer(1);
    Frame response;
    ASSERT_TRUE(client_.roundTrip(FrameType::BatchRequest,
                                  {0xde, 0xad, 0xbe, 0xef}, response));
    EXPECT_EQ(response.type, FrameType::Error);
    std::string json(response.payload.begin(), response.payload.end());
    EXPECT_NE(json.find("ap-error-v1"), std::string::npos);

    // An invalid-but-well-framed batch is also answered, not dropped.
    std::vector<std::uint8_t> bad =
        encodeBatch({smallSpec("gcc", VirtMode::Agile)});
    bad[4 + 4 + 8 + 3] = 0x7f; // corrupt the mode tag
    ASSERT_TRUE(
        client_.roundTrip(FrameType::BatchRequest, bad, response));
    EXPECT_EQ(response.type, FrameType::Error);

    // The connection survived both: a valid batch still runs.
    BatchOutcome out =
        client_.runBatch({smallSpec("gcc", VirtMode::Agile)});
    EXPECT_TRUE(out.ok) << out.error;
    EXPECT_EQ(out.cells, 1u);
    EXPECT_EQ(finishServer().rejectedBatches, 2u);
}

TEST_F(ServiceTest, StreamedFramesMatchInProcessBitForBit)
{
    startServer(2);
    std::vector<ExperimentSpec> specs;
    for (VirtMode mode : {VirtMode::Native, VirtMode::Nested,
                          VirtMode::Shadow, VirtMode::Agile}) {
        specs.push_back(smallSpec("gcc", mode));
        specs.push_back(smallSpec("mcf", mode, PageSize::Size2M));
    }

    std::vector<std::string> got(specs.size());
    BatchOutcome out = client_.runBatch(
        specs, [&](FrameType type, const std::string &json) {
            if (type != FrameType::RunFrame)
                return;
            got[static_cast<std::size_t>(cellOfFrame(json))] =
                runObjectOfFrame(json);
        });
    ASSERT_TRUE(out.ok) << out.error;
    ASSERT_EQ(out.errors, 0u);

    TraceCache traces;
    SnapshotCache snaps;
    MachinePool pool;
    for (std::size_t i = 0; i < specs.size(); ++i) {
        RunResult r = runExperimentSnapshotted(traces, snaps, specs[i],
                                               true, &pool);
        std::ostringstream expect;
        writeRunResultJson(expect, r);
        EXPECT_EQ(got[i], expect.str()) << "cell " << i;
    }
}

TEST_F(ServiceTest, WorkerCrashRetriesCellOnSibling)
{
    startServer(2);
    std::vector<ExperimentSpec> specs;
    for (int i = 0; i < 4; ++i) {
        specs.push_back(smallSpec("gcc", VirtMode::Agile));
        specs.back().operations = 60'000 + i * 1'000;
        specs.push_back(smallSpec("mcf", VirtMode::Nested));
        specs.back().operations = 60'000 + i * 1'000;
    }
    bool killed = false;
    BatchOutcome out = client_.runBatch(
        specs, [&](FrameType type, const std::string &) {
            if (type == FrameType::RunFrame && !killed) {
                // First result is in: the other worker is mid-cell.
                // Kill it and expect the dispatcher to finish the
                // batch on the survivor.
                killed = true;
                ::kill(server_->workerPids()[1], SIGKILL);
            }
        });
    EXPECT_TRUE(out.ok) << out.error;
    EXPECT_EQ(out.cells, specs.size());
    EXPECT_EQ(out.errors, 0u);
    EXPECT_GE(finishServer().workerCrashes, 1u);
}

TEST_F(ServiceTest, StopRequestDrainsInFlightBatch)
{
    startServer(2);
    std::vector<ExperimentSpec> specs = {
        smallSpec("gcc", VirtMode::Agile),
        smallSpec("gcc", VirtMode::Nested),
        smallSpec("gcc", VirtMode::Shadow),
        smallSpec("mcf", VirtMode::Agile),
    };
    bool stopped = false;
    BatchOutcome out = client_.runBatch(
        specs, [&](FrameType type, const std::string &) {
            if (type == FrameType::RunFrame && !stopped) {
                // SIGTERM would land here via the daemon's handler;
                // requestStop is the signal-safe entry it calls.
                stopped = true;
                server_->requestStop();
            }
        });
    // The stop request must NOT cut the batch short: every cell is
    // answered before the server exits.
    EXPECT_TRUE(out.ok) << out.error;
    EXPECT_EQ(out.cells, specs.size());
    serve_thread_.join();
    EXPECT_EQ(server_->stats().cells, specs.size());
}

TEST_F(ServiceTest, ShutdownFrameStopsServer)
{
    startServer(1);
    BatchOutcome out =
        client_.runBatch({smallSpec("gcc", VirtMode::Agile)});
    ASSERT_TRUE(out.ok) << out.error;
    ASSERT_TRUE(client_.sendShutdown());
    serve_thread_.join();
    EXPECT_EQ(server_->stats().cells, 1u);
}

TEST_F(ServiceTest, DigestAffinityKeepsFamiliesTogether)
{
    startServer(2);
    // Two affinity families (gcc and mcf), four modes each. With
    // affinity routing, each family's cells should overwhelmingly run
    // on one worker.
    std::vector<ExperimentSpec> specs;
    for (VirtMode mode : {VirtMode::Native, VirtMode::Nested,
                          VirtMode::Shadow, VirtMode::Agile}) {
        specs.push_back(smallSpec("gcc", mode));
        specs.push_back(smallSpec("mcf", mode));
    }
    BatchOutcome out = client_.runBatch(specs);
    ASSERT_TRUE(out.ok) << out.error;
    ASSERT_EQ(out.errors, 0u);
    // 8 cells, 2 families: at least 6 placements were affinity hits
    // (the first cell of each family establishes ownership).
    EXPECT_GE(finishServer().affinityHits, 6u);
}

SnapshotCache::CaptureFn
fakeImage(std::size_t bytes)
{
    return [bytes] {
        auto snap = std::make_shared<MachineSnapshot>();
        snap->bytes.assign(bytes, 0xab);
        return snap;
    };
}

SnapshotKey
keyNamed(const std::string &name)
{
    SnapshotKey key;
    key.workload = name;
    return key;
}

TEST(SnapshotPoolLru, EvictsLeastRecentlyObtainedFirst)
{
    SnapshotCache cache;
    cache.setByteBudget(250);
    cache.obtain(keyNamed("a"), fakeImage(100));
    cache.obtain(keyNamed("b"), fakeImage(100));
    EXPECT_EQ(cache.evictions(), 0u);
    EXPECT_EQ(cache.residentBytes(), 200u);

    // The third image busts the budget; "a" is the LRU victim.
    cache.obtain(keyNamed("c"), fakeImage(100));
    EXPECT_EQ(cache.evictions(), 1u);
    EXPECT_EQ(cache.residentBytes(), 200u);

    // An evicted key re-captures; a resident one is a hit.
    EXPECT_EQ(cache.captures(), 3u);
    cache.obtain(keyNamed("a"), fakeImage(100));
    EXPECT_EQ(cache.captures(), 4u);
    std::uint64_t forks = cache.forks();
    cache.obtain(keyNamed("c"), fakeImage(100));
    EXPECT_EQ(cache.forks(), forks + 1);
    EXPECT_EQ(cache.captures(), 4u);
}

TEST(SnapshotPoolLru, HitRefreshesRecency)
{
    SnapshotCache cache;
    cache.setByteBudget(250);
    cache.obtain(keyNamed("a"), fakeImage(100));
    cache.obtain(keyNamed("b"), fakeImage(100));
    // Touch "a": it becomes MRU, so the next eviction takes "b".
    cache.obtain(keyNamed("a"), fakeImage(100));
    cache.obtain(keyNamed("c"), fakeImage(100));
    EXPECT_EQ(cache.evictions(), 1u);
    std::uint64_t captures = cache.captures();
    cache.obtain(keyNamed("a"), fakeImage(100));
    EXPECT_EQ(cache.captures(), captures) << "hot key was evicted";
    cache.obtain(keyNamed("b"), fakeImage(100));
    EXPECT_EQ(cache.captures(), captures + 1);
}

TEST(SnapshotPoolLru, MruSurvivesEvenOverBudget)
{
    SnapshotCache cache;
    cache.setByteBudget(50);
    // One image over budget still resides — its own requesters must
    // be able to fork it.
    cache.obtain(keyNamed("a"), fakeImage(100));
    EXPECT_EQ(cache.evictions(), 0u);
    EXPECT_EQ(cache.residentBytes(), 100u);
    // The next insert displaces it, but never the new MRU itself.
    cache.obtain(keyNamed("b"), fakeImage(100));
    EXPECT_EQ(cache.evictions(), 1u);
    EXPECT_EQ(cache.residentBytes(), 100u);
}

TEST(SnapshotPoolLru, ShrinkingBudgetEvictsImmediately)
{
    SnapshotCache cache;
    cache.obtain(keyNamed("a"), fakeImage(100));
    cache.obtain(keyNamed("b"), fakeImage(100));
    cache.obtain(keyNamed("c"), fakeImage(100));
    EXPECT_EQ(cache.residentBytes(), 300u);
    cache.setByteBudget(150);
    EXPECT_EQ(cache.evictions(), 2u);
    EXPECT_EQ(cache.residentBytes(), 100u);
}

TEST(MachinePoolTest, ForkPathReusesMachinesBitIdentically)
{
    ExperimentSpec spec = smallSpec("gcc", VirtMode::Agile);

    // Pool-less reference: fresh machine per fork.
    TraceCache ref_traces;
    SnapshotCache ref_snaps;
    RunResult ref =
        runExperimentSnapshotted(ref_traces, ref_snaps, spec, true);

    TraceCache traces;
    SnapshotCache snaps;
    MachinePool pool;
    // Run 1 records the trace, run 2 captures the snapshot on the
    // warm machine; runs 3+ take the fork path, which is where the
    // pool engages. The second fork restores into the machine the
    // first one parked instead of constructing a new one.
    std::ostringstream expect;
    writeRunResultJson(expect, ref);
    for (int run = 1; run <= 4; ++run) {
        RunResult r =
            runExperimentSnapshotted(traces, snaps, spec, true, &pool);
        std::ostringstream got;
        writeRunResultJson(got, r);
        EXPECT_EQ(got.str(), expect.str()) << "run " << run;
    }
    EXPECT_EQ(pool.creates(), 1u);
    EXPECT_EQ(pool.reuses(), 1u);
    EXPECT_EQ(pool.idle(), 1u);
}

TEST(MachinePoolTest, ParallelRunnersShareOnePool)
{
    // The worker-thread shape TSan needs to see: several runner
    // threads leasing machines from one pool while the snapshot cache
    // evicts under a byte budget.
    TraceCache traces;
    SnapshotCache snaps;
    snaps.setByteBudget(64ull << 20);
    MachinePool pool;
    std::vector<ExperimentSpec> specs;
    for (int rep = 0; rep < 3; ++rep)
        for (VirtMode mode : {VirtMode::Agile, VirtMode::Nested})
            specs.push_back(smallSpec("gcc", mode));

    std::vector<RunResult> results = runExperiments(
        specs, 2, snapshotCellFn(traces, snaps, true, &pool));
    ASSERT_EQ(results.size(), specs.size());
    // Repeats of one spec are bit-identical regardless of which
    // thread and which pooled machine ran them.
    for (std::size_t i = 2; i < specs.size(); ++i) {
        std::ostringstream first, later;
        writeRunResultJson(first, results[i % 2]);
        writeRunResultJson(later, results[i]);
        EXPECT_EQ(first.str(), later.str()) << "cell " << i;
    }
}

TEST(MachinePoolTest, DistinctConfigsDoNotShareMachines)
{
    TraceCache traces;
    SnapshotCache snaps;
    MachinePool pool;
    // Different modes have different config digests: each constructs
    // its own machine even with the pool warm. Three runs per spec
    // push both onto the fork path (run 3 is the first forked one).
    RunResult agile, nested;
    for (int run = 0; run < 3; ++run) {
        agile = runExperimentSnapshotted(
            traces, snaps, smallSpec("gcc", VirtMode::Agile), true,
            &pool);
        nested = runExperimentSnapshotted(
            traces, snaps, smallSpec("gcc", VirtMode::Nested), true,
            &pool);
    }
    EXPECT_EQ(pool.creates(), 2u);
    EXPECT_EQ(pool.idle(), 2u);
    EXPECT_NE(agile.walkCycles + agile.trapCycles,
              nested.walkCycles + nested.trapCycles);
}

} // namespace
