/**
 * @file
 * Vectorized batch-replay tests: the SIMD L0-filter sweep, the
 * deferred refill accounting behind it, and the run-level fast path
 * must be invisible in the results. Covers simd-vs-scalar bit
 * identity for every Table V workload across page sizes and modes
 * (range included), batched-vs-per-event equivalence with multiple
 * vCPUs (where batches are split at quantum boundaries), and a
 * synthetic single-page trace that provably takes the run-level
 * constant-translation fast path.
 */

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "sim/experiment.hh"
#include "sim/machine.hh"
#include "trace/compiled_trace.hh"
#include "trace/trace.hh"
#include "trace/trace_cache.hh"
#include "workloads/workload.hh"

namespace
{

using namespace ap;

void
expectSameResult(const RunResult &a, const RunResult &b)
{
    EXPECT_EQ(a.workload, b.workload);
    EXPECT_EQ(a.mode, b.mode);
    EXPECT_EQ(a.pageSize, b.pageSize);
    EXPECT_EQ(a.instructions, b.instructions);
    EXPECT_EQ(a.idealCycles, b.idealCycles);
    EXPECT_EQ(a.walkCycles, b.walkCycles);
    EXPECT_EQ(a.trapCycles, b.trapCycles);
    EXPECT_EQ(a.tlbMisses, b.tlbMisses);
    EXPECT_EQ(a.walks, b.walks);
    EXPECT_EQ(a.traps, b.traps);
    EXPECT_EQ(a.guestPageFaults, b.guestPageFaults);
    EXPECT_DOUBLE_EQ(a.avgWalkRefs, b.avgWalkRefs);
    for (int c = 0; c < 6; ++c)
        EXPECT_DOUBLE_EQ(a.coverage[c], b.coverage[c]);
    for (std::size_t k = 0; k < kNumTrapKinds; ++k)
        EXPECT_EQ(a.trapByKind[k], b.trapByKind[k]);
}

WorkloadParams
smallParams()
{
    WorkloadParams p;
    p.footprintBytes = 8ull << 20;
    p.operations = 20'000;
    p.seed = 11;
    return p;
}

/**
 * The vectorized filter contract, per workload: for each page size
 * and mode, a batched replay with the SIMD filter enabled produces
 * the identical RunResult to a batched replay with it disabled (the
 * preserved scalar loop). The first cell per cache records per-event,
 * so the chain also pins both replay flavors to the fresh run.
 */
class SimdFilterEquivalence : public ::testing::TestWithParam<std::string>
{
};

TEST_P(SimdFilterEquivalence, SimdReplayMatchesScalarReplay)
{
    const std::string wl = GetParam();
    const WorkloadParams params = smallParams();
    for (PageSize ps : {PageSize::Size4K, PageSize::Size2M}) {
        TraceCache cache;
        for (VirtMode mode : {VirtMode::Nested, VirtMode::Shadow,
                              VirtMode::Agile, VirtMode::Range}) {
            SCOPED_TRACE(wl + " " +
                         (ps == PageSize::Size4K ? "4K" : "2M") +
                         " mode " + std::to_string(int(mode)));
            SimConfig simd_cfg = configFor(mode, ps, params);
            simd_cfg.simdFilter = true;
            SimConfig scalar_cfg = simd_cfg;
            scalar_cfg.simdFilter = false;

            RunResult simd =
                runCellCached(cache, wl, params, simd_cfg, true);
            RunResult scalar =
                runCellCached(cache, wl, params, scalar_cfg, true);
            expectSameResult(simd, scalar);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(AllWorkloads, SimdFilterEquivalence,
                         ::testing::ValuesIn(workloadNames()),
                         [](const auto &info) { return info.param; });

/**
 * Multi-vCPU batched replay: with numVcpus > 1 the batch loop splits
 * runs at vcpu-quantum boundaries instead of bailing to per-event
 * replay. A fresh generated run, the batched replay, and the
 * per-event replay must stay field-for-field identical at 2 and 4
 * vCPUs.
 */
TEST(BatchVector, MultiVcpuBatchedMatchesPerEvent)
{
    const WorkloadParams params = smallParams();
    for (const char *wl : {"graph500", "memcached"}) {
        for (unsigned vcpus : {2u, 4u}) {
            for (VirtMode mode : {VirtMode::Nested, VirtMode::Agile}) {
                SCOPED_TRACE(std::string(wl) + " vcpus " +
                             std::to_string(vcpus) + " mode " +
                             std::to_string(int(mode)));
                SimConfig cfg =
                    configFor(mode, PageSize::Size4K, params);
                cfg.numVcpus = vcpus;

                RunResult fresh;
                {
                    Machine m(cfg);
                    auto w = makeWorkload(wl, params);
                    ASSERT_NE(w, nullptr);
                    fresh = m.run(*w);
                }
                TraceCache cache;
                RunResult batched =
                    runCellCached(cache, wl, params, cfg, true);
                RunResult unbatched =
                    runCellCached(cache, wl, params, cfg, false);
                expectSameResult(fresh, batched);
                expectSameResult(fresh, unbatched);
            }
        }
    }
}

namespace
{

/**
 * A synthetic trace whose second access run stays inside one 4K page
 * per stream: one mapping, a priming run (fills the per-stream L0
 * slots), a zero-cost compute event to split runs, then a run that
 * re-touches the same data page and the same fetch page only.
 */
Trace
singlePageTrace()
{
    constexpr Addr kBase = 0x100000;
    Trace t;
    t.workload = "unit_single_page";
    t.seed = 1;
    t.warmupEvents = 0;

    TraceEvent mmap;
    mmap.kind = TraceEvent::Kind::MmapAt;
    mmap.addr = kBase;
    mmap.arg = 1u << 16;
    mmap.flag = true;
    t.events.push_back(mmap);

    auto pushAccess = [&t](Addr va, bool fetch) {
        TraceEvent e;
        e.kind = fetch ? TraceEvent::Kind::InstrFetch
                       : TraceEvent::Kind::Access;
        e.addr = va;
        e.flag = false;
        t.events.push_back(e);
    };
    // Priming run: interleaved fetch + data in two distinct pages.
    for (int i = 0; i < 128; ++i) {
        pushAccess(kBase + 0x1000 + (i % 64) * 8, true);
        pushAccess(kBase + (i % 64) * 8, false);
    }
    // Zero-instruction compute: splits the run without charging
    // cycles or advancing the flush generation.
    TraceEvent split;
    split.kind = TraceEvent::Kind::Compute;
    split.arg = 0;
    t.events.push_back(split);
    // Fast-path run: same two pages, read-only.
    for (int i = 0; i < 256; ++i) {
        pushAccess(kBase + 0x1000 + (i % 64) * 8, true);
        pushAccess(kBase + (i % 64) * 8, false);
    }
    return t;
}

} // namespace

/**
 * The run-level fast path must actually fire on a run that provably
 * re-hits both per-stream L0 translations — and firing must not
 * change the results versus the per-event replay of the same trace.
 */
TEST(BatchVector, RunFastPathFiresOnSinglePageRun)
{
    auto compiled = std::make_shared<const CompiledTrace>(
        compileTrace(singlePageTrace()));
    ASSERT_GE(compiled->runHints.size(), 2u);

    SimConfig cfg =
        configFor(VirtMode::Nested, PageSize::Size4K, smallParams());
    cfg.simdFilter = true;

    Machine::resetBatchFilterStats();
    RunResult batched;
    {
        Machine m(cfg);
        BatchReplayWorkload w(compiled, true);
        batched = m.run(w);
    }
    Machine::BatchFilterStats stats = Machine::batchFilterStats();
    EXPECT_GE(stats.runFastpaths, 1u);
    EXPECT_GE(stats.runFastpathLanes, 512u);

    RunResult per_event;
    {
        Machine m(cfg);
        BatchReplayWorkload w(compiled, false);
        per_event = m.run(w);
    }
    expectSameResult(batched, per_event);

    // With the SIMD filter off the fast path is gated off entirely;
    // results still match.
    Machine::resetBatchFilterStats();
    SimConfig scalar_cfg = cfg;
    scalar_cfg.simdFilter = false;
    RunResult scalar;
    {
        Machine m(scalar_cfg);
        BatchReplayWorkload w(compiled, true);
        scalar = m.run(w);
    }
    EXPECT_EQ(Machine::batchFilterStats().runFastpaths, 0u);
    expectSameResult(batched, scalar);
}

} // namespace
