/**
 * @file
 * Differential-oracle tests: deterministic trace generation, clean
 * lock-step runs across all three virtualized modes, detection of an
 * injected shadow-coherence bug, trace shrinking, and the machine-level
 * dirty-bit semantics the oracle's invariant (d) depends on.
 */

#include <gtest/gtest.h>

#include "sim/invariants.hh"
#include "sim/machine.hh"
#include "sim/oracle.hh"

namespace ap
{
namespace
{

OracleOptions
smallOptions(PageSize ps = PageSize::Size4K)
{
    OracleOptions opts;
    opts.pageSize = ps;
    opts.seed = 3;
    opts.operations = 500;
    return opts;
}

TEST(Oracle, TraceGenerationIsDeterministic)
{
    OracleOptions opts = smallOptions();
    Trace a = makeRandomTrace(opts);
    Trace b = makeRandomTrace(opts);
    ASSERT_EQ(a.events.size(), b.events.size());
    for (std::size_t i = 0; i < a.events.size(); ++i)
        EXPECT_TRUE(a.events[i] == b.events[i]) << "event " << i;

    opts.seed = 4;
    Trace c = makeRandomTrace(opts);
    bool same = a.events.size() == c.events.size();
    if (same) {
        for (std::size_t i = 0; i < a.events.size(); ++i)
            same = same && a.events[i] == c.events[i];
    }
    EXPECT_FALSE(same) << "seeds 3 and 4 produced identical traces";
}

class OraclePageSizeTest : public ::testing::TestWithParam<PageSize>
{
};

TEST_P(OraclePageSizeTest, CleanRunHasNoViolations)
{
    for (std::uint64_t seed = 1; seed <= 3; ++seed) {
        OracleOptions opts = smallOptions(GetParam());
        opts.seed = seed;
        Trace t = makeRandomTrace(opts);
        OracleReport rep = runDifferential(t, opts);
        EXPECT_TRUE(rep.passed)
            << "seed " << seed << ": "
            << (rep.violations.empty() ? "?"
                                       : rep.violations.front().detail);
        EXPECT_EQ(rep.eventsReplayed, t.events.size());
        EXPECT_GT(rep.accessesChecked, 0u);
    }
}

TEST_P(OraclePageSizeTest, ReclaimTraceRunsClean)
{
    // Reclaim makes host-frame churn mode-dependent, so the oracle
    // drops the cross-machine comparison but keeps every per-machine
    // invariant.
    OracleOptions opts = smallOptions(GetParam());
    opts.includeReclaim = true;
    Trace t = makeRandomTrace(opts);
    OracleReport rep = runDifferential(t, opts);
    EXPECT_TRUE(rep.passed)
        << (rep.violations.empty() ? "?"
                                   : rep.violations.front().detail);
}

INSTANTIATE_TEST_SUITE_P(BothPageSizes, OraclePageSizeTest,
                         ::testing::Values(PageSize::Size4K,
                                           PageSize::Size2M));

TEST(Oracle, InjectedBugIsCaughtAndShrinks)
{
    OracleOptions opts = smallOptions();
    opts.operations = 800;
    opts.injectAtAccess = 50;
    Trace t = makeRandomTrace(opts);
    OracleReport rep = runDifferential(t, opts);
    ASSERT_FALSE(rep.passed) << "injected corruption went undetected";
    ASSERT_FALSE(rep.violations.empty());
    EXPECT_EQ(rep.violations.front().invariant, "shadow-coherence");

    Trace minimal = shrinkTrace(t, opts);
    EXPECT_LT(minimal.events.size(), t.events.size());
    OracleReport again = runDifferential(minimal, opts);
    EXPECT_FALSE(again.passed) << "shrunk trace no longer fails";
}

TEST(Oracle, ShrinkOfPassingTraceIsIdentity)
{
    OracleOptions opts = smallOptions();
    opts.operations = 100;
    Trace t = makeRandomTrace(opts);
    ASSERT_TRUE(runDifferential(t, opts).passed);
    Trace shrunk = shrinkTrace(t, opts);
    EXPECT_EQ(shrunk.events.size(), t.events.size());
}

// ---------------------------------------------------------------------
// Dirty-bit semantics invariant (d) leans on
// ---------------------------------------------------------------------

SimConfig
dirtyTestConfig(VirtMode mode)
{
    SimConfig cfg;
    cfg.mode = mode;
    cfg.hostMemFrames = 1 << 14;
    cfg.guestPtFrames = 1 << 10;
    cfg.guestDataFrames = 1 << 12;
    return cfg;
}

TEST(MachineDirtyBits, StoreThroughCachedCleanEntrySetsGuestDirty)
{
    // x86 semantics: a read first caches a clean translation; the
    // following store must still land the guest leaf's D bit (the
    // hardware re-walks on a store through a clean cached entry).
    Machine m(dirtyTestConfig(VirtMode::Nested));
    m.spawnProcess();
    Addr base = m.mmap(4 * kPageBytes, true, false, 0);
    ASSERT_NE(base, 0u);
    m.access(base, false); // walk + fill (clean)
    auto clean =
        m.guestOs().process(m.currentProcess()).pt->lookup(base);
    ASSERT_TRUE(clean.has_value());
    EXPECT_FALSE(clean->pte.dirty);

    m.access(base, true); // TLB hit on a clean entry
    auto dirty =
        m.guestOs().process(m.currentProcess()).pt->lookup(base);
    ASSERT_TRUE(dirty.has_value());
    EXPECT_TRUE(dirty->pte.dirty);
}

TEST(MachineDirtyBits, WriteFirstAccessSetsGuestDirty)
{
    Machine m(dirtyTestConfig(VirtMode::Shadow));
    m.spawnProcess();
    Addr base = m.mmap(4 * kPageBytes, true, false, 0);
    ASSERT_NE(base, 0u);
    m.access(base + kPageBytes, true);
    auto gm = m.guestOs()
                  .process(m.currentProcess())
                  .pt->lookup(base + kPageBytes);
    ASSERT_TRUE(gm.has_value());
    EXPECT_TRUE(gm->pte.dirty);
}

} // namespace
} // namespace ap
