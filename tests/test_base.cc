/**
 * @file
 * Unit tests for base utilities: address math, RNG, samplers, stats.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <memory>
#include <sstream>

#include "base/bitfield.hh"
#include "base/debug.hh"
#include "base/logging.hh"
#include "base/rng.hh"
#include "base/stats.hh"
#include "base/types.hh"

namespace ap
{
namespace
{

TEST(Bitfield, BitsExtractsInclusiveRange)
{
    EXPECT_EQ(bits(0xff00, 15, 8), 0xffu);
    EXPECT_EQ(bits(0xff00, 7, 0), 0x00u);
    EXPECT_EQ(bits(~std::uint64_t{0}, 63, 0), ~std::uint64_t{0});
    EXPECT_EQ(bits(0b1010, 3, 1), 0b101u);
}

TEST(Bitfield, PtIndexMatchesX86Layout)
{
    // VA bit layout: [47:39]=root(L4) [38:30]=L3 [29:21]=L2 [20:12]=L1.
    Addr va = (Addr{1} << 39) * 3 + (Addr{1} << 30) * 5 +
              (Addr{1} << 21) * 7 + (Addr{1} << 12) * 11 + 0x123;
    EXPECT_EQ(ptIndex(va, 0), 3u);
    EXPECT_EQ(ptIndex(va, 1), 5u);
    EXPECT_EQ(ptIndex(va, 2), 7u);
    EXPECT_EQ(ptIndex(va, 3), 11u);
}

TEST(Bitfield, PtIndexIsNineBitsWide)
{
    Addr va = ~Addr{0};
    for (unsigned d = 0; d < kPtLevels; ++d)
        EXPECT_EQ(ptIndex(va, d), kPtEntries - 1);
}

TEST(Bitfield, SpanAtDepth)
{
    EXPECT_EQ(spanAtDepth(3), kPageBytes);
    EXPECT_EQ(spanAtDepth(2), kLargePageBytes);
    EXPECT_EQ(spanAtDepth(1), kHugePageBytes);
    EXPECT_EQ(spanAtDepth(0), kHugePageBytes * kPtEntries);
}

TEST(Bitfield, RegionBaseTruncates)
{
    Addr va = 0x0000'7f12'3456'7abc;
    EXPECT_EQ(regionBase(va, 3), pageBase(va));
    EXPECT_EQ(regionBase(va, 2) % kLargePageBytes, 0u);
    EXPECT_EQ(regionBase(va, 0) % (kHugePageBytes * kPtEntries), 0u);
    EXPECT_LE(regionBase(va, 0), va);
}

TEST(Bitfield, FrameConversionRoundTrips)
{
    Addr a = 0xdeadb000;
    EXPECT_EQ(frameAddr(frameOf(a)), a);
    EXPECT_EQ(pageOffset(0xdeadbeef), 0xeefu);
}

TEST(Types, LeafDepthPerPageSize)
{
    EXPECT_EQ(leafDepth(PageSize::Size4K), 3u);
    EXPECT_EQ(leafDepth(PageSize::Size2M), 2u);
    EXPECT_EQ(leafDepth(PageSize::Size1G), 1u);
}

TEST(Types, PageBytes)
{
    EXPECT_EQ(pageBytes(PageSize::Size4K), 4096u);
    EXPECT_EQ(pageBytes(PageSize::Size2M), 2u * 1024 * 1024);
    EXPECT_EQ(pageBytes(PageSize::Size1G), 1024u * 1024 * 1024);
}

TEST(Types, PaperLevelNames)
{
    EXPECT_EQ(paperLevelName(0), "L4");
    EXPECT_EQ(paperLevelName(3), "L1");
}

TEST(Rng, Deterministic)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += (a.next() == b.next());
    EXPECT_LT(same, 4);
}

TEST(Rng, NextBelowInRange)
{
    Rng rng(7);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(rng.nextBelow(13), 13u);
}

TEST(Rng, NextRangeInclusive)
{
    Rng rng(7);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 5000; ++i) {
        auto v = rng.nextRange(3, 6);
        EXPECT_GE(v, 3u);
        EXPECT_LE(v, 6u);
        saw_lo |= (v == 3);
        saw_hi |= (v == 6);
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, DoubleInUnitInterval)
{
    Rng rng(9);
    for (int i = 0; i < 1000; ++i) {
        double d = rng.nextDouble();
        EXPECT_GE(d, 0.0);
        EXPECT_LT(d, 1.0);
    }
}

TEST(Rng, ChanceExtremes)
{
    Rng rng(1);
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
}

TEST(Rng, ChanceApproximatesProbability)
{
    Rng rng(11);
    int hits = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        hits += rng.chance(0.3);
    EXPECT_NEAR(hits / double(n), 0.3, 0.02);
}

TEST(Zipf, SamplesInRange)
{
    Rng rng(3);
    ZipfSampler z(1000, 0.99);
    for (int i = 0; i < 10000; ++i)
        EXPECT_LT(z.sample(rng), 1000u);
}

TEST(Zipf, SingleItem)
{
    Rng rng(3);
    ZipfSampler z(1, 0.99);
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(z.sample(rng), 0u);
}

TEST(Zipf, SkewFavorsLowRanks)
{
    Rng rng(5);
    ZipfSampler z(10000, 0.99);
    std::uint64_t low = 0, total = 50000;
    for (std::uint64_t i = 0; i < total; ++i)
        low += (z.sample(rng) < 100);
    // With theta=0.99 the first 1% of items should draw far more than
    // 1% of the probability mass.
    EXPECT_GT(low, total / 4);
}

TEST(Zipf, NearUniformWhenThetaSmall)
{
    Rng rng(5);
    ZipfSampler z(100, 0.05);
    std::map<std::uint64_t, int> counts;
    for (int i = 0; i < 50000; ++i)
        counts[z.sample(rng)]++;
    // Rank 0 should not dominate.
    EXPECT_LT(counts[0], 50000 / 20);
}

TEST(WeightedPicker, RespectsWeights)
{
    Rng rng(17);
    WeightedPicker p({1.0, 0.0, 3.0});
    int counts[3] = {0, 0, 0};
    for (int i = 0; i < 40000; ++i)
        counts[p.pick(rng)]++;
    EXPECT_EQ(counts[1], 0);
    EXPECT_NEAR(counts[2] / double(counts[0]), 3.0, 0.3);
}

TEST(Stats, ScalarAccumulates)
{
    stats::StatGroup g("g");
    stats::Scalar s(&g, "s", "a counter");
    ++s;
    s += 4;
    EXPECT_DOUBLE_EQ(s.value(), 5.0);
    s.reset();
    EXPECT_DOUBLE_EQ(s.value(), 0.0);
}

TEST(Stats, DistributionMoments)
{
    stats::StatGroup g("g");
    stats::Distribution d(&g, "d", "walk refs", 0, 30, 1);
    d.sample(4);
    d.sample(24);
    d.sample(4);
    EXPECT_EQ(d.count(), 3u);
    EXPECT_NEAR(d.mean(), 32.0 / 3, 1e-9);
    EXPECT_EQ(d.minSeen(), 4u);
    EXPECT_EQ(d.maxSeen(), 24u);
    EXPECT_EQ(d.buckets()[4], 2u);
    EXPECT_EQ(d.buckets()[24], 1u);
}

TEST(Stats, DistributionOverflowUnderflow)
{
    stats::StatGroup g("g");
    stats::Distribution d(&g, "d", "x", 10, 20, 5);
    d.sample(5);
    d.sample(25);
    d.sample(15);
    EXPECT_EQ(d.underflow(), 1u);
    EXPECT_EQ(d.overflow(), 1u);
    EXPECT_EQ(d.count(), 3u);
}

TEST(Stats, FormulaEvaluatesLazily)
{
    stats::StatGroup g("g");
    stats::Scalar a(&g, "a", "");
    stats::Scalar b(&g, "b", "");
    stats::Formula f(&g, "ratio", "a per b", [&] {
        return b.value() ? a.value() / b.value() : 0.0;
    });
    EXPECT_DOUBLE_EQ(f.value(), 0.0);
    a += 6;
    b += 3;
    EXPECT_DOUBLE_EQ(f.value(), 2.0);
}

TEST(Stats, GroupDumpContainsHierarchy)
{
    stats::StatGroup root("machine");
    stats::StatGroup child("tlb", &root);
    stats::Scalar hits(&child, "hits", "TLB hits");
    hits += 7;
    std::ostringstream os;
    root.dump(os);
    EXPECT_NE(os.str().find("machine.tlb.hits"), std::string::npos);
    EXPECT_NE(os.str().find("7"), std::string::npos);
}

TEST(Stats, ResetRecurses)
{
    stats::StatGroup root("r");
    stats::StatGroup child("c", &root);
    stats::Scalar s(&child, "s", "");
    s += 3;
    root.resetStats();
    EXPECT_DOUBLE_EQ(s.value(), 0.0);
}

TEST(Stats, FindStat)
{
    stats::StatGroup g("g");
    stats::Scalar s(&g, "present", "");
    EXPECT_NE(g.findStat("present"), nullptr);
    EXPECT_EQ(g.findStat("absent"), nullptr);
}

TEST(Stats, DestroyedStatDeregisters)
{
    // Regression: ~StatBase used to leave its pointer in the group's
    // registry, so dumping after a stat died dereferenced freed memory.
    stats::StatGroup g("g");
    stats::Scalar keep(&g, "keep", "survives");
    keep += 2;
    {
        stats::Scalar doomed(&g, "doomed", "dies first");
        doomed += 9;
        EXPECT_NE(g.findStat("doomed"), nullptr);
    }
    EXPECT_EQ(g.findStat("doomed"), nullptr);
    EXPECT_NE(g.findStat("keep"), nullptr);

    std::ostringstream os;
    g.dump(os);
    EXPECT_EQ(os.str().find("doomed"), std::string::npos);
    EXPECT_NE(os.str().find("keep"), std::string::npos);

    g.resetStats();
    EXPECT_DOUBLE_EQ(keep.value(), 0.0);

    std::ostringstream js;
    g.dumpJson(js);
    EXPECT_EQ(js.str().find("doomed"), std::string::npos);
}

TEST(Stats, GroupDestroyedBeforeStat)
{
    // The reverse order: the group dies first, the stat's destructor
    // must not chase the dead group's registry.
    auto g = std::make_unique<stats::StatGroup>("g");
    stats::Scalar s(g.get(), "s", "");
    s += 1;
    g.reset();
    EXPECT_DOUBLE_EQ(s.value(), 1.0);
    // ~s runs after this with no group to deregister from.
}

TEST(Stats, DistributionBoundaryBuckets)
{
    stats::StatGroup g("g");
    stats::Distribution d(&g, "d", "x", 10, 29, 10);
    d.sample(10); // first bucket's low edge
    d.sample(19); // first bucket's high edge
    d.sample(20); // second bucket's low edge
    d.sample(29); // max itself stays in range
    d.sample(9);  // one below min -> underflow
    d.sample(30); // one above max -> overflow
    EXPECT_EQ(d.underflow(), 1u);
    EXPECT_EQ(d.overflow(), 1u);
    EXPECT_EQ(d.count(), 6u);
    EXPECT_EQ(d.minSeen(), 9u);
    EXPECT_EQ(d.maxSeen(), 30u);
}

TEST(Stats, DistributionWeightedSamples)
{
    stats::StatGroup g("g");
    stats::Distribution d(&g, "d", "x", 0, 100, 10);
    d.sample(10, 3);
    d.sample(40, 1);
    EXPECT_EQ(d.count(), 4u);
    EXPECT_DOUBLE_EQ(d.sum(), 70.0);
    EXPECT_DOUBLE_EQ(d.mean(), 17.5);
}

TEST(Stats, DistributionResetRestoresExtremes)
{
    stats::StatGroup g("g");
    stats::Distribution d(&g, "d", "x", 0, 100, 10);
    d.sample(5);
    d.sample(95);
    EXPECT_EQ(d.minSeen(), 5u);
    EXPECT_EQ(d.maxSeen(), 95u);
    d.reset();
    EXPECT_EQ(d.count(), 0u);
    EXPECT_DOUBLE_EQ(d.mean(), 0.0);
    // min/max trackers must rearm, not stay pinned at the old values.
    d.sample(50);
    EXPECT_EQ(d.minSeen(), 50u);
    EXPECT_EQ(d.maxSeen(), 50u);
}

TEST(Stats, DistributionSaveRestoreRoundTrip)
{
    stats::StatGroup g("g");
    stats::Distribution d(&g, "d", "x", 0, 100, 10);
    d.sample(5);
    d.sample(42, 3);
    d.sample(120); // overflow

    Serializer s;
    d.saveValues(s);

    stats::StatGroup g2("g");
    stats::Distribution d2(&g2, "d", "x", 0, 100, 10);
    Deserializer in(s.data());
    d2.restoreValues(in);
    ASSERT_TRUE(in.ok());
    EXPECT_EQ(d2.count(), d.count());
    EXPECT_DOUBLE_EQ(d2.sum(), d.sum());
    EXPECT_EQ(d2.minSeen(), 5u);
    EXPECT_EQ(d2.maxSeen(), 120u);
    EXPECT_EQ(d2.overflow(), 1u);
    EXPECT_EQ(d2.buckets(), d.buckets());
}

TEST(Stats, DistributionResetAfterRestoreRearmsExtremes)
{
    // The measurement-boundary contract for restored machines: a
    // reset after restoring serialized values must rearm the min/max
    // trackers exactly as a cold run's reset does, not leave them
    // pinned at the restored extremes.
    stats::StatGroup g("g");
    stats::Distribution d(&g, "d", "x", 0, 100, 10);
    d.sample(5);
    d.sample(95);
    Serializer s;
    d.saveValues(s);

    stats::StatGroup g2("g");
    stats::Distribution d2(&g2, "d", "x", 0, 100, 10);
    Deserializer in(s.data());
    d2.restoreValues(in);
    ASSERT_TRUE(in.ok());

    d2.reset();
    EXPECT_EQ(d2.count(), 0u);
    d2.sample(50);
    EXPECT_EQ(d2.minSeen(), 50u);
    EXPECT_EQ(d2.maxSeen(), 50u);
}

TEST(Stats, TreeSaveRestoreRoundTrip)
{
    stats::StatGroup root("machine");
    stats::StatGroup child("tlb", &root);
    stats::Scalar hits(&child, "hits", "");
    stats::Distribution refs(&root, "refs", "", 0, 30, 1);
    stats::Formula ratio(&root, "ratio", "", [&] { return 2.0; });
    hits += 7;
    refs.sample(4, 2);

    Serializer s;
    root.saveStatsTree(s);

    stats::StatGroup root2("machine");
    stats::StatGroup child2("tlb", &root2);
    stats::Scalar hits2(&child2, "hits", "");
    stats::Distribution refs2(&root2, "refs", "", 0, 30, 1);
    stats::Formula ratio2(&root2, "ratio", "", [&] { return 2.0; });

    Deserializer in(s.data());
    root2.restoreStatsTree(in);
    ASSERT_TRUE(in.ok());
    EXPECT_EQ(in.remaining(), 0u);
    EXPECT_DOUBLE_EQ(hits2.value(), 7.0);
    EXPECT_EQ(refs2.count(), 2u);

    // Restored trees re-serialize byte-identically.
    Serializer s2;
    root2.saveStatsTree(s2);
    EXPECT_EQ(s.data(), s2.data());
}

TEST(Stats, TreeRestoreRejectsMismatchedShape)
{
    stats::StatGroup root("machine");
    stats::Scalar a(&root, "a", "");
    a += 1;
    Serializer s;
    root.saveStatsTree(s);

    // Different stat name under the same group name.
    stats::StatGroup other("machine");
    stats::Scalar b(&other, "b", "");
    Deserializer in(s.data());
    other.restoreStatsTree(in);
    EXPECT_FALSE(in.ok());

    // Different group name.
    stats::StatGroup renamed("engine");
    stats::Scalar a2(&renamed, "a", "");
    Deserializer in2(s.data());
    renamed.restoreStatsTree(in2);
    EXPECT_FALSE(in2.ok());

    // Truncated stream.
    stats::StatGroup again("machine");
    stats::Scalar a3(&again, "a", "");
    Deserializer in3(s.data().data(), s.size() / 2);
    again.restoreStatsTree(in3);
    EXPECT_FALSE(in3.ok());
}

TEST(Stats, FormulaNullFunction)
{
    stats::StatGroup g("g");
    stats::Formula f(&g, "f", "no fn", nullptr);
    EXPECT_DOUBLE_EQ(f.value(), 0.0);
    std::ostringstream os;
    g.dump(os); // printing a null-fn formula must not crash
    std::ostringstream js;
    g.dumpJson(js);
}

TEST(Stats, DumpJsonShape)
{
    stats::StatGroup root("machine");
    stats::StatGroup child("tlb", &root);
    stats::Scalar hits(&child, "hits", "TLB \"hits\"");
    hits += 7;
    stats::Distribution d(&root, "refs", "walk refs", 0, 30, 1);
    d.sample(4, 2);
    std::ostringstream os;
    root.dumpJson(os);
    const std::string j = os.str();
    EXPECT_NE(j.find("\"schema\": \"ap-stats-v1\""), std::string::npos);
    EXPECT_NE(j.find("\"name\": \"machine\""), std::string::npos);
    EXPECT_NE(j.find("\"tlb\""), std::string::npos);
    EXPECT_NE(j.find("\"hits\""), std::string::npos);
    // The quote inside the description must be escaped.
    EXPECT_NE(j.find("TLB \\\"hits\\\""), std::string::npos);
    EXPECT_NE(j.find("\"type\": \"distribution\""), std::string::npos);
}

TEST(Debug, FlagsDefaultOff)
{
    EXPECT_FALSE(debug::enabled(debug::Flag::Walker));
}

TEST(Debug, SetAndClearFlag)
{
    debug::setFlag(debug::Flag::Tlb, true);
    EXPECT_TRUE(debug::enabled(debug::Flag::Tlb));
    debug::setFlag(debug::Flag::Tlb, false);
    EXPECT_FALSE(debug::enabled(debug::Flag::Tlb));
}

TEST(Debug, ParseFlagList)
{
    EXPECT_TRUE(debug::setFlagsFromString("walker,policy"));
    EXPECT_TRUE(debug::enabled(debug::Flag::Walker));
    EXPECT_TRUE(debug::enabled(debug::Flag::Policy));
    EXPECT_FALSE(debug::enabled(debug::Flag::Vmm));
    debug::setFlag(debug::Flag::Walker, false);
    debug::setFlag(debug::Flag::Policy, false);
}

TEST(Debug, ParseAllAndUnknown)
{
    EXPECT_FALSE(debug::setFlagsFromString("walker,bogus"));
    EXPECT_TRUE(debug::enabled(debug::Flag::Walker));
    EXPECT_TRUE(debug::setFlagsFromString("all"));
    for (std::size_t i = 0; i < debug::kNumFlags; ++i) {
        auto f = static_cast<debug::Flag>(i);
        EXPECT_TRUE(debug::enabled(f)) << debug::flagName(f);
        debug::setFlag(f, false);
    }
}

TEST(Debug, FlagNamesRoundTrip)
{
    for (std::size_t i = 0; i < debug::kNumFlags; ++i) {
        auto f = static_cast<debug::Flag>(i);
        EXPECT_TRUE(debug::setFlagsFromString(debug::flagName(f)));
        EXPECT_TRUE(debug::enabled(f));
        debug::setFlag(f, false);
    }
}

TEST(Logging, PanicThrows)
{
    EXPECT_THROW(ap_panic("boom ", 42), std::logic_error);
}

TEST(Logging, AssertPassesOnTrue)
{
    EXPECT_NO_THROW(ap_assert(1 + 1 == 2, "math"));
    EXPECT_THROW(ap_assert(false, "nope"), std::logic_error);
}

} // namespace
} // namespace ap
