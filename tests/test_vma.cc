/**
 * @file
 * AddressSpace / VMA unit tests.
 */

#include <gtest/gtest.h>

#include "guestos/vma.hh"

namespace ap
{
namespace
{

Vma
mk(Addr base, Addr len, bool writable = true)
{
    Vma v;
    v.base = base;
    v.length = len;
    v.writable = writable;
    return v;
}

TEST(AddressSpace, AddAndFind)
{
    AddressSpace as;
    ASSERT_TRUE(as.add(mk(0x10000, 0x3000)));
    EXPECT_NE(as.find(0x10000), nullptr);
    EXPECT_NE(as.find(0x12fff), nullptr);
    EXPECT_EQ(as.find(0x13000), nullptr);
    EXPECT_EQ(as.find(0xffff), nullptr);
}

TEST(AddressSpace, RejectsOverlap)
{
    AddressSpace as;
    ASSERT_TRUE(as.add(mk(0x10000, 0x3000)));
    EXPECT_FALSE(as.add(mk(0x11000, 0x1000)));
    EXPECT_FALSE(as.add(mk(0xf000, 0x2000)));
    EXPECT_TRUE(as.add(mk(0x13000, 0x1000))); // adjacent is fine
    EXPECT_TRUE(as.add(mk(0xe000, 0x2000)));
}

TEST(AddressSpace, AddAnywhereRespectsAlignment)
{
    AddressSpace as;
    Addr a = as.addAnywhere(0x5000, kLargePageBytes, true, VmaKind::Anon);
    ASSERT_NE(a, 0u);
    EXPECT_EQ(a % kLargePageBytes, 0u);
    Addr b = as.addAnywhere(0x1000, kPageBytes, true, VmaKind::Anon);
    ASSERT_NE(b, 0u);
    EXPECT_EQ(as.find(b)->length, 0x1000u);
}

TEST(AddressSpace, AddAnywhereDoesNotOverlap)
{
    AddressSpace as;
    for (int i = 0; i < 50; ++i) {
        Addr a =
            as.addAnywhere(0x3000, kPageBytes, true, VmaKind::Anon);
        ASSERT_NE(a, 0u);
    }
    EXPECT_EQ(as.count(), 50u);
    EXPECT_EQ(as.mappedBytes(), 50u * 0x3000);
}

TEST(AddressSpace, RemoveWhole)
{
    AddressSpace as;
    as.add(mk(0x10000, 0x3000));
    EXPECT_TRUE(as.remove(0x10000, 0x3000));
    EXPECT_EQ(as.find(0x11000), nullptr);
    EXPECT_FALSE(as.remove(0x10000, 0x3000));
}

TEST(AddressSpace, RemoveSplitsMiddle)
{
    AddressSpace as;
    as.add(mk(0x10000, 0x5000));
    EXPECT_TRUE(as.remove(0x11000, 0x1000));
    EXPECT_NE(as.find(0x10000), nullptr);
    EXPECT_EQ(as.find(0x11000), nullptr);
    EXPECT_NE(as.find(0x12000), nullptr);
    EXPECT_EQ(as.count(), 2u);
    EXPECT_EQ(as.mappedBytes(), 0x4000u);
}

TEST(AddressSpace, RemoveSpansMultipleVmas)
{
    AddressSpace as;
    as.add(mk(0x10000, 0x2000));
    as.add(mk(0x12000, 0x2000));
    as.add(mk(0x14000, 0x2000));
    EXPECT_TRUE(as.remove(0x11000, 0x4000));
    EXPECT_NE(as.find(0x10000), nullptr); // left stub
    EXPECT_EQ(as.find(0x12000), nullptr);
    EXPECT_NE(as.find(0x15000), nullptr); // right stub
}

TEST(AddressSpace, FileVmaKeepsIdentity)
{
    AddressSpace as;
    Vma v = mk(0x20000, 0x4000, false);
    v.kind = VmaKind::File;
    v.fileId = 99;
    as.add(v);
    const Vma *f = as.find(0x21000);
    ASSERT_NE(f, nullptr);
    EXPECT_EQ(f->kind, VmaKind::File);
    EXPECT_EQ(f->fileId, 99u);
    EXPECT_FALSE(f->writable);
}

TEST(AddressSpace, ForEachInAddressOrder)
{
    AddressSpace as;
    as.add(mk(0x30000, 0x1000));
    as.add(mk(0x10000, 0x1000));
    as.add(mk(0x20000, 0x1000));
    Addr last = 0;
    as.forEach([&](const Vma &v) {
        EXPECT_GT(v.base, last);
        last = v.base;
    });
    EXPECT_EQ(last, 0x30000u);
}

} // namespace
} // namespace ap
