/**
 * @file
 * Multi-vCPU translation coherence tests: the CoherenceDomain cost
 * model, per-ASID flush generations, munmap shootdown extents, fork
 * COW isolation across vCPUs, counter consistency, snapshot roundtrip
 * and the multi-vCPU oracle (including the stale-TLB self-test).
 */

#include <gtest/gtest.h>

#include <sstream>

#include "sim/invariants.hh"
#include "sim/machine.hh"
#include "sim/oracle.hh"
#include "sim/report.hh"
#include "sim/snapshot.hh"
#include "tlb/coherence.hh"
#include "workloads/workload.hh"

namespace ap
{
namespace
{

SimConfig
vcpuConfig(VirtMode mode, unsigned vcpus,
           TlbCoherence coh = TlbCoherence::Software,
           PageSize ps = PageSize::Size4K)
{
    SimConfig cfg;
    cfg.mode = mode;
    cfg.pageSize = ps;
    cfg.guestOs.pageSize = ps;
    cfg.hostMemFrames = 1 << 16;
    cfg.guestPtFrames = 1 << 13;
    cfg.guestDataFrames = 1 << 15;
    cfg.verifyTranslations = true;
    cfg.policyIntervalOps = 5'000;
    cfg.numVcpus = vcpus;
    cfg.tlbCoherence = coh;
    return cfg;
}

WorkloadParams
smallParams(std::uint64_t ops = 30'000)
{
    WorkloadParams p;
    p.footprintBytes = 8ull << 20;
    p.operations = ops;
    p.seed = 7;
    return p;
}

/** Count TLB entries of @p asid inside [base, base+len) on any vCPU. */
std::uint64_t
entriesInRange(Machine &m, ProcId asid, Addr base, Addr len)
{
    std::uint64_t found = 0;
    for (unsigned v = 0; v < m.numVcpus(); ++v) {
        m.tlbOf(v).forEachEntry(
            [&](Addr va, ProcId a, const TlbEntry &, PageSize) {
                if (a == asid && va >= base && va < base + len)
                    ++found;
            });
    }
    return found;
}

// ---------------------------------------------------------------------
// CoherenceDomain cost model
// ---------------------------------------------------------------------

TEST(CoherenceDomain, SingleVcpuChargesNothing)
{
    stats::StatGroup root("t");
    CoherenceDomain coh(&root, TlbCoherence::Software, 1600, 40);
    TlbHierarchy tlb(&root, TlbHierarchyConfig{});
    PageWalkCache pwc(&root, 32, 4, true);
    coh.addVcpu(&tlb, &pwc);

    coh.flushPage(0x1000, 1, CoherenceCause::Munmap);
    coh.flushAll(CoherenceCause::HostRemap);
    EXPECT_EQ(coh.shootdownCount(), 0u);
    EXPECT_EQ(coh.remoteInvalidationCount(), 0u);
    EXPECT_EQ(coh.cycles(), 0u);
}

TEST(CoherenceDomain, BroadcastReachesEveryVcpuAndCharges)
{
    stats::StatGroup root("t");
    CoherenceDomain coh(&root, TlbCoherence::Software, 1600, 40);
    TlbHierarchy t0(&root, TlbHierarchyConfig{});
    TlbHierarchy t1(&root, TlbHierarchyConfig{});
    TlbHierarchy t2(&root, TlbHierarchyConfig{});
    PageWalkCache p0(&root, 32, 4, true);
    PageWalkCache p1(&root, 32, 4, true);
    PageWalkCache p2(&root, 32, 4, true);
    coh.addVcpu(&t0, &p0);
    coh.addVcpu(&t1, &p1);
    coh.addVcpu(&t2, &p2);

    TlbEntry e{.pfn = 7, .writable = true, .asid = 1};
    t0.l1d4k.insert(0x1000, 1, e);
    t1.l1d4k.insert(0x1000, 1, e);
    t2.l1d4k.insert(0x1000, 1, e);

    coh.flushPage(0x1000, 1, CoherenceCause::Cow);
    EXPECT_FALSE(t0.l1d4k.contains(0x1000, 1));
    EXPECT_FALSE(t1.l1d4k.contains(0x1000, 1));
    EXPECT_FALSE(t2.l1d4k.contains(0x1000, 1));
    EXPECT_EQ(coh.shootdownCount(), 1u);
    EXPECT_EQ(coh.remoteInvalidationCount(), 2u);
    EXPECT_EQ(coh.cycles(), 2u * 1600u);
    EXPECT_EQ(coh.shootdownsByCause(CoherenceCause::Cow), 1u);
    EXPECT_EQ(coh.shootdownsByCause(CoherenceCause::Munmap), 0u);
}

TEST(CoherenceDomain, HardwareKindIsCheaperPerShootdown)
{
    stats::StatGroup root("t");
    CoherenceDomain sw(&root, TlbCoherence::Software, 1600, 40);
    CoherenceDomain hw(&root, TlbCoherence::Hardware, 1600, 40);
    TlbHierarchy ts0(&root, TlbHierarchyConfig{});
    TlbHierarchy ts1(&root, TlbHierarchyConfig{});
    TlbHierarchy th0(&root, TlbHierarchyConfig{});
    TlbHierarchy th1(&root, TlbHierarchyConfig{});
    sw.addVcpu(&ts0, nullptr);
    sw.addVcpu(&ts1, nullptr);
    hw.addVcpu(&th0, nullptr);
    hw.addVcpu(&th1, nullptr);

    sw.flushAsid(1, CoherenceCause::Exit);
    hw.flushAsid(1, CoherenceCause::Exit);
    EXPECT_EQ(sw.cycles(), 1600u);
    EXPECT_EQ(hw.cycles(), 40u);
}

TEST(CoherenceDomain, UnchargedAsidFlushInvalidatesSilently)
{
    stats::StatGroup root("t");
    CoherenceDomain coh(&root, TlbCoherence::Software, 1600, 40);
    TlbHierarchy t0(&root, TlbHierarchyConfig{});
    TlbHierarchy t1(&root, TlbHierarchyConfig{});
    coh.addVcpu(&t0, nullptr);
    coh.addVcpu(&t1, nullptr);
    t1.l1d4k.insert(0x2000, 3, TlbEntry{.pfn = 9, .asid = 3});

    coh.flushAsidUncharged(3);
    EXPECT_FALSE(t1.l1d4k.contains(0x2000, 3));
    EXPECT_EQ(coh.shootdownCount(), 0u);
    EXPECT_EQ(coh.cycles(), 0u);
}

// ---------------------------------------------------------------------
// Per-ASID flush generations (L0 filter invalidation)
// ---------------------------------------------------------------------

TEST(TlbHierarchyGenerations, ScopedFlushOnlyBumpsThatAsid)
{
    stats::StatGroup root("t");
    TlbHierarchy tlb(&root, TlbHierarchyConfig{});
    std::uint64_t g1 = tlb.flushGeneration(1);
    std::uint64_t g2 = tlb.flushGeneration(2);

    tlb.flushPage(0x1000, 1);
    EXPECT_GT(tlb.flushGeneration(1), g1);
    EXPECT_EQ(tlb.flushGeneration(2), g2);

    g1 = tlb.flushGeneration(1);
    tlb.flushRange(0x0, 0x10000, 2);
    EXPECT_EQ(tlb.flushGeneration(1), g1);
    EXPECT_GT(tlb.flushGeneration(2), g2);

    g2 = tlb.flushGeneration(2);
    tlb.flushAsid(2);
    EXPECT_GT(tlb.flushGeneration(2), g2);
    EXPECT_EQ(tlb.flushGeneration(1), g1);
}

TEST(TlbHierarchyGenerations, FlushAllBumpsEveryAsid)
{
    stats::StatGroup root("t");
    TlbHierarchy tlb(&root, TlbHierarchyConfig{});
    std::uint64_t g1 = tlb.flushGeneration(1);
    std::uint64_t g2 = tlb.flushGeneration(2);
    tlb.flushAll();
    EXPECT_GT(tlb.flushGeneration(1), g1);
    EXPECT_GT(tlb.flushGeneration(2), g2);
}

TEST(TlbHierarchyGenerations, SlotCollisionsInvalidateConservatively)
{
    // ASIDs 64 slots apart share a direct-mapped generation slot; a
    // flush of one must advance the other's generation (conservative:
    // a false filter invalidation, never a false hit).
    stats::StatGroup root("t");
    TlbHierarchy tlb(&root, TlbHierarchyConfig{});
    ProcId a = 3, b = 3 + 64;
    std::uint64_t gb = tlb.flushGeneration(b);
    tlb.flushPage(0x1000, a);
    EXPECT_GT(tlb.flushGeneration(b), gb);
}

// ---------------------------------------------------------------------
// munmap shootdown extents (2M leaf straddling the range end)
// ---------------------------------------------------------------------

TEST(MunmapBoundary, StraddledLargePageDoesNotSurviveStale)
{
    Machine m(vcpuConfig(VirtMode::Nested, 2, TlbCoherence::Software,
                         PageSize::Size2M));
    ProcId pid = m.spawnProcess();
    Addr base = m.mmap(4 << 20, true, false, 0); // two 2M pages
    ASSERT_NE(base, 0u);
    // Touch both halves from both vCPUs so 2M entries are resident.
    for (int i = 0; i < 4; ++i) {
        m.touch(base + 0x3000, true);
        m.touch(base + (2 << 20) + 0x3000, true);
    }
    ASSERT_GT(entriesInRange(m, pid, base, 4 << 20), 0u);

    // Unmap a range whose end falls 4K into the second 2M page: the
    // whole straddled mapping is evicted, so the shootdown must cover
    // it even beyond the requested end.
    m.munmap(base, (2 << 20) + 0x1000);
    EXPECT_EQ(entriesInRange(m, pid, base, 4 << 20), 0u);
    EXPECT_FALSE(m.guestOs().process(pid).pt->lookup(base + (3 << 20))
                     .has_value());
    // And the residency sweep agrees nothing stale survived anywhere.
    auto v = checkTlbResidency(m, 0);
    EXPECT_FALSE(v.has_value()) << (v ? v->detail : "");
}

TEST(MunmapBoundary, StraddledLargePageAtRangeStart)
{
    Machine m(vcpuConfig(VirtMode::Nested, 2, TlbCoherence::Software,
                         PageSize::Size2M));
    ProcId pid = m.spawnProcess();
    Addr base = m.mmap(4 << 20, true, false, 0);
    ASSERT_NE(base, 0u);
    for (int i = 0; i < 4; ++i) {
        m.touch(base + 0x3000, true);
        m.touch(base + (2 << 20) + 0x3000, true);
    }

    // Range starts 4K before the second 2M page ends... i.e. begins
    // inside the FIRST large page: that mapping is evicted whole, so
    // translations below the requested base must be gone too.
    m.munmap(base + (2 << 20) - 0x1000, (2 << 20) + 0x1000);
    EXPECT_EQ(entriesInRange(m, pid, base, 4 << 20), 0u);
    auto v = checkTlbResidency(m, 0);
    EXPECT_FALSE(v.has_value()) << (v ? v->detail : "");
}

// ---------------------------------------------------------------------
// Fork-time COW coherence across vCPUs
// ---------------------------------------------------------------------

class ForkCowTest : public ::testing::TestWithParam<VirtMode>
{
};

TEST_P(ForkCowTest, ChildStoreCannotReuseParentWritableEntry)
{
    Machine m(vcpuConfig(GetParam(), 2));
    ProcId parent = m.spawnProcess();
    Addr base = m.mmap(64 * kPageBytes, true, false, 0);
    ASSERT_NE(base, 0u);
    // Dirty every page from both vCPUs: writable translations now sit
    // in both stacks.
    for (Addr va = base; va < base + 64 * kPageBytes; va += kPageBytes)
        m.touch(va, true);

    ProcId child = m.guestOs().fork(parent);
    ASSERT_NE(child, 0u);
    // Fork write-protects the parent's mappings and broadcasts the
    // shootdown: no vCPU may retain a writable parent entry.
    for (unsigned v = 0; v < m.numVcpus(); ++v) {
        m.tlbOf(v).forEachEntry(
            [&](Addr va, ProcId asid, const TlbEntry &e, PageSize) {
                if (asid == parent && va >= base &&
                    va < base + 64 * kPageBytes) {
                    EXPECT_FALSE(e.writable)
                        << "vcpu" << v << " kept a writable parent "
                        << "entry at " << std::hex << va;
                }
            });
    }

    // Child stores break COW; the machine's access path (rotating
    // across both vCPUs) must never satisfy one from a stale shared
    // translation — verifyTranslations would panic if it did.
    m.switchTo(child);
    Addr target = base + 5 * kPageBytes;
    m.touch(target, true);
    FrameId child_f = m.guestOs().leafFrame(child, target);
    FrameId parent_f = m.guestOs().leafFrame(parent, target);
    EXPECT_NE(child_f, 0u);
    EXPECT_NE(child_f, parent_f) << "COW break did not copy";

    // Parent's view is untouched and the sweep stays clean.
    m.switchTo(parent);
    m.touch(target, true); // parent's own COW break
    EXPECT_NE(m.guestOs().leafFrame(parent, target), child_f);
    auto v = checkTlbResidency(m, 0);
    EXPECT_FALSE(v.has_value()) << (v ? v->detail : "");
    EXPECT_GT(m.coherence().shootdownsByCause(CoherenceCause::Fork), 0u);
    EXPECT_GT(m.coherence().shootdownsByCause(CoherenceCause::Cow), 0u);
}

INSTANTIATE_TEST_SUITE_P(ShadowAndAgile, ForkCowTest,
                         ::testing::Values(VirtMode::Shadow,
                                           VirtMode::Agile),
                         [](const auto &info) {
                             return std::string(
                                 virtModeName(info.param));
                         });

// ---------------------------------------------------------------------
// End-to-end multi-vCPU runs
// ---------------------------------------------------------------------

TEST(MultiVcpu, CounterConsistencyAndCostModel)
{
    auto run = [&](TlbCoherence kind) {
        Machine m(vcpuConfig(VirtMode::Agile, 4, kind));
        auto w = makeWorkload("shootdown_storm", smallParams());
        return m.run(*w);
    };
    RunResult sw = run(TlbCoherence::Software);
    RunResult hw = run(TlbCoherence::Hardware);

    EXPECT_EQ(sw.numVcpus, 4u);
    EXPECT_GT(sw.shootdowns, 0u);
    EXPECT_EQ(sw.remoteInvalidations, sw.shootdowns * 3);
    std::uint64_t by_cause = 0;
    for (std::size_t k = 0; k < kNumCoherenceCauses; ++k)
        by_cause += sw.shootdownsByCause[k];
    EXPECT_EQ(by_cause, sw.shootdowns);
    EXPECT_GT(sw.shootdownsByCause[static_cast<std::size_t>(
                  CoherenceCause::Munmap)],
              0u);

    // Same trace, same shootdowns — only the per-shootdown cost moves.
    EXPECT_EQ(hw.shootdowns, sw.shootdowns);
    EXPECT_GT(sw.coherenceCycles, hw.coherenceCycles);
    EXPECT_EQ(sw.coherenceCycles, sw.remoteInvalidations * 1600);
    EXPECT_EQ(hw.coherenceCycles, hw.remoteInvalidations * 40);
    EXPECT_GT(sw.slowdown(), hw.slowdown());
}

TEST(MultiVcpu, SingleVcpuHasNoCoherenceTraffic)
{
    Machine m(vcpuConfig(VirtMode::Agile, 1));
    auto w = makeWorkload("shootdown_storm", smallParams());
    RunResult r = m.run(*w);
    EXPECT_EQ(r.numVcpus, 1u);
    EXPECT_EQ(r.shootdowns, 0u);
    EXPECT_EQ(r.remoteInvalidations, 0u);
    EXPECT_EQ(r.coherenceCycles, 0u);
}

TEST(MultiVcpu, DeterministicInterleaving)
{
    auto run = [&] {
        Machine m(vcpuConfig(VirtMode::Shadow, 4));
        auto w = makeWorkload("page_migration", smallParams());
        return m.run(*w);
    };
    RunResult a = run();
    RunResult b = run();
    EXPECT_EQ(a.instructions, b.instructions);
    EXPECT_EQ(a.walkCycles, b.walkCycles);
    EXPECT_EQ(a.trapCycles, b.trapCycles);
    EXPECT_EQ(a.shootdowns, b.shootdowns);
    EXPECT_EQ(a.coherenceCycles, b.coherenceCycles);
    EXPECT_EQ(a.tlbMisses, b.tlbMisses);
}

TEST(MultiVcpu, TableVWorkloadsRunVerifiedAcrossModes)
{
    for (VirtMode mode : {VirtMode::Nested, VirtMode::Shadow,
                          VirtMode::Agile}) {
        Machine m(vcpuConfig(mode, 2));
        auto w = makeWorkload("mcf", smallParams(20'000));
        RunResult r = m.run(*w);
        EXPECT_GT(r.walks, 0u) << virtModeName(mode);
    }
}

TEST(MultiVcpu, SnapshotRoundtripMatchesColdRun)
{
    SimConfig cfg = vcpuConfig(VirtMode::Agile, 2);
    auto w1 = makeWorkload("reclaim_scan", smallParams(20'000));
    Machine cold(cfg);
    RunResult want = cold.run(*w1);

    auto w2 = makeWorkload("reclaim_scan", smallParams(20'000));
    Machine warm(cfg);
    warm.runWarmup(*w2);
    SnapshotPtr snap = captureSnapshot(warm);
    Machine restored(cfg);
    ASSERT_TRUE(restoreSnapshot(*snap, restored));
    RunResult got = restored.runMeasured(*w2);

    EXPECT_EQ(want.instructions, got.instructions);
    EXPECT_EQ(want.walkCycles, got.walkCycles);
    EXPECT_EQ(want.trapCycles, got.trapCycles);
    EXPECT_EQ(want.shootdowns, got.shootdowns);
    EXPECT_EQ(want.remoteInvalidations, got.remoteInvalidations);
    EXPECT_EQ(want.coherenceCycles, got.coherenceCycles);
    EXPECT_EQ(want.tlbMisses, got.tlbMisses);
}

TEST(MultiVcpu, SnapshotRejectsVcpuCountMismatch)
{
    Machine two(vcpuConfig(VirtMode::Agile, 2));
    auto w = makeWorkload("mcf", smallParams(10'000));
    two.runWarmup(*w);
    SnapshotPtr snap = captureSnapshot(two);
    Machine four(vcpuConfig(VirtMode::Agile, 4));
    EXPECT_FALSE(restoreSnapshot(*snap, four));
}

// ---------------------------------------------------------------------
// Report gating
// ---------------------------------------------------------------------

TEST(Report, CoherenceJsonOnlyForMultiVcpu)
{
    RunResult r;
    r.workload = "w";
    r.instructions = 100;
    r.idealCycles = 100;

    std::ostringstream single;
    writeRunResultsJson(single, {r}, 1);
    EXPECT_EQ(single.str().find("coherence_cycles"), std::string::npos);
    EXPECT_EQ(single.str().find("num_vcpus"), std::string::npos);

    r.numVcpus = 4;
    r.shootdowns = 5;
    r.remoteInvalidations = 15;
    r.coherenceCycles = 24000;
    r.shootdownsByCause[0] = 5;
    std::ostringstream multi;
    writeRunResultsJson(multi, {r}, 1);
    EXPECT_NE(multi.str().find("\"num_vcpus\": 4"), std::string::npos);
    EXPECT_NE(multi.str().find("\"coherence_cycles\": 24000"),
              std::string::npos);
    EXPECT_NE(multi.str().find("\"shootdowns_by_cause\""),
              std::string::npos);
    EXPECT_NE(multi.str().find("\"munmap\": 5"), std::string::npos);
}

// ---------------------------------------------------------------------
// Multi-vCPU oracle
// ---------------------------------------------------------------------

TEST(OracleMultiVcpu, CleanRunTwoAndFourVcpus)
{
    for (unsigned vcpus : {2u, 4u}) {
        OracleOptions opts;
        opts.seed = 11;
        opts.operations = 1200;
        opts.numVcpus = vcpus;
        OracleReport rep =
            runDifferential(makeRandomTrace(opts), opts);
        EXPECT_TRUE(rep.passed)
            << vcpus << " vcpus: "
            << (rep.violations.empty() ? ""
                                       : rep.violations.front().detail);
    }
}

TEST(OracleMultiVcpu, StaleTlbInjectionIsCaughtAndShrinks)
{
    OracleOptions opts;
    opts.seed = 5;
    opts.operations = 1200;
    opts.numVcpus = 2;
    opts.injectStaleTlbAtAccess = 30;
    Trace trace = makeRandomTrace(opts);
    OracleReport rep = runDifferential(trace, opts);
    ASSERT_FALSE(rep.passed);
    EXPECT_EQ(rep.violations.front().invariant, "stale-tlb");

    Trace minimal = shrinkTrace(trace, opts);
    EXPECT_LT(minimal.events.size(), trace.events.size());
    EXPECT_FALSE(runDifferential(minimal, opts).passed);
}

TEST(OracleMultiVcpu, HardwareCoherenceRunsClean)
{
    OracleOptions opts;
    opts.seed = 3;
    opts.operations = 1000;
    opts.numVcpus = 2;
    opts.tlbCoherence = TlbCoherence::Hardware;
    OracleReport rep = runDifferential(makeRandomTrace(opts), opts);
    EXPECT_TRUE(rep.passed)
        << (rep.violations.empty() ? ""
                                   : rep.violations.front().detail);
}

} // namespace
} // namespace ap
