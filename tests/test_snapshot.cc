/**
 * @file
 * Warm-state snapshot tests: the bit-identity contract (a measured
 * run forked from a restored snapshot reproduces the cold run field
 * for field, for every Table V workload, page size and shadow-capable
 * mode), the byte-identical re-capture invariant, the APSNAP2 on-disk
 * container (round trip, corruption, truncation), and the snapshot
 * cache's first-wins memoization, sticky errors and disk persistence.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <thread>
#include <vector>

#include "sim/experiment.hh"
#include "sim/machine.hh"
#include "sim/snapshot.hh"
#include "trace/trace_cache.hh"
#include "workloads/workload.hh"

namespace
{

using namespace ap;

void
expectSameResult(const RunResult &a, const RunResult &b)
{
    EXPECT_EQ(a.workload, b.workload);
    EXPECT_EQ(a.mode, b.mode);
    EXPECT_EQ(a.pageSize, b.pageSize);
    EXPECT_EQ(a.instructions, b.instructions);
    EXPECT_EQ(a.idealCycles, b.idealCycles);
    EXPECT_EQ(a.walkCycles, b.walkCycles);
    EXPECT_EQ(a.trapCycles, b.trapCycles);
    EXPECT_EQ(a.tlbMisses, b.tlbMisses);
    EXPECT_EQ(a.walks, b.walks);
    EXPECT_EQ(a.traps, b.traps);
    EXPECT_EQ(a.guestPageFaults, b.guestPageFaults);
    EXPECT_DOUBLE_EQ(a.avgWalkRefs, b.avgWalkRefs);
    for (int c = 0; c < 6; ++c)
        EXPECT_DOUBLE_EQ(a.coverage[c], b.coverage[c]);
    for (std::size_t k = 0; k < kNumTrapKinds; ++k)
        EXPECT_EQ(a.trapByKind[k], b.trapByKind[k]);
}

WorkloadParams
smallParams()
{
    WorkloadParams p;
    p.footprintBytes = 8ull << 20;
    p.operations = 20'000;
    p.seed = 11;
    return p;
}

/** A warmed machine frozen at its boundary, plus the workload that
 *  drove it there (still positioned at the boundary). */
struct WarmState
{
    std::unique_ptr<Machine> machine;
    std::unique_ptr<Workload> workload;
    SnapshotPtr snap;
};

WarmState
warmUp(const std::string &wl, const WorkloadParams &params,
       const SimConfig &cfg)
{
    WarmState w;
    w.workload = makeWorkload(wl, params);
    EXPECT_NE(w.workload, nullptr);
    w.machine = std::make_unique<Machine>(cfg);
    w.machine->runWarmup(*w.workload);
    w.snap = captureSnapshot(*w.machine);
    return w;
}

/**
 * The core contract, per workload: for each page size and each
 * shadow-capable mode, the recording run, a warm-capture run (the
 * snapshot winner continuing its own machine), a forked run (fresh
 * machine restored from the snapshot) and a per-event forked run all
 * produce the identical RunResult as a fresh Workload::step run.
 */
class SnapshotEquivalence : public ::testing::TestWithParam<std::string>
{
};

TEST_P(SnapshotEquivalence, ForkedRunMatchesColdRun)
{
    const std::string wl = GetParam();
    const WorkloadParams params = smallParams();
    for (PageSize ps : {PageSize::Size4K, PageSize::Size2M}) {
        for (VirtMode mode : {VirtMode::Nested, VirtMode::Shadow,
                              VirtMode::Agile, VirtMode::Range}) {
            SCOPED_TRACE(wl + " " +
                         (ps == PageSize::Size4K ? "4K" : "2M") +
                         " mode " + std::to_string(int(mode)));
            SimConfig cfg = configFor(mode, ps, params);

            RunResult fresh;
            {
                Machine m(cfg);
                auto w = makeWorkload(wl, params);
                ASSERT_NE(w, nullptr);
                fresh = m.run(*w);
            }

            TraceCache traces;
            SnapshotCache snaps;
            // 1st call records the trace (full cold run, no snapshot).
            RunResult recorded = runCellSnapshotted(
                traces, snaps, wl, params, cfg, true);
            // 2nd call wins the snapshot capture and continues the
            // machine it just warmed.
            RunResult warmed = runCellSnapshotted(traces, snaps, wl,
                                                  params, cfg, true);
            // 3rd call forks: restore + resumeAtBoundary + measured.
            RunResult forked = runCellSnapshotted(traces, snaps, wl,
                                                  params, cfg, true);
            // 4th call forks onto the per-event replay fallback.
            RunResult unbatched = runCellSnapshotted(traces, snaps, wl,
                                                     params, cfg, false);

            expectSameResult(fresh, recorded);
            expectSameResult(fresh, warmed);
            expectSameResult(fresh, forked);
            expectSameResult(fresh, unbatched);
            EXPECT_EQ(snaps.captures(), 1u);
            EXPECT_EQ(snaps.forks(), 2u);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(AllWorkloads, SnapshotEquivalence,
                         ::testing::ValuesIn(workloadNames()),
                         [](const auto &info) { return info.param; });

/**
 * The batched-walk priming pass is a host-side accelerator: with it on
 * or off, a forked batched replay must produce the identical result
 * (and the knob is deliberately outside the snapshot config digest,
 * so the two sharings interoperate on one cache).
 */
TEST(SnapshotEquivalence, BatchedWalkPrimingDoesNotChangeResults)
{
    const WorkloadParams params = smallParams();
    for (const std::string &wl : {std::string("gcc"),
                                  std::string("graph500")}) {
        for (PageSize ps : {PageSize::Size4K, PageSize::Size2M}) {
            SCOPED_TRACE(wl + " " +
                         (ps == PageSize::Size4K ? "4K" : "2M"));
            SimConfig cfg = configFor(VirtMode::Agile, ps, params);
            EXPECT_EQ(simConfigDigest([&] {
                          SimConfig c = cfg;
                          c.batchedWalks = !c.batchedWalks;
                          return c;
                      }()),
                      simConfigDigest(cfg));

            TraceCache traces;
            SnapshotCache snaps;
            cfg.batchedWalks = true;
            RunResult recorded = runCellSnapshotted(
                traces, snaps, wl, params, cfg, true);
            runCellSnapshotted(traces, snaps, wl, params, cfg, true);
            RunResult primed = runCellSnapshotted(traces, snaps, wl,
                                                  params, cfg, true);
            cfg.batchedWalks = false;
            RunResult plain = runCellSnapshotted(traces, snaps, wl,
                                                 params, cfg, true);
            expectSameResult(recorded, primed);
            expectSameResult(recorded, plain);
        }
    }
}

TEST(Snapshot, RestoredMachineRecapturesByteIdentical)
{
    const WorkloadParams params = smallParams();
    SimConfig cfg =
        configFor(VirtMode::Agile, PageSize::Size4K, params);
    WarmState w = warmUp("memcached", params, cfg);

    Machine restored(cfg);
    ASSERT_TRUE(restoreSnapshot(*w.snap, restored));
    SnapshotPtr again = captureSnapshot(restored);

    EXPECT_EQ(w.snap->configDigest, again->configDigest);
    ASSERT_EQ(w.snap->bytes.size(), again->bytes.size());
    EXPECT_EQ(w.snap->bytes, again->bytes);
}

TEST(Snapshot, RestoredRunContinuesWorkloadIdentically)
{
    // Restore into a fresh machine, then let the *same* workload
    // object (still sitting at its boundary) finish there: the result
    // must equal a straight cold run.
    const WorkloadParams params = smallParams();
    SimConfig cfg =
        configFor(VirtMode::Shadow, PageSize::Size4K, params);

    RunResult cold;
    {
        Machine m(cfg);
        auto w = makeWorkload("mcf", params);
        ASSERT_NE(w, nullptr);
        cold = m.run(*w);
    }

    WarmState w = warmUp("mcf", params, cfg);
    Machine forked(cfg);
    ASSERT_TRUE(restoreSnapshot(*w.snap, forked));
    RunResult r = forked.runMeasured(*w.workload);
    expectSameResult(cold, r);
}

TEST(Snapshot, RestoredStatsTreeDumpsIdentically)
{
    // The whole stats tree travels with the snapshot: a restored
    // machine's JSON dump must be indistinguishable from the source's.
    const WorkloadParams params = smallParams();
    SimConfig cfg =
        configFor(VirtMode::Agile, PageSize::Size2M, params);
    WarmState w = warmUp("canneal", params, cfg);

    Machine restored(cfg);
    ASSERT_TRUE(restoreSnapshot(*w.snap, restored));

    std::ostringstream a, b;
    w.machine->dumpJson(a);
    restored.dumpJson(b);
    EXPECT_EQ(a.str(), b.str());
}

TEST(Snapshot, ConfigDigestMismatchRejected)
{
    const WorkloadParams params = smallParams();
    SimConfig cfg =
        configFor(VirtMode::Agile, PageSize::Size4K, params);
    WarmState w = warmUp("mcf", params, cfg);

    SimConfig other = cfg;
    other.walkRefCycles += 1;
    EXPECT_NE(simConfigDigest(cfg), simConfigDigest(other));
    Machine m(other);
    EXPECT_FALSE(restoreSnapshot(*w.snap, m));
}

TEST(Snapshot, DigestCoversPolicyKnobs)
{
    SimConfig a;
    SimConfig b = a;
    EXPECT_EQ(simConfigDigest(a), simConfigDigest(b));
    b.policy.writeThreshold += 1;
    EXPECT_NE(simConfigDigest(a), simConfigDigest(b));
    b = a;
    b.shsp.minResidency += 1;
    EXPECT_NE(simConfigDigest(a), simConfigDigest(b));
    b = a;
    b.tlb.l2u4k.entries *= 2;
    EXPECT_NE(simConfigDigest(a), simConfigDigest(b));
    b = a;
    b.mode = VirtMode::Nested;
    EXPECT_NE(simConfigDigest(a), simConfigDigest(b));
}

TEST(Snapshot, FileRoundTrip)
{
    const WorkloadParams params = smallParams();
    SimConfig cfg =
        configFor(VirtMode::Nested, PageSize::Size4K, params);
    WarmState w = warmUp("graph500", params, cfg);

    const std::string path = testing::TempDir() + "/roundtrip.apsnap";
    ASSERT_TRUE(writeSnapshotFile(*w.snap, path));

    MachineSnapshot loaded;
    ASSERT_TRUE(readSnapshotFile(path, loaded));
    EXPECT_EQ(loaded.configDigest, w.snap->configDigest);
    EXPECT_EQ(loaded.bytes, w.snap->bytes);

    Machine m(cfg);
    ASSERT_TRUE(restoreSnapshot(loaded, m));
    RunResult r = m.runMeasured(*w.workload);
    EXPECT_GT(r.instructions, 0u);
    std::remove(path.c_str());
}

TEST(Snapshot, CorruptAndTruncatedFilesRejected)
{
    const WorkloadParams params = smallParams();
    SimConfig cfg =
        configFor(VirtMode::Nested, PageSize::Size4K, params);
    WarmState w = warmUp("mcf", params, cfg);

    const std::string path = testing::TempDir() + "/corrupt.apsnap";
    ASSERT_TRUE(writeSnapshotFile(*w.snap, path));

    std::vector<char> raw;
    {
        std::ifstream is(path, std::ios::binary);
        raw.assign(std::istreambuf_iterator<char>(is), {});
    }
    ASSERT_GT(raw.size(), 64u);

    auto writeRaw = [&](const std::vector<char> &bytes) {
        std::ofstream os(path, std::ios::binary | std::ios::trunc);
        os.write(bytes.data(),
                 static_cast<std::streamsize>(bytes.size()));
    };
    MachineSnapshot out;

    // Bad magic.
    std::vector<char> bad = raw;
    bad[0] ^= 0x40;
    writeRaw(bad);
    EXPECT_FALSE(readSnapshotFile(path, out));

    // Flipped payload bit (checksum must catch it).
    bad = raw;
    bad[raw.size() / 2] ^= 0x01;
    writeRaw(bad);
    EXPECT_FALSE(readSnapshotFile(path, out));

    // Truncation at several depths.
    for (std::size_t keep :
         {std::size_t{4}, std::size_t{20}, raw.size() - 9}) {
        bad.assign(raw.begin(),
                   raw.begin() + static_cast<std::ptrdiff_t>(keep));
        writeRaw(bad);
        EXPECT_FALSE(readSnapshotFile(path, out)) << "keep=" << keep;
    }

    // A garbage *payload* that passes the container checks must still
    // be rejected by restore (markers / bounds), not crash.
    MachineSnapshot garbage;
    garbage.configDigest = simConfigDigest(cfg);
    garbage.bytes.assign(1024, 0x5a);
    Machine m(cfg);
    EXPECT_FALSE(restoreSnapshot(garbage, m));

    std::remove(path.c_str());
}

TEST(SnapshotCache, FirstWinsConcurrent)
{
    SnapshotCache cache;
    SnapshotKey key;
    key.workload = "unit";
    key.operations = 123;

    constexpr int kThreads = 8;
    std::atomic<int> captures{0};
    std::vector<SnapshotPtr> got(kThreads);
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&, t] {
            got[t] = cache.obtain(key, [&] {
                ++captures;
                // Widen the race window: losers must block, not
                // re-capture.
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(20));
                auto s = std::make_shared<MachineSnapshot>();
                s->bytes = {1, 2, 3};
                return SnapshotPtr(s);
            });
        });
    }
    for (auto &t : threads)
        t.join();

    EXPECT_EQ(captures.load(), 1);
    EXPECT_EQ(cache.captures(), 1u);
    EXPECT_EQ(cache.forks(), std::uint64_t(kThreads - 1));
    for (int t = 0; t < kThreads; ++t) {
        ASSERT_NE(got[t], nullptr);
        EXPECT_EQ(got[t], got[0]) << "thread " << t;
    }
}

TEST(SnapshotCache, DistinctKeysCaptureIndependently)
{
    SnapshotCache cache;
    for (std::uint64_t seed = 0; seed < 4; ++seed) {
        SnapshotKey key;
        key.workload = "unit";
        key.seed = seed;
        cache.obtain(key, [] {
            return std::make_shared<const MachineSnapshot>();
        });
    }
    EXPECT_EQ(cache.captures(), 4u);
    EXPECT_EQ(cache.forks(), 0u);
}

TEST(SnapshotCache, CaptureErrorPropagatesToAllRequesters)
{
    SnapshotCache cache;
    SnapshotKey key;
    key.workload = "boom";
    auto bomb = []() -> SnapshotPtr {
        throw std::runtime_error("capture failed");
    };
    EXPECT_THROW(cache.obtain(key, bomb), std::runtime_error);
    // The failure is sticky: later requesters see the stored
    // exception instead of silently re-capturing.
    EXPECT_THROW(
        cache.obtain(key,
                     [] {
                         ADD_FAILURE() << "capture ran twice";
                         return std::make_shared<const MachineSnapshot>();
                     }),
        std::runtime_error);
}

TEST(SnapshotCache, DirectoryPersistsAcrossInstances)
{
    // A fresh directory: stale files from earlier test runs must not
    // satisfy (or poison) this run's lookups.
    const std::string dir = testing::TempDir() + "/apsnap_cache_test";
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);
    SnapshotKey key;
    key.workload = "persist";
    key.seed = 7;
    key.configDigest = 0xabcdef;

    auto make = [] {
        auto s = std::make_shared<MachineSnapshot>();
        s->configDigest = 0xabcdef;
        s->bytes = {9, 8, 7, 6};
        return SnapshotPtr(s);
    };

    {
        SnapshotCache cache(dir);
        cache.obtain(key, make);
        EXPECT_EQ(cache.captures(), 1u);
        EXPECT_EQ(cache.diskLoads(), 0u);
    }
    {
        // A fresh cache (fresh process, morally) loads from disk and
        // never runs the capture function.
        SnapshotCache cache(dir);
        SnapshotPtr s = cache.obtain(key, []() -> SnapshotPtr {
            ADD_FAILURE() << "captured despite disk copy";
            return std::make_shared<const MachineSnapshot>();
        });
        EXPECT_EQ(cache.captures(), 0u);
        EXPECT_EQ(cache.diskLoads(), 1u);
        ASSERT_NE(s, nullptr);
        EXPECT_EQ(s->bytes, (std::vector<std::uint8_t>{9, 8, 7, 6}));
    }
    {
        // A different config digest is a different key: no stored
        // file matches, so the capture function runs.
        SnapshotCache cache(dir);
        SnapshotKey other = key;
        other.configDigest = 0x123456;
        auto remade = std::make_shared<MachineSnapshot>();
        remade->configDigest = 0x123456;
        SnapshotPtr s =
            cache.obtain(other, [&] { return SnapshotPtr(remade); });
        EXPECT_EQ(cache.captures(), 1u);
        EXPECT_EQ(s, SnapshotPtr(remade));
    }
    std::filesystem::remove_all(dir);
}

TEST(SnapshotCache, MatrixWithSnapshotsMatchesMatrixWithout)
{
    // Whole-matrix equivalence through both caches, in parallel, vs
    // the plain serial matrix.
    std::vector<RunResult> plain = runFigure5Matrix(1'000, 1);

    TraceCache traces;
    SnapshotCache snaps;
    std::vector<RunResult> warm =
        runFigure5Matrix(1'000, 0, snapshotCellFn(traces, snaps));

    ASSERT_EQ(plain.size(), warm.size());
    for (std::size_t i = 0; i < plain.size(); ++i) {
        SCOPED_TRACE("cell " + std::to_string(i) + " (" +
                     plain[i].workload + ")");
        expectSameResult(plain[i], warm[i]);
    }
}

} // namespace
