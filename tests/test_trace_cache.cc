/**
 * @file
 * Trace cache tests: the bit-identity contract (cached replay, batched
 * or not, reproduces a fresh Workload::step run field for field, for
 * every Table V workload and page size), first-wins memoization under
 * concurrency, and whole-matrix equivalence with and without the
 * cache across jobs settings.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <thread>
#include <vector>

#include "sim/experiment.hh"
#include "sim/machine.hh"
#include "trace/trace_cache.hh"
#include "workloads/workload.hh"

namespace
{

using namespace ap;

void
expectSameResult(const RunResult &a, const RunResult &b)
{
    EXPECT_EQ(a.workload, b.workload);
    EXPECT_EQ(a.mode, b.mode);
    EXPECT_EQ(a.pageSize, b.pageSize);
    EXPECT_EQ(a.instructions, b.instructions);
    EXPECT_EQ(a.idealCycles, b.idealCycles);
    EXPECT_EQ(a.walkCycles, b.walkCycles);
    EXPECT_EQ(a.trapCycles, b.trapCycles);
    EXPECT_EQ(a.tlbMisses, b.tlbMisses);
    EXPECT_EQ(a.walks, b.walks);
    EXPECT_EQ(a.traps, b.traps);
    EXPECT_EQ(a.guestPageFaults, b.guestPageFaults);
    EXPECT_DOUBLE_EQ(a.avgWalkRefs, b.avgWalkRefs);
    for (int c = 0; c < 6; ++c)
        EXPECT_DOUBLE_EQ(a.coverage[c], b.coverage[c]);
    for (std::size_t k = 0; k < kNumTrapKinds; ++k)
        EXPECT_EQ(a.trapByKind[k], b.trapByKind[k]);
}

WorkloadParams
smallParams()
{
    WorkloadParams p;
    p.footprintBytes = 8ull << 20;
    p.operations = 20'000;
    p.seed = 11;
    return p;
}

/**
 * The core contract, per workload: for each page size and each
 * shadow-capable mode, a fresh generated run, the recording run, a
 * batched cached replay, and a per-event cached replay all produce
 * the identical RunResult.
 */
class TraceCacheEquivalence
    : public ::testing::TestWithParam<std::string>
{
};

TEST_P(TraceCacheEquivalence, CachedReplayMatchesFreshRun)
{
    const std::string wl = GetParam();
    const WorkloadParams params = smallParams();
    for (PageSize ps : {PageSize::Size4K, PageSize::Size2M}) {
        TraceCache cache;
        for (VirtMode mode :
             {VirtMode::Nested, VirtMode::Shadow, VirtMode::Agile}) {
            SCOPED_TRACE(wl + " " +
                         (ps == PageSize::Size4K ? "4K" : "2M") +
                         " mode " + std::to_string(int(mode)));
            SimConfig cfg = configFor(mode, ps, params);

            RunResult fresh;
            {
                Machine m(cfg);
                auto w = makeWorkload(wl, params);
                ASSERT_NE(w, nullptr);
                fresh = m.run(*w);
            }
            // First mode records (and must equal the fresh run);
            // later modes take the batched replay path.
            RunResult batched =
                runCellCached(cache, wl, params, cfg, true);
            // The key is now warm, so this always replays per-event.
            RunResult unbatched =
                runCellCached(cache, wl, params, cfg, false);

            expectSameResult(fresh, batched);
            expectSameResult(fresh, unbatched);
        }
        // One record per (workload, page size); everything else hit.
        EXPECT_EQ(cache.records(), 1u);
        EXPECT_EQ(cache.replays(), 5u);
    }
}

INSTANTIATE_TEST_SUITE_P(AllWorkloads, TraceCacheEquivalence,
                         ::testing::ValuesIn(workloadNames()),
                         [](const auto &info) { return info.param; });

TEST(TraceCache, FirstWinsConcurrent)
{
    TraceCache cache;
    TraceCacheKey key;
    key.workload = "unit";
    key.operations = 123;

    constexpr int kThreads = 8;
    std::atomic<int> recordings{0};
    std::vector<TraceCache::TracePtr> got(kThreads);
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&, t] {
            got[t] = cache.obtain(key, [&] {
                ++recordings;
                // Widen the race window: losers must block, not
                // re-record.
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(20));
                auto ct = std::make_shared<CompiledTrace>();
                ct->workload = "unit";
                return TraceCache::TracePtr(ct);
            });
        });
    }
    for (auto &t : threads)
        t.join();

    EXPECT_EQ(recordings.load(), 1);
    EXPECT_EQ(cache.records(), 1u);
    EXPECT_EQ(cache.replays(), std::uint64_t(kThreads - 1));
    for (int t = 0; t < kThreads; ++t) {
        ASSERT_NE(got[t], nullptr);
        EXPECT_EQ(got[t], got[0]) << "thread " << t;
    }
}

TEST(TraceCache, DistinctKeysRecordIndependently)
{
    TraceCache cache;
    for (std::uint64_t seed = 0; seed < 4; ++seed) {
        TraceCacheKey key;
        key.workload = "unit";
        key.seed = seed;
        cache.obtain(key, [] {
            return std::make_shared<const CompiledTrace>();
        });
    }
    EXPECT_EQ(cache.records(), 4u);
    EXPECT_EQ(cache.replays(), 0u);
}

TEST(TraceCache, RecordingErrorPropagatesToAllRequesters)
{
    TraceCache cache;
    TraceCacheKey key;
    key.workload = "boom";
    auto bomb = []() -> TraceCache::TracePtr {
        throw std::runtime_error("recording failed");
    };
    EXPECT_THROW(cache.obtain(key, bomb), std::runtime_error);
    // The failure is sticky: later requesters see the stored
    // exception instead of silently re-recording.
    EXPECT_THROW(cache.obtain(
                     key,
                     [] {
                         ADD_FAILURE() << "record ran twice";
                         return std::make_shared<const CompiledTrace>();
                     }),
                 std::runtime_error);
}

TEST(TraceCache, MatrixWithCacheMatchesMatrixWithout)
{
    // The PR 1 guarantee, extended: a parallel matrix *with* the
    // cache is bit-identical to a serial matrix *without* it.
    std::vector<RunResult> plain = runFigure5Matrix(1'000, 1);

    TraceCache cache;
    std::vector<RunResult> cached =
        runFigure5Matrix(1'000, 0, cachedCellFn(cache));

    ASSERT_EQ(plain.size(), cached.size());
    for (std::size_t i = 0; i < plain.size(); ++i) {
        SCOPED_TRACE("cell " + std::to_string(i) + " (" +
                     plain[i].workload + ")");
        expectSameResult(plain[i], cached[i]);
    }
    // 8 workloads x 2 page sizes unique streams; 4 modes share each.
    EXPECT_EQ(cache.records(), 16u);
    EXPECT_EQ(cache.replays(), plain.size() - 16u);
}

} // namespace
