/**
 * @file
 * LMbench-style microbenchmarks of VMtrap costs (paper Section VI,
 * "Cost of VMtraps"): measures the modelled cycles of a context
 * switch, a page-table update, and a page fault under each technique
 * by driving the exact event in isolation and reading the trap-cycle
 * delta — the same methodology the paper uses with LMbench plus
 * microbenchmarks on real hardware.
 */

#include <algorithm>
#include <cstdio>

#include "base/logging.hh"
#include "bench_common.hh"
#include "sim/machine.hh"

namespace
{

using namespace ap;

/** --ops scales the per-event iteration counts (default 100). */
unsigned g_iters = 100;

SimConfig
probeConfig(VirtMode mode)
{
    SimConfig cfg;
    cfg.mode = mode;
    cfg.hostMemFrames = 1 << 15;
    cfg.guestPtFrames = 1 << 12;
    cfg.guestDataFrames = 1 << 14;
    return cfg;
}

Cycles
trapCycles(Machine &m)
{
    return m.vmm() ? m.vmm()->trapCycles() : 0;
}

/** Cost of one guest context switch (round trip to another process). */
Cycles
measureCtxSwitch(VirtMode mode)
{
    Machine m(probeConfig(mode));
    ProcId a = m.spawnProcess();
    ProcId b = m.guestOs().createProcess(mode);
    // Warm both (first switch instantiates shadow state).
    m.switchTo(b);
    m.switchTo(a);
    Cycles before = trapCycles(m);
    const unsigned kIters = g_iters;
    for (unsigned i = 0; i < kIters; ++i) {
        m.switchTo(b);
        m.switchTo(a);
    }
    return (trapCycles(m) - before) / (2 * kIters);
}

/** Cost of one guest page-table update (mprotect-style PTE write). */
Cycles
measurePtUpdate(VirtMode mode)
{
    Machine m(probeConfig(mode));
    m.spawnProcess();
    Addr base = m.mmap(256 * kPageBytes, true, false, 0);
    for (unsigned i = 0; i < 256; ++i)
        m.touch(base + i * kPageBytes, true); // populate + shadow-fill
    Cycles before = trapCycles(m);
    // COW-style: remap pages (guest PT writes + shootdowns).
    const unsigned kPages = std::min(g_iters, 128u);
    for (unsigned i = 0; i < kPages; ++i) {
        m.munmap(base + i * kPageBytes, kPageBytes);
        m.guestOs().mmapFixed(m.currentProcess(), base + i * kPageBytes,
                              kPageBytes, true, VmaKind::Anon);
    }
    return (trapCycles(m) - before) / kPages;
}

/** Cost of one demand page fault. */
Cycles
measurePageFault(VirtMode mode)
{
    Machine m(probeConfig(mode));
    m.spawnProcess();
    const unsigned kPages = 256;
    Addr base = m.mmap(kPages * kPageBytes, true, false, 0);
    Cycles before = trapCycles(m);
    for (unsigned i = 0; i < kPages; ++i)
        m.touch(base + i * kPageBytes, true);
    return (trapCycles(m) - before) / kPages;
}

} // namespace

int
main(int argc, char **argv)
{
    ap::setQuietLogging(true);
    // --ops N sets the per-event iteration count (clamped to the
    // pre-populated page counts where the micro needs warm state).
    ap::BenchOptions opt(100);
    for (int i = 1; i < argc; ++i) {
        if (!opt.consume(argc, argv, i))
            opt.reject(argv, i, "");
    }
    g_iters = static_cast<unsigned>(
        std::min<std::uint64_t>(opt.ops ? opt.ops : 100, 1u << 20));
    std::printf("VMtrap cost microbenchmarks (modelled cycles per "
                "event; Section VI)\n\n");
    std::printf("%-10s %14s %14s %14s\n", "technique", "ctx switch",
                "PT update", "page fault");
    const ap::VirtMode modes[] = {
        ap::VirtMode::Native, ap::VirtMode::Nested, ap::VirtMode::Shadow,
        ap::VirtMode::Agile};
    for (ap::VirtMode mode : modes) {
        std::printf("%-10s %14lu %14lu %14lu\n", ap::virtModeName(mode),
                    static_cast<unsigned long>(measureCtxSwitch(mode)),
                    static_cast<unsigned long>(measurePtUpdate(mode)),
                    static_cast<unsigned long>(measurePageFault(mode)));
    }

    // The sptr-cache optimization's effect on context switches.
    {
        ap::SimConfig cfg = probeConfig(ap::VirtMode::Agile);
        cfg.sptrCacheEntries = 8;
        ap::Machine m(cfg);
        ap::ProcId a = m.spawnProcess();
        ap::ProcId b = m.guestOs().createProcess(ap::VirtMode::Agile);
        m.switchTo(b);
        m.switchTo(a);
        ap::Cycles before = m.vmm()->trapCycles();
        for (unsigned i = 0; i < g_iters; ++i) {
            m.switchTo(b);
            m.switchTo(a);
        }
        std::printf("\nAgile + sptr cache: ctx switch costs %lu cycles "
                    "(trap eliminated on hits)\n",
                    static_cast<unsigned long>(
                        (m.vmm()->trapCycles() - before) / (2 * g_iters)));
    }
    std::printf("\nPaper: VMtraps cost 1000s of cycles; nested/native "
                "pay none for PT updates\nand context switches.\n");
    return 0;
}
