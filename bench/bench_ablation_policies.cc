/**
 * @file
 * Ablation of the agile mode-switch policies (Section III-C):
 *   - nested=>shadow back-policy: none vs periodic-reset vs dirty-scan
 *   - shadow=>nested write-burst threshold sweep
 * on the page-table-churn workloads where the policies matter.
 *
 * All variants of one workload share a single recorded trace (the
 * stream does not depend on the policy), and cells with identical
 * full configs — dirty-scan/threshold-2 appears in both tables —
 * fork from one warm snapshot instead of re-warming.
 */

#include <cstdio>
#include <string>

#include "base/logging.hh"
#include "bench_common.hh"
#include "sim/experiment.hh"
#include "trace/trace_cache.hh"

namespace
{

ap::TraceCache *g_traces = nullptr;
ap::SnapshotCache *g_snaps = nullptr;

ap::RunResult
run(const std::string &wl, ap::BackPolicy back, std::uint32_t threshold,
    const ap::BenchOptions &opt)
{
    ap::WorkloadParams params = ap::defaultParamsFor(wl);
    params.operations = opt.ops;
    if (opt.seedSet)
        params.seed = opt.seed;
    ap::SimConfig cfg =
        ap::configFor(ap::VirtMode::Agile, opt.pageSize, params);
    cfg.policy.backPolicy = back;
    cfg.policy.writeThreshold = threshold;
    if (g_traces && g_snaps)
        return ap::runCellSnapshotted(*g_traces, *g_snaps, wl, params,
                                      cfg);
    if (g_traces)
        return ap::runCellCached(*g_traces, wl, params, cfg);
    ap::Machine machine(cfg);
    auto w = ap::makeWorkload(wl, params);
    return machine.run(*w);
}

} // namespace

int
main(int argc, char **argv)
{
    ap::setQuietLogging(true);
    ap::BenchOptions opt(1'000'000);
    for (int i = 1; i < argc; ++i) {
        if (!opt.consume(argc, argv, i))
            opt.reject(argv, i, "");
    }
    ap::TraceCache traces;
    ap::SnapshotCache snaps(opt.snapshotDir);
    g_traces = opt.traceCache ? &traces : nullptr;
    g_snaps = opt.traceCache && opt.snapshotCache ? &snaps : nullptr;

    const std::string workloads[] = {"dedup", "gcc", "memcached"};

    std::printf("Back-policy ablation (agile, threshold=2)\n\n");
    std::printf("%-11s %12s %12s %12s\n", "workload", "none",
                "periodic", "dirty-scan");
    for (const std::string &wl : workloads) {
        double none =
            run(wl, ap::BackPolicy::None, 2, opt).totalOverhead();
        double periodic =
            run(wl, ap::BackPolicy::PeriodicReset, 2, opt)
                .totalOverhead();
        double dirty =
            run(wl, ap::BackPolicy::DirtyScan, 2, opt).totalOverhead();
        std::printf("%-11s %11.1f%% %11.1f%% %11.1f%%\n", wl.c_str(),
                    none * 100, periodic * 100, dirty * 100);
    }

    std::printf("\nWrite-burst threshold sweep (dirty-scan back "
                "policy)\n\n");
    std::printf("%-11s %10s %10s %10s %10s\n", "workload", "thr=1",
                "thr=2", "thr=4", "thr=8");
    for (const std::string &wl : workloads) {
        std::printf("%-11s", wl.c_str());
        for (std::uint32_t thr : {1u, 2u, 4u, 8u}) {
            double o = run(wl, ap::BackPolicy::DirtyScan, thr, opt)
                           .totalOverhead();
            std::printf(" %9.1f%%", o * 100);
        }
        std::printf("\n");
    }
    std::printf("\nThe paper uses threshold 2 ('a small threshold like "
                "the one used in branch\npredictors') with the "
                "dirty-bit scan as the effective back policy.\n");
    if (g_traces)
        std::printf("[trace cache: %llu recorded, %llu replayed; "
                    "snapshots: %llu captured, %llu forked, %llu from "
                    "disk]\n",
                    (unsigned long long)traces.records(),
                    (unsigned long long)traces.replays(),
                    (unsigned long long)snaps.captures(),
                    (unsigned long long)snaps.forks(),
                    (unsigned long long)snaps.diskLoads());
    return 0;
}
