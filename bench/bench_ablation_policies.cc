/**
 * @file
 * Ablation of the agile mode-switch policies (Section III-C):
 *   - nested=>shadow back-policy: none vs periodic-reset vs dirty-scan
 *   - shadow=>nested write-burst threshold sweep
 * on the page-table-churn workloads where the policies matter.
 */

#include <cstdio>
#include <string>

#include "base/logging.hh"
#include "sim/experiment.hh"

namespace
{

ap::RunResult
run(const std::string &wl, ap::BackPolicy back, std::uint32_t threshold,
    std::uint64_t ops)
{
    ap::WorkloadParams params = ap::defaultParamsFor(wl);
    if (ops)
        params.operations = ops;
    ap::SimConfig cfg = ap::configFor(ap::VirtMode::Agile,
                                      ap::PageSize::Size4K, params);
    cfg.policy.backPolicy = back;
    cfg.policy.writeThreshold = threshold;
    ap::Machine machine(cfg);
    auto w = ap::makeWorkload(wl, params);
    return machine.run(*w);
}

} // namespace

int
main(int argc, char **argv)
{
    ap::setQuietLogging(true);
    std::uint64_t ops = argc > 1 ? std::stoull(argv[1]) : 1'000'000;
    const std::string workloads[] = {"dedup", "gcc", "memcached"};

    std::printf("Back-policy ablation (agile, threshold=2)\n\n");
    std::printf("%-11s %12s %12s %12s\n", "workload", "none",
                "periodic", "dirty-scan");
    for (const std::string &wl : workloads) {
        double none =
            run(wl, ap::BackPolicy::None, 2, ops).totalOverhead();
        double periodic =
            run(wl, ap::BackPolicy::PeriodicReset, 2, ops)
                .totalOverhead();
        double dirty =
            run(wl, ap::BackPolicy::DirtyScan, 2, ops).totalOverhead();
        std::printf("%-11s %11.1f%% %11.1f%% %11.1f%%\n", wl.c_str(),
                    none * 100, periodic * 100, dirty * 100);
    }

    std::printf("\nWrite-burst threshold sweep (dirty-scan back "
                "policy)\n\n");
    std::printf("%-11s %10s %10s %10s %10s\n", "workload", "thr=1",
                "thr=2", "thr=4", "thr=8");
    for (const std::string &wl : workloads) {
        std::printf("%-11s", wl.c_str());
        for (std::uint32_t thr : {1u, 2u, 4u, 8u}) {
            double o = run(wl, ap::BackPolicy::DirtyScan, thr, ops)
                           .totalOverhead();
            std::printf(" %9.1f%%", o * 100);
        }
        std::printf("\n");
    }
    std::printf("\nThe paper uses threshold 2 ('a small threshold like "
                "the one used in branch\npredictors') with the "
                "dirty-bit scan as the effective back policy.\n");
    return 0;
}
