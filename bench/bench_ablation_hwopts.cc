/**
 * @file
 * Ablation of the paper's two optional hardware optimizations
 * (Section IV): hardware A/D-bit writes into all three page tables,
 * and the sptr cache for guest context switches. Runs agile paging
 * with each combination on the workloads the optimizations target
 * (A/D: write-heavy canneal/dedup; sptr: context-switchy memcached).
 */

#include <cstdio>
#include <string>

#include "base/logging.hh"
#include "sim/experiment.hh"

namespace
{

ap::RunResult
run(const std::string &wl, bool hw_ad, std::size_t sptr,
    std::uint64_t ops)
{
    ap::WorkloadParams params = ap::defaultParamsFor(wl);
    if (ops)
        params.operations = ops;
    ap::SimConfig cfg = ap::configFor(ap::VirtMode::Agile,
                                      ap::PageSize::Size4K, params);
    cfg.hwOptAd = hw_ad;
    cfg.sptrCacheEntries = sptr;
    ap::Machine machine(cfg);
    auto w = ap::makeWorkload(wl, params);
    return machine.run(*w);
}

} // namespace

int
main(int argc, char **argv)
{
    ap::setQuietLogging(true);
    std::uint64_t ops = argc > 1 ? std::stoull(argv[1]) : 1'000'000;

    std::printf("Hardware-optimization ablation (agile paging, 4K)\n\n");
    std::printf("%-11s %12s %12s %12s %12s   %10s %10s\n", "workload",
                "none", "+A/D hw", "+sptr", "both", "ad_traps",
                "cs_traps");
    for (const std::string &wl :
         {std::string("canneal"), std::string("dedup"),
          std::string("memcached"), std::string("gcc")}) {
        ap::RunResult none = run(wl, false, 0, ops);
        ap::RunResult ad = run(wl, true, 0, ops);
        ap::RunResult sptr = run(wl, false, 8, ops);
        ap::RunResult both = run(wl, true, 8, ops);
        std::printf(
            "%-11s %11.1f%% %11.1f%% %11.1f%% %11.1f%%   %10lu %10lu\n",
            wl.c_str(), none.totalOverhead() * 100,
            ad.totalOverhead() * 100, sptr.totalOverhead() * 100,
            both.totalOverhead() * 100,
            static_cast<unsigned long>(
                none.trapByKind[std::size_t(ap::TrapKind::AdEmulation)]),
            static_cast<unsigned long>(
                none.trapByKind[std::size_t(ap::TrapKind::CtxSwitch)]));
    }
    std::printf("\nColumns are total execution-time overhead; the "
                "optimizations remove AdEmulation\nand CtxSwitch traps "
                "respectively (Section IV).\n");
    return 0;
}
