/**
 * @file
 * Ablation of the paper's two optional hardware optimizations
 * (Section IV): hardware A/D-bit writes into all three page tables,
 * and the sptr cache for guest context switches. Runs agile paging
 * with each combination on the workloads the optimizations target
 * (A/D: write-heavy canneal/dedup; sptr: context-switchy memcached).
 *
 * The four variants of one workload share a single recorded trace;
 * with --snapshot-dir, repeat invocations fork every cell from its
 * persisted warm image.
 */

#include <cstdio>
#include <string>

#include "base/logging.hh"
#include "bench_common.hh"
#include "sim/experiment.hh"
#include "trace/trace_cache.hh"

namespace
{

ap::TraceCache *g_traces = nullptr;
ap::SnapshotCache *g_snaps = nullptr;

ap::RunResult
run(const std::string &wl, bool hw_ad, std::size_t sptr,
    const ap::BenchOptions &opt)
{
    ap::WorkloadParams params = ap::defaultParamsFor(wl);
    params.operations = opt.ops;
    if (opt.seedSet)
        params.seed = opt.seed;
    ap::SimConfig cfg =
        ap::configFor(ap::VirtMode::Agile, opt.pageSize, params);
    cfg.hwOptAd = hw_ad;
    cfg.sptrCacheEntries = sptr;
    if (g_traces && g_snaps)
        return ap::runCellSnapshotted(*g_traces, *g_snaps, wl, params,
                                      cfg);
    if (g_traces)
        return ap::runCellCached(*g_traces, wl, params, cfg);
    ap::Machine machine(cfg);
    auto w = ap::makeWorkload(wl, params);
    return machine.run(*w);
}

} // namespace

int
main(int argc, char **argv)
{
    ap::setQuietLogging(true);
    ap::BenchOptions opt(1'000'000);
    for (int i = 1; i < argc; ++i) {
        if (!opt.consume(argc, argv, i))
            opt.reject(argv, i, "");
    }
    ap::TraceCache traces;
    ap::SnapshotCache snaps(opt.snapshotDir);
    g_traces = opt.traceCache ? &traces : nullptr;
    g_snaps = opt.traceCache && opt.snapshotCache ? &snaps : nullptr;

    std::printf("Hardware-optimization ablation (agile paging, %s)\n\n",
                opt.pageSize == ap::PageSize::Size2M ? "2M" : "4K");
    std::printf("%-11s %12s %12s %12s %12s   %10s %10s\n", "workload",
                "none", "+A/D hw", "+sptr", "both", "ad_traps",
                "cs_traps");
    for (const std::string &wl :
         {std::string("canneal"), std::string("dedup"),
          std::string("memcached"), std::string("gcc")}) {
        ap::RunResult none = run(wl, false, 0, opt);
        ap::RunResult ad = run(wl, true, 0, opt);
        ap::RunResult sptr = run(wl, false, 8, opt);
        ap::RunResult both = run(wl, true, 8, opt);
        std::printf(
            "%-11s %11.1f%% %11.1f%% %11.1f%% %11.1f%%   %10lu %10lu\n",
            wl.c_str(), none.totalOverhead() * 100,
            ad.totalOverhead() * 100, sptr.totalOverhead() * 100,
            both.totalOverhead() * 100,
            static_cast<unsigned long>(
                none.trapByKind[std::size_t(ap::TrapKind::AdEmulation)]),
            static_cast<unsigned long>(
                none.trapByKind[std::size_t(ap::TrapKind::CtxSwitch)]));
    }
    std::printf("\nColumns are total execution-time overhead; the "
                "optimizations remove AdEmulation\nand CtxSwitch traps "
                "respectively (Section IV).\n");
    if (g_traces)
        std::printf("[trace cache: %llu recorded, %llu replayed; "
                    "snapshots: %llu captured, %llu forked, %llu from "
                    "disk]\n",
                    (unsigned long long)traces.records(),
                    (unsigned long long)traces.replays(),
                    (unsigned long long)snaps.captures(),
                    (unsigned long long)snaps.forks(),
                    (unsigned long long)snaps.diskLoads());
    return 0;
}
