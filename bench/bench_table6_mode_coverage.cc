/**
 * @file
 * Regenerates the paper's Table VI: the percentage of TLB misses
 * served at each mode/switch level of agile paging, with 4 KB pages
 * and page-walk caches disabled (the table's stated assumption), plus
 * the resulting average memory accesses per TLB miss.
 *
 * Usage: bench_table6_mode_coverage [common bench flags]
 *                                   [--stats-json PATH]
 */

#include <cstring>
#include <fstream>
#include <iostream>

#include "base/logging.hh"
#include "bench_common.hh"
#include "sim/experiment.hh"
#include "sim/report.hh"
#include "trace/trace_cache.hh"

int
main(int argc, char **argv)
{
    ap::setQuietLogging(true);
    ap::BenchOptions opt(0);
    std::string stats_json;
    for (int i = 1; i < argc; ++i) {
        if (opt.consume(argc, argv, i))
            continue;
        if (!std::strcmp(argv[i], "--stats-json") && i + 1 < argc)
            stats_json = argv[++i];
        else
            opt.reject(argv, i, "[--stats-json PATH]");
    }

    ap::TraceCache cache;
    ap::SnapshotCache snaps(opt.snapshotDir);
    std::vector<ap::RunResult> runs;
    for (const std::string &wl : ap::workloadNames()) {
        ap::WorkloadParams params = ap::defaultParamsFor(wl);
        if (opt.ops)
            params.operations = opt.ops;
        if (opt.seedSet)
            params.seed = opt.seed;
        ap::SimConfig cfg = ap::configFor(ap::VirtMode::Agile,
                                          opt.pageSize, params);
        // Table VI: "assuming no page walk caches".
        cfg.pwcEnabled = false;
        cfg.ntlbEnabled = false;
        if (opt.traceCache && opt.snapshotCache) {
            // One cell per workload here, so in-process this records
            // rather than replays — but with --snapshot-dir a repeat
            // invocation forks every cell from its persisted warm
            // image, and results stay bit-identical either way.
            runs.push_back(
                ap::runCellSnapshotted(cache, snaps, wl, params, cfg));
        } else if (opt.traceCache) {
            runs.push_back(ap::runCellCached(cache, wl, params, cfg));
        } else {
            ap::Machine machine(cfg);
            auto workload = ap::makeWorkload(wl, params);
            runs.push_back(machine.run(*workload));
        }
        std::cerr << "." << std::flush;
    }
    std::cerr << "\n";
    if (!stats_json.empty()) {
        std::ofstream os(stats_json);
        if (!os) {
            std::cerr << "cannot write " << stats_json << "\n";
            return 1;
        }
        ap::writeRunResultsJson(os, runs, 1); // serial bench
    }
    ap::printTable6(std::cout, runs);

    // The paper's companion observation: most upper levels stay
    // shadowed, so misses average 4-5 references.
    double worst = 0;
    for (const auto &r : runs)
        worst = std::max(worst, r.avgWalkRefs);
    std::cout << "\nWorst-case average references per miss: " << worst
              << " (paper: 4-5 across all workloads)\n";
    return 0;
}
