/**
 * @file
 * Regenerates the paper's Table VI: the percentage of TLB misses
 * served at each mode/switch level of agile paging, with 4 KB pages
 * and page-walk caches disabled (the table's stated assumption), plus
 * the resulting average memory accesses per TLB miss.
 *
 * Usage: bench_table6_mode_coverage [--ops N] [--stats-json PATH]
 */

#include <cstring>
#include <fstream>
#include <iostream>

#include "base/logging.hh"
#include "sim/experiment.hh"
#include "sim/report.hh"
#include "trace/trace_cache.hh"

int
main(int argc, char **argv)
{
    ap::setQuietLogging(true);
    std::uint64_t ops = 0;
    bool use_cache = true;
    std::string stats_json;
    for (int i = 1; i < argc; ++i) {
        if (!std::strcmp(argv[i], "--ops") && i + 1 < argc) {
            if (!ap::parseU64(argv[++i], ops)) {
                std::cerr << "usage: " << argv[0]
                          << " [--ops N] [--stats-json PATH]"
                             " [--no-trace-cache]\n";
                return 1;
            }
        } else if (!std::strcmp(argv[i], "--stats-json") &&
                   i + 1 < argc) {
            stats_json = argv[++i];
        } else if (!std::strcmp(argv[i], "--no-trace-cache")) {
            use_cache = false;
        }
    }

    ap::TraceCache cache;
    std::vector<ap::RunResult> runs;
    for (const std::string &wl : ap::workloadNames()) {
        ap::WorkloadParams params = ap::defaultParamsFor(wl);
        if (ops)
            params.operations = ops;
        ap::SimConfig cfg = ap::configFor(ap::VirtMode::Agile,
                                          ap::PageSize::Size4K, params);
        // Table VI: "assuming no page walk caches".
        cfg.pwcEnabled = false;
        cfg.ntlbEnabled = false;
        if (use_cache) {
            // One cell per workload here, so this records rather than
            // replays — but the traces become reusable by any matrix
            // sharing the process, and results stay bit-identical.
            runs.push_back(ap::runCellCached(cache, wl, params, cfg));
        } else {
            ap::Machine machine(cfg);
            auto workload = ap::makeWorkload(wl, params);
            runs.push_back(machine.run(*workload));
        }
        std::cerr << "." << std::flush;
    }
    std::cerr << "\n";
    if (!stats_json.empty()) {
        std::ofstream os(stats_json);
        if (!os) {
            std::cerr << "cannot write " << stats_json << "\n";
            return 1;
        }
        ap::writeRunResultsJson(os, runs);
    }
    ap::printTable6(std::cout, runs);

    // The paper's companion observation: most upper levels stay
    // shadowed, so misses average 4-5 references.
    double worst = 0;
    for (const auto &r : runs)
        worst = std::max(worst, r.avgWalkRefs);
    std::cout << "\nWorst-case average references per miss: " << worst
              << " (paper: 4-5 across all workloads)\n";
    return 0;
}
