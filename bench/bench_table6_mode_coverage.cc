/**
 * @file
 * Regenerates the paper's Table VI: the percentage of TLB misses
 * served at each mode/switch level of agile paging, with 4 KB pages
 * and page-walk caches disabled (the table's stated assumption), plus
 * the resulting average memory accesses per TLB miss.
 */

#include <cstring>
#include <iostream>

#include "base/logging.hh"
#include "sim/experiment.hh"
#include "sim/report.hh"

int
main(int argc, char **argv)
{
    ap::setQuietLogging(true);
    std::uint64_t ops = 0;
    for (int i = 1; i < argc; ++i) {
        if (!std::strcmp(argv[i], "--ops") && i + 1 < argc)
            ops = std::stoull(argv[++i]);
    }

    std::vector<ap::RunResult> runs;
    for (const std::string &wl : ap::workloadNames()) {
        ap::WorkloadParams params = ap::defaultParamsFor(wl);
        if (ops)
            params.operations = ops;
        ap::SimConfig cfg = ap::configFor(ap::VirtMode::Agile,
                                          ap::PageSize::Size4K, params);
        // Table VI: "assuming no page walk caches".
        cfg.pwcEnabled = false;
        cfg.ntlbEnabled = false;
        ap::Machine machine(cfg);
        auto workload = ap::makeWorkload(wl, params);
        runs.push_back(machine.run(*workload));
        std::cerr << "." << std::flush;
    }
    std::cerr << "\n";
    ap::printTable6(std::cout, runs);

    // The paper's companion observation: most upper levels stay
    // shadowed, so misses average 4-5 references.
    double worst = 0;
    for (const auto &r : runs)
        worst = std::max(worst, r.avgWalkRefs);
    std::cout << "\nWorst-case average references per miss: " << worst
              << " (paper: 4-5 across all workloads)\n";
    return 0;
}
