/**
 * @file
 * Regenerates the paper's Table II (memory references per page walk at
 * every degree of nesting) and the Fig. 1/Fig. 3 chronological access
 * sequences, measured from the hardware walker with caches disabled.
 *
 * Also times the simulator's walk paths with google-benchmark so the
 * implementation cost of each state machine is visible.
 */

#include <benchmark/benchmark.h>

#include <cstdio>

#include "base/logging.hh"
#include "mem/page_table.hh"
#include "tlb/nested_tlb.hh"
#include "tlb/pwc.hh"
#include "vmm/guest_pt_space.hh"
#include "vmm/vmm.hh"
#include "walker/walker.hh"

namespace
{

using namespace ap;

/** Self-contained walk environment with caches off. */
struct WalkEnv
{
    WalkEnv()
        : mem(1 << 16),
          pwc(&root, 32, 4, false),
          ntlb(&root, 64, 4, false),
          vmm(&root, mem,
              VmmConfig{4096, 1 << 15, PageSize::Size4K, TrapCosts{}, 0},
              &ntlb),
          walker(&root, mem, pwc, ntlb),
          gspace(vmm),
          gpt(gspace, "gPT"),
          sspace(mem, TableOwner::ShadowPt),
          spt(sspace, "sPT")
    {
        ctx.asid = 1;
        ctx.gptRoot = gpt.root();
        ctx.gptRootBacking = vmm.ensurePtBacked(gpt.root());
        ctx.hptRoot = vmm.hostPtRoot();
        ctx.sptRoot = spt.root();
    }

    /** Map one guest page, backed, plus a full shadow leaf. */
    void
    mapAll(Addr va)
    {
        FrameId g = vmm.allocGuestDataFrame();
        gpt.map(va, g, PageSize::Size4K, true);
        vmm.ensureDataBacked(g);
        spt.map(va, vmm.backing(g), PageSize::Size4K, true);
    }

    /** Replace the shadow path with a switching entry at @p depth. */
    void
    plantSwitch(Addr va, unsigned depth)
    {
        FrameId next = gpt.tableFrame(va, depth + 1);
        spt.invalidateEntry(va, depth);
        Pte *spte = spt.ensurePath(va, depth);
        *spte = Pte{};
        spte->valid = true;
        spte->switching = true;
        spte->pfn = vmm.ensurePtBacked(next);
    }

    stats::StatGroup root{"bench"};
    PhysMem mem;
    PageWalkCache pwc;
    NestedTlb ntlb;
    Vmm vmm;
    Walker walker;
    GuestPtSpace gspace;
    RadixPageTable gpt;
    HostPtSpace sspace;
    RadixPageTable spt;
    TranslationContext ctx;
};

void
printTable2()
{
    WalkEnv env;
    const Addr va = 0x123456789000;
    env.mapAll(va);

    struct Row
    {
        const char *label;
        VirtMode mode;
        int plant_depth; // -1: none, -2: rootSwitch, -3: fullNested
    } rows[] = {
        {"Shadow only (Fig 3a)", VirtMode::Agile, -1},
        {"Switched at 4th level (Fig 3b)", VirtMode::Agile, 2},
        {"Switched at 3rd level (Fig 3c)", VirtMode::Agile, 1},
        {"Switched at 2nd level (Fig 3d)", VirtMode::Agile, 0},
        {"Switched at 1st level (Fig 3e)", VirtMode::Agile, -2},
        {"Nested only (Fig 3f)", VirtMode::Agile, -3},
    };

    std::printf("\nTable II: memory references per walk by degree of "
                "nesting (no PWC/nTLB)\n");
    std::printf("%-34s %6s   %s\n", "degree", "refs",
                "chronological accesses");
    for (const Row &row : rows) {
        WalkEnv e;
        e.mapAll(va);
        e.ctx.mode = row.mode;
        if (row.plant_depth >= 0) {
            e.plantSwitch(va, static_cast<unsigned>(row.plant_depth));
        } else if (row.plant_depth == -2) {
            e.ctx.rootSwitch = true;
        } else if (row.plant_depth == -3) {
            e.ctx.fullNested = true;
        }
        e.walker.setTracing(true);
        WalkResult r = e.walker.walk(e.ctx, va, false);
        ap_assert(r.ok(), "bench walk faulted");
        std::printf("%-34s %6u   ", row.label, r.refs);
        for (const WalkAccess &a : r.trace)
            std::printf("%s[%u] ", walkTableName(a.table), a.depth);
        std::printf("\n");
    }

    // The base-native row for comparison.
    WalkEnv e;
    HostPtSpace nspace(e.mem, TableOwner::NativePt);
    RadixPageTable npt(nspace, "nPT");
    FrameId f = e.mem.allocData(0);
    npt.map(va, f, PageSize::Size4K, true);
    TranslationContext nctx;
    nctx.mode = VirtMode::Native;
    nctx.nativeRoot = npt.root();
    e.walker.setTracing(true);
    WalkResult r = e.walker.walk(nctx, va, false);
    std::printf("%-34s %6u   (1D reference)\n", "Base native", r.refs);
}

// ---------------------------------------------------------------------
// google-benchmark timings of the walk state machines themselves
// ---------------------------------------------------------------------

void
BM_NativeWalk(benchmark::State &state)
{
    WalkEnv env;
    HostPtSpace nspace(env.mem, TableOwner::NativePt);
    RadixPageTable npt(nspace, "nPT");
    npt.map(0x1000, env.mem.allocData(0), PageSize::Size4K, true);
    TranslationContext ctx;
    ctx.mode = VirtMode::Native;
    ctx.nativeRoot = npt.root();
    for (auto _ : state)
        benchmark::DoNotOptimize(env.walker.walk(ctx, 0x1000, false));
}
BENCHMARK(BM_NativeWalk);

void
BM_ShadowWalk(benchmark::State &state)
{
    WalkEnv env;
    env.mapAll(0x1000);
    env.ctx.mode = VirtMode::Shadow;
    for (auto _ : state)
        benchmark::DoNotOptimize(env.walker.walk(env.ctx, 0x1000, false));
}
BENCHMARK(BM_ShadowWalk);

void
BM_NestedWalk(benchmark::State &state)
{
    WalkEnv env;
    env.mapAll(0x1000);
    env.ctx.mode = VirtMode::Nested;
    for (auto _ : state)
        benchmark::DoNotOptimize(env.walker.walk(env.ctx, 0x1000, false));
}
BENCHMARK(BM_NestedWalk);

void
BM_AgileWalkSwitchLeaf(benchmark::State &state)
{
    WalkEnv env;
    env.mapAll(0x1000);
    env.plantSwitch(0x1000, 2);
    env.ctx.mode = VirtMode::Agile;
    for (auto _ : state)
        benchmark::DoNotOptimize(env.walker.walk(env.ctx, 0x1000, false));
}
BENCHMARK(BM_AgileWalkSwitchLeaf);

} // namespace

int
main(int argc, char **argv)
{
    ap::setQuietLogging(true);
    // Reject leftovers before printing anything: a typoed flag should
    // exit 2, not produce a full (default-configured) report.
    benchmark::Initialize(&argc, argv);
    if (argc > 1) {
        std::fprintf(stderr,
                     "unknown argument '%s'\n"
                     "usage: %s [--benchmark_filter=REGEX] "
                     "[--benchmark_* flags]\n",
                     argv[1], argv[0]);
        return 2;
    }
    printTable2();
    std::printf("\n");
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
