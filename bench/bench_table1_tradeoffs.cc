/**
 * @file
 * Regenerates the paper's Table I as *measured* behaviour: for each
 * technique, the TLB-hit cost, the worst-case and average memory
 * accesses per TLB miss, and whether page-table updates are direct or
 * VMM-mediated (measured as traps per guest PT update).
 */

#include <cstdio>

#include "base/logging.hh"
#include "bench_common.hh"
#include "sim/experiment.hh"

namespace
{

using namespace ap;

struct Row
{
    const char *name;
    VirtMode mode;
    unsigned maxRefs;
    double avgRefs;
    double trapsPerPtUpdate;
};

Row
measure(VirtMode mode, const BenchOptions &opt)
{
    // A small probe workload with both TLB misses and PT updates.
    WorkloadParams params;
    params.footprintBytes = 48ull << 20;
    params.operations = opt.ops;
    if (opt.seedSet)
        params.seed = opt.seed;
    SimConfig cfg = configFor(mode, opt.pageSize, params);
    cfg.pwcEnabled = false; // architectural walk lengths
    cfg.ntlbEnabled = false;
    Machine machine(cfg);
    auto workload = makeWorkload("gcc", params);

    // Count PT updates via the guest OS hook (chaining the machine's
    // own subscriber).
    std::uint64_t pt_updates = 0;
    auto chained = machine.guestOs().onAnyGptWrite;
    machine.guestOs().onAnyGptWrite = [&pt_updates, chained](
                                          ProcId pid, Addr va,
                                          unsigned depth) {
        ++pt_updates;
        if (chained)
            chained(pid, va, depth);
    };
    std::uint64_t traps_before =
        machine.vmm() ? machine.vmm()->trapCountTotal() : 0;
    RunResult r = machine.run(*workload);
    std::uint64_t traps =
        (machine.vmm() ? machine.vmm()->trapCountTotal() : 0) -
        traps_before;

    Row row;
    row.name = virtModeName(mode);
    row.mode = mode;
    // Architectural worst case from the walker model.
    switch (mode) {
      case VirtMode::Native:
        row.maxRefs = 4;
        break;
      case VirtMode::Nested:
        row.maxRefs = 24;
        break;
      case VirtMode::Shadow:
        row.maxRefs = 4;
        break;
      default:
        row.maxRefs = 24; // agile can reach full nested
        break;
    }
    row.avgRefs = r.avgWalkRefs;
    row.trapsPerPtUpdate =
        pt_updates ? double(traps) / double(pt_updates) : 0.0;
    return row;
}

} // namespace

int
main(int argc, char **argv)
{
    ap::setQuietLogging(true);
    ap::BenchOptions opt(1'200'000);
    for (int i = 1; i < argc; ++i) {
        if (!opt.consume(argc, argv, i))
            opt.reject(argv, i, "");
    }
    std::printf("Table I: trade-offs of memory virtualization "
                "techniques (measured)\n\n");
    std::printf("%-10s %-22s %9s %9s %18s\n", "technique", "TLB hit",
                "max refs", "avg refs", "traps/PT-update");
    const ap::VirtMode modes[] = {
        ap::VirtMode::Native, ap::VirtMode::Nested, ap::VirtMode::Shadow,
        ap::VirtMode::Agile};
    for (ap::VirtMode m : modes) {
        Row row = measure(m, opt);
        const char *hit = m == ap::VirtMode::Native ? "fast (VA=>PA)"
                                                    : "fast (gVA=>hPA)";
        std::printf("%-10s %-22s %9u %9.2f %18.3f\n", row.name, hit,
                    row.maxRefs, row.avgRefs, row.trapsPerPtUpdate);
    }
    std::printf("\nPaper's qualitative claims: shadow avg refs == native "
                "(4), nested == 24,\nagile ~(4-5) avg; PT updates direct "
                "(low traps/update) for nested and agile,\nmediated "
                "(high) for shadow.\n");
    return 0;
}
