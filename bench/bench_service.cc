/**
 * @file
 * apsimd service throughput: submits the Figure 5 matrix as one batch
 * to a freshly started service at 1/2/4/8 workers and compares batch
 * wall-clock against the in-process runExperiments engine (same cell
 * runner, one process, one thread). Every streamed run object is
 * checked byte-for-byte against the in-process result, so the numbers
 * only count if sharding kept the simulation bit-identical.
 * Machine-readable copy goes to BENCH_service.json.
 *
 * Each worker count gets its own daemon: workers are pre-forked with
 * cold caches, so a measured batch includes the recording/capture cost
 * exactly like the in-process baseline does. Scaling past 1 worker
 * comes from sharding the matrix's affinity families across the fleet.
 *
 * Usage: bench_service [common bench flags] [--json PATH]
 *                      [--require-scale]
 *        --require-scale exits nonzero unless the 4-worker service
 *          finishes the batch >=3x faster than the 1-worker service
 *          (the CI gate; needs >=4 usable cores to be meaningful).
 */

#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "base/logging.hh"
#include "bench_common.hh"
#include "service/client.hh"
#include "service/server.hh"
#include "sim/experiment.hh"
#include "sim/parallel_runner.hh"
#include "sim/report.hh"
#include "trace/trace_cache.hh"

namespace
{

double
secondsSince(std::chrono::steady_clock::time_point start)
{
    using fsec = std::chrono::duration<double>;
    return fsec(std::chrono::steady_clock::now() - start).count();
}

struct ServicePoint
{
    unsigned workers = 0;
    double seconds = 0;
    double cellsPerSec = 0;
    bool identical = true;
    std::uint64_t affinityHits = 0;
    std::uint64_t steals = 0;
};

/** The expected "run" JSON for each in-process result. */
std::vector<std::string>
renderExpected(const std::vector<ap::RunResult> &runs)
{
    std::vector<std::string> out;
    out.reserve(runs.size());
    for (const ap::RunResult &r : runs) {
        std::ostringstream os;
        ap::writeRunResultJson(os, r);
        out.push_back(os.str());
    }
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    ap::setQuietLogging(true);
    ap::BenchOptions opt(500'000);
    bool require_scale = false;
    std::string json_path = "BENCH_service.json";
    for (int i = 1; i < argc; ++i) {
        if (opt.consume(argc, argv, i))
            continue;
        if (!std::strcmp(argv[i], "--json") && i + 1 < argc)
            json_path = argv[++i];
        else if (!std::strcmp(argv[i], "--require-scale"))
            require_scale = true;
        else
            opt.reject(argv, i, "[--json PATH] [--require-scale]");
    }
    ap::setBatchedWalksDefault(opt.batchedWalks);
    ap::setSimdFilterDefault(opt.simdFilter);

    std::vector<ap::ExperimentSpec> specs = ap::figure5Specs(opt.ops);
    // --vcpus / --tlb-coherence reach the batch specs, so the service
    // fleet (and the byte-compared in-process baseline) exercises the
    // multi-vCPU batched replay path end to end.
    for (ap::ExperimentSpec &s : specs) {
        s.numVcpus = opt.vcpus;
        s.tlbCoherence = opt.tlbCoherence;
    }
    std::printf("apsimd service throughput: %zu-cell batch x %llu ops, "
                "%u vcpu%s, %u hardware threads\n",
                specs.size(), static_cast<unsigned long long>(opt.ops),
                opt.vcpus, opt.vcpus == 1 ? "" : "s",
                std::thread::hardware_concurrency());

    // In-process baseline: the same engine the workers run (trace
    // cache + snapshot cache + machine pool), one process, cold
    // caches — exactly the work one worker does for the whole batch.
    auto t0 = std::chrono::steady_clock::now();
    std::vector<ap::RunResult> baseline;
    {
        ap::TraceCache traces;
        ap::SnapshotCache snaps;
        snaps.setByteBudget(opt.snapshotPoolBytes());
        ap::MachinePool pool;
        baseline = ap::runExperiments(
            specs, 1, ap::snapshotCellFn(traces, snaps, true, &pool));
    }
    double baseline_sec = secondsSince(t0);
    std::vector<std::string> expected = renderExpected(baseline);
    std::printf("  in-process (1 thread):  %7.3f s  %7.2f cells/s\n",
                baseline_sec, specs.size() / baseline_sec);

    const unsigned worker_counts[] = {1, 2, 4, 8};
    std::vector<ServicePoint> points;
    for (unsigned workers : worker_counts) {
        ap::service::ServiceOptions sopt;
        sopt.tcpPort = 0;
        sopt.workers = workers;
        sopt.snapshotPoolBytes = opt.snapshotPoolBytes();
        // start() pre-forks the fleet; it must happen while this
        // process is single-threaded (the serve thread comes after).
        ap::service::ServiceServer server(sopt);
        std::string err;
        if (!server.start(&err)) {
            std::fprintf(stderr, "bench_service: %s\n", err.c_str());
            return 1;
        }
        std::thread serve_thread([&server] { server.serve(); });

        ap::service::ServiceClient client;
        if (!client.connectTcp(server.port(), &err)) {
            std::fprintf(stderr, "bench_service: %s\n", err.c_str());
            server.requestStop();
            serve_thread.join();
            return 1;
        }

        ServicePoint pt;
        pt.workers = workers;
        std::vector<std::string> got(specs.size());
        t0 = std::chrono::steady_clock::now();
        ap::service::BatchOutcome outcome = client.runBatch(
            specs,
            [&](ap::service::FrameType, const std::string &json) {
                std::int64_t cell = ap::service::cellOfFrame(json);
                std::string run = ap::service::runObjectOfFrame(json);
                if (cell >= 0 &&
                    cell < static_cast<std::int64_t>(got.size()) &&
                    !run.empty())
                    got[static_cast<std::size_t>(cell)] =
                        std::move(run);
            });
        pt.seconds = secondsSince(t0);
        client.close();
        server.requestStop();
        serve_thread.join();

        if (!outcome.ok || outcome.errors != 0) {
            std::fprintf(stderr,
                         "bench_service: batch failed at %u workers: "
                         "%s (%u errors)\n",
                         workers, outcome.error.c_str(),
                         outcome.errors);
            return 1;
        }
        pt.identical = got == expected;
        pt.cellsPerSec = specs.size() / pt.seconds;
        pt.affinityHits = server.stats().affinityHits;
        pt.steals = server.stats().steals;
        points.push_back(pt);
        std::printf("  service (%u worker%s):  %7.3f s  %7.2f cells/s"
                    "  affinity %llu  steals %llu%s\n",
                    workers, workers == 1 ? "" : "s", pt.seconds,
                    pt.cellsPerSec,
                    static_cast<unsigned long long>(pt.affinityHits),
                    static_cast<unsigned long long>(pt.steals),
                    pt.identical ? "" : "  NOT IDENTICAL (BUG)");
    }

    bool identical = true;
    for (const ServicePoint &pt : points)
        identical = identical && pt.identical;
    double one_worker_sec = points[0].seconds;
    double scale4 = 0;
    for (const ServicePoint &pt : points) {
        if (pt.workers == 4)
            scale4 = one_worker_sec / pt.seconds;
    }
    std::printf("  scaling vs 1 worker:");
    for (const ServicePoint &pt : points)
        std::printf("  %ux=%.2f", pt.workers,
                    one_worker_sec / pt.seconds);
    std::printf("\n  results bit-identical to in-process: %s\n",
                identical ? "yes" : "NO (BUG)");

    std::ofstream json(json_path);
    json << "{\n"
         << "  \"cells\": " << specs.size() << ",\n"
         << "  \"ops_per_cell\": " << opt.ops << ",\n"
         << "  \"vcpus\": " << opt.vcpus << ",\n"
         << "  \"host\": ";
    ap::writeHostMetaJson(json, ap::currentHostMeta(0));
    json << ",\n"
         << "  \"in_process\": {\"seconds\": " << baseline_sec
         << ", \"cells_per_sec\": " << specs.size() / baseline_sec
         << "},\n"
         << "  \"service\": [";
    for (std::size_t i = 0; i < points.size(); ++i) {
        const ServicePoint &pt = points[i];
        json << (i ? ", " : "") << "\n    {\"workers\": " << pt.workers
             << ", \"seconds\": " << pt.seconds
             << ", \"cells_per_sec\": " << pt.cellsPerSec
             << ", \"speedup_vs_1worker\": "
             << one_worker_sec / pt.seconds
             << ", \"affinity_hits\": " << pt.affinityHits
             << ", \"steals\": " << pt.steals << "}";
    }
    json << "\n  ],\n"
         << "  \"scale_at_4_workers\": " << scale4 << ",\n"
         << "  \"deterministic\": " << (identical ? "true" : "false")
         << "\n}\n";
    std::printf("  wrote %s\n", json_path.c_str());

    if (!identical)
        return 1;
    if (require_scale) {
        // Four workers cannot run 3x faster than one without four
        // cores to run on; the gate only means something on capable
        // hosts (the CI release runner qualifies).
        if (std::thread::hardware_concurrency() < 4) {
            std::fprintf(stderr,
                         "SKIP: --require-scale needs >=4 hardware "
                         "threads (host has %u)\n",
                         std::thread::hardware_concurrency());
        } else if (scale4 < 3.0) {
            std::fprintf(stderr,
                         "FAIL: 4-worker service is only %.2fx faster "
                         "than 1 worker; the scale gate requires "
                         ">=3x\n",
                         scale4);
            return 1;
        }
    }
    return 0;
}
