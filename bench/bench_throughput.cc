/**
 * @file
 * Experiment-engine throughput: runs the Figure 5 matrix serially and
 * with the parallel runner, reports wall-clock, simulated accesses per
 * second, speedup, and whether the parallel results are bit-identical
 * to the serial ones. Machine-readable copy goes to
 * BENCH_throughput.json.
 *
 * Usage: bench_throughput [--ops N] [--jobs N] [--json PATH]
 *        --jobs 0 (default) uses every hardware thread.
 */

#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "base/logging.hh"
#include "sim/experiment.hh"
#include "sim/parallel_runner.hh"

namespace
{

/** Fields that must match cell-for-cell between serial and parallel. */
bool
sameResult(const ap::RunResult &a, const ap::RunResult &b)
{
    bool same = a.workload == b.workload && a.mode == b.mode &&
                a.pageSize == b.pageSize &&
                a.instructions == b.instructions &&
                a.idealCycles == b.idealCycles &&
                a.walkCycles == b.walkCycles &&
                a.trapCycles == b.trapCycles &&
                a.tlbMisses == b.tlbMisses && a.walks == b.walks &&
                a.traps == b.traps &&
                a.guestPageFaults == b.guestPageFaults &&
                a.avgWalkRefs == b.avgWalkRefs;
    for (int c = 0; c < 6; ++c)
        same = same && a.coverage[c] == b.coverage[c];
    return same;
}

double
secondsSince(std::chrono::steady_clock::time_point start)
{
    using fsec = std::chrono::duration<double>;
    return fsec(std::chrono::steady_clock::now() - start).count();
}

} // namespace

int
main(int argc, char **argv)
{
    ap::setQuietLogging(true);
    std::uint64_t ops = 200'000;
    unsigned jobs = 0;
    std::string json_path = "BENCH_throughput.json";
    for (int i = 1; i < argc; ++i) {
        if (!std::strcmp(argv[i], "--ops") && i + 1 < argc) {
            ops = std::stoull(argv[++i]);
        } else if (!std::strcmp(argv[i], "--jobs") && i + 1 < argc) {
            jobs = static_cast<unsigned>(std::stoul(argv[++i]));
        } else if (!std::strcmp(argv[i], "--json") && i + 1 < argc) {
            json_path = argv[++i];
        } else {
            std::cerr << "usage: " << argv[0]
                      << " [--ops N] [--jobs N] [--json PATH]\n";
            return 1;
        }
    }
    jobs = ap::effectiveJobs(jobs);

    std::vector<ap::ExperimentSpec> specs = ap::figure5Specs(ops);
    std::printf("experiment-engine throughput: %zu cells x %llu ops, "
                "%u hardware threads\n",
                specs.size(),
                static_cast<unsigned long long>(ops),
                std::thread::hardware_concurrency());

    auto t0 = std::chrono::steady_clock::now();
    std::vector<ap::RunResult> serial = ap::runExperiments(specs, 1);
    double serial_sec = secondsSince(t0);

    t0 = std::chrono::steady_clock::now();
    std::vector<ap::RunResult> parallel = ap::runExperiments(specs, jobs);
    double parallel_sec = secondsSince(t0);

    std::uint64_t accesses = 0;
    for (const ap::RunResult &r : serial)
        accesses += r.instructions;

    bool identical = serial.size() == parallel.size();
    for (std::size_t i = 0; identical && i < serial.size(); ++i)
        identical = sameResult(serial[i], parallel[i]);

    double serial_aps = accesses / serial_sec;
    double parallel_aps = accesses / parallel_sec;
    double speedup = serial_sec / parallel_sec;

    std::printf("  serial   (jobs=1):  %7.3f s  %12.0f accesses/s\n",
                serial_sec, serial_aps);
    std::printf("  parallel (jobs=%u):  %7.3f s  %12.0f accesses/s\n",
                jobs, parallel_sec, parallel_aps);
    std::printf("  speedup: %.2fx   results bit-identical: %s\n", speedup,
                identical ? "yes" : "NO (BUG)");

    std::ofstream json(json_path);
    json << "{\n"
         << "  \"cells\": " << specs.size() << ",\n"
         << "  \"ops_per_cell\": " << ops << ",\n"
         << "  \"total_accesses\": " << accesses << ",\n"
         << "  \"hardware_concurrency\": "
         << std::thread::hardware_concurrency() << ",\n"
         << "  \"serial\": {\"jobs\": 1, \"seconds\": " << serial_sec
         << ", \"accesses_per_sec\": " << serial_aps << "},\n"
         << "  \"parallel\": {\"jobs\": " << jobs
         << ", \"seconds\": " << parallel_sec
         << ", \"accesses_per_sec\": " << parallel_aps << "},\n"
         << "  \"speedup\": " << speedup << ",\n"
         << "  \"deterministic\": " << (identical ? "true" : "false")
         << "\n}\n";
    std::printf("  wrote %s\n", json_path.c_str());

    return identical ? 0 : 1;
}
