/**
 * @file
 * Experiment-engine throughput: runs the Figure 5 matrix several ways —
 * serial cold, parallel cold, parallel with the trace cache replaying
 * per-event, parallel with the batched fast path, and parallel with
 * the snapshot cache forking warm machine images — and reports
 * wall-clock, simulated accesses per second, speedups, and whether
 * every variant is bit-identical to the serial baseline.
 * Machine-readable copy goes to BENCH_throughput.json.
 *
 * The snapshot rows measure *regeneration*: a first pass warms both
 * caches (recording traces and freezing each cell at its measurement
 * boundary), then a second pass re-runs the matrix. With only the
 * trace cache the second pass replays warmup every time; with the
 * snapshot cache it restores the frozen image and runs just the
 * measured region.
 *
 * Every variant runs once untimed before its timed run, so the first
 * variant measured no longer pays the process's one-time costs (heap
 * high-water growth, pool population) that used to skew the ratios.
 *
 * Usage: bench_throughput [common bench flags] [--json PATH]
 *                         [--require-cache-speedup]
 *                         [--require-snapshot-speedup]
 *                         [--require-engine-speedup]
 *        --jobs 0 (default) uses every hardware thread.
 *        --require-cache-speedup exits nonzero unless cached+batched
 *          beats cold generation at the same job count (the CI gate).
 *        --require-snapshot-speedup exits nonzero unless snapshot-fork
 *          regeneration beats trace-replay regeneration.
 *        --require-engine-speedup exits nonzero unless the cached-fork
 *          path beats cold generation at the same job count by at
 *          least 2.2x (conservative CI floor; see EXPERIMENTS.md for
 *          measured values).
 */

#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "base/logging.hh"
#include "bench_common.hh"
#include "sim/experiment.hh"
#include "sim/machine.hh"
#include "sim/parallel_runner.hh"
#include "sim/report.hh"
#include "trace/trace_cache.hh"

namespace
{

/** Fields that must match cell-for-cell between variants. */
bool
sameResult(const ap::RunResult &a, const ap::RunResult &b)
{
    bool same = a.workload == b.workload && a.mode == b.mode &&
                a.pageSize == b.pageSize &&
                a.instructions == b.instructions &&
                a.idealCycles == b.idealCycles &&
                a.walkCycles == b.walkCycles &&
                a.trapCycles == b.trapCycles &&
                a.tlbMisses == b.tlbMisses && a.walks == b.walks &&
                a.traps == b.traps &&
                a.guestPageFaults == b.guestPageFaults &&
                a.avgWalkRefs == b.avgWalkRefs;
    for (int c = 0; c < 6; ++c)
        same = same && a.coverage[c] == b.coverage[c];
    return same;
}

bool
allSame(const std::vector<ap::RunResult> &a,
        const std::vector<ap::RunResult> &b)
{
    if (a.size() != b.size())
        return false;
    for (std::size_t i = 0; i < a.size(); ++i) {
        if (!sameResult(a[i], b[i]))
            return false;
    }
    return true;
}

double
secondsSince(std::chrono::steady_clock::time_point start)
{
    using fsec = std::chrono::duration<double>;
    return fsec(std::chrono::steady_clock::now() - start).count();
}

struct Variant
{
    const char *name;
    double seconds = 0;
    double accessesPerSec = 0;
    bool identical = true;
};

} // namespace

int
main(int argc, char **argv)
{
    ap::setQuietLogging(true);
    // Matches bench_figure5_overheads' default so the recorded JSON
    // reflects the whole-matrix regeneration the caches accelerate.
    ap::BenchOptions opt(2'000'000);
    opt.jobs = 0;
    bool require_cache_speedup = false;
    bool require_snapshot_speedup = false;
    bool require_engine_speedup = false;
    std::string json_path = "BENCH_throughput.json";
    for (int i = 1; i < argc; ++i) {
        if (opt.consume(argc, argv, i))
            continue;
        if (!std::strcmp(argv[i], "--json") && i + 1 < argc)
            json_path = argv[++i];
        else if (!std::strcmp(argv[i], "--require-cache-speedup"))
            require_cache_speedup = true;
        else if (!std::strcmp(argv[i], "--require-snapshot-speedup"))
            require_snapshot_speedup = true;
        else if (!std::strcmp(argv[i], "--require-engine-speedup"))
            require_engine_speedup = true;
        else
            opt.reject(argv, i,
                       "[--json PATH] [--require-cache-speedup]"
                       " [--require-snapshot-speedup]"
                       " [--require-engine-speedup]");
    }
    unsigned jobs = ap::effectiveJobs(opt.jobs);
    ap::setBatchedWalksDefault(opt.batchedWalks);
    ap::setSimdFilterDefault(opt.simdFilter);
    // On a single-hardware-thread host the "parallel" pass still runs
    // (it is the cold baseline for the cache/engine ratios) but its
    // scaling number is meaningless — mark it skipped and exempt it
    // from validation instead of reporting a bogus <1x speedup.
    const bool parallel_skipped =
        std::thread::hardware_concurrency() <= 1 || jobs <= 1;

    std::vector<ap::ExperimentSpec> specs = ap::figure5Specs(opt.ops);
    std::printf("experiment-engine throughput: %zu cells x %llu ops, "
                "%u hardware threads\n",
                specs.size(), static_cast<unsigned long long>(opt.ops),
                std::thread::hardware_concurrency());

    // Untimed warmup: the process's first matrix pass grows the heap
    // to its high-water mark and populates the per-thread pools; run
    // it before any clock starts so that one-time cost is not charged
    // to whichever variant happens to be measured first.
    ap::runExperiments(specs, 1);

    auto t0 = std::chrono::steady_clock::now();
    std::vector<ap::RunResult> serial = ap::runExperiments(specs, 1);
    double serial_sec = secondsSince(t0);

    std::uint64_t accesses = 0;
    for (const ap::RunResult &r : serial)
        accesses += r.instructions;

    Variant cold{"cold"};
    Variant replay{"cached-replay"};
    Variant batched{"cached-batched"};
    Variant regen{"cached-regen"};
    Variant snapfork{"snapshot-fork"};
    std::uint64_t cache_records = 0, cache_replays = 0;
    std::uint64_t snap_captures = 0, snap_forks = 0;

    {
        // Warmup at this job count (spins up the worker pool and its
        // per-thread state), then the timed run.
        ap::runExperiments(specs, jobs);
        t0 = std::chrono::steady_clock::now();
        std::vector<ap::RunResult> r = ap::runExperiments(specs, jobs);
        cold.seconds = secondsSince(t0);
        cold.identical = allSame(serial, r);
    }
    {
        // Fresh cache per variant so each pays its own recording cost;
        // the warmup pass uses a throwaway cache for the same reason.
        {
            ap::TraceCache warm_cache;
            ap::runExperiments(
                specs, jobs,
                ap::cachedCellFn(warm_cache, /*batched=*/false));
        }
        ap::TraceCache cache;
        t0 = std::chrono::steady_clock::now();
        std::vector<ap::RunResult> r = ap::runExperiments(
            specs, jobs, ap::cachedCellFn(cache, /*batched=*/false));
        replay.seconds = secondsSince(t0);
        replay.identical = allSame(serial, r);
    }
    {
        {
            ap::TraceCache warm_cache;
            ap::runExperiments(
                specs, jobs,
                ap::cachedCellFn(warm_cache, /*batched=*/true));
        }
        ap::TraceCache cache;
        t0 = std::chrono::steady_clock::now();
        std::vector<ap::RunResult> r = ap::runExperiments(
            specs, jobs, ap::cachedCellFn(cache, /*batched=*/true));
        batched.seconds = secondsSince(t0);
        batched.identical = allSame(serial, r);
        cache_records = cache.records();
        cache_replays = cache.replays();

        // Regeneration baseline: the cache is warm, every cell
        // replays its full trace (warmup + measured region).
        t0 = std::chrono::steady_clock::now();
        std::vector<ap::RunResult> r2 = ap::runExperiments(
            specs, jobs, ap::cachedCellFn(cache, /*batched=*/true));
        regen.seconds = secondsSince(t0);
        regen.identical = allSame(serial, r2);
    }
    Variant pooled{"snapshot-pooled"};
    std::uint64_t snap_evictions = 0, snap_resident = 0;
    std::uint64_t pool_creates = 0, pool_reuses = 0;
    ap::Machine::BatchFilterStats filter_stats;
    {
        // Snapshot regeneration: warm both caches, then re-run the
        // matrix — every cell restores its frozen warm image and runs
        // only the measured region. The cache-population pass doubles
        // as this variant's untimed warmup.
        ap::TraceCache cache;
        ap::SnapshotCache snaps;
        snaps.setByteBudget(opt.snapshotPoolBytes());
        ap::runExperiments(specs, jobs,
                           ap::snapshotCellFn(cache, snaps));
        // Attribute the filter telemetry to the timed cached-fork
        // pass — the measured region the engine gate scores.
        ap::Machine::resetBatchFilterStats();
        t0 = std::chrono::steady_clock::now();
        std::vector<ap::RunResult> r = ap::runExperiments(
            specs, jobs, ap::snapshotCellFn(cache, snaps));
        snapfork.seconds = secondsSince(t0);
        snapfork.identical = allSame(serial, r);
        filter_stats = ap::Machine::batchFilterStats();
        snap_captures = snaps.captures();
        snap_forks = snaps.forks();
        snap_evictions = snaps.evictions();
        snap_resident = snaps.residentBytes();

        // Fork-path delta: same warm caches, but forked cells lease
        // reused Machine storage from a pool instead of constructing
        // a fresh Machine per cell.
        ap::MachinePool pool;
        ap::runExperiments(
            specs, jobs, ap::snapshotCellFn(cache, snaps, true, &pool));
        t0 = std::chrono::steady_clock::now();
        std::vector<ap::RunResult> r2 = ap::runExperiments(
            specs, jobs, ap::snapshotCellFn(cache, snaps, true, &pool));
        pooled.seconds = secondsSince(t0);
        pooled.identical = allSame(serial, r2);
        pool_creates = pool.creates();
        pool_reuses = pool.reuses();
    }

    for (Variant *v :
         {&cold, &replay, &batched, &regen, &snapfork, &pooled})
        v->accessesPerSec = accesses / v->seconds;
    double serial_aps = accesses / serial_sec;

    bool identical = cold.identical && replay.identical &&
                     batched.identical && regen.identical &&
                     snapfork.identical && pooled.identical;
    double parallel_speedup = serial_sec / cold.seconds;
    double cache_speedup = cold.seconds / batched.seconds;
    double snapshot_speedup = regen.seconds / snapfork.seconds;
    // The machine-pool fork-path delta: warm-fork regeneration with
    // reused machine storage vs with per-cell construction.
    double pool_speedup = snapfork.seconds / pooled.seconds;
    // The whole engine pass in one number: warm cached-fork
    // regeneration vs cold generation at the same job count.
    double engine_speedup = cold.seconds / snapfork.seconds;

    std::printf("  serial cold    (jobs=1):  %7.3f s  %12.0f accesses/s\n",
                serial_sec, serial_aps);
    for (const Variant *v :
         {&cold, &replay, &batched, &regen, &snapfork, &pooled}) {
        std::printf("  %-14s (jobs=%u):  %7.3f s  %12.0f accesses/s%s\n",
                    v->name, jobs, v->seconds, v->accessesPerSec,
                    v->identical ? "" : "  NOT IDENTICAL (BUG)");
    }
    if (parallel_skipped) {
        std::printf("  parallel speedup: skipped (single hardware "
                    "thread)   trace-cache speedup (vs cold, same "
                    "jobs): %.2fx\n",
                    cache_speedup);
    } else {
        std::printf("  parallel speedup: %.2fx   trace-cache speedup "
                    "(vs cold, same jobs): %.2fx\n",
                    parallel_speedup, cache_speedup);
    }
    std::printf("  snapshot regeneration speedup (fork vs full "
                "replay): %.2fx\n",
                snapshot_speedup);
    std::printf("  engine speedup (cached-fork vs cold, same jobs): "
                "%.2fx\n",
                engine_speedup);
    std::printf("  machine-pool fork-path delta (pooled vs fresh "
                "construction): %.2fx\n",
                pool_speedup);
    std::printf("  cache: %llu recorded, %llu replayed   snapshots: "
                "%llu captured, %llu forked\n",
                static_cast<unsigned long long>(cache_records),
                static_cast<unsigned long long>(cache_replays),
                static_cast<unsigned long long>(snap_captures),
                static_cast<unsigned long long>(snap_forks));
    std::printf("  snapshot pool: %llu evictions, %llu resident bytes "
                "(budget %llu MiB)   machine pool: %llu creates, "
                "%llu reuses\n",
                static_cast<unsigned long long>(snap_evictions),
                static_cast<unsigned long long>(snap_resident),
                static_cast<unsigned long long>(opt.snapshotPoolMb),
                static_cast<unsigned long long>(pool_creates),
                static_cast<unsigned long long>(pool_reuses));
    // Density of the vectorized filter over the timed cached-fork
    // pass: how much of the stream the block sweeps saw, how much
    // they retired without touching the TLB arrays, and how much the
    // run-level fast path never even swept.
    const double lane_hit_density =
        filter_stats.lanesScanned
            ? double(filter_stats.lanesFiltered) /
                  double(filter_stats.lanesScanned)
            : 0.0;
    std::printf("  filter: %llu blocks, %llu lanes (%.1f%% filtered), "
                "%llu bulk retires, %llu run fast-paths "
                "(%llu lanes)\n",
                static_cast<unsigned long long>(
                    filter_stats.blocksScanned),
                static_cast<unsigned long long>(
                    filter_stats.lanesScanned),
                100.0 * lane_hit_density,
                static_cast<unsigned long long>(
                    filter_stats.bulkRetires),
                static_cast<unsigned long long>(
                    filter_stats.runFastpaths),
                static_cast<unsigned long long>(
                    filter_stats.runFastpathLanes));
    std::printf("  results bit-identical: %s\n",
                identical ? "yes" : "NO (BUG)");

    std::ofstream json(json_path);
    json << "{\n"
         << "  \"cells\": " << specs.size() << ",\n"
         << "  \"ops_per_cell\": " << opt.ops << ",\n"
         << "  \"total_accesses\": " << accesses << ",\n"
         << "  \"host\": ";
    ap::writeHostMetaJson(json, ap::currentHostMeta(jobs));
    json << ",\n"
         << "  \"serial\": {\"jobs\": 1, \"seconds\": " << serial_sec
         << ", \"accesses_per_sec\": " << serial_aps << "},\n"
         << "  \"parallel\": {\"jobs\": " << jobs
         << ", \"seconds\": " << cold.seconds
         << ", \"accesses_per_sec\": " << cold.accessesPerSec
         << ", \"skipped\": " << (parallel_skipped ? "true" : "false")
         << "},\n"
         << "  \"trace_cache\": {\n"
         << "    \"records\": " << cache_records << ",\n"
         << "    \"replays\": " << cache_replays << ",\n"
         << "    \"replay\": {\"jobs\": " << jobs
         << ", \"seconds\": " << replay.seconds
         << ", \"accesses_per_sec\": " << replay.accessesPerSec << "},\n"
         << "    \"batched\": {\"jobs\": " << jobs
         << ", \"seconds\": " << batched.seconds
         << ", \"accesses_per_sec\": " << batched.accessesPerSec
         << "},\n"
         << "    \"regen\": {\"jobs\": " << jobs
         << ", \"seconds\": " << regen.seconds
         << ", \"accesses_per_sec\": " << regen.accessesPerSec << "},\n"
         << "    \"speedup_vs_cold\": " << cache_speedup << "\n"
         << "  },\n"
         << "  \"snapshot_cache\": {\n"
         << "    \"captures\": " << snap_captures << ",\n"
         << "    \"forks\": " << snap_forks << ",\n"
         << "    \"evictions\": " << snap_evictions << ",\n"
         << "    \"resident_bytes\": " << snap_resident << ",\n"
         << "    \"pool_budget_mb\": " << opt.snapshotPoolMb << ",\n"
         << "    \"fork\": {\"jobs\": " << jobs
         << ", \"seconds\": " << snapfork.seconds
         << ", \"accesses_per_sec\": " << snapfork.accessesPerSec
         << "},\n"
         << "    \"speedup_vs_replay_regen\": " << snapshot_speedup
         << "\n"
         << "  },\n"
         << "  \"machine_pool\": {\n"
         << "    \"creates\": " << pool_creates << ",\n"
         << "    \"reuses\": " << pool_reuses << ",\n"
         << "    \"pooled\": {\"jobs\": " << jobs
         << ", \"seconds\": " << pooled.seconds
         << ", \"accesses_per_sec\": " << pooled.accessesPerSec
         << "},\n"
         << "    \"fork_path_delta\": " << pool_speedup << "\n"
         << "  },\n"
         << "  \"filter\": {\n"
         << "    \"simd\": " << (opt.simdFilter ? "true" : "false")
         << ",\n"
         << "    \"blocks_scanned\": " << filter_stats.blocksScanned
         << ",\n"
         << "    \"lanes_scanned\": " << filter_stats.lanesScanned
         << ",\n"
         << "    \"lanes_filtered\": " << filter_stats.lanesFiltered
         << ",\n"
         << "    \"hit_mask_density\": " << lane_hit_density << ",\n"
         << "    \"bulk_retires\": " << filter_stats.bulkRetires
         << ",\n"
         << "    \"run_fastpaths\": " << filter_stats.runFastpaths
         << ",\n"
         << "    \"run_fastpath_lanes\": "
         << filter_stats.runFastpathLanes << "\n"
         << "  },\n"
         << "  \"engine_speedup_vs_cold\": " << engine_speedup << ",\n"
         << "  \"speedup\": " << parallel_speedup << ",\n"
         << "  \"deterministic\": " << (identical ? "true" : "false")
         << "\n}\n";
    std::printf("  wrote %s\n", json_path.c_str());

    if (!identical)
        return 1;
    if (require_cache_speedup && cache_speedup <= 1.0) {
        std::fprintf(stderr,
                     "FAIL: cached+batched replay (%.3f s) is not "
                     "faster than cold generation (%.3f s)\n",
                     batched.seconds, cold.seconds);
        return 1;
    }
    if (require_snapshot_speedup && snapshot_speedup <= 1.0) {
        std::fprintf(stderr,
                     "FAIL: snapshot-fork regeneration (%.3f s) is not "
                     "faster than trace-replay regeneration (%.3f s)\n",
                     snapfork.seconds, regen.seconds);
        return 1;
    }
    // 2.2x is a deliberately conservative CI floor (shared runners
    // are noisy); single-core measurements sit at 2.3-3.2x — see
    // EXPERIMENTS.md.
    if (require_engine_speedup && engine_speedup < 2.2) {
        std::fprintf(stderr,
                     "FAIL: cached-fork regeneration (%.3f s) is only "
                     "%.2fx faster than cold generation (%.3f s); "
                     "the engine gate requires >=2.2x\n",
                     snapfork.seconds, engine_speedup, cold.seconds);
        return 1;
    }
    return 0;
}
