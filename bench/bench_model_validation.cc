/**
 * @file
 * Validates the paper's evaluation methodology against direct
 * measurement. The authors could not run agile paging on real
 * hardware, so Section VI projects its performance with a two-step
 * linear model: measure shadow and nested runs, classify each agile
 * TLB miss by switch level, and combine the constituent per-miss
 * costs (pessimistically charging leaf-switched misses half the
 * nested premium). Our simulator executes agile paging directly, so
 * we can quantify how conservative that model is.
 */

#include <cstdio>
#include <string>

#include "base/logging.hh"
#include "bench_common.hh"
#include "sim/experiment.hh"
#include "sim/perf_model.hh"
#include "trace/trace_cache.hh"

int
main(int argc, char **argv)
{
    ap::setQuietLogging(true);
    ap::BenchOptions opt(1'000'000);
    for (int i = 1; i < argc; ++i) {
        if (!opt.consume(argc, argv, i))
            opt.reject(argv, i, "");
    }
    ap::TraceCache traces;
    ap::SnapshotCache snaps(opt.snapshotDir);

    std::printf("Two-step linear model (Section VI) vs direct "
                "simulation of agile paging\n\n");
    std::printf("%-11s %16s %16s %9s\n", "workload", "projected walk%",
                "measured walk%", "model err");
    for (const std::string &wl : ap::workloadNames()) {
        auto run = [&](ap::VirtMode mode) {
            ap::ExperimentSpec spec;
            spec.workload = wl;
            spec.mode = mode;
            spec.operations = opt.ops;
            spec.pageSize = opt.pageSize;
            if (!opt.traceCache)
                return ap::runExperiment(spec);
            if (!opt.snapshotCache)
                return ap::runExperimentCached(traces, spec);
            return ap::runExperimentSnapshotted(traces, snaps, spec);
        };
        ap::RunResult shadow = run(ap::VirtMode::Shadow);
        ap::RunResult nested = run(ap::VirtMode::Nested);
        ap::RunResult agile = run(ap::VirtMode::Agile);

        double projected_cycles =
            ap::projectAgileWalkCycles(shadow, nested, agile);
        double projected =
            projected_cycles / double(agile.idealCycles) * 100.0;
        double measured = agile.walkOverhead() * 100.0;
        std::printf("%-11s %15.2f%% %15.2f%% %+8.2f%%\n", wl.c_str(),
                    projected, measured, projected - measured);
    }
    std::printf("\nA positive error means the paper's model is "
                "pessimistic (it assumed leaf-switched\nmisses pay half "
                "the full nested premium); the paper notes the same "
                "bias:\n\"This assumption leads to higher overheads for "
                "agile paging than with real hardware.\"\n");
    return 0;
}
