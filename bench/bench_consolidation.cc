/**
 * @file
 * Consolidation experiment: pairs of Table V workloads sharing one VM
 * under round-robin scheduling — the cloud-consolidation scenario the
 * paper's introduction motivates. Shows how frequent guest context
 * switches shift the technique ranking and how the sptr cache
 * (Section IV) restores agile's advantage.
 */

#include <cstdio>
#include <string>

#include "base/logging.hh"
#include "sim/experiment.hh"
#include "sim/scheduler.hh"

namespace
{

using namespace ap;

ConsolidationResult
run(const std::string &a, const std::string &b, VirtMode mode,
    bool hw_opts, std::uint64_t ops)
{
    WorkloadParams pa = defaultParamsFor(a);
    WorkloadParams pb = defaultParamsFor(b);
    pa.footprintBytes /= 2;
    pb.footprintBytes /= 2;
    pa.operations = pb.operations = ops;
    // Size the machine for both footprints.
    WorkloadParams sizing = pa;
    sizing.footprintBytes = pa.footprintBytes + pb.footprintBytes;
    SimConfig cfg =
        configFor(mode, PageSize::Size4K, sizing, hw_opts);
    Machine machine(cfg);
    auto wa = makeWorkload(a, pa);
    auto wb = makeWorkload(b, pb);
    Scheduler sched(machine, 2'000);
    sched.add(*wa);
    sched.add(*wb);
    return sched.run();
}

void
row(const std::string &a, const std::string &b, std::uint64_t ops)
{
    std::printf("%-22s", (a + "+" + b).c_str());
    struct
    {
        VirtMode mode;
        bool hw;
    } configs[] = {{VirtMode::Nested, false},
                   {VirtMode::Shadow, false},
                   {VirtMode::Agile, false},
                   {VirtMode::Agile, true}};
    for (auto &c : configs) {
        ConsolidationResult r = run(a, b, c.mode, c.hw, ops);
        std::printf(" %9.1f%%", r.machine.totalOverhead() * 100);
    }
    std::printf("\n");
}

} // namespace

int
main(int argc, char **argv)
{
    ap::setQuietLogging(true);
    std::uint64_t ops = argc > 1 ? std::stoull(argv[1]) : 500'000;
    std::printf("Consolidated pairs (round-robin, 2k-step quanta); "
                "total overhead per technique\n\n");
    std::printf("%-22s %10s %10s %10s %10s\n", "pair", "nested",
                "shadow", "agile", "agile+hw");
    row("graph500", "memcached", ops);
    row("mcf", "dedup", ops);
    row("canneal", "gcc", ops);
    std::printf("\nThe hardware sptr cache removes the per-quantum "
                "context-switch traps that\notherwise erode agile's "
                "advantage under consolidation (Section IV).\n");
    return 0;
}
