/**
 * @file
 * Consolidation experiment: pairs of Table V workloads sharing one VM
 * under round-robin scheduling — the cloud-consolidation scenario the
 * paper's introduction motivates. Shows how frequent guest context
 * switches shift the technique ranking and how the sptr cache
 * (Section IV) restores agile's advantage.
 *
 * The interleaved event stream of a pair is mode-independent, so the
 * first technique records per-slot scheduler traces and the other
 * three replay them. With --snapshot-dir, the traces and each cell's
 * warm-boundary machine image persist across invocations: a repeat
 * run resumes every cell directly at the measurement boundary.
 */

#include <cstdio>
#include <string>

#include "base/logging.hh"
#include "bench_common.hh"
#include "sim/experiment.hh"
#include "sim/scheduler.hh"
#include "sim/snapshot.hh"
#include "trace/trace.hh"

namespace
{

using namespace ap;

constexpr std::uint64_t kQuantum = 2'000;

/** Scheduler traces for one pair, shared across the pair's four
 *  technique cells. */
struct PairTraces
{
    Trace a, b;
    bool ready = false;
};

std::string
tracePath(const BenchOptions &opt, const std::string &a,
          const std::string &b, const WorkloadParams &pa,
          const WorkloadParams &pb, int slot)
{
    char buf[128];
    std::snprintf(buf, sizeof(buf), "/consol_%s+%s_o%llu_s%llux%llu_q%llu_p%u_%d.aptrace",
                  a.c_str(), b.c_str(),
                  (unsigned long long)pa.operations,
                  (unsigned long long)pa.seed,
                  (unsigned long long)pb.seed,
                  (unsigned long long)kQuantum,
                  unsigned(opt.pageSize == PageSize::Size2M ? 2 : 4),
                  slot);
    return opt.snapshotDir + buf;
}

ConsolidationResult
runCell(const std::string &a, const std::string &b, VirtMode mode,
        bool hw_opts, const BenchOptions &opt, PairTraces &shared,
        SnapshotCache *snaps)
{
    WorkloadParams pa = defaultParamsFor(a);
    WorkloadParams pb = defaultParamsFor(b);
    pa.footprintBytes /= 2;
    pb.footprintBytes /= 2;
    pa.operations = pb.operations = opt.ops;
    if (opt.seedSet) {
        pa.seed = opt.seed;
        pb.seed = opt.seed + 1;
    }
    // Size the machine for both footprints.
    WorkloadParams sizing = pa;
    sizing.footprintBytes = pa.footprintBytes + pb.footprintBytes;
    SimConfig cfg = configFor(mode, opt.pageSize, sizing, hw_opts);
    Machine machine(cfg);
    Scheduler sched(machine, kQuantum);

    if (!opt.traceCache) {
        auto wa = makeWorkload(a, pa);
        auto wb = makeWorkload(b, pb);
        ap_assert(wa && wb, "unknown workload in pair");
        sched.add(*wa);
        sched.add(*wb);
        return sched.run();
    }

    if (!shared.ready && !opt.snapshotDir.empty() &&
        readTraceFile(tracePath(opt, a, b, pa, pb, 0), shared.a) &&
        readTraceFile(tracePath(opt, a, b, pa, pb, 1), shared.b)) {
        shared.ready = true;
    }

    SnapshotKey key;
    key.workload = "consolidated:" + a + "+" + b;
    key.operations = opt.ops;
    key.seed = pa.seed;
    key.footprintBytes = sizing.footprintBytes;
    key.configDigest = simConfigDigest(cfg);

    if (!shared.ready) {
        // First technique of the pair: record the interleaved streams.
        auto wa = makeWorkload(a, pa);
        auto wb = makeWorkload(b, pb);
        ap_assert(wa && wb, "unknown workload in pair");
        sched.addRecorded(*wa, shared.a);
        sched.addRecorded(*wb, shared.b);
        sched.warmup();
        if (snaps)
            snaps->obtain(key, [&] { return captureSnapshot(machine); });
        ConsolidationResult r = sched.runMeasured();
        shared.ready = true;
        if (!opt.snapshotDir.empty()) {
            writeTraceFile(shared.a, tracePath(opt, a, b, pa, pb, 0));
            writeTraceFile(shared.b, tracePath(opt, a, b, pa, pb, 1));
        }
        return r;
    }

    sched.addReplay(shared.a);
    sched.addReplay(shared.b);
    if (snaps) {
        bool warmed = false;
        SnapshotPtr snap = snaps->obtain(key, [&] {
            sched.warmup();
            warmed = true;
            return captureSnapshot(machine);
        });
        if (!warmed) {
            bool ok = sched.resumeFromSnapshot(*snap);
            ap_assert(ok, "stale consolidation snapshot for ",
                      key.workload);
        }
    } else {
        sched.warmup();
    }
    return sched.runMeasured();
}

void
row(const std::string &a, const std::string &b, const BenchOptions &opt,
    SnapshotCache *snaps)
{
    std::printf("%-22s", (a + "+" + b).c_str());
    struct
    {
        VirtMode mode;
        bool hw;
    } configs[] = {{VirtMode::Nested, false},
                   {VirtMode::Shadow, false},
                   {VirtMode::Agile, false},
                   {VirtMode::Agile, true}};
    PairTraces shared;
    for (auto &c : configs) {
        ConsolidationResult r =
            runCell(a, b, c.mode, c.hw, opt, shared, snaps);
        std::printf(" %9.1f%%", r.machine.totalOverhead() * 100);
    }
    std::printf("\n");
}

} // namespace

int
main(int argc, char **argv)
{
    ap::setQuietLogging(true);
    ap::BenchOptions opt(500'000);
    for (int i = 1; i < argc; ++i) {
        if (!opt.consume(argc, argv, i))
            opt.reject(argv, i, "");
    }

    ap::SnapshotCache snaps(opt.snapshotDir);
    ap::SnapshotCache *sp =
        opt.traceCache && opt.snapshotCache ? &snaps : nullptr;

    std::printf("Consolidated pairs (round-robin, 2k-step quanta); "
                "total overhead per technique\n\n");
    std::printf("%-22s %10s %10s %10s %10s\n", "pair", "nested",
                "shadow", "agile", "agile+hw");
    row("graph500", "memcached", opt, sp);
    row("mcf", "dedup", opt, sp);
    row("canneal", "gcc", opt, sp);
    std::printf("\nThe hardware sptr cache removes the per-quantum "
                "context-switch traps that\notherwise erode agile's "
                "advantage under consolidation (Section IV).\n");
    if (sp)
        std::printf("[snapshots: %llu captured, %llu from disk]\n",
                    (unsigned long long)snaps.captures(),
                    (unsigned long long)snaps.diskLoads());
    return 0;
}
