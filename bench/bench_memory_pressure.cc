/**
 * @file
 * The paper's Section V memory-pressure scenario: "When free memory is
 * scarce, a guest OS will frequently scan and clear the referenced
 * bits of page tables looking for pages to reclaim. With shadow
 * paging, this scanning causes VMtraps... With agile paging, though,
 * the VMM detects the page-table writes to clear referenced bits and
 * converts leaf-level page tables to nested mode to avoid the
 * VMtraps."
 *
 * Sweeps reclaim-scan intensity on a memcached-style workload and
 * reports the VMM-intervention overhead per technique. The event
 * stream per scan rate is mode-independent, so the three techniques
 * share one recorded trace per rate, and the snapshot cache lets
 * repeated invocations (--snapshot-dir) skip warmup entirely.
 */

#include <cstdio>

#include "base/logging.hh"
#include "bench_common.hh"
#include "sim/machine.hh"
#include "trace/trace_cache.hh"
#include "workloads/workload.hh"

namespace
{

using namespace ap;

/** memcached-like accesses plus a configurable reclaim-scan rate. */
class PressureWorkload : public Workload
{
  public:
    PressureWorkload(const WorkloadParams &params, double scan_chance)
        : Workload(params), scan_chance_(scan_chance)
    {
    }

    std::string name() const override { return "pressure"; }

    void
    init(WorkloadHost &host) override
    {
        arena_ = host.mmap(params_.footprintBytes, true, false, 0);
    }

    void
    warmup(WorkloadHost &host) override
    {
        touchAll(host, arena_, params_.footprintBytes, true);
    }

    bool
    step(WorkloadHost &host) override
    {
        Rng &rng = host.rng();
        if (rng.chance(scan_chance_)) {
            host.reclaimTick(256);
        } else if (rng.chance(0.01)) {
            host.access(arena_ + rng.nextBelow(params_.footprintBytes),
                        rng.chance(0.3));
        } else {
            host.access(arena_ + rng.nextBelow(1u << 20),
                        rng.chance(0.3));
        }
        return ++ops_ < params_.operations;
    }

  private:
    double scan_chance_;
    Addr arena_ = 0;
    std::uint64_t ops_ = 0;
};

double
vmmOverhead(TraceCache *traces, SnapshotCache *snaps, VirtMode mode,
            double scan_chance, const BenchOptions &opt)
{
    WorkloadParams params;
    params.footprintBytes = 64ull << 20;
    params.operations = opt.ops;
    if (opt.seedSet)
        params.seed = opt.seed;
    SimConfig cfg;
    cfg.mode = mode;
    cfg.hostMemFrames = (64ull << 20) / kPageBytes * 3;
    cfg.guestDataFrames = (64ull << 20) / kPageBytes * 2;
    cfg.guestPtFrames = 1 << 13;
    if (mode == VirtMode::Agile)
        cfg.enableHwOpts();
    PressureWorkload w(params, scan_chance);
    if (!traces) {
        Machine machine(cfg);
        return machine.run(w).vmmOverhead();
    }
    // The scan rate shapes the stream, so it must be part of the key.
    char name[48];
    std::snprintf(name, sizeof(name), "pressure@%g", scan_chance);
    RunResult r = snaps
                      ? runWorkloadSnapshotted(*traces, *snaps, name, w,
                                               cfg)
                      : runWorkloadCached(*traces, name, w, cfg);
    return r.vmmOverhead();
}

} // namespace

int
main(int argc, char **argv)
{
    ap::setQuietLogging(true);
    ap::BenchOptions opt(500'000);
    for (int i = 1; i < argc; ++i) {
        if (!opt.consume(argc, argv, i))
            opt.reject(argv, i, "");
    }

    ap::TraceCache traces;
    ap::SnapshotCache snaps(opt.snapshotDir);
    ap::TraceCache *tp = opt.traceCache ? &traces : nullptr;
    ap::SnapshotCache *sp =
        opt.traceCache && opt.snapshotCache ? &snaps : nullptr;

    std::printf("Memory-pressure sweep (Section V): VMM overhead vs "
                "reclaim-scan rate\n\n");
    std::printf("%-18s %10s %10s %10s\n", "scan chance/op", "nested",
                "shadow", "agile");
    for (double chance : {0.0, 1e-5, 5e-5, 2e-4, 1e-3}) {
        std::printf(
            "%-18g %9.1f%% %9.1f%% %9.1f%%\n", chance,
            vmmOverhead(tp, sp, ap::VirtMode::Nested, chance, opt) * 100,
            vmmOverhead(tp, sp, ap::VirtMode::Shadow, chance, opt) * 100,
            vmmOverhead(tp, sp, ap::VirtMode::Agile, chance, opt) * 100);
    }
    std::printf("\nShadow's VMM bill grows with scan rate (every "
                "reference-bit clear traps);\nagile converts the "
                "scanned leaf PT pages to nested mode and stays flat.\n");
    if (opt.traceCache)
        std::printf("[trace cache: %llu recorded, %llu replayed; "
                    "snapshots: %llu captured, %llu forked, %llu from "
                    "disk]\n",
                    (unsigned long long)traces.records(),
                    (unsigned long long)traces.replays(),
                    (unsigned long long)snaps.captures(),
                    (unsigned long long)snaps.forks(),
                    (unsigned long long)snaps.diskLoads());
    return 0;
}
