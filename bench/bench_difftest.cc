/**
 * @file
 * Lock-step differential replay throughput: how much a checked
 * three-machine replay costs per event, with and without the
 * cross-machine and sweep checks — the price of turning a tier-1 run
 * into a correctness gate.
 */

#include <benchmark/benchmark.h>

#include <iostream>

#include "base/logging.hh"
#include "sim/oracle.hh"

namespace
{

ap::OracleOptions
benchOptions(std::uint64_t sweep_interval)
{
    ap::OracleOptions opts;
    opts.seed = 7;
    opts.operations = 2000;
    opts.sweepInterval = sweep_interval;
    return opts;
}

void
BM_LockstepReplay(benchmark::State &state)
{
    ap::setQuietLogging(true);
    ap::OracleOptions opts =
        benchOptions(static_cast<std::uint64_t>(state.range(0)));
    ap::Trace trace = ap::makeRandomTrace(opts);
    std::uint64_t events = 0;
    for (auto _ : state) {
        ap::OracleReport rep = ap::runDifferential(trace, opts);
        ap_assert(rep.passed, "benchmark trace must be violation-free");
        events += rep.eventsReplayed;
        benchmark::DoNotOptimize(rep.eventsReplayed);
    }
    state.counters["events/s"] = benchmark::Counter(
        static_cast<double>(events), benchmark::Counter::kIsRate);
}

void
BM_TraceGeneration(benchmark::State &state)
{
    ap::OracleOptions opts = benchOptions(256);
    for (auto _ : state) {
        ap::Trace t = ap::makeRandomTrace(opts);
        benchmark::DoNotOptimize(t.events.size());
        ++opts.seed;
    }
}

} // namespace

// Sweep every 64 events vs every 1024: the coherence sweep dominates
// checked-replay cost, so this brackets the gate's overhead.
BENCHMARK(BM_LockstepReplay)->Arg(64)->Arg(1024)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_TraceGeneration);

int
main(int argc, char **argv)
{
    // benchmark::Initialize consumes the flags it understands and
    // leaves everything else in argv; anything left is a typo, not a
    // request — refuse it instead of silently benchmarking defaults.
    benchmark::Initialize(&argc, argv);
    if (argc > 1) {
        std::cerr << "unknown argument '" << argv[1] << "'\n"
                  << "usage: " << argv[0]
                  << " [--benchmark_filter=REGEX] "
                     "[--benchmark_* flags]\n";
        return 2;
    }
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
