/**
 * @file
 * Shared command-line handling for the bench drivers.
 *
 * Every bench accepts the same core knobs — operation count, worker
 * threads, seed, page size, and the trace/snapshot cache switches —
 * parsed here once instead of fourteen times. Benches keep their own
 * loop for bench-specific flags and call BenchOptions::consume() for
 * everything else; a bare integer argument is accepted as the
 * operation count for backward compatibility with the original
 * positional form.
 */

#ifndef AGILEPAGING_BENCH_BENCH_COMMON_HH
#define AGILEPAGING_BENCH_BENCH_COMMON_HH

#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>

#include "base/types.hh"
#include "sim/config.hh"

namespace ap
{

/** Parse "4K"/"4k"/"4096" or "2M"/"2m"/"2097152". */
inline bool
benchParsePageSize(const char *s, PageSize &out)
{
    if (!std::strcmp(s, "4K") || !std::strcmp(s, "4k") ||
        !std::strcmp(s, "4096")) {
        out = PageSize::Size4K;
        return true;
    }
    if (!std::strcmp(s, "2M") || !std::strcmp(s, "2m") ||
        !std::strcmp(s, "2097152")) {
        out = PageSize::Size2M;
        return true;
    }
    return false;
}

/** The core knobs every bench driver shares. */
struct BenchOptions
{
    explicit BenchOptions(std::uint64_t default_ops) : ops(default_ops) {}

    std::uint64_t ops;
    unsigned jobs = 1;
    std::uint64_t seed = 0;
    bool seedSet = false;
    PageSize pageSize = PageSize::Size4K;
    bool pageSizeSet = false;
    bool traceCache = true;
    bool snapshotCache = true;
    bool batchedWalks = true;
    bool simdFilter = true;
    unsigned vcpus = 1;
    TlbCoherence tlbCoherence = TlbCoherence::Software;
    std::string snapshotDir;
    /** SnapshotCache byte budget in MiB (0 = unlimited). */
    std::uint64_t snapshotPoolMb = 0;

    /** The --snapshot-pool-mb budget in bytes. */
    std::uint64_t
    snapshotPoolBytes() const
    {
        return snapshotPoolMb << 20;
    }

    /** The usage fragment for the flags consume() understands. */
    static const char *
    usage()
    {
        return "[ops] [--ops N] [--jobs N] [--seed N]"
               " [--page-size 4K|2M] [--vcpus N]"
               " [--tlb-coherence sw|hw] [--no-trace-cache]"
               " [--no-snapshot-cache] [--no-batched-walks]"
               " [--no-simd-filter] [--snapshot-dir DIR]"
               " [--snapshot-pool-mb N]";
    }

    /**
     * Try to consume argv[i] (and its value, advancing @p i). Exits
     * with usage on a malformed value. @return false if the argument
     * is not a common flag (the bench's own loop handles it).
     */
    bool
    consume(int argc, char **argv, int &i)
    {
        auto value = [&](const char *flag) -> const char * {
            if (i + 1 >= argc) {
                std::cerr << argv[0] << ": " << flag
                          << " needs a value\n";
                std::exit(2);
            }
            return argv[++i];
        };
        auto u64 = [&](const char *flag) {
            std::uint64_t v = 0;
            const char *s = value(flag);
            if (!parseU64(s, v)) {
                std::cerr << argv[0] << ": bad " << flag << " value '"
                          << s << "'\n";
                std::exit(2);
            }
            return v;
        };
        const char *arg = argv[i];
        if (!std::strcmp(arg, "--ops")) {
            ops = u64("--ops");
        } else if (!std::strcmp(arg, "--jobs")) {
            jobs = static_cast<unsigned>(u64("--jobs"));
        } else if (!std::strcmp(arg, "--seed")) {
            seed = u64("--seed");
            seedSet = true;
        } else if (!std::strcmp(arg, "--page-size")) {
            const char *s = value("--page-size");
            if (!benchParsePageSize(s, pageSize)) {
                std::cerr << argv[0] << ": bad --page-size '" << s
                          << "' (want 4K or 2M)\n";
                std::exit(2);
            }
            pageSizeSet = true;
        } else if (!std::strcmp(arg, "--vcpus")) {
            std::uint64_t v = u64("--vcpus");
            if (v < 1 || v > 64) {
                std::cerr << argv[0] << ": bad --vcpus value '" << v
                          << "' (want 1..64)\n";
                std::exit(2);
            }
            vcpus = static_cast<unsigned>(v);
        } else if (!std::strcmp(arg, "--tlb-coherence")) {
            const char *s = value("--tlb-coherence");
            if (!std::strcmp(s, "sw") || !std::strcmp(s, "software")) {
                tlbCoherence = TlbCoherence::Software;
            } else if (!std::strcmp(s, "hw") ||
                       !std::strcmp(s, "hardware")) {
                tlbCoherence = TlbCoherence::Hardware;
            } else {
                std::cerr << argv[0] << ": bad --tlb-coherence '" << s
                          << "' (want sw or hw)\n";
                std::exit(2);
            }
        } else if (!std::strcmp(arg, "--no-trace-cache")) {
            traceCache = false;
        } else if (!std::strcmp(arg, "--no-snapshot-cache")) {
            snapshotCache = false;
        } else if (!std::strcmp(arg, "--no-batched-walks")) {
            batchedWalks = false;
        } else if (!std::strcmp(arg, "--no-simd-filter")) {
            simdFilter = false;
        } else if (!std::strcmp(arg, "--snapshot-dir")) {
            snapshotDir = value("--snapshot-dir");
        } else if (!std::strcmp(arg, "--snapshot-pool-mb")) {
            snapshotPoolMb = u64("--snapshot-pool-mb");
        } else if (arg[0] != '-') {
            // Legacy positional operation count.
            std::uint64_t v = 0;
            if (!parseU64(arg, v))
                return false;
            ops = v;
        } else {
            return false;
        }
        return true;
    }

    /** Report an unrecognized argument and exit. @p extra lists the
     *  bench's own flags for the usage line ("" if none). */
    [[noreturn]] void
    reject(char **argv, int i, const char *extra) const
    {
        std::cerr << "unknown argument '" << argv[i] << "'\n"
                  << "usage: " << argv[0] << " " << usage();
        if (extra && *extra)
            std::cerr << " " << extra;
        std::cerr << "\n";
        std::exit(2);
    }
};

} // namespace ap

#endif // AGILEPAGING_BENCH_BENCH_COMMON_HH
