/**
 * @file
 * Regenerates the paper's Figure 5: execution-time overheads split
 * into page-walk and VMM-intervention segments for every Table V
 * workload under base native (B), nested (N), shadow (S), and agile
 * (A) paging, at both 4 KB and 2 MB pages.
 *
 * Usage: bench_figure5_overheads [common bench flags] [--csv]
 *                                [--workload NAME]
 *                                [--stats-json PATH] [--range]
 *
 * --range adds the range/segment-translation backend (R) as a fifth
 * column of the sweep; the default matrix is unchanged without it.
 *
 * By default cells that share an operation stream (same workload,
 * page size, ops, seed) record it once and replay it through the
 * batched fast path, and each cell's warm machine image persists
 * under --snapshot-dir so repeat regenerations skip warmup;
 * --no-trace-cache generates every cell from scratch (results are
 * bit-identical either way).
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>

#include "base/logging.hh"
#include "bench_common.hh"
#include "sim/experiment.hh"
#include "sim/parallel_runner.hh"
#include "sim/report.hh"
#include "trace/trace_cache.hh"

int
main(int argc, char **argv)
{
    ap::setQuietLogging(true);
    ap::BenchOptions opt(0);
    bool csv = false;
    bool with_range = false;
    std::string only;
    std::string stats_json;
    for (int i = 1; i < argc; ++i) {
        if (opt.consume(argc, argv, i))
            continue;
        if (!std::strcmp(argv[i], "--csv"))
            csv = true;
        else if (!std::strcmp(argv[i], "--range"))
            with_range = true;
        else if (!std::strcmp(argv[i], "--workload") && i + 1 < argc)
            only = argv[++i];
        else if (!std::strcmp(argv[i], "--stats-json") && i + 1 < argc)
            stats_json = argv[++i];
        else
            opt.reject(argv, i,
                       "[--csv] [--workload NAME] [--stats-json PATH] "
                       "[--range]");
    }

    std::vector<ap::ExperimentSpec> specs =
        ap::figure5Specs(opt.ops, with_range);
    for (ap::ExperimentSpec &s : specs) {
        s.numVcpus = opt.vcpus;
        s.tlbCoherence = opt.tlbCoherence;
    }
    if (!only.empty()) {
        std::erase_if(specs, [&](const ap::ExperimentSpec &s) {
            return s.workload != only;
        });
    }
    if (opt.pageSizeSet) {
        std::erase_if(specs, [&](const ap::ExperimentSpec &s) {
            return s.pageSize != opt.pageSize;
        });
    }
    ap::TraceCache cache;
    ap::SnapshotCache snaps(opt.snapshotDir);
    ap::CellFn cell;
    if (opt.traceCache && opt.snapshotCache)
        cell = ap::snapshotCellFn(cache, snaps);
    else if (opt.traceCache)
        cell = ap::cachedCellFn(cache);
    std::vector<ap::RunResult> runs =
        ap::runExperiments(specs, opt.jobs, cell);

    if (!stats_json.empty()) {
        std::ofstream os(stats_json);
        if (!os) {
            std::cerr << "cannot write " << stats_json << "\n";
            return 1;
        }
        ap::writeRunResultsJson(os, runs, ap::effectiveJobs(opt.jobs));
    }
    if (csv) {
        ap::printCsv(std::cout, runs);
        return 0;
    }
    ap::printFigure5(std::cout, runs);

    // The headline comparison: agile vs the best of its constituents.
    // (Skipped when --page-size trims the matrix: the stride below
    // assumes the full 8-cell-per-workload layout.)
    if (opt.pageSizeSet)
        return 0;
    // Per-workload stride: modes x {4K, 2M}.
    const std::size_t stride = with_range ? 10 : 8;
    std::cout << "\nSummary (4K): agile vs best(N,S)\n";
    for (std::size_t i = 0; i + 3 < runs.size(); i += stride) {
        const ap::RunResult &nested = runs[i + 1];
        const ap::RunResult &shadow = runs[i + 2];
        const ap::RunResult &agile = runs[i + 3];
        double best = std::min(nested.slowdown(), shadow.slowdown());
        double gain = (best - agile.slowdown()) / agile.slowdown() * 100;
        char buf[96];
        std::snprintf(buf, sizeof(buf), "  %-10s agile %+5.1f%% vs best",
                      agile.workload.c_str(), gain);
        std::cout << buf << "\n";
        if (with_range && i + 4 < runs.size()) {
            const ap::RunResult &range = runs[i + 4];
            double rgain =
                (best - range.slowdown()) / range.slowdown() * 100;
            std::snprintf(buf, sizeof(buf),
                          "  %-10s range %+5.1f%% vs best "
                          "(seg hits %llu, spills %llu)",
                          range.workload.c_str(), rgain,
                          static_cast<unsigned long long>(
                              range.segmentHits),
                          static_cast<unsigned long long>(
                              range.segmentSpills));
            std::cout << buf << "\n";
        }
    }
    return 0;
}
