/**
 * @file
 * Regenerates the paper's Figure 5: execution-time overheads split
 * into page-walk and VMM-intervention segments for every Table V
 * workload under base native (B), nested (N), shadow (S), and agile
 * (A) paging, at both 4 KB and 2 MB pages.
 *
 * Usage: bench_figure5_overheads [--ops N] [--jobs N] [--csv]
 *                                [--workload NAME]
 *                                [--stats-json PATH]
 *                                [--no-trace-cache]
 *
 * By default cells that share an operation stream (same workload,
 * page size, ops, seed) record it once and replay it through the
 * batched fast path; --no-trace-cache generates every cell from
 * scratch (results are bit-identical either way).
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>

#include "base/logging.hh"
#include "sim/experiment.hh"
#include "sim/parallel_runner.hh"
#include "sim/report.hh"
#include "trace/trace_cache.hh"

int
main(int argc, char **argv)
{
    ap::setQuietLogging(true);
    std::uint64_t ops = 0;
    unsigned jobs = 1;
    bool csv = false;
    bool use_cache = true;
    std::string only;
    std::string stats_json;
    auto usage = [&argv]() {
        std::cerr << "usage: " << argv[0]
                  << " [--ops N] [--jobs N] [--csv]"
                     " [--workload NAME] [--stats-json PATH]"
                     " [--no-trace-cache]\n";
        return 1;
    };
    for (int i = 1; i < argc; ++i) {
        if (!std::strcmp(argv[i], "--ops") && i + 1 < argc) {
            if (!ap::parseU64(argv[++i], ops))
                return usage();
        } else if (!std::strcmp(argv[i], "--jobs") && i + 1 < argc) {
            std::uint64_t j = 0;
            if (!ap::parseU64(argv[++i], j))
                return usage();
            jobs = static_cast<unsigned>(j);
        } else if (!std::strcmp(argv[i], "--csv")) {
            csv = true;
        } else if (!std::strcmp(argv[i], "--workload") && i + 1 < argc) {
            only = argv[++i];
        } else if (!std::strcmp(argv[i], "--stats-json") &&
                   i + 1 < argc) {
            stats_json = argv[++i];
        } else if (!std::strcmp(argv[i], "--no-trace-cache")) {
            use_cache = false;
        } else {
            return usage();
        }
    }

    std::vector<ap::ExperimentSpec> specs = ap::figure5Specs(ops);
    if (!only.empty()) {
        std::erase_if(specs, [&](const ap::ExperimentSpec &s) {
            return s.workload != only;
        });
    }
    ap::TraceCache cache;
    std::vector<ap::RunResult> runs = ap::runExperiments(
        specs, jobs, use_cache ? ap::cachedCellFn(cache) : ap::CellFn{});

    if (!stats_json.empty()) {
        std::ofstream os(stats_json);
        if (!os) {
            std::cerr << "cannot write " << stats_json << "\n";
            return 1;
        }
        ap::writeRunResultsJson(os, runs);
    }
    if (csv) {
        ap::printCsv(std::cout, runs);
        return 0;
    }
    ap::printFigure5(std::cout, runs);

    // The headline comparison: agile vs the best of its constituents.
    std::cout << "\nSummary (4K): agile vs best(N,S)\n";
    for (std::size_t i = 0; i + 3 < runs.size(); i += 8) {
        const ap::RunResult &nested = runs[i + 1];
        const ap::RunResult &shadow = runs[i + 2];
        const ap::RunResult &agile = runs[i + 3];
        double best = std::min(nested.slowdown(), shadow.slowdown());
        double gain = (best - agile.slowdown()) / agile.slowdown() * 100;
        char buf[96];
        std::snprintf(buf, sizeof(buf), "  %-10s agile %+5.1f%% vs best",
                      agile.workload.c_str(), gain);
        std::cout << buf << "\n";
    }
    return 0;
}
