/**
 * @file
 * Multi-vCPU translation-coherence comparison (Figure 5 style): for
 * each coherence-stress workload, the slowdown split into page-walk,
 * VMM and shootdown segments under nested, shadow, and agile paging,
 * with software (IPI) versus hardware (HATRIC-style) shootdown costs
 * side by side.
 *
 * Usage: bench_coherence [common bench flags] [--workload NAME]
 *                        [--stats-json PATH]
 *
 * Defaults to 4 vCPUs; --vcpus overrides. --tlb-coherence restricts
 * the run to one cost model instead of comparing both.
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "base/logging.hh"
#include "bench_common.hh"
#include "sim/experiment.hh"
#include "sim/parallel_runner.hh"
#include "sim/report.hh"

int
main(int argc, char **argv)
{
    ap::setQuietLogging(true);
    ap::BenchOptions opt(200'000);
    opt.vcpus = 4;
    std::string only;
    std::string stats_json;
    bool coherence_set = false;
    for (int i = 1; i < argc; ++i) {
        if (!std::strcmp(argv[i], "--tlb-coherence"))
            coherence_set = true;
        if (opt.consume(argc, argv, i))
            continue;
        if (!std::strcmp(argv[i], "--workload") && i + 1 < argc)
            only = argv[++i];
        else if (!std::strcmp(argv[i], "--stats-json") && i + 1 < argc)
            stats_json = argv[++i];
        else
            opt.reject(argv, i, "[--workload NAME] [--stats-json PATH]");
    }

    const std::vector<std::string> workloads = {
        "shootdown_storm", "reclaim_scan", "page_migration"};
    const ap::VirtMode modes[] = {ap::VirtMode::Nested,
                                  ap::VirtMode::Shadow,
                                  ap::VirtMode::Agile};
    std::vector<ap::TlbCoherence> kinds = {ap::TlbCoherence::Software,
                                           ap::TlbCoherence::Hardware};
    if (coherence_set)
        kinds = {opt.tlbCoherence};

    std::vector<ap::ExperimentSpec> specs;
    for (const std::string &wl : workloads) {
        if (!only.empty() && wl != only)
            continue;
        for (ap::VirtMode mode : modes) {
            for (ap::TlbCoherence kind : kinds) {
                ap::ExperimentSpec spec;
                spec.workload = wl;
                spec.mode = mode;
                spec.pageSize = opt.pageSize;
                spec.operations = opt.ops;
                spec.numVcpus = opt.vcpus;
                spec.tlbCoherence = kind;
                specs.push_back(spec);
            }
        }
    }
    if (specs.empty()) {
        std::cerr << "unknown --workload '" << only
                  << "' (coherence workloads: shootdown_storm, "
                     "reclaim_scan, page_migration)\n";
        return 2;
    }

    std::vector<ap::RunResult> runs = ap::parallelMap(
        specs.size(), opt.jobs, [&](std::uint64_t i) {
            ap::RunResult r = ap::runExperiment(specs[i]);
            // Tag the cost model so rows are distinguishable; the
            // numbers themselves carry it via coherence_cycles.
            r.workload = specs[i].workload + "/" +
                         ap::tlbCoherenceName(specs[i].tlbCoherence);
            return r;
        });

    if (!stats_json.empty()) {
        std::ofstream os(stats_json);
        if (!os) {
            std::cerr << "cannot write " << stats_json << "\n";
            return 1;
        }
        ap::writeRunResultsJson(os, runs, ap::effectiveJobs(opt.jobs));
    }

    std::printf("Translation coherence, %u vCPUs, %s pages "
                "(overheads as fraction of ideal cycles)\n\n",
                opt.vcpus, ap::pageSizeName(opt.pageSize));
    std::printf("%-22s %-7s %-4s %10s %10s %9s %9s %9s %9s\n",
                "workload", "mode", "coh", "shootdowns", "rem.inval",
                "walk", "vmm", "coherence", "slowdown");
    for (const ap::RunResult &r : runs) {
        std::string wl = r.workload.substr(0, r.workload.rfind('/'));
        std::string coh = r.workload.substr(r.workload.rfind('/') + 1);
        std::printf("%-22s %-7s %-4s %10llu %10llu %8.3f%% %8.3f%% "
                    "%8.3f%% %9.4f\n",
                    wl.c_str(), ap::virtModeName(r.mode), coh.c_str(),
                    static_cast<unsigned long long>(r.shootdowns),
                    static_cast<unsigned long long>(
                        r.remoteInvalidations),
                    r.walkOverhead() * 100, r.vmmOverhead() * 100,
                    r.coherenceOverhead() * 100, r.slowdown());
    }

    if (kinds.size() == 2) {
        std::printf("\nSummary: sw-IPI cost vs hw coherence "
                    "(slowdown delta, positive = hw wins)\n");
        for (std::size_t i = 0; i + 1 < runs.size(); i += 2) {
            const ap::RunResult &sw = runs[i];
            const ap::RunResult &hw = runs[i + 1];
            std::string wl = sw.workload.substr(0, sw.workload.rfind('/'));
            std::printf("  %-22s %-7s %+7.4f\n", wl.c_str(),
                        ap::virtModeName(sw.mode),
                        sw.slowdown() - hw.slowdown());
        }
    }
    return 0;
}
