/**
 * @file
 * Ablation of the MMU caching structures (Section III-A): the
 * three-table page-walk cache (with agile's per-entry mode bit) and
 * the nested TLB. Shows how each reduces memory references per walk
 * under nested and agile paging on TLB-miss-heavy workloads.
 */

#include <cstdio>
#include <string>

#include "base/logging.hh"
#include "sim/experiment.hh"

namespace
{

ap::RunResult
run(const std::string &wl, ap::VirtMode mode, bool pwc, bool ntlb,
    std::uint64_t ops)
{
    ap::WorkloadParams params = ap::defaultParamsFor(wl);
    if (ops)
        params.operations = ops;
    ap::SimConfig cfg =
        ap::configFor(mode, ap::PageSize::Size4K, params);
    cfg.pwcEnabled = pwc;
    cfg.ntlbEnabled = ntlb;
    ap::Machine machine(cfg);
    auto w = ap::makeWorkload(wl, params);
    return machine.run(*w);
}

void
sweep(const std::string &wl, ap::VirtMode mode, std::uint64_t ops)
{
    struct Cfg
    {
        const char *label;
        bool pwc, ntlb;
    } cfgs[] = {{"none", false, false},
                {"PWC", true, false},
                {"nTLB", false, true},
                {"PWC+nTLB", true, true}};
    std::printf("%-11s %-7s", wl.c_str(), ap::virtModeName(mode));
    for (const Cfg &c : cfgs) {
        ap::RunResult r = run(wl, mode, c.pwc, c.ntlb, ops);
        std::printf("  %5.2f/%5.1f%%", r.avgWalkRefs,
                    r.walkOverhead() * 100);
    }
    std::printf("\n");
}

} // namespace

int
main(int argc, char **argv)
{
    ap::setQuietLogging(true);
    std::uint64_t ops = argc > 1 ? std::stoull(argv[1]) : 600'000;

    std::printf("MMU-cache ablation: avg walk refs / walk overhead\n\n");
    std::printf("%-11s %-7s  %12s  %12s  %12s  %12s\n", "workload",
                "mode", "none", "PWC", "nTLB", "PWC+nTLB");
    for (const std::string &wl :
         {std::string("mcf"), std::string("graph500"),
          std::string("tigr")}) {
        sweep(wl, ap::VirtMode::Nested, ops);
        sweep(wl, ap::VirtMode::Agile, ops);
    }
    std::printf("\nThe PWC's per-entry mode bit lets agile walks resume "
                "in the correct mode\n(Section III-A); the nested TLB "
                "removes the inner host walks of nested mode.\n");
    return 0;
}
