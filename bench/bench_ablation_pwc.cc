/**
 * @file
 * Ablation of the MMU caching structures (Section III-A): the
 * three-table page-walk cache (with agile's per-entry mode bit) and
 * the nested TLB. Shows how each reduces memory references per walk
 * under nested and agile paging on TLB-miss-heavy workloads.
 *
 * All eight cells of one workload (2 modes x 4 MMU-cache variants)
 * share a single recorded trace.
 */

#include <cstdio>
#include <string>

#include "base/logging.hh"
#include "bench_common.hh"
#include "sim/experiment.hh"
#include "trace/trace_cache.hh"

namespace
{

ap::TraceCache *g_traces = nullptr;
ap::SnapshotCache *g_snaps = nullptr;

ap::RunResult
run(const std::string &wl, ap::VirtMode mode, bool pwc, bool ntlb,
    const ap::BenchOptions &opt)
{
    ap::WorkloadParams params = ap::defaultParamsFor(wl);
    params.operations = opt.ops;
    if (opt.seedSet)
        params.seed = opt.seed;
    ap::SimConfig cfg = ap::configFor(mode, opt.pageSize, params);
    cfg.pwcEnabled = pwc;
    cfg.ntlbEnabled = ntlb;
    if (g_traces && g_snaps)
        return ap::runCellSnapshotted(*g_traces, *g_snaps, wl, params,
                                      cfg);
    if (g_traces)
        return ap::runCellCached(*g_traces, wl, params, cfg);
    ap::Machine machine(cfg);
    auto w = ap::makeWorkload(wl, params);
    return machine.run(*w);
}

void
sweep(const std::string &wl, ap::VirtMode mode,
      const ap::BenchOptions &opt)
{
    struct Cfg
    {
        const char *label;
        bool pwc, ntlb;
    } cfgs[] = {{"none", false, false},
                {"PWC", true, false},
                {"nTLB", false, true},
                {"PWC+nTLB", true, true}};
    std::printf("%-11s %-7s", wl.c_str(), ap::virtModeName(mode));
    for (const Cfg &c : cfgs) {
        ap::RunResult r = run(wl, mode, c.pwc, c.ntlb, opt);
        std::printf("  %5.2f/%5.1f%%", r.avgWalkRefs,
                    r.walkOverhead() * 100);
    }
    std::printf("\n");
}

} // namespace

int
main(int argc, char **argv)
{
    ap::setQuietLogging(true);
    ap::BenchOptions opt(600'000);
    for (int i = 1; i < argc; ++i) {
        if (!opt.consume(argc, argv, i))
            opt.reject(argv, i, "");
    }
    ap::TraceCache traces;
    ap::SnapshotCache snaps(opt.snapshotDir);
    g_traces = opt.traceCache ? &traces : nullptr;
    g_snaps = opt.traceCache && opt.snapshotCache ? &snaps : nullptr;

    std::printf("MMU-cache ablation: avg walk refs / walk overhead\n\n");
    std::printf("%-11s %-7s  %12s  %12s  %12s  %12s\n", "workload",
                "mode", "none", "PWC", "nTLB", "PWC+nTLB");
    for (const std::string &wl :
         {std::string("mcf"), std::string("graph500"),
          std::string("tigr")}) {
        sweep(wl, ap::VirtMode::Nested, opt);
        sweep(wl, ap::VirtMode::Agile, opt);
    }
    std::printf("\nThe PWC's per-entry mode bit lets agile walks resume "
                "in the correct mode\n(Section III-A); the nested TLB "
                "removes the inner host walks of nested mode.\n");
    return 0;
}
