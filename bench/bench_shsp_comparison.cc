/**
 * @file
 * Reproduces the paper's SHSP discussion (Section VII-C): selective
 * hardware/software paging approximates the best of nested and shadow
 * per workload, while agile paging exceeds it — the temporal-only
 * switch cannot help workloads whose churn is *spatially* confined.
 */

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>

#include "base/logging.hh"
#include "bench_common.hh"
#include "sim/experiment.hh"
#include "sim/parallel_runner.hh"
#include "trace/trace_cache.hh"

int
main(int argc, char **argv)
{
    ap::setQuietLogging(true);
    ap::BenchOptions opt(1'000'000);
    for (int i = 1; i < argc; ++i) {
        if (!opt.consume(argc, argv, i))
            opt.reject(argv, i, "");
    }

    // One row per workload, four cells per row, all independent.
    const ap::VirtMode modes[] = {ap::VirtMode::Nested,
                                  ap::VirtMode::Shadow,
                                  ap::VirtMode::Shsp,
                                  ap::VirtMode::Agile};
    std::vector<ap::ExperimentSpec> specs;
    for (const std::string &wl : ap::workloadNames()) {
        for (ap::VirtMode mode : modes) {
            ap::ExperimentSpec spec;
            spec.workload = wl;
            spec.mode = mode;
            spec.operations = opt.ops;
            spec.pageSize = opt.pageSize;
            specs.push_back(spec);
        }
    }
    // The four techniques per row share one operation stream: record
    // it once, replay it three times (batched). The snapshot cache
    // persists each cell's warm image under --snapshot-dir.
    ap::TraceCache cache;
    ap::SnapshotCache snaps(opt.snapshotDir);
    ap::CellFn cell;
    if (opt.traceCache && opt.snapshotCache)
        cell = ap::snapshotCellFn(cache, snaps);
    else if (opt.traceCache)
        cell = ap::cachedCellFn(cache);
    std::vector<ap::RunResult> runs =
        ap::runExperiments(specs, opt.jobs, cell);

    std::printf("SHSP vs agile paging (4K pages)\n\n");
    std::printf("%-11s %8s %8s %8s %8s %8s   %s\n", "workload", "nested",
                "shadow", "best", "SHSP", "agile", "agile vs SHSP");
    double geo = 1.0;
    int n = 0;
    for (std::size_t row = 0; row + 3 < runs.size(); row += 4) {
        const std::string &wl = runs[row].workload;
        double nested = runs[row + 0].slowdown();
        double shadow = runs[row + 1].slowdown();
        double shsp = runs[row + 2].slowdown();
        double agile = runs[row + 3].slowdown();
        double best = std::min(nested, shadow);
        double vs = (shsp - agile) / agile * 100.0;
        std::printf("%-11s %7.1f%% %7.1f%% %7.1f%% %7.1f%% %7.1f%%   "
                    "%+5.1f%%\n",
                    wl.c_str(), (nested - 1) * 100, (shadow - 1) * 100,
                    (best - 1) * 100, (shsp - 1) * 100,
                    (agile - 1) * 100, vs);
        geo *= shsp / agile;
        ++n;
    }
    std::printf("\nGeometric-mean speedup of agile over SHSP: %+0.1f%%\n",
                (std::pow(geo, 1.0 / n) - 1.0) * 100.0);
    std::printf("Paper: SHSP ~= best of the two techniques; agile "
                "exceeds it by >12%% on average.\n");
    return 0;
}
