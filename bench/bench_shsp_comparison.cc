/**
 * @file
 * Reproduces the paper's SHSP discussion (Section VII-C): selective
 * hardware/software paging approximates the best of nested and shadow
 * per workload, while agile paging exceeds it — the temporal-only
 * switch cannot help workloads whose churn is *spatially* confined.
 */

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "base/logging.hh"
#include "sim/experiment.hh"

int
main(int argc, char **argv)
{
    ap::setQuietLogging(true);
    std::uint64_t ops = argc > 1 ? std::stoull(argv[1]) : 1'000'000;

    std::printf("SHSP vs agile paging (4K pages)\n\n");
    std::printf("%-11s %8s %8s %8s %8s %8s   %s\n", "workload", "nested",
                "shadow", "best", "SHSP", "agile", "agile vs SHSP");
    double geo = 1.0;
    int n = 0;
    for (const std::string &wl : ap::workloadNames()) {
        auto run = [&](ap::VirtMode mode) {
            ap::ExperimentSpec spec;
            spec.workload = wl;
            spec.mode = mode;
            spec.operations = ops;
            return ap::runExperiment(spec);
        };
        double nested = run(ap::VirtMode::Nested).slowdown();
        double shadow = run(ap::VirtMode::Shadow).slowdown();
        double shsp = run(ap::VirtMode::Shsp).slowdown();
        double agile = run(ap::VirtMode::Agile).slowdown();
        double best = std::min(nested, shadow);
        double vs = (shsp - agile) / agile * 100.0;
        std::printf("%-11s %7.1f%% %7.1f%% %7.1f%% %7.1f%% %7.1f%%   "
                    "%+5.1f%%\n",
                    wl.c_str(), (nested - 1) * 100, (shadow - 1) * 100,
                    (best - 1) * 100, (shsp - 1) * 100,
                    (agile - 1) * 100, vs);
        geo *= shsp / agile;
        ++n;
    }
    std::printf("\nGeometric-mean speedup of agile over SHSP: %+0.1f%%\n",
                (std::pow(geo, 1.0 / n) - 1.0) * 100.0);
    std::printf("Paper: SHSP ~= best of the two techniques; agile "
                "exceeds it by >12%% on average.\n");
    return 0;
}
