/**
 * @file
 * Pluggable translation backends.
 *
 * Historically every layer that cared how a process is translated
 * switched on VirtMode directly, which hardcoded the mode set in ~15
 * places. A TranslationBackend instead bundles the per-mode behavior
 * behind one interface:
 *
 *   - walk servicing (which walk state machine resolves a miss),
 *   - prime-pass entry state (batched replay's charge-free pre-walk),
 *   - invalidation hooks (a CoherenceListener riding the domain),
 *   - snapshot state (saveState/restoreState of backend-private state),
 *   - stat registration (done by the backend's constructor).
 *
 * Structural questions ("does this mode need a VMM? a shadow table?")
 * are answered by the static BackendTraits table so construction-time
 * consumers (Machine, GuestOs, experiment sizing) need no backend
 * instance. The three classic families (native, nested, shadow/agile/
 * SHSP) are stateless and shared as singletons; stateful backends such
 * as range/segment translation live in core/ and are created per
 * machine through the registry (core/backend_registry.hh).
 */

#ifndef AGILEPAGING_WALKER_BACKEND_HH
#define AGILEPAGING_WALKER_BACKEND_HH

#include "base/types.hh"
#include "walker/walker.hh"

namespace ap
{

class CoherenceListener;
class Serializer;
class Deserializer;

/**
 * Static per-mode structure: which subsystems a machine running this
 * backend must build. Pure data so it is usable before (and without)
 * any backend instance.
 */
struct BackendTraits
{
    VirtMode mode;
    /** Two-stage translation: the machine needs a VMM and a host page
     *  table (everything but the unvirtualized native baseline). */
    bool usesVmm;
    /** The VMM maintains shadow tables for this mode's processes
     *  (shadow, agile, SHSP). */
    bool usesShadowMgr;
    /** Agile per-entry switching policy engine. */
    bool usesAgilePolicy;
    /** SHSP whole-process switching controller. */
    bool usesShsp;
    /** Range backend's segment-register file. */
    bool usesSegments;
};

/** @return the traits row for @p m (every enumerator has one). */
const BackendTraits &backendTraits(VirtMode m);

/**
 * One memory-virtualization technique's behavior. Walkers dispatch
 * walk servicing through this; the machine wires coherence and
 * snapshot hooks at construction.
 */
class TranslationBackend
{
  public:
    explicit TranslationBackend(VirtMode mode)
        : traits_(backendTraits(mode)) {}
    virtual ~TranslationBackend() = default;

    VirtMode mode() const { return traits_.mode; }
    const BackendTraits &traits() const { return traits_; }

    /**
     * Resolve one TLB miss. Called by Walker::walk() with a freshly
     * reset @p r; must leave @p r either ok() with the effective
     * translation or carrying a fault for the OS/VMM to handle.
     * @p vcpu is the walking vCPU (backends with per-vCPU state).
     */
    virtual void serviceWalk(Walker &w, unsigned vcpu,
                             const TranslationContext &ctx, Addr va,
                             bool is_write, WalkResult &r) = 0;

    /** Depth-0 walk state for the charge-free prime pass (mirrors what
     *  serviceWalk's state machine would start from). */
    virtual Walker::PrimeState
    primeStart(const TranslationContext &ctx) const = 0;

    /** Invalidation observer to register with the CoherenceDomain, or
     *  nullptr when the backend caches nothing outside TLB/PWC. */
    virtual CoherenceListener *coherenceListener() { return nullptr; }

    /** Snapshot backend-private state. Stateless backends write and
     *  read nothing, preserving the pre-backend APSNAP byte layout. */
    virtual void saveState(Serializer &) const {}
    virtual void restoreState(Deserializer &) {}

  private:
    const BackendTraits &traits_;
};

/**
 * The shared stateless backend for a built-in mode: native, nested, or
 * the shadow family (shadow/agile/SHSP all dispatch Fig. 4's walk).
 * Walkers without an explicit backend (standalone walker tests) fall
 * back to these, reproducing the historical switch exactly. Panics for
 * modes that require per-machine state (Range).
 */
TranslationBackend &builtinBackend(VirtMode m);

} // namespace ap

#endif // AGILEPAGING_WALKER_BACKEND_HH
