/**
 * @file
 * Backend traits table and the stateless built-in backends.
 */

#include "walker/backend.hh"

#include "base/logging.hh"

namespace ap
{

const BackendTraits &
backendTraits(VirtMode m)
{
    //                               mode              vmm   smgr  agile shsp  seg
    static const BackendTraits native{VirtMode::Native, false, false, false, false, false};
    static const BackendTraits nested{VirtMode::Nested, true, false, false, false, false};
    static const BackendTraits shadow{VirtMode::Shadow, true, true, false, false, false};
    static const BackendTraits agile{VirtMode::Agile, true, true, true, false, false};
    static const BackendTraits shsp{VirtMode::Shsp, true, true, false, true, false};
    static const BackendTraits range{VirtMode::Range, true, false, false, false, true};
    switch (m) {
      case VirtMode::Native:
        return native;
      case VirtMode::Nested:
        return nested;
      case VirtMode::Shadow:
        return shadow;
      case VirtMode::Agile:
        return agile;
      case VirtMode::Shsp:
        return shsp;
      case VirtMode::Range:
        return range;
    }
    ap_panic("unknown VirtMode ", static_cast<unsigned>(m));
}

namespace
{

/** Unvirtualized baseline: the 1D walk of Fig. 2a. */
class NativeBackend : public TranslationBackend
{
  public:
    NativeBackend() : TranslationBackend(VirtMode::Native) {}

    void
    serviceWalk(Walker &w, unsigned, const TranslationContext &ctx,
                Addr va, bool is_write, WalkResult &r) override
    {
        w.nativeWalk(ctx, va, is_write, r);
    }

    Walker::PrimeState
    primeStart(const TranslationContext &ctx) const override
    {
        return {ctx.nativeRoot, false};
    }
};

/** Hardware nested paging: the 2D walk of Fig. 2b. */
class NestedBackend : public TranslationBackend
{
  public:
    NestedBackend() : TranslationBackend(VirtMode::Nested) {}

    void
    serviceWalk(Walker &w, unsigned, const TranslationContext &ctx,
                Addr va, bool is_write, WalkResult &r) override
    {
        w.nestedWalk(ctx, va, is_write, r);
    }

    Walker::PrimeState
    primeStart(const TranslationContext &ctx) const override
    {
        return {ctx.gptRootBacking, true};
    }
};

/**
 * The shadow family (shadow / agile / SHSP): Fig. 4's walk with
 * per-entry switching, degenerating to the nested walk when the
 * process runs fully nested (sptr == gptr).
 */
class ShadowFamilyBackend : public TranslationBackend
{
  public:
    explicit ShadowFamilyBackend(VirtMode m) : TranslationBackend(m) {}

    void
    serviceWalk(Walker &w, unsigned, const TranslationContext &ctx,
                Addr va, bool is_write, WalkResult &r) override
    {
        // Fig. 4: "if sptr == gptr then return nested_walk(...)".
        if (ctx.fullNested)
            w.nestedWalk(ctx, va, is_write, r);
        else
            w.agileWalk(ctx, va, is_write, r);
    }

    Walker::PrimeState
    primeStart(const TranslationContext &ctx) const override
    {
        if (ctx.fullNested || ctx.rootSwitch)
            return {ctx.gptRootBacking, true};
        return {ctx.sptRoot, false};
    }
};

} // namespace

TranslationBackend &
builtinBackend(VirtMode m)
{
    static NativeBackend native;
    static NestedBackend nested;
    static ShadowFamilyBackend shadow{VirtMode::Shadow};
    static ShadowFamilyBackend agile{VirtMode::Agile};
    static ShadowFamilyBackend shsp{VirtMode::Shsp};
    switch (m) {
      case VirtMode::Native:
        return native;
      case VirtMode::Nested:
        return nested;
      case VirtMode::Shadow:
        return shadow;
      case VirtMode::Agile:
        return agile;
      case VirtMode::Shsp:
        return shsp;
      case VirtMode::Range:
        // The range backend carries per-vCPU segment state; it must be
        // created per machine through the registry.
        ap_panic("range translation has no stateless built-in backend");
    }
    ap_panic("unknown VirtMode ", static_cast<unsigned>(m));
}

} // namespace ap
