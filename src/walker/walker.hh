/**
 * @file
 * The hardware page-table walker.
 *
 * Implements the four walk state machines of the paper:
 *   - native 1D walk            (Fig. 2a)
 *   - nested 2D walk            (Fig. 2b)
 *   - shadow 1D walk            (Fig. 2c)
 *   - agile walk with per-entry switching (Fig. 4)
 *
 * Shadow paging is the degenerate agile walk in which no entry carries
 * the switching bit, so one state machine serves both. Every entry the
 * walker reads is charged as one memory reference; the page-walk caches
 * and the nested TLB remove references exactly where real MMU caches
 * would.
 */

#ifndef AGILEPAGING_WALKER_WALKER_HH
#define AGILEPAGING_WALKER_WALKER_HH

#include <array>
#include <optional>

#include "base/stats.hh"
#include "base/types.hh"
#include "mem/phys_mem.hh"
#include "tlb/nested_tlb.hh"
#include "tlb/pwc.hh"
#include "walker/walk_result.hh"

namespace ap
{

class TranslationBackend;

/**
 * Architectural register state the walker consults for one process:
 * the three page-table pointers of agile paging (sptr, gptr, hptr)
 * plus the native pointer for the unvirtualized baseline.
 */
struct TranslationContext
{
    VirtMode mode = VirtMode::Native;
    ProcId asid = 0;

    /** Native mode: root of the process page table (host frame). */
    FrameId nativeRoot = 0;

    /** gptr: root of the guest page table (a *guest* frame id). */
    FrameId gptRoot = 0;
    /** Host frame backing the gPT root (needed to resume in nested
     *  mode without translating gptr; loaded by the VMM). */
    FrameId gptRootBacking = 0;
    /** hptr: root of the host page table (host frame). */
    FrameId hptRoot = 0;
    /** sptr: root of the shadow page table (host frame). */
    FrameId sptRoot = 0;

    /** Agile, sptr==gptr case of Fig. 4: process runs fully nested
     *  including gptr translation (24-reference walks). */
    bool fullNested = false;
    /** Agile: the sptr register itself carries the switching bit, so
     *  every level is nested but gptr translation is skipped
     *  (20-reference walks). */
    bool rootSwitch = false;
};

/**
 * The walker. One instance per simulated core.
 */
class Walker : public stats::StatGroup
{
  public:
    Walker(stats::StatGroup *parent, PhysMem &mem, PageWalkCache &pwc,
           NestedTlb &ntlb);

    /**
     * Perform a full walk for @p va.
     *
     * On success the result carries the effective translation; on a
     * fault it carries enough context for the guest OS or VMM to
     * handle it, after which the machine retries the walk.
     *
     * The returned reference is to a scratch result reused across
     * walks (so the per-walk trace vector never reallocates on the hot
     * path); it is valid until the next walk() call. Copy it to keep.
     *
     * @param is_write the access is a store (sets dirty bits)
     */
    const WalkResult &walk(const TranslationContext &ctx, Addr va,
                           bool is_write);

    /**
     * Attach the machine's translation backend; walks dispatch through
     * it instead of the built-in per-mode singletons. @p vcpu is this
     * walker's vCPU index, passed to the backend so per-vCPU backend
     * state (segment-register files) follows the walking core. Not
     * owned. A walker without a backend (standalone tests) falls back
     * to builtinBackend(ctx.mode).
     */
    void
    setBackend(TranslationBackend *backend, unsigned vcpu)
    {
        backend_ = backend;
        vcpu_ = vcpu;
    }

    /** Enable per-access chronological tracing (Table II bench). */
    void setTracing(bool on) { tracing_ = on; }

    /**
     * Walk state entering one depth of a prime pass: which host frame
     * holds that level's entries and whether the walk has switched to
     * the guest table (entry pfns are guest frames needing a host
     * translation).
     */
    struct PrimeState
    {
        FrameId frame = 0;
        bool nested = false;
    };

    /**
     * Prefix memo threaded through a VPN-sorted prime sequence:
     * state[d] is the walk state entering depth d for lastVa's path.
     * Because the caller visits VPNs in sorted order, successive VAs
     * share top-level indices and primeWalk() re-enters the deepest
     * shared level instead of re-walking the upper subtree. The memo
     * never outlives one batch, so PT writes and flushes between
     * batches cannot leave stale entries behind.
     */
    struct PrimeMemo
    {
        Addr lastVa = 0;
        unsigned levels = 0;
        std::array<PrimeState, kPtLevels> state{};
    };

    /**
     * Read-only pre-resolution of @p va for batched replay: walks the
     * same tables walk() would touch, pulling their PTE lines into the
     * host cache, but charges no references, fills no PWC/nTLB entry,
     * sets no accessed/dirty bit, and handles no fault (it simply
     * stops at invalid or unbacked entries). Simulated state and every
     * statistic are untouched, which is what keeps batched replay
     * bit-identical to the unbatched path.
     */
    void primeWalk(const TranslationContext &ctx, Addr va,
                   PrimeMemo &memo) const;

    /**
     * Architectural two-stage leaf resolution of @p va: what the
     * nested tables currently say, independent of any cached state.
     * Charges no references, fills no PWC/nTLB entry, and sets no
     * accessed/dirty bit. Backends use it to validate derived mapping
     * state (a segment-register hit) against the truth; the leaf PTE
     * pointer stays mutable so the caller can apply the architectural
     * A/D side effects of a hit itself.
     */
    struct ArchNestedLeaf
    {
        Pte *guestLeaf = nullptr; ///< guest leaf PTE (mutable for A/D)
        FrameId h4k = 0;          ///< host frame of va's exact 4K page
        bool writable = false;    ///< guest && host writable
    };

    /** @return the current architectural translation of @p va through
     *  guest + host tables, or std::nullopt when unmapped/unbacked. */
    std::optional<ArchNestedLeaf>
    archNestedLeaf(const TranslationContext &ctx, Addr va) const;

    stats::Scalar walks;
    stats::Scalar refsTotal;
    /** References made by *successful* walks only (drives the
     *  Table VI average; faulted partial walks are excluded). */
    stats::Scalar refsOkTotal;
    stats::Distribution refsDist;
    /** Successful walks by mode-coverage class (Table VI columns):
     *  index 0 = full shadow (4 refs), 1..4 = entered nested after
     *  3..0 shadow levels (8/12/16/20 refs), 5 = full nested (24). */
    stats::Scalar coverage[6];
    stats::Scalar guestFaults;
    stats::Scalar hostFaults;
    stats::Scalar shadowFaults;
    stats::Scalar nativeFaults;

    /**
     * The walk state machines, public as the primitives backends
     * compose walk servicing from (walker/backend.hh). Each assumes a
     * freshly reset @p r.
     */

    /** 1D walk used for native mode. */
    void nativeWalk(const TranslationContext &ctx, Addr va, bool is_write,
                    WalkResult &r);

    /** 2D walk of Fig. 2b (also agile's sptr==gptr case). */
    void nestedWalk(const TranslationContext &ctx, Addr va, bool is_write,
                    WalkResult &r);

    /** Shadow/agile walk of Fig. 4. */
    void agileWalk(const TranslationContext &ctx, Addr va, bool is_write,
                   WalkResult &r);

  private:
    /** Second-stage leaf translation of one guest frame. */
    struct HostLeaf
    {
        FrameId h4k = 0;
        PageSize hostSize = PageSize::Size4K;
        bool writable = false;
    };

    /**
     * Translate @p gframe through the host page table (nested TLB
     * assisted). Charges references into @p result.
     * @return false on HostFault (result filled in).
     */
    bool hostTranslate(const TranslationContext &ctx, FrameId gframe,
                       WalkResult &result, HostLeaf &out);

    /** Charge-free host-stage leaf lookup for the prime pass.
     *  @return the backing 4K host frame, or 0 when unbacked. */
    FrameId primeHostFrame(const TranslationContext &ctx,
                           FrameId gframe) const;

    /** Charge-free host-stage leaf lookup that also reports host
     *  writability (archNestedLeaf's second stage). */
    bool archHostLeaf(const TranslationContext &ctx, FrameId gframe,
                      FrameId &h4k, bool &writable) const;

    /** Classify a successful walk into a Table VI coverage column. */
    void recordCoverage(const WalkResult &r);

    void
    charge(WalkResult &r, WalkTable table, unsigned depth, FrameId frame)
    {
        ++r.refs;
        ++r.refsByTable[static_cast<std::size_t>(table)];
        if (tracing_)
            r.trace.push_back(WalkAccess{table, depth, frame});
    }

    static PageSize
    sizeAtDepth(unsigned depth)
    {
        return depth == kPtLevels - 1   ? PageSize::Size4K
               : depth == kPtLevels - 2 ? PageSize::Size2M
                                        : PageSize::Size1G;
    }

    PhysMem &mem_;
    PageWalkCache &pwc_;
    NestedTlb &ntlb_;
    TranslationBackend *backend_ = nullptr;
    unsigned vcpu_ = 0;
    bool tracing_ = false;
    /** Scratch result reused across walks (no per-walk allocation). */
    WalkResult result_;
};

} // namespace ap

#endif // AGILEPAGING_WALKER_WALKER_HH
