/**
 * @file
 * Result of a hardware page walk: outcome, translation, cost, and an
 * optional chronological access trace (used to regenerate the paper's
 * Fig. 1/Fig. 3 access sequences and Table II reference counts).
 */

#ifndef AGILEPAGING_WALKER_WALK_RESULT_HH
#define AGILEPAGING_WALKER_WALK_RESULT_HH

#include <string>
#include <vector>

#include "base/types.hh"

namespace ap
{

/** Which architectural structure one walk reference touched. */
enum class WalkTable : std::uint8_t
{
    NativePt,
    GuestPt,
    HostPt,
    ShadowPt,
};

/** Number of distinct WalkTable values. */
inline constexpr std::size_t kNumWalkTables = 4;

/** @return short printable name for a walk table. */
constexpr const char *
walkTableName(WalkTable t)
{
    switch (t) {
      case WalkTable::NativePt:
        return "nPT";
      case WalkTable::GuestPt:
        return "gPT";
      case WalkTable::HostPt:
        return "hPT";
      case WalkTable::ShadowPt:
        return "sPT";
    }
    return "?";
}

/** One memory reference made by the walker. */
struct WalkAccess
{
    WalkTable table;
    /** Walk depth of the entry read (0 = root level). */
    unsigned depth;
    /** Host frame the reference went to. */
    FrameId frame;
};

/** Why a walk stopped early. */
enum class WalkFault : std::uint8_t
{
    None,
    /** Invalid entry in the guest page table (guest handles). */
    GuestFault,
    /** Invalid entry in the host page table (VM exit; VMM handles). */
    HostFault,
    /** Invalid entry in the shadow page table (VM exit; VMM fills). */
    ShadowFault,
    /** Invalid entry in the native page table (native OS handles). */
    NativeFault,
};

/** Completed (or faulted) walk. */
struct WalkResult
{
    WalkFault fault = WalkFault::None;

    /** On success: host frame of the effective page's base. */
    FrameId hframe = 0;
    /** On success: effective TLB-entry granule (min of the two stages). */
    PageSize size = PageSize::Size4K;
    /** On success: write permission of the full translation. */
    bool writable = false;

    /** Memory references charged to this walk (after PWC/nTLB savings). */
    unsigned refs = 0;

    /** References charged per table (indexed by WalkTable), so a walk
     *  record can say *where* the refs went (gPT vs hPT vs sPT). */
    unsigned refsByTable[kNumWalkTables] = {0, 0, 0, 0};

    /** Walk depth the PWC let this walk resume at (0 = PWC miss,
     *  walked from the root). */
    unsigned pwcStartDepth = 0;

    /** Host translations served by the nested TLB instead of an hPT
     *  sub-walk during this walk. */
    unsigned ntlbHits = 0;

    /** References that read a terminal leaf entry. Leaf PTEs are the
     *  cache-cold part of a walk; upper-level entries usually hit the
     *  data caches (Intel optimization manual [36]), so the cost model
     *  prices the two classes differently. */
    unsigned coldRefs = 0;

    /**
     * Walk depth at which the walk entered nested mode:
     * kPtLevels (4) = never (full shadow / native), 0 = every level
     * nested. Used for the Table VI mode-coverage histogram.
     */
    unsigned switchDepth = kPtLevels;

    /** True if this walk ran fully nested including gptr translation. */
    bool fullNested = false;

    /** The walk set a leaf dirty bit that was previously clear (the
     *  machine charges the hardware A/D-writeback walk for this under
     *  optimization 1). */
    bool dirtyTransition = false;

    /** On success: dirty state of the leaf PTE after this walk. TLB
     *  fills cache it so a later store through a clean cached entry
     *  can re-walk to set the dirty bit, as x86 hardware does. */
    bool dirty = false;

    /** Backend-specific extra cycles this walk costs beyond the
     *  per-reference charges: e.g. a range-backend segment fill.
     *  Always 0 for the classic paging backends, which keeps their
     *  cost model (and results) byte-identical. */
    Cycles extraCycles = 0;

    /** Fault details: the faulting guest virtual address. */
    Addr faultVa = 0;
    /** HostFault: the guest physical address that missed in the hPT. */
    Addr faultGpa = 0;
    /** Depth of the faulting entry in its table. */
    unsigned faultDepth = 0;

    /** Chronological trace (filled only when tracing is enabled). */
    std::vector<WalkAccess> trace;

    bool ok() const { return fault == WalkFault::None; }

    /**
     * Return to the freshly-constructed state while keeping the trace
     * vector's capacity, so a reused result never reallocates.
     */
    void
    reset()
    {
        fault = WalkFault::None;
        hframe = 0;
        size = PageSize::Size4K;
        writable = false;
        refs = 0;
        for (unsigned &t : refsByTable)
            t = 0;
        pwcStartDepth = 0;
        ntlbHits = 0;
        coldRefs = 0;
        switchDepth = kPtLevels;
        fullNested = false;
        dirtyTransition = false;
        dirty = false;
        extraCycles = 0;
        faultVa = 0;
        faultGpa = 0;
        faultDepth = 0;
        trace.clear();
    }
};

} // namespace ap

#endif // AGILEPAGING_WALKER_WALK_RESULT_HH
