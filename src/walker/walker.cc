/**
 * @file
 * Page-table walker implementation.
 */

#include "walker/walker.hh"

#include <algorithm>

#include "base/bitfield.hh"
#include "base/logging.hh"
#include "walker/backend.hh"

namespace ap
{

namespace
{
/**
 * Leaf A/D side effect shared by every walk flavour: a store through
 * an effectively-writable translation sets the leaf dirty bit, and the
 * clean->dirty transition is noted so the machine can charge the
 * hardware A/D writeback for it. The resulting dirty state is reported
 * in the walk result so TLB entries can cache it.
 */
void
updateLeafDirty(Pte &pte, bool is_write, bool effective_writable,
                WalkResult &r)
{
    if (is_write && effective_writable) {
        if (!pte.dirty)
            r.dirtyTransition = true;
        pte.dirty = true;
    }
    r.dirty = pte.dirty;
}
} // namespace

Walker::Walker(stats::StatGroup *parent, PhysMem &mem, PageWalkCache &pwc,
               NestedTlb &ntlb)
    : stats::StatGroup("walker", parent),
      walks(this, "walks", "page walks performed"),
      refsTotal(this, "refs_total", "memory references by all walks"),
      refsOkTotal(this, "refs_ok_total",
                  "memory references by successful walks"),
      refsDist(this, "refs", "memory references per walk", 0, 30, 1),
      coverage{{this, "cov_shadow", "walks fully shadow (4 refs)"},
               {this, "cov_sw3", "walks nested below depth 3 (8 refs)"},
               {this, "cov_sw2", "walks nested below depth 2 (12 refs)"},
               {this, "cov_sw1", "walks nested below depth 1 (16 refs)"},
               {this, "cov_sw0", "walks fully nested, no gptr (20 refs)"},
               {this, "cov_nested", "walks fully nested incl gptr (24)"}},
      guestFaults(this, "guest_faults", "walks ending in a guest fault"),
      hostFaults(this, "host_faults", "walks ending in a host fault"),
      shadowFaults(this, "shadow_faults", "walks ending in a shadow fault"),
      nativeFaults(this, "native_faults", "walks ending in a native fault"),
      mem_(mem),
      pwc_(pwc),
      ntlb_(ntlb)
{
}

const WalkResult &
Walker::walk(const TranslationContext &ctx, Addr va, bool is_write)
{
    ++walks;
    WalkResult &r = result_;
    r.reset();
    TranslationBackend &backend =
        backend_ ? *backend_ : builtinBackend(ctx.mode);
    backend.serviceWalk(*this, vcpu_, ctx, va, is_write, r);
    refsTotal += r.refs;
    if (r.ok()) {
        refsOkTotal += r.refs;
        refsDist.sample(r.refs);
        recordCoverage(r);
    } else {
        switch (r.fault) {
          case WalkFault::GuestFault:
            ++guestFaults;
            break;
          case WalkFault::HostFault:
            ++hostFaults;
            break;
          case WalkFault::ShadowFault:
            ++shadowFaults;
            break;
          case WalkFault::NativeFault:
            ++nativeFaults;
            break;
          default:
            break;
        }
    }
    return r;
}

FrameId
Walker::primeHostFrame(const TranslationContext &ctx, FrameId gframe) const
{
    Addr gpa = frameAddr(gframe);
    FrameId f = ctx.hptRoot;
    for (unsigned d = 0; d < kPtLevels; ++d) {
        const PtPage *page = mem_.tableOrNull(f);
        if (!page)
            return 0;
        const Pte &pte = (*page)[ptIndex(gpa, d)];
        if (!pte.valid)
            return 0;
        if (d == kPtLevels - 1 || pte.pageSize) {
            std::uint64_t frames = pageBytes(sizeAtDepth(d)) / kPageBytes;
            return pte.pfn + (gframe % frames);
        }
        f = pte.pfn;
    }
    return 0;
}

void
Walker::primeWalk(const TranslationContext &ctx, Addr va,
                  PrimeMemo &memo) const
{
    // Depth-0 state, from the backend (mirrors walk()'s dispatch).
    PrimeState st = (backend_ ? *backend_ : builtinBackend(ctx.mode))
                        .primeStart(ctx);

    unsigned d = 0;
    if (memo.levels > 0) {
        // Number of top-level indices this VA shares with the previous
        // one; the walk state entering depth k depends only on indices
        // 0..k-1, so the deepest memoized shared level is re-entered
        // directly (the "walk shared upper subtrees once" fast path).
        unsigned shared = 0;
        while (shared < kPtLevels &&
               ptIndex(va, shared) == ptIndex(memo.lastVa, shared)) {
            ++shared;
        }
        unsigned jump = std::min(shared, memo.levels - 1);
        if (jump > 0) {
            d = jump;
            st = memo.state[jump];
        }
    }
    memo.lastVa = va;
    memo.state[d] = st;
    memo.levels = d + 1;

    for (; d < kPtLevels; ++d) {
        const PtPage *page = mem_.tableOrNull(st.frame);
        if (!page)
            return;
        const Pte &pte = (*page)[ptIndex(va, d)];
        if (!pte.valid)
            return;
        if (!st.nested && pte.switching) {
            // Agile switch: continue the remaining levels in the guest
            // table whose next level pte.pfn holds (a host frame).
            if (d + 1 >= kPtLevels)
                return;
            st = {pte.pfn, true};
            memo.state[d + 1] = st;
            memo.levels = d + 2;
            continue;
        }
        if (d == kPtLevels - 1 || pte.pageSize)
            return; // leaf: the translation itself is not needed
        FrameId next = pte.pfn;
        if (st.nested) {
            next = primeHostFrame(ctx, next);
            if (!next)
                return;
        }
        st = {next, st.nested};
        memo.state[d + 1] = st;
        memo.levels = d + 2;
    }
}

bool
Walker::archHostLeaf(const TranslationContext &ctx, FrameId gframe,
                     FrameId &h4k, bool &writable) const
{
    Addr gpa = frameAddr(gframe);
    FrameId f = ctx.hptRoot;
    for (unsigned d = 0; d < kPtLevels; ++d) {
        const PtPage *page = mem_.tableOrNull(f);
        if (!page)
            return false;
        const Pte &pte = (*page)[ptIndex(gpa, d)];
        if (!pte.valid)
            return false;
        if (d == kPtLevels - 1 || pte.pageSize) {
            std::uint64_t frames = pageBytes(sizeAtDepth(d)) / kPageBytes;
            h4k = pte.pfn + (gframe % frames);
            writable = pte.writable;
            return true;
        }
        f = pte.pfn;
    }
    return false;
}

std::optional<Walker::ArchNestedLeaf>
Walker::archNestedLeaf(const TranslationContext &ctx, Addr va) const
{
    FrameId cur = 0;
    bool root_writable = false;
    if (!archHostLeaf(ctx, ctx.gptRoot, cur, root_writable))
        return std::nullopt;
    for (unsigned d = 0; d < kPtLevels; ++d) {
        if (!mem_.tableOrNull(cur))
            return std::nullopt;
        Pte &pte = mem_.table(cur)[ptIndex(va, d)];
        if (!pte.valid)
            return std::nullopt;
        if (d == kPtLevels - 1 || pte.pageSize) {
            std::uint64_t gframes = pageBytes(sizeAtDepth(d)) / kPageBytes;
            FrameId gf = pte.pfn + (frameOf(va) % gframes);
            FrameId h4k = 0;
            bool host_writable = false;
            if (!archHostLeaf(ctx, gf, h4k, host_writable))
                return std::nullopt;
            return ArchNestedLeaf{&pte, h4k,
                                  pte.writable && host_writable};
        }
        FrameId next = 0;
        bool next_writable = false;
        if (!archHostLeaf(ctx, pte.pfn, next, next_writable))
            return std::nullopt;
        cur = next;
    }
    return std::nullopt;
}

void
Walker::recordCoverage(const WalkResult &r)
{
    if (r.fullNested) {
        ++coverage[5];
    } else if (r.switchDepth >= kPtLevels) {
        ++coverage[0];
    } else {
        // switchDepth 3 -> one nested level (8 refs) -> coverage[1], ...
        ++coverage[kPtLevels - r.switchDepth];
    }
}

bool
Walker::hostTranslate(const TranslationContext &ctx, FrameId gframe,
                      WalkResult &result, HostLeaf &out)
{
    if (auto cached = ntlb_.lookup(gframe)) {
        ++result.ntlbHits;
        out.h4k = cached->hframe;
        out.hostSize = cached->hostSize;
        out.writable = cached->writable;
        return true;
    }
    Addr gpa = frameAddr(gframe);
    FrameId f = ctx.hptRoot;
    for (unsigned d = 0; d < kPtLevels; ++d) {
        PtPage &page = mem_.table(f);
        Pte &pte = page[ptIndex(gpa, d)];
        charge(result, WalkTable::HostPt, d, f);
        if (!pte.valid) {
            result.fault = WalkFault::HostFault;
            result.faultGpa = gpa;
            result.faultDepth = d;
            return false;
        }
        pte.accessed = true;
        if (d == kPtLevels - 1 || pte.pageSize) {
            ++result.coldRefs; // the host leaf PTE read
            std::uint64_t frames = pageBytes(sizeAtDepth(d)) / kPageBytes;
            out.h4k = pte.pfn + (gframe % frames);
            out.hostSize = sizeAtDepth(d);
            out.writable = pte.writable;
            ntlb_.insert(gframe, NtlbEntry{out.h4k, out.hostSize,
                                           out.writable});
            return true;
        }
        f = pte.pfn;
    }
    ap_panic("host walk ran off the end");
}

void
Walker::nativeWalk(const TranslationContext &ctx, Addr va, bool is_write,
                   WalkResult &r)
{
    PwcHit hit = pwc_.probe(va, ctx.asid);
    unsigned depth = hit.startDepth;
    r.pwcStartDepth = depth;
    FrameId cur = depth ? hit.entry.frame : ctx.nativeRoot;

    for (unsigned d = depth; d < kPtLevels; ++d) {
        PtPage &page = mem_.table(cur);
        Pte &pte = page[ptIndex(va, d)];
        charge(r, WalkTable::NativePt, d, cur);
        if (!pte.valid) {
            r.fault = WalkFault::NativeFault;
            r.faultVa = va;
            r.faultDepth = d;
            return;
        }
        pte.accessed = true;
        if (d == kPtLevels - 1 || pte.pageSize) {
            ++r.coldRefs; // the leaf PTE read
            r.hframe = pte.pfn;
            r.size = sizeAtDepth(d);
            r.writable = pte.writable;
            updateLeafDirty(pte, is_write, pte.writable, r);
            return;
        }
        cur = pte.pfn;
        pwc_.fill(va, ctx.asid, d + 1, cur, false);
    }
    ap_panic("native walk ran off the end");
}

namespace
{
/** Effective granule of a two-stage translation (paper Section V:
 *  mixed sizes are broken to the smaller for TLB entry). */
PageSize
minSize(PageSize a, PageSize b)
{
    return pageBytes(a) <= pageBytes(b) ? a : b;
}
} // namespace

void
Walker::nestedWalk(const TranslationContext &ctx, Addr va, bool is_write,
                   WalkResult &r)
{
    r.fullNested = true;
    r.switchDepth = 0;

    PwcHit hit = pwc_.probe(va, ctx.asid);
    unsigned depth = hit.startDepth;
    r.pwcStartDepth = depth;
    FrameId cur;
    if (depth) {
        cur = hit.entry.frame;
    } else {
        // Translate gptr through the host table (Table II "PTptr" row).
        HostLeaf leaf;
        if (!hostTranslate(ctx, ctx.gptRoot, r, leaf)) {
            r.faultVa = va;
            return;
        }
        cur = leaf.h4k;
    }

    for (unsigned d = depth; d < kPtLevels; ++d) {
        PtPage &page = mem_.table(cur);
        Pte &pte = page[ptIndex(va, d)];
        charge(r, WalkTable::GuestPt, d, cur);
        if (!pte.valid) {
            r.fault = WalkFault::GuestFault;
            r.faultVa = va;
            r.faultDepth = d;
            return;
        }
        pte.accessed = true;
        if (d == kPtLevels - 1 || pte.pageSize) {
            ++r.coldRefs; // the guest leaf PTE read
            PageSize gsize = sizeAtDepth(d);
            std::uint64_t gframes = pageBytes(gsize) / kPageBytes;
            FrameId gf = pte.pfn + (frameOf(va) % gframes);
            HostLeaf leaf;
            if (!hostTranslate(ctx, gf, r, leaf)) {
                r.faultVa = va;
                return;
            }
            r.size = minSize(gsize, leaf.hostSize);
            std::uint64_t eframes = pageBytes(r.size) / kPageBytes;
            r.hframe = leaf.h4k - (frameOf(va) % eframes);
            r.writable = pte.writable && leaf.writable;
            updateLeafDirty(pte, is_write, r.writable, r);
            return;
        }
        HostLeaf leaf;
        if (!hostTranslate(ctx, pte.pfn, r, leaf)) {
            r.faultVa = va;
            return;
        }
        cur = leaf.h4k;
        pwc_.fill(va, ctx.asid, d + 1, cur, true);
    }
    ap_panic("nested walk ran off the end");
}

void
Walker::agileWalk(const TranslationContext &ctx, Addr va, bool is_write,
                  WalkResult &r)
{
    PwcHit hit = pwc_.probe(va, ctx.asid);
    unsigned depth = hit.startDepth;
    r.pwcStartDepth = depth;
    bool nested;
    FrameId cur;
    if (depth) {
        nested = hit.entry.nested;
        cur = hit.entry.frame;
        r.switchDepth = nested ? depth : kPtLevels;
    } else if (ctx.rootSwitch) {
        // The sptr register itself carries the switching bit: every
        // level is walked nested, but gptr needs no translation
        // (20-reference walks; Fig. 3e).
        nested = true;
        cur = ctx.gptRootBacking;
        r.switchDepth = 0;
    } else {
        nested = false;
        cur = ctx.sptRoot;
    }

    for (unsigned d = depth; d < kPtLevels; ++d) {
        if (!nested) {
            PtPage &page = mem_.table(cur);
            Pte &pte = page[ptIndex(va, d)];
            charge(r, WalkTable::ShadowPt, d, cur);
            if (!pte.valid) {
                r.fault = WalkFault::ShadowFault;
                r.faultVa = va;
                r.faultDepth = d;
                return;
            }
            pte.accessed = true;
            if (pte.switching) {
                // Switch to nested mode: the entry holds the host
                // frame of the *next level* of the guest page table.
                ap_assert(d < kPtLevels - 1,
                          "switching bit in a leaf shadow entry");
                nested = true;
                cur = pte.pfn;
                r.switchDepth = d + 1;
                pwc_.fill(va, ctx.asid, d + 1, cur, true);
                continue;
            }
            if (d == kPtLevels - 1 || pte.pageSize) {
                // Shadow leaf: complete gVA=>hPA translation.
                ++r.coldRefs; // the shadow leaf PTE read
                r.size = sizeAtDepth(d);
                r.hframe = pte.pfn;
                r.writable = pte.writable;
                updateLeafDirty(pte, is_write, pte.writable, r);
                return;
            }
            cur = pte.pfn;
            pwc_.fill(va, ctx.asid, d + 1, cur, false);
        } else {
            PtPage &page = mem_.table(cur);
            Pte &pte = page[ptIndex(va, d)];
            charge(r, WalkTable::GuestPt, d, cur);
            if (!pte.valid) {
                r.fault = WalkFault::GuestFault;
                r.faultVa = va;
                r.faultDepth = d;
                return;
            }
            pte.accessed = true;
            if (d == kPtLevels - 1 || pte.pageSize) {
                PageSize gsize = sizeAtDepth(d);
                std::uint64_t gframes = pageBytes(gsize) / kPageBytes;
                FrameId gf = pte.pfn + (frameOf(va) % gframes);
                HostLeaf leaf;
                if (!hostTranslate(ctx, gf, r, leaf)) {
                    r.faultVa = va;
                    return;
                }
                r.size = minSize(gsize, leaf.hostSize);
                std::uint64_t eframes = pageBytes(r.size) / kPageBytes;
                r.hframe = leaf.h4k - (frameOf(va) % eframes);
                r.writable = pte.writable && leaf.writable;
                updateLeafDirty(pte, is_write, r.writable, r);
                return;
            }
            HostLeaf leaf;
            if (!hostTranslate(ctx, pte.pfn, r, leaf)) {
                r.faultVa = va;
                return;
            }
            cur = leaf.h4k;
            pwc_.fill(va, ctx.asid, d + 1, cur, true);
        }
    }
    ap_panic("agile walk ran off the end");
}

} // namespace ap
