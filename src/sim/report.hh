/**
 * @file
 * Text rendering of experiment results in the shapes the paper uses:
 * the Figure 5 overhead bars (page-walk + VMM segments per config) and
 * the Table VI mode-coverage rows, plus generic CSV output.
 */

#ifndef AGILEPAGING_SIM_REPORT_HH
#define AGILEPAGING_SIM_REPORT_HH

#include <ostream>
#include <string>
#include <vector>

#include "sim/machine.hh"

namespace ap
{

/** Short config label in the paper's style: "4K:B", "2M:A", ... */
std::string configLabel(const RunResult &r);

/**
 * Print the Figure 5 table: one row per (workload, config) with the
 * page-walk and VMM-intervention overhead segments.
 */
void printFigure5(std::ostream &os, const std::vector<RunResult> &runs);

/**
 * Print the Table VI rows: per workload, the percentage of TLB misses
 * served at each agile coverage class and the average memory accesses
 * per miss. Expects agile runs.
 */
void printTable6(std::ostream &os, const std::vector<RunResult> &runs);

/** Machine-readable CSV with every RunResult field. */
void printCsv(std::ostream &os, const std::vector<RunResult> &runs);

/**
 * Execution-environment block recorded alongside machine-readable
 * results, so a number can always be traced to the host and build
 * that produced it.
 */
struct HostMeta
{
    /** std::thread::hardware_concurrency() of the producing host. */
    unsigned hardwareConcurrency = 0;
    /** Worker threads the producing run actually used (0 = unknown). */
    unsigned jobs = 0;
    /** CMAKE_BUILD_TYPE the binary was compiled as. */
    std::string buildType;
};

/** The current process's HostMeta (@p jobs = worker count used). */
HostMeta currentHostMeta(unsigned jobs);

/** Emit @p meta as a JSON object ({"hardware_concurrency": ...}). */
void writeHostMetaJson(std::ostream &os, const HostMeta &meta);

/**
 * Emit one RunResult as the JSON object used inside the ap-runs-v1
 * "runs" array. Shared by writeRunResultsJson and the apsimd streamed
 * run frames, so a frame's "run" object is byte-identical to the
 * corresponding in-process array element.
 */
void writeRunResultJson(std::ostream &os, const RunResult &r);

/**
 * Machine-readable JSON with every RunResult field, including the
 * per-cause VM-exit attribution. The root object carries
 * `"schema": "ap-runs-v1"`, a `"host"` block describing the producing
 * machine/build, and a `"runs"` array; see EXPERIMENTS.md for the
 * full schema. @p jobs records the worker-thread count that produced
 * @p runs (0 if unknown/not applicable).
 */
void writeRunResultsJson(std::ostream &os,
                         const std::vector<RunResult> &runs,
                         unsigned jobs = 0);

/**
 * ASCII bar (# per 2% of overhead) for quick visual comparison. Capped
 * at 60 columns; a trailing '+' marks bars that exceed the cap.
 */
std::string overheadBar(double fraction, double per_char = 0.02);

} // namespace ap

#endif // AGILEPAGING_SIM_REPORT_HH
