/**
 * @file
 * Text rendering of experiment results in the shapes the paper uses:
 * the Figure 5 overhead bars (page-walk + VMM segments per config) and
 * the Table VI mode-coverage rows, plus generic CSV output.
 */

#ifndef AGILEPAGING_SIM_REPORT_HH
#define AGILEPAGING_SIM_REPORT_HH

#include <ostream>
#include <string>
#include <vector>

#include "sim/machine.hh"

namespace ap
{

/** Short config label in the paper's style: "4K:B", "2M:A", ... */
std::string configLabel(const RunResult &r);

/**
 * Print the Figure 5 table: one row per (workload, config) with the
 * page-walk and VMM-intervention overhead segments.
 */
void printFigure5(std::ostream &os, const std::vector<RunResult> &runs);

/**
 * Print the Table VI rows: per workload, the percentage of TLB misses
 * served at each agile coverage class and the average memory accesses
 * per miss. Expects agile runs.
 */
void printTable6(std::ostream &os, const std::vector<RunResult> &runs);

/** Machine-readable CSV with every RunResult field. */
void printCsv(std::ostream &os, const std::vector<RunResult> &runs);

/**
 * Machine-readable JSON with every RunResult field, including the
 * per-cause VM-exit attribution. The root object carries
 * `"schema": "ap-runs-v1"` and a `"runs"` array; see EXPERIMENTS.md
 * for the full schema.
 */
void writeRunResultsJson(std::ostream &os,
                         const std::vector<RunResult> &runs);

/**
 * ASCII bar (# per 2% of overhead) for quick visual comparison. Capped
 * at 60 columns; a trailing '+' marks bars that exceed the cap.
 */
std::string overheadBar(double fraction, double per_char = 0.02);

} // namespace ap

#endif // AGILEPAGING_SIM_REPORT_HH
