/**
 * @file
 * Top-level simulation configuration: one struct aggregating every
 * subsystem's knobs, plus a small key=value option parser for the
 * example programs.
 */

#ifndef AGILEPAGING_SIM_CONFIG_HH
#define AGILEPAGING_SIM_CONFIG_HH

#include <string>

#include "base/types.hh"
#include "core/agile_policy.hh"
#include "core/range_backend.hh"
#include "guestos/guest_os.hh"
#include "tlb/coherence.hh"
#include "tlb/tlb_hierarchy.hh"
#include "vmm/shsp.hh"
#include "vmm/trap_costs.hh"
#include "vmm/vmm.hh"

namespace ap
{

/** Everything a Machine needs to be built. */
struct SimConfig
{
    /** Memory-virtualization technique for all processes. */
    VirtMode mode = VirtMode::Agile;
    /** Page size used at both translation stages (the paper evaluates
     *  4K:4K and 2M:2M). */
    PageSize pageSize = PageSize::Size4K;

    /** Host physical memory, in 4 KB frames. */
    std::uint64_t hostMemFrames = 1u << 18; // 1 GB
    std::uint64_t guestPtFrames = 1u << 15;
    std::uint64_t guestDataFrames = 1u << 17; // 512 MB of gPA space

    TlbHierarchyConfig tlb{};
    bool pwcEnabled = true;
    std::size_t pwcEntries = 32;
    std::size_t pwcWays = 4;
    bool ntlbEnabled = true;
    std::size_t ntlbEntries = 128;
    std::size_t ntlbWays = 4;

    /** Ideal execution cycles represented by one workload memory
     *  operation (a memory op stands for a few instructions). */
    Cycles cyclesPerOp = 3;
    /** Cycles per cache-cold page-walk memory reference (leaf PTE
     *  reads; PWC/nTLB hits cost 0). */
    Cycles walkRefCycles = 50;
    /** Cycles per cache-warm walk reference (upper-level entries sit
     *  in the data caches [36]). */
    Cycles walkRefWarmCycles = 12;
    /** Fraction of a workload's operations treated as warmup (fast-
     *  forward): counters reset before measurement, the standard
     *  simulator methodology for amortizing cold-start faults. */
    double warmupFraction = 0.10;
    /** Extra cycles charged when a translation is served by the L2 TLB
     *  rather than an L1 TLB. */
    Cycles l2TlbHitCycles = 7;
    /** Guest-visible cycles of a context switch (identical across
     *  modes; the shadow-mode *trap* is charged separately). */
    Cycles ctxSwitchGuestCycles = 400;

    TrapCosts trapCosts{};
    GuestOsConfig guestOs{};

    /** Hardware optimization 1 (Section IV): walker writes A/D bits
     *  into all three tables; dirty writeback costs a nested walk. */
    bool hwOptAd = false;
    /** Extra walk references charged per hardware dirty writeback. */
    unsigned adWritebackRefs = 24;
    /** Hardware optimization 2 (Section IV): sptr cache entries
     *  (0 disables). */
    std::size_t sptrCacheEntries = 0;

    /** KVM-style unsynced shadow leaf pages. */
    bool unsyncEnabled = true;

    AgilePolicyConfig policy{};
    ShspConfig shsp{};
    /** Range-backend segment-register file (mode == Range only). */
    RangeBackendConfig range{};
    /** Policy interval in instructions (the paper's "1 second"). */
    Tick policyIntervalOps = 200'000;

    /** Cross-check every translation against the functional tables
     *  (slow; on in tests, off in benchmarks). */
    bool verifyTranslations = false;

    // ------------------------------------------------------------------
    // Multi-vCPU guests and translation coherence.
    // ------------------------------------------------------------------

    /** vCPUs per guest. Each vCPU owns a private L1/L2 TLB, PWC and
     *  last-translation filter over the shared guest/shadow/nested
     *  tables; accesses interleave deterministically in round-robin
     *  quanta of vcpuQuantumOps. 1 reproduces the single-walker
     *  machine bit-for-bit. */
    unsigned numVcpus = 1;
    /** How invalidations reach remote vCPU TLBs (ignored at 1 vCPU). */
    TlbCoherence tlbCoherence = TlbCoherence::Software;
    /** Accesses each vCPU executes before the schedule rotates. */
    std::uint64_t vcpuQuantumOps = 64;
    /** Software mode: cycles charged per remote vCPU per shootdown
     *  (IPI send, remote handler, acknowledgement wait). */
    Cycles ipiShootdownCycles = 1600;
    /** Hardware mode: cycles charged per remote vCPU per shootdown
     *  (coherence message, no interrupt, no trap). */
    Cycles hwInvalidateCycles = 40;

    // ------------------------------------------------------------------
    // Host-side engine knobs. These change how fast the simulator runs,
    // never what it simulates, so they are deliberately excluded from
    // the snapshot config digest (simConfigDigest).
    // ------------------------------------------------------------------

    /** Batched-replay runs pre-resolve their sorted VPNs read-only so
     *  real walks find shared upper-level subtrees cache-warm
     *  ("--no-batched-walks" in the drivers turns this off). Stats are
     *  exact either way. */
    bool batchedWalks = true;
    /** Batched-replay runs scan each access run in 64-lane blocks,
     *  computing the last-translation-filter hit mask branch-free and
     *  retiring whole hit blocks with one bulk stat add
     *  ("--no-simd-filter" / "simd_filter=0" falls back to the scalar
     *  per-access chain). Stats are bit-identical either way. */
    bool simdFilter = true;
    /** Pages per slab of the page-table-page arena (sizing knob). */
    std::uint64_t arenaSlabPages = 256;

    /** Apply both optional hardware optimizations (the evaluated agile
     *  configuration includes them; Section VII "includes the benefit
     *  of hardware optimizations"). */
    void
    enableHwOpts()
    {
        hwOptAd = true;
        sptrCacheEntries = 8;
    }

    /**
     * Apply "key=value" (e.g. "mode=shadow", "page=2m",
     * "walk_ref_cycles=40"). @return false for an unknown key/value.
     */
    bool applyOption(const std::string &option);
};

/**
 * Process-wide default for SimConfig::batchedWalks, consulted by the
 * matrix drivers' configFor() path so "--no-batched-walks" reaches
 * every cell they build. Host-side engine toggle only — simulated
 * results are identical either way.
 */
void setBatchedWalksDefault(bool on);
bool batchedWalksDefault();

/**
 * Process-wide default for SimConfig::simdFilter, consulted by the
 * matrix drivers' configFor() path so "--no-simd-filter" reaches every
 * cell they build. Host-side engine toggle only — simulated results
 * are identical either way.
 */
void setSimdFilterDefault(bool on);
bool simdFilterDefault();

/** Parse a mode name ("native", "nested", "shadow", "agile", "shsp",
 *  "range"). Accepts every name virtModeName() emits. */
bool parseVirtMode(const std::string &s, VirtMode &out);

/** Parse a page size ("4k" or "2m"). */
bool parsePageSize(const std::string &s, PageSize &out);

/**
 * Strict decimal parse of an unsigned 64-bit value: the whole string
 * must be consumed ("4k" is rejected, not read as 4) and signs are
 * rejected ("-1" must not wrap to 2^64-1). @return success.
 */
bool parseU64(const std::string &s, std::uint64_t &out);

} // namespace ap

#endif // AGILEPAGING_SIM_CONFIG_HH
