/**
 * @file
 * Parallel experiment engine: a thread-pool work queue that fans
 * independent simulation cells across worker threads.
 *
 * Every cell of the evaluation matrix is an isolated Machine with its
 * own physical memory, caches, and RNG stream seeded from the cell's
 * WorkloadParams, so cells share no mutable state and parallel results
 * are bit-identical to serial ones. Results are collected into their
 * original index slots, so output order is independent of scheduling.
 */

#ifndef AGILEPAGING_SIM_PARALLEL_RUNNER_HH
#define AGILEPAGING_SIM_PARALLEL_RUNNER_HH

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <exception>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "sim/experiment.hh"

namespace ap
{

/**
 * Resolve a --jobs request: 0 means "one worker per hardware thread".
 * @return at least 1.
 */
unsigned effectiveJobs(unsigned requested);

/**
 * Run @p fn(i) for every i in [0, n), fanned across up to @p jobs
 * worker threads pulling indices from a shared queue.
 *
 * @p fn must be safe to call concurrently for distinct indices; each
 * index is claimed by exactly one worker. jobs <= 1 (or n <= 1) runs
 * inline on the calling thread — the exact serial path.
 *
 * The first exception thrown by any fn(i) is rethrown on the calling
 * thread after all workers have drained.
 */
template <typename Fn>
void
parallelFor(std::size_t n, unsigned jobs, Fn &&fn)
{
    jobs = effectiveJobs(jobs);
    if (jobs <= 1 || n <= 1) {
        for (std::size_t i = 0; i < n; ++i)
            fn(i);
        return;
    }

    std::atomic<std::size_t> next{0};
    std::mutex error_mutex;
    std::exception_ptr error;

    auto worker = [&] {
        for (;;) {
            std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
            if (i >= n)
                return;
            try {
                fn(i);
            } catch (...) {
                std::lock_guard<std::mutex> lock(error_mutex);
                if (!error)
                    error = std::current_exception();
                // Drain the queue so the other workers stop early.
                next.store(n, std::memory_order_relaxed);
                return;
            }
        }
    };

    std::size_t workers = std::min<std::size_t>(jobs, n);
    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (std::size_t w = 0; w < workers; ++w)
        pool.emplace_back(worker);
    for (std::thread &t : pool)
        t.join();

    if (error)
        std::rethrow_exception(error);
}

/**
 * Run every cell of @p specs with up to @p jobs workers.
 * @param cell per-cell runner override (empty = runExperiment); must
 *        be safe to call concurrently for distinct cells
 * @return results in spec order, bit-identical to running serially.
 */
std::vector<RunResult>
runExperiments(const std::vector<ExperimentSpec> &specs, unsigned jobs,
               const CellFn &cell = {});

/**
 * Map @p fn over [0, n) in parallel, collecting return values in index
 * order. @p fn must be safe to call concurrently for distinct indices.
 */
template <typename Fn>
auto
parallelMap(std::size_t n, unsigned jobs, Fn &&fn)
    -> std::vector<decltype(fn(std::size_t{0}))>
{
    std::vector<decltype(fn(std::size_t{0}))> results(n);
    parallelFor(n, jobs, [&](std::size_t i) { results[i] = fn(i); });
    return results;
}

} // namespace ap

#endif // AGILEPAGING_SIM_PARALLEL_RUNNER_HH
