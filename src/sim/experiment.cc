/**
 * @file
 * Experiment runner implementation.
 */

#include "sim/experiment.hh"

#include "base/logging.hh"
#include "sim/parallel_runner.hh"
#include "walker/backend.hh"

namespace ap
{

WorkloadParams
defaultParamsFor(const std::string &workload)
{
    WorkloadParams p;
    p.operations = 2'000'000;
    p.seed = 42;
    // Scaled Table V footprints, preserving the suite's ordering.
    if (workload == "astar") {
        p.footprintBytes = 80ull << 20; // 350 MB
    } else if (workload == "gcc") {
        p.footprintBytes = 96ull << 20; // 885 MB
    } else if (workload == "mcf") {
        p.footprintBytes = 160ull << 20; // 1.7 GB
    } else if (workload == "canneal") {
        p.footprintBytes = 96ull << 20; // 780 MB
    } else if (workload == "dedup") {
        p.footprintBytes = 128ull << 20; // 1.4 GB
    } else if (workload == "tigr") {
        p.footprintBytes = 96ull << 20; // 610 MB
    } else if (workload == "graph500") {
        p.footprintBytes = 224ull << 20; // 73 GB
    } else if (workload == "memcached") {
        p.footprintBytes = 224ull << 20; // 75 GB
    } else if (workload == "shootdown_storm") {
        p.footprintBytes = 96ull << 20;
    } else if (workload == "reclaim_scan") {
        p.footprintBytes = 128ull << 20;
    } else if (workload == "page_migration") {
        p.footprintBytes = 96ull << 20;
    } else {
        ap_fatal("unknown workload: ", workload);
    }
    return p;
}

SimConfig
configFor(VirtMode mode, PageSize page_size, const WorkloadParams &params,
          bool hw_opts)
{
    SimConfig cfg;
    cfg.mode = mode;
    cfg.pageSize = page_size;
    cfg.guestOs.pageSize = page_size;
    cfg.batchedWalks = batchedWalksDefault();
    cfg.simdFilter = simdFilterDefault();

    // Size memory: guest data space at 2x the footprint (churn slack),
    // host memory at 3x plus table overhead.
    std::uint64_t footprint_frames = params.footprintBytes / kPageBytes;
    cfg.guestDataFrames = footprint_frames * 2 + (1u << 14);
    cfg.guestPtFrames = footprint_frames / 8 + (1u << 12);
    cfg.hostMemFrames = footprint_frames * 3 + (1u << 16);

    if (hw_opts && backendTraits(mode).usesShadowMgr) {
        // The paper's evaluated agile configuration "includes the
        // benefit of hardware optimizations" (Section VII-A); shadow
        // gets the sptr cache too when comparing optimizations, but
        // keeping plain shadow faithful to deployed systems, only
        // agile enables them by default.
        if (mode == VirtMode::Agile)
            cfg.enableHwOpts();
    }
    return cfg;
}

RunResult
runExperiment(const ExperimentSpec &spec)
{
    WorkloadParams params = defaultParamsFor(spec.workload);
    if (spec.operations)
        params.operations = spec.operations;
    SimConfig cfg =
        configFor(spec.mode, spec.pageSize, params, spec.hwOpts);
    cfg.numVcpus = spec.numVcpus;
    cfg.tlbCoherence = spec.tlbCoherence;
    Machine machine(cfg);
    auto workload = makeWorkload(spec.workload, params);
    ap_assert(workload != nullptr, "unknown workload ", spec.workload);
    return machine.run(*workload);
}

std::vector<ExperimentSpec>
figure5Specs(std::uint64_t operations, bool include_range)
{
    std::vector<ExperimentSpec> specs;
    // Keep the default matrix (and its runs hash) byte-identical:
    // the range column is strictly opt-in.
    std::vector<VirtMode> modes = {VirtMode::Native, VirtMode::Nested,
                                   VirtMode::Shadow, VirtMode::Agile};
    if (include_range)
        modes.push_back(VirtMode::Range);
    const PageSize sizes[] = {PageSize::Size4K, PageSize::Size2M};
    for (const std::string &wl : workloadNames()) {
        for (PageSize ps : sizes) {
            for (VirtMode mode : modes) {
                ExperimentSpec spec;
                spec.workload = wl;
                spec.mode = mode;
                spec.pageSize = ps;
                spec.operations = operations;
                specs.push_back(spec);
            }
        }
    }
    return specs;
}

std::vector<RunResult>
runFigure5Matrix(std::uint64_t operations, unsigned jobs,
                 const CellFn &cell)
{
    return runExperiments(figure5Specs(operations), jobs, cell);
}

} // namespace ap
