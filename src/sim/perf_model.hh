/**
 * @file
 * The paper's Table IV performance model, applied to simulator
 * measurements.
 *
 * The paper derives overheads from hardware counters:
 *   E_ideal        = E_2M - T_2M           (native 2M run)
 *   PW_{B/N/S}     = (E - E_ideal - H) / E_ideal
 *   VMM_{B/N/S}    = H / E_ideal
 *   C_{B/N/S}      = T / M                 (cycles per TLB miss)
 *   PW_A, VMM_A    = linear projections from trace fractions
 *
 * The simulator measures E_ideal, walk cycles, and trap cycles
 * directly for every technique (including agile, which the authors
 * had to project). This module provides the same derived quantities,
 * plus the paper's pessimistic linear projection of agile performance
 * from a shadow run and a nested run — used to validate that the
 * paper's two-step methodology and direct measurement agree.
 */

#ifndef AGILEPAGING_SIM_PERF_MODEL_HH
#define AGILEPAGING_SIM_PERF_MODEL_HH

#include "sim/machine.hh"

namespace ap
{

/** Derived per-run quantities (one Fig. 5 bar + Table VI row). */
struct PerfBreakdown
{
    /**
     * False when the run carries no usable measurement (idealCycles
     * <= 0 or zero TLB misses): every derived field is then a
     * placeholder, not a measured "0% overhead". Consumers must check
     * this before reporting the numbers.
     */
    bool hasData = false;
    /** PW: page-walk overhead as a fraction of ideal cycles. */
    double pageWalkOverhead = 0.0;
    /** VMM: intervention overhead as a fraction of ideal cycles. */
    double vmmOverhead = 0.0;
    /** C: average cycles per TLB miss. */
    double cyclesPerMiss = 0.0;
    /** Average memory references per page walk. */
    double refsPerWalk = 0.0;
    /** Execution time normalized to overhead-free execution. */
    double slowdown = 1.0;
};

/** Compute the Table IV quantities from a measured run. */
PerfBreakdown computeBreakdown(const RunResult &run);

/**
 * The paper's two-step linear projection (Section VI): project agile
 * paging's walk overhead from the fraction of TLB misses served at
 * each switch level (FN_i, from the agile run's coverage histogram)
 * and the constituent techniques' measured per-miss costs, with the
 * pessimistic assumption that leaf-switched misses pay half the
 * nested-beyond-native cost and deeper switches pay the full nested
 * cost.
 *
 * Asserts that the agile run's coverage fractions sum to 1 (within
 * 1e-9) whenever the run recorded any walks at all.
 *
 * @param shadow_run measured shadow-paging run (gives C_S)
 * @param nested_run measured nested-paging run (gives C_N)
 * @param agile_run  measured agile run (gives FN_i and M)
 * @return projected agile page-walk cycles, or NaN when any of the
 *         three runs has no TLB misses (the projection is undefined:
 *         a zero-miss constituent run gives no per-miss cost)
 */
double projectAgileWalkCycles(const RunResult &shadow_run,
                              const RunResult &nested_run,
                              const RunResult &agile_run);

} // namespace ap

#endif // AGILEPAGING_SIM_PERF_MODEL_HH
