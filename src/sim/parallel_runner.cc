/**
 * @file
 * Parallel experiment engine implementation.
 */

#include "sim/parallel_runner.hh"

#include "base/debug.hh"

namespace ap
{

unsigned
effectiveJobs(unsigned requested)
{
    if (requested)
        return requested;
    unsigned hw = std::thread::hardware_concurrency();
    return hw ? hw : 1;
}

std::vector<RunResult>
runExperiments(const std::vector<ExperimentSpec> &specs, unsigned jobs,
               const CellFn &cell)
{
    // Force the one lazy global (the AP_DEBUG flag parse) before any
    // worker can race to it.
    debug::initFromEnvironment();
    return parallelMap(specs.size(), jobs, [&](std::size_t i) {
        return cell ? cell(specs[i]) : runExperiment(specs[i]);
    });
}

} // namespace ap
