/**
 * @file
 * Snapshot capture/restore, config digest, on-disk container and the
 * snapshot cache.
 */

#include "sim/snapshot.hh"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>

#include "base/serialize.hh"
#include "sim/machine.hh"

namespace ap
{

namespace
{

constexpr char kMagic[8] = {'A', 'P', 'S', 'N', 'A', 'P', '3', '\0'};

/** FNV-1a, the integrity hash of the container and the key digest. */
std::uint64_t
fnv1a(const void *data, std::size_t n,
      std::uint64_t h = 0xcbf29ce484222325ull)
{
    const auto *p = static_cast<const std::uint8_t *>(data);
    for (std::size_t i = 0; i < n; ++i) {
        h ^= p[i];
        h *= 0x100000001b3ull;
    }
    return h;
}

template <typename T>
void
put(std::ostream &os, const T &v)
{
    os.write(reinterpret_cast<const char *>(&v), sizeof(v));
}

template <typename T>
bool
get(std::istream &is, T &v)
{
    is.read(reinterpret_cast<char *>(&v), sizeof(v));
    return bool(is);
}

} // namespace

std::uint64_t
simConfigDigest(const SimConfig &cfg)
{
    // Serialize every behavior-affecting field in a fixed order and
    // hash the bytes. New knobs MUST be appended here: a forgotten
    // field would let a snapshot restore into a machine that diverges.
    Serializer s;
    s.putU32(2); // digest schema version (v2: range-backend knobs)
    s.putU8(static_cast<std::uint8_t>(cfg.mode));
    s.putU8(static_cast<std::uint8_t>(cfg.pageSize));
    s.putU64(cfg.hostMemFrames);
    s.putU64(cfg.guestPtFrames);
    s.putU64(cfg.guestDataFrames);
    auto geom = [&s](const TlbGeometry &g) {
        s.putU64(g.entries);
        s.putU64(g.ways);
    };
    geom(cfg.tlb.l1d4k);
    geom(cfg.tlb.l1d2m);
    geom(cfg.tlb.l1d1g);
    geom(cfg.tlb.l1i4k);
    geom(cfg.tlb.l1i2m);
    geom(cfg.tlb.l2u4k);
    s.putBool(cfg.pwcEnabled);
    s.putU64(cfg.pwcEntries);
    s.putU64(cfg.pwcWays);
    s.putBool(cfg.ntlbEnabled);
    s.putU64(cfg.ntlbEntries);
    s.putU64(cfg.ntlbWays);
    s.putU64(cfg.cyclesPerOp);
    s.putU64(cfg.walkRefCycles);
    s.putU64(cfg.walkRefWarmCycles);
    s.putDouble(cfg.warmupFraction);
    s.putU64(cfg.l2TlbHitCycles);
    s.putU64(cfg.ctxSwitchGuestCycles);
    s.putU64(cfg.trapCosts.exitRoundTrip);
    for (Cycles c : cfg.trapCosts.handlerWork)
        s.putU64(c);
    s.putU64(cfg.trapCosts.perEntryWork);
    s.putU8(static_cast<std::uint8_t>(cfg.guestOs.pageSize));
    s.putU64(cfg.guestOs.pageFaultCost);
    s.putU64(cfg.guestOs.cowCopyCost);
    s.putU64(cfg.guestOs.syscallCost);
    s.putU64(cfg.guestOs.perPageCost);
    s.putBool(cfg.hwOptAd);
    s.putU32(cfg.adWritebackRefs);
    s.putU64(cfg.sptrCacheEntries);
    s.putBool(cfg.unsyncEnabled);
    s.putU32(cfg.policy.writeThreshold);
    s.putU8(static_cast<std::uint8_t>(cfg.policy.backPolicy));
    s.putBool(cfg.policy.startNested);
    s.putDouble(cfg.policy.tlbOverheadThreshold);
    s.putDouble(cfg.policy.nestedWalkFactor);
    s.putU64(cfg.policy.projectedTrapCost);
    s.putDouble(cfg.policy.engageMargin);
    s.putU32(cfg.policy.promoteAfterCleanIntervals);
    s.putDouble(cfg.shsp.nestedWalkFactor);
    s.putDouble(cfg.shsp.switchMargin);
    s.putU64(cfg.shsp.projectedTrapCost);
    s.putDouble(cfg.shsp.minBenefitFrac);
    s.putU32(cfg.shsp.minResidency);
    s.putBool(cfg.shsp.startNested);
    s.putU64(cfg.policyIntervalOps);
    s.putBool(cfg.verifyTranslations);
    s.putU32(cfg.numVcpus);
    s.putU8(static_cast<std::uint8_t>(cfg.tlbCoherence));
    s.putU64(cfg.vcpuQuantumOps);
    s.putU64(cfg.ipiShootdownCycles);
    s.putU64(cfg.hwInvalidateCycles);
    s.putU32(cfg.range.segmentRegs);
    s.putU64(cfg.range.segmentMinPages);
    s.putU64(cfg.range.segmentMaxPages);
    s.putU64(cfg.range.segmentFillCycles);
    return fnv1a(s.data().data(), s.size());
}

SnapshotPtr
captureSnapshot(const Machine &machine)
{
    auto snap = std::make_shared<MachineSnapshot>();
    snap->configDigest = simConfigDigest(machine.config());
    Serializer s;
    machine.saveState(s);
    snap->bytes = s.takeData();
    return snap;
}

bool
restoreSnapshot(const MachineSnapshot &snap, Machine &machine)
{
    if (snap.configDigest != simConfigDigest(machine.config()))
        return false;
    Deserializer d(snap.bytes);
    return machine.restoreState(d);
}

bool
writeSnapshot(const MachineSnapshot &snap, std::ostream &os)
{
    os.write(kMagic, sizeof(kMagic));
    put(os, snap.configDigest);
    put(os, std::uint64_t{snap.bytes.size()});
    os.write(reinterpret_cast<const char *>(snap.bytes.data()),
             static_cast<std::streamsize>(snap.bytes.size()));
    put(os, fnv1a(snap.bytes.data(), snap.bytes.size()));
    return bool(os);
}

bool
writeSnapshotFile(const MachineSnapshot &snap, const std::string &path)
{
    std::ofstream os(path, std::ios::binary);
    return os && writeSnapshot(snap, os);
}

bool
readSnapshot(std::istream &is, MachineSnapshot &out)
{
    char magic[8];
    is.read(magic, sizeof(magic));
    if (!is || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0)
        return false;
    std::uint64_t size = 0;
    if (!get(is, out.configDigest) || !get(is, size))
        return false;
    // A machine image is at most a few multiples of host memory.
    if (size > (std::uint64_t{1} << 36))
        return false;
    out.bytes.resize(static_cast<std::size_t>(size));
    is.read(reinterpret_cast<char *>(out.bytes.data()),
            static_cast<std::streamsize>(size));
    std::uint64_t checksum = 0;
    if (!is || !get(is, checksum))
        return false;
    return checksum == fnv1a(out.bytes.data(), out.bytes.size());
}

bool
readSnapshotFile(const std::string &path, MachineSnapshot &out)
{
    std::ifstream is(path, std::ios::binary);
    return is && readSnapshot(is, out);
}

std::string
SnapshotCache::filePath(const SnapshotKey &key) const
{
    // Stable (cross-process) key digest, unlike SnapshotKeyHash whose
    // std::hash mixing is implementation-defined.
    std::uint64_t h = fnv1a(key.workload.data(), key.workload.size());
    const std::uint64_t words[4] = {key.operations, key.seed,
                                    key.footprintBytes,
                                    key.configDigest};
    h = fnv1a(words, sizeof(words), h);
    char name[17];
    std::snprintf(name, sizeof(name), "%016llx",
                  static_cast<unsigned long long>(h));
    return dir_ + "/" + name + ".apsnap";
}

SnapshotPtr
SnapshotCache::obtain(const SnapshotKey &key, const CaptureFn &capture)
{
    std::promise<SnapshotPtr> promise;
    std::shared_future<SnapshotPtr> fut;
    bool winner = false;
    {
        std::lock_guard<std::mutex> lock(mu_);
        auto it = map_.find(key);
        if (it == map_.end()) {
            winner = true;
            fut = promise.get_future().share();
            map_.emplace(key, fut);
        } else {
            fut = it->second;
            ++forks_;
            // Refresh recency so a hot key survives the byte budget.
            auto res = resident_.find(key);
            if (res != resident_.end())
                lru_.splice(lru_.end(), lru_, res->second.pos);
        }
    }
    if (winner) {
        // Capture outside the lock: distinct keys warm concurrently
        // and only same-key requesters wait.
        try {
            SnapshotPtr snap;
            bool from_disk = false;
            if (!dir_.empty()) {
                auto loaded = std::make_shared<MachineSnapshot>();
                if (readSnapshotFile(filePath(key), *loaded) &&
                    loaded->configDigest == key.configDigest) {
                    snap = std::move(loaded);
                    from_disk = true;
                }
            }
            if (!snap)
                snap = capture();
            {
                std::lock_guard<std::mutex> lock(mu_);
                if (from_disk)
                    ++disk_loads_;
                else
                    ++captures_;
                if (snap)
                    insertResidentLocked(key, snap->bytes.size());
            }
            if (!dir_.empty() && !from_disk && snap)
                writeSnapshotFile(*snap, filePath(key)); // best effort
            promise.set_value(std::move(snap));
        } catch (...) {
            promise.set_exception(std::current_exception());
            throw;
        }
    }
    return fut.get();
}

void
SnapshotCache::insertResidentLocked(const SnapshotKey &key,
                                    std::uint64_t bytes)
{
    auto pos = lru_.insert(lru_.end(), key);
    resident_[key] = Resident{pos, bytes};
    resident_bytes_ += bytes;
    evictToBudgetLocked();
}

void
SnapshotCache::evictToBudgetLocked()
{
    if (!budget_bytes_)
        return;
    // Never evict the MRU entry (lru_.back()): a budget smaller than
    // one image must still let that image's own requesters fork it.
    while (resident_bytes_ > budget_bytes_ && lru_.size() > 1) {
        const SnapshotKey victim = lru_.front();
        auto res = resident_.find(victim);
        resident_bytes_ -= res->second.bytes;
        lru_.pop_front();
        resident_.erase(res);
        map_.erase(victim);
        ++evictions_;
    }
}

void
SnapshotCache::setByteBudget(std::uint64_t bytes)
{
    std::lock_guard<std::mutex> lock(mu_);
    budget_bytes_ = bytes;
    evictToBudgetLocked();
}

std::uint64_t
SnapshotCache::captures() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return captures_;
}

std::uint64_t
SnapshotCache::forks() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return forks_;
}

std::uint64_t
SnapshotCache::diskLoads() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return disk_loads_;
}

std::uint64_t
SnapshotCache::evictions() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return evictions_;
}

std::uint64_t
SnapshotCache::residentBytes() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return resident_bytes_;
}

} // namespace ap
