/**
 * @file
 * Cross-mode differential oracle.
 *
 * Replays one deterministic randomized trace through four lock-
 * stepped Machine instances — shadow, nested, agile, range — and runs the
 * invariant checks from sim/invariants.hh after every event: per-
 * machine architectural-walk agreement, guest-level lock-step
 * agreement across machines, counter/coverage sanity, and periodic
 * shadow-coherence sweeps. A failing trace can be shrunk to a minimal
 * reproduction by greedy chunk removal, and a deliberate shadow-
 * coherence bug can be injected to prove the oracle catches one.
 */

#ifndef AGILEPAGING_SIM_ORACLE_HH
#define AGILEPAGING_SIM_ORACLE_HH

#include <vector>

#include "sim/invariants.hh"
#include "trace/trace.hh"

namespace ap
{

/** Knobs for trace generation and differential replay. */
struct OracleOptions
{
    /** Page size configured in all three machines. */
    PageSize pageSize = PageSize::Size4K;
    /** Apply the paper's hardware optimizations (A/D bits, sptr
     *  cache) to the shadow-based machines. */
    bool hwOpts = true;
    /** Trace-generator seed; the trace is a pure function of the seed
     *  and the generator knobs. */
    std::uint64_t seed = 1;
    /** Events to generate after the initial mappings. */
    std::uint64_t operations = 3000;
    /** Generate ReclaimTick events. Reclaim evictions depend on
     *  accessed-bit timing, which legitimately differs per machine, so
     *  cross-machine lock-step checks are skipped for such traces
     *  (per-machine invariants still run). */
    bool includeReclaim = false;
    /** Run the shadow-coherence sweep every N events (and at the
     *  end). */
    std::uint64_t sweepInterval = 256;
    /** When nonzero, corrupt one shadow leaf PTE in the agile machine
     *  after the Nth Access event (1-based) — a deliberate coherence
     *  bug the oracle must catch. */
    std::uint64_t injectAtAccess = 0;
    /** vCPUs per machine; >1 interleaves the trace across per-vCPU
     *  TLB/PWC stacks and models shootdown traffic. */
    unsigned numVcpus = 1;
    /** Shootdown cost model used when numVcpus > 1. */
    TlbCoherence tlbCoherence = TlbCoherence::Software;
    /** When nonzero, fabricate a stale writable TLB entry (at a VA the
     *  guest never maps) in the last vCPU of the agile machine after
     *  the Nth Access event — a missed-shootdown bug the residency
     *  sweep must catch. */
    std::uint64_t injectStaleTlbAtAccess = 0;
    /** When nonzero, plant a stale segment register (covering VAs the
     *  guest never maps) in the last vCPU of the range machine after
     *  the Nth Access event — a missed segment invalidation the
     *  residency sweep must catch. */
    std::uint64_t injectStaleSegmentAtAccess = 0;
};

/** Outcome of one differential replay. */
struct OracleReport
{
    /** No invariant violated. */
    bool passed = true;
    /** First violation found (replay stops there). */
    std::vector<InvariantViolation> violations;
    std::uint64_t eventsReplayed = 0;
    /** Access/fetch events that went through the per-access checks. */
    std::uint64_t accessesChecked = 0;
};

/**
 * Generate a deterministic randomized trace: mmap/munmap churn,
 * reads/writes/fetches over live regions, forks, yields, page sharing
 * — every event kind the WorkloadHost interface offers (reclaim only
 * when opts.includeReclaim). Never touches an unmapped address, so
 * the trace replays cleanly under every mode.
 */
Trace makeRandomTrace(const OracleOptions &opts);

/**
 * Replay @p trace through lock-stepped shadow, nested, agile, and
 * range machines, checking invariants after every event. Stops at the
 * first violation.
 */
OracleReport runDifferential(const Trace &trace,
                             const OracleOptions &opts);

/**
 * Shrink a failing trace by greedy chunk removal (halving chunk
 * sizes, ddmin-style): events are dropped while the differential
 * replay under @p opts still reports a violation. Candidates that
 * panic (e.g. an access whose mmap was removed) do not count as the
 * same failure. Returns @p trace unchanged if it does not fail.
 */
Trace shrinkTrace(const Trace &trace, const OracleOptions &opts);

} // namespace ap

#endif // AGILEPAGING_SIM_ORACLE_HH
