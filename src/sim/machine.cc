/**
 * @file
 * Machine implementation: composition, the access path (TLB probe,
 * fault-servicing walk loop, protection resolution), scheduling, and
 * interval-driven policies.
 */

#include "sim/machine.hh"

#include <algorithm>
#include <atomic>
#include <limits>

#if defined(__AVX2__)
#include <immintrin.h>
#endif

#include "base/bitfield.hh"
#include "base/debug.hh"
#include "base/logging.hh"

namespace ap
{

namespace
{

/** Bits [pos, pos+n) of a packed bitmap as one word (n in [1, 64]). */
inline std::uint64_t
bitWindow(const std::uint64_t *bits, std::size_t pos, std::size_t n)
{
    const std::size_t k = pos >> 6;
    const unsigned s = pos & 63;
    std::uint64_t w = bits[k] >> s;
    if (s && n > 64 - s)
        w |= bits[k + 1] << (64 - s);
    if (n < 64)
        w &= (std::uint64_t(1) << n) - 1;
    return w;
}

/** Low @p n bits set (n in [0, 64]). */
inline std::uint64_t
lowMask(std::size_t n)
{
    return n >= 64 ? ~std::uint64_t(0)
                   : (std::uint64_t(1) << n) - 1;
}

/** Length of the run of set bits starting at bit 0. */
inline std::size_t
trailingOnes(std::uint64_t x)
{
    return x == ~std::uint64_t(0)
               ? 64
               : std::size_t(__builtin_ctzll(~x));
}

/** Set bits in [pos, pos+n) of a packed bitmap. */
inline std::uint64_t
popcountRange(const std::uint64_t *bits, std::size_t pos, std::size_t n)
{
    std::uint64_t c = 0;
    while (n) {
        const std::size_t take =
            std::min<std::size_t>(64 - (pos & 63), n);
        const std::uint64_t w =
            (bits[pos >> 6] >> (pos & 63)) & lowMask(take);
        c += std::uint64_t(__builtin_popcountll(w));
        pos += take;
        n -= take;
    }
    return c;
}

/**
 * Bit j set iff ((vas[j] ^ va0) & mask) == 0: the same-page sweep of
 * the last-translation filter over one block of SoA lanes. The scalar
 * form is branch-free and auto-vectorizes (independent lanes, no
 * loads besides the VA stream); full 64-lane blocks take the explicit
 * AVX2 sweep when the build enables it (-mavx2 / -march=native).
 */
inline std::uint64_t
samePageMask(const Addr *vas, std::size_t n, Addr va0, Addr mask)
{
#if defined(__AVX2__)
    if (n == 64) {
        const __m256i vbase =
            _mm256_set1_epi64x(static_cast<long long>(va0));
        const __m256i vmask =
            _mm256_set1_epi64x(static_cast<long long>(mask));
        const __m256i zero = _mm256_setzero_si256();
        std::uint64_t m = 0;
        for (unsigned j = 0; j < 64; j += 4) {
            __m256i v = _mm256_loadu_si256(
                reinterpret_cast<const __m256i *>(vas + j));
            __m256i d =
                _mm256_and_si256(_mm256_xor_si256(v, vbase), vmask);
            __m256i eq = _mm256_cmpeq_epi64(d, zero);
            m |= std::uint64_t(static_cast<unsigned>(
                     _mm256_movemask_pd(_mm256_castsi256_pd(eq))))
                 << j;
        }
        return m;
    }
#endif
    std::uint64_t m = 0;
    for (std::size_t j = 0; j < n; ++j)
        m |= std::uint64_t(((vas[j] ^ va0) & mask) == 0) << j;
    return m;
}

// Process-wide batch-filter telemetry (relaxed: the counters are
// observational sums, never synchronization).
std::atomic<std::uint64_t> g_blocks_scanned{0};
std::atomic<std::uint64_t> g_lanes_scanned{0};
std::atomic<std::uint64_t> g_lanes_filtered{0};
std::atomic<std::uint64_t> g_bulk_retires{0};
std::atomic<std::uint64_t> g_run_fastpaths{0};
std::atomic<std::uint64_t> g_run_fastpath_lanes{0};

} // namespace

Machine::BatchFilterStats
Machine::batchFilterStats()
{
    BatchFilterStats s;
    s.blocksScanned = g_blocks_scanned.load(std::memory_order_relaxed);
    s.lanesScanned = g_lanes_scanned.load(std::memory_order_relaxed);
    s.lanesFiltered = g_lanes_filtered.load(std::memory_order_relaxed);
    s.bulkRetires = g_bulk_retires.load(std::memory_order_relaxed);
    s.runFastpaths = g_run_fastpaths.load(std::memory_order_relaxed);
    s.runFastpathLanes =
        g_run_fastpath_lanes.load(std::memory_order_relaxed);
    return s;
}

void
Machine::resetBatchFilterStats()
{
    g_blocks_scanned.store(0, std::memory_order_relaxed);
    g_lanes_scanned.store(0, std::memory_order_relaxed);
    g_lanes_filtered.store(0, std::memory_order_relaxed);
    g_bulk_retires.store(0, std::memory_order_relaxed);
    g_run_fastpaths.store(0, std::memory_order_relaxed);
    g_run_fastpath_lanes.store(0, std::memory_order_relaxed);
}

Machine::Machine(const SimConfig &cfg)
    : stats::StatGroup("machine"),
      instructionsStat(this, "instructions", "instructions executed",
                       [this] { return double(instructions_); }),
      walkCyclesStat(this, "walk_cycles", "translation cycles",
                     [this] { return double(walk_cycles_); }),
      l2HitCyclesStat(this, "l2_hit_cycles", "cycles in L2 TLB hits"),
      protFaults(this, "prot_faults", "write-permission fixups"),
      arenaPoolHits(this, "arena_pool_hits",
                    "PT-page acquires served without heap allocation",
                    [this] { return double(mem_.arena().poolHits()); }),
      arenaRecycles(this, "arena_recycles",
                    "PT-page acquires served from the recycle list",
                    [this] { return double(mem_.arena().recycles()); }),
      arenaHighWater(this, "arena_high_water",
                     "most PT pages simultaneously live",
                     [this] { return double(mem_.arena().highWater()); }),
      arenaSlabAllocs(this, "arena_slab_allocs",
                      "slab allocations (heap fallback path)",
                      [this] { return double(mem_.arena().slabAllocs()); }),
      guestPtFrameRecycles(
          this, "guest_pt_frame_recycles",
          "guest PT frame ids served by recycling",
          [this] { return vmm_ ? double(vmm_->ptAllocator().recycles())
                               : 0.0; }),
      guestPtFrameHighWater(
          this, "guest_pt_frame_high_water",
          "most guest PT frame ids simultaneously allocated",
          [this] { return vmm_ ? double(vmm_->ptAllocator().highWater())
                               : 0.0; }),
      guestDataFrameRecycles(
          this, "guest_data_frame_recycles",
          "guest data frame ids served by recycling",
          [this] { return vmm_ ? double(vmm_->dataAllocator().recycles())
                               : 0.0; }),
      guestDataFrameHighWater(
          this, "guest_data_frame_high_water",
          "most guest data frame ids simultaneously allocated",
          [this] { return vmm_ ? double(vmm_->dataAllocator().highWater())
                               : 0.0; }),
      cfg_(cfg),
      rng_(12345),          // workload stream: identical in every mode
      internal_rng_(12345), // machine stream: driven by events only
      mem_(cfg.hostMemFrames,
           cfg.arenaSlabPages ? cfg.arenaSlabPages
                              : PtPageArena::kDefaultSlabPages)
{
    tlb_ = std::make_unique<TlbHierarchy>(this, cfg_.tlb);
    pwc_ = std::make_unique<PageWalkCache>(this, cfg_.pwcEntries,
                                           cfg_.pwcWays, cfg_.pwcEnabled);
    ntlb_ = std::make_unique<NestedTlb>(this, cfg_.ntlbEntries,
                                        cfg_.ntlbWays, cfg_.ntlbEnabled);
    walker_ = std::make_unique<Walker>(this, mem_, *pwc_, *ntlb_);

    // Translation coherence: every vCPU's private stack registers with
    // the shared domain; the guest OS and shadow manager invalidate
    // through it. The nested TLB caches gPA->hPA and is per-VM, so the
    // extra vCPUs share ntlb_ (and the walker serializes through it
    // deterministically under the round-robin schedule).
    coh_ = std::make_unique<CoherenceDomain>(this, cfg_.tlbCoherence,
                                             cfg_.ipiShootdownCycles,
                                             cfg_.hwInvalidateCycles);
    coh_->addVcpu(tlb_.get(), pwc_.get());
    for (unsigned v = 1; v < cfg_.numVcpus; ++v) {
        auto stack = std::make_unique<VcpuStack>();
        stack->group = std::make_unique<stats::StatGroup>(
            "vcpu" + std::to_string(v), this);
        stack->tlb = std::make_unique<TlbHierarchy>(stack->group.get(),
                                                    cfg_.tlb);
        stack->pwc = std::make_unique<PageWalkCache>(
            stack->group.get(), cfg_.pwcEntries, cfg_.pwcWays,
            cfg_.pwcEnabled);
        stack->walker = std::make_unique<Walker>(stack->group.get(),
                                                 mem_, *stack->pwc,
                                                 *ntlb_);
        coh_->addVcpu(stack->tlb.get(), stack->pwc.get());
        extra_vcpus_.push_back(std::move(stack));
    }
    setActiveVcpu(0);
    vcpu_quantum_left_ = cfg_.vcpuQuantumOps;

    // Resolve the translation backend: stateful modes get a per-machine
    // instance from the registry (stats registered under this machine),
    // the classic paging families share the stateless singletons.
    BackendArgs bargs;
    bargs.statParent = this;
    bargs.numVcpus = cfg_.numVcpus;
    bargs.range = cfg_.range;
    backend_owned_ = makeTranslationBackend(cfg_.mode, bargs);
    backend_ = backend_owned_ ? backend_owned_.get()
                              : &builtinBackend(cfg_.mode);
    range_backend_ = dynamic_cast<RangeBackend *>(backend_);
    walker_->setBackend(backend_, 0);
    for (unsigned v = 1; v < cfg_.numVcpus; ++v)
        extra_vcpus_[v - 1]->walker->setBackend(backend_, v);
    if (CoherenceListener *listener = backend_->coherenceListener())
        coh_->addListener(listener);

    const BackendTraits &traits = backendTraits(cfg_.mode);
    if (traits.usesVmm) {
        VmmConfig vcfg;
        vcfg.guestPtFrames = cfg_.guestPtFrames;
        vcfg.guestDataFrames = cfg_.guestDataFrames;
        vcfg.hostPageSize = cfg_.pageSize;
        vcfg.costs = cfg_.trapCosts;
        vcfg.sptrCacheEntries = cfg_.sptrCacheEntries;
        vmm_ = std::make_unique<Vmm>(this, mem_, vcfg, ntlb_.get());
        if (traits.usesShadowMgr) {
            ShadowConfig scfg;
            scfg.unsyncEnabled = cfg_.unsyncEnabled;
            scfg.hwOptAd = cfg_.hwOptAd;
            smgr_ = std::make_unique<ShadowMgr>(this, mem_, *vmm_, scfg,
                                                coh_.get());
            if (traits.usesAgilePolicy) {
                policy_ = std::make_unique<AgilePolicy>(this, *smgr_,
                                                        cfg_.policy);
            } else if (traits.usesShsp) {
                shsp_ = std::make_unique<ShspController>(this, *smgr_,
                                                         cfg_.shsp);
            }
        }
    }

    GuestOsConfig gcfg = cfg_.guestOs;
    // The guest granule follows the machine page size unless the
    // caller picked a different guest granule explicitly (mixed-stage
    // configurations, Section V).
    if (gcfg.pageSize == PageSize::Size4K)
        gcfg.pageSize = cfg_.pageSize;
    guest_os_ = std::make_unique<GuestOs>(this, mem_, vmm_.get(),
                                          smgr_.get(), coh_.get(), gcfg);
    guest_os_->onMediatedGptWrite = [this](ProcId pid, Addr va,
                                           unsigned depth,
                                           const GptWriteOutcome &out) {
        if (policy_)
            policy_->onMediatedWrite(pid, va, depth, out);
    };
    guest_os_->onAnyGptWrite = [this](ProcId, Addr, unsigned) {
        ++interval_gpt_writes_;
    };

    next_interval_ = cfg_.policyIntervalOps;
}

Machine::~Machine() = default;

void
Machine::setActiveVcpu(unsigned vcpu)
{
    active_vcpu_ = vcpu;
    if (vcpu == 0) {
        atlb_ = tlb_.get();
        apwc_ = pwc_.get();
        awalker_ = walker_.get();
        al0_ = l0_;
    } else {
        VcpuStack &s = *extra_vcpus_[vcpu - 1];
        atlb_ = s.tlb.get();
        apwc_ = s.pwc.get();
        awalker_ = s.walker.get();
        al0_ = s.l0;
    }
}

TlbHierarchy &
Machine::tlbOf(unsigned vcpu)
{
    return vcpu == 0 ? *tlb_ : *extra_vcpus_[vcpu - 1]->tlb;
}

PageWalkCache &
Machine::pwcOf(unsigned vcpu)
{
    return vcpu == 0 ? *pwc_ : *extra_vcpus_[vcpu - 1]->pwc;
}

bool
Machine::shadowed(ProcId pid) const
{
    return smgr_ && smgr_->hasProcess(pid);
}

ProcId
Machine::spawnProcess()
{
    ProcId pid = guest_os_->createProcess(cfg_.mode);
    if (policy_)
        policy_->onProcessStart(pid);
    if (shsp_)
        shsp_->onProcessStart(pid);
    switchTo(pid);
    return pid;
}

void
Machine::switchTo(ProcId pid)
{
    ap_assert(guest_os_->hasProcess(pid), "switch to dead process");
    if (pid == current_)
        return;
    current_ = pid;
    instructions_ += cfg_.ctxSwitchGuestCycles; // guest-side work
    if (shadowed(pid))
        smgr_->onCtxSwitchIn(pid);
    // Nested/native CR3 writes are direct; with per-asid TLB tagging
    // (PCID-style) no flush is required.
}

WalkResult
Machine::translate(ProcId pid, Addr va, bool write)
{
    for (int attempt = 0; attempt < 32; ++attempt) {
        TranslationContext &ctx = guest_os_->context(pid);
        // The walker hands back its reused scratch result; no handler
        // below re-enters the walker, so the reference stays valid
        // until the retry.
        const WalkResult &r = awalker_->walk(ctx, va, write);
        walk_cycles_ += r.coldRefs * cfg_.walkRefCycles +
                        (r.refs - r.coldRefs) * cfg_.walkRefWarmCycles +
                        r.extraCycles;
        if (r.ok()) {
            last_translate_faults_ = attempt;
            if (r.dirtyTransition && cfg_.hwOptAd && shadowed(pid) &&
                !ctx.fullNested) {
                // Hardware A/D writeback into all three tables costs
                // up to a full nested walk (Section IV).
                walk_cycles_ += cfg_.adWritebackRefs * cfg_.walkRefCycles;
                // Keep the guest table's A/D architecturally coherent.
                auto gm = guest_os_->process(pid).pt->lookup(va);
                if (gm) {
                    Pte *gpte =
                        guest_os_->process(pid).pt->entry(va, gm->depth);
                    gpte->accessed = true;
                    if (write && r.writable)
                        gpte->dirty = true;
                }
            }
            return r;
        }
        switch (r.fault) {
          case WalkFault::ShadowFault: {
            ShadowFillResult fill = smgr_->handleShadowFault(pid, va);
            if (fill == ShadowFillResult::NeedGuestFault) {
                // A true guest fault surfaces through the VMM first.
                vmm_->chargeTrap(TrapKind::GuestFaultMediation);
                if (!guest_os_->handlePageFault(pid, va, write))
                    ap_panic("guest segfault at 0x", std::hex, va);
            }
            break;
          }
          case WalkFault::GuestFault:
            // Nested portions deliver guest faults directly.
            if (!guest_os_->handlePageFault(pid, va, write))
                ap_panic("guest segfault at 0x", std::hex, va);
            break;
          case WalkFault::HostFault:
            if (!vmm_->handleHostFault(r.faultGpa))
                ap_fatal("host memory exhausted (gpa 0x", std::hex,
                         r.faultGpa, ")");
            break;
          case WalkFault::NativeFault:
            if (!guest_os_->handlePageFault(pid, va, write))
                ap_panic("segfault at 0x", std::hex, va);
            break;
          default:
            ap_panic("unexpected walk fault");
        }
    }
    ap_panic("translation did not converge at 0x", std::hex, va);
}

void
Machine::resolveProtection(ProcId pid, Addr va)
{
    ++protFaults;
    AP_DPRINTF(Machine, "proc ", pid, ": protection fixup at 0x",
               std::hex, va);
    ap_assert(guest_os_->vmaWritable(pid, va),
              "workload wrote a read-only mapping at 0x", std::hex, va);

    if (!guest_os_->guestMappingWritable(pid, va)) {
        // Guest-level COW (or a racing unmap): the guest's own fault
        // handler fixes it. Shadow-portion faults pay VMM mediation;
        // faults in nested-mode regions are delivered directly.
        if (shadowed(pid) && !guest_os_->context(pid).fullNested &&
            !smgr_->leafUnderNestedMode(pid, va)) {
            vmm_->chargeTrap(TrapKind::GuestFaultMediation);
        }
        if (!guest_os_->handlePageFault(pid, va, true))
            ap_panic("COW fixup failed at 0x", std::hex, va);
        return;
    }
    if (!guest_os_->isNative()) {
        FrameId gframe = guest_os_->leafFrame(pid, va);
        if (gframe && !vmm_->hostWritable(gframe)) {
            // Host-level COW from content-based sharing. The same exit
            // repairs the shadow leaf (new backing, writability).
            if (!vmm_->breakHostCow(gframe))
                ap_fatal("host memory exhausted during COW break");
            if (shadowed(pid) && !guest_os_->context(pid).fullNested)
                smgr_->refreshLeaf(pid, va);
            else
                coh_->flushPage(va, pid, CoherenceCause::HostRemap);
            return;
        }
    }
    if (shadowed(pid) && !guest_os_->context(pid).fullNested) {
        // Dirty-bit emulation (no A/D hardware optimization).
        smgr_->emulateDirtyWrite(pid, va);
        return;
    }
    // Stale cached translation: drop it and rewalk (local vCPU only —
    // the entry was just probed here).
    atlb_->flushPage(va, pid);
}

void
Machine::verifyAgainstFunctional(ProcId pid, Addr va, FrameId got)
{
    FrameId leaf = guest_os_->leafFrame(pid, va);
    ap_assert(leaf != 0, "verify: no functional mapping at 0x", std::hex,
              va);
    FrameId expected =
        guest_os_->isNative() ? leaf : vmm_->backing(leaf);
    ap_assert(got == expected, "translation mismatch at 0x", std::hex, va,
              ": hw 0x", got, " functional 0x", expected);
}

void
Machine::doAccess(Addr va, bool write, bool instr)
{
    if (!extra_vcpus_.empty()) {
        if (vcpu_quantum_left_ == 0) {
            vcpu_quantum_left_ = cfg_.vcpuQuantumOps;
            unsigned next = active_vcpu_ + 1;
            setActiveVcpu(next == cfg_.numVcpus ? 0 : next);
        }
        --vcpu_quantum_left_;
    }
    instructions_ += cfg_.cyclesPerOp;
    maybeInterval();
    accessSlow(va, write, instr);
}

void
Machine::accessSlow(Addr va, bool write, bool instr)
{
    accessSlowImpl<false>(va, write, instr);
}

template <bool Deferred>
void
Machine::accessSlowImpl(Addr va, bool write, bool instr)
{
    ProcId pid = current_;

    for (int attempt = 0; attempt < 8; ++attempt) {
        // While the vectorized batch pipeline drains a range, probe
        // stat charges accumulate in its RefillPending and land in
        // bulk at block boundaries; probe order and LRU movement are
        // identical either way.
        TlbProbeResult hit =
            Deferred
                ? atlb_->probeDeferred(va, pid, instr, *refill_pending_)
                : atlb_->probe(va, pid, instr);
        if (hit.level != TlbHitLevel::Miss) {
            if (hit.level == TlbHitLevel::L2) {
                // L2 TLB hit latency is identical in every mode and so
                // belongs to base execution time, not translation
                // overhead (the paper's T counts misses only).
                instructions_ += cfg_.l2TlbHitCycles;
                l2HitCyclesStat += cfg_.l2TlbHitCycles;
            }
            if (write && !hit.entry.writable) {
                resolveProtection(pid, va);
                continue;
            }
            if (write && !hit.entry.dirty) {
                // x86 semantics: a store through a cached translation
                // whose leaf dirty bit is clear must re-walk so the
                // hardware can set the in-memory dirty bit. Without
                // this, a write hitting an entry filled by a read
                // would never dirty the page.
                atlb_->flushPage(va, pid);
                continue;
            }
            if (cfg_.verifyTranslations) {
                std::uint64_t frames = pageBytes(hit.size) / kPageBytes;
                verifyAgainstFunctional(
                    pid, va, hit.entry.pfn + (frameOf(va) % frames));
            }
            al0_[instr] = {va, ~(pageBytes(hit.size) - 1), pid,
                           hit.size, hit.entry.writable, hit.entry.dirty,
                           atlb_->flushGeneration(pid)};
            return;
        }
        ++tlb_misses_;
        std::array<std::uint64_t, kNumTrapKinds> traps_before{};
        if (walk_trace_ && vmm_) {
            for (std::size_t k = 0; k < kNumTrapKinds; ++k)
                traps_before[k] = vmm_->trapCount(static_cast<TrapKind>(k));
        }
        WalkResult r = translate(pid, va, write);
        if (walk_trace_)
            recordWalkTrace(pid, va, write, instr, r, traps_before);
        if (write && !r.writable) {
            resolveProtection(pid, va);
            continue;
        }
        TlbEntry entry;
        entry.pfn = r.hframe;
        entry.writable = r.writable;
        entry.dirty = r.dirty;
        entry.asid = pid;
        atlb_->fill(va, pid, instr, r.size, entry);
        if (cfg_.verifyTranslations) {
            std::uint64_t frames = pageBytes(r.size) / kPageBytes;
            verifyAgainstFunctional(pid, va,
                                    r.hframe + (frameOf(va) % frames));
        }
        al0_[instr] = {va, ~(pageBytes(r.size) - 1), pid, r.size,
                       r.writable, r.dirty, atlb_->flushGeneration(pid)};
        return;
    }
    ap_panic("access did not converge at 0x", std::hex, va);
}

void
Machine::runAccessBatch(const Addr *vas, const std::uint64_t *write_bits,
                        const std::uint64_t *instr_bits,
                        std::size_t begin, std::size_t count)
{
    runAccessBatch(vas, write_bits, instr_bits, begin, count, nullptr);
}

void
Machine::runAccessBatch(const Addr *vas, const std::uint64_t *write_bits,
                        const std::uint64_t *instr_bits,
                        std::size_t begin, std::size_t count,
                        const AccessRunHint *hint)
{
    if (extra_vcpus_.empty()) {
        runBatchRange(vas, write_bits, instr_bits, begin, count, hint);
        return;
    }
    // Multi-vCPU: replay the deterministic round-robin schedule at
    // quantum granularity. Rotation happens exactly where doAccess
    // would rotate — before the first access of a fresh quantum — and
    // each sub-batch drains on the active vCPU's private stack (TLBs,
    // PWC, walker, L0 filter lanes), so the interleaving and every
    // counter are bit-identical to the per-event path. The L0 lanes
    // stay sound across rotations because remote-vCPU invalidations
    // bump that vCPU's flush generation (coherence shootdowns).
    std::size_t i = begin;
    const std::size_t end = begin + count;
    while (i < end) {
        if (vcpu_quantum_left_ == 0) {
            vcpu_quantum_left_ = cfg_.vcpuQuantumOps;
            unsigned next = active_vcpu_ + 1;
            setActiveVcpu(next == cfg_.numVcpus ? 0 : next);
        }
        const std::size_t m =
            std::min<std::size_t>(end - i, vcpu_quantum_left_);
        runBatchRange(vas, write_bits, instr_bits, i, m, hint);
        vcpu_quantum_left_ -= m;
        i += m;
    }
}

std::size_t
Machine::intervalRoom(Cycles op_cycles) const
{
    // Largest k such that k op-charges from here leave
    // instructions_ < next_interval_ after every one of them.
    if (instructions_ >= next_interval_)
        return 0;
    if (op_cycles == 0)
        return std::numeric_limits<std::size_t>::max();
    const std::uint64_t budget = next_interval_ - instructions_ - 1;
    return std::size_t(std::min<std::uint64_t>(
        budget / op_cycles,
        std::numeric_limits<std::size_t>::max()));
}

void
Machine::runBatchRange(const Addr *vas, const std::uint64_t *write_bits,
                       const std::uint64_t *instr_bits,
                       std::size_t begin, std::size_t count,
                       const AccessRunHint *hint)
{
    if (count == 0)
        return;
    // Verification re-checks every access against the functional
    // mappings; the filter would skip those checks, so turn it off.
    const bool filter_ok = !cfg_.verifyTranslations;
    const bool vectored = filter_ok && cfg_.simdFilter;

    // Run-level constant-translation fast path: the trace compiler
    // proved each stream of the whole run stays inside one page-sized
    // VA window. If the active L0 slot of every stream the run uses
    // covers its window, no write can land on a clean or read-only
    // translation, and no policy interval fires inside the run, then
    // every access is a filtered L1 hit and the run retires in O(1)
    // plus one bitmap popcount: one bulk instruction charge, one bulk
    // stat add per stream. The hint describes the *whole* run, which
    // is conservative for the sub-ranges the multi-vCPU loop feeds
    // through here; only the instr/data split is recounted exactly.
    if (vectored && hint && intervalRoom(cfg_.cyclesPerOp) >= count) {
        const std::uint64_t gen0 = atlb_->flushGeneration(current_);
        const LastXlat &d = al0_[0];
        const LastXlat &f = al0_[1];
        const bool d_ok =
            !hint->anyData ||
            (d.mask != 0 && d.asid == current_ && d.gen == gen0 &&
             ((hint->dataBase ^ d.va) & d.mask) == 0 &&
             (hint->dataDiffOr & d.mask) == 0 &&
             (!hint->anyWrite || (d.writable && d.dirty)));
        const bool i_ok =
            !hint->anyInstr ||
            (f.mask != 0 && f.asid == current_ && f.gen == gen0 &&
             ((hint->instrBase ^ f.va) & f.mask) == 0 &&
             (hint->instrDiffOr & f.mask) == 0);
        if (d_ok && i_ok) {
            const std::uint64_t n_i =
                hint->anyInstr ? popcountRange(instr_bits, begin, count)
                               : 0;
            const std::uint64_t n_d = count - n_i;
            instructions_ +=
                std::uint64_t(count) * cfg_.cyclesPerOp;
            if (n_d)
                atlb_->countFilteredL1Hit(d.size, false, n_d);
            if (n_i)
                atlb_->countFilteredL1Hit(f.size, true, n_i);
            // Zero misses here: the density gate below would disarm.
            prime_next_ = false;
            g_run_fastpaths.fetch_add(1, std::memory_order_relaxed);
            g_run_fastpath_lanes.fetch_add(count,
                                           std::memory_order_relaxed);
            return;
        }
    }

    const std::uint64_t misses_before = tlb_misses_;
    if (cfg_.batchedWalks && prime_next_ && count >= 64)
        primeBatch(vas, begin, count);

    if (vectored)
        runBatchVector(vas, write_bits, instr_bits, begin, count);
    else
        runBatchScalar(vas, write_bits, instr_bits, begin, count,
                       filter_ok);

    // Re-arm priming only at walk densities where the sorted pre-touch
    // pays for the sort (roughly one miss per 16 accesses — cold or
    // TLB-thrashing phases); a warm TLB keeps it off.
    prime_next_ = (tlb_misses_ - misses_before) * 16 >= count;
}

void
Machine::runBatchScalar(const Addr *vas, const std::uint64_t *write_bits,
                        const std::uint64_t *instr_bits,
                        std::size_t begin, std::size_t count,
                        bool filter_ok)
{
    const Cycles op_cycles = cfg_.cyclesPerOp;
    // The flush generation only moves inside maybeInterval() or
    // accessSlow(), so cache it in a register and re-load after
    // either call instead of chasing the pointer every iteration.
    std::uint64_t gen = atlb_->flushGeneration(current_);
    for (std::size_t i = begin; i < begin + count; ++i) {
        const Addr va = vas[i];
        const bool write = (write_bits[i >> 6] >> (i & 63)) & 1;
        const bool instr = (instr_bits[i >> 6] >> (i & 63)) & 1;
        instructions_ += op_cycles;
        if (instructions_ >= next_interval_) {
            maybeInterval();
            gen = atlb_->flushGeneration(current_);
        }
        const LastXlat &l0 = al0_[instr];
        if (filter_ok && l0.mask != 0 &&
            ((va ^ l0.va) & l0.mask) == 0 && l0.asid == current_ &&
            l0.gen == gen &&
            (!write || (l0.writable && l0.dirty))) {
            // Same page, same stream, nothing flushed since: the probe
            // would hit the same (still-MRU) L1 entry and take the same
            // early-outs. Account it without re-touching the arrays.
            atlb_->countFilteredL1Hit(l0.size, instr);
            continue;
        }
        accessSlow(va, write, instr);
        gen = atlb_->flushGeneration(current_);
    }
}

void
Machine::runBatchVector(const Addr *vas, const std::uint64_t *write_bits,
                        const std::uint64_t *instr_bits,
                        std::size_t begin, std::size_t count)
{
    const Cycles op_cycles = cfg_.cyclesPerOp;
    std::uint64_t gen = atlb_->flushGeneration(current_);
    TlbHierarchy::RefillPending pending;
    refill_pending_ = &pending;

    std::uint64_t blocks = 0, lanes = 0, filtered = 0, retires = 0;

    std::size_t i = begin;
    const std::size_t end = begin + count;
    while (i < end) {
        const std::size_t bn = std::min<std::size_t>(64, end - i);
        const std::uint64_t w_w = bitWindow(write_bits, i, bn);
        const std::uint64_t w_i = bitWindow(instr_bits, i, bn);
        ++blocks;
        lanes += bn;

        std::size_t j = 0;
        while (j < bn) {
            const Addr va = vas[i + j];
            const bool write = (w_w >> j) & 1;
            const bool instr = (w_i >> j) & 1;
            // Probe lane j with the scalar predicate first; sweep only
            // when it hits. Misses therefore cost exactly the scalar
            // chain, and each sweep amortizes over a whole hit-run
            // instead of repeating after every miss.
            const LastXlat &p = al0_[instr];
            const bool pred =
                p.mask != 0 && ((va ^ p.va) & p.mask) == 0 &&
                p.asid == current_ && p.gen == gen &&
                (!write || (p.writable && p.dirty));
            if (pred && instructions_ + op_cycles < next_interval_) {
                // Hit with interval room: extend it into a run over a
                // bounded window with the branch-free same-page sweep
                // of both L0 streams, then retire the run in bulk —
                // one instruction charge, one stat add per stream.
                // Window width trades sweep waste on isolated hits
                // against per-sweep overhead on dense blocks; hit
                // runs in the matrix average well under 16.
                const std::size_t wn =
                    std::min<std::size_t>(bn - j, 16);
                std::uint64_t hm_d = 0;
                std::uint64_t hm_i = 0;
                const LastXlat &d = al0_[0];
                if (d.mask != 0 && d.asid == current_ &&
                    d.gen == gen) {
                    hm_d = samePageMask(vas + i + j, wn, d.va, d.mask);
                    if (!(d.writable && d.dirty))
                        hm_d &= ~(w_w >> j);
                }
                const LastXlat &f = al0_[1];
                if (f.mask != 0 && f.asid == current_ &&
                    f.gen == gen) {
                    hm_i = samePageMask(vas + i + j, wn, f.va, f.mask);
                    if (!(f.writable && f.dirty))
                        hm_i &= ~(w_w >> j);
                }
                const std::uint64_t hit =
                    ((hm_d & ~(w_i >> j)) | (hm_i & (w_i >> j))) &
                    lowMask(wn);
                const std::size_t k = std::min(
                    trailingOnes(hit), intervalRoom(op_cycles));
#ifndef NDEBUG
                ap_assert(k > 0, "probed lane lost from its own sweep");
                for (std::size_t t = 0; t < k; ++t) {
                    const Addr va_t = vas[i + j + t];
                    const bool wr_t = (w_w >> (j + t)) & 1;
                    const bool in_t = (w_i >> (j + t)) & 1;
                    const LastXlat &l0t = al0_[in_t];
                    ap_assert(
                        l0t.mask != 0 &&
                            ((va_t ^ l0t.va) & l0t.mask) == 0 &&
                            l0t.asid == current_ && l0t.gen == gen &&
                            (!wr_t || (l0t.writable && l0t.dirty)),
                        "vectorized filter claimed a lane the scalar "
                        "filter rejects");
                }
#endif
                instructions_ += std::uint64_t(k) * op_cycles;
                const std::uint64_t wnd = (w_i >> j) & lowMask(k);
                const std::uint64_t n_i =
                    std::uint64_t(__builtin_popcountll(wnd));
                const std::uint64_t n_d = k - n_i;
                if (n_d)
                    atlb_->countFilteredL1Hit(al0_[0].size, false, n_d);
                if (n_i)
                    atlb_->countFilteredL1Hit(al0_[1].size, true, n_i);
                filtered += k;
                ++retires;
                j += k;
                continue;
            }
            // Scalar lane: the filter rejected it, or the policy
            // interval fires on this access. One iteration of the
            // scalar chain, bit for bit — except that a lane which
            // failed the predicate needs no post-interval recheck:
            // the interval can only advance the flush generation, and
            // the filter compares the slot's generation for equality,
            // so a rejected lane can never newly pass.
            instructions_ += op_cycles;
            if (instructions_ >= next_interval_) {
                // The interval tick can read stats and flush TLBs
                // (mode switches), so land the deferred probe charges
                // first, then revalidate the generation.
                atlb_->applyRefillPending(pending);
                maybeInterval();
                gen = atlb_->flushGeneration(current_);
                // Only a predicate-passing lane deflected here by
                // interval room can still be a filter hit, and only
                // if the tick flushed nothing (slot generation still
                // current).
                if (pred && p.gen == gen) {
                    atlb_->countFilteredL1Hit(p.size, instr);
                    ++filtered;
                    ++j;
                    continue;
                }
            }
            accessSlowImpl<true>(va, write, instr);
            gen = atlb_->flushGeneration(current_);
            ++j;
        }
        i += bn;
    }

    atlb_->applyRefillPending(pending);
    refill_pending_ = nullptr;

    g_blocks_scanned.fetch_add(blocks, std::memory_order_relaxed);
    g_lanes_scanned.fetch_add(lanes, std::memory_order_relaxed);
    g_lanes_filtered.fetch_add(filtered, std::memory_order_relaxed);
    g_bulk_retires.fetch_add(retires, std::memory_order_relaxed);
}

void
Machine::primeBatch(const Addr *vas, std::size_t begin, std::size_t count)
{
    prime_vpns_.clear();
    prime_vpns_.reserve(count);
    for (std::size_t i = begin; i < begin + count; ++i)
        prime_vpns_.push_back(vas[i] >> kPageShift);
    std::sort(prime_vpns_.begin(), prime_vpns_.end());
    prime_vpns_.erase(
        std::unique(prime_vpns_.begin(), prime_vpns_.end()),
        prime_vpns_.end());
    const TranslationContext &ctx = guest_os_->context(current_);
    Walker::PrimeMemo memo;
    for (Addr vpn : prime_vpns_)
        awalker_->primeWalk(ctx, vpn << kPageShift, memo);
}

void
Machine::touch(Addr va, bool write, bool instr)
{
    doAccess(va, write, instr);
}

void
Machine::enableWalkTrace(std::size_t capacity)
{
    walk_trace_ = std::make_unique<WalkTraceBuffer>(capacity);
}

void
Machine::recordWalkTrace(
    ProcId pid, Addr va, bool write, bool instr, const WalkResult &r,
    const std::array<std::uint64_t, kNumTrapKinds> &traps_before)
{
    auto clamp8 = [](unsigned v) {
        return static_cast<std::uint8_t>(std::min(v, 255u));
    };
    WalkTraceRecord rec;
    rec.va = va;
    rec.asid = pid;
    rec.mode =
        static_cast<std::uint8_t>(guest_os_->context(pid).mode);
    rec.pageSize = static_cast<std::uint8_t>(r.size);
    if (write)
        rec.flags |= WalkTraceRecord::kFlagWrite;
    if (instr)
        rec.flags |= WalkTraceRecord::kFlagInstr;
    if (r.fullNested)
        rec.flags |= WalkTraceRecord::kFlagFullNested;
    rec.switchDepth = clamp8(r.switchDepth);
    rec.refs = clamp8(r.refs);
    rec.coldRefs = clamp8(r.coldRefs);
    for (std::size_t t = 0; t < kNumWalkTables; ++t)
        rec.refsByTable[t] = clamp8(r.refsByTable[t]);
    rec.pwcStartDepth = clamp8(r.pwcStartDepth);
    rec.ntlbHits = clamp8(r.ntlbHits);
    rec.faults = clamp8(last_translate_faults_);
    if (vmm_) {
        for (std::size_t k = 0; k < kNumTrapKinds; ++k) {
            if (vmm_->trapCount(static_cast<TrapKind>(k)) >
                traps_before[k]) {
                rec.trapMask |= std::uint16_t(1u << k);
            }
        }
    }
    walk_trace_->append(rec);
}

void
Machine::maybeInterval()
{
    if (instructions_ < next_interval_)
        return;
    next_interval_ = instructions_ + cfg_.policyIntervalOps;

    std::uint64_t ops = instructions_ - interval_start_ops_;
    if (ops == 0)
        ops = 1;
    Cycles walk_delta = walk_cycles_ - interval_walk_cycles_;

    if (policy_ || shsp_) {
        ShspSample sample;
        sample.walkCycles = walk_delta;
        // SHSP compares against the *recurring* traps shadowing
        // causes. Mode-independent exits (EPT faults, host COW) and
        // one-time rebuild fills would otherwise bias it: the former
        // toward nested forever, the latter into a zap/rebuild
        // oscillation (fills right after a switch are transient).
        if (vmm_) {
            const TrapKind shadow_kinds[] = {
                TrapKind::ShadowPtWrite,  TrapKind::GuestFaultMediation,
                TrapKind::CtxSwitch,      TrapKind::TlbFlush,
                TrapKind::AdEmulation,    TrapKind::Unsync};
            Cycles shadow_cycles = 0;
            for (TrapKind k : shadow_kinds) {
                std::uint64_t now = vmm_->trapCount(k);
                std::uint64_t delta =
                    now - interval_trap_counts_[std::size_t(k)];
                shadow_cycles += delta * cfg_.trapCosts.cost(k);
            }
            sample.trapCycles = shadow_cycles;
        }
        sample.gptWrites = interval_gpt_writes_;
        sample.idealCycles = ops;
        PolicySample psample;
        psample.walkCycles = walk_delta;
        psample.gptWrites = interval_gpt_writes_;
        psample.idealCycles = ops;
        for (ProcId pid : guest_os_->livePids()) {
            if (!shadowed(pid))
                continue;
            if (policy_)
                policy_->onInterval(pid, psample);
            if (shsp_)
                shsp_->onInterval(pid, sample);
        }
    }

    interval_start_ops_ = instructions_;
    interval_walk_cycles_ = walk_cycles_;
    interval_trap_cycles_base_ = vmm_ ? vmm_->trapCycles() : 0;
    if (vmm_) {
        for (std::size_t k = 0; k < kNumTrapKinds; ++k) {
            interval_trap_counts_[k] =
                vmm_->trapCount(static_cast<TrapKind>(k));
        }
    }
    interval_gpt_writes_ = 0;
}

// ---------------------------------------------------------------------
// WorkloadHost
// ---------------------------------------------------------------------

Addr
Machine::mmap(Addr length, bool writable, bool file_backed,
              std::uint64_t file_id)
{
    return guest_os_->mmap(current_, length, writable,
                           file_backed ? VmaKind::File : VmaKind::Anon,
                           file_id);
}

bool
Machine::mmapAt(Addr base, Addr length, bool writable, bool file_backed,
                std::uint64_t file_id)
{
    return guest_os_->mmapFixed(current_, base, length, writable,
                                file_backed ? VmaKind::File
                                            : VmaKind::Anon,
                                file_id);
}

void
Machine::munmap(Addr base, Addr length)
{
    guest_os_->munmap(current_, base, length);
}

void
Machine::access(Addr va, bool write)
{
    doAccess(va, write, false);
}

void
Machine::instrFetch(Addr va)
{
    doAccess(va, false, true);
}

void
Machine::compute(std::uint64_t instructions)
{
    instructions_ += instructions;
}

void
Machine::forkTouchExit(std::uint64_t touch_pages)
{
    ProcId parent = current_;
    ProcId child = guest_os_->fork(parent);
    if (!child)
        return;
    switchTo(child);
    for (std::uint64_t i = 0; i < touch_pages; ++i) {
        Addr va = guest_os_->randomMappedVa(child, internal_rng_);
        if (va)
            doAccess(va, true, false);
    }
    switchTo(parent);
    guest_os_->exitProcess(child);
}

void
Machine::yield()
{
    if (!background_) {
        ProcId main = current_;
        background_ = guest_os_->createProcess(cfg_.mode);
        if (policy_)
            policy_->onProcessStart(background_);
        if (shsp_)
            shsp_->onProcessStart(background_);
        switchTo(background_);
        Addr scratch = guest_os_->mmap(background_, 64 * kPageBytes, true,
                                       VmaKind::Anon);
        for (unsigned i = 0; i < 8; ++i)
            doAccess(scratch + i * kPageBytes, true, false);
        switchTo(main);
    }
    ProcId main = current_;
    switchTo(background_);
    // The daemon does a little work (e.g. network stack processing).
    Addr va = guest_os_->randomMappedVa(background_, internal_rng_);
    if (va)
        doAccess(va, false, false);
    compute(50);
    switchTo(main);
}

void
Machine::reclaimTick(std::uint64_t max_pages)
{
    guest_os_->reclaimScan(current_, max_pages);
}

void
Machine::sharePagesScan()
{
    if (!vmm_)
        return;
    std::vector<FrameId> remapped;
    vmm_->sharePages(&remapped);
    if (remapped.empty())
        return;
    if (smgr_)
        smgr_->invalidateByGuestFrames(remapped);
    // Cached translations may hold the retired host frames — on every
    // vCPU.
    coh_->flushAll(CoherenceCause::HostRemap);
}

// ---------------------------------------------------------------------
// Runs and results
// ---------------------------------------------------------------------

RunResult
Machine::snapshot(const std::string &workload_name) const
{
    RunResult r;
    r.workload = workload_name;
    r.mode = cfg_.mode;
    r.pageSize = cfg_.pageSize;
    r.instructions = instructions_;
    r.idealCycles = instructions_ + guest_os_->guestCycles();
    r.walkCycles = walk_cycles_;
    r.trapCycles = vmm_ ? vmm_->trapCycles() : 0;
    r.tlbMisses = tlb_misses_;
    r.traps = vmm_ ? vmm_->trapCountTotal() : 0;
    r.guestPageFaults =
        static_cast<std::uint64_t>(guest_os_->pageFaults.value());
    if (extra_vcpus_.empty()) {
        // Classic single-walker expressions, kept verbatim so a 1-vCPU
        // machine reports bit-identical numbers.
        r.walks = static_cast<std::uint64_t>(walker_->walks.value());
        r.avgWalkRefs = walker_->refsDist.mean();
        r.rawRefsTotal = walker_->refsOkTotal.value();
        double total_walks = 0;
        for (const auto &c : walker_->coverage)
            total_walks += c.value();
        for (int i = 0; i < 6; ++i) {
            r.rawCoverage[i] = walker_->coverage[i].value();
            r.coverage[i] = total_walks
                                ? walker_->coverage[i].value() / total_walks
                                : 0.0;
        }
    } else {
        // Aggregate every vCPU's walker.
        double walks_total = 0, refs_total = 0, total_walks = 0;
        double cov[6] = {0, 0, 0, 0, 0, 0};
        auto accumulate = [&](const Walker &w) {
            walks_total += w.walks.value();
            refs_total += w.refsOkTotal.value();
            for (int i = 0; i < 6; ++i) {
                cov[i] += w.coverage[i].value();
                total_walks += w.coverage[i].value();
            }
        };
        accumulate(*walker_);
        for (const auto &vs : extra_vcpus_)
            accumulate(*vs->walker);
        r.walks = static_cast<std::uint64_t>(walks_total);
        r.rawRefsTotal = refs_total;
        for (int i = 0; i < 6; ++i) {
            r.rawCoverage[i] = cov[i];
            r.coverage[i] = total_walks ? cov[i] / total_walks : 0.0;
        }
        r.avgWalkRefs = total_walks ? refs_total / total_walks : 0.0;
    }
    if (vmm_) {
        for (std::size_t k = 0; k < kNumTrapKinds; ++k)
            r.trapByKind[k] = vmm_->trapCount(static_cast<TrapKind>(k));
    }
    if (range_backend_) {
        r.segmentHits = range_backend_->hitCount();
        r.segmentSpills = range_backend_->spillCount();
        r.segmentInvalidations = range_backend_->invalidationCount();
    }
    r.numVcpus = cfg_.numVcpus;
    r.coherenceCycles = coh_->cycles();
    r.shootdowns = coh_->shootdownCount();
    r.remoteInvalidations = coh_->remoteInvalidationCount();
    for (std::size_t c = 0; c < kNumCoherenceCauses; ++c) {
        r.shootdownsByCause[c] =
            coh_->shootdownsByCause(static_cast<CoherenceCause>(c));
    }
    return r;
}

RunResult
Machine::delta(const RunResult &end, const RunResult &start)
{
    RunResult d = end;
    d.instructions -= start.instructions;
    d.idealCycles -= start.idealCycles;
    d.walkCycles -= start.walkCycles;
    d.trapCycles -= start.trapCycles;
    d.tlbMisses -= start.tlbMisses;
    d.walks -= start.walks;
    d.traps -= start.traps;
    d.guestPageFaults -= start.guestPageFaults;
    for (std::size_t k = 0; k < kNumTrapKinds; ++k)
        d.trapByKind[k] -= start.trapByKind[k];
    d.coherenceCycles -= start.coherenceCycles;
    d.shootdowns -= start.shootdowns;
    d.remoteInvalidations -= start.remoteInvalidations;
    for (std::size_t c = 0; c < kNumCoherenceCauses; ++c)
        d.shootdownsByCause[c] -= start.shootdownsByCause[c];
    d.segmentHits -= start.segmentHits;
    d.segmentSpills -= start.segmentSpills;
    d.segmentInvalidations -= start.segmentInvalidations;
    double walks = 0;
    for (int i = 0; i < 6; ++i) {
        d.rawCoverage[i] = end.rawCoverage[i] - start.rawCoverage[i];
        walks += d.rawCoverage[i];
    }
    for (int i = 0; i < 6; ++i)
        d.coverage[i] = walks ? d.rawCoverage[i] / walks : 0.0;
    d.rawRefsTotal = end.rawRefsTotal - start.rawRefsTotal;
    d.avgWalkRefs = walks ? d.rawRefsTotal / walks : 0.0;
    return d;
}

ProcId
Machine::runWarmup(Workload &workload)
{
    ProcId pid = spawnProcess();
    run_pid_ = pid;
    workload.init(*this);
    // Fast-forward: populate the working set, then run the first part
    // of the workload (TLB/policy warmup) without measuring, then
    // measure the rest — the standard simulation methodology the
    // paper's real-hardware runs do not need but whole-run simulation
    // does.
    workload.warmup(*this);
    std::uint64_t warm_steps =
        workload.selfWarmup()
            ? 0
            : static_cast<std::uint64_t>(workload.params().operations *
                                         cfg_.warmupFraction);
    std::uint64_t steps = 0;
    bool more = true;
    while (more && steps < warm_steps) {
        more = workload.step(*this);
        ++steps;
    }
    warm_exhausted_ = !more;
    return pid;
}

RunResult
Machine::runMeasured(Workload &workload)
{
    RunResult base = snapshot(workload.name());
    // Measurement boundary: from here on the trace and the counters
    // describe the same set of walks, so summarizing the trace
    // reproduces the RunResult's coverage numbers exactly.
    if (walk_trace_)
        walk_trace_->clear();
    bool more = !warm_exhausted_;
    while (more)
        more = workload.step(*this);
    RunResult result = delta(snapshot(workload.name()), base);
    // The delta above already froze the counters; tear the workload
    // process down in bulk rather than simulating its exit.
    guest_os_->reapProcess(run_pid_);
    return result;
}

RunResult
Machine::run(Workload &workload)
{
    runWarmup(workload);
    return runMeasured(workload);
}

void
Machine::saveState(Serializer &s) const
{
    s.putMarker(0x4843414d); // "MACH"
    rng_.saveState(s);
    internal_rng_.saveState(s);
    s.putU32(current_);
    s.putU32(background_);
    s.putU32(run_pid_);
    s.putBool(warm_exhausted_);
    static_assert(std::is_trivially_copyable_v<LastXlat>,
                  "LastXlat must be raw-serializable");
    s.putRaw(&l0_[0], sizeof(l0_));
    s.putU32(last_translate_faults_);
    s.putU64(instructions_);
    s.putU64(walk_cycles_);
    s.putU64(tlb_misses_);
    s.putU64(next_interval_);
    s.putU64(interval_walk_cycles_);
    s.putU64(interval_trap_cycles_base_);
    for (std::uint64_t c : interval_trap_counts_)
        s.putU64(c);
    s.putU64(interval_gpt_writes_);
    s.putU64(interval_start_ops_);

    mem_.saveState(s);
    tlb_->saveState(s);
    pwc_->saveState(s);
    // Extra vCPU stacks and the schedule position; the config digest
    // pins numVcpus, so reader and writer agree on the count.
    if (!extra_vcpus_.empty()) {
        s.putU32(active_vcpu_);
        s.putU64(vcpu_quantum_left_);
        for (const auto &vs : extra_vcpus_) {
            vs->tlb->saveState(s);
            vs->pwc->saveState(s);
            s.putRaw(&vs->l0[0], sizeof(vs->l0));
        }
    }
    coh_->saveState(s);
    ntlb_->saveState(s);
    s.putBool(vmm_ != nullptr);
    if (vmm_)
        vmm_->saveState(s);
    guest_os_->saveState(s);
    s.putBool(smgr_ != nullptr);
    if (smgr_)
        smgr_->saveState(s);
    s.putBool(shsp_ != nullptr);
    if (shsp_)
        shsp_->saveState(s);
    // Backend-private state (segment-register files). The stateless
    // built-in backends write nothing, preserving the classic layout.
    backend_->saveState(s);
    // Stats last: every component above is pure state, the stats tree
    // carries the accumulated counters of all of them.
    saveStatsTree(s);
    s.putMarker(0x444e4546); // "FEND"
}

bool
Machine::restoreState(Deserializer &d)
{
    d.checkMarker(0x4843414d);
    rng_.restoreState(d);
    internal_rng_.restoreState(d);
    current_ = d.getU32();
    background_ = d.getU32();
    run_pid_ = d.getU32();
    warm_exhausted_ = d.getBool();
    d.getRaw(&l0_[0], sizeof(l0_));
    last_translate_faults_ = d.getU32();
    instructions_ = d.getU64();
    walk_cycles_ = d.getU64();
    tlb_misses_ = d.getU64();
    next_interval_ = d.getU64();
    interval_walk_cycles_ = d.getU64();
    interval_trap_cycles_base_ = d.getU64();
    for (std::uint64_t &c : interval_trap_counts_)
        c = d.getU64();
    interval_gpt_writes_ = d.getU64();
    interval_start_ops_ = d.getU64();
    if (!d.ok())
        return false;

    // A machine that already ran carries guest and shadow page-table
    // trees whose destructors would free frames out of the image about
    // to be restored; abandon them against the old memory before the
    // wipe (no-op on a fresh machine). This is what makes restoring
    // into a *reused* machine — keeping its arena slabs and frame
    // vectors warm — byte-equivalent to restoring into a fresh one.
    guest_os_->abandonForRestore();
    if (smgr_)
        smgr_->abandonForRestore();
    // Host-side priming gate: a fresh machine primes its first batch,
    // so a reused one must too (the flag is host-only and never
    // serialized, but it must not leak across lives).
    prime_next_ = true;

    // Order matters: memory first (page trees materialize), then the
    // structures that hold frame ids into it, then the guest OS (which
    // adopts its page-table roots), then the shadow manager (which
    // resolves guest tables through the restored guest OS).
    mem_.restoreState(d);
    tlb_->restoreState(d);
    pwc_->restoreState(d);
    if (!extra_vcpus_.empty()) {
        unsigned active = d.getU32();
        if (active >= cfg_.numVcpus)
            return false;
        vcpu_quantum_left_ = d.getU64();
        for (auto &vs : extra_vcpus_) {
            vs->tlb->restoreState(d);
            vs->pwc->restoreState(d);
            d.getRaw(&vs->l0[0], sizeof(vs->l0));
        }
        setActiveVcpu(active);
    }
    coh_->restoreState(d);
    ntlb_->restoreState(d);
    if (d.getBool() != (vmm_ != nullptr))
        return false;
    if (vmm_)
        vmm_->restoreState(d);
    guest_os_->restoreState(d);
    if (d.getBool() != (smgr_ != nullptr))
        return false;
    if (smgr_) {
        smgr_->restoreState(d, [this](ProcId pid) -> RadixPageTable * {
            return guest_os_->hasProcess(pid)
                       ? guest_os_->process(pid).pt.get()
                       : nullptr;
        });
    }
    if (d.getBool() != (shsp_ != nullptr))
        return false;
    if (shsp_)
        shsp_->restoreState(d);
    backend_->restoreState(d);
    restoreStatsTree(d);
    d.checkMarker(0x444e4546);
    return d.ok();
}

} // namespace ap
