/**
 * @file
 * Machine implementation: composition, the access path (TLB probe,
 * fault-servicing walk loop, protection resolution), scheduling, and
 * interval-driven policies.
 */

#include "sim/machine.hh"

#include <algorithm>

#include "base/bitfield.hh"
#include "base/debug.hh"
#include "base/logging.hh"

namespace ap
{

Machine::Machine(const SimConfig &cfg)
    : stats::StatGroup("machine"),
      instructionsStat(this, "instructions", "instructions executed",
                       [this] { return double(instructions_); }),
      walkCyclesStat(this, "walk_cycles", "translation cycles",
                     [this] { return double(walk_cycles_); }),
      l2HitCyclesStat(this, "l2_hit_cycles", "cycles in L2 TLB hits"),
      protFaults(this, "prot_faults", "write-permission fixups"),
      arenaPoolHits(this, "arena_pool_hits",
                    "PT-page acquires served without heap allocation",
                    [this] { return double(mem_.arena().poolHits()); }),
      arenaRecycles(this, "arena_recycles",
                    "PT-page acquires served from the recycle list",
                    [this] { return double(mem_.arena().recycles()); }),
      arenaHighWater(this, "arena_high_water",
                     "most PT pages simultaneously live",
                     [this] { return double(mem_.arena().highWater()); }),
      arenaSlabAllocs(this, "arena_slab_allocs",
                      "slab allocations (heap fallback path)",
                      [this] { return double(mem_.arena().slabAllocs()); }),
      guestPtFrameRecycles(
          this, "guest_pt_frame_recycles",
          "guest PT frame ids served by recycling",
          [this] { return vmm_ ? double(vmm_->ptAllocator().recycles())
                               : 0.0; }),
      guestPtFrameHighWater(
          this, "guest_pt_frame_high_water",
          "most guest PT frame ids simultaneously allocated",
          [this] { return vmm_ ? double(vmm_->ptAllocator().highWater())
                               : 0.0; }),
      guestDataFrameRecycles(
          this, "guest_data_frame_recycles",
          "guest data frame ids served by recycling",
          [this] { return vmm_ ? double(vmm_->dataAllocator().recycles())
                               : 0.0; }),
      guestDataFrameHighWater(
          this, "guest_data_frame_high_water",
          "most guest data frame ids simultaneously allocated",
          [this] { return vmm_ ? double(vmm_->dataAllocator().highWater())
                               : 0.0; }),
      cfg_(cfg),
      rng_(12345),          // workload stream: identical in every mode
      internal_rng_(12345), // machine stream: driven by events only
      mem_(cfg.hostMemFrames,
           cfg.arenaSlabPages ? cfg.arenaSlabPages
                              : PtPageArena::kDefaultSlabPages)
{
    tlb_ = std::make_unique<TlbHierarchy>(this, cfg_.tlb);
    pwc_ = std::make_unique<PageWalkCache>(this, cfg_.pwcEntries,
                                           cfg_.pwcWays, cfg_.pwcEnabled);
    ntlb_ = std::make_unique<NestedTlb>(this, cfg_.ntlbEntries,
                                        cfg_.ntlbWays, cfg_.ntlbEnabled);
    walker_ = std::make_unique<Walker>(this, mem_, *pwc_, *ntlb_);

    // Translation coherence: every vCPU's private stack registers with
    // the shared domain; the guest OS and shadow manager invalidate
    // through it. The nested TLB caches gPA->hPA and is per-VM, so the
    // extra vCPUs share ntlb_ (and the walker serializes through it
    // deterministically under the round-robin schedule).
    coh_ = std::make_unique<CoherenceDomain>(this, cfg_.tlbCoherence,
                                             cfg_.ipiShootdownCycles,
                                             cfg_.hwInvalidateCycles);
    coh_->addVcpu(tlb_.get(), pwc_.get());
    for (unsigned v = 1; v < cfg_.numVcpus; ++v) {
        auto stack = std::make_unique<VcpuStack>();
        stack->group = std::make_unique<stats::StatGroup>(
            "vcpu" + std::to_string(v), this);
        stack->tlb = std::make_unique<TlbHierarchy>(stack->group.get(),
                                                    cfg_.tlb);
        stack->pwc = std::make_unique<PageWalkCache>(
            stack->group.get(), cfg_.pwcEntries, cfg_.pwcWays,
            cfg_.pwcEnabled);
        stack->walker = std::make_unique<Walker>(stack->group.get(),
                                                 mem_, *stack->pwc,
                                                 *ntlb_);
        coh_->addVcpu(stack->tlb.get(), stack->pwc.get());
        extra_vcpus_.push_back(std::move(stack));
    }
    setActiveVcpu(0);
    vcpu_quantum_left_ = cfg_.vcpuQuantumOps;

    // Resolve the translation backend: stateful modes get a per-machine
    // instance from the registry (stats registered under this machine),
    // the classic paging families share the stateless singletons.
    BackendArgs bargs;
    bargs.statParent = this;
    bargs.numVcpus = cfg_.numVcpus;
    bargs.range = cfg_.range;
    backend_owned_ = makeTranslationBackend(cfg_.mode, bargs);
    backend_ = backend_owned_ ? backend_owned_.get()
                              : &builtinBackend(cfg_.mode);
    range_backend_ = dynamic_cast<RangeBackend *>(backend_);
    walker_->setBackend(backend_, 0);
    for (unsigned v = 1; v < cfg_.numVcpus; ++v)
        extra_vcpus_[v - 1]->walker->setBackend(backend_, v);
    if (CoherenceListener *listener = backend_->coherenceListener())
        coh_->addListener(listener);

    const BackendTraits &traits = backendTraits(cfg_.mode);
    if (traits.usesVmm) {
        VmmConfig vcfg;
        vcfg.guestPtFrames = cfg_.guestPtFrames;
        vcfg.guestDataFrames = cfg_.guestDataFrames;
        vcfg.hostPageSize = cfg_.pageSize;
        vcfg.costs = cfg_.trapCosts;
        vcfg.sptrCacheEntries = cfg_.sptrCacheEntries;
        vmm_ = std::make_unique<Vmm>(this, mem_, vcfg, ntlb_.get());
        if (traits.usesShadowMgr) {
            ShadowConfig scfg;
            scfg.unsyncEnabled = cfg_.unsyncEnabled;
            scfg.hwOptAd = cfg_.hwOptAd;
            smgr_ = std::make_unique<ShadowMgr>(this, mem_, *vmm_, scfg,
                                                coh_.get());
            if (traits.usesAgilePolicy) {
                policy_ = std::make_unique<AgilePolicy>(this, *smgr_,
                                                        cfg_.policy);
            } else if (traits.usesShsp) {
                shsp_ = std::make_unique<ShspController>(this, *smgr_,
                                                         cfg_.shsp);
            }
        }
    }

    GuestOsConfig gcfg = cfg_.guestOs;
    // The guest granule follows the machine page size unless the
    // caller picked a different guest granule explicitly (mixed-stage
    // configurations, Section V).
    if (gcfg.pageSize == PageSize::Size4K)
        gcfg.pageSize = cfg_.pageSize;
    guest_os_ = std::make_unique<GuestOs>(this, mem_, vmm_.get(),
                                          smgr_.get(), coh_.get(), gcfg);
    guest_os_->onMediatedGptWrite = [this](ProcId pid, Addr va,
                                           unsigned depth,
                                           const GptWriteOutcome &out) {
        if (policy_)
            policy_->onMediatedWrite(pid, va, depth, out);
    };
    guest_os_->onAnyGptWrite = [this](ProcId, Addr, unsigned) {
        ++interval_gpt_writes_;
    };

    next_interval_ = cfg_.policyIntervalOps;
}

Machine::~Machine() = default;

void
Machine::setActiveVcpu(unsigned vcpu)
{
    active_vcpu_ = vcpu;
    if (vcpu == 0) {
        atlb_ = tlb_.get();
        apwc_ = pwc_.get();
        awalker_ = walker_.get();
        al0_ = l0_;
    } else {
        VcpuStack &s = *extra_vcpus_[vcpu - 1];
        atlb_ = s.tlb.get();
        apwc_ = s.pwc.get();
        awalker_ = s.walker.get();
        al0_ = s.l0;
    }
}

TlbHierarchy &
Machine::tlbOf(unsigned vcpu)
{
    return vcpu == 0 ? *tlb_ : *extra_vcpus_[vcpu - 1]->tlb;
}

PageWalkCache &
Machine::pwcOf(unsigned vcpu)
{
    return vcpu == 0 ? *pwc_ : *extra_vcpus_[vcpu - 1]->pwc;
}

bool
Machine::shadowed(ProcId pid) const
{
    return smgr_ && smgr_->hasProcess(pid);
}

ProcId
Machine::spawnProcess()
{
    ProcId pid = guest_os_->createProcess(cfg_.mode);
    if (policy_)
        policy_->onProcessStart(pid);
    if (shsp_)
        shsp_->onProcessStart(pid);
    switchTo(pid);
    return pid;
}

void
Machine::switchTo(ProcId pid)
{
    ap_assert(guest_os_->hasProcess(pid), "switch to dead process");
    if (pid == current_)
        return;
    current_ = pid;
    instructions_ += cfg_.ctxSwitchGuestCycles; // guest-side work
    if (shadowed(pid))
        smgr_->onCtxSwitchIn(pid);
    // Nested/native CR3 writes are direct; with per-asid TLB tagging
    // (PCID-style) no flush is required.
}

WalkResult
Machine::translate(ProcId pid, Addr va, bool write)
{
    for (int attempt = 0; attempt < 32; ++attempt) {
        TranslationContext &ctx = guest_os_->context(pid);
        // The walker hands back its reused scratch result; no handler
        // below re-enters the walker, so the reference stays valid
        // until the retry.
        const WalkResult &r = awalker_->walk(ctx, va, write);
        walk_cycles_ += r.coldRefs * cfg_.walkRefCycles +
                        (r.refs - r.coldRefs) * cfg_.walkRefWarmCycles +
                        r.extraCycles;
        if (r.ok()) {
            last_translate_faults_ = attempt;
            if (r.dirtyTransition && cfg_.hwOptAd && shadowed(pid) &&
                !ctx.fullNested) {
                // Hardware A/D writeback into all three tables costs
                // up to a full nested walk (Section IV).
                walk_cycles_ += cfg_.adWritebackRefs * cfg_.walkRefCycles;
                // Keep the guest table's A/D architecturally coherent.
                auto gm = guest_os_->process(pid).pt->lookup(va);
                if (gm) {
                    Pte *gpte =
                        guest_os_->process(pid).pt->entry(va, gm->depth);
                    gpte->accessed = true;
                    if (write && r.writable)
                        gpte->dirty = true;
                }
            }
            return r;
        }
        switch (r.fault) {
          case WalkFault::ShadowFault: {
            ShadowFillResult fill = smgr_->handleShadowFault(pid, va);
            if (fill == ShadowFillResult::NeedGuestFault) {
                // A true guest fault surfaces through the VMM first.
                vmm_->chargeTrap(TrapKind::GuestFaultMediation);
                if (!guest_os_->handlePageFault(pid, va, write))
                    ap_panic("guest segfault at 0x", std::hex, va);
            }
            break;
          }
          case WalkFault::GuestFault:
            // Nested portions deliver guest faults directly.
            if (!guest_os_->handlePageFault(pid, va, write))
                ap_panic("guest segfault at 0x", std::hex, va);
            break;
          case WalkFault::HostFault:
            if (!vmm_->handleHostFault(r.faultGpa))
                ap_fatal("host memory exhausted (gpa 0x", std::hex,
                         r.faultGpa, ")");
            break;
          case WalkFault::NativeFault:
            if (!guest_os_->handlePageFault(pid, va, write))
                ap_panic("segfault at 0x", std::hex, va);
            break;
          default:
            ap_panic("unexpected walk fault");
        }
    }
    ap_panic("translation did not converge at 0x", std::hex, va);
}

void
Machine::resolveProtection(ProcId pid, Addr va)
{
    ++protFaults;
    AP_DPRINTF(Machine, "proc ", pid, ": protection fixup at 0x",
               std::hex, va);
    ap_assert(guest_os_->vmaWritable(pid, va),
              "workload wrote a read-only mapping at 0x", std::hex, va);

    if (!guest_os_->guestMappingWritable(pid, va)) {
        // Guest-level COW (or a racing unmap): the guest's own fault
        // handler fixes it. Shadow-portion faults pay VMM mediation;
        // faults in nested-mode regions are delivered directly.
        if (shadowed(pid) && !guest_os_->context(pid).fullNested &&
            !smgr_->leafUnderNestedMode(pid, va)) {
            vmm_->chargeTrap(TrapKind::GuestFaultMediation);
        }
        if (!guest_os_->handlePageFault(pid, va, true))
            ap_panic("COW fixup failed at 0x", std::hex, va);
        return;
    }
    if (!guest_os_->isNative()) {
        FrameId gframe = guest_os_->leafFrame(pid, va);
        if (gframe && !vmm_->hostWritable(gframe)) {
            // Host-level COW from content-based sharing. The same exit
            // repairs the shadow leaf (new backing, writability).
            if (!vmm_->breakHostCow(gframe))
                ap_fatal("host memory exhausted during COW break");
            if (shadowed(pid) && !guest_os_->context(pid).fullNested)
                smgr_->refreshLeaf(pid, va);
            else
                coh_->flushPage(va, pid, CoherenceCause::HostRemap);
            return;
        }
    }
    if (shadowed(pid) && !guest_os_->context(pid).fullNested) {
        // Dirty-bit emulation (no A/D hardware optimization).
        smgr_->emulateDirtyWrite(pid, va);
        return;
    }
    // Stale cached translation: drop it and rewalk (local vCPU only —
    // the entry was just probed here).
    atlb_->flushPage(va, pid);
}

void
Machine::verifyAgainstFunctional(ProcId pid, Addr va, FrameId got)
{
    FrameId leaf = guest_os_->leafFrame(pid, va);
    ap_assert(leaf != 0, "verify: no functional mapping at 0x", std::hex,
              va);
    FrameId expected =
        guest_os_->isNative() ? leaf : vmm_->backing(leaf);
    ap_assert(got == expected, "translation mismatch at 0x", std::hex, va,
              ": hw 0x", got, " functional 0x", expected);
}

void
Machine::doAccess(Addr va, bool write, bool instr)
{
    if (!extra_vcpus_.empty()) {
        if (vcpu_quantum_left_ == 0) {
            vcpu_quantum_left_ = cfg_.vcpuQuantumOps;
            unsigned next = active_vcpu_ + 1;
            setActiveVcpu(next == cfg_.numVcpus ? 0 : next);
        }
        --vcpu_quantum_left_;
    }
    instructions_ += cfg_.cyclesPerOp;
    maybeInterval();
    accessSlow(va, write, instr);
}

void
Machine::accessSlow(Addr va, bool write, bool instr)
{
    ProcId pid = current_;

    for (int attempt = 0; attempt < 8; ++attempt) {
        TlbProbeResult hit = atlb_->probe(va, pid, instr);
        if (hit.level != TlbHitLevel::Miss) {
            if (hit.level == TlbHitLevel::L2) {
                // L2 TLB hit latency is identical in every mode and so
                // belongs to base execution time, not translation
                // overhead (the paper's T counts misses only).
                instructions_ += cfg_.l2TlbHitCycles;
                l2HitCyclesStat += cfg_.l2TlbHitCycles;
            }
            if (write && !hit.entry.writable) {
                resolveProtection(pid, va);
                continue;
            }
            if (write && !hit.entry.dirty) {
                // x86 semantics: a store through a cached translation
                // whose leaf dirty bit is clear must re-walk so the
                // hardware can set the in-memory dirty bit. Without
                // this, a write hitting an entry filled by a read
                // would never dirty the page.
                atlb_->flushPage(va, pid);
                continue;
            }
            if (cfg_.verifyTranslations) {
                std::uint64_t frames = pageBytes(hit.size) / kPageBytes;
                verifyAgainstFunctional(
                    pid, va, hit.entry.pfn + (frameOf(va) % frames));
            }
            al0_[instr] = {va, ~(pageBytes(hit.size) - 1), pid,
                           hit.size, hit.entry.writable, hit.entry.dirty,
                           atlb_->flushGeneration(pid)};
            return;
        }
        ++tlb_misses_;
        std::array<std::uint64_t, kNumTrapKinds> traps_before{};
        if (walk_trace_ && vmm_) {
            for (std::size_t k = 0; k < kNumTrapKinds; ++k)
                traps_before[k] = vmm_->trapCount(static_cast<TrapKind>(k));
        }
        WalkResult r = translate(pid, va, write);
        if (walk_trace_)
            recordWalkTrace(pid, va, write, instr, r, traps_before);
        if (write && !r.writable) {
            resolveProtection(pid, va);
            continue;
        }
        TlbEntry entry;
        entry.pfn = r.hframe;
        entry.writable = r.writable;
        entry.dirty = r.dirty;
        entry.asid = pid;
        atlb_->fill(va, pid, instr, r.size, entry);
        if (cfg_.verifyTranslations) {
            std::uint64_t frames = pageBytes(r.size) / kPageBytes;
            verifyAgainstFunctional(pid, va,
                                    r.hframe + (frameOf(va) % frames));
        }
        al0_[instr] = {va, ~(pageBytes(r.size) - 1), pid, r.size,
                       r.writable, r.dirty, atlb_->flushGeneration(pid)};
        return;
    }
    ap_panic("access did not converge at 0x", std::hex, va);
}

void
Machine::runAccessBatch(const Addr *vas, const std::uint64_t *write_bits,
                        const std::uint64_t *instr_bits,
                        std::size_t begin, std::size_t count)
{
    const Cycles op_cycles = cfg_.cyclesPerOp;
    // Multi-vCPU: the deterministic round-robin schedule lives in
    // doAccess, and the single-stack filter/priming assumptions below
    // do not hold across rotations — take the per-event path.
    if (!extra_vcpus_.empty()) {
        for (std::size_t i = begin; i < begin + count; ++i) {
            doAccess(vas[i], (write_bits[i >> 6] >> (i & 63)) & 1,
                     (instr_bits[i >> 6] >> (i & 63)) & 1);
        }
        return;
    }
    // Verification re-checks every access against the functional
    // mappings; the filter would skip those checks, so turn it off.
    const bool filter_ok = !cfg_.verifyTranslations;
    const std::uint64_t misses_before = tlb_misses_;
    if (cfg_.batchedWalks && prime_next_ && count >= 64)
        primeBatch(vas, begin, count);
    // The flush generation only moves inside maybeInterval() or
    // accessSlow(), so cache it in a register and re-load after
    // either call instead of chasing the pointer every iteration.
    std::uint64_t gen = tlb_->flushGeneration(current_);
    for (std::size_t i = begin; i < begin + count; ++i) {
        const Addr va = vas[i];
        const bool write = (write_bits[i >> 6] >> (i & 63)) & 1;
        const bool instr = (instr_bits[i >> 6] >> (i & 63)) & 1;
        instructions_ += op_cycles;
        if (instructions_ >= next_interval_) {
            maybeInterval();
            gen = tlb_->flushGeneration(current_);
        }
        const LastXlat &l0 = l0_[instr];
        if (filter_ok && l0.mask != 0 &&
            ((va ^ l0.va) & l0.mask) == 0 && l0.asid == current_ &&
            l0.gen == gen &&
            (!write || (l0.writable && l0.dirty))) {
            // Same page, same stream, nothing flushed since: the probe
            // would hit the same (still-MRU) L1 entry and take the same
            // early-outs. Account it without re-touching the arrays.
            tlb_->countFilteredL1Hit(l0.size, instr);
            continue;
        }
        accessSlow(va, write, instr);
        gen = tlb_->flushGeneration(current_);
    }
    // Re-arm priming only at walk densities where the sorted pre-touch
    // pays for the sort (roughly one miss per 16 accesses — cold or
    // TLB-thrashing phases); a warm TLB keeps it off.
    prime_next_ = (tlb_misses_ - misses_before) * 16 >= count;
}

void
Machine::primeBatch(const Addr *vas, std::size_t begin, std::size_t count)
{
    prime_vpns_.clear();
    prime_vpns_.reserve(count);
    for (std::size_t i = begin; i < begin + count; ++i)
        prime_vpns_.push_back(vas[i] >> kPageShift);
    std::sort(prime_vpns_.begin(), prime_vpns_.end());
    prime_vpns_.erase(
        std::unique(prime_vpns_.begin(), prime_vpns_.end()),
        prime_vpns_.end());
    const TranslationContext &ctx = guest_os_->context(current_);
    Walker::PrimeMemo memo;
    for (Addr vpn : prime_vpns_)
        awalker_->primeWalk(ctx, vpn << kPageShift, memo);
}

void
Machine::touch(Addr va, bool write, bool instr)
{
    doAccess(va, write, instr);
}

void
Machine::enableWalkTrace(std::size_t capacity)
{
    walk_trace_ = std::make_unique<WalkTraceBuffer>(capacity);
}

void
Machine::recordWalkTrace(
    ProcId pid, Addr va, bool write, bool instr, const WalkResult &r,
    const std::array<std::uint64_t, kNumTrapKinds> &traps_before)
{
    auto clamp8 = [](unsigned v) {
        return static_cast<std::uint8_t>(std::min(v, 255u));
    };
    WalkTraceRecord rec;
    rec.va = va;
    rec.asid = pid;
    rec.mode =
        static_cast<std::uint8_t>(guest_os_->context(pid).mode);
    rec.pageSize = static_cast<std::uint8_t>(r.size);
    if (write)
        rec.flags |= WalkTraceRecord::kFlagWrite;
    if (instr)
        rec.flags |= WalkTraceRecord::kFlagInstr;
    if (r.fullNested)
        rec.flags |= WalkTraceRecord::kFlagFullNested;
    rec.switchDepth = clamp8(r.switchDepth);
    rec.refs = clamp8(r.refs);
    rec.coldRefs = clamp8(r.coldRefs);
    for (std::size_t t = 0; t < kNumWalkTables; ++t)
        rec.refsByTable[t] = clamp8(r.refsByTable[t]);
    rec.pwcStartDepth = clamp8(r.pwcStartDepth);
    rec.ntlbHits = clamp8(r.ntlbHits);
    rec.faults = clamp8(last_translate_faults_);
    if (vmm_) {
        for (std::size_t k = 0; k < kNumTrapKinds; ++k) {
            if (vmm_->trapCount(static_cast<TrapKind>(k)) >
                traps_before[k]) {
                rec.trapMask |= std::uint16_t(1u << k);
            }
        }
    }
    walk_trace_->append(rec);
}

void
Machine::maybeInterval()
{
    if (instructions_ < next_interval_)
        return;
    next_interval_ = instructions_ + cfg_.policyIntervalOps;

    std::uint64_t ops = instructions_ - interval_start_ops_;
    if (ops == 0)
        ops = 1;
    Cycles walk_delta = walk_cycles_ - interval_walk_cycles_;

    if (policy_ || shsp_) {
        ShspSample sample;
        sample.walkCycles = walk_delta;
        // SHSP compares against the *recurring* traps shadowing
        // causes. Mode-independent exits (EPT faults, host COW) and
        // one-time rebuild fills would otherwise bias it: the former
        // toward nested forever, the latter into a zap/rebuild
        // oscillation (fills right after a switch are transient).
        if (vmm_) {
            const TrapKind shadow_kinds[] = {
                TrapKind::ShadowPtWrite,  TrapKind::GuestFaultMediation,
                TrapKind::CtxSwitch,      TrapKind::TlbFlush,
                TrapKind::AdEmulation,    TrapKind::Unsync};
            Cycles shadow_cycles = 0;
            for (TrapKind k : shadow_kinds) {
                std::uint64_t now = vmm_->trapCount(k);
                std::uint64_t delta =
                    now - interval_trap_counts_[std::size_t(k)];
                shadow_cycles += delta * cfg_.trapCosts.cost(k);
            }
            sample.trapCycles = shadow_cycles;
        }
        sample.gptWrites = interval_gpt_writes_;
        sample.idealCycles = ops;
        PolicySample psample;
        psample.walkCycles = walk_delta;
        psample.gptWrites = interval_gpt_writes_;
        psample.idealCycles = ops;
        for (ProcId pid : guest_os_->livePids()) {
            if (!shadowed(pid))
                continue;
            if (policy_)
                policy_->onInterval(pid, psample);
            if (shsp_)
                shsp_->onInterval(pid, sample);
        }
    }

    interval_start_ops_ = instructions_;
    interval_walk_cycles_ = walk_cycles_;
    interval_trap_cycles_base_ = vmm_ ? vmm_->trapCycles() : 0;
    if (vmm_) {
        for (std::size_t k = 0; k < kNumTrapKinds; ++k) {
            interval_trap_counts_[k] =
                vmm_->trapCount(static_cast<TrapKind>(k));
        }
    }
    interval_gpt_writes_ = 0;
}

// ---------------------------------------------------------------------
// WorkloadHost
// ---------------------------------------------------------------------

Addr
Machine::mmap(Addr length, bool writable, bool file_backed,
              std::uint64_t file_id)
{
    return guest_os_->mmap(current_, length, writable,
                           file_backed ? VmaKind::File : VmaKind::Anon,
                           file_id);
}

bool
Machine::mmapAt(Addr base, Addr length, bool writable, bool file_backed,
                std::uint64_t file_id)
{
    return guest_os_->mmapFixed(current_, base, length, writable,
                                file_backed ? VmaKind::File
                                            : VmaKind::Anon,
                                file_id);
}

void
Machine::munmap(Addr base, Addr length)
{
    guest_os_->munmap(current_, base, length);
}

void
Machine::access(Addr va, bool write)
{
    doAccess(va, write, false);
}

void
Machine::instrFetch(Addr va)
{
    doAccess(va, false, true);
}

void
Machine::compute(std::uint64_t instructions)
{
    instructions_ += instructions;
}

void
Machine::forkTouchExit(std::uint64_t touch_pages)
{
    ProcId parent = current_;
    ProcId child = guest_os_->fork(parent);
    if (!child)
        return;
    switchTo(child);
    for (std::uint64_t i = 0; i < touch_pages; ++i) {
        Addr va = guest_os_->randomMappedVa(child, internal_rng_);
        if (va)
            doAccess(va, true, false);
    }
    switchTo(parent);
    guest_os_->exitProcess(child);
}

void
Machine::yield()
{
    if (!background_) {
        ProcId main = current_;
        background_ = guest_os_->createProcess(cfg_.mode);
        if (policy_)
            policy_->onProcessStart(background_);
        if (shsp_)
            shsp_->onProcessStart(background_);
        switchTo(background_);
        Addr scratch = guest_os_->mmap(background_, 64 * kPageBytes, true,
                                       VmaKind::Anon);
        for (unsigned i = 0; i < 8; ++i)
            doAccess(scratch + i * kPageBytes, true, false);
        switchTo(main);
    }
    ProcId main = current_;
    switchTo(background_);
    // The daemon does a little work (e.g. network stack processing).
    Addr va = guest_os_->randomMappedVa(background_, internal_rng_);
    if (va)
        doAccess(va, false, false);
    compute(50);
    switchTo(main);
}

void
Machine::reclaimTick(std::uint64_t max_pages)
{
    guest_os_->reclaimScan(current_, max_pages);
}

void
Machine::sharePagesScan()
{
    if (!vmm_)
        return;
    std::vector<FrameId> remapped;
    vmm_->sharePages(&remapped);
    if (remapped.empty())
        return;
    if (smgr_)
        smgr_->invalidateByGuestFrames(remapped);
    // Cached translations may hold the retired host frames — on every
    // vCPU.
    coh_->flushAll(CoherenceCause::HostRemap);
}

// ---------------------------------------------------------------------
// Runs and results
// ---------------------------------------------------------------------

RunResult
Machine::snapshot(const std::string &workload_name) const
{
    RunResult r;
    r.workload = workload_name;
    r.mode = cfg_.mode;
    r.pageSize = cfg_.pageSize;
    r.instructions = instructions_;
    r.idealCycles = instructions_ + guest_os_->guestCycles();
    r.walkCycles = walk_cycles_;
    r.trapCycles = vmm_ ? vmm_->trapCycles() : 0;
    r.tlbMisses = tlb_misses_;
    r.traps = vmm_ ? vmm_->trapCountTotal() : 0;
    r.guestPageFaults =
        static_cast<std::uint64_t>(guest_os_->pageFaults.value());
    if (extra_vcpus_.empty()) {
        // Classic single-walker expressions, kept verbatim so a 1-vCPU
        // machine reports bit-identical numbers.
        r.walks = static_cast<std::uint64_t>(walker_->walks.value());
        r.avgWalkRefs = walker_->refsDist.mean();
        r.rawRefsTotal = walker_->refsOkTotal.value();
        double total_walks = 0;
        for (const auto &c : walker_->coverage)
            total_walks += c.value();
        for (int i = 0; i < 6; ++i) {
            r.rawCoverage[i] = walker_->coverage[i].value();
            r.coverage[i] = total_walks
                                ? walker_->coverage[i].value() / total_walks
                                : 0.0;
        }
    } else {
        // Aggregate every vCPU's walker.
        double walks_total = 0, refs_total = 0, total_walks = 0;
        double cov[6] = {0, 0, 0, 0, 0, 0};
        auto accumulate = [&](const Walker &w) {
            walks_total += w.walks.value();
            refs_total += w.refsOkTotal.value();
            for (int i = 0; i < 6; ++i) {
                cov[i] += w.coverage[i].value();
                total_walks += w.coverage[i].value();
            }
        };
        accumulate(*walker_);
        for (const auto &vs : extra_vcpus_)
            accumulate(*vs->walker);
        r.walks = static_cast<std::uint64_t>(walks_total);
        r.rawRefsTotal = refs_total;
        for (int i = 0; i < 6; ++i) {
            r.rawCoverage[i] = cov[i];
            r.coverage[i] = total_walks ? cov[i] / total_walks : 0.0;
        }
        r.avgWalkRefs = total_walks ? refs_total / total_walks : 0.0;
    }
    if (vmm_) {
        for (std::size_t k = 0; k < kNumTrapKinds; ++k)
            r.trapByKind[k] = vmm_->trapCount(static_cast<TrapKind>(k));
    }
    if (range_backend_) {
        r.segmentHits = range_backend_->hitCount();
        r.segmentSpills = range_backend_->spillCount();
        r.segmentInvalidations = range_backend_->invalidationCount();
    }
    r.numVcpus = cfg_.numVcpus;
    r.coherenceCycles = coh_->cycles();
    r.shootdowns = coh_->shootdownCount();
    r.remoteInvalidations = coh_->remoteInvalidationCount();
    for (std::size_t c = 0; c < kNumCoherenceCauses; ++c) {
        r.shootdownsByCause[c] =
            coh_->shootdownsByCause(static_cast<CoherenceCause>(c));
    }
    return r;
}

RunResult
Machine::delta(const RunResult &end, const RunResult &start)
{
    RunResult d = end;
    d.instructions -= start.instructions;
    d.idealCycles -= start.idealCycles;
    d.walkCycles -= start.walkCycles;
    d.trapCycles -= start.trapCycles;
    d.tlbMisses -= start.tlbMisses;
    d.walks -= start.walks;
    d.traps -= start.traps;
    d.guestPageFaults -= start.guestPageFaults;
    for (std::size_t k = 0; k < kNumTrapKinds; ++k)
        d.trapByKind[k] -= start.trapByKind[k];
    d.coherenceCycles -= start.coherenceCycles;
    d.shootdowns -= start.shootdowns;
    d.remoteInvalidations -= start.remoteInvalidations;
    for (std::size_t c = 0; c < kNumCoherenceCauses; ++c)
        d.shootdownsByCause[c] -= start.shootdownsByCause[c];
    d.segmentHits -= start.segmentHits;
    d.segmentSpills -= start.segmentSpills;
    d.segmentInvalidations -= start.segmentInvalidations;
    double walks = 0;
    for (int i = 0; i < 6; ++i) {
        d.rawCoverage[i] = end.rawCoverage[i] - start.rawCoverage[i];
        walks += d.rawCoverage[i];
    }
    for (int i = 0; i < 6; ++i)
        d.coverage[i] = walks ? d.rawCoverage[i] / walks : 0.0;
    d.rawRefsTotal = end.rawRefsTotal - start.rawRefsTotal;
    d.avgWalkRefs = walks ? d.rawRefsTotal / walks : 0.0;
    return d;
}

ProcId
Machine::runWarmup(Workload &workload)
{
    ProcId pid = spawnProcess();
    run_pid_ = pid;
    workload.init(*this);
    // Fast-forward: populate the working set, then run the first part
    // of the workload (TLB/policy warmup) without measuring, then
    // measure the rest — the standard simulation methodology the
    // paper's real-hardware runs do not need but whole-run simulation
    // does.
    workload.warmup(*this);
    std::uint64_t warm_steps =
        workload.selfWarmup()
            ? 0
            : static_cast<std::uint64_t>(workload.params().operations *
                                         cfg_.warmupFraction);
    std::uint64_t steps = 0;
    bool more = true;
    while (more && steps < warm_steps) {
        more = workload.step(*this);
        ++steps;
    }
    warm_exhausted_ = !more;
    return pid;
}

RunResult
Machine::runMeasured(Workload &workload)
{
    RunResult base = snapshot(workload.name());
    // Measurement boundary: from here on the trace and the counters
    // describe the same set of walks, so summarizing the trace
    // reproduces the RunResult's coverage numbers exactly.
    if (walk_trace_)
        walk_trace_->clear();
    bool more = !warm_exhausted_;
    while (more)
        more = workload.step(*this);
    RunResult result = delta(snapshot(workload.name()), base);
    // The delta above already froze the counters; tear the workload
    // process down in bulk rather than simulating its exit.
    guest_os_->reapProcess(run_pid_);
    return result;
}

RunResult
Machine::run(Workload &workload)
{
    runWarmup(workload);
    return runMeasured(workload);
}

void
Machine::saveState(Serializer &s) const
{
    s.putMarker(0x4843414d); // "MACH"
    rng_.saveState(s);
    internal_rng_.saveState(s);
    s.putU32(current_);
    s.putU32(background_);
    s.putU32(run_pid_);
    s.putBool(warm_exhausted_);
    static_assert(std::is_trivially_copyable_v<LastXlat>,
                  "LastXlat must be raw-serializable");
    s.putRaw(&l0_[0], sizeof(l0_));
    s.putU32(last_translate_faults_);
    s.putU64(instructions_);
    s.putU64(walk_cycles_);
    s.putU64(tlb_misses_);
    s.putU64(next_interval_);
    s.putU64(interval_walk_cycles_);
    s.putU64(interval_trap_cycles_base_);
    for (std::uint64_t c : interval_trap_counts_)
        s.putU64(c);
    s.putU64(interval_gpt_writes_);
    s.putU64(interval_start_ops_);

    mem_.saveState(s);
    tlb_->saveState(s);
    pwc_->saveState(s);
    // Extra vCPU stacks and the schedule position; the config digest
    // pins numVcpus, so reader and writer agree on the count.
    if (!extra_vcpus_.empty()) {
        s.putU32(active_vcpu_);
        s.putU64(vcpu_quantum_left_);
        for (const auto &vs : extra_vcpus_) {
            vs->tlb->saveState(s);
            vs->pwc->saveState(s);
            s.putRaw(&vs->l0[0], sizeof(vs->l0));
        }
    }
    coh_->saveState(s);
    ntlb_->saveState(s);
    s.putBool(vmm_ != nullptr);
    if (vmm_)
        vmm_->saveState(s);
    guest_os_->saveState(s);
    s.putBool(smgr_ != nullptr);
    if (smgr_)
        smgr_->saveState(s);
    s.putBool(shsp_ != nullptr);
    if (shsp_)
        shsp_->saveState(s);
    // Backend-private state (segment-register files). The stateless
    // built-in backends write nothing, preserving the classic layout.
    backend_->saveState(s);
    // Stats last: every component above is pure state, the stats tree
    // carries the accumulated counters of all of them.
    saveStatsTree(s);
    s.putMarker(0x444e4546); // "FEND"
}

bool
Machine::restoreState(Deserializer &d)
{
    d.checkMarker(0x4843414d);
    rng_.restoreState(d);
    internal_rng_.restoreState(d);
    current_ = d.getU32();
    background_ = d.getU32();
    run_pid_ = d.getU32();
    warm_exhausted_ = d.getBool();
    d.getRaw(&l0_[0], sizeof(l0_));
    last_translate_faults_ = d.getU32();
    instructions_ = d.getU64();
    walk_cycles_ = d.getU64();
    tlb_misses_ = d.getU64();
    next_interval_ = d.getU64();
    interval_walk_cycles_ = d.getU64();
    interval_trap_cycles_base_ = d.getU64();
    for (std::uint64_t &c : interval_trap_counts_)
        c = d.getU64();
    interval_gpt_writes_ = d.getU64();
    interval_start_ops_ = d.getU64();
    if (!d.ok())
        return false;

    // A machine that already ran carries guest and shadow page-table
    // trees whose destructors would free frames out of the image about
    // to be restored; abandon them against the old memory before the
    // wipe (no-op on a fresh machine). This is what makes restoring
    // into a *reused* machine — keeping its arena slabs and frame
    // vectors warm — byte-equivalent to restoring into a fresh one.
    guest_os_->abandonForRestore();
    if (smgr_)
        smgr_->abandonForRestore();
    // Host-side priming gate: a fresh machine primes its first batch,
    // so a reused one must too (the flag is host-only and never
    // serialized, but it must not leak across lives).
    prime_next_ = true;

    // Order matters: memory first (page trees materialize), then the
    // structures that hold frame ids into it, then the guest OS (which
    // adopts its page-table roots), then the shadow manager (which
    // resolves guest tables through the restored guest OS).
    mem_.restoreState(d);
    tlb_->restoreState(d);
    pwc_->restoreState(d);
    if (!extra_vcpus_.empty()) {
        unsigned active = d.getU32();
        if (active >= cfg_.numVcpus)
            return false;
        vcpu_quantum_left_ = d.getU64();
        for (auto &vs : extra_vcpus_) {
            vs->tlb->restoreState(d);
            vs->pwc->restoreState(d);
            d.getRaw(&vs->l0[0], sizeof(vs->l0));
        }
        setActiveVcpu(active);
    }
    coh_->restoreState(d);
    ntlb_->restoreState(d);
    if (d.getBool() != (vmm_ != nullptr))
        return false;
    if (vmm_)
        vmm_->restoreState(d);
    guest_os_->restoreState(d);
    if (d.getBool() != (smgr_ != nullptr))
        return false;
    if (smgr_) {
        smgr_->restoreState(d, [this](ProcId pid) -> RadixPageTable * {
            return guest_os_->hasProcess(pid)
                       ? guest_os_->process(pid).pt.get()
                       : nullptr;
        });
    }
    if (d.getBool() != (shsp_ != nullptr))
        return false;
    if (shsp_)
        shsp_->restoreState(d);
    backend_->restoreState(d);
    restoreStatsTree(d);
    d.checkMarker(0x444e4546);
    return d.ok();
}

} // namespace ap
