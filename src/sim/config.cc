/**
 * @file
 * Option parsing for SimConfig.
 */

#include "sim/config.hh"

#include <algorithm>
#include <cctype>

namespace ap
{

namespace
{
bool g_batched_walks_default = true;
bool g_simd_filter_default = true;

std::string
lower(std::string s)
{
    std::transform(s.begin(), s.end(), s.begin(),
                   [](unsigned char c) { return std::tolower(c); });
    return s;
}
} // namespace

void
setBatchedWalksDefault(bool on)
{
    g_batched_walks_default = on;
}

bool
batchedWalksDefault()
{
    return g_batched_walks_default;
}

void
setSimdFilterDefault(bool on)
{
    g_simd_filter_default = on;
}

bool
simdFilterDefault()
{
    return g_simd_filter_default;
}

bool
parseVirtMode(const std::string &s, VirtMode &out)
{
    std::string v = lower(s);
    if (v == "native" || v == "b") {
        out = VirtMode::Native;
    } else if (v == "nested" || v == "n") {
        out = VirtMode::Nested;
    } else if (v == "shadow" || v == "s") {
        out = VirtMode::Shadow;
    } else if (v == "agile" || v == "a") {
        out = VirtMode::Agile;
    } else if (v == "shsp") {
        out = VirtMode::Shsp;
    } else if (v == "range" || v == "r") {
        out = VirtMode::Range;
    } else {
        return false;
    }
    return true;
}

bool
parsePageSize(const std::string &s, PageSize &out)
{
    std::string v = lower(s);
    if (v == "4k") {
        out = PageSize::Size4K;
    } else if (v == "2m") {
        out = PageSize::Size2M;
    } else if (v == "1g") {
        out = PageSize::Size1G;
    } else {
        return false;
    }
    return true;
}

bool
parseU64(const std::string &s, std::uint64_t &out)
{
    // std::stoull alone is too forgiving: it accepts leading
    // whitespace and a sign (negatives wrap modulo 2^64) and ignores
    // trailing junk ("4k" parses as 4). Require a pure digit string.
    if (s.empty() || !std::isdigit(static_cast<unsigned char>(s[0])))
        return false;
    std::size_t pos = 0;
    std::uint64_t v = 0;
    try {
        v = std::stoull(s, &pos, 10);
    } catch (...) {
        return false; // overflow
    }
    if (pos != s.size())
        return false;
    // Assign only on success so a rejected option leaves the caller's
    // value untouched.
    out = v;
    return true;
}

bool
SimConfig::applyOption(const std::string &option)
{
    auto eq = option.find('=');
    if (eq == std::string::npos)
        return false;
    std::string key = lower(option.substr(0, eq));
    std::string value = option.substr(eq + 1);

    if (key == "mode")
        return parseVirtMode(value, mode);
    if (key == "page" || key == "pagesize") {
        if (!parsePageSize(value, pageSize))
            return false;
        guestOs.pageSize = pageSize;
        return true;
    }
    auto as_u64 = [&value](std::uint64_t &out) {
        return parseU64(value, out);
    };
    auto as_bool = [&value](bool &out) {
        std::string v = lower(value);
        if (v == "1" || v == "true" || v == "on") {
            out = true;
        } else if (v == "0" || v == "false" || v == "off") {
            out = false;
        } else {
            return false;
        }
        return true;
    };

    if (key == "walk_ref_cycles")
        return as_u64(walkRefCycles);
    if (key == "host_mem_frames")
        return as_u64(hostMemFrames);
    if (key == "policy_interval")
        return as_u64(policyIntervalOps);
    if (key == "pwc")
        return as_bool(pwcEnabled);
    if (key == "ntlb")
        return as_bool(ntlbEnabled);
    if (key == "unsync")
        return as_bool(unsyncEnabled);
    if (key == "hw_ad")
        return as_bool(hwOptAd);
    if (key == "verify")
        return as_bool(verifyTranslations);
    if (key == "batched_walks")
        return as_bool(batchedWalks);
    if (key == "simd_filter")
        return as_bool(simdFilter);
    if (key == "arena_slab_pages") {
        std::uint64_t n;
        if (!as_u64(n) || n == 0)
            return false;
        arenaSlabPages = n;
        return true;
    }
    if (key == "sptr_cache") {
        std::uint64_t n;
        if (!as_u64(n))
            return false;
        sptrCacheEntries = n;
        return true;
    }
    if (key == "hw_opts") {
        bool on;
        if (!as_bool(on))
            return false;
        if (on)
            enableHwOpts();
        return true;
    }
    if (key == "num_vcpus") {
        std::uint64_t n;
        if (!as_u64(n) || n == 0 || n > 64)
            return false;
        numVcpus = static_cast<unsigned>(n);
        return true;
    }
    if (key == "tlb_coherence") {
        std::string v = lower(value);
        if (v == "sw" || v == "software") {
            tlbCoherence = TlbCoherence::Software;
        } else if (v == "hw" || v == "hardware") {
            tlbCoherence = TlbCoherence::Hardware;
        } else {
            return false;
        }
        return true;
    }
    if (key == "vcpu_quantum") {
        std::uint64_t n;
        if (!as_u64(n) || n == 0)
            return false;
        vcpuQuantumOps = n;
        return true;
    }
    if (key == "segment_regs") {
        std::uint64_t n;
        if (!as_u64(n) || n == 0 || n > 1024)
            return false;
        range.segmentRegs = static_cast<std::uint32_t>(n);
        return true;
    }
    if (key == "segment_min_pages") {
        std::uint64_t n;
        if (!as_u64(n) || n == 0)
            return false;
        range.segmentMinPages = n;
        return true;
    }
    if (key == "segment_max_pages") {
        std::uint64_t n;
        if (!as_u64(n) || n == 0)
            return false;
        range.segmentMaxPages = n;
        return true;
    }
    if (key == "segment_fill_cycles")
        return as_u64(range.segmentFillCycles);
    if (key == "back_policy") {
        std::string v = lower(value);
        if (v == "none") {
            policy.backPolicy = BackPolicy::None;
        } else if (v == "periodic") {
            policy.backPolicy = BackPolicy::PeriodicReset;
        } else if (v == "dirty") {
            policy.backPolicy = BackPolicy::DirtyScan;
        } else {
            return false;
        }
        return true;
    }
    return false;
}

} // namespace ap
