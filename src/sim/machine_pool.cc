/**
 * @file
 * Machine pool implementation.
 */

#include "sim/machine_pool.hh"

#include <algorithm>

#include "sim/machine.hh"
#include "sim/snapshot.hh"

namespace ap
{

MachinePool::~MachinePool() = default;

MachinePool::Lease
MachinePool::acquire(const SimConfig &cfg)
{
    std::uint64_t digest = simConfigDigest(cfg);
    {
        std::lock_guard<std::mutex> lock(mu_);
        auto it = by_digest_.find(digest);
        if (it != by_digest_.end() && !it->second.empty()) {
            auto pos = it->second.back();
            it->second.pop_back();
            if (it->second.empty())
                by_digest_.erase(it);
            std::unique_ptr<Machine> m = std::move(pos->machine);
            idle_.erase(pos);
            ++reuses_;
            return Lease(this, digest, std::move(m));
        }
        ++creates_;
    }
    // Construct outside the lock: machine construction is heavy and
    // distinct acquires must not serialize on it.
    return Lease(this, digest, std::make_unique<Machine>(cfg));
}

void
MachinePool::park(std::uint64_t digest, std::unique_ptr<Machine> m)
{
    std::unique_ptr<Machine> dropped;
    {
        std::lock_guard<std::mutex> lock(mu_);
        auto pos = idle_.insert(idle_.end(),
                                Parked{digest, std::move(m)});
        by_digest_[digest].push_back(pos);
        if (max_idle_ && idle_.size() > max_idle_) {
            Parked &victim = idle_.front();
            auto &slots = by_digest_[victim.digest];
            slots.erase(std::find(slots.begin(), slots.end(),
                                  idle_.begin()));
            if (slots.empty())
                by_digest_.erase(victim.digest);
            dropped = std::move(victim.machine);
            idle_.pop_front();
            ++drops_;
        }
    }
    // ~Machine outside the lock (it tears down the whole stats tree).
}

std::uint64_t
MachinePool::creates() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return creates_;
}

std::uint64_t
MachinePool::reuses() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return reuses_;
}

std::uint64_t
MachinePool::drops() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return drops_;
}

std::size_t
MachinePool::idle() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return idle_.size();
}

} // namespace ap
