/**
 * @file
 * Differential oracle implementation.
 */

#include "sim/oracle.hh"

#include <algorithm>
#include <exception>
#include <iostream>
#include <memory>
#include <sstream>

#include "base/rng.hh"
#include "walker/backend.hh"

namespace ap
{

namespace
{

/** Test-sized machine config shared by the three lock-step modes. */
SimConfig
oracleConfig(VirtMode mode, const OracleOptions &opts)
{
    SimConfig cfg;
    cfg.mode = mode;
    cfg.pageSize = opts.pageSize;
    // Sized for 2 MB guest pages: a fork COW break of one huge page
    // consumes 512 contiguous 4K frames, so the pools need dozens of
    // huge pages of live headroom (freed groups are recycled).
    cfg.hostMemFrames = std::uint64_t{1} << 17;
    cfg.guestPtFrames = std::uint64_t{1} << 13;
    cfg.guestDataFrames = std::uint64_t{1} << 16;
    if (opts.hwOpts && backendTraits(mode).usesShadowMgr)
        cfg.enableHwOpts();
    // The default interval is sized for million-op runs; shrink it so
    // the agile policy actually converts modes within a short trace
    // (exercising coverage monotonicity under mode-convert traps).
    cfg.policyIntervalOps = 2000;
    // The oracle is the independent checker; the machine's built-in
    // verification would panic before the oracle could report.
    cfg.verifyTranslations = false;
    cfg.numVcpus = opts.numVcpus;
    cfg.tlbCoherence = opts.tlbCoherence;
    return cfg;
}

/**
 * Corrupt one clean, shadowed leaf PTE in @p m (pfn off by one) — the
 * kind of bug a VMM coherence slip would produce. Returns false when
 * no eligible leaf exists yet. The chosen leaf's PT page is neither
 * unsynced nor nested, so the next coherence sweep must flag it.
 */
bool
injectShadowBug(Machine &m)
{
    ShadowMgr *smgr = m.shadowMgr();
    if (!smgr)
        return false;
    ProcId pid = m.currentProcess();
    if (!smgr->hasProcess(pid))
        return false;
    ShadowMgr::ProcState &st = smgr->state(pid);
    if (st.ctx.fullNested || st.ctx.rootSwitch)
        return false;

    Addr target_va = 0;
    unsigned target_depth = 0;
    bool found = false;
    st.spt->forEachTerminal([&](Addr va, const Pte &spte,
                                unsigned depth) {
        if (found || spte.switching)
            return;
        auto gm = st.gpt->lookup(va);
        if (!gm)
            return;
        FrameId holder = gm->depth == 0
                             ? st.gptRootGframe
                             : st.gpt->tableFrame(va, gm->depth);
        auto nit = st.nodes.find(holder);
        if (nit != st.nodes.end() &&
            (nit->second.unsynced || nit->second.nested)) {
            return;
        }
        target_va = va;
        target_depth = depth;
        found = true;
    });
    if (!found)
        return false;
    Pte *spte = st.spt->entry(target_va, target_depth);
    spte->pfn += 1;
    return true;
}

/**
 * Plant a writable TLB entry for a VA the guest never maps into the
 * last vCPU of @p m — exactly what a missed shootdown leaves behind.
 * The residency sweep must flag it as stale.
 */
void
injectStaleTlbEntry(Machine &m)
{
    // Far above the oracle's region slots (which start at 1<<32 and
    // grow in 4 MB steps), so no trace can legitimately map it.
    constexpr Addr kNeverMapped = Addr{1} << 45;
    TlbEntry e;
    e.pfn = 0xdead;
    e.writable = true;
    e.dirty = true;
    e.asid = m.currentProcess();
    m.tlbOf(m.numVcpus() - 1).l1d4k.insert(kNeverMapped, e.asid, e);
}

/**
 * Plant a segment register covering VAs the guest never maps into the
 * last vCPU of @p m's range backend — what a missed segment
 * invalidation leaves behind. The segment-residency sweep must flag
 * it. No-op (returns false) when @p m is not a range machine.
 */
bool
injectStaleSegment(Machine &m)
{
    RangeBackend *rb = m.rangeBackend();
    if (!rb)
        return false;
    RangeBackend::SegmentReg seg;
    seg.asid = m.currentProcess();
    seg.vaBase = Addr{1} << 45; // above every oracle region slot
    seg.pages = 4;
    seg.hbase = 0xdead;
    seg.lastUse = 1;
    rb->plantSegment(rb->numVcpus() - 1, seg);
    return true;
}

} // namespace

Trace
makeRandomTrace(const OracleOptions &opts)
{
    // Decorrelate neighbouring seeds (1, 2, 3, ...) into distinct
    // streams.
    Rng rng(opts.seed * 0x9e3779b97f4a7c15ULL + 0x8badf00d);
    Trace t;
    t.workload = "difftest";
    t.seed = opts.seed;
    t.warmupEvents = 0;

    struct Region
    {
        Addr base = 0;
        std::uint64_t pages = 0;
        bool writable = false;
    };
    std::vector<Region> regions;
    // Fixed 4 MB slots above 4 GB: every base is 2M-aligned (so a
    // 2M-granule guest can map large pages) and never reused, so a
    // replayed MmapAt cannot collide with a live region.
    constexpr Addr kBase = Addr{1} << 32;
    constexpr Addr kSlot = Addr{4} << 20;
    std::uint64_t next_slot = 0;

    auto addRegion = [&](bool large) {
        Region r;
        r.base = kBase + kSlot * next_slot++;
        r.pages = large ? 512 : rng.nextRange(16, 64);
        // Every region is writable: forkTouchExit children write to
        // random mapped VAs, so a read-only region would segfault the
        // guest. Write-protection is still exercised through fork COW
        // and shadow dirty tracking.
        r.writable = true;
        bool file_backed = rng.chance(0.3);
        TraceEvent e;
        e.kind = TraceEvent::Kind::MmapAt;
        e.addr = r.base;
        e.arg = r.pages * kPageBytes;
        e.fileId = file_backed ? rng.nextRange(1, 3) : 0;
        e.flag = r.writable;
        e.fileBacked = file_backed;
        t.events.push_back(e);
        regions.push_back(r);
    };
    for (int i = 0; i < 5; ++i)
        addRegion(i == 0);

    auto pushAccess = [&](TraceEvent::Kind kind) {
        const Region &r = regions[rng.nextBelow(regions.size())];
        TraceEvent e;
        e.kind = kind;
        e.addr = r.base + rng.nextBelow(r.pages) * kPageBytes +
                 rng.nextBelow(kPageBytes);
        e.flag = kind == TraceEvent::Kind::Access && r.writable &&
                 rng.chance(0.4);
        t.events.push_back(e);
    };

    for (std::uint64_t i = 0; i < opts.operations; ++i) {
        std::uint64_t roll = rng.nextBelow(100);
        if (roll < 62) {
            pushAccess(TraceEvent::Kind::Access);
        } else if (roll < 70) {
            pushAccess(TraceEvent::Kind::InstrFetch);
        } else if (roll < 74) {
            addRegion(rng.chance(0.25));
        } else if (roll < 78 && regions.size() > 2) {
            std::size_t victim = rng.nextBelow(regions.size());
            TraceEvent e;
            e.kind = TraceEvent::Kind::Munmap;
            e.addr = regions[victim].base;
            e.arg = regions[victim].pages * kPageBytes;
            t.events.push_back(e);
            regions.erase(regions.begin() +
                          static_cast<std::ptrdiff_t>(victim));
        } else if (roll < 82) {
            TraceEvent e;
            e.kind = TraceEvent::Kind::Compute;
            e.arg = rng.nextRange(100, 400);
            t.events.push_back(e);
        } else if (roll < 87) {
            TraceEvent e;
            e.kind = TraceEvent::Kind::Yield;
            t.events.push_back(e);
        } else if (roll < 90) {
            TraceEvent e;
            e.kind = TraceEvent::Kind::ForkTouchExit;
            e.arg = rng.nextRange(2, 5);
            t.events.push_back(e);
        } else if (roll < 92) {
            TraceEvent e;
            e.kind = TraceEvent::Kind::SharePages;
            t.events.push_back(e);
        } else if (roll < 94 && opts.includeReclaim) {
            TraceEvent e;
            e.kind = TraceEvent::Kind::ReclaimTick;
            e.arg = rng.nextRange(8, 32);
            t.events.push_back(e);
        } else {
            pushAccess(TraceEvent::Kind::Access);
        }
    }
    return t;
}

OracleReport
runDifferential(const Trace &trace, const OracleOptions &opts)
{
    OracleReport rep;
    constexpr int kMachines = 4;
    const VirtMode modes[kMachines] = {VirtMode::Shadow, VirtMode::Nested,
                                       VirtMode::Agile, VirtMode::Range};
    std::unique_ptr<Machine> machines[kMachines];
    RunResult prev[kMachines];
    for (int i = 0; i < kMachines; ++i) {
        machines[i] =
            std::make_unique<Machine>(oracleConfig(modes[i], opts));
        machines[i]->spawnProcess();
    }
    Machine &shadow = *machines[0];
    Machine &agile = *machines[2];
    Machine &range = *machines[3];

    bool lockstep = std::none_of(
        trace.events.begin(), trace.events.end(), [](const TraceEvent &e) {
            return e.kind == TraceEvent::Kind::ReclaimTick;
        });

    auto fail = [&](const InvariantViolation &v) {
        rep.violations.push_back(v);
        rep.passed = false;
    };
    auto sweep = [&](std::uint64_t idx) {
        if (auto v = checkShadowCoherence(shadow, idx))
            fail(*v);
        else if (auto v2 = checkShadowCoherence(agile, idx))
            fail(*v2);
        for (auto &m : machines) {
            if (!rep.passed)
                break;
            if (auto v = checkTlbResidency(*m, idx))
                fail(*v);
            else if (auto v2 = checkSegmentResidency(*m, idx))
                fail(*v2);
        }
    };

    std::uint64_t access_no = 0;
    bool injected = false;
    bool stale_injected = false;
    bool stale_seg_injected = false;
    for (std::size_t idx = 0;
         idx < trace.events.size() && rep.passed; ++idx) {
        const TraceEvent &e = trace.events[idx];
        for (auto &m : machines)
            applyTraceEvent(*m, e);
        rep.eventsReplayed = idx + 1;

        bool is_access = e.kind == TraceEvent::Kind::Access ||
                         e.kind == TraceEvent::Kind::InstrFetch;
        if (e.kind == TraceEvent::Kind::Access)
            ++access_no;
        if (opts.injectAtAccess && !injected &&
            access_no >= opts.injectAtAccess) {
            // Inject after the event settles, then sweep immediately:
            // no other event can repair the corruption first. Prefer
            // the agile machine (its shadow portion only exists once
            // the policy has converted a region); fall back to the
            // always-shadowed machine so short traces still self-test.
            injected = injectShadowBug(agile) || injectShadowBug(shadow);
            if (injected)
                sweep(idx);
        }
        if (opts.injectStaleTlbAtAccess && !stale_injected &&
            access_no >= opts.injectStaleTlbAtAccess) {
            // Sweep immediately: a later flush event would repair the
            // plant and mask a broken sweep.
            injectStaleTlbEntry(agile);
            stale_injected = true;
            sweep(idx);
        }
        if (opts.injectStaleSegmentAtAccess && !stale_seg_injected &&
            access_no >= opts.injectStaleSegmentAtAccess) {
            // Sweep immediately: a later broadcast would drop the
            // planted segment and mask a broken sweep.
            stale_seg_injected = injectStaleSegment(range);
            if (stale_seg_injected)
                sweep(idx);
        }

        if (is_access && rep.passed) {
            ++rep.accessesChecked;
            bool write = e.kind == TraceEvent::Kind::Access && e.flag;
            for (auto &m : machines) {
                if (auto v =
                        checkAccessInvariants(*m, e.addr, write, idx)) {
                    fail(*v);
                    break;
                }
            }
            if (lockstep && rep.passed) {
                if (auto v = checkCrossMachine(shadow, *machines[1],
                                               e.addr, idx)) {
                    fail(*v);
                } else if (auto v2 = checkCrossMachine(shadow, agile,
                                                       e.addr, idx)) {
                    fail(*v2);
                } else if (auto v3 = checkCrossMachine(shadow, range,
                                                       e.addr, idx)) {
                    fail(*v3);
                }
            }
        }
        if (rep.passed) {
            for (int i = 0; i < kMachines; ++i) {
                if (auto v = checkCounterInvariants(*machines[i],
                                                    prev[i], idx)) {
                    fail(*v);
                    break;
                }
            }
        }
        if (rep.passed && opts.sweepInterval &&
            (idx + 1) % opts.sweepInterval == 0) {
            sweep(idx);
        }
    }
    if (rep.passed)
        sweep(trace.events.empty() ? 0 : trace.events.size() - 1);
    return rep;
}

Trace
shrinkTrace(const Trace &trace, const OracleOptions &opts)
{
    auto fails = [&](const Trace &t) {
        // Candidates routinely violate replay preconditions (an access
        // whose mmap was dropped panics); silence the panic spam and
        // treat any exception as "not the same failure".
        std::streambuf *old = std::cerr.rdbuf();
        std::ostringstream sink;
        std::cerr.rdbuf(sink.rdbuf());
        bool failed;
        try {
            failed = !runDifferential(t, opts).passed;
        } catch (const std::exception &) {
            failed = false;
        }
        std::cerr.rdbuf(old);
        return failed;
    };

    Trace best = trace;
    if (!fails(best))
        return best;
    for (std::size_t chunk = std::max<std::size_t>(
             1, best.events.size() / 2);
         ; chunk /= 2) {
        bool progress = true;
        while (progress) {
            progress = false;
            for (std::size_t i = 0; i < best.events.size();) {
                Trace cand = best;
                auto first = cand.events.begin() +
                             static_cast<std::ptrdiff_t>(i);
                auto last = cand.events.begin() +
                            static_cast<std::ptrdiff_t>(
                                std::min(i + chunk, cand.events.size()));
                cand.events.erase(first, last);
                if (!cand.events.empty() && fails(cand)) {
                    best = std::move(cand);
                    progress = true;
                    // Retry the same index: new events shifted in.
                } else {
                    i += chunk;
                }
            }
        }
        if (chunk == 1)
            break;
    }
    return best;
}

} // namespace ap
