/**
 * @file
 * Report rendering implementation.
 */

#include "sim/report.hh"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <thread>

namespace ap
{

std::string
configLabel(const RunResult &r)
{
    std::string ps = pageSizeName(r.pageSize);
    std::string mode;
    switch (r.mode) {
      case VirtMode::Native:
        mode = "B";
        break;
      case VirtMode::Nested:
        mode = "N";
        break;
      case VirtMode::Shadow:
        mode = "S";
        break;
      case VirtMode::Agile:
        mode = "A";
        break;
      case VirtMode::Shsp:
        mode = "SHSP";
        break;
      case VirtMode::Range:
        mode = "R";
        break;
    }
    return ps + ":" + mode;
}

std::string
overheadBar(double fraction, double per_char)
{
    // lround rounds halfway cases away from zero in both directions;
    // the old static_cast<int>(x + 0.5) truncated toward zero, so
    // small *negative* overheads (delta bars) rounded inconsistently
    // (-0.7 -> 0 but -1.5 -> -1).
    long n = std::lround(fraction / per_char);
    bool overflow = n > 60;
    n = std::clamp(n, 0l, 60l);
    std::string bar(static_cast<std::size_t>(n), '#');
    // Without the marker every overhead beyond the 60-column budget
    // renders as the same full-width bar.
    if (overflow)
        bar += '+';
    return bar;
}

void
printFigure5(std::ostream &os, const std::vector<RunResult> &runs)
{
    os << "Figure 5: execution time overheads (page walks + VMM "
          "interventions)\n";
    os << std::left << std::setw(11) << "workload" << std::setw(7)
       << "config" << std::right << std::setw(10) << "walk%"
       << std::setw(10) << "vmm%" << std::setw(10) << "total%"
       << "  bar\n";
    std::string last_wl;
    for (const RunResult &r : runs) {
        if (r.workload != last_wl && !last_wl.empty())
            os << "\n";
        last_wl = r.workload;
        os << std::left << std::setw(11) << r.workload << std::setw(7)
           << configLabel(r) << std::right << std::fixed
           << std::setprecision(1) << std::setw(9)
           << r.walkOverhead() * 100 << "%" << std::setw(9)
           << r.vmmOverhead() * 100 << "%" << std::setw(9)
           << r.totalOverhead() * 100 << "%"
           << "  " << overheadBar(r.totalOverhead()) << "\n";
    }
    os.unsetf(std::ios::fixed);
}

void
printTable6(std::ostream &os, const std::vector<RunResult> &runs)
{
    os << "Table VI: TLB misses covered by each mode of agile paging\n";
    os << std::left << std::setw(11) << "workload" << std::right
       << std::setw(9) << "Shadow" << std::setw(8) << "L4" << std::setw(8)
       << "L3" << std::setw(8) << "L2" << std::setw(8) << "L1"
       << std::setw(9) << "Nested" << std::setw(8) << "Avg" << "\n";
    os << std::left << std::setw(11) << "(mem refs)" << std::right
       << std::setw(9) << 4 << std::setw(8) << 8 << std::setw(8) << 12
       << std::setw(8) << 16 << std::setw(8) << 20 << std::setw(9) << 24
       << "\n";
    for (const RunResult &r : runs) {
        os << std::left << std::setw(11) << r.workload << std::right
           << std::fixed << std::setprecision(1);
        // Paper Table VI column order: full shadow, then switch levels
        // from cheapest (one nested level) to full nested.
        const double pct[6] = {r.coverage[0] * 100, r.coverage[1] * 100,
                               r.coverage[2] * 100, r.coverage[3] * 100,
                               r.coverage[4] * 100, r.coverage[5] * 100};
        os << std::setw(8) << pct[0] << "%" << std::setw(7) << pct[1]
           << "%" << std::setw(7) << pct[2] << "%" << std::setw(7)
           << pct[3] << "%" << std::setw(7) << pct[4] << "%"
           << std::setw(8) << pct[5] << "%" << std::setw(8)
           << std::setprecision(2) << r.avgWalkRefs << "\n";
    }
    os.unsetf(std::ios::fixed);
}

void
printCsv(std::ostream &os, const std::vector<RunResult> &runs)
{
    os << "workload,mode,page_size,instructions,ideal_cycles,walk_cycles,"
          "trap_cycles,tlb_misses,walks,traps,guest_faults,avg_walk_refs,"
          "cov_shadow,cov_sw3,cov_sw2,cov_sw1,cov_sw0,cov_nested,"
          "walk_overhead,vmm_overhead\n";
    for (const RunResult &r : runs) {
        os << r.workload << "," << virtModeName(r.mode) << ","
           << pageSizeName(r.pageSize) << "," << r.instructions << ","
           << r.idealCycles << "," << r.walkCycles << "," << r.trapCycles
           << "," << r.tlbMisses << "," << r.walks << "," << r.traps
           << "," << r.guestPageFaults << "," << r.avgWalkRefs;
        for (double c : r.coverage)
            os << "," << c;
        os << "," << r.walkOverhead() << "," << r.vmmOverhead() << "\n";
    }
}

HostMeta
currentHostMeta(unsigned jobs)
{
    HostMeta meta;
    meta.hardwareConcurrency = std::thread::hardware_concurrency();
    meta.jobs = jobs;
#ifdef AP_BUILD_TYPE
    meta.buildType = AP_BUILD_TYPE;
#else
    meta.buildType = "unknown";
#endif
    return meta;
}

void
writeHostMetaJson(std::ostream &os, const HostMeta &meta)
{
    os << "{\"hardware_concurrency\": " << meta.hardwareConcurrency
       << ", \"jobs\": " << meta.jobs << ", \"build_type\": \""
       << meta.buildType << "\"}";
}

void
writeRunResultJson(std::ostream &os, const RunResult &r)
{
    auto esc = [](const std::string &s) {
        std::string out;
        for (char c : s) {
            if (c == '"' || c == '\\')
                out += '\\';
            out += c;
        }
        return out;
    };
    os << "{\"workload\": \"" << esc(r.workload) << "\""
       << ", \"mode\": \"" << virtModeName(r.mode) << "\""
       << ", \"page_size\": \"" << pageSizeName(r.pageSize) << "\""
       << ", \"config\": \"" << esc(configLabel(r)) << "\""
       << ", \"instructions\": " << r.instructions
       << ", \"ideal_cycles\": " << r.idealCycles
       << ", \"walk_cycles\": " << r.walkCycles
       << ", \"trap_cycles\": " << r.trapCycles
       << ", \"tlb_misses\": " << r.tlbMisses
       << ", \"walks\": " << r.walks
       << ", \"traps\": " << r.traps
       << ", \"guest_page_faults\": " << r.guestPageFaults;
    os << ", \"avg_walk_refs\": " << std::setprecision(17)
       << r.avgWalkRefs;
    os << ", \"coverage\": [";
    for (int i = 0; i < 6; ++i)
        os << (i ? ", " : "") << std::setprecision(17) << r.coverage[i];
    os << "]";
    os << ", \"traps_by_cause\": {";
    for (std::size_t k = 0; k < kNumTrapKinds; ++k) {
        os << (k ? ", " : "") << "\""
           << trapKindName(static_cast<TrapKind>(k))
           << "\": " << r.trapByKind[k];
    }
    os << "}";
    if (r.numVcpus > 1) {
        // Coherence block only exists for multi-vCPU runs so
        // single-vCPU reports stay byte-identical to earlier
        // producers of ap-runs-v1.
        os << ", \"num_vcpus\": " << r.numVcpus
           << ", \"coherence_cycles\": " << r.coherenceCycles
           << ", \"shootdowns\": " << r.shootdowns
           << ", \"remote_invalidations\": " << r.remoteInvalidations
           << ", \"shootdowns_by_cause\": {";
        for (std::size_t k = 0; k < kNumCoherenceCauses; ++k) {
            os << (k ? ", " : "") << "\""
               << coherenceCauseName(static_cast<CoherenceCause>(k))
               << "\": " << r.shootdownsByCause[k];
        }
        os << "}";
        os << ", \"coherence_overhead\": " << std::setprecision(17)
           << r.coherenceOverhead();
    }
    if (r.mode == VirtMode::Range) {
        // Segment counters only exist for the range backend so
        // classic-mode reports stay byte-identical to earlier
        // producers of ap-runs-v1.
        os << ", \"segment_hits\": " << r.segmentHits
           << ", \"segment_spills\": " << r.segmentSpills
           << ", \"segment_invalidations\": " << r.segmentInvalidations;
    }
    os << ", \"walk_overhead\": " << std::setprecision(17)
       << r.walkOverhead()
       << ", \"vmm_overhead\": " << std::setprecision(17)
       << r.vmmOverhead()
       << ", \"slowdown\": " << std::setprecision(17) << r.slowdown();
    os << "}";
}

void
writeRunResultsJson(std::ostream &os, const std::vector<RunResult> &runs,
                    unsigned jobs)
{
    os << "{\"schema\": \"ap-runs-v1\", \"host\": ";
    writeHostMetaJson(os, currentHostMeta(jobs));
    os << ", \"runs\": [";
    bool first_run = true;
    for (const RunResult &r : runs) {
        if (!first_run)
            os << ", ";
        first_run = false;
        writeRunResultJson(os, r);
    }
    os << "]}\n";
}

} // namespace ap
