/**
 * @file
 * Table IV performance-model implementation.
 */

#include "sim/perf_model.hh"

namespace ap
{

PerfBreakdown
computeBreakdown(const RunResult &run)
{
    PerfBreakdown b;
    double ideal = static_cast<double>(run.idealCycles);
    if (ideal <= 0)
        return b;
    b.pageWalkOverhead = static_cast<double>(run.walkCycles) / ideal;
    b.vmmOverhead = static_cast<double>(run.trapCycles) / ideal;
    b.cyclesPerMiss =
        run.tlbMisses
            ? static_cast<double>(run.walkCycles) / run.tlbMisses
            : 0.0;
    b.refsPerWalk = run.avgWalkRefs;
    b.slowdown = 1.0 + b.pageWalkOverhead + b.vmmOverhead;
    return b;
}

double
projectAgileWalkCycles(const RunResult &shadow_run,
                       const RunResult &nested_run,
                       const RunResult &agile_run)
{
    double c_s = shadow_run.tlbMisses
                     ? double(shadow_run.walkCycles) / shadow_run.tlbMisses
                     : 0.0;
    double c_n = nested_run.tlbMisses
                     ? double(nested_run.walkCycles) / nested_run.tlbMisses
                     : 0.0;
    double misses = static_cast<double>(agile_run.tlbMisses);

    // Coverage classes: [0]=full shadow, [1]=switched at the leaf
    // (FN1 in the paper's notation), [2..4]=deeper switches, [5]=full
    // nested. The paper's pessimistic assumption: FN1 pays half the
    // nested cost beyond shadow, deeper fractions pay the full nested
    // cost (Section VI, step 2).
    const double *cov = agile_run.coverage;
    double shadow_frac = cov[0];
    double leaf_frac = cov[1];
    double deep_frac = cov[2] + cov[3] + cov[4] + cov[5];

    double projected_per_miss = shadow_frac * c_s +
                                leaf_frac * (c_s + 0.5 * (c_n - c_s)) +
                                deep_frac * c_n;
    return projected_per_miss * misses;
}

} // namespace ap
