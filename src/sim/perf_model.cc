/**
 * @file
 * Table IV performance-model implementation.
 */

#include "sim/perf_model.hh"

#include <cmath>

#include "base/logging.hh"

namespace ap
{

PerfBreakdown
computeBreakdown(const RunResult &run)
{
    PerfBreakdown b;
    double ideal = static_cast<double>(run.idealCycles);
    // A run that executed nothing (or recorded no misses) has no
    // measurement to derive overheads from; leave hasData false so
    // callers can distinguish "no overhead" from "no data".
    if (ideal <= 0)
        return b;
    b.pageWalkOverhead = static_cast<double>(run.walkCycles) / ideal;
    b.vmmOverhead = static_cast<double>(run.trapCycles) / ideal;
    b.cyclesPerMiss =
        run.tlbMisses
            ? static_cast<double>(run.walkCycles) / run.tlbMisses
            : 0.0;
    b.refsPerWalk = run.avgWalkRefs;
    b.slowdown = 1.0 + b.pageWalkOverhead + b.vmmOverhead;
    b.hasData = run.tlbMisses > 0;
    return b;
}

double
projectAgileWalkCycles(const RunResult &shadow_run,
                       const RunResult &nested_run,
                       const RunResult &agile_run)
{
    // The projection interpolates between measured per-miss costs; a
    // constituent run with zero misses has no such cost, so the
    // projection is undefined rather than zero.
    if (shadow_run.tlbMisses == 0 || nested_run.tlbMisses == 0 ||
        agile_run.tlbMisses == 0) {
        return std::nan("");
    }

    double c_s = double(shadow_run.walkCycles) / shadow_run.tlbMisses;
    double c_n = double(nested_run.walkCycles) / nested_run.tlbMisses;
    double misses = static_cast<double>(agile_run.tlbMisses);

    // Coverage classes: [0]=full shadow, [1]=switched at the leaf
    // (FN1 in the paper's notation), [2..4]=deeper switches, [5]=full
    // nested. The paper's pessimistic assumption: FN1 pays half the
    // nested cost beyond shadow, deeper fractions pay the full nested
    // cost (Section VI, step 2).
    const double *cov = agile_run.coverage;
    double shadow_frac = cov[0];
    double leaf_frac = cov[1];
    double deep_frac = cov[2] + cov[3] + cov[4] + cov[5];

    double cov_sum = shadow_frac + leaf_frac + deep_frac;
    ap_assert(std::fabs(cov_sum - 1.0) <= 1e-9,
              "agile coverage fractions must sum to 1");

    double projected_per_miss = shadow_frac * c_s +
                                leaf_frac * (c_s + 0.5 * (c_n - c_s)) +
                                deep_frac * c_n;
    return projected_per_miss * misses;
}

} // namespace ap
