/**
 * @file
 * Consolidation scheduler implementation.
 */

#include "sim/scheduler.hh"

#include "base/logging.hh"

namespace ap
{

Scheduler::Scheduler(Machine &machine, std::uint64_t quantum)
    : machine_(machine), quantum_(quantum)
{
    ap_assert(quantum > 0, "zero scheduling quantum");
}

void
Scheduler::add(Workload &workload)
{
    workloads_.push_back(&workload);
}

ConsolidationResult
Scheduler::run()
{
    ap_assert(!workloads_.empty(), "nothing scheduled");
    ConsolidationResult result;

    // Create one process per workload; populate each before
    // measurement (the same protocol Machine::run uses).
    struct Slot
    {
        Workload *workload;
        ProcId pid;
        bool more = true;
        std::uint64_t steps = 0;
        std::uint64_t warm_steps = 0;
    };
    std::vector<Slot> slots;
    for (Workload *w : workloads_) {
        Slot slot;
        slot.workload = w;
        slot.pid = machine_.spawnProcess();
        w->init(machine_);
        w->warmup(machine_);
        slot.warm_steps =
            w->selfWarmup()
                ? 0
                : static_cast<std::uint64_t>(
                      w->params().operations *
                      machine_.config().warmupFraction);
        slots.push_back(slot);
    }

    // Fast-forward phase, interleaved like the measured phase so the
    // policies see the consolidation pattern they will run under.
    bool warming = true;
    while (warming) {
        warming = false;
        for (Slot &slot : slots) {
            if (!slot.more || slot.steps >= slot.warm_steps)
                continue;
            machine_.switchTo(slot.pid);
            ++result.contextSwitches;
            for (std::uint64_t i = 0;
                 i < quantum_ && slot.more && slot.steps < slot.warm_steps;
                 ++i, ++slot.steps) {
                slot.more = slot.workload->step(machine_);
            }
            warming |= slot.more && slot.steps < slot.warm_steps;
        }
    }

    RunResult base = machine_.snapshot("consolidated");

    bool any = true;
    while (any) {
        any = false;
        for (Slot &slot : slots) {
            if (!slot.more)
                continue;
            machine_.switchTo(slot.pid);
            ++result.contextSwitches;
            for (std::uint64_t i = 0; i < quantum_ && slot.more;
                 ++i, ++slot.steps) {
                slot.more = slot.workload->step(machine_);
            }
            any |= slot.more;
        }
    }

    result.machine = Machine::delta(
        machine_.snapshot("consolidated"), base);
    for (Slot &slot : slots) {
        ScheduledRun r;
        r.workload = slot.workload->name();
        r.pid = slot.pid;
        r.steps = slot.steps;
        r.finished = !slot.more;
        result.runs.push_back(r);
        machine_.guestOs().exitProcess(slot.pid);
    }
    return result;
}

} // namespace ap
