/**
 * @file
 * Consolidation scheduler implementation.
 */

#include "sim/scheduler.hh"

#include "base/logging.hh"

namespace ap
{

namespace
{

/** Marker args on scheduler-injected Yield events. Real workload
 *  yields are recorded with arg == 0. */
constexpr std::uint64_t kStepMark = 1;
constexpr std::uint64_t kInitMark = 2;

TraceEvent
marker(std::uint64_t arg)
{
    return TraceEvent{TraceEvent::Kind::Yield, 0, arg, 0, false, false};
}

bool
isMarker(const TraceEvent &e)
{
    return e.kind == TraceEvent::Kind::Yield && e.arg != 0;
}

/** Steps delimited by step marks in [begin, end) of @p t. */
std::uint64_t
countStepMarks(const Trace &t, std::uint64_t begin, std::uint64_t end)
{
    std::uint64_t n = 0;
    for (std::uint64_t i = begin; i < end && i < t.events.size(); ++i)
        if (t.events[i].kind == TraceEvent::Kind::Yield &&
            t.events[i].arg == kStepMark)
            ++n;
    return n;
}

} // namespace

Scheduler::Scheduler(Machine &machine, std::uint64_t quantum)
    : machine_(machine), quantum_(quantum)
{
    ap_assert(quantum > 0, "zero scheduling quantum");
}

void
Scheduler::add(Workload &workload)
{
    Slot slot;
    slot.workload = &workload;
    slots_.push_back(std::move(slot));
}

void
Scheduler::addRecorded(Workload &workload, Trace &out)
{
    Slot slot;
    slot.workload = &workload;
    slot.rec = std::make_unique<TraceRecorder>(machine_);
    slot.out = &out;
    slots_.push_back(std::move(slot));
}

void
Scheduler::addReplay(const Trace &trace)
{
    Slot slot;
    slot.replay = &trace;
    slots_.push_back(std::move(slot));
}

bool
Scheduler::stepSlot(Slot &slot)
{
    if (slot.replay) {
        // Apply recorded events up to (and consuming) the next step
        // mark; scheduler markers are metadata, never applied.
        const auto &events = slot.replay->events;
        while (slot.cursor < events.size()) {
            const TraceEvent &e = events[slot.cursor++];
            if (isMarker(e)) {
                if (e.arg == kStepMark)
                    break;
                continue;
            }
            applyTraceEvent(machine_, e);
        }
        return slot.cursor < events.size();
    }
    if (slot.rec) {
        bool more = slot.workload->step(*slot.rec);
        slot.rec->trace().events.push_back(marker(kStepMark));
        return more;
    }
    return slot.workload->step(machine_);
}

void
Scheduler::warmup()
{
    ap_assert(!slots_.empty(), "nothing scheduled");
    ap_assert(!warm_, "scheduler already warmed");

    // Create one process per slot; populate each before measurement
    // (the same protocol Machine::run uses).
    for (Slot &slot : slots_) {
        slot.pid = machine_.spawnProcess();
        if (slot.replay) {
            // Replay the recorded init+populate phase (everything up
            // to the init mark).
            const auto &events = slot.replay->events;
            while (slot.cursor < events.size()) {
                const TraceEvent &e = events[slot.cursor++];
                if (isMarker(e)) {
                    if (e.arg == kInitMark)
                        break;
                    continue;
                }
                applyTraceEvent(machine_, e);
            }
            slot.warm_steps = countStepMarks(
                *slot.replay, slot.cursor, slot.replay->warmupEvents);
            continue;
        }
        WorkloadHost &host =
            slot.rec ? static_cast<WorkloadHost &>(*slot.rec)
                     : static_cast<WorkloadHost &>(machine_);
        slot.workload->init(host);
        slot.workload->warmup(host);
        if (slot.rec)
            slot.rec->trace().events.push_back(marker(kInitMark));
        slot.warm_steps =
            slot.workload->selfWarmup()
                ? 0
                : static_cast<std::uint64_t>(
                      slot.workload->params().operations *
                      machine_.config().warmupFraction);
    }

    // Fast-forward phase, interleaved like the measured phase so the
    // policies see the consolidation pattern they will run under.
    bool warming = true;
    while (warming) {
        warming = false;
        for (Slot &slot : slots_) {
            if (!slot.more || slot.steps >= slot.warm_steps)
                continue;
            machine_.switchTo(slot.pid);
            ++ctx_switches_;
            for (std::uint64_t i = 0;
                 i < quantum_ && slot.more && slot.steps < slot.warm_steps;
                 ++i, ++slot.steps) {
                slot.more = stepSlot(slot);
            }
            warming |= slot.more && slot.steps < slot.warm_steps;
        }
    }

    for (Slot &slot : slots_)
        if (slot.rec)
            slot.rec->markWarmupBoundary();
    warm_ = true;
}

bool
Scheduler::resumeFromSnapshot(const MachineSnapshot &snap)
{
    ap_assert(!slots_.empty(), "nothing scheduled");
    ap_assert(!warm_, "scheduler already warmed");
    for (const Slot &slot : slots_)
        ap_assert(slot.replay != nullptr,
                  "snapshot resume requires all-replay slots");
    if (!restoreSnapshot(snap, machine_))
        return false;
    for (Slot &slot : slots_) {
        slot.pid = static_cast<ProcId>(slot.replay->seed);
        slot.cursor = slot.replay->warmupEvents;
        std::uint64_t init_end = 0;
        const auto &events = slot.replay->events;
        while (init_end < events.size() &&
               !(isMarker(events[init_end]) &&
                 events[init_end].arg == kInitMark))
            ++init_end;
        slot.warm_steps = countStepMarks(*slot.replay, init_end,
                                         slot.replay->warmupEvents);
        slot.steps = slot.warm_steps;
        slot.more = slot.cursor < events.size();
        // Reconstruct the warm-phase switch count the cold run would
        // have accumulated: one switch per quantum the slot occupied.
        ctx_switches_ +=
            (slot.warm_steps + quantum_ - 1) / quantum_;
    }
    warm_ = true;
    return true;
}

ConsolidationResult
Scheduler::runMeasured()
{
    ap_assert(warm_, "runMeasured before warmup/resume");
    ConsolidationResult result;

    RunResult base = machine_.snapshot("consolidated");

    bool any = true;
    while (any) {
        any = false;
        for (Slot &slot : slots_) {
            if (!slot.more)
                continue;
            machine_.switchTo(slot.pid);
            ++ctx_switches_;
            for (std::uint64_t i = 0; i < quantum_ && slot.more;
                 ++i, ++slot.steps) {
                slot.more = stepSlot(slot);
            }
            any |= slot.more;
        }
    }

    result.contextSwitches = ctx_switches_;
    result.machine = Machine::delta(
        machine_.snapshot("consolidated"), base);
    for (Slot &slot : slots_) {
        ScheduledRun r;
        r.workload = slot.workload ? slot.workload->name()
                                   : slot.replay->workload;
        r.pid = slot.pid;
        r.steps = slot.steps;
        r.finished = !slot.more;
        result.runs.push_back(r);
        machine_.guestOs().exitProcess(slot.pid);
        if (slot.rec) {
            *slot.out = std::move(slot.rec->trace());
            slot.out->workload = slot.workload->name();
            // Slot traces carry the guest pid for snapshot resume.
            slot.out->seed = slot.pid;
        }
    }
    return result;
}

ConsolidationResult
Scheduler::run()
{
    warmup();
    return runMeasured();
}

} // namespace ap
