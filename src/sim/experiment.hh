/**
 * @file
 * Experiment definitions: the (workload x technique x page size)
 * matrix of the paper's evaluation, with laptop-scaled workload
 * parameters and machine sizing.
 */

#ifndef AGILEPAGING_SIM_EXPERIMENT_HH
#define AGILEPAGING_SIM_EXPERIMENT_HH

#include <functional>
#include <string>
#include <vector>

#include "sim/machine.hh"
#include "workloads/workload.hh"

namespace ap
{

/** One cell of the evaluation matrix. */
struct ExperimentSpec
{
    std::string workload;
    VirtMode mode = VirtMode::Agile;
    PageSize pageSize = PageSize::Size4K;
    /** 0 = use the workload's default operation count. */
    std::uint64_t operations = 0;
    /** Apply the paper's optional hardware optimizations to
     *  shadow-based techniques (the evaluated agile configuration). */
    bool hwOpts = true;
    /** vCPUs in the simulated guest (1 = the classic matrix). */
    unsigned numVcpus = 1;
    /** Shootdown cost model when numVcpus > 1. */
    TlbCoherence tlbCoherence = TlbCoherence::Software;
};

/**
 * Default (scaled) parameters for a Table V workload. Footprints keep
 * the paper's ordering (graph500/memcached largest, astar smallest) at
 * roughly 1/1000 scale so runs complete on a laptop.
 */
WorkloadParams defaultParamsFor(const std::string &workload);

/**
 * A machine configuration sized for @p params under @p mode /
 * @p page_size, with the evaluated policy defaults.
 */
SimConfig configFor(VirtMode mode, PageSize page_size,
                    const WorkloadParams &params, bool hw_opts = true);

/** Run one cell of the matrix. */
RunResult runExperiment(const ExperimentSpec &spec);

/**
 * Pluggable per-cell runner. The matrix drivers take one of these so a
 * higher layer can substitute a different execution strategy for a
 * cell — notably the trace-cache replay runner in trace/ (which sim/
 * cannot depend on directly). An empty function means runExperiment.
 * Must be safe to call concurrently for distinct cells.
 */
using CellFn = std::function<RunResult(const ExperimentSpec &)>;

/**
 * The cells of the Figure 5 matrix: every Table V workload under
 * {Native, Nested, Shadow, Agile} x {4K, 2M}, in Figure 5 order.
 * @param operations 0 = workload defaults
 * @param include_range also sweep VirtMode::Range as a fifth column
 *        (opt-in so the classic matrix stays bit-identical)
 */
std::vector<ExperimentSpec> figure5Specs(std::uint64_t operations = 0,
                                         bool include_range = false);

/**
 * Run the full Figure 5 matrix.
 * @param operations 0 = workload defaults
 * @param jobs worker threads (1 = serial, 0 = hardware concurrency);
 *        results are bit-identical regardless of @p jobs
 * @param cell per-cell runner override (empty = runExperiment)
 */
std::vector<RunResult> runFigure5Matrix(std::uint64_t operations = 0,
                                        unsigned jobs = 1,
                                        const CellFn &cell = {});

} // namespace ap

#endif // AGILEPAGING_SIM_EXPERIMENT_HH
