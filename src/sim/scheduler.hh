/**
 * @file
 * Round-robin consolidation scheduler: runs several workloads as
 * separate guest processes on one machine, interleaved in fixed
 * quanta — the server-consolidation scenario the paper's introduction
 * motivates (frequent guest context switches are exactly where the
 * sptr cache and agile's shadow-root handling matter).
 */

#ifndef AGILEPAGING_SIM_SCHEDULER_HH
#define AGILEPAGING_SIM_SCHEDULER_HH

#include <memory>
#include <string>
#include <vector>

#include "sim/machine.hh"
#include "workloads/workload.hh"

namespace ap
{

/** Per-workload result of a consolidated run. */
struct ScheduledRun
{
    std::string workload;
    ProcId pid = 0;
    /** Steps the workload executed. */
    std::uint64_t steps = 0;
    bool finished = false;
};

/** Aggregate outcome of a consolidated run. */
struct ConsolidationResult
{
    /** Machine-wide measured counters (delta over the measured
     *  region, same protocol as Machine::run). */
    RunResult machine;
    std::vector<ScheduledRun> runs;
    /** Guest context switches performed by the scheduler. */
    std::uint64_t contextSwitches = 0;
};

/**
 * The scheduler. Owns nothing but references; workloads and machine
 * outlive it.
 */
class Scheduler
{
  public:
    /**
     * @param quantum workload steps per scheduling quantum
     */
    Scheduler(Machine &machine, std::uint64_t quantum = 2000);

    /** Add a workload; a process is created for it at run() time. */
    void add(Workload &workload);

    /**
     * Run every workload to completion, round-robin. Each workload
     * gets its own process; init+populate runs before measurement
     * begins; the measured region covers the interleaved execution.
     */
    ConsolidationResult run();

  private:
    Machine &machine_;
    std::uint64_t quantum_;
    std::vector<Workload *> workloads_;
};

} // namespace ap

#endif // AGILEPAGING_SIM_SCHEDULER_HH
