/**
 * @file
 * Round-robin consolidation scheduler: runs several workloads as
 * separate guest processes on one machine, interleaved in fixed
 * quanta — the server-consolidation scenario the paper's introduction
 * motivates (frequent guest context switches are exactly where the
 * sptr cache and agile's shadow-root handling matter).
 *
 * Consolidated runs can be recorded and replayed. A recorded slot
 * captures the workload's host-call stream with scheduler markers
 * (Yield events with a reserved arg) delimiting the populate phase
 * and each workload step, so a replay slot reproduces the exact
 * quantum interleaving of the recording. Because the interleaving is
 * a pure function of (workloads, params, quantum), the same slot
 * traces drive every MMU mode. Slot traces store the slot's guest
 * pid in Trace::seed; they are only meaningful to Scheduler replay,
 * not to TraceReplayWorkload (which would apply the markers as real
 * yields).
 *
 * The run splits into warmup() and runMeasured(), mirroring
 * Machine::runWarmup/runMeasured: a machine snapshot captured between
 * the two freezes the measurement boundary, and an all-replay
 * scheduler can resumeFromSnapshot() to skip the interleaved warm
 * phase entirely.
 */

#ifndef AGILEPAGING_SIM_SCHEDULER_HH
#define AGILEPAGING_SIM_SCHEDULER_HH

#include <memory>
#include <string>
#include <vector>

#include "sim/machine.hh"
#include "sim/snapshot.hh"
#include "trace/trace.hh"
#include "workloads/workload.hh"

namespace ap
{

/** Per-workload result of a consolidated run. */
struct ScheduledRun
{
    std::string workload;
    ProcId pid = 0;
    /** Steps the workload executed. */
    std::uint64_t steps = 0;
    bool finished = false;
};

/** Aggregate outcome of a consolidated run. */
struct ConsolidationResult
{
    /** Machine-wide measured counters (delta over the measured
     *  region, same protocol as Machine::run). */
    RunResult machine;
    std::vector<ScheduledRun> runs;
    /** Guest context switches performed by the scheduler. */
    std::uint64_t contextSwitches = 0;
};

/**
 * The scheduler. Owns nothing but references; workloads, traces and
 * machine outlive it. A scheduler instance drives one run.
 */
class Scheduler
{
  public:
    /**
     * @param quantum workload steps per scheduling quantum
     */
    Scheduler(Machine &machine, std::uint64_t quantum = 2000);

    /** Add a workload; a process is created for it at warmup() time. */
    void add(Workload &workload);

    /**
     * Add a workload whose consolidated host-call stream is recorded
     * into @p out (finalized by runMeasured()). @p out must outlive
     * the scheduler.
     */
    void addRecorded(Workload &workload, Trace &out);

    /**
     * Add a slot driven by a trace previously recorded by
     * addRecorded() under the same workload set, params and quantum.
     * The replay reproduces the recorded interleaving exactly.
     */
    void addReplay(const Trace &trace);

    /**
     * Run every workload to completion, round-robin:
     * warmup() + runMeasured().
     */
    ConsolidationResult run();

    /**
     * Create one process per slot, init+populate each, then
     * fast-forward the interleaved warm region. Leaves the machine at
     * the measurement boundary (capture a snapshot here).
     */
    void warmup();

    /**
     * Instead of warmup(): restore a warm image captured at the
     * boundary of an identical cell. Every slot must be a replay
     * slot (their traces carry the guest pids). @return false if the
     * snapshot does not match the machine's config.
     */
    bool resumeFromSnapshot(const MachineSnapshot &snap);

    /** Run the measured region. Requires warmup() or a successful
     *  resumeFromSnapshot(). */
    ConsolidationResult runMeasured();

  private:
    struct Slot
    {
        /** Generated/recorded slots; null for replay slots. */
        Workload *workload = nullptr;
        /** Recording decorator (recorded slots only). */
        std::unique_ptr<TraceRecorder> rec;
        /** Recording target (recorded slots only). */
        Trace *out = nullptr;
        /** Replay source (replay slots only). */
        const Trace *replay = nullptr;
        /** Replay event cursor. */
        std::uint64_t cursor = 0;
        ProcId pid = 0;
        bool more = true;
        std::uint64_t steps = 0;
        std::uint64_t warm_steps = 0;
    };

    /** Execute one workload step (or replay one recorded step). */
    bool stepSlot(Slot &slot);

    Machine &machine_;
    std::uint64_t quantum_;
    std::vector<Slot> slots_;
    std::uint64_t ctx_switches_ = 0;
    bool warm_ = false;
};

} // namespace ap

#endif // AGILEPAGING_SIM_SCHEDULER_HH
