/**
 * @file
 * Warm-state machine snapshots: capture a Machine at its measurement
 * boundary once, then fork any number of fresh Machines from the
 * frozen state instead of re-running warmup.
 *
 * A MachineSnapshot is the flat byte image produced by
 * Machine::saveState plus a digest of every behavior-affecting
 * SimConfig field. Restoring into a freshly constructed Machine with
 * the same config reproduces the warmed machine exactly, so a
 * measured run from the restored state is bit-identical to the cold
 * run it replaces. The SnapshotCache memoizes snapshots per
 * (workload, params, config-digest) with the same first-wins
 * promise/shared_future discipline as the TraceCache, and can
 * optionally persist them as versioned "APSNAP3\0" files (v2: machine
 * payload carries arena/allocator pool counters).
 */

#ifndef AGILEPAGING_SIM_SNAPSHOT_HH
#define AGILEPAGING_SIM_SNAPSHOT_HH

#include <cstdint>
#include <functional>
#include <future>
#include <iosfwd>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "sim/config.hh"

namespace ap
{

class Machine;

/**
 * Digest of every SimConfig field that can influence simulation
 * behavior (mode, sizes, geometries, costs, policies, ...). Two
 * configs with equal digests build Machines that evolve identically
 * under the same event stream, so the digest is both the cache-key
 * component and the restore-time compatibility check.
 */
std::uint64_t simConfigDigest(const SimConfig &cfg);

/** An immutable captured machine state. */
struct MachineSnapshot
{
    /** simConfigDigest of the config the machine was built with. */
    std::uint64_t configDigest = 0;
    /** Machine::saveState byte image. */
    std::vector<std::uint8_t> bytes;
};

using SnapshotPtr = std::shared_ptr<const MachineSnapshot>;

/** Serialize @p machine (typically sitting at its measurement
 *  boundary after Machine::runWarmup) into a fresh snapshot. */
SnapshotPtr captureSnapshot(const Machine &machine);

/**
 * Restore @p snap into @p machine, which must be constructed with a
 * config whose digest matches. The machine may be fresh or may have
 * already run — a used machine's state is abandoned and its storage
 * reused (see Machine::restoreState).
 * @return false (machine unusable) on digest mismatch or a corrupt
 * image.
 */
bool restoreSnapshot(const MachineSnapshot &snap, Machine &machine);

/** Write/read the on-disk container ("APSNAP3\0" + digest + payload
 *  + checksum). read rejects bad magic, truncation and corruption. */
bool writeSnapshot(const MachineSnapshot &snap, std::ostream &os);
bool writeSnapshotFile(const MachineSnapshot &snap,
                       const std::string &path);
bool readSnapshot(std::istream &is, MachineSnapshot &out);
bool readSnapshotFile(const std::string &path, MachineSnapshot &out);

/**
 * Everything a warm state depends on: the operation stream identity
 * (workload, operations, seed, footprint) and the full machine
 * config. Unlike the TraceCacheKey, mode and every other config knob
 * ARE part of the key — warm state is machine state.
 */
struct SnapshotKey
{
    std::string workload;
    std::uint64_t operations = 0;
    std::uint64_t seed = 0;
    std::uint64_t footprintBytes = 0;
    std::uint64_t configDigest = 0;

    bool
    operator==(const SnapshotKey &o) const
    {
        return workload == o.workload && operations == o.operations &&
               seed == o.seed && footprintBytes == o.footprintBytes &&
               configDigest == o.configDigest;
    }
};

struct SnapshotKeyHash
{
    std::size_t
    operator()(const SnapshotKey &k) const
    {
        std::size_t h = std::hash<std::string>{}(k.workload);
        auto mix = [&h](std::uint64_t v) {
            h ^= std::hash<std::uint64_t>{}(v) + 0x9e3779b97f4a7c15ull +
                 (h << 6) + (h >> 2);
        };
        mix(k.operations);
        mix(k.seed);
        mix(k.footprintBytes);
        mix(k.configDigest);
        return h;
    }
};

/**
 * Thread-safe first-wins memo of machine snapshots, mirroring
 * TraceCache: the first requester of a key captures (running warmup
 * once), concurrent same-key requesters block on a shared_future, and
 * an exception from the capture function propagates to all of them.
 * With a directory set, snapshots additionally persist as
 * <hex-key>.apsnap files that later processes (or a later obtain in
 * this process) load instead of capturing.
 *
 * An optional byte budget bounds the pool: once the resident images
 * exceed it, the least-recently-obtained completed entries are evicted
 * until the pool fits (a later obtain of an evicted key re-captures or
 * re-loads it). In-flight captures are never evicted, and holders of a
 * previously returned SnapshotPtr keep their image alive regardless —
 * eviction only drops the pool's own reference.
 */
class SnapshotCache
{
  public:
    using CaptureFn = std::function<SnapshotPtr()>;

    SnapshotCache() = default;
    /** @param dir existing directory for .apsnap persistence. */
    explicit SnapshotCache(std::string dir) : dir_(std::move(dir)) {}

    /** Return the snapshot for @p key, capturing it on first use. */
    SnapshotPtr obtain(const SnapshotKey &key, const CaptureFn &capture);

    /**
     * Bound the resident image bytes (0 = unlimited, the default).
     * Applies to future obtains and immediately evicts down to the new
     * budget. A single image larger than the budget still resides
     * until the next insert (the pool never thrashes the entry it was
     * asked for).
     */
    void setByteBudget(std::uint64_t bytes);

    /** Keys captured in-process (cache misses). */
    std::uint64_t captures() const;
    /** Requests served from memory (cache hits). */
    std::uint64_t forks() const;
    /** Keys loaded from the snapshot directory. */
    std::uint64_t diskLoads() const;
    /** Completed entries dropped by the byte budget. */
    std::uint64_t evictions() const;
    /** Bytes of completed images currently resident. */
    std::uint64_t residentBytes() const;

  private:
    std::string filePath(const SnapshotKey &key) const;

    /** Account a completed capture and evict LRU entries past the
     *  budget. Caller must hold mu_. */
    void insertResidentLocked(const SnapshotKey &key,
                              std::uint64_t bytes);
    void evictToBudgetLocked();

    mutable std::mutex mu_;
    std::unordered_map<SnapshotKey, std::shared_future<SnapshotPtr>,
                       SnapshotKeyHash>
        map_;
    /** Completed keys, least recently obtained first. */
    std::list<SnapshotKey> lru_;
    /** Completed keys -> (position in lru_, image bytes). */
    struct Resident
    {
        std::list<SnapshotKey>::iterator pos;
        std::uint64_t bytes = 0;
    };
    std::unordered_map<SnapshotKey, Resident, SnapshotKeyHash> resident_;
    std::string dir_;
    std::uint64_t budget_bytes_ = 0;
    std::uint64_t resident_bytes_ = 0;
    std::uint64_t captures_ = 0;
    std::uint64_t forks_ = 0;
    std::uint64_t disk_loads_ = 0;
    std::uint64_t evictions_ = 0;
};

} // namespace ap

#endif // AGILEPAGING_SIM_SNAPSHOT_HH
