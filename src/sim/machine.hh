/**
 * @file
 * The simulated machine: one core (TLB hierarchy, page-walk caches,
 * hardware walker) plus the software stack for the configured
 * virtualization mode (VMM, shadow manager, agile policy or SHSP
 * controller, guest OS). Drives workloads and produces the
 * measurements every bench consumes.
 */

#ifndef AGILEPAGING_SIM_MACHINE_HH
#define AGILEPAGING_SIM_MACHINE_HH

#include <memory>
#include <string>
#include <vector>

#include "base/rng.hh"
#include "base/serialize.hh"
#include "base/stats.hh"
#include "sim/access_hint.hh"
#include "core/agile_policy.hh"
#include "core/backend_registry.hh"
#include "guestos/guest_os.hh"
#include "sim/config.hh"
#include "tlb/nested_tlb.hh"
#include "tlb/pwc.hh"
#include "tlb/tlb_hierarchy.hh"
#include "trace/walk_trace.hh"
#include "vmm/shadow_mgr.hh"
#include "vmm/shsp.hh"
#include "vmm/vmm.hh"
#include "walker/walker.hh"
#include "workloads/workload.hh"

namespace ap
{

/** Aggregate results of one workload run (one Fig. 5 bar). */
struct RunResult
{
    std::string workload;
    VirtMode mode = VirtMode::Native;
    PageSize pageSize = PageSize::Size4K;

    /** Instructions executed (memory ops + compute). */
    std::uint64_t instructions = 0;
    /** Ideal cycles: instruction execution plus guest-kernel work —
     *  the paper's E_ideal denominator (Table IV). */
    Cycles idealCycles = 0;
    /** Cycles added by address translation (walk refs + L2-TLB hits).*/
    Cycles walkCycles = 0;
    /** Cycles added by VMM interventions. */
    Cycles trapCycles = 0;

    std::uint64_t tlbMisses = 0;
    std::uint64_t walks = 0;
    std::uint64_t traps = 0;
    std::uint64_t guestPageFaults = 0;
    double avgWalkRefs = 0.0;
    /** Fraction of successful walks per Table VI coverage class. */
    double coverage[6] = {0, 0, 0, 0, 0, 0};
    /** Per-kind trap counts (indexed by TrapKind). */
    std::uint64_t trapByKind[kNumTrapKinds] = {};

    /** vCPUs the run executed on (1 = the classic machine). */
    std::uint32_t numVcpus = 1;
    /** Cycles added by translation-coherence traffic (0 at 1 vCPU). */
    Cycles coherenceCycles = 0;
    /** Shootdowns broadcast to remote vCPUs. */
    std::uint64_t shootdowns = 0;
    /** Per-remote-vCPU invalidations delivered. */
    std::uint64_t remoteInvalidations = 0;
    /** Shootdowns by cause (indexed by CoherenceCause). */
    std::uint64_t shootdownsByCause[kNumCoherenceCauses] = {};

    /** Range backend: walks translated by a segment register. Always
     *  0 for the paging backends. */
    std::uint64_t segmentHits = 0;
    /** Range backend: segment installs that evicted a live register. */
    std::uint64_t segmentSpills = 0;
    /** Range backend: segments dropped by coherence/validation. */
    std::uint64_t segmentInvalidations = 0;

    /** Raw counters used to compute deltas between snapshots. */
    double rawRefsTotal = 0;
    double rawCoverage[6] = {0, 0, 0, 0, 0, 0};

    double
    walkOverhead() const
    {
        return idealCycles ? double(walkCycles) / idealCycles : 0.0;
    }

    double
    vmmOverhead() const
    {
        return idealCycles ? double(trapCycles) / idealCycles : 0.0;
    }

    double
    coherenceOverhead() const
    {
        return idealCycles ? double(coherenceCycles) / idealCycles : 0.0;
    }

    double
    totalOverhead() const
    {
        return walkOverhead() + vmmOverhead() + coherenceOverhead();
    }

    /** Execution time relative to overhead-free execution. */
    double slowdown() const { return 1.0 + totalOverhead(); }
};

/**
 * The machine.
 */
class Machine : public stats::StatGroup, public WorkloadHost
{
  public:
    explicit Machine(const SimConfig &cfg);
    ~Machine() override;

    /** Run @p workload to completion in a fresh process. */
    RunResult run(Workload &workload);

    /**
     * The warmup half of run(): spawn a process, init the workload,
     * fast-forward, and run the unmeasured fraction of its steps.
     * After this returns the machine sits exactly at the measurement
     * boundary — the state a MachineSnapshot captures.
     * @return the spawned pid.
     */
    ProcId runWarmup(Workload &workload);

    /**
     * The measured half of run(): take the baseline, drain the
     * remaining steps, and exit the process. Valid after runWarmup()
     * on the same machine, or after restoring a snapshot taken at the
     * boundary (the workload must then be positioned there too, e.g.
     * BatchReplayWorkload::resumeAtBoundary).
     */
    RunResult runMeasured(Workload &workload);

    /**
     * Snapshot support: serialize every piece of machine state that
     * can influence subsequent simulation — memory, TLBs/PWC/nTLB,
     * VMM, shadow manager, guest OS, RNG streams, counters, and the
     * whole stats tree. restoreState() must target a Machine
     * constructed with an identical SimConfig; it may be fresh or may
     * already have run (a prior run's state is abandoned and its
     * storage — arena slabs, frame vectors — reused, which is the
     * fast path MachinePool leases ride on).
     * @return false (with unusable state) if the stream is corrupt or
     * from a mismatched config.
     */
    void saveState(Serializer &s) const;
    bool restoreState(Deserializer &d);

    // ------------------------------------------------------------------
    // Direct driving API (examples, tests, microbenches)
    // ------------------------------------------------------------------

    /** Create a process in the configured mode and switch to it. */
    ProcId spawnProcess();

    /** Switch the running process (guest CR3 write). */
    void switchTo(ProcId pid);

    /** Access @p va from the current process. */
    void touch(Addr va, bool write, bool instr = false);

    /**
     * Batched replay fast path: drain @p count data/instruction
     * accesses from SoA arrays, starting at index @p begin. Bit i of
     * @p write_bits / @p instr_bits classifies vas[i]. Every counter
     * (instructions, TLB stats, walks, traps, policy intervals) ends up
     * bit-identical to calling access()/instrFetch() one event at a
     * time; the speed comes from skipping per-event virtual dispatch
     * and from a last-translation filter that proves consecutive
     * same-page probes would hit the same (MRU) L1 entry.
     */
    void runAccessBatch(const Addr *vas, const std::uint64_t *write_bits,
                        const std::uint64_t *instr_bits,
                        std::size_t begin, std::size_t count);

    /**
     * runAccessBatch with an optional per-run hint (what the trace
     * compiler proved about the whole run; conservative for any
     * sub-range). Enables the run-level constant-translation fast
     * path. @p hint may be nullptr.
     */
    void runAccessBatch(const Addr *vas, const std::uint64_t *write_bits,
                        const std::uint64_t *instr_bits,
                        std::size_t begin, std::size_t count,
                        const AccessRunHint *hint);

    /**
     * Process-wide telemetry of the vectorized batch pipeline
     * (accumulated across every Machine and thread since the last
     * reset; purely observational — no simulated state involved).
     */
    struct BatchFilterStats
    {
        /** 64-lane blocks swept by the vectorized filter. */
        std::uint64_t blocksScanned = 0;
        /** Accesses entering the block sweep. */
        std::uint64_t lanesScanned = 0;
        /** Accesses retired by the filter (bulk or scalar). */
        std::uint64_t lanesFiltered = 0;
        /** Bulk countFilteredL1Hit(n) retires issued. */
        std::uint64_t bulkRetires = 0;
        /** Whole runs retired by the O(1) constant-translation path. */
        std::uint64_t runFastpaths = 0;
        /** Accesses those whole-run retires covered. */
        std::uint64_t runFastpathLanes = 0;
    };

    /** Snapshot / reset the process-wide batch-filter telemetry. */
    static BatchFilterStats batchFilterStats();
    static void resetBatchFilterStats();

    ProcId currentProcess() const { return current_; }

    GuestOs &guestOs() { return *guest_os_; }
    /** Raw host memory (the invariant checker walks tables directly). */
    PhysMem &physMem() { return mem_; }
    Vmm *vmm() { return vmm_.get(); }
    ShadowMgr *shadowMgr() { return smgr_.get(); }
    /** The translation backend every walker dispatches through. */
    TranslationBackend &backend() { return *backend_; }
    /** The range backend, or nullptr unless mode == Range (the
     *  invariant checker sweeps its segment files directly). */
    RangeBackend *rangeBackend() { return range_backend_; }
    const RangeBackend *rangeBackend() const { return range_backend_; }
    Walker &walker() { return *walker_; }
    TlbHierarchy &tlb() { return *tlb_; }
    const SimConfig &config() const { return cfg_; }

    /** vCPU count (== config().numVcpus). */
    unsigned numVcpus() const { return cfg_.numVcpus; }
    /** vCPU currently holding the deterministic schedule. */
    unsigned activeVcpu() const { return active_vcpu_; }
    /** Per-vCPU translation stacks (0 = the classic members). */
    TlbHierarchy &tlbOf(unsigned vcpu);
    PageWalkCache &pwcOf(unsigned vcpu);
    /** The shared shootdown fabric. */
    CoherenceDomain &coherence() { return *coh_; }
    const CoherenceDomain &coherence() const { return *coh_; }

    /**
     * Start recording one WalkTraceRecord per serviced TLB miss into a
     * bounded ring of @p capacity records. run() clears the ring at its
     * measurement boundary, so after a run the trace covers exactly the
     * measured region (and summarizing it reproduces the RunResult's
     * Table VI coverage bit-identically when nothing was dropped).
     */
    void enableWalkTrace(std::size_t capacity);

    /** The walk-trace ring, or nullptr when tracing is off. */
    WalkTraceBuffer *walkTrace() { return walk_trace_.get(); }
    const WalkTraceBuffer *walkTrace() const { return walk_trace_.get(); }

    /** Snapshot current counters into a RunResult. */
    RunResult snapshot(const std::string &workload_name) const;

    /** Counter difference end - start (derived fields recomputed). */
    static RunResult delta(const RunResult &end, const RunResult &start);

    // ------------------------------------------------------------------
    // WorkloadHost interface
    // ------------------------------------------------------------------

    Addr mmap(Addr length, bool writable, bool file_backed,
              std::uint64_t file_id) override;
    bool mmapAt(Addr base, Addr length, bool writable, bool file_backed,
                std::uint64_t file_id) override;
    void munmap(Addr base, Addr length) override;
    void access(Addr va, bool write) override;
    void instrFetch(Addr va) override;
    void compute(std::uint64_t instructions) override;
    void forkTouchExit(std::uint64_t touch_pages) override;
    void yield() override;
    void reclaimTick(std::uint64_t max_pages) override;
    void sharePagesScan() override;
    Rng &rng() override { return rng_; }

    stats::Formula instructionsStat;
    stats::Formula walkCyclesStat;
    stats::Scalar l2HitCyclesStat;
    stats::Scalar protFaults;
    /** Page-table-page arena observability (Formulas over the arena's
     *  own counters, so they track saveState/restoreState for free). */
    stats::Formula arenaPoolHits;
    stats::Formula arenaRecycles;
    stats::Formula arenaHighWater;
    stats::Formula arenaSlabAllocs;
    /** Guest frame-id allocator recycling (0 when running native). */
    stats::Formula guestPtFrameRecycles;
    stats::Formula guestPtFrameHighWater;
    stats::Formula guestDataFrameRecycles;
    stats::Formula guestDataFrameHighWater;

  private:
    void doAccess(Addr va, bool write, bool instr);

    /**
     * The TLB-probe / fault-servicing part of an access (everything in
     * doAccess except the instruction charge and the interval tick).
     * Updates the last-translation filter slot for the stream kind.
     */
    void accessSlow(Addr va, bool write, bool instr);

    /**
     * accessSlow's body, with the probe-accounting choice resolved at
     * compile time so neither instantiation carries the other's code:
     * Deferred probes charge their stats into *refill_pending_
     * (runBatchVector's batch; must be non-null), non-deferred probes
     * charge the counters directly.
     */
    template <bool Deferred>
    void accessSlowImpl(Addr va, bool write, bool instr);

    /** Resolve a write hitting a non-writable translation. */
    void resolveProtection(ProcId pid, Addr va);

    /** Fault-servicing walk loop; returns the final good result. */
    WalkResult translate(ProcId pid, Addr va, bool write);

    /** Append one trace record for a serviced miss (tracing on). */
    void recordWalkTrace(
        ProcId pid, Addr va, bool write, bool instr, const WalkResult &r,
        const std::array<std::uint64_t, kNumTrapKinds> &traps_before);

    /**
     * Batched-walk pre-resolution (cfg_.batchedWalks): VPN-sort the
     * batch's unique pages and prime-walk them so the real in-order
     * walks find their upper-level PTE lines warm, sharing each upper
     * subtree once per batch. Purely host-side: no simulated state or
     * statistic moves.
     */
    void primeBatch(const Addr *vas, std::size_t begin,
                    std::size_t count);

    /**
     * Drain one access range on the active vCPU's stack (no rotation
     * inside): run-level fast path, then the vectorized 64-lane block
     * sweep (cfg_.simdFilter) or the scalar per-access chain.
     */
    void runBatchRange(const Addr *vas, const std::uint64_t *write_bits,
                       const std::uint64_t *instr_bits,
                       std::size_t begin, std::size_t count,
                       const AccessRunHint *hint);

    /** The pre-vectorization scalar loop (also the verify-mode and
     *  "simd_filter=0" fallback). */
    void runBatchScalar(const Addr *vas,
                        const std::uint64_t *write_bits,
                        const std::uint64_t *instr_bits,
                        std::size_t begin, std::size_t count,
                        bool filter_ok);

    /** The 64-lane block pipeline (filter usable, simdFilter on). */
    void runBatchVector(const Addr *vas,
                        const std::uint64_t *write_bits,
                        const std::uint64_t *instr_bits,
                        std::size_t begin, std::size_t count);

    /** Accesses that can retire before the next policy interval
     *  fires (the per-access trigger is charge-then-compare). */
    std::size_t intervalRoom(Cycles op_cycles) const;

    /** Interval bookkeeping: policy/SHSP ticks. */
    void maybeInterval();

    bool shadowed(ProcId pid) const;

    void verifyAgainstFunctional(ProcId pid, Addr va, FrameId got);

    SimConfig cfg_;
    /** Workload-visible random stream (WorkloadHost::rng()). */
    Rng rng_;
    /**
     * Machine-internal random stream (forkTouchExit / yield page
     * picks). Kept separate from the workload stream so the machine's
     * draws are a pure function of the event sequence: a trace replay,
     * which issues the identical events but no workload draws, then
     * reproduces a generated run bit-for-bit.
     */
    Rng internal_rng_;

    /**
     * Last-translation (L0) filter slot: the result of the most recent
     * successful access of one stream kind (data or instruction). While
     * no flush intervened (generation check) the entry is provably the
     * MRU way of its L1 set, so a same-page re-probe must hit it.
     * mask == 0 means invalid.
     */
    struct LastXlat
    {
        Addr va = 0;
        Addr mask = 0;
        ProcId asid = 0;
        PageSize size = PageSize::Size4K;
        bool writable = false;
        bool dirty = false;
        std::uint64_t gen = 0;
    };

    /**
     * One extra vCPU's private translation stack (vCPU 0 uses the
     * machine's classic tlb_/pwc_/walker_/l0_ members, so its stat
     * names — and therefore a 1-vCPU machine's output — are unchanged).
     * Extra stacks group their stats under "vcpu1", "vcpu2", ...
     */
    struct VcpuStack
    {
        std::unique_ptr<stats::StatGroup> group;
        std::unique_ptr<TlbHierarchy> tlb;
        std::unique_ptr<PageWalkCache> pwc;
        std::unique_ptr<Walker> walker;
        LastXlat l0[2];
    };

    /** Re-point the active-stack aliases at @p vcpu's structures. */
    void setActiveVcpu(unsigned vcpu);

    PhysMem mem_;
    std::unique_ptr<TlbHierarchy> tlb_;
    std::unique_ptr<PageWalkCache> pwc_;
    std::unique_ptr<NestedTlb> ntlb_;
    std::unique_ptr<Walker> walker_;
    std::unique_ptr<CoherenceDomain> coh_;
    /** vCPUs 1..N-1; empty on the classic 1-vCPU machine. */
    std::vector<std::unique_ptr<VcpuStack>> extra_vcpus_;
    /** Owned backend instance for stateful modes (null for the modes
     *  served by the shared builtinBackend singletons). */
    std::unique_ptr<TranslationBackend> backend_owned_;
    /** The backend in use (owned instance or shared singleton). */
    TranslationBackend *backend_ = nullptr;
    /** Typed view of backend_ when it is the range backend. */
    RangeBackend *range_backend_ = nullptr;
    std::unique_ptr<Vmm> vmm_;
    std::unique_ptr<ShadowMgr> smgr_;
    std::unique_ptr<AgilePolicy> policy_;
    std::unique_ptr<ShspController> shsp_;
    std::unique_ptr<GuestOs> guest_os_;

    ProcId current_ = 0;
    ProcId background_ = 0;

    /** Pid spawned by runWarmup (runMeasured exits it). */
    ProcId run_pid_ = 0;
    /** The workload finished inside the warmup loop. */
    bool warm_exhausted_ = false;

    /** [0] = data stream, [1] = instruction stream. */
    LastXlat l0_[2];

    /**
     * Active-vCPU aliases: the access path reads these instead of the
     * owning pointers so vCPU rotation is a four-pointer swap. They
     * always point at vCPU active_vcpu_'s stack (vCPU 0 = the classic
     * members above/below).
     */
    TlbHierarchy *atlb_ = nullptr;
    PageWalkCache *apwc_ = nullptr;
    Walker *awalker_ = nullptr;
    LastXlat *al0_ = nullptr;

    unsigned active_vcpu_ = 0;
    /** Accesses left before the round-robin schedule rotates. */
    std::uint64_t vcpu_quantum_left_ = 0;

    /** Per-miss event trace (allocated by enableWalkTrace). */
    std::unique_ptr<WalkTraceBuffer> walk_trace_;
    /** Faulted walk attempts the last translate() serviced. */
    unsigned last_translate_faults_ = 0;

    std::uint64_t instructions_ = 0;
    Cycles walk_cycles_ = 0;
    std::uint64_t tlb_misses_ = 0;

    /** Scratch VPN buffer for primeBatch (reused, never serialized:
     *  priming is host-side only). */
    std::vector<Addr> prime_vpns_;
    /** Miss-density gate: prime the next batch only when the previous
     *  one actually walked (a warm forked TLB skips priming). */
    bool prime_next_ = true;

    /**
     * Non-null only while the vectorized batch pipeline is draining a
     * range: accessSlow's TLB probes then accumulate their stat
     * charges here (TlbHierarchy::probeDeferred) instead of bumping
     * the counters per probe; runBatchVector flushes the batch at
     * block boundaries, before every policy interval, and on exit.
     * Always targets the active vCPU's hierarchy (a range never spans
     * a rotation). Never serialized — empty outside a batch.
     */
    TlbHierarchy::RefillPending *refill_pending_ = nullptr;

    Tick next_interval_ = 0;
    // Interval deltas for policy/SHSP decisions.
    Cycles interval_walk_cycles_ = 0;
    Cycles interval_trap_cycles_base_ = 0;
    std::array<std::uint64_t, kNumTrapKinds> interval_trap_counts_{};
    std::uint64_t interval_gpt_writes_ = 0;
    std::uint64_t interval_start_ops_ = 0;
};

} // namespace ap

#endif // AGILEPAGING_SIM_MACHINE_HH
