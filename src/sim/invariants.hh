/**
 * @file
 * Architectural invariant checks for the differential oracle.
 *
 * Each check re-derives state through an independent path — a raw
 * page-table walk over PhysMem, the guest's functional page table, or
 * the stat counters — and compares against what the machine's hardware
 * models (walker, TLBs, shadow manager) produced. The checks are
 * side-effect-free: they never allocate frames, touch A/D bits, fill
 * caches, or advance any counter, so running them between events
 * cannot perturb the simulation they are checking.
 *
 * The invariants (ISSUE 2):
 *  (a) every machine resolves the same gVA translation — checked
 *      cross-machine at guest level (guest frame + permission bits;
 *      host frame numbers legitimately differ between machines because
 *      host allocation order is mode-dependent), and per-machine the
 *      architectural walk must land on the frame backing the guest's
 *      functional mapping;
 *  (b) coverage fractions sum to 1 and the raw counters are monotone;
 *  (c) shadow PTEs are bit-coherent with the guest page table whenever
 *      the shadowed region is clean (not unsynced);
 *  (d) guest/shadow A/D dirty bits are set by the time a store
 *      retires, matching the walker's dirtyTransition accounting.
 */

#ifndef AGILEPAGING_SIM_INVARIANTS_HH
#define AGILEPAGING_SIM_INVARIANTS_HH

#include <optional>
#include <string>

#include "sim/machine.hh"

namespace ap
{

/** One failed invariant, with enough context to debug it. */
struct InvariantViolation
{
    /** Which invariant: "lockstep", "translation", "coverage",
     *  "counters", "shadow-coherence", "dirty-bit". */
    std::string invariant;
    /** Human-readable description of the mismatch. */
    std::string detail;
    /** Trace event index after which the violation was detected. */
    std::uint64_t eventIndex = 0;
    /** Virtual address involved (0 when not address-specific). */
    Addr va = 0;
};

/** Result of an independent architectural walk (see resolveArch). */
struct ArchLeaf
{
    /** Host frame of @p va's exact 4 KB page. */
    FrameId h4k = 0;
    /** Write permission of the full translation as hardware sees it. */
    bool writable = false;
};

/**
 * Resolve @p va for @p pid by walking the machine's raw page tables
 * (native, shadow+switching, or two-stage nested, per the process's
 * translation context) without going through the walker, its caches,
 * or its stats. Returns nullopt when the translation is incomplete.
 */
std::optional<ArchLeaf> resolveArch(Machine &m, ProcId pid, Addr va);

/**
 * Per-machine checks after an access to @p va completed: the
 * architectural walk resolves, lands on the frame backing the guest's
 * functional mapping, never grants write where the guest does not, and
 * after a store the guest leaf dirty bit is set (invariant d).
 */
std::optional<InvariantViolation>
checkAccessInvariants(Machine &m, Addr va, bool write,
                      std::uint64_t event_index);

/**
 * Guest-level lock-step agreement between two machines (invariant a):
 * same functional mapping (guest frame, granule) and same guest PTE
 * writable/dirty bits for @p va. Accessed bits are excluded — they
 * depend on TLB-hit timing, which hardware does not architect.
 */
std::optional<InvariantViolation>
checkCrossMachine(Machine &a, Machine &b, Addr va,
                  std::uint64_t event_index);

/**
 * Counter sanity for one machine (invariant b): walk/miss/trap/
 * coverage counters are monotone versus @p prev, and the normalized
 * coverage fractions sum to 1 (within 1e-9) once any walk completed.
 * On success @p prev is updated to the current snapshot.
 */
std::optional<InvariantViolation>
checkCounterInvariants(Machine &m, RunResult &prev,
                       std::uint64_t event_index);

/**
 * Translation-residency sweep over every vCPU's TLB hierarchy: no
 * cached translation may survive the shootdown that its invalidating
 * event (munmap, COW break, fork, exit, reclaim eviction, host remap)
 * must have broadcast. Three rules per entry:
 *  1. the entry's ASID must belong to a live process and its VA must
 *     still be mapped by that process (a dead-ASID or unmapped-VA
 *     entry is a missed shootdown);
 *  2. a writable entry must agree with the current state — the guest
 *     mapping grants write and the entry's host frame is the current
 *     backing of the guest frame;
 *  3. read-only entries may disagree on the host frame (they fault on
 *     the next write, which is how COW is designed to resolve).
 */
std::optional<InvariantViolation>
checkTlbResidency(Machine &m, std::uint64_t event_index);

/**
 * Segment-residency sweep over every vCPU's segment-register file
 * (range backend only; a no-op for the classic modes): a live segment
 * must belong to a live process, and every 4 KB page it covers must
 * still be guest-mapped with its current host backing at exactly
 * hbase + page offset. A segment that survives the munmap/COW/exit
 * broadcast that should have dropped it is a missed invalidation —
 * the segment-file analogue of a stale TLB entry.
 */
std::optional<InvariantViolation>
checkSegmentResidency(Machine &m, std::uint64_t event_index);

/**
 * Shadow-coherence sweep (invariant c): for every shadowed process,
 * every terminal shadow entry agrees bit-for-bit with the guest page
 * table — switching entries point at the backing of the next-level
 * guest PT page, and leaves map the backing of the guest frame with
 * writable = gpte.writable && hostWritable && (gpte.dirty || hwOptAd)
 * and dirty never exceeding the guest's. Unsynced and nested-covered
 * PT pages are exempt (their staleness is the design).
 */
std::optional<InvariantViolation>
checkShadowCoherence(Machine &m, std::uint64_t event_index);

} // namespace ap

#endif // AGILEPAGING_SIM_INVARIANTS_HH
