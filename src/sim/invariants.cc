/**
 * @file
 * Invariant checker implementation.
 */

#include "sim/invariants.hh"

#include <cmath>
#include <sstream>

#include "base/bitfield.hh"

namespace ap
{

namespace
{

PageSize
archSizeAtDepth(unsigned depth)
{
    return depth == kPtLevels - 1   ? PageSize::Size4K
           : depth == kPtLevels - 2 ? PageSize::Size2M
                                    : PageSize::Size1G;
}

struct HostHit
{
    FrameId h4k = 0;
    bool writable = false;
};

/** Second-stage walk: gframe through the host table (no nTLB). */
std::optional<HostHit>
archHostWalk(const PhysMem &mem, FrameId hpt_root, FrameId gframe)
{
    Addr gpa = frameAddr(gframe);
    FrameId f = hpt_root;
    for (unsigned d = 0; d < kPtLevels; ++d) {
        const Pte &pte = mem.table(f)[ptIndex(gpa, d)];
        if (!pte.valid)
            return std::nullopt;
        if (d == kPtLevels - 1 || pte.pageSize) {
            std::uint64_t frames =
                pageBytes(archSizeAtDepth(d)) / kPageBytes;
            return HostHit{pte.pfn + (gframe % frames), pte.writable};
        }
        f = pte.pfn;
    }
    return std::nullopt;
}

/**
 * Nested walk of guest levels [depth..leaf] starting from the host
 * frame backing the guest PT page at @p depth, each pointer and the
 * leaf translated through the host table.
 */
std::optional<ArchLeaf>
archNestedFrom(const PhysMem &mem, const TranslationContext &ctx, Addr va,
               unsigned depth, FrameId cur_host)
{
    FrameId cur = cur_host;
    for (unsigned d = depth; d < kPtLevels; ++d) {
        const Pte &pte = mem.table(cur)[ptIndex(va, d)];
        if (!pte.valid)
            return std::nullopt;
        if (d == kPtLevels - 1 || pte.pageSize) {
            std::uint64_t gframes =
                pageBytes(archSizeAtDepth(d)) / kPageBytes;
            FrameId gf = pte.pfn + (frameOf(va) % gframes);
            auto h = archHostWalk(mem, ctx.hptRoot, gf);
            if (!h)
                return std::nullopt;
            return ArchLeaf{h->h4k, pte.writable && h->writable};
        }
        auto h = archHostWalk(mem, ctx.hptRoot, pte.pfn);
        if (!h)
            return std::nullopt;
        cur = h->h4k;
    }
    return std::nullopt;
}

std::string
hex(std::uint64_t v)
{
    std::ostringstream os;
    os << "0x" << std::hex << v;
    return os.str();
}

InvariantViolation
violation(std::string invariant, std::string detail,
          std::uint64_t event_index, Addr va)
{
    InvariantViolation v;
    v.invariant = std::move(invariant);
    v.detail = std::move(detail);
    v.eventIndex = event_index;
    v.va = va;
    return v;
}

} // namespace

std::optional<ArchLeaf>
resolveArch(Machine &m, ProcId pid, Addr va)
{
    const TranslationContext &ctx = m.guestOs().context(pid);
    const PhysMem &mem = m.physMem();

    if (ctx.mode == VirtMode::Native) {
        FrameId cur = ctx.nativeRoot;
        for (unsigned d = 0; d < kPtLevels; ++d) {
            const Pte &pte = mem.table(cur)[ptIndex(va, d)];
            if (!pte.valid)
                return std::nullopt;
            if (d == kPtLevels - 1 || pte.pageSize) {
                std::uint64_t frames =
                    pageBytes(archSizeAtDepth(d)) / kPageBytes;
                return ArchLeaf{pte.pfn + (frameOf(va) % frames),
                                pte.writable};
            }
            cur = pte.pfn;
        }
        return std::nullopt;
    }

    // Range mode translates through the same two-stage tables as
    // nested; segments are a cached view validated against them.
    if (ctx.mode == VirtMode::Nested || ctx.mode == VirtMode::Range ||
        ctx.fullNested) {
        auto root = archHostWalk(mem, ctx.hptRoot, ctx.gptRoot);
        if (!root)
            return std::nullopt;
        return archNestedFrom(mem, ctx, va, 0, root->h4k);
    }

    // Shadow/agile/SHSP: walk the shadow table, honoring switching
    // entries exactly as the hardware walker does (Fig. 4).
    if (ctx.rootSwitch)
        return archNestedFrom(mem, ctx, va, 0, ctx.gptRootBacking);
    FrameId cur = ctx.sptRoot;
    for (unsigned d = 0; d < kPtLevels; ++d) {
        const Pte &pte = mem.table(cur)[ptIndex(va, d)];
        if (!pte.valid)
            return std::nullopt;
        if (pte.switching)
            return archNestedFrom(mem, ctx, va, d + 1, pte.pfn);
        if (d == kPtLevels - 1 || pte.pageSize) {
            std::uint64_t frames =
                pageBytes(archSizeAtDepth(d)) / kPageBytes;
            return ArchLeaf{pte.pfn + (frameOf(va) % frames),
                            pte.writable};
        }
        cur = pte.pfn;
    }
    return std::nullopt;
}

std::optional<InvariantViolation>
checkAccessInvariants(Machine &m, Addr va, bool write,
                      std::uint64_t event_index)
{
    ProcId pid = m.currentProcess();
    GuestOs &gos = m.guestOs();

    FrameId leaf = gos.leafFrame(pid, va);
    if (!leaf) {
        return violation("translation",
                         "access completed but the guest has no "
                         "functional mapping at " + hex(va),
                         event_index, va);
    }
    FrameId expected = gos.isNative() ? leaf : m.vmm()->backing(leaf);
    if (!expected) {
        return violation("translation",
                         "guest frame " + hex(leaf) + " for " + hex(va) +
                             " has no host backing after an access",
                         event_index, va);
    }

    auto arch = resolveArch(m, pid, va);
    if (!arch) {
        return violation("translation",
                         "architectural walk cannot resolve " + hex(va) +
                             " after a completed access",
                         event_index, va);
    }
    if (arch->h4k != expected) {
        return violation("translation",
                         "architectural walk of " + hex(va) +
                             " lands on host frame " + hex(arch->h4k) +
                             " but the functional mapping is backed by " +
                             hex(expected),
                         event_index, va);
    }
    // Hardware may temporarily deny writes the guest allows (shadow
    // dirty tracking, host COW) — resolved through faults — but must
    // never grant a write the guest's tables do not.
    if (arch->writable && !gos.guestMappingWritable(pid, va)) {
        return violation("translation",
                         "hardware grants write access at " + hex(va) +
                             " beyond the guest's permission",
                         event_index, va);
    }

    if (write) {
        if (!arch->writable) {
            return violation("translation",
                             "store retired at " + hex(va) +
                                 " but the final translation is "
                                 "read-only",
                             event_index, va);
        }
        auto gm = gos.process(pid).pt->lookup(va);
        if (!gm || !gm->pte.dirty) {
            return violation("dirty-bit",
                             "store retired at " + hex(va) +
                                 " but the guest leaf dirty bit is "
                                 "clear",
                             event_index, va);
        }
    }
    return std::nullopt;
}

std::optional<InvariantViolation>
checkCrossMachine(Machine &a, Machine &b, Addr va,
                  std::uint64_t event_index)
{
    auto ma = a.guestOs().process(a.currentProcess()).pt->lookup(va);
    auto mb = b.guestOs().process(b.currentProcess()).pt->lookup(va);
    const char *na = virtModeName(a.config().mode);
    const char *nb = virtModeName(b.config().mode);
    if (!ma || !mb) {
        if (!ma && !mb)
            return std::nullopt;
        return violation("lockstep",
                         std::string(ma ? nb : na) +
                             " has no guest mapping at " + hex(va) +
                             " while " + (ma ? na : nb) + " does",
                         event_index, va);
    }
    if (ma->pfn != mb->pfn || ma->size != mb->size) {
        return violation("lockstep",
                         std::string(na) + " maps " + hex(va) +
                             " to guest frame " + hex(ma->pfn) + " but " +
                             nb + " maps it to " + hex(mb->pfn),
                         event_index, va);
    }
    // Accessed bits are TLB-hit-timing dependent (hardware does not
    // architect when they get set); writable/dirty are not.
    if (ma->pte.writable != mb->pte.writable ||
        ma->pte.dirty != mb->pte.dirty) {
        return violation(
            "lockstep",
            std::string(na) + " guest PTE at " + hex(va) + " has W/D " +
                std::to_string(ma->pte.writable) +
                std::to_string(ma->pte.dirty) + " but " + nb + " has " +
                std::to_string(mb->pte.writable) +
                std::to_string(mb->pte.dirty),
            event_index, va);
    }
    return std::nullopt;
}

std::optional<InvariantViolation>
checkCounterInvariants(Machine &m, RunResult &prev,
                       std::uint64_t event_index)
{
    RunResult cur = m.snapshot(prev.workload);
    const char *mode = virtModeName(m.config().mode);

    auto mono = [&](std::uint64_t now, std::uint64_t before,
                    const char *what) -> std::optional<InvariantViolation> {
        if (now < before) {
            return violation("counters",
                             std::string(mode) + " " + what +
                                 " went backwards: " +
                                 std::to_string(before) + " -> " +
                                 std::to_string(now),
                             event_index, 0);
        }
        return std::nullopt;
    };
    if (auto v = mono(cur.walks, prev.walks, "walks"))
        return v;
    if (auto v = mono(cur.tlbMisses, prev.tlbMisses, "tlb misses"))
        return v;
    if (auto v = mono(cur.traps, prev.traps, "traps"))
        return v;
    if (auto v = mono(cur.walkCycles, prev.walkCycles, "walk cycles"))
        return v;
    if (auto v = mono(cur.trapCycles, prev.trapCycles, "trap cycles"))
        return v;
    if (auto v = mono(cur.shootdowns, prev.shootdowns, "shootdowns"))
        return v;
    if (auto v = mono(cur.remoteInvalidations, prev.remoteInvalidations,
                      "remote invalidations")) {
        return v;
    }
    std::uint64_t by_cause = 0;
    for (std::size_t k = 0; k < kNumCoherenceCauses; ++k)
        by_cause += cur.shootdownsByCause[k];
    if (by_cause != cur.shootdowns) {
        return violation("coherence-counters",
                         std::string(mode) +
                             " per-cause shootdowns sum to " +
                             std::to_string(by_cause) + " but the "
                             "aggregate counter is " +
                             std::to_string(cur.shootdowns),
                         event_index, 0);
    }
    // Every shootdown reaches all other vCPUs, so the remote-
    // invalidation count is exactly shootdowns x (vcpus - 1).
    std::uint64_t remotes = m.numVcpus() > 1 ? m.numVcpus() - 1 : 0;
    if (cur.remoteInvalidations != cur.shootdowns * remotes) {
        return violation("coherence-counters",
                         std::string(mode) + " counted " +
                             std::to_string(cur.remoteInvalidations) +
                             " remote invalidations for " +
                             std::to_string(cur.shootdowns) +
                             " shootdowns across " +
                             std::to_string(m.numVcpus()) + " vcpus",
                         event_index, 0);
    }
    for (int i = 0; i < 6; ++i) {
        // Mode-convert traps redirect *future* walks to a different
        // coverage class; they must never rewrite history.
        if (cur.rawCoverage[i] < prev.rawCoverage[i]) {
            return violation("coverage",
                             std::string(mode) + " raw coverage[" +
                                 std::to_string(i) + "] went backwards",
                             event_index, 0);
        }
    }

    double total = 0.0, sum = 0.0;
    for (int i = 0; i < 6; ++i) {
        total += cur.rawCoverage[i];
        sum += cur.coverage[i];
    }
    if (total > 0 && std::fabs(sum - 1.0) > 1e-9) {
        return violation("coverage",
                         std::string(mode) +
                             " coverage fractions sum to " +
                             std::to_string(sum) + ", expected 1",
                         event_index, 0);
    }
    prev = cur;
    return std::nullopt;
}

std::optional<InvariantViolation>
checkTlbResidency(Machine &m, std::uint64_t event_index)
{
    GuestOs &gos = m.guestOs();
    Vmm *vmm = m.vmm();

    std::optional<InvariantViolation> found;
    for (unsigned v = 0; v < m.numVcpus() && !found; ++v) {
        m.tlbOf(v).forEachEntry([&](Addr va, ProcId asid,
                                    const TlbEntry &e, PageSize) {
            if (found)
                return;
            std::string who = "vcpu" + std::to_string(v);
            if (!gos.hasProcess(asid) || !gos.process(asid).alive) {
                found = violation(
                    "stale-tlb",
                    who + " caches " + hex(va) + " for dead asid " +
                        std::to_string(asid) +
                        " (exit shootdown missed)",
                    event_index, va);
                return;
            }
            auto gm = gos.process(asid).pt->lookup(va);
            if (!gm) {
                found = violation(
                    "stale-tlb",
                    who + " caches " + hex(va) + " for asid " +
                        std::to_string(asid) +
                        " but the guest no longer maps it "
                        "(shootdown missed)",
                    event_index, va);
                return;
            }
            if (!e.writable)
                return;
            // Rule 2: a writable entry lets stores retire with no
            // fault, so it must match the *current* guest permission
            // and host backing exactly.
            if (!gm->pte.writable) {
                found = violation(
                    "stale-tlb",
                    who + " caches a writable entry at " + hex(va) +
                        " but the guest PTE is read-only "
                        "(write-protect shootdown missed)",
                    event_index, va);
                return;
            }
            std::uint64_t gframes = pageBytes(gm->size) / kPageBytes;
            FrameId gf = gm->pfn + (frameOf(va) % gframes);
            FrameId expected = gos.isNative() ? gf : vmm->backing(gf);
            if (e.pfn != expected) {
                found = violation(
                    "stale-tlb",
                    who + " caches a writable entry at " + hex(va) +
                        " mapping host frame " + hex(e.pfn) +
                        " but the current backing is " + hex(expected) +
                        " (remap shootdown missed)",
                    event_index, va);
            }
        });
    }
    return found;
}

std::optional<InvariantViolation>
checkSegmentResidency(Machine &m, std::uint64_t event_index)
{
    RangeBackend *rb = m.rangeBackend();
    if (!rb)
        return std::nullopt;
    GuestOs &gos = m.guestOs();
    Vmm *vmm = m.vmm();

    std::optional<InvariantViolation> found;
    for (unsigned v = 0; v < rb->numVcpus() && !found; ++v) {
        rb->forEachSegment(v, [&](const RangeBackend::SegmentReg &seg) {
            if (found)
                return;
            std::string who = "vcpu" + std::to_string(v) +
                              " segment [" + hex(seg.vaBase) + " +" +
                              std::to_string(seg.pages) + "p]";
            if (!gos.hasProcess(seg.asid)) {
                found = violation(
                    "stale-segment",
                    who + " survives for dead asid " +
                        std::to_string(seg.asid) +
                        " (exit invalidation missed)",
                    event_index, seg.vaBase);
                return;
            }
            GuestProcess &p = gos.process(seg.asid);
            for (std::uint64_t i = 0; i < seg.pages; ++i) {
                Addr va = seg.vaBase + i * kPageBytes;
                auto gm = p.pt->lookup(va);
                if (!gm) {
                    found = violation(
                        "stale-segment",
                        who + " covers " + hex(va) +
                            " but the guest no longer maps it "
                            "(munmap invalidation missed)",
                        event_index, va);
                    return;
                }
                std::uint64_t gframes = pageBytes(gm->size) / kPageBytes;
                FrameId gf = gm->pfn + (frameOf(va) % gframes);
                FrameId hb = vmm->backing(gf);
                if (hb != seg.hbase + i) {
                    found = violation(
                        "stale-segment",
                        who + " translates " + hex(va) +
                            " to host frame " + hex(seg.hbase + i) +
                            " but the current backing is " + hex(hb) +
                            " (remap invalidation missed)",
                        event_index, va);
                    return;
                }
            }
        });
    }
    return found;
}

std::optional<InvariantViolation>
checkShadowCoherence(Machine &m, std::uint64_t event_index)
{
    ShadowMgr *smgr = m.shadowMgr();
    if (!smgr)
        return std::nullopt;
    Vmm *vmm = m.vmm();
    bool hw_ad = smgr->config().hwOptAd;

    std::optional<InvariantViolation> found;
    for (ProcId pid : m.guestOs().livePids()) {
        if (found || !smgr->hasProcess(pid))
            continue;
        ShadowMgr::ProcState &st = smgr->state(pid);
        // Fully nested (or root-switched) processes have no shadow
        // entries to be coherent with.
        if (st.ctx.fullNested || st.ctx.rootSwitch)
            continue;
        st.spt->forEachTerminal([&](Addr va, const Pte &spte,
                                    unsigned depth) {
            if (found)
                return;
            if (spte.switching) {
                FrameId gtf = st.gpt->tableFrame(va, depth + 1);
                if (gtf == PhysMem::kNoFrame) {
                    found = violation(
                        "shadow-coherence",
                        "switching entry at " + hex(va) + " depth " +
                            std::to_string(depth) +
                            " but the guest has no PT page below it",
                        event_index, va);
                    return;
                }
                if (vmm->backing(gtf) != spte.pfn) {
                    found = violation(
                        "shadow-coherence",
                        "switching entry at " + hex(va) + " points at " +
                            hex(spte.pfn) + " but the guest PT page " +
                            hex(gtf) + " is backed by " +
                            hex(vmm->backing(gtf)),
                        event_index, va);
                }
                return;
            }
            auto gm = st.gpt->lookup(va);
            if (!gm) {
                found = violation("shadow-coherence",
                                  "shadow leaf at " + hex(va) +
                                      " with no guest mapping",
                                  event_index, va);
                return;
            }
            // The PT page holding the terminal guest entry: staleness
            // is the design for unsynced pages (resynced at the next
            // flush) and nested pages are covered by switching entries.
            FrameId holder = gm->depth == 0
                                 ? st.gptRootGframe
                                 : st.gpt->tableFrame(va, gm->depth);
            auto nit = st.nodes.find(holder);
            if (nit != st.nodes.end() &&
                (nit->second.unsynced || nit->second.nested)) {
                return;
            }

            std::uint64_t gframes = pageBytes(gm->size) / kPageBytes;
            FrameId gf = gm->pfn + (frameOf(va) % gframes);
            FrameId hb = vmm->backing(gf);
            if (hb == 0 || spte.pfn != hb) {
                found = violation(
                    "shadow-coherence",
                    "shadow leaf at " + hex(va) + " maps host frame " +
                        hex(spte.pfn) + " but guest frame " + hex(gf) +
                        " is backed by " + hex(hb),
                    event_index, va);
                return;
            }
            bool expect_w = gm->pte.writable && vmm->hostWritable(gf) &&
                            (gm->pte.dirty || hw_ad);
            if (spte.writable != expect_w) {
                found = violation(
                    "shadow-coherence",
                    "shadow leaf at " + hex(va) + " writable=" +
                        std::to_string(spte.writable) + " but guest W=" +
                        std::to_string(gm->pte.writable) + " D=" +
                        std::to_string(gm->pte.dirty) + " hostW=" +
                        std::to_string(vmm->hostWritable(gf)) +
                        " imply " + std::to_string(expect_w),
                    event_index, va);
                return;
            }
            if (spte.dirty && !gm->pte.dirty) {
                found = violation("shadow-coherence",
                                  "shadow leaf at " + hex(va) +
                                      " is dirty but the guest PTE is "
                                      "clean",
                                  event_index, va);
            }
        });
    }
    return found;
}

} // namespace ap
