/**
 * @file
 * Machine storage reuse across forks of the same config digest.
 *
 * The snapshot fork path used to construct a fresh Machine per cell —
 * re-growing the frame vectors, arena slabs, TLB arrays and stats tree
 * every time — only to overwrite all of it from the frozen image. A
 * MachinePool keeps finished machines parked per config digest and
 * leases them back out: restoreSnapshot into a reused machine is
 * byte-equivalent to restoring into a fresh one (Machine::restoreState
 * abandons the prior life's state), but the allocations and the warmed
 * slabs survive, which is most of the fork path's remaining setup
 * cost. apsimd workers lease one machine per warm digest; benches pass
 * a pool to measure the fork-path delta.
 */

#ifndef AGILEPAGING_SIM_MACHINE_POOL_HH
#define AGILEPAGING_SIM_MACHINE_POOL_HH

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "sim/config.hh"

namespace ap
{

class Machine;

/**
 * Thread-safe pool of idle Machines keyed by simConfigDigest. Leases
 * are RAII: destroying (or releasing) a lease parks the machine for
 * the next same-digest acquire. Idle machines beyond @p maxIdle are
 * dropped least-recently-parked first, so a matrix sweeping many
 * configs cannot pin one resident machine per digest forever.
 */
class MachinePool
{
  public:
    /** @param max_idle most idle machines kept parked (0 = unlimited) */
    explicit MachinePool(std::size_t max_idle = 16)
        : max_idle_(max_idle)
    {
    }

    ~MachinePool();

    MachinePool(const MachinePool &) = delete;
    MachinePool &operator=(const MachinePool &) = delete;

    /** An acquired machine; parks it back into the pool on destroy. */
    class Lease
    {
      public:
        Lease() = default;
        Lease(Lease &&o) noexcept { *this = std::move(o); }
        Lease &
        operator=(Lease &&o) noexcept
        {
            release();
            pool_ = o.pool_;
            digest_ = o.digest_;
            machine_ = std::move(o.machine_);
            o.pool_ = nullptr;
            return *this;
        }
        ~Lease() { release(); }

        Machine &operator*() const { return *machine_; }
        Machine *operator->() const { return machine_.get(); }
        Machine *get() const { return machine_.get(); }
        explicit operator bool() const { return machine_ != nullptr; }

        /** Park the machine now (idempotent). */
        void
        release()
        {
            if (pool_ && machine_)
                pool_->park(digest_, std::move(machine_));
            pool_ = nullptr;
            machine_.reset();
        }

      private:
        friend class MachinePool;
        Lease(MachinePool *pool, std::uint64_t digest,
              std::unique_ptr<Machine> m)
            : pool_(pool), digest_(digest), machine_(std::move(m))
        {
        }

        MachinePool *pool_ = nullptr;
        std::uint64_t digest_ = 0;
        std::unique_ptr<Machine> machine_;
    };

    /**
     * Lease a machine for @p cfg: a parked same-digest machine if one
     * exists (its state is stale — callers restore a snapshot into it
     * before use), else a newly constructed one.
     */
    Lease acquire(const SimConfig &cfg);

    /** Machines constructed because no idle one matched. */
    std::uint64_t creates() const;
    /** Acquires served by a parked machine. */
    std::uint64_t reuses() const;
    /** Idle machines dropped by the max_idle bound. */
    std::uint64_t drops() const;
    /** Machines currently parked. */
    std::size_t idle() const;

  private:
    void park(std::uint64_t digest, std::unique_ptr<Machine> m);

    struct Parked
    {
        std::uint64_t digest = 0;
        std::unique_ptr<Machine> machine;
    };

    mutable std::mutex mu_;
    /** Idle machines, least recently parked first. */
    std::list<Parked> idle_;
    /** digest -> parked entries (iterators into idle_). */
    std::unordered_map<std::uint64_t, std::vector<std::list<Parked>::iterator>>
        by_digest_;
    std::size_t max_idle_;
    std::uint64_t creates_ = 0;
    std::uint64_t reuses_ = 0;
    std::uint64_t drops_ = 0;
};

} // namespace ap

#endif // AGILEPAGING_SIM_MACHINE_POOL_HH
