/**
 * @file
 * Per-run metadata for the batched access path.
 *
 * A compiled trace knows, once per compile, facts about each access
 * run that the replay loop would otherwise rediscover per access:
 * the page-sized VA window each stream (data / instruction fetch)
 * stays inside, and whether the run writes. Machine::runAccessBatch
 * uses them for a run-level constant-translation fast path — when
 * both streams provably re-hit their last translations and no policy
 * interval lands inside the run, the whole run retires in O(1) with
 * one bulk stat add per stream. Every field is conservative for any
 * sub-range of the run, so the multi-vCPU sub-batches can reuse the
 * whole-run hint.
 */

#ifndef AGILEPAGING_SIM_ACCESS_HINT_HH
#define AGILEPAGING_SIM_ACCESS_HINT_HH

#include "base/types.hh"

namespace ap
{

/** What a compiler pass can prove about one access run. */
struct AccessRunHint
{
    /** First data (non-fetch) VA of the run (0 if no data access). */
    Addr dataBase = 0;
    /** OR of (va ^ dataBase) over the run's data accesses: for any
     *  page mask M, (dataDiffOr & M) == 0 proves every data access
     *  lands in dataBase's page of that size. */
    Addr dataDiffOr = 0;
    /** First instruction-fetch VA of the run (0 if no fetch). */
    Addr instrBase = 0;
    /** OR of (va ^ instrBase) over the run's fetches. */
    Addr instrDiffOr = 0;
    /** Any access in the run is a write (writes are always data). */
    bool anyWrite = false;
    /** The run contains at least one data access. */
    bool anyData = false;
    /** The run contains at least one instruction fetch. */
    bool anyInstr = false;
};

} // namespace ap

#endif // AGILEPAGING_SIM_ACCESS_HINT_HH
