/**
 * @file
 * PARSEC-shaped workloads from Table V: canneal and dedup.
 */

#ifndef AGILEPAGING_WORKLOADS_PARSEC_WORKLOADS_HH
#define AGILEPAGING_WORKLOADS_PARSEC_WORKLOADS_HH

#include <vector>

#include "workloads/access_pattern.hh"
#include "workloads/workload.hh"

namespace ap
{

/**
 * canneal (780 MB): cache-aggressive simulated annealing. Random
 * element swaps (read-modify-write pairs) over a large netlist;
 * negligible page-table churn.
 */
class CannealWorkload : public Workload
{
  public:
    explicit CannealWorkload(const WorkloadParams &params);

    std::string name() const override { return "canneal"; }
    void init(WorkloadHost &host) override;
    void warmup(WorkloadHost &host) override;
    bool step(WorkloadHost &host) override;

  private:
    std::uint64_t ops_done_ = 0;
    Addr netlist_ = 0;
    std::unique_ptr<ZipfRegion> hot_;
    Addr pending_swap_ = 0;
};

/**
 * dedup (1.4 GB): pipelined deduplication/compression. The paper's
 * worst shadow-paging case (57% of time in the VMM servicing page
 * table updates): constant buffer mmap/munmap churn, duplicate
 * file-backed content that the VMM merges and COW-breaks, and
 * fork/join worker episodes.
 */
class DedupWorkload : public Workload
{
  public:
    explicit DedupWorkload(const WorkloadParams &params);

    std::string name() const override { return "dedup"; }
    void init(WorkloadHost &host) override;
    void warmup(WorkloadHost &host) override;
    bool step(WorkloadHost &host) override;

  private:
    /** Pipeline buffer slot size (8 pages). */
    static constexpr Addr kChunkBytes = 32u << 10;

    std::uint64_t ops_done_ = 0;
    Addr hash_table_ = 0;
    std::unique_ptr<ZipfRegion> hash_hot_;
    std::vector<Addr> chunks_;
    /** Skewed recycling of pipeline buffers. */
    std::unique_ptr<ZipfSampler> chunk_picker_;
    Addr fill_base_ = 0;
    Addr fill_remaining_ = 0;
    std::uint64_t next_file_block_ = 0;
};

} // namespace ap

#endif // AGILEPAGING_WORKLOADS_PARSEC_WORKLOADS_HH
