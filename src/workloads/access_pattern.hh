/**
 * @file
 * Reusable access-pattern generators for the synthetic workloads.
 */

#ifndef AGILEPAGING_WORKLOADS_ACCESS_PATTERN_HH
#define AGILEPAGING_WORKLOADS_ACCESS_PATTERN_HH

#include "base/rng.hh"
#include "base/types.hh"

namespace ap
{

/**
 * Zipf-popular page picker over a region: models skewed data
 * structures (key-value stores, hash tables).
 */
class ZipfRegion
{
  public:
    /**
     * @param base,length region of gVA space
     * @param theta Zipf skew (0.99 typical)
     * @param shuffle_seed permutes rank->page so hot pages spread out
     */
    ZipfRegion(Addr base, Addr length, double theta,
               std::uint64_t shuffle_seed);

    /** Pick a byte address. */
    Addr pick(Rng &rng) const;

    Addr base() const { return base_; }
    Addr length() const { return length_; }

  private:
    Addr base_;
    Addr length_;
    std::uint64_t pages_;
    ZipfSampler zipf_;
    /** Cheap multiplicative permutation of page ranks. */
    std::uint64_t mult_;
};

/**
 * Pointer-chase walker with locality: most steps stay near the current
 * position, some jump far (graph/tree traversal shape).
 */
class PointerChase
{
  public:
    /**
     * @param local_prob probability a step stays within local_window
     */
    PointerChase(Addr base, Addr length, double local_prob,
                 Addr local_window);

    Addr next(Rng &rng);

  private:
    Addr base_;
    Addr length_;
    double local_prob_;
    Addr window_;
    Addr pos_ = 0;
};

/**
 * Streaming scanner: sequential sweep with configurable stride,
 * wrapping at the region end (defeats the TLB for big regions).
 */
class StreamScan
{
  public:
    StreamScan(Addr base, Addr length, Addr stride);

    Addr next();

  private:
    Addr base_;
    Addr length_;
    Addr stride_;
    Addr offset_ = 0;
};

} // namespace ap

#endif // AGILEPAGING_WORKLOADS_ACCESS_PATTERN_HH
