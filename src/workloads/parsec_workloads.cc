/**
 * @file
 * PARSEC-shaped workload implementations.
 */

#include "workloads/parsec_workloads.hh"

namespace ap
{

namespace
{
constexpr Addr kHotBytes = 1u << 20;
} // namespace

// ---------------------------------------------------------------------
// canneal
// ---------------------------------------------------------------------

CannealWorkload::CannealWorkload(const WorkloadParams &params)
    : Workload(params)
{
}

void
CannealWorkload::init(WorkloadHost &host)
{
    netlist_ = host.mmap(params_.footprintBytes, true, false, 0);
    hot_ = std::make_unique<ZipfRegion>(netlist_, kHotBytes, 0.8,
                                        params_.seed);
}

void
CannealWorkload::warmup(WorkloadHost &host)
{
    touchAll(host, netlist_, params_.footprintBytes, true);
}

bool
CannealWorkload::step(WorkloadHost &host)
{
    Rng &rng = host.rng();
    if (pending_swap_) {
        // Second half of a swap: write back the partner element.
        host.access(pending_swap_, true);
        pending_swap_ = 0;
    } else if (rng.chance(0.0055)) {
        // Pick two random netlist elements; read one now, write the
        // other next step (the swap).
        host.access(netlist_ + rng.nextBelow(params_.footprintBytes),
                    false);
        pending_swap_ =
            netlist_ + rng.nextBelow(params_.footprintBytes);
    } else {
        host.access(hot_->pick(rng), rng.chance(0.4));
    }
    return ++ops_done_ < params_.operations;
}

// ---------------------------------------------------------------------
// dedup
// ---------------------------------------------------------------------

DedupWorkload::DedupWorkload(const WorkloadParams &params)
    : Workload(params)
{
}

void
DedupWorkload::init(WorkloadHost &host)
{
    hash_table_ = host.mmap(params_.footprintBytes / 2, true, false, 0);
    hash_hot_ = std::make_unique<ZipfRegion>(hash_table_, kHotBytes, 0.9,
                                             params_.seed);
    // Pipeline buffer slots; their address space is recycled hard.
    std::uint64_t nslots = (params_.footprintBytes / 2) / kChunkBytes;
    for (std::uint64_t i = 0; i < nslots; ++i) {
        Addr base = host.mmap(kChunkBytes, true, true,
                              /*file_id=*/500 + (i % 24));
        if (base)
            chunks_.push_back(base);
    }
    chunk_picker_ = std::make_unique<ZipfSampler>(
        chunks_.empty() ? 1 : chunks_.size(), 0.99);
}

void
DedupWorkload::warmup(WorkloadHost &host)
{
    touchAll(host, hash_table_, params_.footprintBytes / 2, true);
    for (Addr chunk : chunks_)
        touchAll(host, chunk, kChunkBytes, true);
}

bool
DedupWorkload::step(WorkloadHost &host)
{
    Rng &rng = host.rng();
    ++ops_done_;

    if (fill_remaining_ > 0) {
        host.access(fill_base_ + (kChunkBytes - fill_remaining_), true);
        fill_remaining_ =
            fill_remaining_ > 1024 ? fill_remaining_ - 1024 : 0;
        return ops_done_ < params_.operations;
    }
    if (!chunks_.empty() && rng.chance(1.0 / 6000)) {
        // Retire and recycle one pipeline buffer (hot buffers recycle
        // most). Chunks draw from a small set of file blocks, so
        // content repeats heavily.
        Addr base = chunks_[chunk_picker_->sample(rng)];
        std::uint64_t block = next_file_block_++ % 24;
        host.munmap(base, kChunkBytes);
        host.mmapAt(base, kChunkBytes, true, true, 500 + block);
        fill_base_ = base;
        fill_remaining_ = kChunkBytes;
        return ops_done_ < params_.operations;
    }

    if (rng.chance(1.0 / 1500000)) {
        // VMM content scan merges the duplicate chunk pages.
        host.sharePagesScan();
        return ops_done_ < params_.operations;
    }
    if (rng.chance(1.0 / 500000)) {
        // Fork/join worker stage touching shared state (COW breaks).
        host.forkTouchExit(12);
        return ops_done_ < params_.operations;
    }
    if (rng.chance(0.009)) {
        // Cold hash-table probe (the dedup index is huge and sparse).
        host.access(hash_table_ +
                        rng.nextBelow(params_.footprintBytes / 2),
                    rng.chance(0.5));
    } else if (!chunks_.empty() && rng.chance(0.006)) {
        Addr base = chunks_[rng.nextBelow(chunks_.size())];
        host.access(base + rng.nextBelow(kChunkBytes), rng.chance(0.5));
    } else {
        host.access(hash_hot_->pick(rng), rng.chance(0.5));
    }
    return ops_done_ < params_.operations;
}

} // namespace ap
