/**
 * @file
 * SPEC-shaped workload implementations.
 *
 * Rate constants are calibrated so the native-4K page-walk overheads
 * land in the neighbourhood the paper reports (Fig. 5): mcf highest,
 * astar moderate, gcc modest but with the highest PT-update rate.
 * Churny workloads recycle fixed VA slots (as allocators do), so the
 * same page-table regions keep changing — the behaviour agile paging's
 * spatial policy exploits.
 */

#include "workloads/spec_workloads.hh"

namespace ap
{

namespace
{
constexpr Addr kHotBytes = 1u << 20;       // fits comfortably in the TLBs
constexpr Addr kCodeBytes = 512u << 10;
constexpr double kCodeFetchProb = 0.10;
} // namespace

// ---------------------------------------------------------------------
// astar
// ---------------------------------------------------------------------

AstarWorkload::AstarWorkload(const WorkloadParams &params)
    : Workload(params)
{
}

void
AstarWorkload::init(WorkloadHost &host)
{
    heap_ = host.mmap(params_.footprintBytes, true, false, 0);
    code_ = host.mmap(kCodeBytes, false, true, /*file_id=*/101);
    hot_ = std::make_unique<ZipfRegion>(heap_, kHotBytes, 0.8,
                                        params_.seed);
    cold_ = std::make_unique<PointerChase>(heap_, params_.footprintBytes,
                                           0.70, 1u << 20);
    code_pages_ =
        std::make_unique<ZipfRegion>(code_, kCodeBytes, 0.9, params_.seed);
}

void
AstarWorkload::warmup(WorkloadHost &host)
{
    touchAll(host, heap_, params_.footprintBytes, true);
    touchAll(host, code_, kCodeBytes, false);
}

bool
AstarWorkload::step(WorkloadHost &host)
{
    Rng &rng = host.rng();
    if (rng.chance(kCodeFetchProb)) {
        host.instrFetch(code_pages_->pick(rng));
    } else if (rng.chance(0.0090)) {
        host.access(cold_->next(rng), rng.chance(0.15));
    } else {
        host.access(hot_->pick(rng), rng.chance(0.15));
    }
    return ++ops_done_ < params_.operations;
}

// ---------------------------------------------------------------------
// gcc
// ---------------------------------------------------------------------

GccWorkload::GccWorkload(const WorkloadParams &params) : Workload(params)
{
}

void
GccWorkload::init(WorkloadHost &host)
{
    // Large code footprint (cc1 is several MB of text) with the very
    // skewed reuse code fetches show.
    code_ = host.mmap(2u << 20, false, true, /*file_id=*/102);
    Addr heap = host.mmap(kHotBytes, true, false, 0);
    hot_ = std::make_unique<ZipfRegion>(heap, kHotBytes, 0.8, params_.seed);
    code_pages_ =
        std::make_unique<ZipfRegion>(code_, 2u << 20, 1.30, params_.seed);
    // Allocation slots: the compiler's obstacks recycle address space.
    std::uint64_t nslots = params_.footprintBytes / kSlotBytes;
    for (std::uint64_t i = 0; i < nslots; ++i) {
        Addr base = host.mmap(kSlotBytes, true, false, 0);
        if (base)
            slots_.push_back(base);
    }
    slot_picker_ = std::make_unique<ZipfSampler>(
        slots_.empty() ? 1 : slots_.size(), 0.99);
}

void
GccWorkload::warmup(WorkloadHost &host)
{
    touchAll(host, code_, 2u << 20, false);
    touchAll(host, hot_->base(), hot_->length(), true);
    for (Addr slot : slots_)
        touchAll(host, slot, kSlotBytes, true);
}

bool
GccWorkload::step(WorkloadHost &host)
{
    Rng &rng = host.rng();
    ++ops_done_;

    if (fill_remaining_ > 0) {
        // Sequentially write the recycled slot (faulting pages in).
        host.access(fill_base_ + (kSlotBytes - fill_remaining_), true);
        fill_remaining_ = fill_remaining_ > 512 ? fill_remaining_ - 512 : 0;
        return ops_done_ < params_.operations;
    }
    if (!slots_.empty() && rng.chance(1.0 / 45000)) {
        // Retire one allocation slot and recycle its address space —
        // the page-table churn that hurts shadow paging. Recycling is
        // strongly skewed toward the hottest slots, so the churn stays
        // spatially concentrated (the property agile paging exploits).
        Addr base = slots_[slot_picker_->sample(rng)];
        host.munmap(base, kSlotBytes);
        host.mmapAt(base, kSlotBytes, true, false, 0);
        fill_base_ = base;
        fill_remaining_ = kSlotBytes;
        return ops_done_ < params_.operations;
    }

    if (rng.chance(0.25)) {
        host.instrFetch(code_pages_->pick(rng));
    } else if (!slots_.empty() && rng.chance(0.0042)) {
        Addr base = slots_[rng.nextBelow(slots_.size())];
        host.access(base + rng.nextBelow(kSlotBytes), rng.chance(0.3));
    } else {
        host.access(hot_->pick(rng), rng.chance(0.3));
    }
    return ops_done_ < params_.operations;
}

// ---------------------------------------------------------------------
// mcf
// ---------------------------------------------------------------------

McfWorkload::McfWorkload(const WorkloadParams &params) : Workload(params)
{
}

void
McfWorkload::init(WorkloadHost &host)
{
    arena_ = host.mmap(params_.footprintBytes, true, false, 0);
    hot_ = std::make_unique<ZipfRegion>(arena_, kHotBytes, 0.8,
                                        params_.seed);
}

void
McfWorkload::warmup(WorkloadHost &host)
{
    touchAll(host, arena_, params_.footprintBytes, true);
}

bool
McfWorkload::step(WorkloadHost &host)
{
    Rng &rng = host.rng();
    if (rng.chance(0.022)) {
        // Cold pointer dereference anywhere in the arena.
        host.access(arena_ + rng.nextBelow(params_.footprintBytes),
                    rng.chance(0.1));
    } else {
        host.access(hot_->pick(rng), rng.chance(0.1));
    }
    return ++ops_done_ < params_.operations;
}

} // namespace ap
