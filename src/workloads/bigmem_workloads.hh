/**
 * @file
 * Big-memory and BioBench workloads from Table V: graph500,
 * memcached, and tigr.
 */

#ifndef AGILEPAGING_WORKLOADS_BIGMEM_WORKLOADS_HH
#define AGILEPAGING_WORKLOADS_BIGMEM_WORKLOADS_HH

#include <vector>

#include "workloads/access_pattern.hh"
#include "workloads/workload.hh"

namespace ap
{

/**
 * graph500 (73 GB): graph generation, compression, BFS. A sequential-
 * write generation phase (all demand faults up front) followed by a
 * random-read search phase over the biggest footprint in the suite;
 * near-zero PT churn afterwards.
 */
class Graph500Workload : public Workload
{
  public:
    explicit Graph500Workload(const WorkloadParams &params);

    std::string name() const override { return "graph500"; }
    void init(WorkloadHost &host) override;
    void warmup(WorkloadHost &host) override;
    bool step(WorkloadHost &host) override;

  private:
    std::uint64_t ops_done_ = 0;
    Addr graph_ = 0;
    std::unique_ptr<ZipfRegion> hot_;
};

/**
 * memcached (75 GB): in-memory key-value cache. Zipf-popular key
 * lookups over a large, *growing* slab arena, periodic evictions under
 * memory pressure (reference-bit scans — PT writes), and frequent
 * yields to the network stack (guest context switches). High overhead
 * under shadow paging from both interventions and context switches.
 */
class MemcachedWorkload : public Workload
{
  public:
    explicit MemcachedWorkload(const WorkloadParams &params);

    std::string name() const override { return "memcached"; }
    void init(WorkloadHost &host) override;
    void warmup(WorkloadHost &host) override;
    bool step(WorkloadHost &host) override;

  private:
    std::uint64_t ops_done_ = 0;
    std::vector<Addr> slabs_;
    Addr slab_bytes_ = 0;
    std::unique_ptr<ZipfRegion> keys_;
    std::unique_ptr<ZipfRegion> hot_;
    void rebuildKeyPicker(std::uint64_t seed);
};

/**
 * tigr (610 MB): sequence-assembly (BioBench). Long streaming scans
 * over reference arrays mixed with random index lookups; read-mostly,
 * stable page tables.
 */
class TigrWorkload : public Workload
{
  public:
    explicit TigrWorkload(const WorkloadParams &params);

    std::string name() const override { return "tigr"; }
    void init(WorkloadHost &host) override;
    void warmup(WorkloadHost &host) override;
    bool step(WorkloadHost &host) override;

  private:
    std::uint64_t ops_done_ = 0;
    Addr sequences_ = 0;
    std::unique_ptr<StreamScan> stream_;
    std::unique_ptr<ZipfRegion> hot_;
};

} // namespace ap

#endif // AGILEPAGING_WORKLOADS_BIGMEM_WORKLOADS_HH
