/**
 * @file
 * Access-pattern generator implementations.
 */

#include "workloads/access_pattern.hh"

#include "base/logging.hh"

namespace ap
{

ZipfRegion::ZipfRegion(Addr base, Addr length, double theta,
                       std::uint64_t shuffle_seed)
    : base_(base),
      length_(length),
      pages_(length / kPageBytes),
      zipf_(length / kPageBytes ? length / kPageBytes : 1, theta),
      mult_(shuffle_seed | 1) // odd => invertible mod 2^k
{
    ap_assert(length >= kPageBytes, "ZipfRegion needs at least one page");
}

Addr
ZipfRegion::pick(Rng &rng) const
{
    std::uint64_t rank = zipf_.sample(rng);
    // Spread popular ranks across the region with an odd multiplier.
    std::uint64_t page = (rank * mult_) % pages_;
    Addr offset = rng.nextBelow(kPageBytes);
    return base_ + page * kPageBytes + offset;
}

PointerChase::PointerChase(Addr base, Addr length, double local_prob,
                           Addr local_window)
    : base_(base),
      length_(length),
      local_prob_(local_prob),
      window_(local_window)
{
    ap_assert(length > 0, "empty PointerChase region");
}

Addr
PointerChase::next(Rng &rng)
{
    if (rng.chance(local_prob_)) {
        Addr delta = rng.nextBelow(window_);
        pos_ = (pos_ + delta) % length_;
    } else {
        pos_ = rng.nextBelow(length_);
    }
    return base_ + pos_;
}

StreamScan::StreamScan(Addr base, Addr length, Addr stride)
    : base_(base), length_(length), stride_(stride)
{
    ap_assert(stride > 0 && length > 0, "bad StreamScan geometry");
}

Addr
StreamScan::next()
{
    Addr a = base_ + offset_;
    offset_ += stride_;
    if (offset_ >= length_)
        offset_ = 0;
    return a;
}

} // namespace ap
