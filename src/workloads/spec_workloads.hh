/**
 * @file
 * SPEC CPU2006-shaped workloads from Table V: astar, gcc, mcf.
 *
 * Each class reproduces the benchmark's *memory-system* profile, not
 * its computation: a hot working set that mostly hits the TLB, a cold
 * access stream with the benchmark's characteristic pattern and rate
 * (tuned to the paper's measured native overheads), and the
 * benchmark's page-table-update behaviour.
 */

#ifndef AGILEPAGING_WORKLOADS_SPEC_WORKLOADS_HH
#define AGILEPAGING_WORKLOADS_SPEC_WORKLOADS_HH

#include <vector>

#include "workloads/access_pattern.hh"
#include "workloads/workload.hh"

namespace ap
{

/**
 * astar (350 MB): graph path-finding. Pointer chases with moderate
 * locality over a stable heap; almost no page-table churn.
 */
class AstarWorkload : public Workload
{
  public:
    explicit AstarWorkload(const WorkloadParams &params);

    std::string name() const override { return "astar"; }
    void init(WorkloadHost &host) override;
    void warmup(WorkloadHost &host) override;
    bool step(WorkloadHost &host) override;

  private:
    std::uint64_t ops_done_ = 0;
    Addr heap_ = 0;
    Addr code_ = 0;
    std::unique_ptr<ZipfRegion> hot_;
    std::unique_ptr<PointerChase> cold_;
    std::unique_ptr<ZipfRegion> code_pages_;
};

/**
 * gcc (885 MB): compiler. Allocation-heavy: regions are mapped,
 * filled, then discarded; large code footprint; page tables change
 * constantly (the shadow-paging pain case among SPEC workloads).
 */
class GccWorkload : public Workload
{
  public:
    explicit GccWorkload(const WorkloadParams &params);

    std::string name() const override { return "gcc"; }
    void init(WorkloadHost &host) override;
    void warmup(WorkloadHost &host) override;
    bool step(WorkloadHost &host) override;

  private:
    /** Recycled allocation-slot size (8 pages). */
    static constexpr Addr kSlotBytes = 32u << 10;

    std::uint64_t ops_done_ = 0;
    Addr code_ = 0;
    std::unique_ptr<ZipfRegion> hot_;
    std::unique_ptr<ZipfRegion> code_pages_;
    std::vector<Addr> slots_;
    /** Skewed recycling: hot obstack slots churn far more often. */
    std::unique_ptr<ZipfSampler> slot_picker_;
    Addr fill_base_ = 0;
    Addr fill_remaining_ = 0;
};

/**
 * mcf (1.7 GB): network simplex. Near-uniform pointer dereferences
 * over a very large arena; the highest TLB-miss overhead in Table V
 * and essentially no page-table updates after initialization.
 */
class McfWorkload : public Workload
{
  public:
    explicit McfWorkload(const WorkloadParams &params);

    std::string name() const override { return "mcf"; }
    void init(WorkloadHost &host) override;
    void warmup(WorkloadHost &host) override;
    bool step(WorkloadHost &host) override;

  private:
    std::uint64_t ops_done_ = 0;
    Addr arena_ = 0;
    std::unique_ptr<ZipfRegion> hot_;
};

} // namespace ap

#endif // AGILEPAGING_WORKLOADS_SPEC_WORKLOADS_HH
