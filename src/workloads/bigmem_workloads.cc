/**
 * @file
 * Big-memory workload implementations.
 */

#include "workloads/bigmem_workloads.hh"

namespace ap
{

namespace
{
constexpr Addr kHotBytes = 1u << 20;
} // namespace

// ---------------------------------------------------------------------
// graph500
// ---------------------------------------------------------------------

Graph500Workload::Graph500Workload(const WorkloadParams &params)
    : Workload(params)
{
}

void
Graph500Workload::init(WorkloadHost &host)
{
    graph_ = host.mmap(params_.footprintBytes, true, false, 0);
    hot_ = std::make_unique<ZipfRegion>(graph_, kHotBytes, 0.8,
                                        params_.seed);
}

void
Graph500Workload::warmup(WorkloadHost &host)
{
    // Edge-generation phase: sequential stores populate the graph.
    touchAll(host, graph_, params_.footprintBytes, true);
}

bool
Graph500Workload::step(WorkloadHost &host)
{
    Rng &rng = host.rng();
    ++ops_done_;
    // BFS phase: visited-set hits plus random neighbour chases.
    if (rng.chance(0.017)) {
        host.access(graph_ + rng.nextBelow(params_.footprintBytes),
                    rng.chance(0.15));
    } else {
        host.access(hot_->pick(rng), rng.chance(0.15));
    }
    return ops_done_ < params_.operations;
}

// ---------------------------------------------------------------------
// memcached
// ---------------------------------------------------------------------

MemcachedWorkload::MemcachedWorkload(const WorkloadParams &params)
    : Workload(params)
{
}

void
MemcachedWorkload::rebuildKeyPicker(std::uint64_t seed)
{
    // One logical Zipf space over all slabs; pick() maps into the
    // first slab's span then we re-base onto a random slab.
    keys_ = std::make_unique<ZipfRegion>(0, slab_bytes_, 0.99, seed);
}

void
MemcachedWorkload::init(WorkloadHost &host)
{
    // Start with a quarter of the eventual footprint; grow online.
    slab_bytes_ = params_.footprintBytes / 4;
    slabs_.push_back(host.mmap(slab_bytes_, true, false, 0));
    hot_ = std::make_unique<ZipfRegion>(slabs_[0], kHotBytes, 0.9,
                                        params_.seed);
    rebuildKeyPicker(params_.seed);
}

void
MemcachedWorkload::warmup(WorkloadHost &host)
{
    touchAll(host, slabs_[0], slab_bytes_, true);
}

bool
MemcachedWorkload::step(WorkloadHost &host)
{
    Rng &rng = host.rng();
    ++ops_done_;

    // Cache growth: add slabs until the full footprint is resident.
    if (slabs_.size() < 4 &&
        ops_done_ > (params_.operations / 5) * slabs_.size()) {
        Addr slab = host.mmap(params_.footprintBytes / 4, true, false, 0);
        if (slab)
            slabs_.push_back(slab);
    }
    // The network daemon: frequent guest context switches.
    if (rng.chance(1.0 / 2500)) {
        host.yield();
        return ops_done_ < params_.operations;
    }
    // Memory pressure: the guest scans reference bits and evicts.
    if (rng.chance(1.0 / 20000)) {
        host.reclaimTick(256);
        return ops_done_ < params_.operations;
    }
    if (rng.chance(0.013)) {
        // Key lookup: Zipf over the whole (grown) arena.
        Addr off = keys_->pick(rng);
        Addr slab = slabs_[off / (params_.footprintBytes / 4) %
                           slabs_.size()];
        host.access(slab + (off % (params_.footprintBytes / 4)),
                    rng.chance(0.3));
    } else {
        host.access(hot_->pick(rng), rng.chance(0.3));
    }
    return ops_done_ < params_.operations;
}

// ---------------------------------------------------------------------
// tigr
// ---------------------------------------------------------------------

TigrWorkload::TigrWorkload(const WorkloadParams &params) : Workload(params)
{
}

void
TigrWorkload::init(WorkloadHost &host)
{
    sequences_ = host.mmap(params_.footprintBytes, true, true,
                           /*file_id=*/900);
    // Stride chosen so roughly one access in 200 opens a new page.
    stream_ = std::make_unique<StreamScan>(sequences_,
                                           params_.footprintBytes, 96);
    hot_ = std::make_unique<ZipfRegion>(sequences_, kHotBytes, 0.8,
                                        params_.seed);
}

void
TigrWorkload::warmup(WorkloadHost &host)
{
    touchAll(host, sequences_, params_.footprintBytes, false);
}

bool
TigrWorkload::step(WorkloadHost &host)
{
    Rng &rng = host.rng();
    if (rng.chance(0.55)) {
        // Streaming scan through the sequence database.
        host.access(stream_->next(), false);
    } else if (rng.chance(0.0065)) {
        // Random suffix-index lookup.
        host.access(sequences_ + rng.nextBelow(params_.footprintBytes),
                    false);
    } else {
        host.access(hot_->pick(rng), rng.chance(0.05));
    }
    return ++ops_done_ < params_.operations;
}

} // namespace ap
