/**
 * @file
 * Workload registry: Table V name to generator.
 */

#include "workloads/workload.hh"

#include "workloads/bigmem_workloads.hh"
#include "workloads/coherence_workloads.hh"
#include "workloads/parsec_workloads.hh"
#include "workloads/spec_workloads.hh"

namespace ap
{

std::vector<std::string>
workloadNames()
{
    // Figure 5 order: big-memory row first, then the SPEC/PARSEC row.
    return {"graph500", "mcf",   "tigr",  "dedup",
            "memcached", "canneal", "astar", "gcc"};
}

std::unique_ptr<Workload>
makeWorkload(const std::string &name, const WorkloadParams &params)
{
    if (name == "astar")
        return std::make_unique<AstarWorkload>(params);
    if (name == "gcc")
        return std::make_unique<GccWorkload>(params);
    if (name == "mcf")
        return std::make_unique<McfWorkload>(params);
    if (name == "canneal")
        return std::make_unique<CannealWorkload>(params);
    if (name == "dedup")
        return std::make_unique<DedupWorkload>(params);
    if (name == "graph500")
        return std::make_unique<Graph500Workload>(params);
    if (name == "memcached")
        return std::make_unique<MemcachedWorkload>(params);
    if (name == "tigr")
        return std::make_unique<TigrWorkload>(params);
    // Coherence-stress workloads: constructible by name for the
    // multi-vCPU benches/tests, deliberately NOT in workloadNames()
    // so the Figure 5 matrix (and its golden hashes) is unchanged.
    if (name == "shootdown_storm")
        return std::make_unique<ShootdownStormWorkload>(params);
    if (name == "reclaim_scan")
        return std::make_unique<ReclaimScanWorkload>(params);
    if (name == "page_migration")
        return std::make_unique<PageMigrationWorkload>(params);
    return nullptr;
}

} // namespace ap
