/**
 * @file
 * Workload interface.
 *
 * A workload is a synthetic guest application that reproduces the
 * memory-system behaviour of one of the paper's Table V benchmarks:
 * its TLB-miss profile (footprint and access pattern) and its page-
 * table-update profile (mmap/munmap churn, COW, forks, reclaim
 * pressure). Workloads talk to the simulated machine through the
 * WorkloadHost interface and are driven one step at a time, so the
 * machine stays in control of scheduling, policy intervals, and cost
 * accounting.
 */

#ifndef AGILEPAGING_WORKLOADS_WORKLOAD_HH
#define AGILEPAGING_WORKLOADS_WORKLOAD_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "base/rng.hh"
#include "base/types.hh"

namespace ap
{

/**
 * Services the machine provides to a running workload. All addresses
 * are guest virtual addresses of the workload's process.
 */
class WorkloadHost
{
  public:
    virtual ~WorkloadHost() = default;

    /**
     * Map @p length bytes.
     * @param file_backed pages get content determined by (file_id,
     *        offset) and can deduplicate; anonymous pages are unique
     * @return base address (0 on failure)
     */
    virtual Addr mmap(Addr length, bool writable, bool file_backed,
                      std::uint64_t file_id) = 0;

    /**
     * Map at a fixed base (reusing a previously unmapped slot, the way
     * allocators recycle address space). @return success.
     */
    virtual bool mmapAt(Addr base, Addr length, bool writable,
                        bool file_backed, std::uint64_t file_id) = 0;

    /** Unmap a region previously returned by mmap. */
    virtual void munmap(Addr base, Addr length) = 0;

    /** One data access (drives the TLB/walker and costs 1 instr). */
    virtual void access(Addr va, bool write) = 0;

    /** One instruction fetch (exercises the ITLB side). */
    virtual void instrFetch(Addr va) = 0;

    /** Execute @p instructions without memory-system activity. */
    virtual void compute(std::uint64_t instructions) = 0;

    /**
     * Fork a child, context-switch to it, have it write @p touch_pages
     * random mapped pages (breaking COW), exit it, and switch back —
     * the fork/COW episode shape of dedup-style pipelines.
     */
    virtual void forkTouchExit(std::uint64_t touch_pages) = 0;

    /** Guest context switch to a background process and back. */
    virtual void yield() = 0;

    /** Guest memory-pressure tick: clock-scan up to @p max_pages. */
    virtual void reclaimTick(std::uint64_t max_pages) = 0;

    /** VMM content-based page-sharing scan (Section V). */
    virtual void sharePagesScan() = 0;

    /** Deterministic per-run random stream. */
    virtual Rng &rng() = 0;
};

/** Size/length knobs shared by all workloads. */
struct WorkloadParams
{
    /** Scaled data footprint (the paper's 350 MB-75 GB, laptop-sized).*/
    std::uint64_t footprintBytes = 32ull << 20;
    /** Total memory operations to issue. */
    std::uint64_t operations = 1'000'000;
    std::uint64_t seed = 42;
};

/**
 * Base class. Subclasses implement the per-benchmark behaviour.
 */
class Workload
{
  public:
    explicit Workload(const WorkloadParams &params) : params_(params) {}
    virtual ~Workload() = default;

    /** Table V benchmark name ("mcf", "memcached", ...). */
    virtual std::string name() const = 0;

    /** Set up the address space (mmaps). */
    virtual void init(WorkloadHost &host) = 0;

    /**
     * Populate phase, run before measurement begins: fault in the
     * working data so the measured region reflects steady state (the
     * paper's real-hardware runs amortize cold faults over minutes of
     * execution; whole-run simulation must fast-forward them).
     * Default: nothing.
     */
    virtual void warmup(WorkloadHost &host) { (void)host; }

    /**
     * Issue roughly one operation.
     * @return false when the workload has completed its run.
     */
    virtual bool step(WorkloadHost &host) = 0;

    /**
     * @return true if warmup() already covers the full fast-forward
     * region (trace replays embed their measurement boundary), so the
     * machine must not fast-forward additional steps.
     */
    virtual bool selfWarmup() const { return false; }

    const WorkloadParams &params() const { return params_; }

  protected:
    /** Touch every page of [base, base+length) once (populate). */
    static void
    touchAll(WorkloadHost &host, Addr base, Addr length, bool write)
    {
        for (Addr off = 0; off < length; off += kPageBytes)
            host.access(base + off, write);
    }

    WorkloadParams params_;
};

/** All Table V benchmark names, in the paper's Figure 5 order. */
std::vector<std::string> workloadNames();

/**
 * Instantiate a workload by Table V name.
 * @return nullptr for an unknown name.
 */
std::unique_ptr<Workload> makeWorkload(const std::string &name,
                                       const WorkloadParams &params);

} // namespace ap

#endif // AGILEPAGING_WORKLOADS_WORKLOAD_HH
