/**
 * @file
 * Coherence-stress workload implementations.
 */

#include "workloads/coherence_workloads.hh"

namespace ap
{

// ---------------------------------------------------------------------
// shootdown_storm
// ---------------------------------------------------------------------

ShootdownStormWorkload::ShootdownStormWorkload(
    const WorkloadParams &params)
    : Workload(params)
{
}

void
ShootdownStormWorkload::init(WorkloadHost &host)
{
    heap_bytes_ = params_.footprintBytes / 2;
    heap_ = host.mmap(heap_bytes_, true, false, 0);
    hot_ = std::make_unique<ZipfRegion>(heap_, 1u << 20, 0.8,
                                        params_.seed);
    std::uint64_t nbufs = (params_.footprintBytes / 2) / kBufBytes;
    for (std::uint64_t i = 0; i < nbufs; ++i) {
        Addr base = host.mmap(kBufBytes, true, false, 0);
        if (base)
            bufs_.push_back(base);
    }
}

void
ShootdownStormWorkload::warmup(WorkloadHost &host)
{
    touchAll(host, heap_, heap_bytes_, true);
    for (Addr buf : bufs_)
        touchAll(host, buf, kBufBytes, true);
}

bool
ShootdownStormWorkload::step(WorkloadHost &host)
{
    Rng &rng = host.rng();
    ++ops_done_;

    if (fill_remaining_ > 0) {
        // Repopulate the freshly recycled buffer page by page.
        host.access(fill_base_ + (kBufBytes - fill_remaining_), true);
        fill_remaining_ = fill_remaining_ > kPageBytes
                              ? fill_remaining_ - kPageBytes
                              : 0;
        return ops_done_ < params_.operations;
    }
    if (!bufs_.empty() && rng.chance(1.0 / 48)) {
        // Free + reallocate one buffer: the munmap broadcasts a range
        // shootdown to every other vCPU still streaming the heap.
        Addr base = bufs_[rng.nextBelow(bufs_.size())];
        host.munmap(base, kBufBytes);
        host.mmapAt(base, kBufBytes, true, false, 0);
        fill_base_ = base;
        fill_remaining_ = kBufBytes;
        return ops_done_ < params_.operations;
    }
    host.access(hot_->pick(rng), rng.chance(0.3));
    return ops_done_ < params_.operations;
}

// ---------------------------------------------------------------------
// reclaim_scan
// ---------------------------------------------------------------------

ReclaimScanWorkload::ReclaimScanWorkload(const WorkloadParams &params)
    : Workload(params)
{
}

void
ReclaimScanWorkload::init(WorkloadHost &host)
{
    arena_ = host.mmap(params_.footprintBytes, true, false, 0);
}

void
ReclaimScanWorkload::warmup(WorkloadHost &host)
{
    touchAll(host, arena_, params_.footprintBytes, true);
}

bool
ReclaimScanWorkload::step(WorkloadHost &host)
{
    Rng &rng = host.rng();
    ++ops_done_;

    if (rng.chance(1.0 / 900)) {
        // Memory-pressure tick: accessed-bit sweep plus evictions,
        // each eviction a broadcast shootdown.
        host.reclaimTick(24);
        return ops_done_ < params_.operations;
    }
    // Stream sequentially so the clock hand keeps finding cold pages
    // behind the cursor (evictions actually happen), with a sprinkle
    // of random re-reference to fault some evicted pages back in.
    if (rng.chance(0.15)) {
        host.access(arena_ + rng.nextBelow(params_.footprintBytes),
                    false);
    } else {
        host.access(arena_ + cursor_, true);
        cursor_ = (cursor_ + kPageBytes) % params_.footprintBytes;
    }
    return ops_done_ < params_.operations;
}

// ---------------------------------------------------------------------
// page_migration
// ---------------------------------------------------------------------

PageMigrationWorkload::PageMigrationWorkload(
    const WorkloadParams &params)
    : Workload(params)
{
}

void
PageMigrationWorkload::init(WorkloadHost &host)
{
    arena_bytes_ = params_.footprintBytes;
    arena_ = host.mmap(arena_bytes_, true, false, 0);
}

void
PageMigrationWorkload::warmup(WorkloadHost &host)
{
    touchAll(host, arena_, arena_bytes_, true);
}

bool
PageMigrationWorkload::step(WorkloadHost &host)
{
    Rng &rng = host.rng();
    ++ops_done_;

    if (rewrite_left_ > 0) {
        // Re-establish the migrated page's content; the first of
        // these accesses takes the fault that refills the mapping.
        host.access(migrating_, true);
        --rewrite_left_;
        if (rewrite_left_ == 0)
            migrating_ = 0;
        return ops_done_ < params_.operations;
    }
    if (rng.chance(1.0 / 64)) {
        // Migrate one page: remapping it invalidates the translation
        // every other vCPU still holds from the streaming below.
        Addr page = arena_ +
                    rng.nextBelow(arena_bytes_ / kPageBytes) *
                        kPageBytes;
        host.munmap(page, kPageBytes);
        host.mmapAt(page, kPageBytes, true, false, 0);
        migrating_ = page;
        rewrite_left_ = 4;
        return ops_done_ < params_.operations;
    }
    host.access(arena_ + rng.nextBelow(arena_bytes_),
                rng.chance(0.25));
    return ops_done_ < params_.operations;
}

} // namespace ap
