/**
 * @file
 * Coherence-stress workloads for the multi-vCPU evaluation.
 *
 * These are not Table V benchmarks (they never appear in the Figure 5
 * matrix); they exist to exercise the translation-coherence machinery:
 * shootdown broadcast cost, per-vCPU TLB/PWC invalidation, and the
 * sw-IPI versus HATRIC-style hardware cost gap.
 */

#ifndef AGILEPAGING_WORKLOADS_COHERENCE_WORKLOADS_HH
#define AGILEPAGING_WORKLOADS_COHERENCE_WORKLOADS_HH

#include <vector>

#include "workloads/access_pattern.hh"
#include "workloads/workload.hh"

namespace ap
{

/**
 * shootdown_storm: an allocator-churn loop. A pool of small buffers is
 * recycled aggressively (munmap + mmapAt of the same slot), so nearly
 * every recycle broadcasts a range shootdown while the other vCPUs
 * stream over a shared heap — the unmap-heavy multithreaded pattern
 * that makes IPI-based coherence a first-order cost.
 */
class ShootdownStormWorkload : public Workload
{
  public:
    explicit ShootdownStormWorkload(const WorkloadParams &params);

    std::string name() const override { return "shootdown_storm"; }
    void init(WorkloadHost &host) override;
    void warmup(WorkloadHost &host) override;
    bool step(WorkloadHost &host) override;

  private:
    /** Recycled buffer size (4 pages). */
    static constexpr Addr kBufBytes = 16u << 10;

    std::uint64_t ops_done_ = 0;
    Addr heap_ = 0;
    Addr heap_bytes_ = 0;
    std::unique_ptr<ZipfRegion> hot_;
    std::vector<Addr> bufs_;
    Addr fill_base_ = 0;
    Addr fill_remaining_ = 0;
};

/**
 * reclaim_scan: steady streaming over a footprint larger than the
 * guest's comfort zone, with periodic clock-scan pressure ticks. Every
 * eviction clears a live PTE and must shoot down every vCPU; every
 * accessed-bit sweep rewrites PT pages (the unsync/resync path under
 * shadow-based modes).
 */
class ReclaimScanWorkload : public Workload
{
  public:
    explicit ReclaimScanWorkload(const WorkloadParams &params);

    std::string name() const override { return "reclaim_scan"; }
    void init(WorkloadHost &host) override;
    void warmup(WorkloadHost &host) override;
    bool step(WorkloadHost &host) override;

  private:
    std::uint64_t ops_done_ = 0;
    Addr arena_ = 0;
    Addr cursor_ = 0;
};

/**
 * page_migration: a worker migrates pages between two arenas —
 * read from the old slot, remap it (munmap + mmapAt), rewrite the
 * content — while the interleaved vCPUs keep touching both arenas.
 * Each migration invalidates a translation the *other* vCPUs hold, so
 * correctness depends on the shootdown reaching every stack (the
 * cross-vCPU migration pattern of NUMA balancing / compaction).
 */
class PageMigrationWorkload : public Workload
{
  public:
    explicit PageMigrationWorkload(const WorkloadParams &params);

    std::string name() const override { return "page_migration"; }
    void init(WorkloadHost &host) override;
    void warmup(WorkloadHost &host) override;
    bool step(WorkloadHost &host) override;

  private:
    std::uint64_t ops_done_ = 0;
    Addr arena_ = 0;
    Addr arena_bytes_ = 0;
    /** Page currently mid-migration (0 = none). */
    Addr migrating_ = 0;
    /** Migration phases left for migrating_ (rewrite accesses). */
    std::uint64_t rewrite_left_ = 0;
};

} // namespace ap

#endif // AGILEPAGING_WORKLOADS_COHERENCE_WORKLOADS_HH
