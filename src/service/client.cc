/**
 * @file
 * Service client implementation.
 */

#include "service/client.hh"

#include <cerrno>
#include <csignal>
#include <cstdlib>
#include <cstring>
#include <netinet/in.h>
#include <sstream>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "sim/report.hh"

namespace ap
{
namespace service
{

ServiceClient::~ServiceClient()
{
    close();
}

void
ServiceClient::close()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
}

bool
ServiceClient::connectUnix(const std::string &path, std::string *err)
{
    close();
    ::signal(SIGPIPE, SIG_IGN);
    fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd_ < 0) {
        if (err)
            *err = "socket: " + std::string(std::strerror(errno));
        return false;
    }
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (path.size() >= sizeof(addr.sun_path)) {
        if (err)
            *err = "socket path too long";
        close();
        return false;
    }
    std::strncpy(addr.sun_path, path.c_str(),
                 sizeof(addr.sun_path) - 1);
    if (::connect(fd_, reinterpret_cast<sockaddr *>(&addr),
                  sizeof(addr)) < 0) {
        if (err)
            *err = "connect " + path + ": " + std::strerror(errno);
        close();
        return false;
    }
    return true;
}

bool
ServiceClient::connectTcp(int port, std::string *err)
{
    close();
    ::signal(SIGPIPE, SIG_IGN);
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0) {
        if (err)
            *err = "socket: " + std::string(std::strerror(errno));
        return false;
    }
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    if (::connect(fd_, reinterpret_cast<sockaddr *>(&addr),
                  sizeof(addr)) < 0) {
        if (err)
            *err = "connect port " + std::to_string(port) + ": " +
                   std::strerror(errno);
        close();
        return false;
    }
    return true;
}

BatchOutcome
ServiceClient::runBatch(const std::vector<ExperimentSpec> &specs,
                        const FrameFn &on_frame)
{
    BatchOutcome out;
    if (fd_ < 0) {
        out.error = "not connected";
        return out;
    }
    if (!writeFrame(fd_, FrameType::BatchRequest, encodeBatch(specs))) {
        out.error = "send failed";
        return out;
    }
    for (;;) {
        Frame frame;
        ReadStatus rs = readFrame(fd_, frame);
        if (rs != ReadStatus::Ok) {
            out.error = rs == ReadStatus::Eof ? "server closed"
                                              : "broken stream";
            return out;
        }
        std::string json(frame.payload.begin(), frame.payload.end());
        if (on_frame)
            on_frame(frame.type, json);
        switch (frame.type) {
          case FrameType::RunFrame:
            ++out.cells;
            break;
          case FrameType::Error:
            // Cell-scoped errors carry a "cell" key and are followed
            // by BatchEnd; a batch rejection has none and is the final
            // answer.
            if (json.find("\"cell\":") == std::string::npos) {
                out.error = json;
                return out;
            }
            ++out.errors;
            break;
          case FrameType::BatchEnd: {
            out.ok = true;
            std::size_t pos = json.find("\"batch\": ");
            if (pos != std::string::npos)
                out.batch = std::strtoull(json.c_str() + pos + 9,
                                          nullptr, 10);
            return out;
          }
          default:
            break;
        }
    }
}

bool
ServiceClient::roundTrip(FrameType type,
                         const std::vector<std::uint8_t> &payload,
                         Frame &response)
{
    if (fd_ < 0 || !writeFrame(fd_, type, payload))
        return false;
    return readFrame(fd_, response) == ReadStatus::Ok;
}

bool
ServiceClient::sendShutdown()
{
    return fd_ >= 0 &&
           writeFrame(fd_, FrameType::Shutdown, nullptr, 0);
}

namespace
{

std::int64_t
intField(const std::string &json, const std::string &key)
{
    std::string needle = "\"" + key + "\": ";
    std::size_t pos = json.find(needle);
    if (pos == std::string::npos)
        return -1;
    return static_cast<std::int64_t>(
        std::strtoll(json.c_str() + pos + needle.size(), nullptr, 10));
}

} // namespace

std::string
runObjectOfFrame(const std::string &frame_json)
{
    // The run object is the last member of the envelope: everything
    // from after '"run": ' to the envelope's closing brace.
    std::size_t pos = frame_json.find("\"run\": ");
    if (pos == std::string::npos || frame_json.empty() ||
        frame_json.back() != '}')
        return {};
    return frame_json.substr(pos + 7,
                             frame_json.size() - (pos + 7) - 1);
}

std::int64_t
cellOfFrame(const std::string &frame_json)
{
    return intField(frame_json, "cell");
}

std::int64_t
workerOfFrame(const std::string &frame_json)
{
    return intField(frame_json, "worker");
}

std::string
assembleRunsJson(const std::vector<std::string> &run_objects,
                 unsigned jobs)
{
    std::ostringstream os;
    os << "{\"schema\": \"ap-runs-v1\", \"host\": ";
    writeHostMetaJson(os, currentHostMeta(jobs));
    os << ", \"runs\": [";
    for (std::size_t i = 0; i < run_objects.size(); ++i)
        os << (i ? ", " : "") << run_objects[i];
    os << "]}\n";
    return os.str();
}

} // namespace service
} // namespace ap
