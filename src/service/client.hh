/**
 * @file
 * Client side of the apsimd wire protocol: connect, submit a batch,
 * and stream the result frames back. Shared by the apsim_client tool,
 * bench_service and the service tests so each exercises the exact
 * protocol path production traffic takes.
 */

#ifndef AGILEPAGING_SERVICE_CLIENT_HH
#define AGILEPAGING_SERVICE_CLIENT_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "service/wire.hh"

namespace ap
{
namespace service
{

/** What a batch submission came back with. */
struct BatchOutcome
{
    /** BatchEnd was received (individual cells may still have
     *  errored — see @p errors). */
    bool ok = false;
    std::uint64_t batch = 0;
    std::uint32_t cells = 0;
    std::uint32_t errors = 0;
    /** Transport- or batch-level failure description when !ok. */
    std::string error;
};

class ServiceClient
{
  public:
    ServiceClient() = default;
    ~ServiceClient();

    ServiceClient(const ServiceClient &) = delete;
    ServiceClient &operator=(const ServiceClient &) = delete;

    bool connectUnix(const std::string &path, std::string *err = nullptr);
    bool connectTcp(int port, std::string *err = nullptr);
    bool connected() const { return fd_ >= 0; }
    void close();

    /**
     * Called for every frame of a batch as it arrives (RunFrame,
     * Error, BatchEnd), with the frame's JSON payload. Frames stream
     * in completion order, not cell order.
     */
    using FrameFn =
        std::function<void(FrameType type, const std::string &json)>;

    /**
     * Submit @p specs and block until BatchEnd (or a transport
     * failure). A batch the server rejects outright (malformed /
     * invalid specs) returns ok=false with the server's reason.
     */
    BatchOutcome runBatch(const std::vector<ExperimentSpec> &specs,
                          const FrameFn &on_frame = {});

    /**
     * Submit a raw BatchRequest payload (test hook for malformed
     * bytes) and return the first response frame's payload.
     * @return false on transport failure.
     */
    bool roundTrip(FrameType type,
                   const std::vector<std::uint8_t> &payload,
                   Frame &response);

    /** Ask the server to drain and exit. */
    bool sendShutdown();

  private:
    int fd_ = -1;
};

/**
 * Extract the "run" object from an ap-run-frame-v1 payload (the byte
 * range writeRunResultJson produced on the server). Empty string if
 * the payload is not a run frame.
 */
std::string runObjectOfFrame(const std::string &frame_json);

/** Cell index of an ap-run-frame-v1 payload (-1 if absent). */
std::int64_t cellOfFrame(const std::string &frame_json);

/** Worker index of an ap-run-frame-v1 payload (-1 if absent). */
std::int64_t workerOfFrame(const std::string &frame_json);

/**
 * Assemble an ap-runs-v1 document from run objects in cell order,
 * mirroring writeRunResultsJson (host block from this process,
 * @p jobs = the service's worker count).
 */
std::string assembleRunsJson(const std::vector<std::string> &run_objects,
                             unsigned jobs);

} // namespace service
} // namespace ap

#endif // AGILEPAGING_SERVICE_CLIENT_HH
