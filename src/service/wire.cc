/**
 * @file
 * Wire protocol implementation.
 */

#include "service/wire.hh"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <sstream>
#include <unistd.h>

#include "sim/report.hh"
#include "tlb/coherence.hh"
#include "workloads/workload.hh"

namespace ap
{
namespace service
{

namespace
{

/** Structure marker heading every binary payload. */
constexpr std::uint32_t kBatchMarker = 0x42415431;  // "BAT1"
constexpr std::uint32_t kCellMarker = 0x43454C31;   // "CEL1"
constexpr std::uint32_t kResultMarker = 0x52455331; // "RES1"

bool
writeAll(int fd, const void *data, std::size_t n)
{
    const auto *p = static_cast<const std::uint8_t *>(data);
    while (n) {
        ssize_t w = ::write(fd, p, n);
        if (w < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        p += w;
        n -= static_cast<std::size_t>(w);
    }
    return true;
}

/** @return 1 on success, 0 on clean EOF at the first byte, -1 on
 *  error or EOF mid-buffer. */
int
readAll(int fd, void *out, std::size_t n)
{
    auto *p = static_cast<std::uint8_t *>(out);
    std::size_t got = 0;
    while (got < n) {
        ssize_t r = ::read(fd, p + got, n - got);
        if (r < 0) {
            if (errno == EINTR)
                continue;
            return -1;
        }
        if (r == 0)
            return got == 0 ? 0 : -1;
        got += static_cast<std::size_t>(r);
    }
    return 1;
}

void
putSpec(Serializer &s, const ExperimentSpec &spec)
{
    s.putString(spec.workload);
    s.putU8(static_cast<std::uint8_t>(spec.mode));
    s.putU8(static_cast<std::uint8_t>(spec.pageSize));
    s.putU64(spec.operations);
    s.putBool(spec.hwOpts);
    s.putU32(spec.numVcpus);
    s.putU8(static_cast<std::uint8_t>(spec.tlbCoherence));
}

bool
getSpec(Deserializer &d, ExperimentSpec &spec, std::string &err)
{
    spec.workload = d.getString();
    std::uint8_t mode = d.getU8();
    std::uint8_t page = d.getU8();
    spec.operations = d.getU64();
    spec.hwOpts = d.getBool();
    spec.numVcpus = d.getU32();
    std::uint8_t coherence = d.getU8();
    if (!d.ok()) {
        err = "truncated spec";
        return false;
    }
    if (mode > static_cast<std::uint8_t>(VirtMode::Range)) {
        err = "mode tag out of range";
        return false;
    }
    if (page > static_cast<std::uint8_t>(PageSize::Size1G)) {
        err = "page-size tag out of range";
        return false;
    }
    if (coherence > static_cast<std::uint8_t>(TlbCoherence::Hardware)) {
        err = "coherence tag out of range";
        return false;
    }
    spec.mode = static_cast<VirtMode>(mode);
    spec.pageSize = static_cast<PageSize>(page);
    spec.tlbCoherence = static_cast<TlbCoherence>(coherence);
    return true;
}

} // namespace

bool
writeFrame(int fd, FrameType type, const void *data, std::size_t n)
{
    if (n > kMaxFrameLen)
        return false;
    std::uint32_t len = static_cast<std::uint32_t>(n);
    std::uint8_t header[5];
    std::memcpy(header, &len, 4);
    header[4] = static_cast<std::uint8_t>(type);
    if (!writeAll(fd, header, sizeof(header)))
        return false;
    return n == 0 || writeAll(fd, data, n);
}

bool
writeFrame(int fd, FrameType type,
           const std::vector<std::uint8_t> &payload)
{
    return writeFrame(fd, type, payload.data(), payload.size());
}

bool
writeFrame(int fd, FrameType type, const std::string &payload)
{
    return writeFrame(fd, type, payload.data(), payload.size());
}

ReadStatus
readFrame(int fd, Frame &out)
{
    std::uint8_t header[5];
    int r = readAll(fd, header, sizeof(header));
    if (r == 0)
        return ReadStatus::Eof;
    if (r < 0)
        return ReadStatus::Broken;
    std::uint32_t len;
    std::memcpy(&len, header, 4);
    if (len > kMaxFrameLen)
        return ReadStatus::Broken;
    out.type = static_cast<FrameType>(header[4]);
    out.payload.resize(len);
    if (len && readAll(fd, out.payload.data(), len) != 1)
        return ReadStatus::Broken;
    return ReadStatus::Ok;
}

std::string
validateSpec(const ExperimentSpec &spec)
{
    static const std::vector<std::string> known = workloadNames();
    bool found = false;
    for (const std::string &name : known)
        found = found || name == spec.workload;
    if (!found)
        return "unknown workload \"" + spec.workload + "\"";
    switch (spec.mode) {
      case VirtMode::Native:
      case VirtMode::Nested:
      case VirtMode::Shadow:
      case VirtMode::Agile:
      case VirtMode::Shsp:
      case VirtMode::Range:
        break;
      default:
        return "invalid mode";
    }
    switch (spec.pageSize) {
      case PageSize::Size4K:
      case PageSize::Size2M:
      case PageSize::Size1G:
        break;
      default:
        return "invalid page size";
    }
    if (spec.numVcpus < 1 || spec.numVcpus > 64)
        return "vCPU count out of range (1..64)";
    return {};
}

std::vector<std::uint8_t>
encodeBatch(const std::vector<ExperimentSpec> &specs)
{
    Serializer s;
    s.putMarker(kBatchMarker);
    s.putU32(static_cast<std::uint32_t>(specs.size()));
    for (const ExperimentSpec &spec : specs)
        putSpec(s, spec);
    return s.takeData();
}

bool
decodeBatch(const std::vector<std::uint8_t> &payload,
            std::vector<ExperimentSpec> &out, std::string &err)
{
    Deserializer d(payload);
    d.checkMarker(kBatchMarker);
    std::uint32_t n = d.getU32();
    if (!d.ok()) {
        err = "bad batch header";
        return false;
    }
    // Each spec is at least 20 bytes; an n the payload cannot possibly
    // hold is rejected before the resize loop touches it.
    if (n == 0 || std::uint64_t(n) * 20 > payload.size() + 20) {
        err = n == 0 ? "empty batch" : "cell count exceeds payload";
        return false;
    }
    out.clear();
    out.reserve(n);
    for (std::uint32_t i = 0; i < n; ++i) {
        ExperimentSpec spec;
        if (!getSpec(d, spec, err)) {
            err = "cell " + std::to_string(i) + ": " + err;
            return false;
        }
        std::string invalid = validateSpec(spec);
        if (!invalid.empty()) {
            err = "cell " + std::to_string(i) + ": " + invalid;
            return false;
        }
        out.push_back(std::move(spec));
    }
    if (d.remaining() != 0) {
        err = "trailing bytes after batch";
        return false;
    }
    return true;
}

void
putRunResult(Serializer &s, const RunResult &r)
{
    s.putMarker(kResultMarker);
    s.putString(r.workload);
    s.putU8(static_cast<std::uint8_t>(r.mode));
    s.putU8(static_cast<std::uint8_t>(r.pageSize));
    s.putU64(r.instructions);
    s.putU64(r.idealCycles);
    s.putU64(r.walkCycles);
    s.putU64(r.trapCycles);
    s.putU64(r.tlbMisses);
    s.putU64(r.walks);
    s.putU64(r.traps);
    s.putU64(r.guestPageFaults);
    s.putDouble(r.avgWalkRefs);
    for (double c : r.coverage)
        s.putDouble(c);
    for (std::uint64_t t : r.trapByKind)
        s.putU64(t);
    s.putU32(r.numVcpus);
    s.putU64(r.coherenceCycles);
    s.putU64(r.shootdowns);
    s.putU64(r.remoteInvalidations);
    for (std::uint64_t c : r.shootdownsByCause)
        s.putU64(c);
    s.putU64(r.segmentHits);
    s.putU64(r.segmentSpills);
    s.putU64(r.segmentInvalidations);
    s.putDouble(r.rawRefsTotal);
    for (double c : r.rawCoverage)
        s.putDouble(c);
}

bool
getRunResult(Deserializer &d, RunResult &out)
{
    d.checkMarker(kResultMarker);
    out.workload = d.getString();
    out.mode = static_cast<VirtMode>(d.getU8());
    out.pageSize = static_cast<PageSize>(d.getU8());
    out.instructions = d.getU64();
    out.idealCycles = d.getU64();
    out.walkCycles = d.getU64();
    out.trapCycles = d.getU64();
    out.tlbMisses = d.getU64();
    out.walks = d.getU64();
    out.traps = d.getU64();
    out.guestPageFaults = d.getU64();
    out.avgWalkRefs = d.getDouble();
    for (double &c : out.coverage)
        c = d.getDouble();
    for (std::uint64_t &t : out.trapByKind)
        t = d.getU64();
    out.numVcpus = d.getU32();
    out.coherenceCycles = d.getU64();
    out.shootdowns = d.getU64();
    out.remoteInvalidations = d.getU64();
    for (std::uint64_t &c : out.shootdownsByCause)
        c = d.getU64();
    out.segmentHits = d.getU64();
    out.segmentSpills = d.getU64();
    out.segmentInvalidations = d.getU64();
    out.rawRefsTotal = d.getDouble();
    for (double &c : out.rawCoverage)
        c = d.getDouble();
    return d.ok();
}

std::vector<std::uint8_t>
encodeCellRequest(const CellRequest &req)
{
    Serializer s;
    s.putMarker(kCellMarker);
    s.putU64(req.batch);
    s.putU32(req.cell);
    putSpec(s, req.spec);
    return s.takeData();
}

bool
decodeCellRequest(const std::vector<std::uint8_t> &payload,
                  CellRequest &out)
{
    Deserializer d(payload);
    d.checkMarker(kCellMarker);
    out.batch = d.getU64();
    out.cell = d.getU32();
    std::string err;
    return d.ok() && getSpec(d, out.spec, err) && d.remaining() == 0;
}

std::vector<std::uint8_t>
encodeCellResult(const CellResult &res)
{
    Serializer s;
    s.putU64(res.batch);
    s.putU32(res.cell);
    s.putBool(res.ok);
    if (res.ok)
        putRunResult(s, res.run);
    else
        s.putString(res.error);
    return s.takeData();
}

bool
decodeCellResult(const std::vector<std::uint8_t> &payload,
                 CellResult &out)
{
    Deserializer d(payload);
    out.batch = d.getU64();
    out.cell = d.getU32();
    out.ok = d.getBool();
    if (!d.ok())
        return false;
    if (out.ok)
        return getRunResult(d, out.run) && d.remaining() == 0;
    out.error = d.getString();
    return d.ok() && d.remaining() == 0;
}

namespace
{

std::string
escapeJson(const std::string &s)
{
    std::string out;
    for (char c : s) {
        if (c == '"' || c == '\\') {
            out += '\\';
            out += c;
        } else if (static_cast<unsigned char>(c) < 0x20) {
            // Control characters (panic messages may embed newlines)
            // would break the one-object-per-frame NDJSON invariant.
            char buf[8];
            std::snprintf(buf, sizeof(buf), "\\u%04x",
                          static_cast<unsigned>(c) & 0xff);
            out += buf;
        } else {
            out += c;
        }
    }
    return out;
}

} // namespace

std::string
renderRunFrame(std::uint64_t batch, std::uint32_t cell, unsigned worker,
               const RunResult &r)
{
    std::ostringstream os;
    os << "{\"schema\": \"ap-run-frame-v1\", \"batch\": " << batch
       << ", \"cell\": " << cell << ", \"worker\": " << worker
       << ", \"run\": ";
    writeRunResultJson(os, r);
    os << "}";
    return os.str();
}

std::string
renderBatchEnd(std::uint64_t batch, std::uint32_t cells,
               std::uint32_t errors)
{
    std::ostringstream os;
    os << "{\"schema\": \"ap-batch-end-v1\", \"batch\": " << batch
       << ", \"cells\": " << cells << ", \"errors\": " << errors << "}";
    return os.str();
}

std::string
renderErrorFrame(const std::string &error, std::int64_t batch,
                 std::int64_t cell)
{
    std::ostringstream os;
    os << "{\"schema\": \"ap-error-v1\", \"error\": \""
       << escapeJson(error) << "\"";
    if (batch >= 0)
        os << ", \"batch\": " << batch;
    if (cell >= 0)
        os << ", \"cell\": " << cell;
    os << "}";
    return os.str();
}

} // namespace service
} // namespace ap
