/**
 * @file
 * Service server implementation.
 */

#include "service/server.hh"

#include <cerrno>
#include <csignal>
#include <cstring>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <sys/wait.h>
#include <unistd.h>

#include "base/logging.hh"

namespace ap
{
namespace service
{

namespace
{

void
closeFd(int &fd)
{
    if (fd >= 0) {
        ::close(fd);
        fd = -1;
    }
}

} // namespace

ServiceServer::ServiceServer(ServiceOptions opt)
    : opt_(std::move(opt)),
      router_(opt_.workers ? opt_.workers : 1)
{
    if (opt_.workers == 0)
        opt_.workers = 1;
}

ServiceServer::~ServiceServer()
{
    shutdownWorkers();
    closeFd(conn_fd_);
    closeFd(listen_fd_);
    closeFd(stop_pipe_[0]);
    closeFd(stop_pipe_[1]);
    if (!opt_.socketPath.empty())
        ::unlink(opt_.socketPath.c_str());
}

bool
ServiceServer::bindListen(std::string *err)
{
    if (!opt_.socketPath.empty()) {
        listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
        if (listen_fd_ < 0) {
            if (err)
                *err = "socket: " + std::string(std::strerror(errno));
            return false;
        }
        sockaddr_un addr{};
        addr.sun_family = AF_UNIX;
        if (opt_.socketPath.size() >= sizeof(addr.sun_path)) {
            if (err)
                *err = "socket path too long";
            return false;
        }
        std::strncpy(addr.sun_path, opt_.socketPath.c_str(),
                     sizeof(addr.sun_path) - 1);
        ::unlink(opt_.socketPath.c_str());
        if (::bind(listen_fd_, reinterpret_cast<sockaddr *>(&addr),
                   sizeof(addr)) < 0) {
            if (err)
                *err = "bind " + opt_.socketPath + ": " +
                       std::strerror(errno);
            return false;
        }
    } else {
        listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
        if (listen_fd_ < 0) {
            if (err)
                *err = "socket: " + std::string(std::strerror(errno));
            return false;
        }
        int one = 1;
        ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one,
                     sizeof(one));
        sockaddr_in addr{};
        addr.sin_family = AF_INET;
        addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
        addr.sin_port = htons(static_cast<std::uint16_t>(opt_.tcpPort));
        if (::bind(listen_fd_, reinterpret_cast<sockaddr *>(&addr),
                   sizeof(addr)) < 0) {
            if (err)
                *err = "bind port " + std::to_string(opt_.tcpPort) +
                       ": " + std::strerror(errno);
            return false;
        }
        sockaddr_in bound{};
        socklen_t blen = sizeof(bound);
        ::getsockname(listen_fd_, reinterpret_cast<sockaddr *>(&bound),
                      &blen);
        port_ = ntohs(bound.sin_port);
    }
    if (::listen(listen_fd_, 8) < 0) {
        if (err)
            *err = "listen: " + std::string(std::strerror(errno));
        return false;
    }
    return true;
}

bool
ServiceServer::forkWorkers(std::string *err)
{
    workers_.resize(opt_.workers);
    for (unsigned w = 0; w < opt_.workers; ++w) {
        int req[2], res[2];
        if (::pipe(req) < 0 || ::pipe(res) < 0) {
            if (err)
                *err = "pipe: " + std::string(std::strerror(errno));
            return false;
        }
        pid_t pid = ::fork();
        if (pid < 0) {
            if (err)
                *err = "fork: " + std::string(std::strerror(errno));
            return false;
        }
        if (pid == 0) {
            // Worker child: keep only its own pipe ends. Termination
            // signals are left to the dispatcher — a worker exits when
            // its request pipe drains to EOF.
            ::signal(SIGTERM, SIG_IGN);
            ::signal(SIGINT, SIG_IGN);
            ::close(req[1]);
            ::close(res[0]);
            closeFd(listen_fd_);
            closeFd(stop_pipe_[0]);
            closeFd(stop_pipe_[1]);
            for (unsigned v = 0; v < w; ++v) {
                ::close(workers_[v].request_fd);
                ::close(workers_[v].result_fd);
            }
            WorkerOptions wopt;
            wopt.snapshotPoolBytes = opt_.snapshotPoolBytes;
            wopt.batched = opt_.batched;
            wopt.maxIdleMachines = opt_.maxIdleMachines;
            // _exit: the child must not run the parent's atexit/static
            // destructors.
            ::_exit(workerMain(req[0], res[1], wopt));
        }
        ::close(req[0]);
        ::close(res[1]);
        workers_[w].pid = pid;
        workers_[w].request_fd = req[1];
        workers_[w].result_fd = res[0];
        workers_[w].alive = true;
        pids_.push_back(pid);
    }
    return true;
}

bool
ServiceServer::start(std::string *err)
{
    // Streaming to a client that vanished must surface as EPIPE, not
    // kill the process.
    ::signal(SIGPIPE, SIG_IGN);
    if (::pipe(stop_pipe_) < 0) {
        if (err)
            *err = "pipe: " + std::string(std::strerror(errno));
        return false;
    }
    if (!bindListen(err))
        return false;
    return forkWorkers(err);
}

void
ServiceServer::requestStop()
{
    if (stop_pipe_[1] >= 0) {
        char byte = 1;
        // Async-signal-safe; a full pipe just means a stop is already
        // pending.
        [[maybe_unused]] ssize_t n = ::write(stop_pipe_[1], &byte, 1);
    }
}

bool
ServiceServer::stopRequested()
{
    if (stopping_)
        return true;
    pollfd pfd{stop_pipe_[0], POLLIN, 0};
    if (::poll(&pfd, 1, 0) > 0 && (pfd.revents & POLLIN)) {
        char buf[16];
        [[maybe_unused]] ssize_t n =
            ::read(stop_pipe_[0], buf, sizeof(buf));
        stopping_ = true;
    }
    return stopping_;
}

void
ServiceServer::serve()
{
    while (!stopRequested()) {
        pollfd fds[2] = {
            {stop_pipe_[0], POLLIN, 0},
            {listen_fd_, POLLIN, 0},
        };
        if (::poll(fds, 2, -1) < 0) {
            if (errno == EINTR)
                continue;
            break;
        }
        if (fds[0].revents & POLLIN)
            break; // stopRequested() drains it on the next iteration
        if (!(fds[1].revents & POLLIN))
            continue;
        conn_fd_ = ::accept(listen_fd_, nullptr, nullptr);
        if (conn_fd_ < 0)
            continue;
        client_gone_ = false;
        handleConnection();
        closeFd(conn_fd_);
    }
    shutdownWorkers();
}

void
ServiceServer::handleConnection()
{
    while (!stopRequested() && !client_gone_) {
        pollfd fds[2] = {
            {stop_pipe_[0], POLLIN, 0},
            {conn_fd_, POLLIN, 0},
        };
        if (::poll(fds, 2, -1) < 0) {
            if (errno == EINTR)
                continue;
            return;
        }
        if (fds[0].revents & POLLIN)
            return; // drain handled by serve()/shutdownWorkers
        if (!(fds[1].revents & (POLLIN | POLLHUP)))
            continue;
        Frame frame;
        ReadStatus rs = readFrame(conn_fd_, frame);
        if (rs == ReadStatus::Eof)
            return;
        if (rs == ReadStatus::Broken) {
            // Framing is unrecoverable: tell the client why, then
            // drop the connection.
            sendToClient(FrameType::Error,
                         renderErrorFrame("unrecoverable frame stream"));
            return;
        }
        if (!handleClientFrame(frame))
            return;
    }
}

bool
ServiceServer::handleClientFrame(const Frame &frame)
{
    switch (frame.type) {
      case FrameType::Shutdown:
        stopping_ = true;
        return false;
      case FrameType::BatchRequest: {
        std::vector<ExperimentSpec> specs;
        std::string err;
        if (!decodeBatch(frame.payload, specs, err)) {
            // Malformed *payload*: answer with an error frame and keep
            // the connection — framing is still intact.
            ++stats_.rejectedBatches;
            sendToClient(FrameType::Error, renderErrorFrame(err));
            return true;
        }
        batch_ = Batch{};
        batch_.id = next_batch_id_++;
        batch_.specs = std::move(specs);
        batch_.crashes.assign(batch_.specs.size(), 0);
        batch_.done.assign(batch_.specs.size(), false);
        batch_.outstanding = batch_.specs.size();
        batch_.active = true;
        ++stats_.batches;
        for (std::uint32_t i = 0; i < batch_.specs.size(); ++i)
            router_.enqueue(batch_.id, i,
                            affinityDigest(batch_.specs[i]));
        runBatch();
        return !client_gone_;
      }
      default:
        // Unknown-but-well-framed types get an error frame, and the
        // connection survives.
        sendToClient(FrameType::Error,
                     renderErrorFrame("unexpected frame type"));
        return true;
    }
}

void
ServiceServer::runBatch()
{
    if (router_.liveWorkers() == 0) {
        failOutstanding("no live workers");
        return;
    }
    dispatchIdleWorkers();
    while (batch_.active && batch_.outstanding > 0) {
        std::vector<pollfd> fds;
        std::vector<unsigned> fd_worker;
        fds.push_back({stop_pipe_[0], POLLIN, 0});
        for (unsigned w = 0; w < workers_.size(); ++w) {
            if (!workers_[w].alive)
                continue;
            fds.push_back({workers_[w].result_fd, POLLIN, 0});
            fd_worker.push_back(w);
        }
        if (fds.size() == 1) {
            failOutstanding("no live workers");
            break;
        }
        if (::poll(fds.data(), fds.size(), -1) < 0) {
            if (errno == EINTR)
                continue;
            failOutstanding("dispatcher poll failed");
            break;
        }
        // A stop request drains the in-flight batch before taking
        // effect, so results keep flowing below.
        for (std::size_t i = 1; i < fds.size(); ++i) {
            if (fds[i].revents & (POLLIN | POLLHUP | POLLERR))
                handleWorkerResult(fd_worker[i - 1]);
        }
        dispatchIdleWorkers();
    }
    std::uint32_t cells = static_cast<std::uint32_t>(batch_.specs.size());
    sendToClient(FrameType::BatchEnd,
                 renderBatchEnd(batch_.id, cells, batch_.errors));
    batch_.active = false;
    stats_.affinityHits = router_.affinityHits();
    stats_.steals = router_.steals();
}

void
ServiceServer::dispatchIdleWorkers()
{
    for (unsigned w = 0; w < workers_.size(); ++w) {
        if (!workers_[w].alive || workers_[w].busy)
            continue;
        if (!router_.alive(w))
            continue;
        std::optional<RoutedCell> cell = router_.next(w);
        if (!cell)
            continue;
        if (!dispatchCell(w, *cell)) {
            // The worker died between poll rounds; its pipe EOF is
            // handled like any other crash and the cell retried.
            handleWorkerDeath(w);
        }
    }
}

bool
ServiceServer::dispatchCell(unsigned w, const RoutedCell &cell)
{
    CellRequest req;
    req.batch = cell.batch;
    req.cell = cell.cell;
    req.spec = batch_.specs[cell.cell];
    workers_[w].inflight = cell;
    workers_[w].busy = true;
    return writeFrame(workers_[w].request_fd, FrameType::CellRequest,
                      encodeCellRequest(req));
}

void
ServiceServer::handleWorkerResult(unsigned w)
{
    Frame frame;
    ReadStatus rs = readFrame(workers_[w].result_fd, frame);
    if (rs != ReadStatus::Ok) {
        handleWorkerDeath(w);
        return;
    }
    CellResult res;
    if (frame.type != FrameType::CellResult ||
        !decodeCellResult(frame.payload, res)) {
        handleWorkerDeath(w);
        return;
    }
    workers_[w].busy = false;
    if (!batch_.active || res.batch != batch_.id)
        return; // stale result from an abandoned batch
    if (batch_.done[res.cell])
        return; // already answered (e.g. a crash-retried duplicate)
    if (res.ok) {
        batch_.done[res.cell] = true;
        sendToClient(FrameType::RunFrame,
                     renderRunFrame(res.batch, res.cell, w, res.run));
        ++stats_.cells;
        --batch_.outstanding;
    } else {
        failCell(res.cell, res.error);
    }
}

void
ServiceServer::handleWorkerDeath(unsigned w)
{
    WorkerProc &wp = workers_[w];
    if (!wp.alive)
        return;
    wp.alive = false;
    ++stats_.workerCrashes;
    closeFd(wp.request_fd);
    closeFd(wp.result_fd);
    ::waitpid(wp.pid, nullptr, 0);
    bool had_inflight = wp.busy;
    RoutedCell inflight = wp.inflight;
    wp.busy = false;
    router_.removeWorker(w);
    if (router_.liveWorkers() == 0) {
        failOutstanding("all workers died");
        return;
    }
    if (had_inflight && batch_.active && inflight.batch == batch_.id) {
        unsigned &crashes = batch_.crashes[inflight.cell];
        ++crashes;
        if (crashes > opt_.maxCellRetries) {
            failCell(inflight.cell,
                     "cell crashed " + std::to_string(crashes) +
                         " worker(s)");
        } else {
            ++stats_.cellRetries;
            router_.enqueue(inflight.batch, inflight.cell,
                            inflight.digest);
        }
    }
}

void
ServiceServer::failCell(std::uint32_t cell, const std::string &why)
{
    if (batch_.done[cell])
        return;
    batch_.done[cell] = true;
    sendToClient(FrameType::Error,
                 renderErrorFrame(why,
                                  static_cast<std::int64_t>(batch_.id),
                                  static_cast<std::int64_t>(cell)));
    ++stats_.cellErrors;
    ++batch_.errors;
    --batch_.outstanding;
}

void
ServiceServer::failOutstanding(const std::string &why)
{
    if (!batch_.active)
        return;
    for (std::uint32_t c = 0; c < batch_.specs.size(); ++c) {
        if (!batch_.done[c])
            failCell(c, why);
    }
}

void
ServiceServer::sendToClient(FrameType type, const std::string &payload)
{
    if (client_gone_ || conn_fd_ < 0)
        return;
    if (!writeFrame(conn_fd_, type, payload))
        client_gone_ = true;
}

void
ServiceServer::shutdownWorkers()
{
    for (WorkerProc &wp : workers_) {
        if (wp.request_fd >= 0)
            writeFrame(wp.request_fd, FrameType::Shutdown, nullptr, 0);
        closeFd(wp.request_fd);
    }
    for (WorkerProc &wp : workers_) {
        if (wp.pid > 0) {
            ::waitpid(wp.pid, nullptr, 0);
            wp.pid = -1;
        }
        closeFd(wp.result_fd);
        wp.alive = false;
    }
    stats_.affinityHits = router_.affinityHits();
    stats_.steals = router_.steals();
}

} // namespace service
} // namespace ap
