/**
 * @file
 * The apsimd worker process: one warm simulation engine per process.
 *
 * A worker owns a persistent TraceCache, a SnapshotCache bounded by
 * the service's --snapshot-pool-mb budget, and a MachinePool, so every
 * cell after the first of an affinity family replays a recorded trace
 * into a reused machine forked from a warm snapshot. The loop is
 * synchronous — read one CellRequest, simulate, write one CellResult —
 * because the dispatcher never gives a worker more than one
 * outstanding cell.
 */

#ifndef AGILEPAGING_SERVICE_WORKER_HH
#define AGILEPAGING_SERVICE_WORKER_HH

#include <cstdint>

namespace ap
{
namespace service
{

struct WorkerOptions
{
    /** SnapshotCache byte budget (0 = unlimited). */
    std::uint64_t snapshotPoolBytes = 0;
    /** Batched replay (the fast path; false only for A/B debugging). */
    bool batched = true;
    /** Most idle machines the MachinePool keeps parked. */
    std::size_t maxIdleMachines = 8;
};

/**
 * Run the worker loop on @p request_fd / @p result_fd until a
 * Shutdown frame or EOF on the request pipe.
 * @return process exit code (0 on clean shutdown).
 *
 * Cell failures that surface as exceptions become ok=false
 * CellResults; sticky cache errors reproduce the first failure's text
 * for every later cell of the same key. A panic still aborts the
 * process — the dispatcher treats that as a crash and retries the
 * in-flight cell on a sibling.
 */
int workerMain(int request_fd, int result_fd, const WorkerOptions &opt);

} // namespace service
} // namespace ap

#endif // AGILEPAGING_SERVICE_WORKER_HH
