/**
 * @file
 * Worker loop implementation.
 */

#include "service/worker.hh"

#include <exception>

#include "service/wire.hh"
#include "sim/machine_pool.hh"
#include "sim/snapshot.hh"
#include "trace/trace_cache.hh"

namespace ap
{
namespace service
{

int
workerMain(int request_fd, int result_fd, const WorkerOptions &opt)
{
    TraceCache traces;
    SnapshotCache snaps;
    snaps.setByteBudget(opt.snapshotPoolBytes);
    MachinePool pool(opt.maxIdleMachines);

    for (;;) {
        Frame frame;
        ReadStatus rs = readFrame(request_fd, frame);
        if (rs == ReadStatus::Eof)
            return 0; // dispatcher closed the pipe: drain complete
        if (rs == ReadStatus::Broken)
            return 1;
        if (frame.type == FrameType::Shutdown)
            return 0;
        if (frame.type != FrameType::CellRequest)
            continue; // unknown frame types are skipped, not fatal

        CellRequest req;
        CellResult res;
        if (!decodeCellRequest(frame.payload, req)) {
            // The dispatcher encoded this itself, so a decode failure
            // is a framing bug, not user input — but answering with an
            // error result keeps the one-in/one-out protocol intact.
            res.ok = false;
            res.error = "worker: malformed cell request";
        } else {
            res.batch = req.batch;
            res.cell = req.cell;
            try {
                res.run = runExperimentSnapshotted(
                    traces, snaps, req.spec, opt.batched, &pool);
                res.ok = true;
            } catch (const std::exception &e) {
                res.ok = false;
                res.error = e.what();
            } catch (...) {
                res.ok = false;
                res.error = "unknown worker exception";
            }
        }
        if (!writeFrame(result_fd, FrameType::CellResult,
                        encodeCellResult(res)))
            return 1; // dispatcher gone
    }
}

} // namespace service
} // namespace ap
