/**
 * @file
 * Cell placement for the apsimd worker fleet: digest affinity with
 * work stealing.
 *
 * Workers keep their simulation state warm per *affinity digest* — a
 * hash of everything the recorded trace and captured snapshots depend
 * on. Routing sibling cells of one digest to the same worker means
 * that worker records the operation stream once and forks every
 * sibling from its warm snapshot pool, instead of each worker paying
 * the recording cost independently. The router is pure bookkeeping (no
 * processes, no I/O) so placement policy is unit-testable on its own;
 * the server drives it from the dispatch loop.
 */

#ifndef AGILEPAGING_SERVICE_ROUTER_HH
#define AGILEPAGING_SERVICE_ROUTER_HH

#include <cstdint>
#include <deque>
#include <optional>
#include <unordered_map>
#include <vector>

#include "sim/experiment.hh"

namespace ap
{
namespace service
{

/**
 * The affinity digest of a cell: a hash of the fields the worker-side
 * caches key on (workload identity and stream parameters, not mode —
 * sibling modes of one workload share the recorded trace, which is
 * the expensive thing to duplicate across workers).
 */
std::uint64_t affinityDigest(const ExperimentSpec &spec);

/** One queued cell. */
struct RoutedCell
{
    std::uint64_t batch = 0;
    std::uint32_t cell = 0;
    std::uint64_t digest = 0;
};

/**
 * Per-worker FIFO queues with digest-affinity placement and LIFO work
 * stealing. Not thread-safe; the single dispatch loop owns it.
 */
class CellRouter
{
  public:
    explicit CellRouter(unsigned workers);

    /**
     * Queue a cell. Placement: the worker already owning the digest if
     * one does (affinity hit), else the least-loaded worker, which
     * becomes the digest's owner.
     */
    void enqueue(std::uint64_t batch, std::uint32_t cell,
                 std::uint64_t digest);

    /**
     * Next cell for worker @p w: the front of its own queue, else one
     * *stolen from the back* of the longest sibling queue (the back is
     * the cell whose affinity owner is furthest from running it, so
     * stealing it forfeits the least warm-state reuse). Stealing moves
     * digest ownership to the thief — later same-digest cells follow
     * the state that is now warm there.
     * @return nullopt when every queue is empty.
     */
    std::optional<RoutedCell> next(unsigned w);

    /**
     * Remove worker @p w from placement: its queued cells are
     * re-enqueued on siblings and its digest ownerships forgotten.
     * Used when a worker process dies.
     */
    void removeWorker(unsigned w);

    /** Cells queued across all workers. */
    std::size_t pending() const;
    /** Cells queued on @p w. */
    std::size_t pending(unsigned w) const;
    /** Whether @p w still participates in placement. */
    bool alive(unsigned w) const;
    /** Live worker count. */
    unsigned liveWorkers() const;

    /** Cells placed on the worker already owning their digest. */
    std::uint64_t affinityHits() const { return affinity_hits_; }
    /** Cells taken from a sibling's queue. */
    std::uint64_t steals() const { return steals_; }

  private:
    std::vector<std::deque<RoutedCell>> queues_;
    std::vector<bool> alive_;
    /** digest -> owning worker. */
    std::unordered_map<std::uint64_t, unsigned> owner_;
    std::uint64_t affinity_hits_ = 0;
    std::uint64_t steals_ = 0;
};

} // namespace service
} // namespace ap

#endif // AGILEPAGING_SERVICE_ROUTER_HH
