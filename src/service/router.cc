/**
 * @file
 * Cell router implementation.
 */

#include "service/router.hh"

#include <functional>

#include "base/logging.hh"

namespace ap
{
namespace service
{

std::uint64_t
affinityDigest(const ExperimentSpec &spec)
{
    // Mirror the TraceCacheKey fields reachable from a spec: workload,
    // page size and operation count pin the recorded stream (seed,
    // footprint and warmup fraction are derived from them by
    // defaultParamsFor/configFor). Mode is deliberately absent — see
    // the header.
    std::uint64_t h = 1469598103934665603ull; // FNV-1a offset basis
    auto mix = [&h](std::uint64_t v) {
        for (int i = 0; i < 8; ++i) {
            h ^= (v >> (i * 8)) & 0xff;
            h *= 1099511628211ull;
        }
    };
    for (char c : spec.workload) {
        h ^= static_cast<std::uint8_t>(c);
        h *= 1099511628211ull;
    }
    mix(static_cast<std::uint64_t>(spec.pageSize));
    mix(spec.operations);
    mix(spec.numVcpus);
    return h;
}

CellRouter::CellRouter(unsigned workers)
    : queues_(workers), alive_(workers, true)
{
    ap_assert(workers > 0, "router needs at least one worker");
}

void
CellRouter::enqueue(std::uint64_t batch, std::uint32_t cell,
                    std::uint64_t digest)
{
    unsigned target = 0;
    auto it = owner_.find(digest);
    if (it != owner_.end() && alive_[it->second]) {
        target = it->second;
        ++affinity_hits_;
    } else {
        bool found = false;
        std::size_t best = 0;
        for (unsigned w = 0; w < queues_.size(); ++w) {
            if (!alive_[w])
                continue;
            if (!found || queues_[w].size() < best) {
                found = true;
                best = queues_[w].size();
                target = w;
            }
        }
        ap_assert(found, "no live worker to place on");
        owner_[digest] = target;
    }
    queues_[target].push_back(RoutedCell{batch, cell, digest});
}

std::optional<RoutedCell>
CellRouter::next(unsigned w)
{
    ap_assert(w < queues_.size() && alive_[w], "bad worker ", w);
    if (!queues_[w].empty()) {
        RoutedCell c = queues_[w].front();
        queues_[w].pop_front();
        return c;
    }
    // Steal from the back of the longest sibling queue.
    unsigned victim = w;
    std::size_t longest = 0;
    for (unsigned v = 0; v < queues_.size(); ++v) {
        if (v == w || !alive_[v])
            continue;
        if (queues_[v].size() > longest) {
            longest = queues_[v].size();
            victim = v;
        }
    }
    if (victim == w)
        return std::nullopt;
    RoutedCell c = queues_[victim].back();
    queues_[victim].pop_back();
    owner_[c.digest] = w;
    ++steals_;
    return c;
}

void
CellRouter::removeWorker(unsigned w)
{
    ap_assert(w < queues_.size(), "bad worker ", w);
    if (!alive_[w])
        return;
    alive_[w] = false;
    std::deque<RoutedCell> orphaned = std::move(queues_[w]);
    queues_[w].clear();
    for (auto it = owner_.begin(); it != owner_.end();) {
        if (it->second == w)
            it = owner_.erase(it);
        else
            ++it;
    }
    // With no survivors there is nowhere to re-enqueue; the server
    // fails the batch's outstanding cells when liveWorkers() hits 0.
    if (liveWorkers() == 0)
        return;
    for (const RoutedCell &c : orphaned)
        enqueue(c.batch, c.cell, c.digest);
}

std::size_t
CellRouter::pending() const
{
    std::size_t n = 0;
    for (const auto &q : queues_)
        n += q.size();
    return n;
}

std::size_t
CellRouter::pending(unsigned w) const
{
    return w < queues_.size() ? queues_[w].size() : 0;
}

bool
CellRouter::alive(unsigned w) const
{
    return w < alive_.size() && alive_[w];
}

unsigned
CellRouter::liveWorkers() const
{
    unsigned n = 0;
    for (bool a : alive_)
        n += a ? 1 : 0;
    return n;
}

} // namespace service
} // namespace ap
