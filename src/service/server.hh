/**
 * @file
 * The apsimd service server: a pre-forked worker fleet behind a
 * Unix/TCP socket.
 *
 * start() binds the socket and forks the workers — it must run before
 * the hosting process creates any threads, because fork() from a
 * multithreaded process can inherit a locked allocator. serve() then
 * runs the single-threaded dispatch loop (it may itself run on a
 * thread): accept a client, read batch requests, validate them against
 * SimConfig, shard the cells across the worker fleet through the
 * CellRouter, and stream one RunFrame back per finished cell.
 *
 * Lifecycle: requestStop() (async-signal-safe; wired to SIGTERM by
 * apsimd) makes serve() finish the in-flight batch, close the worker
 * request pipes — each worker drains and exits on EOF — reap them, and
 * return. A worker that dies mid-cell is removed from placement and
 * its cell retried on a sibling; a cell that keeps killing workers is
 * answered with an Error frame instead of looping forever.
 */

#ifndef AGILEPAGING_SERVICE_SERVER_HH
#define AGILEPAGING_SERVICE_SERVER_HH

#include <cstdint>
#include <string>
#include <sys/types.h>
#include <vector>

#include "service/router.hh"
#include "service/worker.hh"
#include "service/wire.hh"

namespace ap
{
namespace service
{

struct ServiceOptions
{
    /** Unix socket path; takes precedence over tcpPort when set. */
    std::string socketPath;
    /** Loopback TCP port (0 with an empty socketPath = ephemeral). */
    int tcpPort = 0;
    /** Worker processes to pre-fork. */
    unsigned workers = 4;
    /** Per-worker SnapshotCache byte budget (0 = unlimited). */
    std::uint64_t snapshotPoolBytes = 0;
    /** Batched replay in the workers. */
    bool batched = true;
    /** Crash retries per cell before it is answered with an error. */
    unsigned maxCellRetries = 1;
    /** Per-worker MachinePool idle bound. */
    std::size_t maxIdleMachines = 8;
};

struct ServiceStats
{
    std::uint64_t batches = 0;
    std::uint64_t cells = 0;
    std::uint64_t cellErrors = 0;
    std::uint64_t rejectedBatches = 0;
    std::uint64_t workerCrashes = 0;
    std::uint64_t cellRetries = 0;
    std::uint64_t affinityHits = 0;
    std::uint64_t steals = 0;
};

class ServiceServer
{
  public:
    explicit ServiceServer(ServiceOptions opt);
    ~ServiceServer();

    ServiceServer(const ServiceServer &) = delete;
    ServiceServer &operator=(const ServiceServer &) = delete;

    /**
     * Bind + listen + fork the workers. Call from a single-threaded
     * process. @return false with @p err set on any setup failure
     * (the object is then unusable).
     */
    bool start(std::string *err = nullptr);

    /** Dispatch loop; returns after requestStop() + drain, or after a
     *  client Shutdown frame. */
    void serve();

    /** Async-signal-safe stop request (writes the self-pipe). */
    void requestStop();

    /** Bound TCP port (valid after start() when listening on TCP). */
    int port() const { return port_; }

    /** Worker process ids (test hook: crash injection). */
    const std::vector<pid_t> &workerPids() const { return pids_; }

    const ServiceStats &stats() const { return stats_; }

  private:
    struct WorkerProc
    {
        pid_t pid = -1;
        int request_fd = -1; // dispatcher writes CellRequests
        int result_fd = -1;  // dispatcher reads CellResults
        bool alive = false;
        bool busy = false;
        RoutedCell inflight;
    };

    /** One in-progress batch (the server runs one at a time). */
    struct Batch
    {
        std::uint64_t id = 0;
        std::vector<ExperimentSpec> specs;
        std::vector<unsigned> crashes; // per-cell crash count
        std::vector<bool> done;        // per-cell answered flag
        std::size_t outstanding = 0;
        std::uint32_t errors = 0;
        bool active = false;
    };

    bool bindListen(std::string *err);
    bool forkWorkers(std::string *err);
    void handleConnection();
    bool handleClientFrame(const Frame &frame);
    void runBatch();
    void dispatchIdleWorkers();
    bool dispatchCell(unsigned w, const RoutedCell &cell);
    void handleWorkerResult(unsigned w);
    void handleWorkerDeath(unsigned w);
    void failCell(std::uint32_t cell, const std::string &why);
    void failOutstanding(const std::string &why);
    void sendToClient(FrameType type, const std::string &payload);
    void shutdownWorkers();
    bool stopRequested();

    ServiceOptions opt_;
    int listen_fd_ = -1;
    int conn_fd_ = -1;
    int stop_pipe_[2] = {-1, -1};
    int port_ = 0;
    bool stopping_ = false;
    bool client_gone_ = false;
    std::vector<WorkerProc> workers_;
    std::vector<pid_t> pids_;
    CellRouter router_;
    Batch batch_;
    std::uint64_t next_batch_id_ = 0;
    ServiceStats stats_;
};

} // namespace service
} // namespace ap

#endif // AGILEPAGING_SERVICE_SERVER_HH
