/**
 * @file
 * Wire protocol for the apsimd simulation service.
 *
 * Every message — client connection or internal worker pipe — is a
 * length-prefixed frame: a little-endian u32 payload length, one type
 * byte, then the payload. Batch requests and cell messages carry flat
 * binary payloads built with base/serialize; the frames streamed back
 * to clients carry JSON text (one object per frame) so a client can
 * tail results as NDJSON without a binary decoder.
 *
 * A well-framed payload that fails to decode is a *recoverable* error:
 * the server answers with an Error frame and keeps the connection.
 * Only an unreadable frame header (short read, oversized length)
 * poisons the stream, since framing can no longer be trusted.
 */

#ifndef AGILEPAGING_SERVICE_WIRE_HH
#define AGILEPAGING_SERVICE_WIRE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "base/serialize.hh"
#include "sim/experiment.hh"

namespace ap
{
namespace service
{

/** Frame type tags. Client-facing and worker-pipe messages share the
 *  framing so both sides reuse one reader. */
enum class FrameType : std::uint8_t
{
    /** client -> server: encoded ExperimentSpec batch. */
    BatchRequest = 1,
    /** server -> client: JSON ap-run-frame-v1 for one finished cell. */
    RunFrame = 2,
    /** server -> client: JSON ap-batch-end-v1 closing a batch. */
    BatchEnd = 3,
    /** server -> client: JSON ap-error-v1 (batch- or cell-scoped). */
    Error = 4,
    /** client -> server: stop accepting, drain, exit. */
    Shutdown = 5,
    /** dispatcher -> worker: one cell to simulate. */
    CellRequest = 6,
    /** worker -> dispatcher: result (or sticky error) for one cell. */
    CellResult = 7,
};

/** Frames larger than this are a protocol violation (the biggest
 *  legitimate payload is a run frame, a few KiB of JSON). */
constexpr std::uint32_t kMaxFrameLen = 64u << 20;

struct Frame
{
    FrameType type = FrameType::Error;
    std::vector<std::uint8_t> payload;
};

enum class ReadStatus
{
    Ok,
    /** Clean EOF between frames. */
    Eof,
    /** Short read inside a frame, oversized length, or syscall error:
     *  the stream can no longer be re-synchronized. */
    Broken,
};

/** Write one frame, looping over partial writes. @return false on
 *  write error (EPIPE included; callers treat it as peer-gone). */
bool writeFrame(int fd, FrameType type, const void *data, std::size_t n);
bool writeFrame(int fd, FrameType type,
                const std::vector<std::uint8_t> &payload);
bool writeFrame(int fd, FrameType type, const std::string &payload);

/** Read one frame, looping over partial reads. */
ReadStatus readFrame(int fd, Frame &out);

/**
 * Validate one cell against what a Machine can actually be configured
 * with: registry-known workload, in-range mode/page-size/coherence
 * enums, sane vCPU count. Dispatching an invalid spec would ap_fatal
 * inside a worker, so the server rejects it here with an Error frame
 * instead.
 * @return empty string if valid, else a human-readable reason.
 */
std::string validateSpec(const ExperimentSpec &spec);

/** Encode a batch of cells for a BatchRequest frame. */
std::vector<std::uint8_t>
encodeBatch(const std::vector<ExperimentSpec> &specs);

/**
 * Decode a BatchRequest payload. Enum fields are range-checked and
 * every spec is run through validateSpec.
 * @return false with @p err set on any malformed or invalid content.
 */
bool decodeBatch(const std::vector<std::uint8_t> &payload,
                 std::vector<ExperimentSpec> &out, std::string &err);

/** RunResult codec for worker result pipes. */
void putRunResult(Serializer &s, const RunResult &r);
bool getRunResult(Deserializer &d, RunResult &out);

/** One cell dispatched to a worker. */
struct CellRequest
{
    std::uint64_t batch = 0;
    std::uint32_t cell = 0;
    ExperimentSpec spec;
};

std::vector<std::uint8_t> encodeCellRequest(const CellRequest &req);
bool decodeCellRequest(const std::vector<std::uint8_t> &payload,
                       CellRequest &out);

/** One finished cell coming back from a worker. */
struct CellResult
{
    std::uint64_t batch = 0;
    std::uint32_t cell = 0;
    bool ok = false;
    /** Set when !ok: the worker-side failure, propagated verbatim
     *  (sticky cache errors reproduce the first failure's text). */
    std::string error;
    RunResult run;
};

std::vector<std::uint8_t> encodeCellResult(const CellResult &res);
bool decodeCellResult(const std::vector<std::uint8_t> &payload,
                      CellResult &out);

/**
 * Render the JSON payload of a RunFrame. The "run" object is emitted
 * by writeRunResultJson, so it is byte-identical to the corresponding
 * element of an in-process ap-runs-v1 "runs" array.
 */
std::string renderRunFrame(std::uint64_t batch, std::uint32_t cell,
                           unsigned worker, const RunResult &r);

/** Render the JSON payload of a BatchEnd frame. */
std::string renderBatchEnd(std::uint64_t batch, std::uint32_t cells,
                           std::uint32_t errors);

/** Render the JSON payload of an Error frame. @p cell < 0 for
 *  batch-scoped errors. */
std::string renderErrorFrame(const std::string &error,
                             std::int64_t batch = -1,
                             std::int64_t cell = -1);

} // namespace service
} // namespace ap

#endif // AGILEPAGING_SERVICE_WIRE_HH
