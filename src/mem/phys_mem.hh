/**
 * @file
 * Host physical memory: a typed frame allocator.
 *
 * Every byte of simulated state lives in a host frame. A frame is either
 * a data page (carrying a content id used by the dedup/page-sharing
 * machinery) or a page-table page (carrying 512 architectural PTEs).
 * Guest "physical" frames are backed by host frames; the mapping is owned
 * by the VMM, not by this class.
 */

#ifndef AGILEPAGING_MEM_PHYS_MEM_HH
#define AGILEPAGING_MEM_PHYS_MEM_HH

#include <array>
#include <cstdint>
#include <memory>
#include <vector>

#include "base/logging.hh"
#include "base/serialize.hh"
#include "base/types.hh"
#include "mem/arena.hh"
#include "mem/pte.hh"

namespace ap
{

/** What a host frame currently holds. */
enum class FrameKind : std::uint8_t
{
    Free,
    /** Application/guest data page. */
    Data,
    /** A page of some page table (guest, host, or shadow). */
    PageTable,
};

/** Which page table a PageTable frame belongs to (for accounting). */
enum class TableOwner : std::uint8_t
{
    None,
    GuestPt,
    HostPt,
    ShadowPt,
    NativePt,
};

/**
 * The host physical memory pool.
 *
 * Frame 0 is reserved and never allocated so that pfn 0 can serve as a
 * "null" value in tests and table roots are always non-zero.
 */
class PhysMem
{
  public:
    /**
     * @param frames capacity of the pool in 4 KB frames (>= 2).
     * @param arena_slab_pages PtPage slab granularity of the backing
     *        arena (sizing knob; simulated behavior is unaffected).
     */
    explicit PhysMem(std::uint64_t frames,
                     std::size_t arena_slab_pages =
                         PtPageArena::kDefaultSlabPages);

    /**
     * Allocate a data frame.
     * @param content_id synthetic page-content identifier (dedup key)
     * @return the frame, or kNoFrame when the pool is exhausted
     */
    FrameId allocData(std::uint64_t content_id = 0);

    /**
     * Allocate @p n contiguous, naturally aligned data frames (large-
     * page backing). Served from the untouched tail of the pool only.
     * @return the first frame, or kNoFrame when it cannot be satisfied
     */
    FrameId allocDataContiguous(std::uint64_t n,
                                std::uint64_t content_id = 0);

    /**
     * Allocate a zeroed page-table frame.
     * @return the frame, or kNoFrame when the pool is exhausted
     */
    FrameId allocTable(TableOwner owner);

    /** Release a frame back to the pool. @pre frame is allocated. */
    void free(FrameId frame);

    /**
     * @return mutable PTE array of a PageTable frame.
     *
     * This is the single hottest call in the simulator (every walker
     * level, every functional page-table op), so it is an inline
     * two-load array index; the assert collapses bounds and kind
     * checks into one branch (tables_[f] is non-null exactly for
     * in-range PageTable frames).
     */
    PtPage &
    table(FrameId frame)
    {
        ap_assert(frame <= capacity_ && tables_[frame],
                  "frame ", frame, " is not a page-table frame");
        return *tables_[frame];
    }

    const PtPage &
    table(FrameId frame) const
    {
        ap_assert(frame <= capacity_ && tables_[frame],
                  "frame ", frame, " is not a page-table frame");
        return *tables_[frame];
    }

    /**
     * Unchecked memo view of the frame-to-table mapping for batched
     * walk pre-resolution: null unless @p frame currently holds a
     * page-table page. Entries are invalidated by free()/restore (the
     * slot is nulled) before any pointer could dangle.
     */
    const PtPage *
    tableOrNull(FrameId frame) const
    {
        return frame <= capacity_ ? tables_[frame] : nullptr;
    }

    /** Arena backing all page-table pages (pool observability). */
    const PtPageArena &arena() const { return arena_; }

    FrameKind kind(FrameId frame) const;
    TableOwner owner(FrameId frame) const;

    /** Content id of a Data frame (dedup key). */
    std::uint64_t contentId(FrameId frame) const;
    void setContentId(FrameId frame, std::uint64_t content_id);

    std::uint64_t capacity() const { return capacity_; }
    std::uint64_t allocated() const { return allocated_; }
    std::uint64_t freeFrames() const { return capacity_ - allocated_; }

    /** Frames currently allocated per table owner (for stats). */
    std::uint64_t tableFrames(TableOwner owner) const;

    /** Sentinel returned when allocation fails. */
    static constexpr FrameId kNoFrame = 0;

    /**
     * Snapshot support. Serializes every frame that has ever been
     * handed out ([1, next_fresh_)) plus the allocator bookkeeping and
     * arena counters; arena page *contents* are restored from the
     * per-frame images, so the recycle list itself is never saved
     * (recycled pages are cleared on reuse and thus unobservable).
     */
    void saveState(Serializer &s) const;
    void restoreState(Deserializer &d);

  private:
    /** Plain-data per-frame record; table storage lives in the arena
     *  and is addressed through tables_. */
    struct FrameInfo
    {
        FrameKind kind = FrameKind::Free;
        TableOwner owner = TableOwner::None;
        std::uint64_t contentId = 0;
    };

    FrameId allocRaw();
    FrameInfo &info(FrameId frame);
    const FrameInfo &info(FrameId frame) const;

    std::uint64_t capacity_;
    std::uint64_t allocated_ = 0;
    std::uint64_t next_fresh_ = 1; // frame 0 reserved
    std::vector<FrameId> free_list_;
    std::vector<FrameInfo> frames_;
    /** Frame -> PTE page; non-null exactly for PageTable frames. */
    std::vector<PtPage *> tables_;
    std::array<std::uint64_t, 5> table_counts_{};
    /** Pool behind every page-table page this PhysMem hands out. */
    PtPageArena arena_;
};

} // namespace ap

#endif // AGILEPAGING_MEM_PHYS_MEM_HH
