/**
 * @file
 * Host physical memory: a typed frame allocator.
 *
 * Every byte of simulated state lives in a host frame. A frame is either
 * a data page (carrying a content id used by the dedup/page-sharing
 * machinery) or a page-table page (carrying 512 architectural PTEs).
 * Guest "physical" frames are backed by host frames; the mapping is owned
 * by the VMM, not by this class.
 */

#ifndef AGILEPAGING_MEM_PHYS_MEM_HH
#define AGILEPAGING_MEM_PHYS_MEM_HH

#include <array>
#include <cstdint>
#include <memory>
#include <vector>

#include "base/serialize.hh"
#include "base/types.hh"
#include "mem/pte.hh"

namespace ap
{

/** One page worth of page-table entries. */
using PtPage = std::array<Pte, kPtEntries>;

/** What a host frame currently holds. */
enum class FrameKind : std::uint8_t
{
    Free,
    /** Application/guest data page. */
    Data,
    /** A page of some page table (guest, host, or shadow). */
    PageTable,
};

/** Which page table a PageTable frame belongs to (for accounting). */
enum class TableOwner : std::uint8_t
{
    None,
    GuestPt,
    HostPt,
    ShadowPt,
    NativePt,
};

/**
 * The host physical memory pool.
 *
 * Frame 0 is reserved and never allocated so that pfn 0 can serve as a
 * "null" value in tests and table roots are always non-zero.
 */
class PhysMem
{
  public:
    /** @param frames capacity of the pool in 4 KB frames (>= 2). */
    explicit PhysMem(std::uint64_t frames);

    /**
     * Allocate a data frame.
     * @param content_id synthetic page-content identifier (dedup key)
     * @return the frame, or kNoFrame when the pool is exhausted
     */
    FrameId allocData(std::uint64_t content_id = 0);

    /**
     * Allocate @p n contiguous, naturally aligned data frames (large-
     * page backing). Served from the untouched tail of the pool only.
     * @return the first frame, or kNoFrame when it cannot be satisfied
     */
    FrameId allocDataContiguous(std::uint64_t n,
                                std::uint64_t content_id = 0);

    /**
     * Allocate a zeroed page-table frame.
     * @return the frame, or kNoFrame when the pool is exhausted
     */
    FrameId allocTable(TableOwner owner);

    /** Release a frame back to the pool. @pre frame is allocated. */
    void free(FrameId frame);

    /** @return mutable PTE array of a PageTable frame. */
    PtPage &table(FrameId frame);
    const PtPage &table(FrameId frame) const;

    FrameKind kind(FrameId frame) const;
    TableOwner owner(FrameId frame) const;

    /** Content id of a Data frame (dedup key). */
    std::uint64_t contentId(FrameId frame) const;
    void setContentId(FrameId frame, std::uint64_t content_id);

    std::uint64_t capacity() const { return capacity_; }
    std::uint64_t allocated() const { return allocated_; }
    std::uint64_t freeFrames() const { return capacity_ - allocated_; }

    /** Frames currently allocated per table owner (for stats). */
    std::uint64_t tableFrames(TableOwner owner) const;

    /** Sentinel returned when allocation fails. */
    static constexpr FrameId kNoFrame = 0;

    /**
     * Snapshot support. Serializes every frame that has ever been
     * handed out ([1, next_fresh_)) plus the allocator bookkeeping; the
     * recycled-PtPage pool is deliberately excluded (allocTable zeroes
     * recycled pages, so pool contents are unobservable).
     */
    void saveState(Serializer &s) const;
    void restoreState(Deserializer &d);

  private:
    struct FrameInfo
    {
        FrameKind kind = FrameKind::Free;
        TableOwner owner = TableOwner::None;
        std::uint64_t contentId = 0;
        std::unique_ptr<PtPage> table;
    };

    FrameId allocRaw();
    FrameInfo &info(FrameId frame);
    const FrameInfo &info(FrameId frame) const;

    std::uint64_t capacity_;
    std::uint64_t allocated_ = 0;
    std::uint64_t next_fresh_ = 1; // frame 0 reserved
    std::vector<FrameId> free_list_;
    std::vector<FrameInfo> frames_;
    std::array<std::uint64_t, 5> table_counts_{};
    /** Retired PtPage storage, recycled by allocTable so page-table
     *  churn (shadow rebuilds, CoW, mmap/munmap) stops allocating. */
    std::vector<std::unique_ptr<PtPage>> table_pool_;
};

} // namespace ap

#endif // AGILEPAGING_MEM_PHYS_MEM_HH
