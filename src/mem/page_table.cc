/**
 * @file
 * Radix page table implementation.
 */

#include "mem/page_table.hh"

#include "base/logging.hh"

namespace ap
{

RadixPageTable::RadixPageTable(PtSpace &space, std::string name)
    : space_(space), name_(std::move(name))
{
    root_ = space_.allocTablePage();
    ap_assert(root_ != PhysMem::kNoFrame,
              "cannot allocate root for ", name_);
    page_count_ = 1;
}

RadixPageTable::RadixPageTable(PtSpace &space, std::string name, ForRestore)
    : space_(space), name_(std::move(name)), root_(PhysMem::kNoFrame)
{
}

RadixPageTable::~RadixPageTable()
{
    // A deferred-restore shell that never adopted a root owns nothing.
    if (root_ == PhysMem::kNoFrame)
        return;
    clear();
    space_.freeTablePage(root_);
    --page_count_;
}

void
RadixPageTable::freeSubtree(FrameId frame, unsigned depth)
{
    // Free all table pages strictly below (frame, depth). Terminal
    // entries point at data pages (or guest-table pages for switching
    // entries) that this table does not own.
    if (depth >= kPtLevels - 1)
        return;
    PtPage &page = space_.page(frame);
    for (Pte &pte : page) {
        if (pte.valid && !isTerminal(pte, depth)) {
            freeSubtree(pte.pfn, depth + 1);
            space_.freeTablePage(pte.pfn);
            --page_count_;
        }
        pte = Pte{};
    }
}

Pte *
RadixPageTable::ensurePath(Addr va, unsigned depth)
{
    ap_assert(depth < kPtLevels, "depth out of range");
    FrameId frame = root_;
    for (unsigned d = 0; d < depth; ++d) {
        Pte &pte = space_.page(frame)[ptIndex(va, d)];
        if (!pte.valid || isTerminal(pte, d)) {
            // A terminal entry blocking the path (e.g., an old 2 MB
            // mapping being broken into 4 KB) is replaced by a fresh
            // table page.
            FrameId child = space_.allocTablePage();
            if (child == PhysMem::kNoFrame)
                return nullptr;
            ++page_count_;
            pte = Pte{};
            pte.valid = true;
            pte.writable = true;
            pte.pfn = child;
        }
        frame = pte.pfn;
    }
    return &space_.page(frame)[ptIndex(va, depth)];
}

Pte *
RadixPageTable::map(Addr va, FrameId pfn, PageSize ps, bool writable,
                    bool user)
{
    unsigned depth = leafDepth(ps);
    ap_assert(isAligned(va, ps), "map of unaligned va 0x", std::hex, va);
    Pte *pte = ensurePath(va, depth);
    if (!pte)
        return nullptr;
    if (pte->valid && !isTerminal(*pte, depth)) {
        // Replacing a subtree (e.g., promoting 4 KB pages to 2 MB).
        freeSubtree(pte->pfn, depth + 1);
        space_.freeTablePage(pte->pfn);
        --page_count_;
    }
    *pte = Pte{};
    pte->valid = true;
    pte->writable = writable;
    pte->user = user;
    pte->pfn = pfn;
    pte->pageSize = (depth != kPtLevels - 1);
    return pte;
}

bool
RadixPageTable::unmap(Addr va)
{
    FrameId frame = root_;
    for (unsigned d = 0; d < kPtLevels; ++d) {
        Pte &pte = space_.page(frame)[ptIndex(va, d)];
        if (!pte.valid)
            return false;
        if (isTerminal(pte, d)) {
            pte = Pte{};
            return true;
        }
        frame = pte.pfn;
    }
    return false;
}

std::optional<PtMapping>
RadixPageTable::lookup(Addr va) const
{
    FrameId frame = root_;
    for (unsigned d = 0; d < kPtLevels; ++d) {
        const Pte &pte = space_.page(frame)[ptIndex(va, d)];
        if (!pte.valid)
            return std::nullopt;
        if (isTerminal(pte, d)) {
            PtMapping m;
            m.pfn = pte.pfn;
            m.depth = d;
            m.pte = pte;
            m.size = (d == kPtLevels - 1) ? PageSize::Size4K
                     : (d == kPtLevels - 2) ? PageSize::Size2M
                                            : PageSize::Size1G;
            return m;
        }
        frame = pte.pfn;
    }
    return std::nullopt;
}

Pte *
RadixPageTable::entry(Addr va, unsigned depth)
{
    ap_assert(depth < kPtLevels, "depth out of range");
    FrameId frame = root_;
    for (unsigned d = 0; d < depth; ++d) {
        const Pte &pte = space_.page(frame)[ptIndex(va, d)];
        if (!pte.valid || isTerminal(pte, d))
            return nullptr;
        frame = pte.pfn;
    }
    return &space_.page(frame)[ptIndex(va, depth)];
}

const Pte *
RadixPageTable::entry(Addr va, unsigned depth) const
{
    return const_cast<RadixPageTable *>(this)->entry(va, depth);
}

FrameId
RadixPageTable::tableFrame(Addr va, unsigned depth) const
{
    ap_assert(depth < kPtLevels, "depth out of range");
    FrameId frame = root_;
    for (unsigned d = 0; d < depth; ++d) {
        const Pte &pte = space_.page(frame)[ptIndex(va, d)];
        if (!pte.valid || isTerminal(pte, d))
            return PhysMem::kNoFrame;
        frame = pte.pfn;
    }
    return frame;
}

bool
RadixPageTable::invalidateEntry(Addr va, unsigned depth)
{
    Pte *pte = entry(va, depth);
    if (!pte || !pte->valid)
        return false;
    if (!isTerminal(*pte, depth)) {
        freeSubtree(pte->pfn, depth + 1);
        space_.freeTablePage(pte->pfn);
        --page_count_;
    }
    *pte = Pte{};
    return true;
}

void
RadixPageTable::clear()
{
    freeSubtree(root_, 0);
}

void
RadixPageTable::walkTerminals(
    FrameId frame, unsigned depth, Addr base,
    const std::function<void(Addr, const Pte &, unsigned)> &fn) const
{
    const PtPage &page = space_.page(frame);
    for (unsigned i = 0; i < kPtEntries; ++i) {
        const Pte &pte = page[i];
        if (!pte.valid)
            continue;
        Addr va = base + static_cast<Addr>(i) * spanAtDepth(depth);
        if (isTerminal(pte, depth)) {
            fn(va, pte, depth);
        } else {
            walkTerminals(pte.pfn, depth + 1, va, fn);
        }
    }
}

void
RadixPageTable::forEachTerminal(
    const std::function<void(Addr, const Pte &, unsigned)> &fn) const
{
    walkTerminals(root_, 0, 0, fn);
}

std::uint64_t
RadixPageTable::mappingCount() const
{
    std::uint64_t n = 0;
    forEachTerminal([&n](Addr, const Pte &, unsigned) { ++n; });
    return n;
}

} // namespace ap
