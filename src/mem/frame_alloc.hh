/**
 * @file
 * A storage-less frame-id allocator used for guest physical address
 * spaces: the guest OS hands out gPA frames from this pool, and the
 * VMM separately decides which host frames back them.
 */

#ifndef AGILEPAGING_MEM_FRAME_ALLOC_HH
#define AGILEPAGING_MEM_FRAME_ALLOC_HH

#include <vector>

#include "base/logging.hh"
#include "base/types.hh"

namespace ap
{

/**
 * Allocates frame ids 1..capacity (0 is the null frame, as in PhysMem).
 */
class FrameAllocator
{
  public:
    explicit FrameAllocator(std::uint64_t capacity) : capacity_(capacity)
    {
        ap_assert(capacity >= 1, "FrameAllocator needs capacity");
    }

    /** @return a frame id, or 0 when exhausted. */
    FrameId
    alloc()
    {
        if (!free_list_.empty()) {
            FrameId f = free_list_.back();
            free_list_.pop_back();
            ++allocated_;
            return f;
        }
        if (next_ <= capacity_) {
            ++allocated_;
            return next_++;
        }
        return 0;
    }

    /**
     * Allocate @p n physically contiguous, naturally aligned frames
     * (for large-page backing). Only served from the fresh region.
     * @return first frame id, or 0 when exhausted.
     */
    FrameId
    allocContiguous(std::uint64_t n)
    {
        ap_assert(n >= 1, "allocContiguous(0)");
        FrameId first = ((next_ + n - 1) / n) * n; // align to n
        if (first + n - 1 > capacity_)
            return 0;
        // Frames skipped by alignment go to the free list.
        for (FrameId f = next_; f < first; ++f) {
            free_list_.push_back(f);
        }
        next_ = first + n;
        allocated_ += n;
        return first;
    }

    void
    free(FrameId f)
    {
        ap_assert(f >= 1 && f <= capacity_, "bad frame ", f);
        ap_assert(allocated_ > 0, "free with none allocated");
        --allocated_;
        free_list_.push_back(f);
    }

    std::uint64_t capacity() const { return capacity_; }
    std::uint64_t allocated() const { return allocated_; }
    std::uint64_t freeFrames() const { return capacity_ - allocated_; }

  private:
    std::uint64_t capacity_;
    std::uint64_t allocated_ = 0;
    FrameId next_ = 1;
    std::vector<FrameId> free_list_;
};

} // namespace ap

#endif // AGILEPAGING_MEM_FRAME_ALLOC_HH
