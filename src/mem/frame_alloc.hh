/**
 * @file
 * A storage-less frame-id allocator used for guest physical address
 * spaces: the guest OS hands out gPA frames from this pool, and the
 * VMM separately decides which host frames back them.
 */

#ifndef AGILEPAGING_MEM_FRAME_ALLOC_HH
#define AGILEPAGING_MEM_FRAME_ALLOC_HH

#include <algorithm>
#include <cstddef>
#include <vector>

#include "base/logging.hh"
#include "base/serialize.hh"
#include "base/types.hh"

namespace ap
{

/**
 * Carve an @p n-aligned run of @p n consecutive frame ids out of
 * @p free_list (sorting it in place), or return 0 when none exists.
 *
 * Freed large-page groups come back one frame at a time, so the only
 * way to recycle them for a later contiguous allocation is to sort and
 * scan. Callers pay this only when their bump region is exhausted —
 * the state in which the alternative is failing the allocation.
 */
inline FrameId
claimContiguousRun(std::vector<FrameId> &free_list, std::uint64_t n)
{
    std::sort(free_list.begin(), free_list.end());
    std::uint64_t run = 0;
    for (std::size_t i = 0; i < free_list.size(); ++i) {
        if (run > 0 && free_list[i] == free_list[i - 1] + 1) {
            ++run;
        } else {
            run = free_list[i] % n == 0 ? 1 : 0;
        }
        if (run == n) {
            std::size_t begin = i + 1 - n;
            FrameId f = free_list[begin];
            free_list.erase(free_list.begin() +
                                static_cast<std::ptrdiff_t>(begin),
                            free_list.begin() +
                                static_cast<std::ptrdiff_t>(i + 1));
            return f;
        }
    }
    return 0;
}

/**
 * Allocates frame ids 1..capacity (0 is the null frame, as in PhysMem).
 */
class FrameAllocator
{
  public:
    explicit FrameAllocator(std::uint64_t capacity) : capacity_(capacity)
    {
        ap_assert(capacity >= 1, "FrameAllocator needs capacity");
    }

    /** @return a frame id, or 0 when exhausted. */
    FrameId
    alloc()
    {
        if (!free_list_.empty()) {
            FrameId f = free_list_.back();
            free_list_.pop_back();
            ++allocated_;
            ++recycles_;
            noteHighWater();
            return f;
        }
        if (next_ <= capacity_) {
            ++allocated_;
            noteHighWater();
            return next_++;
        }
        return 0;
    }

    /**
     * Allocate @p n physically contiguous, naturally aligned frames
     * (for large-page backing). Served from the fresh region while it
     * lasts, then from aligned runs of freed frames — without the
     * fallback, large-page churn (fork COW, mmap/munmap) burns through
     * the pool monotonically and exhausts it even when almost every
     * frame is free.
     * @return first frame id, or 0 when exhausted.
     */
    FrameId
    allocContiguous(std::uint64_t n)
    {
        ap_assert(n >= 1, "allocContiguous(0)");
        FrameId first = ((next_ + n - 1) / n) * n; // align to n
        if (first + n - 1 <= capacity_) {
            // Frames skipped by alignment go to the free list.
            for (FrameId f = next_; f < first; ++f) {
                free_list_.push_back(f);
            }
            next_ = first + n;
            allocated_ += n;
            noteHighWater();
            return first;
        }
        if (n == 1)
            return alloc();
        FrameId f = claimContiguousRun(free_list_, n);
        if (f) {
            allocated_ += n;
            recycles_ += n;
            noteHighWater();
        }
        return f;
    }

    void
    free(FrameId f)
    {
        ap_assert(f >= 1 && f <= capacity_, "bad frame ", f);
        ap_assert(allocated_ > 0, "free with none allocated");
        --allocated_;
        free_list_.push_back(f);
    }

    std::uint64_t capacity() const { return capacity_; }
    std::uint64_t allocated() const { return allocated_; }
    std::uint64_t freeFrames() const { return capacity_ - allocated_; }
    /** Allocations served by recycling previously freed ids. */
    std::uint64_t recycles() const { return recycles_; }
    /** Most frame ids ever simultaneously allocated. */
    std::uint64_t highWater() const { return high_water_; }

    /** Snapshot support. The free list is order-exact so future
     *  alloc()/claimContiguousRun() decisions replay identically. */
    void
    saveState(Serializer &s) const
    {
        s.putU64(capacity_);
        s.putU64(allocated_);
        s.putU64(next_);
        s.putPodVector(free_list_);
        s.putU64(recycles_);
        s.putU64(high_water_);
    }

    void
    restoreState(Deserializer &d)
    {
        if (d.getU64() != capacity_) {
            d.fail();
            return;
        }
        allocated_ = d.getU64();
        next_ = d.getU64();
        d.getPodVector(free_list_);
        recycles_ = d.getU64();
        high_water_ = d.getU64();
    }

  private:
    void
    noteHighWater()
    {
        if (allocated_ > high_water_)
            high_water_ = allocated_;
    }

    std::uint64_t capacity_;
    std::uint64_t allocated_ = 0;
    FrameId next_ = 1;
    std::vector<FrameId> free_list_;
    std::uint64_t recycles_ = 0;
    std::uint64_t high_water_ = 0;
};

} // namespace ap

#endif // AGILEPAGING_MEM_FRAME_ALLOC_HH
