/**
 * @file
 * Slab arena for page-table pages.
 *
 * The hot allocation pattern of the simulator is page-table churn:
 * shadow rebuilds, guest fork/exec, and snapshot restores allocate and
 * retire thousands of 4 KB PTE arrays. Routing each through the heap
 * (one make_unique per page) dominated allocation cost, and a restore
 * paid one heap round-trip per live table page.
 *
 * This arena follows the a3/gxen shadow-page-table pool shape: pages
 * live in large slabs carved out once, a bump cursor hands out
 * never-used pages, and retired pages go on a recycle list consumed
 * before the cursor moves. reset() is the cursor trick that makes
 * snapshot forks cheap — every outstanding page reverts to the arena
 * in O(1) without touching the heap, and the subsequent restore
 * re-acquires pages from the same slabs in the same order.
 *
 * Counters (pool hits, recycles, high-water, slab fallbacks) are
 * observability surfaces exported through the stats tree; they travel
 * through saveState/restoreState so a forked machine reports the same
 * allocation history as the machine it was forked from.
 */

#ifndef AGILEPAGING_MEM_ARENA_HH
#define AGILEPAGING_MEM_ARENA_HH

#include <array>
#include <cstdint>
#include <memory>
#include <vector>

#include "base/logging.hh"
#include "base/serialize.hh"
#include "mem/pte.hh"

namespace ap
{

/** One page worth of page-table entries. */
using PtPage = std::array<Pte, kPtEntries>;

/**
 * Pool of PtPage storage with cursor recycling.
 *
 * Pages returned by acquire() stay valid until release()d or until
 * reset(); the arena owns all storage.
 */
class PtPageArena
{
  public:
    /** Default pages per slab (1 MB of PTE storage). */
    static constexpr std::size_t kDefaultSlabPages = 256;

    explicit PtPageArena(std::size_t slab_pages = kDefaultSlabPages)
        : slab_pages_(slab_pages)
    {
        ap_assert(slab_pages >= 1, "arena slab must hold pages");
    }

    /**
     * Hand out one page.
     * @param fresh set true when the page has never been written (its
     *        PTEs are still value-initialized zero) — callers skip the
     *        clear for those.
     */
    PtPage *
    acquire(bool &fresh)
    {
        ++live_;
        if (live_ > high_water_)
            high_water_ = live_;
        if (!recycled_.empty()) {
            PtPage *p = recycled_.back();
            recycled_.pop_back();
            ++pool_hits_;
            ++recycles_;
            fresh = false;
            return p;
        }
        if (cursor_ == slabs_.size() * slab_pages_) {
            // No recycled page and every slab page handed out at least
            // once: grow by one slab (the only heap traffic here).
            slabs_.push_back(std::make_unique<PtPage[]>(slab_pages_));
            ++slab_allocs_;
        } else {
            ++pool_hits_;
        }
        std::size_t slab = cursor_ / slab_pages_;
        std::size_t idx = cursor_ % slab_pages_;
        ++cursor_;
        // Below the reuse mark the page was handed out before a
        // reset() and carries stale PTEs.
        fresh = cursor_ > reused_mark_;
        if (fresh)
            reused_mark_ = cursor_;
        return &slabs_[slab][idx];
    }

    /** Return one page to the recycle list (contents left as-is). */
    void
    release(PtPage *page)
    {
        ap_assert(live_ > 0, "arena release with none live");
        --live_;
        recycled_.push_back(page);
    }

    /**
     * Cursor recycling: every outstanding page reverts to the arena.
     * Slabs are kept; subsequent acquires reuse their storage in
     * order. All previously handed-out pointers become invalid.
     */
    void
    reset()
    {
        cursor_ = 0;
        live_ = 0;
        recycled_.clear();
    }

    /** Pages currently handed out. */
    std::uint64_t live() const { return live_; }
    /** Most pages ever simultaneously handed out. */
    std::uint64_t highWater() const { return high_water_; }
    /** Acquires served without new heap allocation. */
    std::uint64_t poolHits() const { return pool_hits_; }
    /** Acquires served from the recycle list. */
    std::uint64_t recycles() const { return recycles_; }
    /** Slab allocations (the fallback path that touches the heap). */
    std::uint64_t slabAllocs() const { return slab_allocs_; }
    /** Pages of backing storage currently owned. */
    std::uint64_t
    reservedPages() const
    {
        return slabs_.size() * slab_pages_;
    }

    /**
     * Snapshot support: the counters travel with the machine so a
     * forked run reports the allocation history of its parent at the
     * snapshot point. Page contents are owned (and re-serialized) by
     * PhysMem; callers reset() before re-acquiring on restore.
     */
    void
    saveState(Serializer &s) const
    {
        s.putU64(pool_hits_);
        s.putU64(recycles_);
        s.putU64(slab_allocs_);
        s.putU64(high_water_);
    }

    void
    restoreState(Deserializer &d)
    {
        pool_hits_ = d.getU64();
        recycles_ = d.getU64();
        slab_allocs_ = d.getU64();
        high_water_ = d.getU64();
    }

  private:
    std::size_t slab_pages_;
    std::vector<std::unique_ptr<PtPage[]>> slabs_;
    /** Next never-recycled slot (slab-major index). */
    std::size_t cursor_ = 0;
    /** Slots at index < reused_mark_ have been handed out at least
     *  once since construction and may hold stale PTEs. */
    std::size_t reused_mark_ = 0;
    std::vector<PtPage *> recycled_;
    std::uint64_t live_ = 0;
    std::uint64_t high_water_ = 0;
    std::uint64_t pool_hits_ = 0;
    std::uint64_t recycles_ = 0;
    std::uint64_t slab_allocs_ = 0;
};

} // namespace ap

#endif // AGILEPAGING_MEM_ARENA_HH
