/**
 * @file
 * Host physical frame allocator implementation.
 */

#include "mem/phys_mem.hh"

#include <algorithm>

#include "base/logging.hh"
#include "mem/frame_alloc.hh"

namespace ap
{

PhysMem::PhysMem(std::uint64_t frames, std::size_t arena_slab_pages)
    : capacity_(frames), arena_(arena_slab_pages)
{
    ap_assert(frames >= 1, "PhysMem needs at least 1 frame");
    // Index 0 is the reserved null frame; usable ids are 1..capacity_.
    frames_.resize(frames + 1);
    tables_.resize(frames + 1, nullptr);
}

FrameId
PhysMem::allocRaw()
{
    if (!free_list_.empty()) {
        FrameId f = free_list_.back();
        free_list_.pop_back();
        ++allocated_;
        return f;
    }
    if (next_fresh_ <= capacity_) {
        ++allocated_;
        return next_fresh_++;
    }
    return kNoFrame;
}

FrameId
PhysMem::allocData(std::uint64_t content_id)
{
    FrameId f = allocRaw();
    if (f == kNoFrame)
        return kNoFrame;
    FrameInfo &fi = frames_[f];
    fi.kind = FrameKind::Data;
    fi.owner = TableOwner::None;
    fi.contentId = content_id;
    return f;
}

FrameId
PhysMem::allocDataContiguous(std::uint64_t n, std::uint64_t content_id)
{
    ap_assert(n >= 1, "allocDataContiguous(0)");
    FrameId first = ((next_fresh_ + n - 1) / n) * n;
    if (first + n - 1 <= capacity_) {
        // Frames skipped to reach alignment stay available for 4K use.
        for (FrameId f = next_fresh_; f < first; ++f)
            free_list_.push_back(f);
        next_fresh_ = first + n;
    } else if (n == 1) {
        return allocData(content_id);
    } else {
        // Fresh region exhausted: recycle an aligned run of freed
        // frames so large-page churn cannot exhaust a mostly-free pool.
        first = claimContiguousRun(free_list_, n);
        if (first == kNoFrame)
            return kNoFrame;
    }
    allocated_ += n;
    for (FrameId f = first; f < first + n; ++f) {
        FrameInfo &fi = frames_[f];
        fi.kind = FrameKind::Data;
        fi.owner = TableOwner::None;
        fi.contentId = content_id;
    }
    return first;
}

FrameId
PhysMem::allocTable(TableOwner owner)
{
    FrameId f = allocRaw();
    if (f == kNoFrame)
        return kNoFrame;
    FrameInfo &fi = frames_[f];
    fi.kind = FrameKind::PageTable;
    fi.owner = owner;
    fi.contentId = 0;
    bool fresh = false;
    PtPage *page = arena_.acquire(fresh);
    if (!fresh)
        page->fill(Pte{});
    tables_[f] = page;
    ++table_counts_[static_cast<std::size_t>(owner)];
    return f;
}

void
PhysMem::free(FrameId frame)
{
    FrameInfo &fi = info(frame);
    ap_assert(fi.kind != FrameKind::Free, "double free of frame ", frame);
    if (fi.kind == FrameKind::PageTable) {
        --table_counts_[static_cast<std::size_t>(fi.owner)];
        // Park the 4 KB PTE array in the arena for the next allocTable
        // instead of returning it to the heap.
        arena_.release(tables_[frame]);
        tables_[frame] = nullptr;
    }
    fi = FrameInfo{};
    --allocated_;
    free_list_.push_back(frame);
}

FrameKind
PhysMem::kind(FrameId frame) const
{
    return info(frame).kind;
}

TableOwner
PhysMem::owner(FrameId frame) const
{
    return info(frame).owner;
}

std::uint64_t
PhysMem::contentId(FrameId frame) const
{
    const FrameInfo &fi = info(frame);
    ap_assert(fi.kind == FrameKind::Data, "contentId of non-data frame");
    return fi.contentId;
}

void
PhysMem::setContentId(FrameId frame, std::uint64_t content_id)
{
    FrameInfo &fi = info(frame);
    ap_assert(fi.kind == FrameKind::Data, "setContentId of non-data frame");
    fi.contentId = content_id;
}

std::uint64_t
PhysMem::tableFrames(TableOwner owner) const
{
    return table_counts_[static_cast<std::size_t>(owner)];
}

void
PhysMem::saveState(Serializer &s) const
{
    s.putMarker(0x4d454d50); // "PMEM"
    s.putU64(capacity_);
    s.putU64(allocated_);
    s.putU64(next_fresh_);
    s.putPodVector(free_list_);
    for (std::uint64_t c : table_counts_)
        s.putU64(c);
    for (FrameId f = 1; f < next_fresh_; ++f) {
        const FrameInfo &fi = frames_[f];
        s.putU8(static_cast<std::uint8_t>(fi.kind));
        s.putU8(static_cast<std::uint8_t>(fi.owner));
        s.putU64(fi.contentId);
        const PtPage *page = tables_[f];
        s.putBool(page != nullptr);
        if (page) {
            static_assert(std::is_trivially_copyable_v<Pte>,
                          "Pte must be raw-serializable");
            s.putRaw(page->data(), sizeof(PtPage));
        }
    }
    arena_.saveState(s);
}

void
PhysMem::restoreState(Deserializer &d)
{
    d.checkMarker(0x4d454d50);
    if (d.getU64() != capacity_) {
        d.fail();
        return;
    }
    allocated_ = d.getU64();
    std::uint64_t prev_fresh = next_fresh_;
    next_fresh_ = d.getU64();
    d.getPodVector(free_list_);
    for (std::uint64_t &c : table_counts_)
        c = d.getU64();
    if (!d.ok() || next_fresh_ > capacity_ + 1) {
        d.fail();
        return;
    }
    // Only frames that were ever handed out (by the prior life of this
    // machine or by the image) can hold state; everything beyond both
    // high-water marks is still default-initialized, so the wipe is
    // O(touched) rather than O(capacity).
    std::uint64_t wipe = std::max(prev_fresh, next_fresh_);
    std::fill(frames_.begin() + 1,
              frames_.begin() + static_cast<std::ptrdiff_t>(wipe),
              FrameInfo{});
    std::fill(tables_.begin() + 1,
              tables_.begin() + static_cast<std::ptrdiff_t>(wipe),
              nullptr);
    // Cursor recycling: all previously live table pages revert to the
    // arena at once; the loop below re-acquires them from the same
    // slabs and overwrites every byte from the image.
    arena_.reset();
    for (FrameId f = 1; f < next_fresh_; ++f) {
        FrameInfo &fi = frames_[f];
        fi.kind = static_cast<FrameKind>(d.getU8());
        fi.owner = static_cast<TableOwner>(d.getU8());
        fi.contentId = d.getU64();
        if (d.getBool()) {
            bool fresh = false;
            PtPage *page = arena_.acquire(fresh);
            d.getRaw(page->data(), sizeof(PtPage));
            tables_[f] = page;
        }
    }
    arena_.restoreState(d);
}

PhysMem::FrameInfo &
PhysMem::info(FrameId frame)
{
    ap_assert(frame > 0 && frame <= capacity_, "bad frame id ", frame);
    return frames_[frame];
}

const PhysMem::FrameInfo &
PhysMem::info(FrameId frame) const
{
    ap_assert(frame > 0 && frame <= capacity_, "bad frame id ", frame);
    return frames_[frame];
}

} // namespace ap
