/**
 * @file
 * Host physical frame allocator implementation.
 */

#include "mem/phys_mem.hh"

#include "base/logging.hh"
#include "mem/frame_alloc.hh"

namespace ap
{

PhysMem::PhysMem(std::uint64_t frames) : capacity_(frames)
{
    ap_assert(frames >= 1, "PhysMem needs at least 1 frame");
    // Index 0 is the reserved null frame; usable ids are 1..capacity_.
    frames_.resize(frames + 1);
}

FrameId
PhysMem::allocRaw()
{
    if (!free_list_.empty()) {
        FrameId f = free_list_.back();
        free_list_.pop_back();
        ++allocated_;
        return f;
    }
    if (next_fresh_ <= capacity_) {
        ++allocated_;
        return next_fresh_++;
    }
    return kNoFrame;
}

FrameId
PhysMem::allocData(std::uint64_t content_id)
{
    FrameId f = allocRaw();
    if (f == kNoFrame)
        return kNoFrame;
    FrameInfo &fi = frames_[f];
    fi.kind = FrameKind::Data;
    fi.owner = TableOwner::None;
    fi.contentId = content_id;
    fi.table.reset();
    return f;
}

FrameId
PhysMem::allocDataContiguous(std::uint64_t n, std::uint64_t content_id)
{
    ap_assert(n >= 1, "allocDataContiguous(0)");
    FrameId first = ((next_fresh_ + n - 1) / n) * n;
    if (first + n - 1 <= capacity_) {
        // Frames skipped to reach alignment stay available for 4K use.
        for (FrameId f = next_fresh_; f < first; ++f)
            free_list_.push_back(f);
        next_fresh_ = first + n;
    } else if (n == 1) {
        return allocData(content_id);
    } else {
        // Fresh region exhausted: recycle an aligned run of freed
        // frames so large-page churn cannot exhaust a mostly-free pool.
        first = claimContiguousRun(free_list_, n);
        if (first == kNoFrame)
            return kNoFrame;
    }
    allocated_ += n;
    for (FrameId f = first; f < first + n; ++f) {
        FrameInfo &fi = frames_[f];
        fi.kind = FrameKind::Data;
        fi.owner = TableOwner::None;
        fi.contentId = content_id;
        fi.table.reset();
    }
    return first;
}

FrameId
PhysMem::allocTable(TableOwner owner)
{
    FrameId f = allocRaw();
    if (f == kNoFrame)
        return kNoFrame;
    FrameInfo &fi = frames_[f];
    fi.kind = FrameKind::PageTable;
    fi.owner = owner;
    fi.contentId = 0;
    if (!table_pool_.empty()) {
        fi.table = std::move(table_pool_.back());
        table_pool_.pop_back();
        fi.table->fill(Pte{});
    } else {
        fi.table = std::make_unique<PtPage>();
    }
    ++table_counts_[static_cast<std::size_t>(owner)];
    return f;
}

void
PhysMem::free(FrameId frame)
{
    FrameInfo &fi = info(frame);
    ap_assert(fi.kind != FrameKind::Free, "double free of frame ", frame);
    if (fi.kind == FrameKind::PageTable) {
        --table_counts_[static_cast<std::size_t>(fi.owner)];
        // Park the 4 KB PTE array for the next allocTable instead of
        // returning it to the heap.
        table_pool_.push_back(std::move(fi.table));
    }
    fi.kind = FrameKind::Free;
    fi.owner = TableOwner::None;
    fi.table.reset();
    fi.contentId = 0;
    --allocated_;
    free_list_.push_back(frame);
}

PtPage &
PhysMem::table(FrameId frame)
{
    FrameInfo &fi = info(frame);
    ap_assert(fi.kind == FrameKind::PageTable,
              "frame ", frame, " is not a page-table frame");
    return *fi.table;
}

const PtPage &
PhysMem::table(FrameId frame) const
{
    const FrameInfo &fi = info(frame);
    ap_assert(fi.kind == FrameKind::PageTable,
              "frame ", frame, " is not a page-table frame");
    return *fi.table;
}

FrameKind
PhysMem::kind(FrameId frame) const
{
    return info(frame).kind;
}

TableOwner
PhysMem::owner(FrameId frame) const
{
    return info(frame).owner;
}

std::uint64_t
PhysMem::contentId(FrameId frame) const
{
    const FrameInfo &fi = info(frame);
    ap_assert(fi.kind == FrameKind::Data, "contentId of non-data frame");
    return fi.contentId;
}

void
PhysMem::setContentId(FrameId frame, std::uint64_t content_id)
{
    FrameInfo &fi = info(frame);
    ap_assert(fi.kind == FrameKind::Data, "setContentId of non-data frame");
    fi.contentId = content_id;
}

std::uint64_t
PhysMem::tableFrames(TableOwner owner) const
{
    return table_counts_[static_cast<std::size_t>(owner)];
}

void
PhysMem::saveState(Serializer &s) const
{
    s.putMarker(0x4d454d50); // "PMEM"
    s.putU64(capacity_);
    s.putU64(allocated_);
    s.putU64(next_fresh_);
    s.putPodVector(free_list_);
    for (std::uint64_t c : table_counts_)
        s.putU64(c);
    for (FrameId f = 1; f < next_fresh_; ++f) {
        const FrameInfo &fi = frames_[f];
        s.putU8(static_cast<std::uint8_t>(fi.kind));
        s.putU8(static_cast<std::uint8_t>(fi.owner));
        s.putU64(fi.contentId);
        s.putBool(fi.table != nullptr);
        if (fi.table) {
            static_assert(std::is_trivially_copyable_v<Pte>,
                          "Pte must be raw-serializable");
            s.putRaw(fi.table->data(), sizeof(PtPage));
        }
    }
}

void
PhysMem::restoreState(Deserializer &d)
{
    d.checkMarker(0x4d454d50);
    if (d.getU64() != capacity_) {
        d.fail();
        return;
    }
    allocated_ = d.getU64();
    next_fresh_ = d.getU64();
    d.getPodVector(free_list_);
    for (std::uint64_t &c : table_counts_)
        c = d.getU64();
    // Wipe wholesale: the restored image fully determines frame state,
    // and any tables this PhysMem held before must not leak into it.
    for (FrameInfo &fi : frames_)
        fi = FrameInfo{};
    table_pool_.clear();
    if (!d.ok() || next_fresh_ > capacity_ + 1) {
        d.fail();
        return;
    }
    for (FrameId f = 1; f < next_fresh_; ++f) {
        FrameInfo &fi = frames_[f];
        fi.kind = static_cast<FrameKind>(d.getU8());
        fi.owner = static_cast<TableOwner>(d.getU8());
        fi.contentId = d.getU64();
        if (d.getBool()) {
            fi.table = std::make_unique<PtPage>();
            d.getRaw(fi.table->data(), sizeof(PtPage));
        }
    }
}

PhysMem::FrameInfo &
PhysMem::info(FrameId frame)
{
    ap_assert(frame > 0 && frame <= capacity_, "bad frame id ", frame);
    return frames_[frame];
}

const PhysMem::FrameInfo &
PhysMem::info(FrameId frame) const
{
    ap_assert(frame > 0 && frame <= capacity_, "bad frame id ", frame);
    return frames_[frame];
}

} // namespace ap
