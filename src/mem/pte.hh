/**
 * @file
 * Page-table entry format shared by guest, host, and shadow tables.
 *
 * The layout mirrors x86-64 semantics (valid/writable/user/accessed/
 * dirty/page-size) plus the one architectural addition agile paging
 * makes: a per-entry switching bit, meaningful only in shadow page
 * tables, that tells the hardware walker to continue the remainder of
 * the walk in nested mode (paper Section III-A).
 */

#ifndef AGILEPAGING_MEM_PTE_HH
#define AGILEPAGING_MEM_PTE_HH

#include <cstdint>
#include <string>

#include "base/types.hh"

namespace ap
{

/** One page-table entry. */
struct Pte
{
    /** Frame of the next-level table, or of the mapped page at a leaf.
     *  For a shadow entry with the switching bit set, this is the host
     *  frame holding the next level of the *guest* page table. */
    FrameId pfn = 0;

    /** Entry holds a translation / pointer. */
    bool valid = false;

    /** Write permission. Shadow entries clear this on first map so the
     *  first store traps for dirty-bit tracking (paper Section III-B). */
    bool writable = false;

    /** User-mode accessible (kept for format completeness). */
    bool user = false;

    /** Set by hardware (or VMM) on first reference. */
    bool accessed = false;

    /** Set by hardware (or VMM) on first write. */
    bool dirty = false;

    /** x86 PS bit: this non-leaf-depth entry maps a large page. */
    bool pageSize = false;

    /** Agile paging: continue this walk in nested mode (shadow PTs only).*/
    bool switching = false;

    /** @return true iff two entries encode the same architectural state. */
    bool
    operator==(const Pte &o) const
    {
        return pfn == o.pfn && valid == o.valid && writable == o.writable &&
               user == o.user && accessed == o.accessed && dirty == o.dirty &&
               pageSize == o.pageSize && switching == o.switching;
    }

    /** Pack into a raw 64-bit architectural representation. */
    std::uint64_t toRaw() const;

    /** Unpack from a raw 64-bit architectural representation. */
    static Pte fromRaw(std::uint64_t raw);

    /** Human-readable rendering for traces and test failures. */
    std::string toString() const;
};

/** Raw-encoding bit positions (x86-64-style; switching uses an
 *  ignored/software bit as the paper's modest format extension). */
namespace pte_bits
{
inline constexpr unsigned kValid = 0;
inline constexpr unsigned kWritable = 1;
inline constexpr unsigned kUser = 2;
inline constexpr unsigned kAccessed = 5;
inline constexpr unsigned kDirty = 6;
inline constexpr unsigned kPageSize = 7;
inline constexpr unsigned kSwitching = 9; // software-available bit
inline constexpr unsigned kPfnLo = 12;
inline constexpr unsigned kPfnHi = 51;
} // namespace pte_bits

} // namespace ap

#endif // AGILEPAGING_MEM_PTE_HH
