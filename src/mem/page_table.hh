/**
 * @file
 * Generic 4-level x86-64-style radix page table.
 *
 * One RadixPageTable instance models a guest page table, a host (nested)
 * page table, a shadow page table, or a native page table — the entry
 * format is shared (mem/pte.hh). The table's pages live in a PtSpace,
 * an address space abstraction: host-resident tables allocate directly
 * from host physical memory, while guest page tables allocate guest
 * physical frames that the VMM backs with host frames.
 *
 * All operations here are *functional* (no cost accounting). Hardware
 * walk costs are modelled by walker/, which re-reads the same entries
 * frame by frame and charges one memory reference per access.
 */

#ifndef AGILEPAGING_MEM_PAGE_TABLE_HH
#define AGILEPAGING_MEM_PAGE_TABLE_HH

#include <functional>
#include <optional>
#include <string>

#include "base/bitfield.hh"
#include "base/types.hh"
#include "mem/phys_mem.hh"

namespace ap
{

/**
 * Storage/address space a page table's pages live in.
 *
 * Frames returned by allocTablePage() are meaningful only within this
 * space: host frames for host/shadow/native tables, guest frames for
 * guest tables.
 */
class PtSpace
{
  public:
    virtual ~PtSpace() = default;

    /** Resolve a table page within this space. */
    virtual PtPage &page(FrameId frame) = 0;
    virtual const PtPage &page(FrameId frame) const = 0;

    /** Allocate a zeroed table page; PhysMem::kNoFrame on exhaustion. */
    virtual FrameId allocTablePage() = 0;

    /** Release a table page. */
    virtual void freeTablePage(FrameId frame) = 0;
};

/** PtSpace for tables resident directly in host physical memory. */
class HostPtSpace : public PtSpace
{
  public:
    HostPtSpace(PhysMem &mem, TableOwner owner) : mem_(mem), owner_(owner) {}

    PtPage &page(FrameId frame) override { return mem_.table(frame); }

    const PtPage &
    page(FrameId frame) const override
    {
        return mem_.table(frame);
    }

    FrameId allocTablePage() override { return mem_.allocTable(owner_); }
    void freeTablePage(FrameId frame) override { mem_.free(frame); }

  private:
    PhysMem &mem_;
    TableOwner owner_;
};

/** A resolved translation returned by RadixPageTable::lookup. */
struct PtMapping
{
    /** Mapped frame (of the final page). */
    FrameId pfn;
    /** Granule the mapping was installed with. */
    PageSize size;
    /** Walk depth of the terminal entry. */
    unsigned depth;
    /** Copy of the terminal entry. */
    Pte pte;
};

/**
 * The radix table.
 *
 * A root table page is allocated at construction and freed (with every
 * descendant page) at destruction.
 */
class RadixPageTable
{
  public:
    /**
     * @param space address space the table's pages live in
     * @param name  debug name ("gPT[3]", "sPT[3]", "hPT", ...)
     */
    RadixPageTable(PtSpace &space, std::string name);
    ~RadixPageTable();

    /** Tag selecting the deferred-restore constructor. */
    struct ForRestore
    {
    };

    /**
     * Construct without allocating a root: the table is an empty shell
     * until restoreState() adopts a root whose pages already exist in
     * @p space (snapshot restore rebuilds the space's pages first).
     */
    RadixPageTable(PtSpace &space, std::string name, ForRestore);

    /**
     * Adopt an already-materialized tree. @p root must be a live table
     * page in the space and @p page_count the number of table pages
     * reachable from it (incl. the root).
     */
    void
    restoreState(FrameId root, std::uint64_t page_count)
    {
        root_ = root;
        page_count_ = page_count;
    }

    /**
     * Abandon the tree without freeing a page: the destructor then
     * owns nothing. For tearing down a table whose backing space is
     * about to be (or already was) wholesale rebuilt by a snapshot
     * restore — its pages revert with the space, so freeing them
     * individually would corrupt the restored image's bookkeeping.
     */
    void
    disown()
    {
        root_ = PhysMem::kNoFrame;
        page_count_ = 0;
    }

    RadixPageTable(const RadixPageTable &) = delete;
    RadixPageTable &operator=(const RadixPageTable &) = delete;

    /** Frame (within the table's space) of the root table page. */
    FrameId root() const { return root_; }

    const std::string &name() const { return name_; }

    /**
     * Install a leaf mapping for @p va.
     *
     * Intermediate table pages are created on demand. If a conflicting
     * subtree exists under the target entry (e.g., 4 KB mappings where a
     * 2 MB page is being installed) the subtree is freed first.
     *
     * @return pointer to the installed entry, or nullptr if table-page
     *         allocation failed (space exhausted).
     */
    Pte *map(Addr va, FrameId pfn, PageSize ps, bool writable,
             bool user = true);

    /**
     * Remove the mapping covering @p va (any granule).
     * @return true if a mapping was removed.
     */
    bool unmap(Addr va);

    /**
     * Resolve @p va to a mapping, if present.
     *
     * Entries with the switching bit set (partial shadow tables) are
     * treated as terminal and reported with their depth; callers that
     * care (the agile walker) inspect PtMapping::pte.switching.
     */
    std::optional<PtMapping> lookup(Addr va) const;

    /**
     * @return the entry for @p va at walk depth @p depth, or nullptr if
     * the path to it does not exist. Never allocates.
     */
    Pte *entry(Addr va, unsigned depth);
    const Pte *entry(Addr va, unsigned depth) const;

    /**
     * Create the path to depth @p depth and return the entry there.
     * @return nullptr on allocation failure.
     */
    Pte *ensurePath(Addr va, unsigned depth);

    /**
     * @return frame holding the table page that contains the entry for
     * @p va at @p depth, or PhysMem::kNoFrame if the path is absent.
     * Depth 0 always returns the root frame.
     */
    FrameId tableFrame(Addr va, unsigned depth) const;

    /**
     * Remove the entry for @p va at @p depth, freeing the subtree below
     * it (used when the VMM invalidates part of a shadow table).
     * @return true if a valid entry was removed.
     */
    bool invalidateEntry(Addr va, unsigned depth);

    /** Drop every mapping; the root page is retained but zeroed. */
    void clear();

    /**
     * Visit every terminal entry (leaf mapping or switching entry).
     * @param fn called with (va, entry, depth)
     */
    void forEachTerminal(
        const std::function<void(Addr, const Pte &, unsigned)> &fn) const;

    /** Number of table pages currently allocated (incl. root). */
    std::uint64_t pageCount() const { return page_count_; }

    /** Number of terminal (valid leaf or switching) entries. */
    std::uint64_t mappingCount() const;

  private:
    void freeSubtree(FrameId frame, unsigned depth);
    void walkTerminals(
        FrameId frame, unsigned depth, Addr base,
        const std::function<void(Addr, const Pte &, unsigned)> &fn) const;

    /** True if @p pte terminates a walk at @p depth. */
    static bool
    isTerminal(const Pte &pte, unsigned depth)
    {
        return pte.valid &&
               (depth == kPtLevels - 1 || pte.pageSize || pte.switching);
    }

    PtSpace &space_;
    std::string name_;
    FrameId root_;
    std::uint64_t page_count_ = 0;
};

} // namespace ap

#endif // AGILEPAGING_MEM_PAGE_TABLE_HH
