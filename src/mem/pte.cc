/**
 * @file
 * PTE raw packing/unpacking and printing.
 */

#include "mem/pte.hh"

#include <sstream>

namespace ap
{

std::uint64_t
Pte::toRaw() const
{
    using namespace pte_bits;
    std::uint64_t raw = 0;
    auto set = [&raw](unsigned bit, bool v) {
        if (v)
            raw |= std::uint64_t{1} << bit;
    };
    set(kValid, valid);
    set(kWritable, writable);
    set(kUser, user);
    set(kAccessed, accessed);
    set(kDirty, dirty);
    set(kPageSize, pageSize);
    set(kSwitching, switching);
    raw |= (pfn & ((std::uint64_t{1} << (kPfnHi - kPfnLo + 1)) - 1))
           << kPfnLo;
    return raw;
}

Pte
Pte::fromRaw(std::uint64_t raw)
{
    using namespace pte_bits;
    auto get = [raw](unsigned bit) {
        return (raw >> bit) & 1;
    };
    Pte pte;
    pte.valid = get(kValid);
    pte.writable = get(kWritable);
    pte.user = get(kUser);
    pte.accessed = get(kAccessed);
    pte.dirty = get(kDirty);
    pte.pageSize = get(kPageSize);
    pte.switching = get(kSwitching);
    pte.pfn =
        (raw >> kPfnLo) & ((std::uint64_t{1} << (kPfnHi - kPfnLo + 1)) - 1);
    return pte;
}

std::string
Pte::toString() const
{
    std::ostringstream os;
    os << "Pte{pfn=0x" << std::hex << pfn << std::dec
       << (valid ? " V" : " -") << (writable ? "W" : "-")
       << (user ? "U" : "-") << (accessed ? "A" : "-")
       << (dirty ? "D" : "-") << (pageSize ? "S" : "-")
       << (switching ? "X" : "-") << "}";
    return os.str();
}

} // namespace ap
