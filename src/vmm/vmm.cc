/**
 * @file
 * VMM implementation.
 */

#include "vmm/vmm.hh"

#include <algorithm>
#include <unordered_map>

#include "base/bitfield.hh"
#include "base/logging.hh"

namespace ap
{

namespace
{
constexpr std::uint64_t kFramesPer2M = kLargePageBytes / kPageBytes;

/** 4K frames per host backing group for a granule. */
std::uint64_t
framesPerGroup(PageSize ps)
{
    return pageBytes(ps) / kPageBytes;
}
} // namespace

Vmm::Vmm(stats::StatGroup *parent, PhysMem &mem, const VmmConfig &cfg,
         NestedTlb *ntlb)
    : stats::StatGroup("vmm", parent),
      trapsTotal(this, "traps", "VM exits taken"),
      trapCyclesStat(this, "trap_cycles", "cycles spent in VM exits"),
      hostFaultsServed(this, "host_faults", "EPT violations served"),
      pagesShared(this, "pages_shared", "host frames reclaimed by dedup"),
      cowBreaks(this, "cow_breaks", "host COW faults broken"),
      trapEntriesDist(this, "trap_entries", "PTEs touched per VM exit",
                      0, 1024, 32),
      mem_(mem),
      cfg_(cfg),
      ntlb_(ntlb),
      pt_cap_(cfg.guestPtFrames),
      // Data region starts at the next host-granule boundary past the
      // PT region (2 MB minimum so 2 MB guest pages stay alignable).
      data_base_(
          ((cfg.guestPtFrames +
            std::max(kFramesPer2M, framesPerGroup(cfg.hostPageSize))) /
           std::max(kFramesPer2M, framesPerGroup(cfg.hostPageSize))) *
          std::max(kFramesPer2M, framesPerGroup(cfg.hostPageSize))),
      pt_alloc_(cfg.guestPtFrames),
      data_alloc_(cfg.guestDataFrames)
{
    trapCountByCause.reserve(kNumTrapKinds);
    trapCyclesByCause.reserve(kNumTrapKinds);
    for (std::size_t k = 0; k < kNumTrapKinds; ++k) {
        std::string kind = trapKindName(static_cast<TrapKind>(k));
        trapCountByCause.push_back(std::make_unique<stats::Scalar>(
            this, "trap_" + kind, "VM exits caused by " + kind));
        trapCyclesByCause.push_back(std::make_unique<stats::Scalar>(
            this, "trap_" + kind + "_cycles",
            "cycles in VM exits caused by " + kind));
    }
    hpt_space_ = std::make_unique<HostPtSpace>(mem_, TableOwner::HostPt);
    hpt_ = std::make_unique<RadixPageTable>(*hpt_space_, "hPT");
    backings_.resize(data_base_ + cfg.guestDataFrames + 1);
    if (cfg.sptrCacheEntries > 0) {
        sptr_cache_ =
            std::make_unique<SptrCache>(this, cfg.sptrCacheEntries);
    }
}

Vmm::~Vmm() = default;

Vmm::Backing &
Vmm::backingSlot(FrameId gframe)
{
    ap_assert(gframe > 0 && gframe < backings_.size(),
              "guest frame out of range: ", gframe);
    return backings_[gframe];
}

const Vmm::Backing *
Vmm::backingSlotIfAny(FrameId gframe) const
{
    if (gframe == 0 || gframe >= backings_.size())
        return nullptr;
    return &backings_[gframe];
}

FrameId
Vmm::allocGuestPtFrame()
{
    FrameId gframe = pt_alloc_.alloc();
    if (!gframe)
        return 0;
    if (ensurePtBacked(gframe) == PhysMem::kNoFrame) {
        pt_alloc_.free(gframe);
        return 0;
    }
    return gframe;
}

FrameId
Vmm::backPtSlow(FrameId gframe)
{
    Backing &b = backingSlot(gframe);
    FrameId hframe = mem_.allocTable(TableOwner::GuestPt);
    if (hframe == PhysMem::kNoFrame)
        return PhysMem::kNoFrame;
    b.hframe = hframe;
    b.dirty = false;
    // PT-region frames always get 4 KB host mappings.
    hpt_->map(frameAddr(gframe), hframe, PageSize::Size4K, true);
    return hframe;
}

void
Vmm::freeGuestPtFrame(FrameId gframe)
{
    ap_assert(isPtRegion(gframe), "not a PT-region frame");
    Backing &b = backingSlot(gframe);
    if (b.hframe) {
        hpt_->unmap(frameAddr(gframe));
        if (ntlb_)
            ntlb_->flushFrame(gframe);
        mem_.free(b.hframe);
        b = Backing{};
    }
    pt_alloc_.free(gframe);
}

FrameId
Vmm::allocGuestDataFrame()
{
    FrameId id = data_alloc_.alloc();
    return id ? data_base_ + id : 0;
}

FrameId
Vmm::allocGuestDataFrames(std::uint64_t n)
{
    FrameId id = data_alloc_.allocContiguous(n);
    // data_base_ is n-aligned for any power-of-two n up to 2 MB groups,
    // and allocContiguous aligns ids, so gframes stay aligned.
    return id ? data_base_ + id : 0;
}

void
Vmm::freeGuestDataFrame(FrameId gframe)
{
    ap_assert(gframe > data_base_, "not a data frame");
    Backing &b = backingSlot(gframe);
    if (b.hframe) {
        if (cfg_.hostPageSize == PageSize::Size4K) {
            hpt_->unmap(frameAddr(gframe));
            if (!b.shared)
                mem_.free(b.hframe);
            --backed_data_;
            b = Backing{};
        } else {
            // 2 MB host mappings keep the whole group backed; the
            // backing is reused when the guest frame is reallocated.
            b.dirty = false;
        }
        if (ntlb_)
            ntlb_->flushFrame(gframe);
    }
    data_alloc_.free(gframe - data_base_);
}

FrameId
Vmm::backing(FrameId gframe) const
{
    const Backing *b = backingSlotIfAny(gframe);
    return b ? b->hframe : 0;
}

bool
Vmm::backDataFrame(FrameId gframe)
{
    Backing &b = backingSlot(gframe);
    if (b.hframe)
        return true;
    if (cfg_.hostPageSize != PageSize::Size4K) {
        // Back the whole naturally aligned large group at once.
        std::uint64_t group_frames = framesPerGroup(cfg_.hostPageSize);
        FrameId group = gframe & ~(group_frames - 1);
        FrameId hbase = mem_.allocDataContiguous(group_frames);
        if (hbase == PhysMem::kNoFrame)
            return false;
        for (std::uint64_t i = 0; i < group_frames; ++i) {
            Backing &gb = backingSlot(group + i);
            ap_assert(!gb.hframe, "partially backed large group");
            gb.hframe = hbase + i;
            if (gb.pendingContent) {
                mem_.setContentId(gb.hframe, gb.pendingContent);
                gb.pendingContent = 0;
            }
        }
        hpt_->map(frameAddr(group), hbase, cfg_.hostPageSize, true);
        backed_data_ += group_frames;
        return true;
    }
    FrameId hframe = mem_.allocData(b.pendingContent);
    if (hframe == PhysMem::kNoFrame)
        return false;
    b.hframe = hframe;
    b.pendingContent = 0;
    hpt_->map(frameAddr(gframe), hframe, PageSize::Size4K, true);
    ++backed_data_;
    return true;
}

FrameId
Vmm::ensureDataBacked(FrameId gframe)
{
    Backing &b = backingSlot(gframe);
    if (!b.hframe && !backDataFrame(gframe))
        return PhysMem::kNoFrame;
    return b.hframe;
}

bool
Vmm::handleHostFault(Addr gpa)
{
    FrameId gframe = frameOf(gpa);
    chargeTrap(TrapKind::HostFault);
    ++hostFaultsServed;
    if (isPtRegion(gframe))
        return ensurePtBacked(gframe) != PhysMem::kNoFrame;
    return backDataFrame(gframe);
}

void
Vmm::markGptWriteDirty(FrameId gframe)
{
    Backing &b = backingSlot(gframe);
    b.dirty = true;
    // Mirror into the architectural hPT leaf dirty bit.
    if (Pte *pte = hpt_->entry(frameAddr(gframe), kPtLevels - 1)) {
        if (pte->valid)
            pte->dirty = true;
    }
}

bool
Vmm::consumeGptDirty(FrameId gframe)
{
    Backing &b = backingSlot(gframe);
    bool was = b.dirty;
    b.dirty = false;
    if (Pte *pte = hpt_->entry(frameAddr(gframe), kPtLevels - 1)) {
        if (pte->valid)
            pte->dirty = false;
    }
    return was;
}

void
Vmm::setContent(FrameId gframe, std::uint64_t content_id)
{
    Backing &b = backingSlot(gframe);
    if (!b.hframe) {
        // Not yet backed: remember the content and apply it when the
        // first hardware touch takes the EPT fault — backing eagerly
        // here would hide host faults from nested mode.
        b.pendingContent = content_id;
        return;
    }
    if (!b.shared)
        mem_.setContentId(b.hframe, content_id);
}

std::uint64_t
Vmm::sharePages(std::vector<FrameId> *remapped_gframes)
{
    if (cfg_.hostPageSize != PageSize::Size4K)
        return 0; // dedup of 2 MB backings is not modelled
    std::unordered_map<std::uint64_t, FrameId> content_to_gframe;
    std::uint64_t reclaimed = 0;
    for (FrameId gframe = data_base_ + 1; gframe < backings_.size();
         ++gframe) {
        Backing &b = backings_[gframe];
        if (!b.hframe)
            continue;
        std::uint64_t content = b.shared ? 0 : mem_.contentId(b.hframe);
        if (content == 0)
            continue; // unhashable/unique content
        auto [it, fresh] = content_to_gframe.try_emplace(content, gframe);
        if (fresh) {
            continue;
        }
        // Collapse this frame onto the canonical copy, read-only both.
        Backing &canon = backings_[it->second];
        if (!canon.shared) {
            canon.shared = true;
            if (Pte *pte =
                    hpt_->entry(frameAddr(it->second), kPtLevels - 1)) {
                pte->writable = false;
            }
            // The kept copy's write permission changed too: a stale
            // writable nested-TLB or shadow entry would let a guest
            // store reach the now-shared frame without breaking COW.
            if (ntlb_)
                ntlb_->flushFrame(it->second);
            if (remapped_gframes)
                remapped_gframes->push_back(it->second);
        }
        mem_.free(b.hframe);
        --backed_data_;
        b.hframe = canon.hframe;
        b.shared = true;
        hpt_->map(frameAddr(gframe), canon.hframe, PageSize::Size4K,
                  false);
        if (ntlb_)
            ntlb_->flushFrame(gframe);
        if (remapped_gframes)
            remapped_gframes->push_back(gframe);
        ++reclaimed;
    }
    // The scan itself is background VMM work, not a guest-visible
    // VM exit; guests pay only when a later write breaks COW.
    pagesShared += reclaimed;
    return reclaimed;
}

bool
Vmm::breakHostCow(FrameId gframe)
{
    Backing &b = backingSlot(gframe);
    ap_assert(b.shared, "COW break on non-shared frame");
    chargeTrap(TrapKind::HostCow);
    ++cowBreaks;
    std::uint64_t content = mem_.contentId(b.hframe);
    FrameId fresh = mem_.allocData(content);
    if (fresh == PhysMem::kNoFrame)
        return false;
    b.hframe = fresh;
    b.shared = false;
    ++backed_data_;
    hpt_->map(frameAddr(gframe), fresh, PageSize::Size4K, true);
    if (ntlb_)
        ntlb_->flushFrame(gframe);
    return true;
}

bool
Vmm::hostWritable(FrameId gframe) const
{
    const Backing *b = backingSlotIfAny(gframe);
    if (!b || !b->hframe)
        return true; // will be backed writable on fault
    return !b->shared;
}

void
Vmm::chargeTrap(TrapKind k, std::uint64_t entries)
{
    Cycles c = cfg_.costs.cost(k, entries);
    trap_cycles_ += c;
    ++trap_counts_[static_cast<std::size_t>(k)];
    ++trapsTotal;
    trapCyclesStat += static_cast<double>(c);
    ++*trapCountByCause[static_cast<std::size_t>(k)];
    *trapCyclesByCause[static_cast<std::size_t>(k)] +=
        static_cast<double>(c);
    trapEntriesDist.sample(entries);
}

std::uint64_t
Vmm::trapCount(TrapKind k) const
{
    return trap_counts_[static_cast<std::size_t>(k)];
}

std::uint64_t
Vmm::trapCountTotal() const
{
    std::uint64_t n = 0;
    for (auto c : trap_counts_)
        n += c;
    return n;
}

} // namespace ap
