/**
 * @file
 * PtSpace adapter for guest page tables.
 *
 * A guest page table's internal pointers are guest frame numbers and
 * its pages live in guest physical memory; this adapter resolves them
 * through the VMM's backing map so the guest OS can edit its table
 * functionally. An optional free hook lets the shadow manager learn
 * when the guest releases a PT page (so stale mode state cannot leak
 * onto a recycled frame).
 */

#ifndef AGILEPAGING_VMM_GUEST_PT_SPACE_HH
#define AGILEPAGING_VMM_GUEST_PT_SPACE_HH

#include <functional>

#include "base/logging.hh"
#include "mem/page_table.hh"
#include "vmm/vmm.hh"

namespace ap
{

/**
 * Guest-frame address space backed through the VMM.
 */
class GuestPtSpace : public PtSpace
{
  public:
    explicit GuestPtSpace(Vmm &vmm) : vmm_(vmm) {}

    /** Called (if set) just before a guest PT page is released. */
    std::function<void(FrameId)> onFree;

    PtPage &
    page(FrameId gframe) override
    {
        FrameId hframe = vmm_.ensurePtBacked(gframe);
        ap_assert(hframe != PhysMem::kNoFrame,
                  "guest PT page has no backing");
        return vmm_.physMem().table(hframe);
    }

    const PtPage &
    page(FrameId gframe) const override
    {
        return const_cast<GuestPtSpace *>(this)->page(gframe);
    }

    FrameId
    allocTablePage() override
    {
        return vmm_.allocGuestPtFrame();
    }

    void
    freeTablePage(FrameId gframe) override
    {
        if (onFree)
            onFree(gframe);
        vmm_.freeGuestPtFrame(gframe);
    }

  private:
    Vmm &vmm_;
};

} // namespace ap

#endif // AGILEPAGING_VMM_GUEST_PT_SPACE_HH
