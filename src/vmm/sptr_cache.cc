/**
 * @file
 * sptr cache implementation.
 */

#include "vmm/sptr_cache.hh"

namespace ap
{

SptrCache::SptrCache(stats::StatGroup *parent, std::size_t entries)
    : stats::StatGroup("sptr_cache", parent),
      hits(this, "hits", "context switches resolved without a VMtrap"),
      misses(this, "misses", "context switches that still trapped"),
      capacity_(entries),
      cache_(entries ? std::make_unique<AssocCache<SptrEntry>>(
                           entries, entries) // fully associative
                     : nullptr)
{
}

std::optional<SptrEntry>
SptrCache::lookup(FrameId gpt_root)
{
    if (!cache_)
        return std::nullopt;
    if (SptrEntry *e = cache_->lookup(gpt_root)) {
        ++hits;
        return *e;
    }
    ++misses;
    return std::nullopt;
}

void
SptrCache::insert(FrameId gpt_root, const SptrEntry &entry)
{
    if (cache_)
        cache_->insert(gpt_root, entry);
}

void
SptrCache::invalidate(FrameId gpt_root)
{
    if (cache_)
        cache_->erase(gpt_root);
}

} // namespace ap
