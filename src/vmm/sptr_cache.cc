/**
 * @file
 * sptr cache implementation.
 */

#include "vmm/sptr_cache.hh"

namespace ap
{

SptrCache::SptrCache(stats::StatGroup *parent, std::size_t entries)
    : stats::StatGroup("sptr_cache", parent),
      hits(this, "hits", "context switches resolved without a VMtrap"),
      misses(this, "misses", "context switches that still trapped"),
      cache_(entries, entries) // fully associative
{
}

std::optional<SptrEntry>
SptrCache::lookup(FrameId gpt_root)
{
    if (SptrEntry *e = cache_.lookup(gpt_root)) {
        ++hits;
        return *e;
    }
    ++misses;
    return std::nullopt;
}

void
SptrCache::insert(FrameId gpt_root, const SptrEntry &entry)
{
    cache_.insert(gpt_root, entry);
}

void
SptrCache::invalidate(FrameId gpt_root)
{
    cache_.erase(gpt_root);
}

} // namespace ap
