/**
 * @file
 * VM-exit (VMtrap) taxonomy and cost model.
 *
 * The paper defines VMtrap latency as "the cycles required for a VMexit
 * trap and its return plus the work done by the VMM in response to the
 * VMexit" (Section II-B) and measures the per-kind costs with
 * LMbench-style microbenchmarks (Section VI). Here every kind has a
 * configurable cost of the same form: a shared exit/entry round-trip
 * plus kind-specific handler work, plus optional per-entry work for
 * handlers that touch a variable number of PTEs.
 */

#ifndef AGILEPAGING_VMM_TRAP_COSTS_HH
#define AGILEPAGING_VMM_TRAP_COSTS_HH

#include <array>
#include <cstdint>

#include "base/types.hh"

namespace ap
{

/** Reasons control transfers to the VMM. */
enum class TrapKind : std::uint8_t
{
    /** Guest stored to a write-protected guest-PT page (shadow sync). */
    ShadowPtWrite,
    /** Shadow page fault: on-demand shadow fill from guest+host PTs. */
    ShadowFill,
    /** A genuine guest page fault taken while in shadow mode must be
     *  reflected through the VMM before the guest sees it. */
    GuestFaultMediation,
    /** Host page fault / EPT violation: back a guest frame. */
    HostFault,
    /** Guest wrote its page-table pointer (context switch) while
     *  shadowed and the sptr cache missed. */
    CtxSwitch,
    /** Guest TLB flush (full or INVLPG) while shadowed: resync. */
    TlbFlush,
    /** Dirty/accessed-bit emulation protection fault (shadow mode,
     *  no hardware A/D optimization). */
    AdEmulation,
    /** First write to an unsynced-eligible guest PT leaf page. */
    Unsync,
    /** Agile paging: converting part of the guest PT between modes. */
    ModeConvert,
    /** SHSP: whole-process technique switch. */
    ShspSwitch,
    /** Host-side copy-on-write break (content-based sharing). */
    HostCow,
    NumKinds,
};

inline constexpr std::size_t kNumTrapKinds =
    static_cast<std::size_t>(TrapKind::NumKinds);

/** @return printable name of a trap kind. */
const char *trapKindName(TrapKind k);

/** Cycle costs; defaults approximate the paper's measured magnitudes
 *  ("costing 1000s of cycles"). */
struct TrapCosts
{
    /** VMexit + VMresume round trip shared by every kind. */
    Cycles exitRoundTrip = 1200;

    /** Kind-specific fixed handler work. */
    std::array<Cycles, kNumTrapKinds> handlerWork{
        500,  // ShadowPtWrite: emulate the store, locate sPTEs
        600,  // ShadowFill: walk gPT, merge, install
        300,  // GuestFaultMediation: decode and reflect
        800,  // HostFault: allocate + map backing (EPT violation)
        700,  // CtxSwitch: find/instantiate shadow root
        400,  // TlbFlush: flush + begin resync
        350,  // AdEmulation: set A/D, fix protections
        450,  // Unsync: make PT page temporarily writable
        800,  // ModeConvert: retarget switching entry, flushes
        1000, // ShspSwitch: mode bookkeeping (rebuild billed per-entry)
        900,  // HostCow: copy page, remap
    };

    /** Per-PTE work for handlers that scan/patch entries (resync,
     *  rebuild, conversion flushes). */
    Cycles perEntryWork = 12;

    /** Total cost of one trap touching @p entries PTEs. */
    Cycles
    cost(TrapKind k, std::uint64_t entries = 0) const
    {
        return exitRoundTrip + handlerWork[static_cast<std::size_t>(k)] +
               perEntryWork * entries;
    }
};

} // namespace ap

#endif // AGILEPAGING_VMM_TRAP_COSTS_HH
