/**
 * @file
 * Trap kind names.
 */

#include "vmm/trap_costs.hh"

namespace ap
{

const char *
trapKindName(TrapKind k)
{
    switch (k) {
      case TrapKind::ShadowPtWrite:
        return "shadow_pt_write";
      case TrapKind::ShadowFill:
        return "shadow_fill";
      case TrapKind::GuestFaultMediation:
        return "guest_fault_mediation";
      case TrapKind::HostFault:
        return "host_fault";
      case TrapKind::CtxSwitch:
        return "ctx_switch";
      case TrapKind::TlbFlush:
        return "tlb_flush";
      case TrapKind::AdEmulation:
        return "ad_emulation";
      case TrapKind::Unsync:
        return "unsync";
      case TrapKind::ModeConvert:
        return "mode_convert";
      case TrapKind::ShspSwitch:
        return "shsp_switch";
      case TrapKind::HostCow:
        return "host_cow";
      default:
        return "?";
    }
}

} // namespace ap
