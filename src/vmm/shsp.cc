/**
 * @file
 * SHSP controller implementation.
 */

#include "vmm/shsp.hh"

#include "base/debug.hh"

namespace ap
{

ShspController::ShspController(stats::StatGroup *parent, ShadowMgr &mgr,
                               const ShspConfig &cfg)
    : stats::StatGroup("shsp", parent),
      switchesToShadow(this, "to_shadow", "whole-process shadow switches"),
      switchesToNested(this, "to_nested", "whole-process nested switches"),
      mgr_(mgr),
      cfg_(cfg)
{
}

void
ShspController::onProcessStart(ProcId proc)
{
    states_[proc] = State{};
    mgr_.context(proc).fullNested = cfg_.startNested;
}

bool
ShspController::inShadow(ProcId proc) const
{
    return !const_cast<ShadowMgr &>(mgr_).context(proc).fullNested;
}

void
ShspController::onInterval(ProcId proc, const ShspSample &sample)
{
    State &st = states_[proc];
    ++st.intervalsSinceSwitch;
    if (st.intervalsSinceSwitch < cfg_.minResidency)
        return;

    TranslationContext &ctx = mgr_.context(proc);
    if (ctx.fullNested) {
        // Consider switching to shadow: walks would shrink by the
        // nested factor but every PT write would start trapping.
        double walk_benefit =
            static_cast<double>(sample.walkCycles) *
            (1.0 - 1.0 / cfg_.nestedWalkFactor);
        double projected_traps = static_cast<double>(sample.gptWrites) *
                                 static_cast<double>(cfg_.projectedTrapCost);
        double floor = cfg_.minBenefitFrac *
                       static_cast<double>(sample.idealCycles);
        if (walk_benefit > floor &&
            walk_benefit > cfg_.switchMargin * projected_traps) {
            // The whole shadow table must be (re)built — the expensive
            // step agile paging avoids. The bulk merge is billed
            // per entry.
            mgr_.zapProcess(proc);
            std::uint64_t merged = mgr_.prefillAll(proc);
            ctx.fullNested = false;
            mgr_.vmm().chargeTrap(TrapKind::ShspSwitch, merged);
            AP_DPRINTF(Policy, "SHSP proc ", proc, ": switch to shadow (",
                       merged, " entries rebuilt)");
            ++switchesToShadow;
            st.intervalsSinceSwitch = 0;
        }
    } else {
        // Consider switching to nested: traps disappear but walks
        // lengthen by the nested factor.
        double extra_walk = static_cast<double>(sample.walkCycles) *
                            (cfg_.nestedWalkFactor - 1.0);
        if (static_cast<double>(sample.trapCycles) >
            cfg_.switchMargin * extra_walk) {
            mgr_.zapProcess(proc);
            ctx.fullNested = true;
            mgr_.vmm().chargeTrap(TrapKind::ShspSwitch);
            AP_DPRINTF(Policy, "SHSP proc ", proc, ": switch to nested");
            ++switchesToNested;
            st.intervalsSinceSwitch = 0;
        }
    }
}

} // namespace ap
