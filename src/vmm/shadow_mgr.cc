/**
 * @file
 * Shadow page-table manager implementation.
 */

#include "vmm/shadow_mgr.hh"

#include <algorithm>

#include "base/bitfield.hh"
#include "base/debug.hh"
#include "base/logging.hh"

namespace ap
{

namespace
{
PageSize
sizeAtDepth(unsigned depth)
{
    return depth == kPtLevels - 1   ? PageSize::Size4K
           : depth == kPtLevels - 2 ? PageSize::Size2M
                                    : PageSize::Size1G;
}

/** Region of gVA space covered by the PT page holding entries at
 *  @p depth on the path of @p va (the whole space for the root). */
Addr
nodeBase(Addr va, unsigned depth)
{
    return depth == 0 ? 0 : regionBase(va, depth - 1);
}

Addr
nodeSpan(unsigned depth)
{
    return depth == 0 ? (spanAtDepth(0) * kPtEntries)
                      : spanAtDepth(depth - 1);
}
} // namespace

ShadowMgr::ShadowMgr(stats::StatGroup *parent, PhysMem &mem, Vmm &vmm,
                     const ShadowConfig &cfg, CoherenceDomain *coh)
    : stats::StatGroup("shadow", parent),
      fills(this, "fills", "shadow entries filled on demand"),
      syncWrites(this, "sync_writes", "mediated gPT writes synced"),
      unsyncEvents(this, "unsync_events", "leaf pages made unsynced"),
      resyncPages(this, "resync_pages", "unsynced pages resynced"),
      adEmulations(this, "ad_emulations", "dirty-bit protection traps"),
      convertsToNested(this, "to_nested", "PT pages moved to nested"),
      convertsToShadow(this, "to_shadow", "PT pages moved to shadow"),
      mem_(mem),
      vmm_(vmm),
      cfg_(cfg),
      coh_(coh)
{
}

ShadowMgr::~ShadowMgr() = default;

void
ShadowMgr::saveState(Serializer &s) const
{
    s.putMarker(0x52474d53); // "SMGR"
    s.putU64(procs_.size());
    for (const auto &[proc, p] : procs_) {
        s.putU32(proc);
        s.putU64(p.gptRootGframe);
        s.putBool(p.agile);
        static_assert(std::is_trivially_copyable_v<TranslationContext>,
                      "TranslationContext must be raw-serializable");
        s.putRaw(&p.ctx, sizeof(p.ctx));
        s.putU64(p.spt->root());
        s.putU64(p.spt->pageCount());
        static_assert(std::is_trivially_copyable_v<GptNode>,
                      "GptNode must be raw-serializable");
        s.putU64(p.nodes.size());
        for (const auto &[gframe, node] : p.nodes) {
            s.putU64(gframe);
            s.putRaw(&node, sizeof(node));
        }
        s.putPodVector(p.unsynced);
    }
}

void
ShadowMgr::abandonForRestore()
{
    // See GuestOs::abandonForRestore: shadow trees revert with the
    // restored host memory, so they are disowned, not freed.
    for (auto &[proc, p] : procs_) {
        (void)proc;
        if (p.spt)
            p.spt->disown();
    }
    procs_.clear();
}

void
ShadowMgr::restoreState(
    Deserializer &d,
    const std::function<RadixPageTable *(ProcId)> &gpt_resolver)
{
    d.checkMarker(0x52474d53);
    procs_.clear();
    std::uint64_t nprocs = d.getU64();
    for (std::uint64_t i = 0; i < nprocs && d.ok(); ++i) {
        ProcId proc = d.getU32();
        ProcState &p = procs_[proc];
        p.gpt = gpt_resolver(proc);
        p.gptRootGframe = d.getU64();
        p.agile = d.getBool();
        d.getRaw(&p.ctx, sizeof(p.ctx));
        FrameId spt_root = d.getU64();
        std::uint64_t spt_pages = d.getU64();
        // The shadow table's pages already exist in restored host
        // memory; adopt them instead of rebuilding.
        p.sptSpace =
            std::make_unique<HostPtSpace>(mem_, TableOwner::ShadowPt);
        p.spt = std::make_unique<RadixPageTable>(
            *p.sptSpace, "sPT", RadixPageTable::ForRestore{});
        p.spt->restoreState(spt_root, spt_pages);
        std::uint64_t nnodes = d.getU64();
        for (std::uint64_t j = 0; j < nnodes && d.ok(); ++j) {
            FrameId gframe = d.getU64();
            GptNode node;
            d.getRaw(&node, sizeof(node));
            p.nodes.emplace(gframe, node);
        }
        d.getPodVector(p.unsynced);
        if (!p.gpt)
            d.fail();
    }
}

void
ShadowMgr::registerProcess(ProcId proc, RadixPageTable *gpt,
                           FrameId gpt_root_gframe, bool agile)
{
    ap_assert(!hasProcess(proc), "process already shadowed");
    ProcState &p = procs_[proc];
    p.gpt = gpt;
    p.gptRootGframe = gpt_root_gframe;
    p.agile = agile;
    p.sptSpace =
        std::make_unique<HostPtSpace>(mem_, TableOwner::ShadowPt);
    p.spt = std::make_unique<RadixPageTable>(*p.sptSpace, "sPT");

    p.ctx.mode = VirtMode::Shadow;
    p.ctx.asid = proc;
    p.ctx.gptRoot = gpt_root_gframe;
    p.ctx.gptRootBacking = vmm_.ensurePtBacked(gpt_root_gframe);
    p.ctx.hptRoot = vmm_.hostPtRoot();
    p.ctx.sptRoot = p.spt->root();

    // Register and protect the root node immediately.
    p.nodes[gpt_root_gframe] = GptNode{0, 0, false, false, 0};
}

void
ShadowMgr::unregisterProcess(ProcId proc)
{
    auto it = procs_.find(proc);
    ap_assert(it != procs_.end(), "unknown process");
    if (SptrCache *sc = vmm_.sptrCache())
        sc->invalidate(it->second.gptRootGframe);
    procs_.erase(it);
}

bool
ShadowMgr::hasProcess(ProcId proc) const
{
    return procs_.count(proc) > 0;
}

TranslationContext &
ShadowMgr::context(ProcId proc)
{
    return state(proc).ctx;
}

ShadowMgr::ProcState &
ShadowMgr::state(ProcId proc)
{
    auto it = procs_.find(proc);
    ap_assert(it != procs_.end(), "unknown process ", proc);
    return it->second;
}

void
ShadowMgr::flushRegion(ProcState &p, Addr base, Addr span)
{
    if (coh_) {
        coh_->flushRange(base, span, p.ctx.asid,
                         CoherenceCause::Resync);
    }
}

bool
ShadowMgr::fillLeaf(ProcState &p, Addr va, unsigned depth, Pte &gpte)
{
    PageSize gsize = sizeAtDepth(depth);
    PageSize hsize = vmm_.config().hostPageSize;

    // The VMM sets the guest accessed bit on first reference
    // (Section III-B); the write-enable bit is withheld until the
    // first store unless the page is already dirty or hardware A/D is
    // available.
    gpte.accessed = true;

    bool host_can_match = pageBytes(hsize) >= pageBytes(gsize);
    if (host_can_match) {
        FrameId hbase = vmm_.ensureDataBacked(gpte.pfn);
        if (hbase == PhysMem::kNoFrame)
            return false;
        bool writable = gpte.writable && vmm_.hostWritable(gpte.pfn) &&
                        (gpte.dirty || cfg_.hwOptAd);
        Pte *spte = p.spt->map(regionBase(va, depth), hbase, gsize,
                               writable);
        if (!spte)
            return false;
        spte->accessed = true;
        spte->dirty = gpte.dirty;
        return true;
    }

    // Guest page larger than host granule: shadow the faulting 4 KB
    // piece only (the guest large page is broken for the TLB).
    std::uint64_t offset = frameOf(va) % (pageBytes(gsize) / kPageBytes);
    FrameId gframe = gpte.pfn + offset;
    FrameId hframe = vmm_.ensureDataBacked(gframe);
    if (hframe == PhysMem::kNoFrame)
        return false;
    bool writable = gpte.writable && vmm_.hostWritable(gframe) &&
                    (gpte.dirty || cfg_.hwOptAd);
    Pte *spte = p.spt->map(pageBase(va), hframe, PageSize::Size4K,
                           writable);
    if (!spte)
        return false;
    spte->accessed = true;
    spte->dirty = gpte.dirty;
    return true;
}

ShadowFillResult
ShadowMgr::handleShadowFault(ProcId proc, Addr va)
{
    ProcState &p = state(proc);

    FrameId gframe = p.gptRootGframe;
    for (unsigned d = 0; d < kPtLevels; ++d) {
        auto [it, fresh] = p.nodes.try_emplace(
            gframe, GptNode{nodeBase(va, d), d, false, false, 0});
        GptNode &node = it->second;
        if (node.nested) {
            // Boundary into nested mode: (re)install the switching
            // entry in the parent shadow level.
            ap_assert(d > 0, "root nesting uses the rootSwitch flag");
            Pte *spte = p.spt->ensurePath(va, d - 1);
            ap_assert(spte, "shadow table page allocation failed");
            if (!(spte->valid && spte->switching)) {
                if (spte->valid)
                    p.spt->invalidateEntry(va, d - 1);
                spte = p.spt->ensurePath(va, d - 1);
                *spte = Pte{};
                spte->valid = true;
                spte->switching = true;
                spte->pfn = vmm_.ensurePtBacked(gframe);
            }
            vmm_.chargeTrap(TrapKind::ShadowFill);
            ++fills;
            return ShadowFillResult::Filled;
        }
        Pte *gpte = p.gpt->entry(va, d);
        if (!gpte || !gpte->valid)
            return ShadowFillResult::NeedGuestFault;
        if (d == kPtLevels - 1 || gpte->pageSize) {
            if (!fillLeaf(p, va, d, *gpte))
                ap_fatal("out of host memory during shadow fill");
            vmm_.chargeTrap(TrapKind::ShadowFill);
            ++fills;
            return ShadowFillResult::Filled;
        }
        gframe = gpte->pfn;
    }
    ap_panic("shadow fill ran off the end");
}

GptWriteOutcome
ShadowMgr::onGptWrite(ProcId proc, Addr va, unsigned depth, bool ad_only)
{
    ProcState &p = state(proc);
    GptWriteOutcome out;
    // tableFrame walks the current guest table in guest-frame space.
    FrameId gframe = depth == 0 ? p.gptRootGframe
                                : p.gpt->tableFrame(va, depth);
    if (gframe == PhysMem::kNoFrame)
        return out;
    auto it = p.nodes.find(gframe);
    if (it == p.nodes.end())
        return out; // page never shadowed: direct write
    GptNode &node = it->second;
    out.node = &node;
    out.nodeGframe = gframe;

    if (node.nested) {
        // Direct write; leaves a dirty-bit trace for the scan policy.
        vmm_.markGptWriteDirty(gframe);
        return out;
    }
    if (node.unsynced)
        return out; // already writable until the next flush

    out.trapped = true;
    ++node.intervalWrites;
    if (ad_only) {
        // A trapped reference-bit clear: the scan will rewrite the
        // whole page, so count it as a burst immediately.
        ++node.intervalWrites;
    }
    if (cfg_.unsyncEnabled && depth >= kPtLevels - 2) {
        // Unsync applies to PT pages holding leaf entries: the PTE
        // level, and the PD level when it holds 2 MB mappings.
        vmm_.chargeTrap(TrapKind::Unsync);
        ++unsyncEvents;
        node.unsynced = true;
        p.unsynced.push_back(gframe);
        out.unsynced = true;
        return out;
    }
    // Sync in place: invalidate the affected shadow entry (and its
    // subtree) and flush derived translations.
    vmm_.chargeTrap(TrapKind::ShadowPtWrite);
    ++syncWrites;
    p.spt->invalidateEntry(va, depth);
    flushRegion(p, regionBase(va, depth), spanAtDepth(depth));
    return out;
}

void
ShadowMgr::resyncLeafPage(ProcState &p, FrameId gframe, GptNode &node)
{
    ap_assert(node.depth >= kPtLevels - 2, "resync of non-leaf node");
    // Re-merge all 512 entries of the guest page in place. At the PD
    // level only terminal (2 MB) entries are synced here; pointer
    // entries are covered by their own child nodes.
    std::uint64_t changed = 0;
    Addr span = spanAtDepth(node.depth);
    PtPage &gpage = mem_.table(vmm_.ensurePtBacked(gframe));
    for (unsigned i = 0; i < kPtEntries; ++i) {
        Addr va = node.vaBase + static_cast<Addr>(i) * span;
        Pte &gpte = gpage[i];
        bool gpte_leaf =
            gpte.valid && (node.depth == kPtLevels - 1 || gpte.pageSize);
        Pte *spte = p.spt->entry(va, node.depth);
        if (!spte)
            continue; // shadow path was never built here
        bool spte_terminal =
            spte->valid && (node.depth == kPtLevels - 1 ||
                            spte->pageSize || spte->switching);
        if (!gpte.valid) {
            if (spte->valid) {
                p.spt->invalidateEntry(va, node.depth);
                ++changed;
            }
            continue;
        }
        if (!gpte_leaf) {
            // A pointer entry: any stale terminal shadow entry here
            // (e.g. a demoted huge page) must go; live pointer paths
            // are synced by the child nodes.
            if (spte_terminal && !spte->switching) {
                p.spt->invalidateEntry(va, node.depth);
                ++changed;
            }
            continue;
        }
        if (spte->valid && !spte->switching) {
            FrameId hframe = vmm_.backing(gpte.pfn);
            if (hframe == PhysMem::kNoFrame || spte->pfn != hframe ||
                spte->writable !=
                    (gpte.writable && vmm_.hostWritable(gpte.pfn) &&
                     (gpte.dirty || cfg_.hwOptAd))) {
                // Stale: drop and let the next miss refill.
                p.spt->invalidateEntry(va, node.depth);
                ++changed;
            }
        }
    }
    node.unsynced = false;
    // Modifications discovered during resync are exactly the writes
    // the unsync window hid from the VMM; surface them to the
    // write-burst policy. A single changed entry is the signature of
    // one isolated update (e.g. one COW break) and is not counted —
    // the matching unsync trap already was.
    if (changed > 1)
        ++node.intervalWrites;
    ++resyncPages;
    flushRegion(p, node.vaBase, nodeSpan(node.depth));
}

std::uint64_t
ShadowMgr::resyncAll(ProcState &p)
{
    std::uint64_t n = 0;
    for (FrameId gframe : p.unsynced) {
        auto it = p.nodes.find(gframe);
        if (it == p.nodes.end() || !it->second.unsynced)
            continue;
        resyncLeafPage(p, gframe, it->second);
        ++n;
    }
    p.unsynced.clear();
    return n;
}

void
ShadowMgr::onGuestTlbFlush(ProcId proc, bool always_trap)
{
    ProcState &p = state(proc);
    std::uint64_t pages = p.unsynced.size();
    if (pages == 0 && !always_trap)
        return;
    vmm_.chargeTrap(TrapKind::TlbFlush, pages * kPtEntries);
    resyncAll(p);
}

void
ShadowMgr::onGuestInvlpgRange(ProcId proc, Addr base, Addr len)
{
    ProcState &p = state(proc);
    std::uint64_t resynced = 0;
    for (auto it = p.unsynced.begin(); it != p.unsynced.end();) {
        auto nit = p.nodes.find(*it);
        if (nit == p.nodes.end() || !nit->second.unsynced) {
            it = p.unsynced.erase(it);
            continue;
        }
        GptNode &node = nit->second;
        Addr span = nodeSpan(node.depth);
        bool overlaps =
            node.vaBase < base + len && base < node.vaBase + span;
        if (overlaps) {
            resyncLeafPage(p, *it, node);
            ++resynced;
            it = p.unsynced.erase(it);
        } else {
            ++it;
        }
    }
    if (resynced)
        vmm_.chargeTrap(TrapKind::TlbFlush, resynced * kPtEntries);
}

bool
ShadowMgr::onCtxSwitchIn(ProcId proc)
{
    ProcState &p = state(proc);
    SptrCache *sc = vmm_.sptrCache();
    if (sc) {
        auto hit = sc->lookup(p.gptRootGframe);
        if (hit && p.unsynced.empty()) {
            // Hardware loads sptr directly; no VM exit.
            return false;
        }
    }
    std::uint64_t pages = p.unsynced.size();
    vmm_.chargeTrap(TrapKind::CtxSwitch, pages * kPtEntries);
    resyncAll(p);
    if (sc) {
        sc->insert(p.gptRootGframe,
                   SptrEntry{p.ctx.sptRoot, p.ctx.gptRootBacking});
    }
    return true;
}

bool
ShadowMgr::leafUnderNestedMode(ProcId proc, Addr va)
{
    ProcState &p = state(proc);
    if (p.ctx.fullNested || p.ctx.rootSwitch)
        return true;
    FrameId gframe = p.gptRootGframe;
    for (unsigned d = 0; d < kPtLevels; ++d) {
        auto it = p.nodes.find(gframe);
        if (it != p.nodes.end() && it->second.nested)
            return true;
        const Pte *gpte = p.gpt->entry(va, d);
        if (!gpte || !gpte->valid || d == kPtLevels - 1 ||
            gpte->pageSize) {
            return false;
        }
        gframe = gpte->pfn;
    }
    return false;
}

void
ShadowMgr::refreshLeaf(ProcId proc, Addr va)
{
    ProcState &p = state(proc);
    auto gm = p.gpt->lookup(va);
    if (!gm)
        return;
    Pte *gpte = p.gpt->entry(va, gm->depth);
    auto sm = p.spt->lookup(va);
    if (sm && !sm->pte.switching)
        fillLeaf(p, va, gm->depth, *gpte);
    if (coh_)
        coh_->flushPage(va, p.ctx.asid, CoherenceCause::Resync);
}

void
ShadowMgr::emulateDirtyWrite(ProcId proc, Addr va)
{
    ProcState &p = state(proc);
    vmm_.chargeTrap(TrapKind::AdEmulation);
    ++adEmulations;
    // Set the guest dirty bit and upgrade the shadow entry.
    auto gm = p.gpt->lookup(va);
    if (!gm)
        return; // raced with an unmap; the retry will fault properly
    Pte *gpte = p.gpt->entry(va, gm->depth);
    gpte->dirty = true;
    gpte->accessed = true;
    auto sm = p.spt->lookup(va);
    if (sm && !sm->pte.switching) {
        Pte *spte = p.spt->entry(va, sm->depth);
        spte->writable =
            gpte->writable && vmm_.hostWritable(gm->pfn);
        spte->dirty = true;
        // Re-merge the frame too: a host-side COW break may have moved
        // the backing since this entry was filled.
        if (sm->depth == gm->depth) {
            FrameId fresh = vmm_.backing(gm->pfn);
            if (fresh != PhysMem::kNoFrame)
                spte->pfn = fresh;
        } else if (sm->depth == kPtLevels - 1) {
            // 4K shadow piece of a larger guest page.
            std::uint64_t frames = pageBytes(gm->size) / kPageBytes;
            FrameId gframe = gm->pfn + (frameOf(va) % frames);
            FrameId fresh = vmm_.backing(gframe);
            if (fresh != PhysMem::kNoFrame)
                spte->pfn = fresh;
        }
    }
    // The stale read-only translation may be cached.
    if (coh_)
        coh_->flushPage(va, p.ctx.asid, CoherenceCause::Resync);
}

void
ShadowMgr::convertToNested(ProcId proc, Addr va, unsigned depth)
{
    ProcState &p = state(proc);
    ap_assert(p.agile, "mode conversion outside agile paging");
    FrameId gframe = depth == 0 ? p.gptRootGframe
                                : p.gpt->tableFrame(va, depth);
    ap_assert(gframe != PhysMem::kNoFrame, "converting absent PT page");
    auto it = p.nodes
                  .try_emplace(gframe, GptNode{nodeBase(va, depth), depth,
                                               false, false, 0})
                  .first;
    GptNode &node = it->second;
    if (node.nested)
        return;
    ++convertsToNested;
    AP_DPRINTF(Shadow, "proc ", proc, ": convert to nested va=0x",
               std::hex, va, std::dec, " depth=", depth);

    Addr base = nodeBase(va, depth);
    Addr span = nodeSpan(depth);

    // Mark this node and every registered descendant nested; clear
    // their dirty baseline so the scan policy starts fresh.
    std::uint64_t converted = 0;
    for (auto &[gf, n] : p.nodes) {
        bool inside = n.depth > depth && n.vaBase >= base &&
                      n.vaBase < base + span;
        if ((gf == gframe) || inside) {
            if (n.unsynced) {
                n.unsynced = false;
                p.unsynced.erase(std::remove(p.unsynced.begin(),
                                             p.unsynced.end(), gf),
                                 p.unsynced.end());
            }
            n.nested = true;
            n.intervalWrites = 0;
            vmm_.consumeGptDirty(gf);
            ++converted;
        }
    }

    if (depth == 0) {
        // Whole process nested: the sptr register carries the switch.
        p.ctx.rootSwitch = true;
        p.ctx.gptRootBacking = vmm_.ensurePtBacked(p.gptRootGframe);
        p.spt->clear();
        if (coh_)
            coh_->flushAsid(p.ctx.asid, CoherenceCause::ModeSwitch);
    } else {
        // Replace the parent shadow entry with a switching entry.
        p.spt->invalidateEntry(va, depth - 1);
        Pte *spte = p.spt->ensurePath(va, depth - 1);
        ap_assert(spte, "shadow allocation failed during conversion");
        *spte = Pte{};
        spte->valid = true;
        spte->switching = true;
        spte->pfn = vmm_.ensurePtBacked(gframe);
        flushRegion(p, base, span);
    }
    vmm_.chargeTrap(TrapKind::ModeConvert, converted);
}

void
ShadowMgr::convertToShadow(ProcId proc, Addr va, unsigned depth)
{
    ProcState &p = state(proc);
    ap_assert(p.agile, "mode conversion outside agile paging");
    FrameId gframe = depth == 0 ? p.gptRootGframe
                                : p.gpt->tableFrame(va, depth);
    if (gframe == PhysMem::kNoFrame)
        return; // the PT page was freed meanwhile
    auto it = p.nodes.find(gframe);
    if (it == p.nodes.end() || !it->second.nested)
        return;
    GptNode &node = it->second;
    ++convertsToShadow;
    AP_DPRINTF(Shadow, "proc ", proc, ": convert to shadow va=0x",
               std::hex, va, std::dec, " depth=", depth);
    node.nested = false;
    node.intervalWrites = 0;

    std::uint64_t merged = 0;
    if (depth == 0) {
        p.ctx.rootSwitch = false;
        if (coh_)
            coh_->flushAsid(p.ctx.asid, CoherenceCause::ModeSwitch);
    } else {
        // Clear the switching entry and eagerly re-merge the region's
        // leaves inside the same VM exit — the VMM has everything it
        // needs, and fault-driven rebuilding would cost one exit per
        // page instead of per-entry table work here.
        if (Pte *spte = p.spt->entry(va, depth - 1)) {
            if (spte->valid && spte->switching)
                *spte = Pte{};
        }
        merged = prefillRegion(p, gframe, node);
        flushRegion(p, nodeBase(va, depth), nodeSpan(depth));
    }
    vmm_.chargeTrap(TrapKind::ModeConvert, 1 + merged);
}

std::uint64_t
ShadowMgr::prefillRegion(ProcState &p, FrameId gframe, const GptNode &node)
{
    // Only pages holding leaf entries are pre-merged; deeper
    // conversions refill through their children as those convert.
    if (node.depth < kPtLevels - 2)
        return 0;
    Addr span = spanAtDepth(node.depth);
    PtPage &gpage = mem_.table(vmm_.ensurePtBacked(gframe));
    std::uint64_t merged = 0;
    for (unsigned i = 0; i < kPtEntries; ++i) {
        Pte &gpte = gpage[i];
        if (!gpte.valid)
            continue;
        if (node.depth != kPtLevels - 1 && !gpte.pageSize)
            continue; // pointer entry: child nodes handle it
        Addr va = node.vaBase + static_cast<Addr>(i) * span;
        if (fillLeaf(p, va, node.depth, gpte))
            ++merged;
    }
    return merged;
}

void
ShadowMgr::onGptPageFree(ProcId proc, FrameId gframe)
{
    ProcState &p = state(proc);
    auto it = p.nodes.find(gframe);
    if (it == p.nodes.end())
        return;
    GptNode &node = it->second;
    if (node.unsynced) {
        p.unsynced.erase(std::remove(p.unsynced.begin(), p.unsynced.end(),
                                     gframe),
                         p.unsynced.end());
    }
    // Drop shadow state derived from this page: the parent-level entry
    // covering the page's whole region (switching or pointer).
    if (node.depth > 0) {
        p.spt->invalidateEntry(node.vaBase, node.depth - 1);
        flushRegion(p, node.vaBase, nodeSpan(node.depth));
    }
    p.nodes.erase(it);
}

void
ShadowMgr::onModeRegisterWrite(ProcId proc)
{
    ProcState &p = state(proc);
    if (coh_)
        coh_->flushAsid(p.ctx.asid, CoherenceCause::ModeSwitch);
}

bool
ShadowMgr::consumeShadowAccessed(ProcId proc, Addr va)
{
    ProcState &p = state(proc);
    auto sm = p.spt->lookup(va);
    if (!sm || sm->pte.switching)
        return false;
    Pte *spte = p.spt->entry(va, sm->depth);
    bool was = spte->accessed;
    spte->accessed = false;
    return was;
}

void
ShadowMgr::invalidateByGuestFrames(const std::vector<FrameId> &gframes)
{
    if (gframes.empty())
        return;
    std::unordered_map<FrameId, bool> affected;
    for (FrameId g : gframes)
        affected[g] = true;
    for (auto &[proc, p] : procs_) {
        // Find the guest VAs mapping any affected frame, then drop the
        // corresponding shadow leaves (they hold the old host frame).
        struct Hit
        {
            Addr va;
            unsigned depth;
        };
        std::vector<Hit> hits;
        p.gpt->forEachTerminal(
            [&](Addr va, const Pte &pte, unsigned depth) {
                std::uint64_t frames =
                    pageBytes(depth == kPtLevels - 1 ? PageSize::Size4K
                              : depth == kPtLevels - 2
                                  ? PageSize::Size2M
                                  : PageSize::Size1G) /
                    kPageBytes;
                for (std::uint64_t i = 0; i < frames; ++i) {
                    if (affected.count(pte.pfn + i)) {
                        hits.push_back(Hit{va, depth});
                        break;
                    }
                }
            });
        for (const Hit &h : hits) {
            // The shadow table may map this VA at h.depth (matched
            // granularity) or as broken-up 4K pieces; invalidating the
            // covering entry handles both.
            if (Pte *spte = p.spt->entry(h.va, h.depth)) {
                if (spte->valid && !spte->switching)
                    p.spt->invalidateEntry(h.va, h.depth);
            }
            flushRegion(p, regionBase(h.va, h.depth),
                        spanAtDepth(h.depth));
        }
    }
}

std::uint64_t
ShadowMgr::prefillAll(ProcId proc)
{
    ProcState &p = state(proc);
    struct Item
    {
        Addr va;
        unsigned depth;
    };
    std::vector<Item> items;
    p.gpt->forEachTerminal([&](Addr va, const Pte &, unsigned depth) {
        items.push_back(Item{va, depth});
    });
    std::uint64_t merged = 0;
    for (const Item &item : items) {
        // Re-read the entry (fillLeaf mutates A/D bits).
        Pte *gpte = p.gpt->entry(item.va, item.depth);
        if (!gpte || !gpte->valid)
            continue;
        // Register/protect the node path for this VA as a demand fill
        // would, so write interception covers the rebuilt regions.
        FrameId gframe = p.gptRootGframe;
        for (unsigned d = 0; d <= item.depth; ++d) {
            p.nodes.try_emplace(
                gframe, GptNode{nodeBase(item.va, d), d, false, false, 0});
            if (d < item.depth) {
                const Pte *e = p.gpt->entry(item.va, d);
                if (!e || !e->valid)
                    break;
                gframe = e->pfn;
            }
        }
        if (fillLeaf(p, item.va, item.depth, *gpte))
            ++merged;
    }
    return merged;
}

void
ShadowMgr::zapProcess(ProcId proc)
{
    ProcState &p = state(proc);
    p.spt->clear();
    p.nodes.clear();
    p.unsynced.clear();
    p.nodes[p.gptRootGframe] = GptNode{0, 0, false, false, 0};
    p.ctx.rootSwitch = false;
    if (coh_)
        coh_->flushAsid(p.ctx.asid, CoherenceCause::ModeSwitch);
}

} // namespace ap
