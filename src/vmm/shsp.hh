/**
 * @file
 * Selective Hardware/Software Paging (SHSP) — the Wang et al. [58]
 * baseline the paper compares against (Section VII-C).
 *
 * SHSP switches an *entire* guest process between nested and shadow
 * paging by monitoring TLB-miss and VMM-intervention overheads each
 * interval. Switching to shadow requires rebuilding the whole shadow
 * page table (here: a zap followed by demand refills — exactly the
 * cost the paper calls out as SHSP's weakness on big-memory
 * workloads). Agile paging is the temporal *and spatial* refinement.
 */

#ifndef AGILEPAGING_VMM_SHSP_HH
#define AGILEPAGING_VMM_SHSP_HH

#include <map>
#include <unordered_map>

#include "base/serialize.hh"
#include "base/stats.hh"
#include "base/types.hh"
#include "vmm/shadow_mgr.hh"

namespace ap
{

/** SHSP controller parameters. */
struct ShspConfig
{
    /** Estimated ratio of nested to shadow page-walk cycles (the
     *  controller's model of what the other mode would cost). */
    double nestedWalkFactor = 3.0;
    /** Required benefit margin before switching (hysteresis). */
    double switchMargin = 1.3;
    /** Estimated VMtrap cost used when projecting shadow-mode
     *  mediation overhead from observed guest PT writes. */
    Cycles projectedTrapCost = 1700;
    /** Minimum projected walk saving, as a fraction of the interval's
     *  ideal cycles, before a switch to shadow is worth its rebuild
     *  cost. */
    double minBenefitFrac = 0.05;
    /** Minimum intervals between switches — covers the transition
     *  interval(s) during which the rebuilt shadow table's demand
     *  refills make either mode look bad. */
    std::uint32_t minResidency = 4;
    /** Start processes in nested mode. */
    bool startNested = true;
};

/** Per-interval observations the machine feeds the controller. */
struct ShspSample
{
    /** Cycles spent on page walks by this process this interval. */
    Cycles walkCycles = 0;
    /** Cycles spent in VM exits attributable to this process. */
    Cycles trapCycles = 0;
    /** Guest page-table writes performed (mediated or not). */
    std::uint64_t gptWrites = 0;
    /** Ideal cycles elapsed this interval (materiality scale). */
    Cycles idealCycles = 1;
};

/**
 * Whole-process mode switching controller.
 */
class ShspController : public stats::StatGroup
{
  public:
    ShspController(stats::StatGroup *parent, ShadowMgr &mgr,
                   const ShspConfig &cfg);

    /** Initialize controller state for a registered SHSP process. */
    void onProcessStart(ProcId proc);

    /** Interval tick with this process's observations. */
    void onInterval(ProcId proc, const ShspSample &sample);

    /** @return true if the process currently runs shadowed. */
    bool inShadow(ProcId proc) const;

    /** Snapshot support. states_ is lookup-only (never iterated), so
     *  it stays unordered; entries travel sorted by pid. */
    void
    saveState(Serializer &s) const
    {
        std::map<ProcId, State> sorted(states_.begin(), states_.end());
        s.putU64(sorted.size());
        for (const auto &[proc, st] : sorted) {
            s.putU32(proc);
            s.putU32(st.intervalsSinceSwitch);
        }
    }

    void
    restoreState(Deserializer &d)
    {
        states_.clear();
        std::uint64_t n = d.getU64();
        for (std::uint64_t i = 0; i < n && d.ok(); ++i) {
            ProcId proc = d.getU32();
            states_[proc].intervalsSinceSwitch = d.getU32();
        }
    }

    stats::Scalar switchesToShadow;
    stats::Scalar switchesToNested;

  private:
    struct State
    {
        std::uint32_t intervalsSinceSwitch = 0;
    };

    ShadowMgr &mgr_;
    ShspConfig cfg_;
    std::unordered_map<ProcId, State> states_;
};

} // namespace ap

#endif // AGILEPAGING_VMM_SHSP_HH
