/**
 * @file
 * The sptr hardware cache (paper Section IV, second optimization).
 *
 * A small (4-8 entry) fully-associative structure mapping a guest page
 * table pointer (gptr) to the matching shadow page table pointer
 * (sptr). On a guest context switch the hardware consults it; a hit
 * loads sptr directly and avoids the CtxSwitch VMtrap. The VMM fills
 * and invalidates it through new virtualization extensions.
 */

#ifndef AGILEPAGING_VMM_SPTR_CACHE_HH
#define AGILEPAGING_VMM_SPTR_CACHE_HH

#include <memory>
#include <optional>

#include "base/serialize.hh"
#include "base/stats.hh"
#include "base/types.hh"
#include "tlb/assoc_cache.hh"

namespace ap
{

/** Cached shadow-root information for one guest root. */
struct SptrEntry
{
    /** sptr: host frame of the shadow root. */
    FrameId sptRoot = 0;
    /** Host frame backing the guest root (for agile nested resume). */
    FrameId gptRootBacking = 0;
};

/**
 * The gptr-to-sptr cache.
 */
class SptrCache : public stats::StatGroup
{
  public:
    /**
     * @param entries capacity (the paper suggests 4-8). Zero models
     *        hardware without the extension: every probe misses, and
     *        no hit/miss stats are charged (there is no structure to
     *        account against).
     */
    SptrCache(stats::StatGroup *parent, std::size_t entries);

    /** Hardware probe on a guest CR3 write. */
    std::optional<SptrEntry> lookup(FrameId gpt_root);

    /** VMM fill after servicing a context-switch trap. */
    void insert(FrameId gpt_root, const SptrEntry &entry);

    /** VMM invalidation when a shadow table is destroyed. */
    void invalidate(FrameId gpt_root);

    void
    clear()
    {
        if (cache_)
            cache_->clear();
    }

    std::size_t capacity() const { return capacity_; }

    /** Snapshot support. The inner cache's presence is fixed by
     *  capacity_ (a config property), so only its contents travel. */
    void
    saveState(Serializer &s) const
    {
        s.putBool(cache_ != nullptr);
        if (cache_)
            cache_->saveState(s);
    }

    void
    restoreState(Deserializer &d)
    {
        bool present = d.getBool();
        if (present != (cache_ != nullptr)) {
            d.fail();
            return;
        }
        if (cache_)
            cache_->restoreState(d);
    }

    stats::Scalar hits;
    stats::Scalar misses;

  private:
    std::size_t capacity_;
    /** Absent when capacity is zero (AssocCache needs >= 1 entry). */
    std::unique_ptr<AssocCache<SptrEntry>> cache_;
};

} // namespace ap

#endif // AGILEPAGING_VMM_SPTR_CACHE_HH
