/**
 * @file
 * The virtual machine monitor.
 *
 * Owns, for one VM: the guest-physical address space (frame allocators
 * and the gPA-to-hPA backing map), the architectural host page table
 * (hPT) the hardware walks in nested mode, trap accounting against the
 * TrapCosts model, host-side content-based page sharing, and the sptr
 * hardware cache of the paper's second optional optimization.
 *
 * Guest-physical layout: frames [1 .. ptFrames] are the page-table
 * region (always backed with 4 KB host mappings); data frames live at
 * [dataBase .. dataBase + dataFrames] with dataBase 2 MB aligned so
 * the VMM can back them with 2 MB host mappings when configured.
 */

#ifndef AGILEPAGING_VMM_VMM_HH
#define AGILEPAGING_VMM_VMM_HH

#include <memory>
#include <unordered_map>
#include <vector>

#include "base/serialize.hh"
#include "base/stats.hh"
#include "base/types.hh"
#include "mem/frame_alloc.hh"
#include "mem/page_table.hh"
#include "mem/phys_mem.hh"
#include "tlb/nested_tlb.hh"
#include "vmm/sptr_cache.hh"
#include "vmm/trap_costs.hh"

namespace ap
{

/** VMM configuration knobs. */
struct VmmConfig
{
    /** Guest-physical frames reserved for guest page-table pages. */
    std::uint64_t guestPtFrames = 1 << 16;
    /** Guest-physical frames available for data. */
    std::uint64_t guestDataFrames = 1 << 20;
    /** Granule of host (second-stage) mappings for the data region. */
    PageSize hostPageSize = PageSize::Size4K;
    /** Trap cost model. */
    TrapCosts costs{};
    /** Hardware optimization 2 (Section IV): sptr cache entries
     *  consulted on guest context switches; 0 disables. */
    std::size_t sptrCacheEntries = 0;
};

/**
 * Per-VM hypervisor state and services.
 */
class Vmm : public stats::StatGroup
{
  public:
    /**
     * @param parent stat parent
     * @param mem    host physical memory
     * @param ntlb   nested TLB to invalidate on host-PT changes
     *               (may be nullptr)
     */
    Vmm(stats::StatGroup *parent, PhysMem &mem, const VmmConfig &cfg,
        NestedTlb *ntlb);
    ~Vmm();

    // ------------------------------------------------------------------
    // Guest physical space
    // ------------------------------------------------------------------

    /** Allocate a guest frame for a guest page-table page. The backing
     *  host table frame is created eagerly (the guest OS writes the
     *  page immediately); the hPT mapping is installed too.
     *  @return the guest frame, or 0 when exhausted. */
    FrameId allocGuestPtFrame();

    /** Release a guest PT frame and its backing. */
    void freeGuestPtFrame(FrameId gframe);

    /** Allocate one data guest frame (backing installed lazily at
     *  first hardware touch, i.e. on a host fault).
     *  @return the guest frame, or 0 when exhausted. */
    FrameId allocGuestDataFrame();

    /** Allocate @p n contiguous aligned data guest frames (guest THP).
     *  @return the first guest frame, or 0 when exhausted. */
    FrameId allocGuestDataFrames(std::uint64_t n);

    /** Release a data guest frame (and backing if present). */
    void freeGuestDataFrame(FrameId gframe);

    /** @return true if @p gframe lies in the page-table region. */
    bool isPtRegion(FrameId gframe) const { return gframe <= pt_cap_; }

    /** Host frame currently backing @p gframe (0 if unbacked). */
    FrameId backing(FrameId gframe) const;

    // ------------------------------------------------------------------
    // Host page table (the hardware's second stage)
    // ------------------------------------------------------------------

    RadixPageTable &hostPt() { return *hpt_; }
    const RadixPageTable &hostPt() const { return *hpt_; }
    FrameId hostPtRoot() const { return hpt_->root(); }

    /**
     * Handle a host fault (EPT violation) on @p gpa: allocate backing
     * for the containing frame (or 2 MB group) and install the hPT
     * mapping. Charges a HostFault trap.
     * @return false if host memory is exhausted.
     */
    bool handleHostFault(Addr gpa);

    /** Back a PT-region frame immediately (no trap charge; callers
     *  charge contextually). @return host frame or kNoFrame.
     *
     *  Inline because every functional guest page-table operation
     *  funnels through here (GuestPtSpace::page): the already-backed
     *  case is one load and one branch. */
    FrameId
    ensurePtBacked(FrameId gframe)
    {
        ap_assert(gframe > 0 && isPtRegion(gframe),
                  "not a PT-region frame: ", gframe);
        FrameId hframe = backings_[gframe].hframe;
        return hframe ? hframe : backPtSlow(gframe);
    }

    /** Back a data frame immediately (shadow fill resolves backing as
     *  part of the fill, without a separate EPT exit).
     *  @return host frame backing @p gframe, or kNoFrame on OOM. */
    FrameId ensureDataBacked(FrameId gframe);

    /** Record that the guest wrote @p gframe directly (nested-mode PT
     *  page): sets the hPT dirty bit the dirty-scan policy reads. */
    void markGptWriteDirty(FrameId gframe);

    /** Read-and-clear the dirty bit on the backing of @p gframe. */
    bool consumeGptDirty(FrameId gframe);

    /** Set one guest data page's content id (dedup key). */
    void setContent(FrameId gframe, std::uint64_t content_id);

    // ------------------------------------------------------------------
    // Content-based page sharing (Section V)
    // ------------------------------------------------------------------

    /**
     * Scan backed data frames; collapse duplicates (same content id)
     * to one read-only host frame.
     * @param remapped_gframes if non-null, receives every guest frame
     *        whose backing or host write permission changed — the
     *        canonical copy of each duplicate set included (callers
     *        must invalidate shadow entries and TLB entries derived
     *        from the old frames/permissions)
     * @return number of frames reclaimed.
     */
    std::uint64_t sharePages(std::vector<FrameId> *remapped_gframes =
                                 nullptr);

    /**
     * Break host-side COW on a write to @p gframe: new private frame,
     * writable mapping. Charges a HostCow trap.
     * @return false if memory is exhausted.
     */
    bool breakHostCow(FrameId gframe);

    /** @return host-stage write permission for @p gframe's mapping. */
    bool hostWritable(FrameId gframe) const;

    // ------------------------------------------------------------------
    // Traps
    // ------------------------------------------------------------------

    /** Charge one VM exit of kind @p k touching @p entries PTEs. */
    void chargeTrap(TrapKind k, std::uint64_t entries = 0);

    Cycles trapCycles() const { return trap_cycles_; }
    std::uint64_t trapCount(TrapKind k) const;
    std::uint64_t trapCountTotal() const;

    /** The sptr cache (hardware optimization 2); nullptr if disabled. */
    SptrCache *sptrCache() { return sptr_cache_.get(); }

    const VmmConfig &config() const { return cfg_; }
    PhysMem &physMem() { return mem_; }

    /** Guest frame-id allocators (pool observability). */
    const FrameAllocator &ptAllocator() const { return pt_alloc_; }
    const FrameAllocator &dataAllocator() const { return data_alloc_; }

    /** Host frames consumed by this VM's data backings. */
    std::uint64_t backedDataFrames() const { return backed_data_; }

    /**
     * Snapshot support. PhysMem must be restored *before*
     * restoreState() is called: the hPT adopts its restored root
     * in place (the page tree already exists in host memory), so no
     * table page is allocated or freed here.
     */
    void
    saveState(Serializer &s) const
    {
        s.putMarker(0x204d4d56); // "VMM "
        pt_alloc_.saveState(s);
        data_alloc_.saveState(s);
        s.putU64(hpt_->root());
        s.putU64(hpt_->pageCount());
        s.putPodVector(backings_);
        s.putU64(backed_data_);
        for (std::uint64_t c : trap_counts_)
            s.putU64(c);
        s.putU64(trap_cycles_);
        if (sptr_cache_)
            sptr_cache_->saveState(s);
    }

    void
    restoreState(Deserializer &d)
    {
        d.checkMarker(0x204d4d56);
        pt_alloc_.restoreState(d);
        data_alloc_.restoreState(d);
        FrameId hpt_root = d.getU64();
        std::uint64_t hpt_pages = d.getU64();
        if (!d.ok())
            return;
        hpt_->restoreState(hpt_root, hpt_pages);
        d.getPodVector(backings_);
        backed_data_ = d.getU64();
        for (std::uint64_t &c : trap_counts_)
            c = d.getU64();
        trap_cycles_ = d.getU64();
        if (sptr_cache_)
            sptr_cache_->restoreState(d);
    }

    stats::Scalar trapsTotal;
    stats::Scalar trapCyclesStat;
    stats::Scalar hostFaultsServed;
    stats::Scalar pagesShared;
    stats::Scalar cowBreaks;
    /** Per-cause VM-exit attribution ("trap_<kind>" / same + "_cycles"
     *  per TrapKind): counts sum exactly to trapsTotal and cycles to
     *  trapCyclesStat, so the Section III-C cost model can be checked
     *  empirically per cause rather than assumed in aggregate. */
    std::vector<std::unique_ptr<stats::Scalar>> trapCountByCause;
    std::vector<std::unique_ptr<stats::Scalar>> trapCyclesByCause;
    /** PTEs touched per trap (per-entry handler work, Section III-C). */
    stats::Distribution trapEntriesDist;

  private:
    struct Backing
    {
        FrameId hframe = 0;
        /** Dirty bit the nested-to-shadow dirty-scan policy consumes
         *  (mirrors the hPT leaf dirty bit for PT-region frames). */
        bool dirty = false;
        /** Host mapping is read-only due to sharing. */
        bool shared = false;
        /** Content recorded before the frame was backed. */
        std::uint64_t pendingContent = 0;
    };

    Backing &backingSlot(FrameId gframe);
    const Backing *backingSlotIfAny(FrameId gframe) const;
    bool backDataFrame(FrameId gframe);
    /** Out-of-line tail of ensurePtBacked (first touch only). */
    FrameId backPtSlow(FrameId gframe);

    PhysMem &mem_;
    VmmConfig cfg_;
    NestedTlb *ntlb_;

    std::uint64_t pt_cap_;
    std::uint64_t data_base_;
    FrameAllocator pt_alloc_;
    FrameAllocator data_alloc_;

    std::unique_ptr<HostPtSpace> hpt_space_;
    std::unique_ptr<RadixPageTable> hpt_;

    std::vector<Backing> backings_;
    std::uint64_t backed_data_ = 0;

    std::array<std::uint64_t, kNumTrapKinds> trap_counts_{};
    Cycles trap_cycles_ = 0;

    std::unique_ptr<SptrCache> sptr_cache_;
};

} // namespace ap

#endif // AGILEPAGING_VMM_VMM_HH
