/**
 * @file
 * Shadow page-table management (paper Section III-B).
 *
 * For every shadowed guest process the manager owns a shadow page
 * table built on demand by merging the guest and host tables, keeps it
 * coherent by write-protecting the shadowed parts of the guest page
 * table, and — for agile paging — maintains the switching entries that
 * hand parts of the walk to nested mode.
 *
 * Mode state is tracked per guest-page-table page ("node"): a node is
 * either shadowed (write-protected; stores trap), unsynced (KVM-style
 * temporarily writable leaf, resynced at the next TLB flush), or
 * nested (fully writable; covered by a switching entry in the parent
 * shadow level).
 */

#ifndef AGILEPAGING_VMM_SHADOW_MGR_HH
#define AGILEPAGING_VMM_SHADOW_MGR_HH

#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "base/serialize.hh"
#include "base/stats.hh"
#include "base/types.hh"
#include "mem/page_table.hh"
#include "tlb/coherence.hh"
#include "vmm/vmm.hh"
#include "walker/walker.hh"

namespace ap
{

/** Shadowing behaviour knobs. */
struct ShadowConfig
{
    /** KVM-style unsynced leaf pages (Section III-B). */
    bool unsyncEnabled = true;
    /** Hardware optimization 1 (Section IV): the walker writes A/D
     *  bits into all three tables, so shadow fills map writable pages
     *  writable immediately and no AdEmulation traps occur. */
    bool hwOptAd = false;
};

/** Mode state of one guest-page-table page. */
struct GptNode
{
    /** First gVA covered by this PT page. */
    Addr vaBase = 0;
    /** Depth of the entries this page holds (0 = root). */
    unsigned depth = 0;
    /** Covered by nested mode (writable, reached via switching). */
    bool nested = false;
    /** Temporarily writable shadowed leaf (resync pending). */
    bool unsynced = false;
    /** Mediated writes observed this policy interval. */
    std::uint32_t intervalWrites = 0;
    /** Consecutive policy intervals with a clean dirty bit (the
     *  nested=>shadow hysteresis counter). */
    std::uint32_t cleanIntervals = 0;
};

/** Outcome of intercepting one guest page-table write. */
struct GptWriteOutcome
{
    /** The write needed VMM mediation (a trap was charged). */
    bool trapped = false;
    /** The page became unsynced rather than synced in place. */
    bool unsynced = false;
    /** Node state after the write (nullptr if the page is not
     *  shadow-managed at all). */
    GptNode *node = nullptr;
    /** The node's guest frame (valid when node != nullptr). */
    FrameId nodeGframe = 0;
};

/** Result of servicing a shadow page fault. */
enum class ShadowFillResult
{
    /** Shadow path (or switching boundary) installed; retry the walk. */
    Filled,
    /** The guest mapping itself is absent: deliver a guest fault. */
    NeedGuestFault,
};

/**
 * The manager. One instance per VM; tracks every shadowed process.
 */
class ShadowMgr : public stats::StatGroup
{
  public:
    /**
     * @param coh coherence domain to invalidate through on shadow
     *            changes (nullable; every vCPU's caches are reached)
     */
    ShadowMgr(stats::StatGroup *parent, PhysMem &mem, Vmm &vmm,
              const ShadowConfig &cfg, CoherenceDomain *coh);
    ~ShadowMgr();

    /** Per-process bookkeeping (exposed to the agile policy). */
    struct ProcState
    {
        RadixPageTable *gpt = nullptr;
        FrameId gptRootGframe = 0;
        /** Address space of the shadow table (must outlive spt). */
        std::unique_ptr<HostPtSpace> sptSpace;
        std::unique_ptr<RadixPageTable> spt;
        TranslationContext ctx{};
        /** Agile: partial shadowing allowed; plain shadow otherwise. */
        bool agile = false;
        /** Ordered so iteration (policy scans, resync-all) is
         *  insert-history-independent — a snapshot-restored manager
         *  must iterate exactly like the one it was captured from. */
        std::map<FrameId, GptNode> nodes;
        std::vector<FrameId> unsynced;
    };

    /**
     * Begin shadowing a process.
     * @param gpt   the guest page table (frames are guest frames)
     * @param agile enable partial (agile) shadowing
     */
    void registerProcess(ProcId proc, RadixPageTable *gpt,
                         FrameId gpt_root_gframe, bool agile);

    /** Stop shadowing; frees the shadow table. */
    void unregisterProcess(ProcId proc);

    bool hasProcess(ProcId proc) const;

    /** Walker register state for the process. */
    TranslationContext &context(ProcId proc);

    /** Full per-process state (used by policies). */
    ProcState &state(ProcId proc);

    /**
     * Service a shadow page fault at @p va: build the shadow path by
     * merging guest and host tables (charges a ShadowFill trap), or
     * report that the guest mapping is missing.
     */
    ShadowFillResult handleShadowFault(ProcId proc, Addr va);

    /**
     * Intercept a guest write to its page table at (@p va, @p depth)
     * — call *after* the functional update. Traps and syncs if the
     * written page is protected.
     *
     * @param ad_only the write only manipulated accessed/dirty bits
     *        (reference-bit scanning). The VMM recognizes the pattern
     *        from the trapped old/new PTE values and treats it as a
     *        full write burst: reclaim scans rewrite whole PT pages,
     *        so one trap is enough evidence (Section V).
     */
    GptWriteOutcome onGptWrite(ProcId proc, Addr va, unsigned depth,
                               bool ad_only = false);

    /**
     * Guest-initiated TLB flush covering @p va (or everything when
     * @p all). Resyncs unsynced pages (charges a TlbFlush trap when
     * any work is required or @p always_trap is set).
     */
    void onGuestTlbFlush(ProcId proc, bool always_trap);

    /**
     * Targeted INVLPG-style invalidation covering [base, base+len):
     * resyncs only the unsynced PT pages intersecting the range.
     */
    void onGuestInvlpgRange(ProcId proc, Addr base, Addr len);

    /**
     * Guest wrote its page-table pointer to switch to @p proc. Charges
     * a CtxSwitch trap unless the sptr cache hits and no resync work
     * is pending.
     * @return true if a trap was charged.
     */
    bool onCtxSwitchIn(ProcId proc);

    /**
     * @return true if @p va's translation ends in nested mode (its
     * leaf PT page — or an ancestor — is nested, or the whole process
     * runs root-switched). Faults there are delivered directly to the
     * guest, exactly as under nested paging; only shadow-portion
     * faults need VMM mediation.
     */
    bool leafUnderNestedMode(ProcId proc, Addr va);

    /**
     * Refresh the shadow leaf for @p va from the current guest and
     * host tables without charging a trap — used when another handler
     * (e.g. a host COW break) already paid for the exit.
     */
    void refreshLeaf(ProcId proc, Addr va);

    /**
     * Emulate a dirty-bit protection fault: a store hit a page whose
     * shadow entry withheld write permission although the guest grants
     * it. Sets guest dirty, upgrades the shadow entry. Charges an
     * AdEmulation trap (never called when hwOptAd is on).
     */
    void emulateDirtyWrite(ProcId proc, Addr va);

    // ------------------------------------------------------------------
    // Agile mode conversions (driven by core/agile_policy)
    // ------------------------------------------------------------------

    /**
     * Move the guest PT page holding (@p va, @p depth) — and every
     * registered descendant — to nested mode (Section III-C,
     * shadow=>nested). Installs the switching entry; depth 0 engages
     * the root switch. Charges a ModeConvert trap.
     */
    void convertToNested(ProcId proc, Addr va, unsigned depth);

    /**
     * Move the guest PT page holding (@p va, @p depth) back to shadow
     * mode. The paper requires parents before children; the policy
     * enforces that ordering. Charges a ModeConvert trap.
     */
    void convertToShadow(ProcId proc, Addr va, unsigned depth);

    /** Drop the whole shadow table (SHSP nested switch / rebuild). */
    void zapProcess(ProcId proc);

    /**
     * Eagerly (re)build the whole shadow table from the guest and host
     * tables — SHSP's switch-to-shadow step ("switching to shadow mode
     * requires (re)building the entire shadow page table"). No trap is
     * charged here; the caller bills the bulk work.
     * @return entries merged.
     */
    std::uint64_t prefillAll(ProcId proc);

    /**
     * The VMM changed the backing of these guest frames (content-based
     * sharing): drop every shadow leaf derived from them so no stale
     * host frame survives ("the VMM must update the shadow page table
     * on any changes to the host page table", Section III-B).
     */
    void invalidateByGuestFrames(const std::vector<FrameId> &gframes);

    /**
     * The guest freed a page-table page (munmap shrank the table).
     * Drops its node and the shadow entries derived from it so a
     * recycled frame cannot inherit stale mode state.
     */
    void onGptPageFree(ProcId proc, FrameId gframe);

    /** The VMM this manager charges traps against. */
    Vmm &vmm() { return vmm_; }

    /**
     * The VMM rewrote the process's translation registers (e.g.
     * engaged or disengaged shadow mode): cached partial walks for the
     * address space are stale in *mode*, so flush its TLB/PWC state —
     * what a real sptr write does.
     */
    void onModeRegisterWrite(ProcId proc);

    /**
     * Read-and-clear the *hardware-visible* accessed bit of @p va's
     * translation: under shadow paging the walker sets A/D in the
     * shadow table, and the VMM surfaces them to the guest's
     * reference-bit scans (Section III-B).
     * @return true if the shadow entry was accessed since last asked.
     */
    bool consumeShadowAccessed(ProcId proc, Addr va);

    const ShadowConfig &config() const { return cfg_; }

    /** Snapshot support. Guest page tables are owned by the guest OS,
     *  so only their identity travels; @p gpt_resolver maps a pid back
     *  to the restored table on load. */
    void saveState(Serializer &s) const;
    void restoreState(
        Deserializer &d,
        const std::function<RadixPageTable *(ProcId)> &gpt_resolver);

    /** Drop every shadowed process without freeing a frame (see
     *  GuestOs::abandonForRestore — same machine-reuse teardown). */
    void abandonForRestore();

    stats::Scalar fills;
    stats::Scalar syncWrites;
    stats::Scalar unsyncEvents;
    stats::Scalar resyncPages;
    stats::Scalar adEmulations;
    stats::Scalar convertsToNested;
    stats::Scalar convertsToShadow;

  private:
    /** Merge one guest leaf into the shadow table. */
    bool fillLeaf(ProcState &p, Addr va, unsigned depth, Pte &gpte);

    /** Eagerly merge a whole leaf PT page during conversion back to
     *  shadow mode. @return entries merged. */
    std::uint64_t prefillRegion(ProcState &p, FrameId gframe,
                                const GptNode &node);

    /** Re-merge a (previously unsynced) leaf gPT page in place. */
    void resyncLeafPage(ProcState &p, FrameId gframe, GptNode &node);

    /** Resync every unsynced page of @p p; @return pages resynced. */
    std::uint64_t resyncAll(ProcState &p);

    void flushRegion(ProcState &p, Addr base, Addr span);

    PhysMem &mem_;
    Vmm &vmm_;
    ShadowConfig cfg_;
    CoherenceDomain *coh_;

    /** Ordered for the same reason as ProcState::nodes. */
    std::map<ProcId, ProcState> procs_;
};

} // namespace ap

#endif // AGILEPAGING_VMM_SHADOW_MGR_HH
