/**
 * @file
 * Walk-trace summarizer and binary file I/O (see walk_trace.hh).
 */

#include "trace/walk_trace.hh"

#include <cstring>
#include <fstream>
#include <iomanip>
#include <map>
#include <ostream>
#include <sstream>

namespace ap
{

namespace
{

/** File magic "APWT" (little-endian u32) and the current version. */
constexpr std::uint32_t kWalkTraceMagic = 0x54575041u;
constexpr std::uint32_t kWalkTraceVersion = 1;

void
putU16(std::ostream &os, std::uint16_t v)
{
    unsigned char b[2] = {static_cast<unsigned char>(v),
                          static_cast<unsigned char>(v >> 8)};
    os.write(reinterpret_cast<const char *>(b), sizeof(b));
}

void
putU32(std::ostream &os, std::uint32_t v)
{
    unsigned char b[4];
    for (int i = 0; i < 4; ++i)
        b[i] = static_cast<unsigned char>(v >> (8 * i));
    os.write(reinterpret_cast<const char *>(b), sizeof(b));
}

void
putU64(std::ostream &os, std::uint64_t v)
{
    unsigned char b[8];
    for (int i = 0; i < 8; ++i)
        b[i] = static_cast<unsigned char>(v >> (8 * i));
    os.write(reinterpret_cast<const char *>(b), sizeof(b));
}

bool
getU16(std::istream &is, std::uint16_t &v)
{
    unsigned char b[2];
    if (!is.read(reinterpret_cast<char *>(b), sizeof(b)))
        return false;
    v = static_cast<std::uint16_t>(b[0] | (b[1] << 8));
    return true;
}

bool
getU32(std::istream &is, std::uint32_t &v)
{
    unsigned char b[4];
    if (!is.read(reinterpret_cast<char *>(b), sizeof(b)))
        return false;
    v = 0;
    for (int i = 0; i < 4; ++i)
        v |= static_cast<std::uint32_t>(b[i]) << (8 * i);
    return true;
}

bool
getU64(std::istream &is, std::uint64_t &v)
{
    unsigned char b[8];
    if (!is.read(reinterpret_cast<char *>(b), sizeof(b)))
        return false;
    v = 0;
    for (int i = 0; i < 8; ++i)
        v |= static_cast<std::uint64_t>(b[i]) << (8 * i);
    return true;
}

void
putRecord(std::ostream &os, const WalkTraceRecord &r)
{
    putU64(os, r.va);
    putU32(os, r.asid);
    os.put(static_cast<char>(r.mode));
    os.put(static_cast<char>(r.pageSize));
    os.put(static_cast<char>(r.flags));
    os.put(static_cast<char>(r.switchDepth));
    os.put(static_cast<char>(r.refs));
    os.put(static_cast<char>(r.coldRefs));
    for (std::uint8_t t : r.refsByTable)
        os.put(static_cast<char>(t));
    os.put(static_cast<char>(r.pwcStartDepth));
    os.put(static_cast<char>(r.ntlbHits));
    os.put(static_cast<char>(r.faults));
    putU16(os, r.trapMask);
}

bool
getRecord(std::istream &is, WalkTraceRecord &r)
{
    if (!getU64(is, r.va))
        return false;
    std::uint32_t asid = 0;
    if (!getU32(is, asid))
        return false;
    r.asid = asid;
    unsigned char b[9 + kNumWalkTables];
    if (!is.read(reinterpret_cast<char *>(b), sizeof(b)))
        return false;
    std::size_t i = 0;
    r.mode = b[i++];
    r.pageSize = b[i++];
    r.flags = b[i++];
    r.switchDepth = b[i++];
    r.refs = b[i++];
    r.coldRefs = b[i++];
    for (std::uint8_t &t : r.refsByTable)
        t = b[i++];
    r.pwcStartDepth = b[i++];
    r.ntlbHits = b[i++];
    r.faults = b[i++];
    return getU16(is, r.trapMask);
}

/** Shape identity: every field that describes *how* the walk went,
 *  ignoring which address/process triggered it. */
std::uint64_t
shapeKey(const WalkTraceRecord &r)
{
    std::uint64_t k = r.mode;
    k = (k << 8) | r.pageSize;
    k = (k << 8) | (r.flags & WalkTraceRecord::kFlagFullNested);
    k = (k << 8) | r.switchDepth;
    k = (k << 8) | r.refsByTable[0];
    k = (k << 8) | r.refsByTable[1];
    k = (k << 8) | r.refsByTable[2];
    std::uint64_t k2 = r.refsByTable[3];
    k2 = (k2 << 8) | r.pwcStartDepth;
    k2 = (k2 << 8) | r.ntlbHits;
    return k * 0x1000000ull + k2;
}

} // namespace

unsigned
coverageClass(const WalkTraceRecord &r)
{
    // Mirrors Walker::recordCoverage exactly so trace-derived coverage
    // matches the in-simulator counters bit for bit.
    if (r.fullNested())
        return 5;
    if (r.switchDepth >= kPtLevels)
        return 0;
    return kPtLevels - r.switchDepth;
}

WalkTraceSummary
summarizeWalkTrace(const std::vector<WalkTraceRecord> &records,
                   std::uint64_t dropped, std::size_t top_shapes)
{
    WalkTraceSummary s;
    s.walks = records.size();
    s.dropped = dropped;

    std::map<std::uint64_t, WalkShape> shapes;
    for (const WalkTraceRecord &r : records) {
        ++s.coverageCounts[coverageClass(r)];
        s.refsTotal += r.refs;
        for (std::size_t k = 0; k < kNumTrapKinds; ++k) {
            if (r.trapMask & (1u << k))
                ++s.trapByCause[k];
        }
        if (r.faults)
            ++s.faultedMisses;
        if (r.pwcStartDepth)
            ++s.pwcResumed;
        s.ntlbHits += r.ntlbHits;

        WalkShape &sh = shapes[shapeKey(r)];
        if (!sh.count)
            sh.sample = r;
        ++sh.count;
    }

    if (s.walks) {
        // Same arithmetic as Machine::delta: integer-valued doubles
        // divided once, so equal inputs give bit-equal fractions.
        for (unsigned i = 0; i < 6; ++i)
            s.coverage[i] =
                double(s.coverageCounts[i]) / double(s.walks);
        s.avgWalkRefs = double(s.refsTotal) / double(s.walks);
    }

    s.topShapes.reserve(shapes.size());
    for (auto &[key, sh] : shapes)
        s.topShapes.push_back(sh);
    std::sort(s.topShapes.begin(), s.topShapes.end(),
              [](const WalkShape &a, const WalkShape &b) {
                  return a.count > b.count;
              });
    if (s.topShapes.size() > top_shapes)
        s.topShapes.resize(top_shapes);
    return s;
}

WalkTraceSummary
summarizeWalkTrace(const WalkTraceBuffer &buffer, std::size_t top_shapes)
{
    return summarizeWalkTrace(buffer.snapshot(), buffer.dropped(),
                              top_shapes);
}

std::string
walkShapeLabel(const WalkTraceRecord &r)
{
    std::ostringstream os;
    os << virtModeName(static_cast<VirtMode>(r.mode)) << '/'
       << pageSizeName(static_cast<PageSize>(r.pageSize));
    if (r.fullNested())
        os << " full-nested";
    else if (r.switchDepth >= kPtLevels)
        os << " full-shadow";
    else
        os << " switch@" << unsigned(r.switchDepth);
    for (std::size_t t = 0; t < kNumWalkTables; ++t) {
        if (r.refsByTable[t]) {
            os << ' ' << walkTableName(static_cast<WalkTable>(t)) << ':'
               << unsigned(r.refsByTable[t]);
        }
    }
    if (r.pwcStartDepth)
        os << " pwc@" << unsigned(r.pwcStartDepth);
    if (r.ntlbHits)
        os << " ntlb:" << unsigned(r.ntlbHits);
    return os.str();
}

void
printWalkTraceSummary(std::ostream &os, const WalkTraceSummary &s)
{
    os << "walks: " << s.walks << "\n";
    if (s.dropped) {
        os << "dropped: " << s.dropped
           << "  (ring wrapped; coverage below is partial)\n";
    }
    if (!s.walks)
        return;

    os << "avg refs/walk: " << std::fixed << std::setprecision(2)
       << s.avgWalkRefs << "\n";
    os << "pwc-resumed walks: " << s.pwcResumed
       << "  ntlb hits: " << s.ntlbHits
       << "  faulted misses: " << s.faultedMisses << "\n";

    static const char *const kCoverageNames[6] = {
        "full shadow (4 refs)", "switch@3 (8 refs)",
        "switch@2 (12 refs)",   "switch@1 (16 refs)",
        "switch@0 (20 refs)",   "full nested (24 refs)",
    };
    os << "mode coverage (Table VI):\n";
    for (unsigned i = 0; i < 6; ++i) {
        if (!s.coverageCounts[i])
            continue;
        os << "  " << std::left << std::setw(22) << kCoverageNames[i]
           << std::right << std::setw(10) << s.coverageCounts[i] << "  "
           << std::fixed << std::setprecision(2)
           << 100.0 * s.coverage[i] << "%\n";
    }

    bool any_trap = false;
    for (std::size_t k = 0; k < kNumTrapKinds; ++k)
        any_trap = any_trap || s.trapByCause[k];
    if (any_trap) {
        os << "misses charging VM exits, by cause:\n";
        for (std::size_t k = 0; k < kNumTrapKinds; ++k) {
            if (!s.trapByCause[k])
                continue;
            os << "  " << std::left << std::setw(22)
               << trapKindName(static_cast<TrapKind>(k)) << std::right
               << std::setw(10) << s.trapByCause[k] << "\n";
        }
    }

    if (!s.topShapes.empty()) {
        os << "top walk shapes:\n";
        for (const WalkShape &sh : s.topShapes) {
            os << "  " << std::setw(10) << sh.count << "  "
               << walkShapeLabel(sh.sample) << "\n";
        }
    }
}

bool
writeWalkTrace(const WalkTraceBuffer &buffer, std::ostream &os)
{
    const std::vector<WalkTraceRecord> records = buffer.snapshot();
    putU32(os, kWalkTraceMagic);
    putU32(os, kWalkTraceVersion);
    putU64(os, records.size());
    putU64(os, buffer.appended());
    putU64(os, buffer.dropped());
    for (const WalkTraceRecord &r : records)
        putRecord(os, r);
    return bool(os);
}

bool
writeWalkTraceFile(const WalkTraceBuffer &buffer, const std::string &path)
{
    std::ofstream os(path, std::ios::binary);
    return os && writeWalkTrace(buffer, os);
}

bool
readWalkTrace(std::istream &is, std::vector<WalkTraceRecord> &records,
              std::uint64_t &dropped)
{
    std::uint32_t magic = 0, version = 0;
    std::uint64_t count = 0, appended = 0;
    if (!getU32(is, magic) || magic != kWalkTraceMagic)
        return false;
    if (!getU32(is, version) || version != kWalkTraceVersion)
        return false;
    if (!getU64(is, count) || !getU64(is, appended) ||
        !getU64(is, dropped)) {
        return false;
    }
    records.clear();
    records.reserve(count);
    for (std::uint64_t i = 0; i < count; ++i) {
        WalkTraceRecord r;
        if (!getRecord(is, r))
            return false;
        records.push_back(r);
    }
    return true;
}

bool
readWalkTraceFile(const std::string &path,
                  std::vector<WalkTraceRecord> &records,
                  std::uint64_t &dropped)
{
    std::ifstream is(path, std::ios::binary);
    return is && readWalkTrace(is, records, dropped);
}

} // namespace ap
